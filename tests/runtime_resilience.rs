//! Resilience of the parallel runtime: fixed-seed chaos sweeps, panic
//! isolation, thread-count bit-identity across all four kernels, and
//! quorum-loss degradation to serial.
//!
//! Every test here is deterministic: chaos draws are pure functions of
//! `(seed, task, attempt)`, task functions are pure, and the merged
//! `KernelReport` counters are schedule-independent sums — so a failure is
//! a real scheduler bug, never flakiness.

use std::time::Duration;

use bench::{headline_engines, MatrixCtx, KERNELS};
use runtime::{Backoff, ChaosPlan, RuntimeConfig, TaskOutcome};
use simkit::driver;
use simkit::{EnergyModel, Precision};
use uni_stc::multi::DegradedError;
use uni_stc::{UniStc, UniStcConfig};
use workloads::representative::representative_matrices;

/// A fast retry schedule for tests.
fn fast(cfg: RuntimeConfig) -> RuntimeConfig {
    RuntimeConfig { backoff: Backoff::none(), ..cfg }
}

fn rep_contexts() -> Vec<MatrixCtx> {
    representative_matrices()
        .into_iter()
        .map(|r| MatrixCtx::new(r.name, r.matrix, 5))
        .collect()
}

// ---------------------------------------------------------------------
// Fixed-seed chaos sweeps: crash / stall / flake at {0, 1e-2, 1e-1}.
// ---------------------------------------------------------------------

/// Runs a 300-task workload under `chaos` and asserts every outcome is
/// the correct value regardless of what was injected.
fn sweep_under(chaos: ChaosPlan) -> runtime::RunStats {
    let items: Vec<u64> = (0..300).collect();
    let cfg = fast(RuntimeConfig::with_threads(2).with_chaos(chaos));
    let report = runtime::run(&cfg, &items, |_, &x| Ok(x.wrapping_mul(31).wrapping_add(7)));
    for (i, o) in report.outcomes.iter().enumerate() {
        let want = (i as u64).wrapping_mul(31).wrapping_add(7);
        assert_eq!(*o, TaskOutcome::Done(want), "task {i} under {chaos:?}");
    }
    report.stats
}

#[test]
fn chaos_sweep_crash_rates() {
    for (seed, rate) in [(41, 0.0), (42, 1e-2), (43, 1e-1)] {
        let stats = sweep_under(ChaosPlan::new(seed, rate, 0.0, 0.0, 0).expect("valid"));
        if rate == 0.0 {
            assert_eq!(stats.crashes, 0);
        }
    }
}

#[test]
fn chaos_sweep_stall_rates() {
    for (seed, rate) in [(51, 0.0), (52, 1e-2), (53, 1e-1)] {
        // 1 ms injected stalls; generous deadline so stalls complete
        // normally here (the watchdog path has its own test below).
        let chaos = ChaosPlan::new(seed, 0.0, rate, 0.0, 1_000).expect("valid");
        let stats = sweep_under(chaos);
        if rate == 0.0 {
            assert_eq!(stats.stalls_detected, 0);
        }
    }
}

#[test]
fn chaos_sweep_flake_rates() {
    for (seed, rate) in [(61, 0.0), (62, 1e-2), (63, 1e-1)] {
        let stats = sweep_under(ChaosPlan::new(seed, 0.0, 0.0, rate, 0).expect("valid"));
        if rate == 0.0 {
            assert_eq!(stats.flakes, 0);
        } else if rate >= 1e-1 {
            assert!(stats.flakes > 0, "10 % flake rate over 300 tasks must fire");
        }
    }
}

#[test]
fn chaos_campaigns_are_reproducible() {
    // Flake draws are pure functions of (seed, task, attempt), so a
    // crash-free campaign replays its injection count exactly. (Crash
    // campaigns keep deterministic *outcomes* but not deterministic
    // stats: once the pool dies, the chaos-free serial drain skips the
    // remaining tasks' draws, and which tasks those are depends on
    // scheduling.)
    let chaos = ChaosPlan::new(99, 0.0, 0.0, 0.05, 0).expect("valid");
    let a = sweep_under(chaos);
    let b = sweep_under(chaos);
    assert!(a.flakes > 0, "5 % flake rate over 300 tasks must fire");
    assert_eq!(a.flakes, b.flakes);
}

// ---------------------------------------------------------------------
// Panic isolation.
// ---------------------------------------------------------------------

#[test]
fn panic_isolation_is_deterministic() {
    let items: Vec<u32> = (0..60).collect();
    let run_once = || {
        let cfg = fast(RuntimeConfig::with_threads(4));
        runtime::run(&cfg, &items, |_, &x| {
            if x % 13 == 5 {
                panic!("injected panic on {x}");
            }
            Ok(x * 2)
        })
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a.outcomes, b.outcomes, "outcomes are schedule-independent");
    for (i, o) in a.outcomes.iter().enumerate() {
        if (i as u32) % 13 == 5 {
            assert!(!o.is_done(), "task {i} must fail by panic");
        } else {
            assert_eq!(*o, TaskOutcome::Done(i as u32 * 2));
        }
    }
    // Panics cost attempts, never workers: no degradation, no crashes.
    assert!(a.degraded.is_none());
    assert_eq!(a.stats.crashes, 0);
}

#[test]
fn panicking_engine_fails_the_kernel_not_the_process() {
    struct Grenade;
    impl simkit::TileEngine for Grenade {
        fn name(&self) -> &str {
            "grenade"
        }
        fn lanes(&self) -> usize {
            64
        }
        fn execute(&self, _t: &simkit::T1Task) -> simkit::T1Result {
            panic!("engine exploded")
        }
        fn network_costs(&self) -> simkit::NetworkCosts {
            simkit::NetworkCosts::flat()
        }
    }
    let ctx = &rep_contexts()[0];
    let cfg = fast(RuntimeConfig { max_retries: 1, ..RuntimeConfig::with_threads(2) });
    let em = EnergyModel::default();
    match ctx.run_sharded(&cfg, &Grenade, &em, driver::Kernel::SpMV) {
        Err(DegradedError::RetriesExhausted { attempts, .. }) => {
            assert_eq!(attempts, 2, "first try + one retry");
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Thread-count matrix: {1, 2, 8} bit-identical across all four kernels.
// ---------------------------------------------------------------------

#[test]
fn thread_matrix_is_bit_identical_across_kernels() {
    let ctx = &rep_contexts()[0];
    let em = EnergyModel::default();
    for engine in headline_engines(Precision::Fp64) {
        for kernel in KERNELS {
            let serial = ctx.run(engine.as_ref(), &em, kernel);
            for threads in [1, 2, 8] {
                let threaded = ctx.run_threaded(engine.as_ref(), &em, kernel, threads);
                assert_eq!(
                    threaded.counter_signature(),
                    serial.counter_signature(),
                    "{} {kernel} threads={threads}",
                    engine.name()
                );
                assert_eq!(threaded, serial, "full report equality");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Quorum loss → graceful degradation to serial.
// ---------------------------------------------------------------------

#[test]
fn quorum_loss_degrades_to_serial_and_still_completes() {
    let items: Vec<u64> = (0..500).collect();
    // 25 % crash rate with a full-pool quorum: losing any worker degrades.
    let chaos = ChaosPlan::new(13, 0.25, 0.0, 0.0, 0).expect("valid");
    let cfg = fast(RuntimeConfig { quorum: 4, ..RuntimeConfig::with_threads(4).with_chaos(chaos) });
    let report = runtime::run(&cfg, &items, |_, &x| Ok(x + 1));
    let deg = report.degraded.expect("quorum 4 of 4 under 25 % crashes must degrade");
    assert!(deg.live_workers < 4);
    assert_eq!(deg.quorum, 4);
    assert!(deg.tasks_drained > 0);
    for (i, o) in report.outcomes.iter().enumerate() {
        assert_eq!(*o, TaskOutcome::Done(i as u64 + 1), "degraded run completes task {i}");
    }
    let degrade_events = report
        .trace
        .iter()
        .filter(|e| matches!(e, obs::TraceEvent::RuntimeDegrade { .. }))
        .count();
    assert_eq!(degrade_events, 1, "exactly one degrade event in the trace");
}

#[test]
fn degraded_kernel_report_stays_bit_identical() {
    let ctx = &rep_contexts()[1];
    let em = EnergyModel::default();
    let engine = UniStc::new(UniStcConfig::with_precision(Precision::Fp64));
    let serial = ctx.run(&engine, &em, driver::Kernel::SpMV);
    // Aggressive crashes with full-pool quorum: the run will degrade, and
    // the merged counters must not move.
    let chaos = ChaosPlan::new(29, 0.3, 0.0, 0.0, 0).expect("valid");
    let cfg = fast(RuntimeConfig { quorum: 2, ..RuntimeConfig::with_threads(2).with_chaos(chaos) });
    let sharded = ctx.run_sharded(&cfg, &engine, &em, driver::Kernel::SpMV).expect("completes");
    assert!(sharded.degraded.is_some(), "30 % crash rate must cost the pool its quorum");
    assert_eq!(sharded.report, serial);
}

// ---------------------------------------------------------------------
// Watchdog under injected stalls.
// ---------------------------------------------------------------------

#[test]
fn watchdog_survives_stall_storms() {
    let items: Vec<u64> = (0..80).collect();
    // Stalls 25x the deadline at a 10 % rate.
    let chaos = ChaosPlan::new(17, 0.0, 0.1, 0.0, 250_000).expect("valid");
    let cfg = fast(RuntimeConfig {
        task_deadline: Duration::from_millis(10),
        ..RuntimeConfig::with_threads(2).with_chaos(chaos)
    });
    let report = runtime::run(&cfg, &items, |_, &x| Ok(x * 5));
    assert!(report.stats.stalls_detected > 0, "stall storm must trip the watchdog");
    for (i, o) in report.outcomes.iter().enumerate() {
        assert_eq!(*o, TaskOutcome::Done(i as u64 * 5));
    }
}

// ---------------------------------------------------------------------
// Acceptance: chaos campaign over the representative corpus.
// ---------------------------------------------------------------------

#[test]
fn acceptance_chaos_corpus_matches_serial_on_all_kernels() {
    // The ISSUE's acceptance campaign: crash 1e-1, stall 1e-2, fixed
    // seed, representative matrix, all four kernels, Uni-STC — every
    // merged report bit-identical to the serial driver.
    let ctx = &rep_contexts()[0];
    let em = EnergyModel::default();
    let engine = UniStc::new(UniStcConfig::with_precision(Precision::Fp64));
    let chaos = ChaosPlan::new(7, 1e-1, 1e-2, 0.0, 1_000).expect("valid");
    for kernel in KERNELS {
        let serial = ctx.run(&engine, &em, kernel);
        let cfg = fast(RuntimeConfig::with_threads(2).with_chaos(chaos));
        let sharded = ctx.run_sharded(&cfg, &engine, &em, kernel).expect("chaos is survivable");
        assert_eq!(
            sharded.report.counter_signature(),
            serial.counter_signature(),
            "{kernel} under chaos"
        );
        assert_eq!(sharded.report, serial);
    }
}

// ---------------------------------------------------------------------
// Two-thread conformance smoke: the golden-counter regimes.
// ---------------------------------------------------------------------

#[test]
fn two_thread_conformance_smoke() {
    // The conformance golden snapshot pins serial counter signatures at
    // GOLDEN_SEED over the generator regimes; the sharded runtime must
    // reproduce them exactly.
    use conformance::generators::{sparse_vector, Regime};
    use sparse::BbcMatrix;
    let em = EnergyModel::default();
    let cfg = RuntimeConfig::with_threads(2);
    for regime in [Regime::ALL[0], Regime::ALL[3], Regime::ALL[7]] {
        let a = regime.generate(conformance::golden::GOLDEN_SEED);
        let bbc = BbcMatrix::from_csr(&a);
        let sx = sparse_vector(a.ncols(), conformance::golden::GOLDEN_SEED);
        let bt = a.transpose();
        let bbc_b = BbcMatrix::from_csr(&bt);
        let engine = UniStc::new(UniStcConfig::with_precision(Precision::Fp64));
        let serial = [
            driver::run_spmv(&engine, &em, &bbc),
            driver::run_spmspv(&engine, &em, &bbc, &sx),
            driver::run_spmm(&engine, &em, &bbc, 20),
            driver::run_spgemm(&engine, &em, &bbc, &bbc_b),
        ];
        let sharded = [
            runtime::run_spmv_sharded(&cfg, &engine, &em, &bbc).expect("spmv"),
            runtime::run_spmspv_sharded(&cfg, &engine, &em, &bbc, &sx).expect("spmspv"),
            runtime::run_spmm_sharded(&cfg, &engine, &em, &bbc, 20).expect("spmm"),
            runtime::run_spgemm_sharded(&cfg, &engine, &em, &bbc, &bbc_b).expect("spgemm"),
        ];
        for (s, p) in serial.iter().zip(&sharded) {
            assert_eq!(
                s.counter_signature(),
                p.report.counter_signature(),
                "{} under regime {}",
                s.kernel,
                regime.name()
            );
        }
    }
}

// ---------------------------------------------------------------------
// Scheduler trace lands on the Chrome exporter's runtime track.
// ---------------------------------------------------------------------

#[test]
fn scheduler_trace_exports_to_chrome() {
    let items: Vec<u64> = (0..40).collect();
    let chaos = ChaosPlan::new(3, 0.0, 0.0, 0.3, 0).expect("valid");
    let cfg = fast(RuntimeConfig::with_threads(2).with_chaos(chaos));
    let report = runtime::run(&cfg, &items, |_, &x| Ok(x));
    assert!(report.stats.flakes > 0);
    let mut sink: Vec<obs::TraceEvent> = Vec::new();
    report.replay_trace(&mut sink);
    let json = obs::chrome::export(&sink);
    assert!(json.contains("runtime scheduler"), "runtime track must be present");
    assert!(json.contains("retry #"), "retry instants must be exported");
}
