//! Determinism: every generator, every engine and every driver must
//! produce byte-identical results across runs — the property that makes
//! the experiment harness reproducible (and that the paper's AE workflow
//! relies on when comparing against pre-computed logs).

use bench::{all_engines, MatrixCtx, KERNELS};
use simkit::{EnergyModel, Precision};
use workloads::{corpus, gen, representative};

#[test]
fn generators_are_deterministic() {
    assert_eq!(gen::random_uniform(128, 0.05, 1), gen::random_uniform(128, 0.05, 1));
    assert_eq!(gen::rmat(128, 700, 2), gen::rmat(128, 700, 2));
    assert_eq!(gen::banded(100, 4, 0.5, 3), gen::banded(100, 4, 0.5, 3));
    assert_eq!(gen::arrow(64, 3, 2, 4), gen::arrow(64, 3, 2, 4));
    assert_eq!(gen::graph_laplacian(128, 600, 5), gen::graph_laplacian(128, 600, 5));
    assert_eq!(
        gen::block_dense(64, 8, 5, 6),
        gen::block_dense(64, 8, 5, 6)
    );
}

#[test]
fn seeds_actually_matter() {
    assert_ne!(gen::random_uniform(128, 0.05, 1), gen::random_uniform(128, 0.05, 2));
    assert_ne!(gen::rmat(128, 700, 2), gen::rmat(128, 700, 3));
    assert_ne!(gen::banded(100, 4, 0.5, 3), gen::banded(100, 4, 0.5, 4));
}

#[test]
fn corpus_is_stable_across_calls() {
    let a = corpus::corpus_sample(20);
    let b = corpus::corpus_sample(20);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.build(), y.build());
    }
}

#[test]
fn representative_matrices_are_stable() {
    let a = representative::representative_matrices();
    let b = representative::representative_matrices();
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.matrix, y.matrix);
    }
}

#[test]
fn engine_reports_are_bit_stable() {
    let ctx = MatrixCtx::new("det", gen::rmat(128, 900, 7), 7);
    let em = EnergyModel::default();
    for e in all_engines(Precision::Fp64) {
        for kernel in KERNELS {
            let a = ctx.run(e.as_ref(), &em, kernel);
            let b = ctx.run(e.as_ref(), &em, kernel);
            assert_eq!(a, b, "{} {kernel}", e.name());
        }
    }
}

#[test]
fn numeric_dataflow_is_bit_stable() {
    let m = gen::banded(80, 4, 0.7, 9);
    let bbc = sparse::BbcMatrix::from_csr(&m);
    let cfg = uni_stc::UniStcConfig::default();
    let x: Vec<f64> = (0..m.ncols()).map(|i| (i % 13) as f64 - 6.0).collect();
    let (y1, s1) = uni_stc::kernels::spmv(&cfg, &bbc, &x).unwrap();
    let (y2, s2) = uni_stc::kernels::spmv(&cfg, &bbc, &x).unwrap();
    assert_eq!(y1, y2);
    assert_eq!(s1, s2);
    let (c1, g1) = uni_stc::kernels::spgemm(&cfg, &bbc, &bbc).unwrap();
    let (c2, g2) = uni_stc::kernels::spgemm(&cfg, &bbc, &bbc).unwrap();
    assert_eq!(c1, c2);
    assert_eq!(g1, g2);
}

#[test]
fn amg_hierarchy_is_stable() {
    let a = gen::poisson_2d(16);
    let opts = workloads::amg::AmgOptions::default();
    let h1 = workloads::amg::build_hierarchy(&a, opts);
    let h2 = workloads::amg::build_hierarchy(&a, opts);
    assert_eq!(h1.n_levels(), h2.n_levels());
    for (l1, l2) in h1.levels.iter().zip(&h2.levels) {
        assert_eq!(l1.a, l2.a);
    }
    let b = vec![1.0; a.nrows()];
    let (x1, r1) = h1.solve(&b, 1e-8, 50);
    let (x2, r2) = h2.solve(&b, 1e-8, 50);
    assert_eq!(x1, x2);
    assert_eq!(r1, r2);
}
