//! Shape-level checks of the paper's headline claims: who wins, in which
//! regime, and by roughly what kind of factor. Absolute constants are the
//! model's, but the *orderings and crossovers* must match the paper.

use bench::{all_engines, headline_engines, MatrixCtx, KERNELS};
use simkit::driver::Kernel;
use simkit::metrics::{geomean, Comparison};
use simkit::{EnergyModel, Precision, TileEngine};
use workloads::gen;
use workloads::representative::representative_matrices;

fn reps() -> Vec<MatrixCtx> {
    representative_matrices()
        .into_iter()
        .map(|r| MatrixCtx::new(r.name, r.matrix, 3))
        .collect()
}

fn geo_cmp(kernel: Kernel) -> (Comparison, Comparison) {
    // Geomean Uni-vs-DS and Uni-vs-RM over the eight representatives.
    let em = EnergyModel::default();
    let mut ds_cs = Vec::new();
    let mut rm_cs = Vec::new();
    for ctx in reps() {
        let engines = headline_engines(Precision::Fp64);
        let ds = ctx.run(engines[0].as_ref(), &em, kernel);
        let rm = ctx.run(engines[1].as_ref(), &em, kernel);
        let uni = ctx.run(engines[2].as_ref(), &em, kernel);
        ds_cs.push(Comparison::of(&uni, &ds));
        rm_cs.push(Comparison::of(&uni, &rm));
    }
    let geo = |cs: &[Comparison]| Comparison {
        speedup: geomean(cs.iter().map(|c| c.speedup)).unwrap(),
        energy_reduction: geomean(cs.iter().map(|c| c.energy_reduction)).unwrap(),
    };
    (geo(&ds_cs), geo(&rm_cs))
}

#[test]
fn uni_stc_wins_every_kernel_on_speed() {
    for kernel in KERNELS {
        let (vs_ds, vs_rm) = geo_cmp(kernel);
        assert!(vs_ds.speedup > 1.0, "{kernel}: Uni not faster than DS ({})", vs_ds.speedup);
        assert!(vs_rm.speedup > 1.0, "{kernel}: Uni not faster than RM ({})", vs_rm.speedup);
    }
}

#[test]
fn uni_stc_wins_every_kernel_on_efficiency() {
    for kernel in KERNELS {
        let (vs_ds, vs_rm) = geo_cmp(kernel);
        assert!(vs_ds.efficiency() > 1.0, "{kernel} vs DS eff {}", vs_ds.efficiency());
        assert!(vs_rm.efficiency() > 1.0, "{kernel} vs RM eff {}", vs_rm.efficiency());
    }
}

#[test]
fn spmv_speedup_factors_are_paper_sized() {
    // Paper: ~5.21x over DS-STC and ~2.74x over RM-STC on the eight
    // matrices (max 16x / 3.96x over the full corpus). Accept a generous
    // band around the paper's points.
    let (vs_ds, vs_rm) = geo_cmp(Kernel::SpMV);
    assert!(
        (2.5..=12.0).contains(&vs_ds.speedup),
        "SpMV vs DS speedup {} outside band",
        vs_ds.speedup
    );
    assert!(
        (1.3..=8.0).contains(&vs_rm.speedup),
        "SpMV vs RM speedup {} outside band",
        vs_rm.speedup
    );
}

#[test]
fn rm_stc_utilisation_collapses_on_spmspv() {
    // Paper Section VI-C.2: "RM-STC's MAC utilisation drops below 12.5 %
    // as the input vector x becomes sparser" — the sparse x empties half
    // of each K-pair's scalar window. Uni-STC keeps a decisive win on
    // both MV kernels (see EXPERIMENTS.md for the second-order deviation
    // on the SpMSpV/SpMV ratio).
    let em = EnergyModel::default();
    for ctx in reps() {
        let engines = headline_engines(Precision::Fp64);
        let rm_mv = ctx.run(engines[1].as_ref(), &em, Kernel::SpMV);
        let rm_sv = ctx.run(engines[1].as_ref(), &em, Kernel::SpMSpV);
        assert!(
            rm_sv.mean_utilisation() < rm_mv.mean_utilisation(),
            "{}: RM util did not drop ({} vs {})",
            ctx.name,
            rm_sv.mean_utilisation(),
            rm_mv.mean_utilisation()
        );
        // "...drops below 12.5 % as the input vector x becomes sparser":
        // at 90 % x-sparsity the collapse is unconditional.
        let x90 = bench::sparse_vector(ctx.csr.ncols(), 0.9, 17);
        let rm_sv90 =
            simkit::driver::run_spmspv(engines[1].as_ref(), &em, &ctx.bbc, &x90);
        // Allow a small margin above the asymptotic 12.5 % bound for
        // K-pairs that keep both x entries at finite sparsity.
        assert!(
            rm_sv90.mean_utilisation() < 0.16,
            "{}: {}",
            ctx.name,
            rm_sv90.mean_utilisation()
        );
    }
    let (_, mv) = geo_cmp(Kernel::SpMV);
    let (_, mspv) = geo_cmp(Kernel::SpMSpV);
    assert!(mspv.speedup > 2.0, "SpMSpV vs RM collapsed to {}", mspv.speedup);
    assert!(mspv.speedup > 0.6 * mv.speedup);
}

#[test]
fn baseline_utilisation_caps_hold_on_spmv() {
    // Paper Section VI-C.2: DS-STC <= 12.5 %, RM-STC <= 25 % on SpMV.
    let em = EnergyModel::default();
    for ctx in reps() {
        let engines = headline_engines(Precision::Fp64);
        let ds = ctx.run(engines[0].as_ref(), &em, Kernel::SpMV);
        let rm = ctx.run(engines[1].as_ref(), &em, Kernel::SpMV);
        assert!(ds.mean_utilisation() <= 0.125 + 1e-9, "{}", ctx.name);
        assert!(rm.mean_utilisation() <= 0.25 + 1e-9, "{}", ctx.name);
    }
}

#[test]
fn dense_energy_ordering_matches_paper() {
    // Paper Section VI-C.1 (dense inputs): NV-DTC cheapest; Uni-STC within
    // ~10 % of it; RM-STC and DS-STC progressively worse.
    let em = EnergyModel::default();
    let dense = gen::random_uniform(64, 1.0, 1);
    let ctx = MatrixCtx::new("dense", dense, 1);
    let engines = all_engines(Precision::Fp64);
    let by_name = |n: &str| {
        let e = engines.iter().find(|e| e.name() == n).unwrap();
        ctx.run(e.as_ref(), &em, Kernel::SpMM).energy.total()
    };
    let nv = by_name("NV-DTC");
    let uni = by_name("Uni-STC");
    let rm = by_name("RM-STC");
    let ds = by_name("DS-STC");
    assert!(nv <= uni, "NV-DTC {nv} not cheapest vs Uni {uni}");
    assert!(uni < rm, "Uni {uni} not below RM {rm}");
    assert!(rm < ds, "RM {rm} not below DS {ds}");
    assert!(uni / nv < 1.35, "Uni {} too far above NV-DTC", uni / nv);
}

#[test]
fn bbc_beats_csr_beyond_the_crossover() {
    // Fig. 15: BBC's overhead reduction grows with NnzPB and crosses 1.0
    // around a few nonzeros per tile; dense blocks approach ~14x.
    use sparse::{BbcMatrix, StorageSize};
    let overhead = |csr: &sparse::CsrMatrix| {
        let bbc = BbcMatrix::from_csr(csr);
        csr.metadata_bytes() as f64 / bbc.metadata_bytes() as f64
    };
    let sparse_m = gen::random_uniform(512, 0.002, 1); // NnzPB ~ 1
    let dense_m = gen::random_uniform(256, 0.9, 2); // near-dense blocks
    assert!(overhead(&sparse_m) < 1.0, "scattered matrix should favour CSR");
    let dense_red = overhead(&dense_m);
    assert!(dense_red > 5.0, "dense-block reduction only {dense_red}");
}

#[test]
fn amg_speedup_ordering_matches_fig21() {
    // Fig. 21: on real-world-irregular operators, Uni-STC beats every
    // baseline on both kernels; Trapezoid is the strongest baseline on
    // SpMV but falls back on SpGEMM ("real-world irregularity exacerbates
    // load imbalances across its PE rows"). We use an R-MAT graph
    // Laplacian as the irregular AMG problem.
    use baselines::{DsStc, Trapezoid};
    use simkit::driver::{run_spgemm, run_spmv};
    use sparse::BbcMatrix;
    use uni_stc::UniStc;
    use workloads::amg::{build_hierarchy, AmgOptions};

    let em = EnergyModel::default();
    let a = gen::graph_laplacian(512, 3000, 7);
    let h = build_hierarchy(&a, AmgOptions::default());
    let ds = DsStc::new(Precision::Fp64);
    let tr = Trapezoid::new(Precision::Fp64);
    let uni = UniStc::default();

    let spmv_cycles = |e: &dyn TileEngine| -> u64 {
        h.spmv_trace(5)
            .iter()
            .map(|(m, c)| run_spmv(e, &em, &BbcMatrix::from_csr(m)).cycles * *c as u64)
            .sum()
    };
    let spgemm_cycles = |e: &dyn TileEngine| -> u64 {
        h.spgemm_pairs()
            .iter()
            .map(|(x, y)| {
                run_spgemm(e, &em, &BbcMatrix::from_csr(x), &BbcMatrix::from_csr(y)).cycles
            })
            .sum()
    };

    let (ds_mv, tr_mv, uni_mv) = (spmv_cycles(&ds), spmv_cycles(&tr), spmv_cycles(&uni));
    let (ds_mm, tr_mm, uni_mm) = (spgemm_cycles(&ds), spgemm_cycles(&tr), spgemm_cycles(&uni));
    // Both beat DS-STC on SpMV...
    assert!(tr_mv < ds_mv && uni_mv < ds_mv);
    // ...Uni-STC leads overall and Trapezoid's SpGEMM edge is the smaller
    // of its two wins (the Fig. 21 pattern).
    assert!(uni_mv <= tr_mv, "Uni SpMV {uni_mv} vs Trapezoid {tr_mv}");
    assert!(uni_mm < ds_mm);
    let tr_gain_mm = ds_mm as f64 / tr_mm as f64;
    let tr_gain_mv = ds_mv as f64 / tr_mv as f64;
    assert!(tr_gain_mv > tr_gain_mm, "Trapezoid should shine on SpMV, not SpGEMM");
}
