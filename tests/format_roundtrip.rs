//! Property-based integration tests: every storage format must preserve
//! the matrix exactly through conversion roundtrips, on matrices from all
//! generator families.

use proptest::prelude::*;
use sparse::{BbcMatrix, BitmapMatrix, BsrMatrix, CooMatrix, CscMatrix, CsrMatrix, StorageSize};

fn arb_matrix() -> impl Strategy<Value = CsrMatrix> {
    (1usize..60, 1usize..60).prop_flat_map(|(m, n)| {
        proptest::collection::vec(((0..m), (0..n), -5.0f64..5.0), 0..200).prop_map(
            move |entries| {
                let mut coo = CooMatrix::new(m, n);
                for (r, c, v) in entries {
                    if v != 0.0 {
                        coo.push(r, c, v);
                    }
                }
                CsrMatrix::try_from(coo).unwrap()
            },
        )
    })
}

proptest! {
    #[test]
    fn bbc_roundtrip(csr in arb_matrix()) {
        let bbc = BbcMatrix::from_csr(&csr);
        prop_assert_eq!(bbc.nnz(), csr.nnz());
        prop_assert_eq!(bbc.to_csr(), csr);
    }

    #[test]
    fn bbc_io_roundtrip(csr in arb_matrix()) {
        let bbc = BbcMatrix::from_csr(&csr);
        let mut buf = Vec::new();
        bbc.write_bbc(&mut buf).unwrap();
        let back = sparse::bbc::read_bbc(buf.as_slice()).unwrap();
        prop_assert_eq!(back, bbc);
    }

    #[test]
    fn bsr_roundtrip_all_block_sizes(csr in arb_matrix(), block in 1usize..20) {
        let bsr = BsrMatrix::from_csr(&csr, block).unwrap();
        prop_assert_eq!(bsr.to_csr(), csr);
    }

    #[test]
    fn bitmap_roundtrip(csr in arb_matrix()) {
        let bm = BitmapMatrix::from_csr(&csr);
        prop_assert_eq!(bm.to_csr(), csr);
    }

    #[test]
    fn csc_roundtrip(csr in arb_matrix()) {
        let csc = CscMatrix::from(&csr);
        prop_assert_eq!(csc.to_csr(), csr);
    }

    #[test]
    fn transpose_involution(csr in arb_matrix()) {
        prop_assert_eq!(csr.transpose().transpose(), csr);
    }

    #[test]
    fn bbc_point_queries_match_csr(csr in arb_matrix()) {
        let bbc = BbcMatrix::from_csr(&csr);
        for r in 0..csr.nrows() {
            for c in 0..csr.ncols() {
                prop_assert_eq!(bbc.get(r, c), csr.get(r, c));
            }
        }
    }

    #[test]
    fn value_bytes_count_logical_nonzeros(csr in arb_matrix()) {
        let bbc = BbcMatrix::from_csr(&csr);
        prop_assert_eq!(bbc.value_bytes(), csr.value_bytes());
        // BSR pads values: at least as many bytes as CSR's.
        let bsr = BsrMatrix::from_csr(&csr, 4).unwrap();
        prop_assert!(bsr.value_bytes() >= csr.value_bytes());
    }

    #[test]
    fn bbc_metadata_beats_csr_on_dense_blocks(g in 2usize..5) {
        // Fully dense square matrices: BBC metadata must be far below CSR.
        let n = g * 16;
        let mut coo = CooMatrix::new(n, n);
        for r in 0..n {
            for c in 0..n {
                coo.push(r, c, 1.0);
            }
        }
        let csr = CsrMatrix::try_from(coo).unwrap();
        let bbc = BbcMatrix::from_csr(&csr);
        prop_assert!(bbc.metadata_bytes() * 8 < csr.metadata_bytes());
    }
}

#[test]
fn generator_outputs_survive_bbc() {
    for csr in [
        workloads::gen::poisson_2d(10),
        workloads::gen::banded(70, 5, 0.5, 1),
        workloads::gen::rmat(64, 300, 2),
        workloads::gen::arrow(50, 2, 3, 3),
    ] {
        let bbc = BbcMatrix::from_csr(&csr);
        assert_eq!(bbc.to_csr(), csr);
    }
}
