//! Randomized integration tests: every storage format must preserve the
//! matrix exactly through conversion roundtrips, on matrices from all
//! generator families. Cases are seed-swept deterministically so the suite
//! runs fully offline.

use sparse::rng::Rng64;
use sparse::{BbcMatrix, BitmapMatrix, BsrMatrix, CooMatrix, CscMatrix, CsrMatrix, StorageSize};

/// A seeded random rectangular CSR matrix up to 60x60 with up to 200 pushed
/// entries (duplicates merge on compression).
fn random_matrix(seed: u64) -> CsrMatrix {
    let mut rng = Rng64::new(seed);
    let m = 1 + rng.next_range(59);
    let n = 1 + rng.next_range(59);
    let nnz = rng.next_range(200);
    let mut coo = CooMatrix::new(m, n);
    for _ in 0..nnz {
        let v = rng.next_f64_range(-5.0, 5.0);
        if v != 0.0 {
            coo.push(rng.next_range(m), rng.next_range(n), v);
        }
    }
    CsrMatrix::try_from(coo).unwrap()
}

const CASES: u64 = 48;

#[test]
fn bbc_roundtrip() {
    for seed in 0..CASES {
        let csr = random_matrix(seed);
        let bbc = BbcMatrix::from_csr(&csr);
        assert_eq!(bbc.nnz(), csr.nnz(), "seed {seed}");
        assert_eq!(bbc.to_csr(), csr, "seed {seed}");
    }
}

#[test]
fn bbc_io_roundtrip() {
    for seed in 0..CASES {
        let bbc = BbcMatrix::from_csr(&random_matrix(seed));
        let mut buf = Vec::new();
        bbc.write_bbc(&mut buf).unwrap();
        let back = sparse::bbc::read_bbc(buf.as_slice()).unwrap();
        assert_eq!(back, bbc, "seed {seed}");
    }
}

#[test]
fn bsr_roundtrip_all_block_sizes() {
    for seed in 0..CASES {
        let csr = random_matrix(seed);
        let block = 1 + (seed as usize % 19);
        let bsr = BsrMatrix::from_csr(&csr, block).unwrap();
        assert_eq!(bsr.to_csr(), csr, "seed {seed} block {block}");
    }
}

#[test]
fn bitmap_roundtrip() {
    for seed in 0..CASES {
        let csr = random_matrix(seed);
        let bm = BitmapMatrix::from_csr(&csr);
        assert_eq!(bm.to_csr().expect("bitmap coordinates in range"), csr, "seed {seed}");
    }
}

#[test]
fn csc_roundtrip() {
    for seed in 0..CASES {
        let csr = random_matrix(seed);
        let csc = CscMatrix::from(&csr);
        assert_eq!(csc.to_csr(), csr, "seed {seed}");
    }
}

#[test]
fn transpose_involution() {
    for seed in 0..CASES {
        let csr = random_matrix(seed);
        assert_eq!(csr.transpose().transpose(), csr, "seed {seed}");
    }
}

#[test]
fn bbc_point_queries_match_csr() {
    for seed in 0..CASES {
        let csr = random_matrix(seed);
        let bbc = BbcMatrix::from_csr(&csr);
        for r in 0..csr.nrows() {
            for c in 0..csr.ncols() {
                assert_eq!(bbc.get(r, c), csr.get(r, c), "seed {seed} at ({r}, {c})");
            }
        }
    }
}

#[test]
fn value_bytes_count_logical_nonzeros() {
    for seed in 0..CASES {
        let csr = random_matrix(seed);
        let bbc = BbcMatrix::from_csr(&csr);
        assert_eq!(bbc.value_bytes(), csr.value_bytes(), "seed {seed}");
        // BSR pads values: at least as many bytes as CSR's.
        let bsr = BsrMatrix::from_csr(&csr, 4).unwrap();
        assert!(bsr.value_bytes() >= csr.value_bytes(), "seed {seed}");
    }
}

#[test]
fn bbc_metadata_beats_csr_on_dense_blocks() {
    // Fully dense square matrices: BBC metadata must be far below CSR.
    for g in 2usize..5 {
        let n = g * 16;
        let mut coo = CooMatrix::new(n, n);
        for r in 0..n {
            for c in 0..n {
                coo.push(r, c, 1.0);
            }
        }
        let csr = CsrMatrix::try_from(coo).unwrap();
        let bbc = BbcMatrix::from_csr(&csr);
        assert!(bbc.metadata_bytes() * 8 < csr.metadata_bytes(), "g {g}");
    }
}

#[test]
fn generator_outputs_survive_bbc() {
    for csr in [
        workloads::gen::poisson_2d(10),
        workloads::gen::banded(70, 5, 0.5, 1),
        workloads::gen::rmat(64, 300, 2),
        workloads::gen::arrow(50, 2, 3, 3),
    ] {
        let bbc = BbcMatrix::from_csr(&csr);
        assert_eq!(bbc.to_csr(), csr);
    }
}
