//! Tier-1 fault-tolerance sweep (robustness acceptance criteria).
//!
//! Sweeps bit-flip fault rates over BBC operands and asserts the three
//! pillars of the fault model:
//!
//! 1. **Detection** — every injected *metadata* fault (bitmaps and value
//!    pointers) is detected by [`BbcMatrix::validate`]; stream-level
//!    corruption is caught by the BBC2 section CRCs.
//! 2. **Degradation** — multi-unit runs that lose units to uncorrected
//!    faults requeue the lost work onto healthy units and produce results
//!    bitwise identical to the fault-free reference.
//! 3. **No panics** — corrupted operands and corrupted streams surface as
//!    `Err`, never as a panic.

use simkit::fault::{FaultOutcome, FaultPlan};
use simkit::{driver::Kernel, EnergyModel};
use sparse::rng::Rng64;
use sparse::{BbcMatrix, CooMatrix, CsrMatrix};
use uni_stc::multi::{degraded_spmv, parallel_kernel_degraded};
use uni_stc::UniStc;

/// The swept per-bit fault rates from the issue's acceptance criteria.
const RATES: [f64; 3] = [1e-4, 1e-3, 1e-2];

/// A seeded random CSR matrix sized to give every fault class a healthy
/// number of target bits.
fn random_matrix(seed: u64) -> CsrMatrix {
    let mut rng = Rng64::new(seed);
    let n = 24 + rng.next_range(56);
    let nnz = 40 + rng.next_range(300);
    let mut coo = CooMatrix::new(n, n);
    for _ in 0..nnz {
        let v = rng.next_f64_range(-4.0, 4.0);
        if v != 0.0 {
            coo.push(rng.next_range(n), rng.next_range(n), v);
        }
    }
    CsrMatrix::try_from(coo).unwrap()
}

fn inject(seed: u64, rate: f64, value_rate: f64) -> (BbcMatrix, BbcMatrix, FaultOutcome) {
    let clean = BbcMatrix::from_csr(&random_matrix(seed));
    let plan = FaultPlan {
        seed: seed ^ 0xFA17,
        bitmap_rate: rate,
        pointer_rate: rate,
        value_rate,
    };
    let (corrupted, outcome) = plan.inject_into(&clean);
    (clean, corrupted, outcome)
}

#[test]
fn metadata_fault_detection_is_total_across_rates() {
    // 100% of metadata corruptions must be detected by validate(): the
    // detected count can only fall short of the injected count by the
    // finite FP value flips, which no structural check can see.
    for (si, &rate) in RATES.iter().enumerate() {
        for seed in 0..24u64 {
            let seed = seed * RATES.len() as u64 + si as u64;
            let (_, corrupted, outcome) = inject(seed, rate, rate);
            let metadata = outcome.log.metadata_faults();
            assert!(
                outcome.detected >= metadata,
                "rate {rate} seed {seed}: {} of {metadata} metadata faults detected",
                outcome.detected
            );
            if metadata > 0 {
                assert!(
                    corrupted.validate().is_err(),
                    "rate {rate} seed {seed}: corrupted matrix passed validate()"
                );
            }
        }
    }
}

#[test]
fn stream_corruption_is_detected_by_crc() {
    // Serialize a clean matrix, flip bits in the byte stream at each swept
    // rate: read_bbc must reject every corrupted stream (CRC mismatch or
    // post-decode validation) without ever panicking.
    for &rate in &RATES {
        for seed in 0..12u64 {
            let clean = BbcMatrix::from_csr(&random_matrix(seed));
            let mut buf = Vec::new();
            clean.write_bbc(&mut buf).unwrap();
            let mut rng = Rng64::new(seed ^ 0xC4C);
            let mut flipped = 0u32;
            for byte in buf.iter_mut().skip(4) {
                for bit in 0..8 {
                    if rng.next_bool(rate) {
                        *byte ^= 1 << bit;
                        flipped += 1;
                    }
                }
            }
            let back = sparse::bbc::read_bbc(buf.as_slice());
            if flipped == 0 {
                assert_eq!(back.unwrap(), clean, "rate {rate} seed {seed}");
            } else {
                assert!(back.is_err(), "rate {rate} seed {seed}: {flipped} flips undetected");
            }
        }
    }
}

#[test]
fn degraded_runs_are_bitwise_identical_to_reference() {
    let engine = UniStc::default();
    let em = EnergyModel::default();
    for (si, &rate) in RATES.iter().enumerate() {
        for seed in 0..8u64 {
            let seed = seed * RATES.len() as u64 + si as u64;
            let a = BbcMatrix::from_csr(&random_matrix(seed));
            let mut rng = Rng64::new(seed ^ 0xDE6);
            let x: Vec<f64> = (0..a.ncols()).map(|_| rng.next_f64_range(-2.0, 2.0)).collect();
            let n_units = 4;
            // Metadata-only plans: finite FP value flips are physically
            // undetectable without ECC, so bitwise identity is only
            // promised for pointer/bitmap corruption.
            let plans: Vec<FaultPlan> = (0..n_units as u64)
                .map(|u| FaultPlan {
                    seed: seed ^ (u << 8),
                    bitmap_rate: rate,
                    pointer_rate: rate,
                    value_rate: 0.0,
                })
                .collect();
            let reference = degraded_spmv(&engine, &em, &a, &x, n_units, &[]);
            let (y_ref, rep_ref) = reference.expect("fault-free run cannot lose units");
            assert!(rep_ref.faulty_units.is_empty());
            match degraded_spmv(&engine, &em, &a, &x, n_units, &plans) {
                Ok((y, rep)) => {
                    for (i, (got, want)) in y.iter().zip(&y_ref).enumerate() {
                        assert_eq!(
                            got.to_bits(),
                            want.to_bits(),
                            "rate {rate} seed {seed} row {i}: degraded result differs"
                        );
                    }
                    assert_eq!(
                        rep.events.faults_detected, rep.events.faults_injected,
                        "rate {rate} seed {seed}: metadata-only plan must detect all faults"
                    );
                    if !rep.faulty_units.is_empty() {
                        assert!(rep.retried_blocks > 0 || rep.serial_cycles == 0);
                    }
                }
                Err(e) => {
                    // All units lost: legal outcome at high rates, but it
                    // must be the typed error, not a panic.
                    let msg = e.to_string();
                    assert!(msg.contains("units lost"), "rate {rate} seed {seed}: {msg}");
                }
            }
        }
    }
}

#[test]
fn degraded_cycle_reports_stay_consistent() {
    let engine = UniStc::default();
    let em = EnergyModel::default();
    for &rate in &RATES {
        for seed in 0..6u64 {
            let a = BbcMatrix::from_csr(&random_matrix(seed ^ 0x90));
            let plans: Vec<FaultPlan> = (0..4u64)
                .map(|u| FaultPlan {
                    seed: seed ^ (u << 12),
                    bitmap_rate: rate,
                    pointer_rate: rate,
                    value_rate: 0.0,
                })
                .collect();
            let clean = parallel_kernel_degraded(&engine, &em, &a, Kernel::SpMV, 1, 4, &[])
                .expect("fault-free run cannot lose units");
            match parallel_kernel_degraded(&engine, &em, &a, Kernel::SpMV, 1, 4, &plans) {
                Ok(rep) => {
                    // Work conservation: requeueing moves cycles between
                    // units but the serial total is invariant.
                    assert_eq!(rep.serial_cycles, clean.serial_cycles, "rate {rate} seed {seed}");
                    assert_eq!(rep.unit_cycles.iter().sum::<u64>(), rep.serial_cycles);
                    assert!(rep.makespan <= rep.serial_cycles);
                    for &w in &rep.faulty_units {
                        assert_eq!(rep.unit_cycles[w], 0, "offline unit {w} billed cycles");
                    }
                    assert!(rep.events.faults_uncorrected <= rep.events.faults_detected);
                    assert!(rep.events.faults_detected <= rep.events.faults_injected);
                }
                Err(e) => {
                    assert!(e.to_string().contains("units lost"));
                }
            }
        }
    }
}
