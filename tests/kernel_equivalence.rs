//! Numerical integration tests: the reference kernels agree with dense
//! linear algebra on generator outputs, and the AMG solver really solves
//! its systems.

use conformance::compare::{assert_dense_close, assert_slices_close, Tolerance};
use sparse::ops::{spgemm, spmm, spmspv, spmv};
use sparse::{DenseMatrix, SparseVector};
use workloads::amg::{build_hierarchy, AmgOptions};
use workloads::gen;

fn dense_matmul(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let mut c = DenseMatrix::zeros(a.nrows(), b.ncols());
    for i in 0..a.nrows() {
        for k in 0..a.ncols() {
            let av = a[(i, k)];
            if av == 0.0 {
                continue;
            }
            for j in 0..b.ncols() {
                c[(i, j)] += av * b[(k, j)];
            }
        }
    }
    c
}

#[test]
fn spmv_matches_dense_on_generators() {
    for a in [gen::poisson_2d(9), gen::banded(77, 4, 0.6, 1), gen::rmat(64, 400, 2)] {
        let x: Vec<f64> = (0..a.ncols()).map(|i| ((i % 11) as f64) - 5.0).collect();
        let y = spmv(&a, &x).unwrap();
        let ad = a.to_dense();
        let want: Vec<f64> = (0..a.nrows())
            .map(|r| (0..a.ncols()).map(|c| ad[(r, c)] * x[c]).sum())
            .collect();
        assert_slices_close(&y, &want, Tolerance::FP64_KERNEL, "spmv vs dense");
    }
}

#[test]
fn spmspv_consistent_with_spmv() {
    let a = gen::rmat(128, 800, 5);
    let dense_x: Vec<f64> =
        (0..a.ncols()).map(|i| if i % 3 == 0 { (i % 7) as f64 - 3.0 } else { 0.0 }).collect();
    let x = SparseVector::from_dense(&dense_x, 0.0);
    let ys = spmspv(&a, &x).unwrap().to_dense();
    let yd = spmv(&a, &dense_x).unwrap();
    assert_slices_close(&ys, &yd, Tolerance::FP64_KERNEL, "spmspv vs spmv");
}

#[test]
fn spmm_matches_dense_on_generators() {
    let a = gen::banded(60, 3, 0.8, 7);
    let mut b = DenseMatrix::zeros(60, 16);
    for r in 0..60 {
        for c in 0..16 {
            b[(r, c)] = ((r * 16 + c) % 9) as f64 - 4.0;
        }
    }
    let c = spmm(&a, &b).unwrap();
    let want = dense_matmul(&a.to_dense(), &b);
    assert_dense_close(&c, &want, Tolerance::FP64_KERNEL, "spmm vs dense");
}

#[test]
fn spgemm_squares_match_dense() {
    for a in [gen::poisson_2d(7), gen::block_dense(48, 8, 6, 3), gen::arrow(40, 2, 2, 4)] {
        let c = spgemm(&a, &a).unwrap();
        let want = dense_matmul(&a.to_dense(), &a.to_dense());
        assert_dense_close(&c.to_dense(), &want, Tolerance::FP64_KERNEL, "spgemm vs dense");
    }
}

#[test]
fn spgemm_associativity_on_triple_product() {
    // (R A) P == R (A P): the Galerkin product computed both ways.
    let a = gen::poisson_2d(16);
    let h = build_hierarchy(&a, AmgOptions::default());
    let l = &h.levels[0];
    let (p, r) = (l.p.as_ref().unwrap(), l.r.as_ref().unwrap());
    let left = spgemm(&spgemm(r, &l.a).unwrap(), p).unwrap();
    let right = spgemm(r, &spgemm(&l.a, p).unwrap()).unwrap();
    assert_dense_close(
        &left.to_dense(),
        &right.to_dense(),
        Tolerance::FP64_KERNEL,
        "Galerkin triple product associativity",
    );
}

#[test]
fn amg_solves_poisson_to_high_accuracy() {
    let a = gen::poisson_2d(20);
    let h = build_hierarchy(&a, AmgOptions::default());
    let b: Vec<f64> = (0..a.nrows()).map(|i| ((i * 31) % 13) as f64 - 6.0).collect();
    let (x, res) = h.solve(&b, 1e-10, 300);
    assert!(res.converged, "residual {}", res.relative_residual);
    let ax = spmv(&a, &x).unwrap();
    let err: f64 = ax.iter().zip(&b).map(|(p, q)| (p - q).powi(2)).sum::<f64>().sqrt();
    let bn: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    assert!(err / bn < 1e-9);
}

#[test]
fn amg_handles_3d_problems() {
    let a = gen::poisson_3d(8);
    let h = build_hierarchy(&a, AmgOptions::default());
    assert!(h.n_levels() >= 2);
    let b = vec![1.0; a.nrows()];
    let (_, res) = h.solve(&b, 1e-8, 300);
    assert!(res.converged, "3-D residual {}", res.relative_residual);
}
