//! Edge cases and failure injection across the whole stack: degenerate
//! matrices, boundary dimensions, rectangular operands and corrupt inputs.

use bench::{all_engines, MatrixCtx, KERNELS};
use conformance::compare::{assert_dense_close, assert_slices_close, Tolerance};
use simkit::{driver, EnergyModel, Precision};
use sparse::{BbcMatrix, CooMatrix, CsrMatrix, SparseVector};
use uni_stc::{kernels, UniStc, UniStcConfig};

fn single(n: usize, r: usize, c: usize) -> CsrMatrix {
    let mut coo = CooMatrix::new(n, n);
    coo.push(r, c, 3.5);
    CsrMatrix::try_from(coo).unwrap()
}

#[test]
fn empty_matrix_runs_every_kernel_in_zero_cycles() {
    let empty = CsrMatrix::zeros(64, 64);
    let ctx = MatrixCtx::new("empty", empty, 1);
    let em = EnergyModel::default();
    for e in all_engines(Precision::Fp64) {
        for kernel in KERNELS {
            let r = ctx.run(e.as_ref(), &em, kernel);
            assert_eq!(r.cycles, 0, "{} {kernel}", e.name());
            assert_eq!(r.useful, 0);
            assert_eq!(r.energy.total(), 0.0);
        }
    }
}

#[test]
fn one_by_one_matrix_works() {
    let m = single(1, 0, 0);
    let bbc = BbcMatrix::from_csr(&m);
    assert_eq!(bbc.block_count(), 1);
    let em = EnergyModel::default();
    for e in all_engines(Precision::Fp64) {
        let r = driver::run_spmv(e.as_ref(), &em, &bbc);
        assert_eq!(r.useful, 1, "{}", e.name());
        assert!(r.cycles >= 1);
    }
    let (y, _) = kernels::spmv(&UniStcConfig::default(), &bbc, &[2.0]).unwrap();
    assert_eq!(y, vec![7.0]);
}

#[test]
fn boundary_dimensions_around_block_edges() {
    // 15, 16, 17: straddling the 16-wide block boundary.
    for n in [15usize, 16, 17, 31, 33] {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, n - 1 - i, 1.0 + i as f64);
        }
        let m = CsrMatrix::try_from(coo).unwrap();
        let bbc = BbcMatrix::from_csr(&m);
        assert_eq!(bbc.to_csr(), m, "n = {n}");
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let (y, _) = kernels::spmv(&UniStcConfig::default(), &bbc, &x).unwrap();
        let want = sparse::ops::spmv(&m, &x).unwrap();
        // One product per row: the dataflow result is bit-exact here.
        assert_slices_close(&y, &want, Tolerance::EXACT, &format!("n = {n}"));
    }
}

#[test]
fn all_zero_rows_and_columns_are_skipped() {
    // Nonzeros only in row 7 and column 3 of a 64-wide matrix.
    let mut coo = CooMatrix::new(64, 64);
    for i in 0..64 {
        coo.push(7, i, 1.0);
        coo.push(i, 3, 1.0);
    }
    coo.compress();
    let m = CsrMatrix::try_from(coo).unwrap();
    let ctx = MatrixCtx::new("cross", m, 1);
    let em = EnergyModel::default();
    for e in all_engines(Precision::Fp64) {
        for kernel in KERNELS {
            let r = ctx.run(e.as_ref(), &em, kernel);
            assert!(r.cycles > 0, "{} {kernel}", e.name());
        }
    }
}

#[test]
fn rectangular_spgemm_conforms_by_block_grid() {
    // 32x48 times 48x16 through the block driver.
    let mut ca = CooMatrix::new(32, 48);
    for i in 0..32 {
        ca.push(i, (i * 3) % 48, 1.0);
    }
    let a = BbcMatrix::from_csr(&CsrMatrix::try_from(ca).unwrap());
    let mut cb = CooMatrix::new(48, 16);
    for i in 0..48 {
        cb.push(i, i % 16, 2.0);
    }
    let b = BbcMatrix::from_csr(&CsrMatrix::try_from(cb).unwrap());
    let em = EnergyModel::default();
    let r = driver::run_spgemm(&UniStc::default(), &em, &a, &b);
    assert!(r.useful > 0);
    // And numerically through the dataflow kernels.
    let (c, _) = kernels::spgemm(&UniStcConfig::default(), &a, &b).unwrap();
    let want = sparse::ops::spgemm(&a.to_csr(), &b.to_csr()).unwrap();
    assert_dense_close(
        &c.to_dense(),
        &want.to_dense(),
        Tolerance::EXACT,
        "rectangular spgemm",
    );
}

#[test]
fn spmspv_with_empty_and_full_vectors() {
    let m = workloads::gen::banded(48, 3, 0.8, 1);
    let bbc = BbcMatrix::from_csr(&m);
    let em = EnergyModel::default();
    let empty = SparseVector::zeros(48);
    let full = SparseVector::from_dense(&vec![1.0; 48], 0.0);
    for e in all_engines(Precision::Fp64) {
        let re = driver::run_spmspv(e.as_ref(), &em, &bbc, &empty);
        assert_eq!(re.cycles, 0, "{}", e.name());
        let rf = driver::run_spmspv(e.as_ref(), &em, &bbc, &full);
        let rv = driver::run_spmv(e.as_ref(), &em, &bbc);
        assert_eq!(rf.useful, rv.useful, "{}: dense x must equal SpMV work", e.name());
    }
}

#[test]
fn fp16_runs_the_full_kernel_suite() {
    let ctx = MatrixCtx::new("fp16", workloads::gen::banded(96, 6, 0.6, 2), 3);
    let em = EnergyModel::default();
    for e in all_engines(Precision::Fp16) {
        for kernel in KERNELS {
            let r = ctx.run(e.as_ref(), &em, kernel);
            assert!(r.cycles > 0, "{} {kernel}", e.name());
            assert_eq!(r.util.lanes(), 256);
            // FP16 must never be slower than FP64 for the same work.
        }
    }
    let uni16 = UniStc::new(UniStcConfig::with_precision(Precision::Fp16));
    let uni64 = UniStc::default();
    let r16 = driver::run_spmm(&uni16, &em, &ctx.bbc, 64);
    let r64 = driver::run_spmm(&uni64, &em, &ctx.bbc, 64);
    assert!(r16.cycles <= r64.cycles);
}

#[test]
fn corrupt_bbc_streams_never_panic() {
    let m = workloads::gen::rmat(64, 300, 1);
    let bbc = BbcMatrix::from_csr(&m);
    let mut buf = Vec::new();
    bbc.write_bbc(&mut buf).unwrap();
    // Bit-flip every byte position in the header region and a sample of
    // the payload: reading must return Ok(equal) or Err, never panic.
    for pos in (0..buf.len()).step_by(7) {
        let mut bad = buf.clone();
        bad[pos] ^= 0xA5;
        if let Ok(parsed) = sparse::bbc::read_bbc(bad.as_slice()) {
            // A benign flip (e.g. in a value byte) must still parse into a
            // structurally consistent matrix.
            assert_eq!(parsed.nnz(), bbc.nnz());
        }
    }
}

#[test]
fn corrupt_mtx_streams_never_panic() {
    let cases: &[&str] = &[
        "",
        "%%MatrixMarket\n",
        "%%MatrixMarket matrix coordinate real general\n",
        "%%MatrixMarket matrix coordinate real general\nnot numbers\n",
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 abc\n",
        "%%MatrixMarket matrix coordinate real general\n-1 2 1\n1 1 1.0\n",
    ];
    for c in cases {
        assert!(sparse::mtx::read_matrix_market(c.as_bytes()).is_err(), "{c:?}");
    }
}

#[test]
fn degenerate_amg_inputs() {
    // A diagonal matrix coarsens to singletons and still solves.
    let mut coo = CooMatrix::new(32, 32);
    for i in 0..32 {
        coo.push(i, i, 2.0 + i as f64);
    }
    let a = CsrMatrix::try_from(coo).unwrap();
    let h = workloads::amg::build_hierarchy(&a, workloads::amg::AmgOptions::default());
    let b = vec![1.0; 32];
    let (x, res) = h.solve(&b, 1e-12, 50);
    assert!(res.converged);
    for (i, xi) in x.iter().enumerate() {
        assert!((xi - 1.0 / (2.0 + i as f64)).abs() < 1e-10);
    }
}
