//! Application-level integration: BFS, GCN, CG, AMG and DNN workloads run
//! end to end, their kernel mixes replay through the simulated engines,
//! and the cross-application claims of the paper's Table II hold.

use baselines::DsStc;
use simkit::driver::{run_spgemm, run_spmm, run_spmspv, Kernel};
use simkit::memory::{CompulsoryTraffic, MemoryModel};
use simkit::{EnergyModel, Precision, TileEngine};
use sparse::{BbcMatrix, StorageSize};
use uni_stc::multi::parallel_kernel;
use uni_stc::UniStc;
use workloads::{bfs, cg, dlmc, dnn, gen, gnn};

#[test]
fn bfs_replay_uni_beats_ds() {
    let adj = gen::rmat(512, 4096, 11);
    let (res, steps) = bfs::bfs(&adj, 0);
    assert!(res.reached > 10, "degenerate traversal");
    let bbc = BbcMatrix::from_csr(&adj.transpose());
    let em = EnergyModel::default();
    let uni = bfs::replay_cycles(&UniStc::default(), &em, &bbc, &steps);
    let ds = bfs::replay_cycles(&DsStc::new(Precision::Fp64), &em, &bbc, &steps);
    assert!(uni < ds, "Uni {uni} vs DS {ds}");
}

#[test]
fn gcn_kernel_mix_matches_table_ii() {
    // GNN row of Table II: SpMM + SpGEMM, no MV kernels.
    let adj = gen::rmat(128, 800, 3);
    let model = gnn::GcnModel::build(&adj, 3, 4, 16);
    assert!(!model.spmm_trace().is_empty());
    assert!(!model.spgemm_pairs().is_empty());
    let em = EnergyModel::default();
    let uni = UniStc::default();
    let ds = DsStc::new(Precision::Fp64);
    let cycles = |e: &dyn TileEngine| -> u64 {
        let mm: u64 = model
            .spmm_trace()
            .iter()
            .map(|(m, f)| run_spmm(e, &em, &BbcMatrix::from_csr(m), *f).cycles)
            .sum();
        let gg: u64 = model
            .spgemm_pairs()
            .iter()
            .map(|(a, b)| {
                run_spgemm(e, &em, &BbcMatrix::from_csr(a), &BbcMatrix::from_csr(b)).cycles
            })
            .sum();
        mm + gg
    };
    assert!(cycles(&uni) < cycles(&ds));
}

#[test]
fn cg_and_amg_solve_the_same_system() {
    let a = gen::poisson_2d(16);
    let b: Vec<f64> = (0..256).map(|i| ((i % 5) as f64) - 2.0).collect();
    let (x_cg, r_cg) = cg::solve(&a, &b, 1e-10, 2000);
    let h = workloads::amg::build_hierarchy(&a, workloads::amg::AmgOptions::default());
    let (x_amg, r_amg) = h.solve(&b, 1e-10, 200);
    assert!(r_cg.converged && r_amg.converged);
    let diff: f64 = x_cg
        .iter()
        .zip(&x_amg)
        .map(|(p, q)| (p - q) * (p - q))
        .sum::<f64>()
        .sqrt();
    let norm: f64 = x_cg.iter().map(|v| v * v).sum::<f64>().sqrt();
    assert!(diff / norm < 1e-6, "solvers disagree by {}", diff / norm);
}

#[test]
fn dnn_inference_prefers_uni_stc_in_both_regimes() {
    let em = EnergyModel::default();
    let uni = UniStc::new(uni_stc::UniStcConfig::with_precision(Precision::Fp32));
    let ds = DsStc::new(Precision::Fp32);
    for mode in [dnn::ActivationMode::Dense, dnn::ActivationMode::Sparse(0.5)] {
        let ru = dnn::run_inference(&uni, &em, dlmc::DnnModel::Transformer, 0.7, mode, 3);
        let rd = dnn::run_inference(&ds, &em, dlmc::DnnModel::Transformer, 0.7, mode, 3);
        assert!(ru.speedup_over(&rd) > 1.0, "mode {mode:?}");
        assert!(ru.energy_reduction_over(&rd) > 1.0, "mode {mode:?}");
    }
}

#[test]
fn spmspv_frontier_sparsity_lowers_work() {
    // Later BFS frontiers are denser: their SpMSpV costs more cycles.
    let adj = gen::rmat(512, 6000, 4);
    let (_, steps) = bfs::bfs(&adj, 0);
    assert!(steps.len() >= 3);
    let bbc = BbcMatrix::from_csr(&adj.transpose());
    let em = EnergyModel::default();
    let uni = UniStc::default();
    let first = run_spmspv(&uni, &em, &bbc, &steps[0].frontier).cycles;
    let densest = steps
        .iter()
        .max_by(|a, b| a.density.partial_cmp(&b.density).expect("finite"))
        .expect("nonempty");
    let peak = run_spmspv(&uni, &em, &bbc, &densest.frontier).cycles;
    assert!(peak > first, "peak {peak} vs first {first}");
}

#[test]
fn multi_unit_replay_consistent_with_roofline() {
    let a = gen::banded(512, 8, 0.6, 5);
    let bbc = BbcMatrix::from_csr(&a);
    let em = EnergyModel::default();
    let uni = UniStc::default();
    let rep = parallel_kernel(&uni, &em, &bbc, Kernel::SpMV, 1, 4);
    assert!(rep.speedup() > 2.0);
    // Roofline on the serial run: SpMV streams the matrix once.
    let serial = simkit::driver::run_spmv(&uni, &em, &bbc);
    let traffic = CompulsoryTraffic {
        matrix_bytes: bbc.total_bytes() as f64,
        operand_bytes: a.ncols() as f64 * 8.0,
        result_bytes: a.nrows() as f64 * 8.0,
    };
    let rl = MemoryModel::default().roofline(&serial, traffic);
    // SpMV at single-unit HBM share is memory-bound, as on real GPUs.
    assert_eq!(rl.bound, simkit::memory::Bound::Memory);
}

#[test]
fn mtx_roundtrip_feeds_the_simulator() {
    // End-to-end: generate -> write .mtx -> read -> BBC -> simulate.
    let a = gen::rmat(256, 1500, 9);
    let mut buf = Vec::new();
    sparse::mtx::write_matrix_market(&a, &mut buf).expect("in-memory write");
    let back = sparse::mtx::read_matrix_market(buf.as_slice()).expect("parse own output");
    assert_eq!(back, a);
    let em = EnergyModel::default();
    let r = simkit::driver::run_spmv(&UniStc::default(), &em, &BbcMatrix::from_csr(&back));
    assert!(r.cycles > 0);
}
