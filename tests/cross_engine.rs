//! Cross-crate integration: every engine processes the same task streams
//! and must agree on the *work* (useful MAC operations) while respecting
//! its own throughput bounds.

use bench::{all_engines, MatrixCtx, KERNELS};
use conformance::compare::Tolerance;
use simkit::{EnergyModel, Precision};
use workloads::gen;

fn contexts() -> Vec<MatrixCtx> {
    vec![
        MatrixCtx::new("poisson2d", gen::poisson_2d(12), 1),
        MatrixCtx::new("banded", gen::banded(96, 4, 0.7, 2), 2),
        MatrixCtx::new("rmat", gen::rmat(128, 900, 3), 3),
        MatrixCtx::new("blocks", gen::block_dense(96, 8, 10, 4), 4),
        MatrixCtx::new("arrow", gen::arrow(96, 3, 4, 5), 5),
    ]
}

#[test]
fn useful_work_is_engine_invariant() {
    let em = EnergyModel::default();
    for ctx in contexts() {
        for kernel in KERNELS {
            let mut useful = Vec::new();
            for e in all_engines(Precision::Fp64) {
                let r = ctx.run(e.as_ref(), &em, kernel);
                useful.push((e.name().to_owned(), r.useful));
            }
            let first = useful[0].1;
            for (name, u) in &useful {
                assert_eq!(*u, first, "{name} disagrees on {kernel} for {}", ctx.name);
            }
        }
    }
}

#[test]
fn cycles_respect_lane_throughput_floor() {
    let em = EnergyModel::default();
    for ctx in contexts() {
        for kernel in KERNELS {
            for e in all_engines(Precision::Fp64) {
                let r = ctx.run(e.as_ref(), &em, kernel);
                let floor = r.useful.div_ceil(e.lanes() as u64);
                assert!(
                    r.cycles >= floor,
                    "{} beat the physical floor on {kernel}/{}: {} < {floor}",
                    e.name(),
                    ctx.name,
                    r.cycles
                );
            }
        }
    }
}

#[test]
fn utilisation_histogram_accounts_every_cycle() {
    let em = EnergyModel::default();
    for ctx in contexts() {
        for e in all_engines(Precision::Fp64) {
            for kernel in KERNELS {
                let r = ctx.run(e.as_ref(), &em, kernel);
                assert_eq!(r.util.cycles(), r.cycles, "{} {kernel}", e.name());
                assert_eq!(r.util.useful_ops(), r.useful, "{} {kernel}", e.name());
                let bands = r.util.quartile_bands();
                let sum: f64 = bands.iter().sum();
                assert!(
                    Tolerance::FP64_KERNEL.eq(sum, 1.0),
                    "{} bands sum {sum}",
                    e.name()
                );
            }
        }
    }
}

#[test]
fn uni_stc_is_never_slower_than_nv_dtc() {
    // The dense tensor core is the no-adaptation floor: an STC that loses
    // to it on sparse inputs would be pointless. (NV-DTC runs a fixed
    // dense schedule, so this is the paper's minimum bar.)
    let em = EnergyModel::default();
    for ctx in contexts() {
        for kernel in KERNELS {
            let engines = all_engines(Precision::Fp64);
            let nv = ctx.run(engines[0].as_ref(), &em, kernel);
            let uni = ctx.run(engines[6].as_ref(), &em, kernel);
            assert!(
                uni.cycles <= nv.cycles,
                "Uni-STC slower than NV-DTC on {kernel}/{}: {} vs {}",
                ctx.name,
                uni.cycles,
                nv.cycles
            );
        }
    }
}

#[test]
fn fp32_engines_handle_the_same_streams() {
    let em = EnergyModel::default();
    let ctx = MatrixCtx::new("banded", gen::banded(64, 4, 0.6, 7), 7);
    for e in all_engines(Precision::Fp32) {
        for kernel in KERNELS {
            let r = ctx.run(e.as_ref(), &em, kernel);
            assert!(r.cycles > 0, "{} produced no cycles on {kernel}", e.name());
            assert!(r.util.lanes() == 128);
        }
    }
}

#[test]
fn energy_is_positive_and_decomposes() {
    let em = EnergyModel::default();
    let ctx = MatrixCtx::new("poisson", gen::poisson_2d(10), 9);
    for e in all_engines(Precision::Fp64) {
        for kernel in KERNELS {
            let r = ctx.run(e.as_ref(), &em, kernel);
            assert!(r.energy.total() > 0.0);
            assert!(r.energy.fetch >= 0.0 && r.energy.schedule >= 0.0 && r.energy.compute > 0.0);
            let sum = r.energy.fetch + r.energy.schedule + r.energy.compute;
            assert!(
                Tolerance::FP64_KERNEL.eq(sum, r.energy.total()),
                "energy components {sum} vs total {}",
                r.energy.total()
            );
        }
    }
}
