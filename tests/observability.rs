//! Integration tests for the observability subsystem (`crates/obs`):
//! trace-disabled runs must be bit-identical to untraced ones, bounded
//! ring capture must preserve reports, the Chrome-trace export must stay
//! valid JSON, and the fixed-seed SpMV trace is pinned as a golden
//! snapshot (re-bless with `OBS_BLESS=1 cargo test -p bench --test
//! observability`).

use std::path::{Path, PathBuf};
use std::str::FromStr;

use bench::perf::{self, BenchDoc, BenchEntry};
use obs::json::Value;
use simkit::driver::{run_spmv, run_spmv_traced};
use simkit::{EnergyModel, Precision};
use sparse::BbcMatrix;
use uni_stc::{UniStc, UniStcConfig};

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate lives at <repo>/crates/bench")
}

fn golden_path() -> PathBuf {
    repo_root().join("tests/golden/chrome_spmv.json")
}

/// The fixed-seed SpMV workload every trace test runs: a small 2-D Poisson
/// stencil, fully deterministic.
fn fixture() -> (UniStc, BbcMatrix) {
    let csr = workloads::gen::poisson_2d(4);
    let engine = UniStc::new(UniStcConfig::with_precision(Precision::Fp64));
    (engine, BbcMatrix::from_csr(&csr))
}

#[test]
fn disabled_trace_is_bit_identical_to_untraced_run() {
    let (engine, bbc) = fixture();
    let em = EnergyModel::default();
    let plain = run_spmv(&engine, &em, &bbc);
    let noop = run_spmv_traced(&engine, &em, &bbc, &mut obs::NoopSink);
    // KernelReport's PartialEq covers cycles, useful, util histogram and
    // the full EventCounts — any divergence is a real behaviour change.
    assert_eq!(plain, noop);
    assert_eq!(plain.counter_signature(), noop.counter_signature());
}

#[test]
fn enabled_trace_never_changes_the_report() {
    let (engine, bbc) = fixture();
    let em = EnergyModel::default();
    let plain = run_spmv(&engine, &em, &bbc);
    let mut events: Vec<obs::TraceEvent> = Vec::new();
    let traced = run_spmv_traced(&engine, &em, &bbc, &mut events);
    assert_eq!(plain, traced);
    assert!(!events.is_empty());
    // The driver's retire markers land exactly on the report totals.
    let last_retire = events
        .iter()
        .rev()
        .find_map(|e| match e {
            obs::TraceEvent::TaskRetire { cycle, .. } => Some(*cycle),
            _ => None,
        })
        .expect("trace contains retire events");
    assert_eq!(last_retire, traced.cycles);
    let issues = events.iter().filter(|e| e.kind() == "task_issue").count() as u64;
    assert_eq!(issues, traced.t1_tasks);
}

#[test]
fn ring_sink_bounds_memory_and_keeps_the_tail() {
    let (engine, bbc) = fixture();
    let em = EnergyModel::default();

    // Unbounded reference capture.
    let mut full: Vec<obs::TraceEvent> = Vec::new();
    let reference = run_spmv_traced(&engine, &em, &bbc, &mut full);

    // A ring far smaller than the trace: the report is unaffected and the
    // retained events are exactly the trace's tail.
    let mut ring = obs::RingSink::new(8);
    let ringed = run_spmv_traced(&engine, &em, &bbc, &mut ring);
    assert_eq!(reference, ringed);
    assert_eq!(ring.len(), 8);
    assert_eq!(ring.recorded() as usize, full.len());
    assert!(ring.overwritten() > 0);
    assert_eq!(ring.events(), full[full.len() - 8..]);
}

#[test]
fn chrome_export_is_valid_trace_event_json() {
    let (engine, bbc) = fixture();
    let mut events: Vec<obs::TraceEvent> = Vec::new();
    run_spmv_traced(&engine, &EnergyModel::default(), &bbc, &mut events);
    let doc = obs::json::parse(&obs::chrome::export(&events)).expect("export parses");
    let evs = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    assert!(evs.len() > 2, "expected payload beyond thread metadata");
    for ev in evs {
        let ph = ev.get("ph").and_then(Value::as_str).expect("event has ph");
        assert!(
            ["X", "C", "i", "M"].contains(&ph),
            "unexpected phase {ph}"
        );
        assert!(ev.get("name").and_then(Value::as_str).is_some());
    }
    // At least one task slice and one counter series must be present.
    assert!(evs.iter().any(|e| e.get("ph").and_then(Value::as_str) == Some("X")));
    assert!(evs.iter().any(|e| e.get("ph").and_then(Value::as_str) == Some("C")));
}

#[test]
fn golden_chrome_trace_snapshot() {
    let (engine, bbc) = fixture();
    let mut events: Vec<obs::TraceEvent> = Vec::new();
    run_spmv_traced(&engine, &EnergyModel::default(), &bbc, &mut events);
    let rendered = obs::chrome::export_pretty(&events);

    let path = golden_path();
    if std::env::var_os("OBS_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .expect("create golden dir");
        std::fs::write(&path, &rendered).expect("write golden snapshot");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); generate it with OBS_BLESS=1 cargo test -p bench --test observability",
            path.display()
        )
    });
    assert!(
        rendered == golden,
        "Chrome trace of the fixed-seed SpMV changed; if intentional, re-bless with \
         OBS_BLESS=1 cargo test -p bench --test observability"
    );
}

#[test]
fn bench_doc_file_round_trip_and_compare_gate() {
    // Build a miniature document, write it, read it back, then inject a
    // 10 % cycle slowdown and check the comparator flags exactly that.
    let entry = |matrix: &str, cycles: u64| BenchEntry {
        matrix: matrix.to_owned(),
        engine: "Uni-STC".to_owned(),
        kernel: "SpMV".to_owned(),
        cycles,
        useful: 64,
        t1_tasks: 4,
        mac_utilisation: 0.5,
        wall_ms: 0.25,
        signature: format!("Uni-STC SpMV cycles={cycles}"),
    };
    let prev = BenchDoc {
        label: "prev".to_owned(),
        backend: "bitwise".to_owned(),
        entries: vec![entry("m1", 1000), entry("m2", 400)],
        metrics: Value::Null,
    };

    let dir = std::env::temp_dir().join("ustc-obs-test");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("BENCH_prev.json");
    std::fs::write(&path, prev.to_json().to_json_pretty()).expect("write doc");
    let loaded =
        BenchDoc::from_str(&std::fs::read_to_string(&path).expect("read doc")).expect("parse doc");
    assert_eq!(loaded.entries, prev.entries);

    let mut slowed = prev.clone();
    slowed.entries[0].cycles = 1100; // injected 10 % slowdown
    let cmp = perf::compare(&loaded, &slowed, 5.0).expect("well-formed documents");
    assert_eq!(cmp.regressions.len(), 1, "exactly the slowed entry must be flagged");
    assert!(cmp.regressions[0].key.contains("m1"));
    assert!((cmp.regressions[0].pct - 10.0).abs() < 1e-9);
    assert_eq!((cmp.only_in_prev, cmp.only_in_new), (0, 0), "same corpus on both sides");
    let clean = perf::compare(&loaded, &prev, 5.0).expect("well-formed documents");
    assert!(clean.regressions.is_empty());
}
