//! Regression: `--json` stdout stays one machine-parseable document even
//! when a diagnostic fires. The contract is that *all* warnings go to
//! stderr (`bench::output::warn` / `eprintln!`), so a pipeline doing
//! `fault_probe --json | jq` never sees a warning interleaved into the
//! JSON. The probe is run as a real subprocess — the same way CI and
//! users invoke it — with an out-of-range `--rate` that provokes the
//! `FaultPlan::uniform` clamp warning.

use std::process::Command;

fn run_probe(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_fault_probe"))
        .args(args)
        .output()
        .expect("fault_probe runs")
}

#[test]
fn json_stdout_stays_parseable_when_the_clamp_warning_fires() {
    let out = run_probe(&["--rate", "1.5", "--json"]);
    assert!(out.status.success(), "fault_probe failed: {out:?}");

    let stdout = String::from_utf8(out.stdout).expect("stdout is UTF-8");
    let stderr = String::from_utf8(out.stderr).expect("stderr is UTF-8");

    // The warning fired — but on stderr, not stdout.
    assert!(stderr.contains("warning:"), "expected a clamp warning on stderr, got: {stderr}");
    assert!(stderr.contains("1.5"), "the warning names the offending rate: {stderr}");
    assert!(!stdout.contains("warning"), "stdout must carry no warnings: {stdout}");

    // Stdout is exactly one parseable JSON document.
    let doc = obs::json::parse(&stdout).expect("stdout parses as JSON");
    let title = doc.get("title").and_then(obs::json::Value::as_str);
    assert_eq!(title, Some("fault_probe"));
    let sections = doc.get("sections").and_then(obs::json::Value::as_array).expect("sections");
    assert_eq!(sections.len(), 1);
    let rows = sections[0].get("rows").and_then(obs::json::Value::as_array).expect("rows");
    assert_eq!(rows.len(), 1);
    // The clamp actually applied: rate 1.5 collapsed to 1.0.
    let applied = rows[0].get("applied rate").and_then(obs::json::Value::as_str);
    assert_eq!(applied, Some("1"), "row: {:?}", rows[0]);
}

#[test]
fn valid_rate_emits_no_warning_in_either_mode() {
    for args in [&["--rate", "0.01", "--json"][..], &["--rate", "0.01"][..]] {
        let out = run_probe(args);
        assert!(out.status.success());
        let stderr = String::from_utf8(out.stderr).expect("stderr is UTF-8");
        assert!(
            !stderr.contains("warning"),
            "no warning expected for a valid rate ({args:?}): {stderr}"
        );
    }
}

#[test]
fn text_mode_still_prints_the_table_to_stdout() {
    let out = run_probe(&["--rate", "2.0"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("stdout is UTF-8");
    let stderr = String::from_utf8(out.stderr).expect("stderr is UTF-8");
    assert!(stdout.contains("fault injection"), "table on stdout: {stdout}");
    assert!(stderr.contains("warning:"), "clamp warning on stderr: {stderr}");
}
