//! Randomized invariants of the Uni-STC pipeline and the numeric dataflow
//! kernels, over seed-swept block structures and matrices (deterministic,
//! offline replacements for the old proptest strategies).

use conformance::compare::{assert_dense_close, assert_slices_close, Tolerance};
use simkit::{Block16, T1Task, TileEngine};
use sparse::rng::Rng64;
use sparse::{BbcMatrix, CooMatrix, CsrMatrix};
use uni_stc::{kernels, UniStc, UniStcConfig};

fn random_block(rng: &mut Rng64, max_nnz: usize) -> Block16 {
    let nnz = rng.next_range(max_nnz + 1);
    let mut b = Block16::empty();
    for _ in 0..nnz {
        b.set(rng.next_range(16), rng.next_range(16));
    }
    b
}

fn random_matrix(rng: &mut Rng64, max_dim: usize) -> CsrMatrix {
    let n = 8 + rng.next_range(max_dim - 7);
    let nnz = 1 + rng.next_range(199);
    let mut coo = CooMatrix::new(n, n);
    for _ in 0..nnz {
        coo.push(rng.next_range(n), rng.next_range(n), rng.next_f64_range(0.1, 4.0));
    }
    CsrMatrix::try_from(coo).unwrap()
}

const CASES: u64 = 48;

#[test]
fn pipeline_conserves_work() {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed);
        let t = T1Task::mm(random_block(&mut rng, 64), random_block(&mut rng, 64));
        if t.is_trivial() {
            continue;
        }
        let r = UniStc::default().execute(&t);
        assert_eq!(r.useful, t.products(), "seed {seed}");
        assert_eq!(r.util.useful_ops(), r.useful, "seed {seed}");
        assert_eq!(r.util.cycles(), r.cycles, "seed {seed}");
    }
}

#[test]
fn pipeline_respects_physical_bounds() {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed ^ 0x10);
        let t = T1Task::mm(random_block(&mut rng, 64), random_block(&mut rng, 64));
        if t.is_trivial() {
            continue;
        }
        let cfg = UniStcConfig::default();
        let r = UniStc::new(cfg).execute(&t);
        // Lane-throughput floor.
        assert!(r.cycles >= t.products().div_ceil(64), "seed {seed}");
        // A cycle cannot activate more DPGs than exist.
        assert!(r.events.unit_cycles <= r.cycles * cfg.n_dpg as u64, "seed {seed}");
        // The gated output network never exceeds the static scale.
        assert!(
            r.events.c_ports_cycles <= r.cycles * (cfg.n_dpg as u64) * 256,
            "seed {seed}"
        );
        // Pre-merged partials: between products/4 (all length-4 segments)
        // and products (all length-1).
        assert!(r.events.partial_updates >= t.products().div_ceil(4), "seed {seed}");
        assert!(r.events.partial_updates <= t.products(), "seed {seed}");
    }
}

#[test]
fn more_dpgs_never_slower() {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed ^ 0x20);
        let t = T1Task::mm(random_block(&mut rng, 48), random_block(&mut rng, 48));
        if t.is_trivial() {
            continue;
        }
        let c4 = UniStc::new(UniStcConfig::with_dpgs(4)).execute(&t);
        let c8 = UniStc::new(UniStcConfig::with_dpgs(8)).execute(&t);
        let c16 = UniStc::new(UniStcConfig::with_dpgs(16)).execute(&t);
        assert!(c8.cycles <= c4.cycles, "seed {seed}");
        assert!(c16.cycles <= c8.cycles, "seed {seed}");
    }
}

#[test]
fn gating_only_reduces_energy_events() {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed ^ 0x30);
        let t = T1Task::mm(random_block(&mut rng, 48), random_block(&mut rng, 48));
        if t.is_trivial() {
            continue;
        }
        let gated_cfg = UniStcConfig { power_gating: true, ..Default::default() };
        let hot_cfg = UniStcConfig { power_gating: false, ..gated_cfg };
        let gated = UniStc::new(gated_cfg).execute(&t);
        let hot = UniStc::new(hot_cfg).execute(&t);
        // Identical schedule, different power accounting.
        assert_eq!(gated.cycles, hot.cycles, "seed {seed}");
        assert!(gated.events.unit_cycles <= hot.events.unit_cycles, "seed {seed}");
        assert!(gated.events.c_ports_cycles <= hot.events.c_ports_cycles, "seed {seed}");
    }
}

#[test]
fn mv_tasks_have_no_conflict_stalls() {
    // MV accumulates in per-thread registers: cycles are bounded by work
    // and DPG task parallelism only. With 16 or fewer T3 tasks and no
    // conflicts, every task is touched within ceil(16/8) + work cycles.
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed ^ 0x40);
        let mask = rng.next_u64() as u16;
        let t = T1Task::mv(random_block(&mut rng, 64), mask);
        if t.is_trivial() {
            continue;
        }
        let r = UniStc::default().execute(&t);
        let floor = t.products().div_ceil(64);
        // 16 possible MV T3 tasks on 8 DPGs: at most 2 refill waves beyond
        // the lane floor.
        assert!(r.cycles <= floor + 4, "seed {seed}: cycles {} floor {}", r.cycles, floor);
    }
}

#[test]
fn dataflow_spmv_matches_reference() {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed ^ 0x50);
        let a = random_matrix(&mut rng, 48);
        let bbc = BbcMatrix::from_csr(&a);
        let x: Vec<f64> = (0..a.ncols()).map(|i| ((i % 7) as f64) - 3.0).collect();
        let (y, _) = kernels::spmv(&UniStcConfig::default(), &bbc, &x).unwrap();
        let want = sparse::ops::spmv(&a, &x).unwrap();
        assert_slices_close(&y, &want, Tolerance::FP64_KERNEL, &format!("spmv seed {seed}"));
    }
}

#[test]
fn dataflow_spgemm_matches_reference() {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed ^ 0x60);
        let a = random_matrix(&mut rng, 32);
        let bbc = BbcMatrix::from_csr(&a);
        let (c, stats) = kernels::spgemm(&UniStcConfig::default(), &bbc, &bbc).unwrap();
        let want = sparse::ops::spgemm(&a, &a).unwrap();
        assert_dense_close(
            &c.to_dense(),
            &want.to_dense(),
            Tolerance::FP64_KERNEL,
            &format!("spgemm seed {seed}"),
        );
        assert_eq!(stats.products, sparse::ops::spgemm_flops(&a, &a).unwrap(), "seed {seed}");
    }
}

#[test]
fn fill_order_changes_schedule_not_results() {
    let a = Block16::from_fn(|r, c| (r * 3 + c) % 4 != 0);
    let b = Block16::from_fn(|r, c| (r + c * 5) % 3 != 0);
    let t = T1Task::mm(a, b);
    let z_cfg = UniStcConfig { fill_order: uni_stc::FillOrder::ZShape, ..Default::default() };
    let n_cfg = UniStcConfig { fill_order: uni_stc::FillOrder::NShape, ..z_cfg };
    let rz = UniStc::new(z_cfg).execute(&t);
    let rn = UniStc::new(n_cfg).execute(&t);
    assert_eq!(rz.useful, rn.useful);
    assert_eq!(rz.events.partial_updates, rn.events.partial_updates);
}

#[test]
fn ordering_strategy_changes_schedule_not_results() {
    use uni_stc::TaskOrdering;
    let a = Block16::from_fn(|r, c| (r * 7 + c) % 5 < 2);
    let b = Block16::from_fn(|r, c| (r + c) % 4 < 2);
    let t = T1Task::mm(a, b);
    let mut useful = Vec::new();
    for ordering in [TaskOrdering::DotProduct, TaskOrdering::OuterProduct, TaskOrdering::RowRow]
    {
        let cfg = UniStcConfig { ordering, ..Default::default() };
        useful.push(UniStc::new(cfg).execute(&t).useful);
    }
    assert!(useful.windows(2).all(|w| w[0] == w[1]));
}
