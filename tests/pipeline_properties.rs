//! Property-based invariants of the Uni-STC pipeline and the numeric
//! dataflow kernels, over randomized block structures and matrices.

use proptest::prelude::*;
use simkit::{Block16, T1Task, TileEngine};
use sparse::{BbcMatrix, CooMatrix, CsrMatrix};
use uni_stc::{kernels, UniStc, UniStcConfig};

fn arb_block(max_nnz: usize) -> impl Strategy<Value = Block16> {
    proptest::collection::vec((0usize..16, 0usize..16), 0..=max_nnz).prop_map(|pts| {
        let mut b = Block16::empty();
        for (r, c) in pts {
            b.set(r, c);
        }
        b
    })
}

fn arb_matrix(max_dim: usize) -> impl Strategy<Value = CsrMatrix> {
    (8usize..=max_dim).prop_flat_map(|n| {
        proptest::collection::vec(((0..n), (0..n), 0.1f64..4.0), 1..200).prop_map(
            move |entries| {
                let mut coo = CooMatrix::new(n, n);
                for (r, c, v) in entries {
                    coo.push(r, c, v);
                }
                CsrMatrix::try_from(coo).unwrap()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pipeline_conserves_work(a in arb_block(64), b in arb_block(64)) {
        let t = T1Task::mm(a, b);
        prop_assume!(!t.is_trivial());
        let r = UniStc::default().execute(&t);
        prop_assert_eq!(r.useful, t.products());
        prop_assert_eq!(r.util.useful_ops(), r.useful);
        prop_assert_eq!(r.util.cycles(), r.cycles);
    }

    #[test]
    fn pipeline_respects_physical_bounds(a in arb_block(64), b in arb_block(64)) {
        let t = T1Task::mm(a, b);
        prop_assume!(!t.is_trivial());
        let cfg = UniStcConfig::default();
        let r = UniStc::new(cfg).execute(&t);
        // Lane-throughput floor.
        prop_assert!(r.cycles >= t.products().div_ceil(64));
        // A cycle cannot activate more DPGs than exist.
        prop_assert!(r.events.unit_cycles <= r.cycles * cfg.n_dpg as u64);
        // The gated output network never exceeds the static scale.
        prop_assert!(r.events.c_ports_cycles <= r.cycles * (cfg.n_dpg as u64) * 256);
        // Pre-merged partials: between products/4 (all length-4 segments)
        // and products (all length-1).
        prop_assert!(r.events.partial_updates >= t.products().div_ceil(4));
        prop_assert!(r.events.partial_updates <= t.products());
    }

    #[test]
    fn more_dpgs_never_slower(a in arb_block(48), b in arb_block(48)) {
        let t = T1Task::mm(a, b);
        prop_assume!(!t.is_trivial());
        let c4 = UniStc::new(UniStcConfig::with_dpgs(4)).execute(&t);
        let c8 = UniStc::new(UniStcConfig::with_dpgs(8)).execute(&t);
        let c16 = UniStc::new(UniStcConfig::with_dpgs(16)).execute(&t);
        prop_assert!(c8.cycles <= c4.cycles);
        prop_assert!(c16.cycles <= c8.cycles);
    }

    #[test]
    fn gating_only_reduces_energy_events(a in arb_block(48), b in arb_block(48)) {
        let t = T1Task::mm(a, b);
        prop_assume!(!t.is_trivial());
        let gated_cfg = UniStcConfig { power_gating: true, ..Default::default() };
        let hot_cfg = UniStcConfig { power_gating: false, ..gated_cfg };
        let gated = UniStc::new(gated_cfg).execute(&t);
        let hot = UniStc::new(hot_cfg).execute(&t);
        // Identical schedule, different power accounting.
        prop_assert_eq!(gated.cycles, hot.cycles);
        prop_assert!(gated.events.unit_cycles <= hot.events.unit_cycles);
        prop_assert!(gated.events.c_ports_cycles <= hot.events.c_ports_cycles);
    }

    #[test]
    fn mv_tasks_have_no_conflict_stalls(a in arb_block(64), mask in any::<u16>()) {
        // MV accumulates in per-thread registers: cycles are bounded by
        // work and DPG task parallelism only. With 16 or fewer T3 tasks
        // and no conflicts, every task is touched within ceil(16/8) + work
        // cycles.
        let t = T1Task::mv(a, mask);
        prop_assume!(!t.is_trivial());
        let r = UniStc::default().execute(&t);
        let floor = t.products().div_ceil(64);
        // 16 possible MV T3 tasks on 8 DPGs: at most 2 refill waves beyond
        // the lane floor.
        prop_assert!(r.cycles <= floor + 4, "cycles {} floor {}", r.cycles, floor);
    }

    #[test]
    fn dataflow_spmv_matches_reference(a in arb_matrix(48)) {
        let bbc = BbcMatrix::from_csr(&a);
        let x: Vec<f64> = (0..a.ncols()).map(|i| ((i % 7) as f64) - 3.0).collect();
        let (y, _) = kernels::spmv(&UniStcConfig::default(), &bbc, &x).unwrap();
        let want = sparse::ops::spmv(&a, &x).unwrap();
        for (g, w) in y.iter().zip(&want) {
            prop_assert!((g - w).abs() < 1e-9);
        }
    }

    #[test]
    fn dataflow_spgemm_matches_reference(a in arb_matrix(32)) {
        let bbc = BbcMatrix::from_csr(&a);
        let (c, stats) = kernels::spgemm(&UniStcConfig::default(), &bbc, &bbc).unwrap();
        let want = sparse::ops::spgemm(&a, &a).unwrap();
        prop_assert!(c.to_dense().max_abs_diff(&want.to_dense()) < 1e-9);
        prop_assert_eq!(stats.products, sparse::ops::spgemm_flops(&a, &a).unwrap());
    }
}

#[test]
fn fill_order_changes_schedule_not_results() {
    let a = Block16::from_fn(|r, c| (r * 3 + c) % 4 != 0);
    let b = Block16::from_fn(|r, c| (r + c * 5) % 3 != 0);
    let t = T1Task::mm(a, b);
    let z_cfg = UniStcConfig { fill_order: uni_stc::FillOrder::ZShape, ..Default::default() };
    let n_cfg = UniStcConfig { fill_order: uni_stc::FillOrder::NShape, ..z_cfg };
    let rz = UniStc::new(z_cfg).execute(&t);
    let rn = UniStc::new(n_cfg).execute(&t);
    assert_eq!(rz.useful, rn.useful);
    assert_eq!(rz.events.partial_updates, rn.events.partial_updates);
}

#[test]
fn ordering_strategy_changes_schedule_not_results() {
    use uni_stc::TaskOrdering;
    let a = Block16::from_fn(|r, c| (r * 7 + c) % 5 < 2);
    let b = Block16::from_fn(|r, c| (r + c) % 4 < 2);
    let t = T1Task::mm(a, b);
    let mut useful = Vec::new();
    for ordering in [TaskOrdering::DotProduct, TaskOrdering::OuterProduct, TaskOrdering::RowRow]
    {
        let cfg = UniStcConfig { ordering, ..Default::default() };
        useful.push(UniStc::new(cfg).execute(&t).useful);
    }
    assert!(useful.windows(2).all(|w| w[0] == w[1]));
}
