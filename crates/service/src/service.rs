//! The batch job service: a long-lived dispatcher in front of the
//! engines.
//!
//! Clients [`submit`](Service::submit) jobs from any thread; a single
//! dispatcher thread drains the bounded queue, batches jobs that share a
//! compiled task stream, and executes each batch once on the resilient
//! [`runtime`] pool. Three properties the rest of the repo is built on
//! are preserved end to end:
//!
//! * **Bit-identity** — a cached response is byte-for-byte the serial
//!   driver's report: the encoding cache stores the deterministic
//!   CSR→BBC encoding, the stream cache stores the exact `Vec<T1Task>`
//!   the driver would regenerate, and the runtime's fold is the proven
//!   commutative monoid. Warm, cold, batched and degraded runs all
//!   produce the same [`counter_signature`](simkit::driver::KernelReport::counter_signature).
//! * **Admission control** — with [`ServiceConfig::admission`] on,
//!   every stream passes `analysis::UstcVerifier` before it is
//!   scheduled, so illegal work is rejected with its `USTC` code instead
//!   of being simulated; the shard plan is additionally proven legal by
//!   [`ShardPlan::verify_before_run`] before any worker spawns.
//!   Non-conforming SpGEMM grids are rejected (`USTC012`) even with
//!   admission off, because the task compiler cannot represent them.
//! * **Observability** — queue depth, batch sizes, cache hit/miss/
//!   eviction tallies, per-kernel latency histograms, runtime scheduler
//!   stats and the degraded-run counter all land in one
//!   [`MetricsRegistry`] snapshot ([`Service::metrics`]).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};

use analysis::UstcVerifier;
use obs::MetricsRegistry;
use runtime::{run_tasks_planned, PlannedRunError, RuntimeConfig, ShardPlan, ShardPlanError};
use simkit::driver::{self, Kernel, StreamVerifier, VerifyError};
use simkit::{EnergyModel, Precision, T1Task, TileEngine};
use sparse::{BbcMatrix, SparseVector};
use uni_stc::{UniStc, UniStcConfig};

use crate::cache::{CacheStats, SharedCache};
use crate::fingerprint::{fingerprint_bbc, fingerprint_csr, fingerprint_vector, Fingerprint};
use crate::request::{JobError, JobRequest, JobResponse, KernelRequest, Operand};

/// The engine jobs run on when [`JobRequest::engine`] is `None`.
pub const DEFAULT_ENGINE: &str = "Uni-STC";

/// Upper-inclusive bounds for the per-kernel latency histograms
/// (`service/latency_us/<kernel>`), in microseconds.
pub const LATENCY_BOUNDS_US: &[u64] = &[100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];

/// Upper-inclusive bounds for the queue-depth histogram
/// (`service/queue_depth_hist`), observed at every batch dequeue.
pub const QUEUE_DEPTH_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128];

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// How batches execute on the runtime pool (threads, retries,
    /// chaos, quorum). The default is serial execution.
    pub exec: RuntimeConfig,
    /// Numeric precision the engine roster is built for.
    pub precision: Precision,
    /// Capacity of the CSR→BBC encoding cache (entries; 0 disables).
    pub encoding_cache_capacity: usize,
    /// Capacity of the compiled-task-stream cache (entries; 0 disables).
    pub stream_cache_capacity: usize,
    /// Whether to statically verify every stream with
    /// `analysis::UstcVerifier` before scheduling it.
    pub admission: bool,
    /// Most jobs the dispatcher folds into one batch drain.
    pub max_batch: usize,
    /// Bounded queue length, in envelopes; a full queue blocks
    /// [`Service::submit`] (backpressure, never loss).
    pub queue_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            exec: RuntimeConfig::serial(),
            precision: Precision::Fp64,
            encoding_cache_capacity: 64,
            stream_cache_capacity: 128,
            admission: true,
            max_batch: 32,
            queue_capacity: 64,
        }
    }
}

/// The compiled-stream identity of a request: kernel plus the content
/// fingerprints of every operand that shapes the task stream. Two jobs
/// with equal keys execute the identical `Vec<T1Task>`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum StreamKey {
    Spmv { a: Fingerprint },
    Spmspv { a: Fingerprint, x: Fingerprint },
    Spmm { a: Fingerprint, n_cols: usize },
    Spgemm { a: Fingerprint, b: Fingerprint },
}

/// An admitted job, ready to batch: resolved operands plus its stream key.
struct Prepared {
    engine: String,
    key: StreamKey,
    kernel: Kernel,
    encoding_cached: bool,
    a: Arc<BbcMatrix>,
    x: Option<Arc<SparseVector>>,
    b: Option<Arc<BbcMatrix>>,
    n_cols: usize,
}

type JobResult = Result<JobResponse, JobError>;

struct QueuedJob {
    request: JobRequest,
    reply: mpsc::Sender<JobResult>,
    submitted: obs::WallSpan,
}

struct Envelope {
    jobs: Vec<QueuedJob>,
}

/// State shared between client threads and the dispatcher.
struct Shared {
    metrics: Mutex<MetricsRegistry>,
    encodings: SharedCache<Fingerprint, BbcMatrix>,
    streams: SharedCache<StreamKey, Vec<T1Task>>,
    /// Memoized admission verdicts: static verification is a pure
    /// function of the operand content a [`StreamKey`] names, so a
    /// repeated key replays the recorded verdict (accept *or* reject)
    /// instead of re-walking the encoded operands on every submission.
    /// This is what lets one operator fingerprint serve N solver
    /// iterations at cache-hit cost without weakening admission: every
    /// distinct content is still verified exactly once.
    verdicts: SharedCache<StreamKey, Result<(), VerifyError>>,
    queue_depth: AtomicU64,
}

impl Shared {
    fn metrics(&self) -> std::sync::MutexGuard<'_, MetricsRegistry> {
        self.metrics.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A pending job's receive side; [`JobHandle::wait`] blocks until the
/// dispatcher answers.
#[derive(Debug)]
pub struct JobHandle {
    rx: mpsc::Receiver<JobResult>,
}

impl JobHandle {
    /// Blocks until the job completes (or the service stops).
    ///
    /// # Errors
    ///
    /// Propagates the dispatcher's [`JobError`];
    /// [`JobError::ServiceStopped`] if the service shut down first.
    pub fn wait(self) -> JobResult {
        self.rx.recv().unwrap_or(Err(JobError::ServiceStopped))
    }
}

/// A running batch job service. Dropping it (or calling
/// [`Service::shutdown`]) drains the queue and joins the dispatcher.
pub struct Service {
    tx: Option<mpsc::SyncSender<Envelope>>,
    dispatcher: Option<std::thread::JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl Service {
    /// Starts the dispatcher thread and returns the client handle.
    pub fn start(cfg: ServiceConfig) -> Self {
        let shared = Arc::new(Shared {
            metrics: Mutex::new(MetricsRegistry::new()),
            encodings: SharedCache::new(cfg.encoding_cache_capacity),
            streams: SharedCache::new(cfg.stream_cache_capacity),
            // Verdicts share the stream cache's working set: one entry
            // per distinct stream key, far smaller than its payload.
            verdicts: SharedCache::new(cfg.stream_cache_capacity),
            queue_depth: AtomicU64::new(0),
        });
        let (tx, rx) = mpsc::sync_channel(cfg.queue_capacity.max(1));
        let worker_shared = Arc::clone(&shared);
        let dispatcher = std::thread::Builder::new()
            .name("service-dispatcher".to_owned())
            .spawn(move || dispatch_loop(cfg, rx, worker_shared));
        // Spawn failure leaves a service whose submits all answer
        // `ServiceStopped` — degraded but well-defined.
        Service { tx: Some(tx), dispatcher: dispatcher.ok(), shared }
    }

    /// Submits one job. Blocks while the queue is full (backpressure).
    pub fn submit(&self, request: JobRequest) -> JobHandle {
        let mut handles = self.submit_batch(vec![request]);
        // submit_batch returns exactly one handle per request.
        match handles.pop() {
            Some(h) => h,
            None => closed_handle(),
        }
    }

    /// Submits several jobs as one envelope: the dispatcher sees them
    /// together, so same-stream requests are guaranteed to share a batch
    /// (and its single execution).
    pub fn submit_batch(&self, requests: Vec<JobRequest>) -> Vec<JobHandle> {
        let mut handles = Vec::with_capacity(requests.len());
        let mut jobs = Vec::with_capacity(requests.len());
        for request in requests {
            let (reply, rx) = mpsc::channel();
            handles.push(JobHandle { rx });
            jobs.push(QueuedJob { request, reply, submitted: obs::WallSpan::start() });
        }
        let n = jobs.len() as u64;
        self.shared.metrics().inc_counter("service/jobs_submitted", n);
        self.shared.queue_depth.fetch_add(n, Ordering::Relaxed);
        let sent = match &self.tx {
            Some(tx) => tx.send(Envelope { jobs }).is_ok(),
            None => false,
        };
        if !sent {
            // The dispatcher is gone; the dropped reply senders make
            // every handle report `ServiceStopped`.
            self.shared.queue_depth.fetch_sub(n, Ordering::Relaxed);
        }
        handles
    }

    /// A point-in-time metrics snapshot: dispatcher counters and
    /// histograms plus the caches' hit/miss/eviction tallies and
    /// eviction-pressure gauges (`service/encoding_cache_*`,
    /// `service/stream_cache_*`, `service/admission_cache_*`), and
    /// per-kernel latency quantile gauges
    /// (`service/latency_p50_us/<kernel>`,
    /// `service/latency_p99_us/<kernel>`) derived from the latency
    /// histograms at snapshot time.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut m = self.shared.metrics().clone();
        export_cache(&mut m, "service/encoding_cache", self.shared.encodings.stats());
        export_cache(&mut m, "service/stream_cache", self.shared.streams.stats());
        export_cache(&mut m, "service/admission_cache", self.shared.verdicts.stats());
        export_latency_quantiles(&mut m);
        m
    }

    /// Stops accepting work, drains the queue, joins the dispatcher and
    /// returns the final metrics snapshot.
    pub fn shutdown(mut self) -> MetricsRegistry {
        self.stop();
        self.metrics()
    }

    fn stop(&mut self) {
        self.tx.take();
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.stop();
    }
}

/// A handle whose reply channel is already closed: waiting on it yields
/// `ServiceStopped`.
fn closed_handle() -> JobHandle {
    let (_tx, rx) = mpsc::channel();
    JobHandle { rx }
}

fn export_cache(m: &mut MetricsRegistry, prefix: &str, s: CacheStats) {
    m.inc_counter(&format!("{prefix}_hits"), s.hits);
    m.inc_counter(&format!("{prefix}_misses"), s.misses);
    m.inc_counter(&format!("{prefix}_evictions"), s.evictions);
    m.inc_counter(&format!("{prefix}_inserts"), s.inserts);
    m.set_gauge(&format!("{prefix}_pressure"), s.pressure());
}

/// Derives p50/p99 gauges from every `service/latency_us/<kernel>`
/// histogram present in the snapshot. Quantiles are conservative bucket
/// upper bounds (see `obs::Histogram::quantile`); a tail that escaped the
/// bucket range reports as `u64::MAX` and fails any finite SLO gate.
fn export_latency_quantiles(m: &mut MetricsRegistry) {
    const PREFIX: &str = "service/latency_us/";
    let mut quantiles = Vec::new();
    for kernel in ["SpMV", "SpMSpV", "SpMM", "SpGEMM"] {
        if let Some(h) = m.histogram(&format!("{PREFIX}{kernel}")) {
            for (tag, q) in [("p50", 0.50), ("p99", 0.99)] {
                if let Some(v) = h.quantile(q) {
                    quantiles
                        .push((format!("service/latency_{tag}_us/{kernel}"), v as f64));
                }
            }
        }
    }
    for (name, v) in quantiles {
        m.set_gauge(&name, v);
    }
}

/// The engine roster the service dispatches to: all seven engines of the
/// paper's comparison, keyed by display name.
fn engine_roster(precision: Precision) -> BTreeMap<String, Box<dyn TileEngine + Send + Sync>> {
    let engines: Vec<Box<dyn TileEngine + Send + Sync>> = vec![
        Box::new(baselines::NvDtc::new(precision)),
        Box::new(baselines::Gamma::new(precision)),
        Box::new(baselines::Sigma::new(precision)),
        Box::new(baselines::Trapezoid::new(precision)),
        Box::new(baselines::DsStc::new(precision)),
        Box::new(baselines::RmStc::new(precision)),
        Box::new(UniStc::new(UniStcConfig::with_precision(precision))),
    ];
    engines.into_iter().map(|e| (e.name().to_owned(), e)).collect()
}

fn dispatch_loop(cfg: ServiceConfig, rx: mpsc::Receiver<Envelope>, shared: Arc<Shared>) {
    let engines = engine_roster(cfg.precision);
    let verifier = cfg
        .admission
        .then(|| UstcVerifier::new(UniStcConfig::with_precision(cfg.precision)));
    let em = EnergyModel::default();
    while let Ok(first) = rx.recv() {
        let mut jobs = first.jobs;
        // Opportunistically fold queued envelopes into this drain, up to
        // the batch cap: jobs that share a stream key then execute once.
        while jobs.len() < cfg.max_batch.max(1) {
            match rx.try_recv() {
                Ok(env) => jobs.extend(env.jobs),
                Err(_) => break,
            }
        }
        shared.queue_depth.fetch_sub(jobs.len() as u64, Ordering::Relaxed);
        let depth_after = shared.queue_depth.load(Ordering::Relaxed);
        {
            let mut m = shared.metrics();
            m.inc_counter("service/batches", 1);
            m.set_gauge("service/queue_depth", depth_after as f64);
            m.observe("service/queue_depth_hist", QUEUE_DEPTH_BOUNDS, depth_after);
        }
        run_batch(&cfg, &engines, verifier.as_ref(), &em, &shared, jobs);
    }
}

/// Admits, groups and executes one drained batch, answering every job.
fn run_batch(
    cfg: &ServiceConfig,
    engines: &BTreeMap<String, Box<dyn TileEngine + Send + Sync>>,
    verifier: Option<&UstcVerifier>,
    em: &EnergyModel,
    shared: &Shared,
    jobs: Vec<QueuedJob>,
) {
    // Group admitted jobs by (engine, stream key); rejections answer now.
    let mut groups: BTreeMap<(String, StreamKey), Vec<(Prepared, QueuedJob)>> = BTreeMap::new();
    for job in jobs {
        match prepare(&job.request, engines, verifier, shared) {
            Ok(p) => groups
                .entry((p.engine.clone(), p.key.clone()))
                .or_default()
                .push((p, job)),
            Err(e) => {
                shared.metrics().inc_counter("service/jobs_rejected", 1);
                let _ = job.reply.send(Err(e));
            }
        }
    }
    for ((engine_name, key), members) in groups {
        let Some(engine) = engines.get(&engine_name) else {
            // Unreachable: `prepare` validated the name. Answer anyway.
            for (_, job) in members {
                let _ = job.reply.send(Err(JobError::UnknownEngine { name: engine_name.clone() }));
            }
            continue;
        };
        let (first, _) = &members[0];
        let (tasks, stream_cached) = shared.streams.get_or_insert_with(&key, || compile(first));
        let plan = ShardPlan::contiguous(tasks.len(), cfg.exec.threads);
        let batch_size = members.len();
        shared
            .metrics()
            .observe("service/batch_size", &[1, 2, 4, 8, 16, 32], batch_size as u64);
        match run_tasks_planned(&cfg.exec, &plan, engine.as_ref(), em, first.kernel, &tasks) {
            Ok(run) => {
                let degraded = run.degraded.is_some();
                {
                    let mut m = shared.metrics();
                    run.stats.export_metrics(&mut m);
                    if let Some(d) = &run.degraded {
                        d.export_metrics(&mut m);
                        m.inc_counter("service/degraded_jobs", batch_size as u64);
                    }
                    m.inc_counter("service/jobs_completed", batch_size as u64);
                }
                for (p, job) in members {
                    let latency = job.submitted.elapsed().as_micros().min(u128::from(u64::MAX));
                    shared.metrics().observe(
                        &format!("service/latency_us/{}", p.kernel),
                        LATENCY_BOUNDS_US,
                        latency as u64,
                    );
                    let _ = job.reply.send(Ok(JobResponse {
                        report: run.report.clone(),
                        encoding_cached: p.encoding_cached,
                        stream_cached,
                        batch_size,
                        degraded,
                    }));
                }
            }
            Err(e) => {
                let err = match e {
                    PlannedRunError::Rejected(p) => JobError::Rejected {
                        code: shard_plan_code(&p).to_owned(),
                        message: p.to_string(),
                    },
                    PlannedRunError::Execution(d) => JobError::Execution(d.to_string()),
                };
                let mut m = shared.metrics();
                m.inc_counter("service/jobs_rejected", batch_size as u64);
                drop(m);
                for (_, job) in members {
                    let _ = job.reply.send(Err(err.clone()));
                }
            }
        }
    }
}

/// The `analysis::concurrency` diagnostic code for a shard-plan
/// violation: overlap `USTC014`, gap `USTC015`, malformed `USTC016`.
fn shard_plan_code(e: &ShardPlanError) -> &'static str {
    match e {
        ShardPlanError::Overlap { .. } => "USTC014",
        ShardPlanError::Gap { .. } => "USTC015",
        ShardPlanError::EmptyShard { .. } | ShardPlanError::OutOfRange { .. } => "USTC016",
    }
}

/// Resolves an operand to its BBC encoding through the encoding cache.
/// Returns the encoding, the *submitted representation's* fingerprint
/// (the cache and stream keys), and whether no fresh encoding work ran
/// (a cache hit, or a client-supplied BBC that needs none).
fn resolve(op: &Operand, shared: &Shared) -> (Arc<BbcMatrix>, Fingerprint, bool) {
    match op {
        Operand::Bbc(m) => (Arc::clone(m), fingerprint_bbc(m), true),
        Operand::Csr(m) => {
            let fp = fingerprint_csr(m);
            let (bbc, hit) = shared.encodings.get_or_insert_with(&fp, || BbcMatrix::from_csr(m));
            (bbc, fp, hit)
        }
    }
}

fn reject(e: VerifyError) -> JobError {
    JobError::Rejected { code: e.code, message: e.message }
}

/// Runs admission control through the verdict memo: on the first
/// sighting of `key` the verifier walks the operands and the verdict —
/// accept or reject — is recorded; every repeat replays it without
/// re-verification. No-op when admission is off.
fn admit(
    verifier: Option<&UstcVerifier>,
    shared: &Shared,
    key: &StreamKey,
    verify: impl FnOnce(&UstcVerifier) -> Result<(), VerifyError>,
) -> Result<(), JobError> {
    let Some(v) = verifier else { return Ok(()) };
    let (verdict, _) = shared.verdicts.get_or_insert_with(key, || verify(v));
    match verdict.as_ref() {
        Ok(()) => Ok(()),
        Err(e) => Err(reject(e.clone())),
    }
}

/// Validates, encodes and admits one request.
fn prepare(
    req: &JobRequest,
    engines: &BTreeMap<String, Box<dyn TileEngine + Send + Sync>>,
    verifier: Option<&UstcVerifier>,
    shared: &Shared,
) -> Result<Prepared, JobError> {
    let engine = req.engine.clone().unwrap_or_else(|| DEFAULT_ENGINE.to_owned());
    if !engines.contains_key(&engine) {
        return Err(JobError::UnknownEngine { name: engine });
    }
    match &req.kernel {
        KernelRequest::SpMV { a } => {
            let (a_bbc, fp_a, hit) = resolve(a, shared);
            let key = StreamKey::Spmv { a: fp_a };
            admit(verifier, shared, &key, |v| v.verify_spmv(&a_bbc))?;
            Ok(Prepared {
                engine,
                key,
                kernel: Kernel::SpMV,
                encoding_cached: hit,
                a: a_bbc,
                x: None,
                b: None,
                n_cols: 0,
            })
        }
        KernelRequest::SpMSpV { a, x } => {
            let (a_bbc, fp_a, hit) = resolve(a, shared);
            let key = StreamKey::Spmspv { a: fp_a, x: fingerprint_vector(x) };
            admit(verifier, shared, &key, |v| v.verify_spmspv(&a_bbc, x))?;
            Ok(Prepared {
                engine,
                key,
                kernel: Kernel::SpMSpV,
                encoding_cached: hit,
                a: a_bbc,
                x: Some(Arc::clone(x)),
                b: None,
                n_cols: 0,
            })
        }
        KernelRequest::SpMM { a, n_cols } => {
            let (a_bbc, fp_a, hit) = resolve(a, shared);
            let key = StreamKey::Spmm { a: fp_a, n_cols: *n_cols };
            admit(verifier, shared, &key, |v| v.verify_spmm(&a_bbc, *n_cols))?;
            Ok(Prepared {
                engine,
                key,
                kernel: Kernel::SpMM,
                encoding_cached: hit,
                a: a_bbc,
                x: None,
                b: None,
                n_cols: *n_cols,
            })
        }
        KernelRequest::SpGEMM { a, b } => {
            let (a_bbc, fp_a, hit_a) = resolve(a, shared);
            let (b_bbc, fp_b, hit_b) = resolve(b, shared);
            let key = StreamKey::Spgemm { a: fp_a, b: fp_b };
            admit(verifier, shared, &key, |v| v.verify_spgemm(&a_bbc, &b_bbc))?;
            // The task compiler cannot represent a non-conforming grid
            // (it would panic), so this gate holds even with admission
            // off — the same `USTC012` the verified driver reports.
            if a_bbc.block_cols() != b_bbc.block_rows() {
                return Err(JobError::Rejected {
                    code: "USTC012".to_owned(),
                    message: format!(
                        "SpGEMM block grids do not conform ({}x{} blocks vs {}x{})",
                        a_bbc.block_rows(),
                        a_bbc.block_cols(),
                        b_bbc.block_rows(),
                        b_bbc.block_cols()
                    ),
                });
            }
            Ok(Prepared {
                engine,
                key,
                kernel: Kernel::SpGEMM,
                encoding_cached: hit_a && hit_b,
                a: a_bbc,
                x: None,
                b: Some(b_bbc),
                n_cols: 0,
            })
        }
    }
}

/// Compiles the task stream for an admitted job — exactly the stream the
/// serial driver would run, so caching it preserves bit-identity.
fn compile(p: &Prepared) -> Vec<T1Task> {
    match (&p.kernel, &p.x, &p.b) {
        (Kernel::SpMV, _, _) => driver::spmv_tasks(&p.a),
        (Kernel::SpMSpV, Some(x), _) => driver::spmspv_tasks(&p.a, x),
        (Kernel::SpMSpV, None, _) => Vec::new(),
        (Kernel::SpMM, _, _) => driver::spmm_tasks(&p.a, p.n_cols),
        (Kernel::SpGEMM, _, Some(b)) => driver::spgemm_tasks(&p.a, b),
        (Kernel::SpGEMM, _, None) => Vec::new(),
    }
}
