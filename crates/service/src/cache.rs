//! Deterministic, capacity-bounded caches for encoded operands and
//! compiled task streams.
//!
//! Eviction is least-recently-used over a logical tick counter — every
//! lookup or insert advances the tick, and the entry with the smallest
//! last-touch tick is evicted when the cache is full. No wall clock is
//! involved, so a fixed request sequence always produces the same hit /
//! miss / eviction trace, which is what lets the chaos suite assert cache
//! statistics exactly.
//!
//! [`SharedCache`] wraps the LRU in a mutex for the service's concurrent
//! submit path. The miss path computes the value *outside* the lock: two
//! racing misses on the same key may both compute, but only the first
//! insert wins and every caller observes the winning value. Encoded
//! matrices and compiled streams are pure functions of their fingerprint,
//! so a losing double-compute is wasted work, never a wrong answer — the
//! concurrency race test pins this.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Running hit/miss/eviction tallies for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries actually stored (losing racers do not count).
    pub inserts: u64,
}

impl CacheStats {
    /// Eviction pressure: evictions per insert, in `[0, 1]`.
    ///
    /// 0 means every stored entry is still resident (the working set
    /// fits); values approaching 1 mean nearly every insert displaced
    /// something — the cache is thrashing and capacity, not traffic
    /// shape, is deciding the hit rate. Returns 0 when nothing was ever
    /// inserted. Surfaced in the metrics registry as
    /// `service/<cache>_pressure` and reported by the stencil
    /// multi-operator eviction study.
    pub fn pressure(&self) -> f64 {
        if self.inserts == 0 {
            0.0
        } else {
            self.evictions as f64 / self.inserts as f64
        }
    }
}

/// An LRU cache over a `BTreeMap`, evicting by logical tick.
///
/// Capacity 0 disables storage entirely: every lookup misses and every
/// insert is dropped (useful for cold-path measurement).
#[derive(Debug)]
pub struct LruCache<K: Ord + Clone, V: Clone> {
    capacity: usize,
    tick: u64,
    entries: BTreeMap<K, (V, u64)>,
    stats: CacheStats,
}

impl<K: Ord + Clone, V: Clone> LruCache<K, V> {
    /// An empty cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LruCache { capacity, tick: 0, entries: BTreeMap::new(), stats: CacheStats::default() }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The running statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn lookup(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        match self.entries.get_mut(key) {
            Some((v, touched)) => {
                *touched = self.tick;
                self.stats.hits += 1;
                Some(v.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts `value` under `key` unless the key is already present
    /// (first writer wins; the racing loser's value is dropped). Returns
    /// whether the insert took effect. Evicts the least-recently-touched
    /// entry first when the cache is full.
    pub fn insert_if_absent(&mut self, key: K, value: V) -> bool {
        if self.capacity == 0 || self.entries.contains_key(&key) {
            return false;
        }
        if self.entries.len() >= self.capacity {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, (_, touched))| *touched)
                .map(|(k, _)| k.clone());
            if let Some(k) = victim {
                self.entries.remove(&k);
                self.stats.evictions += 1;
            }
        }
        self.tick += 1;
        self.entries.insert(key, (value, self.tick));
        self.stats.inserts += 1;
        true
    }
}

/// A thread-safe [`LruCache`] with a compute-outside-the-lock miss path.
#[derive(Debug)]
pub struct SharedCache<K: Ord + Clone, V: Clone> {
    inner: Mutex<LruCache<K, Arc<V>>>,
}

impl<K: Ord + Clone, V: Clone> SharedCache<K, V> {
    /// An empty shared cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        SharedCache { inner: Mutex::new(LruCache::new(capacity)) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, LruCache<K, Arc<V>>> {
        // A poisoned lock means another thread panicked mid-operation;
        // the map itself is still structurally sound (every mutation is
        // a single BTreeMap call), so continue with the inner value.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A snapshot of the running statistics.
    pub fn stats(&self) -> CacheStats {
        self.lock().stats()
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Looks up `key` without computing anything.
    pub fn lookup(&self, key: &K) -> Option<Arc<V>> {
        self.lock().lookup(key)
    }

    /// Returns the cached value for `key`, computing and inserting it on
    /// a miss. The second element reports whether this call was a hit.
    ///
    /// `compute` runs with no lock held. If two threads miss on the same
    /// key concurrently, both compute; the first to finish inserts and
    /// the loser adopts the winner's value (checked under the lock before
    /// inserting), so all callers agree on one cached value.
    pub fn get_or_insert_with(&self, key: &K, compute: impl FnOnce() -> V) -> (Arc<V>, bool) {
        if let Some(v) = self.lock().lookup(key) {
            return (v, true);
        }
        let fresh = Arc::new(compute());
        let mut guard = self.lock();
        // Re-check: a racer may have inserted while we were computing.
        // This probe is a resolution step of *this* miss, not a second
        // lookup, so it must not touch the hit/miss tallies.
        if let Some((winner, _)) = guard.entries.get(key) {
            return (Arc::clone(winner), false);
        }
        guard.insert_if_absent(key.clone(), Arc::clone(&fresh));
        (fresh, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_tracks_hits_and_misses() {
        let mut c: LruCache<u32, String> = LruCache::new(4);
        assert_eq!(c.lookup(&1), None);
        assert!(c.insert_if_absent(1, "one".to_owned()));
        assert_eq!(c.lookup(&1).as_deref(), Some("one"));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
    }

    #[test]
    fn pressure_is_evictions_per_insert() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        assert!(c.stats().pressure() == 0.0, "empty cache has no pressure");
        c.insert_if_absent(1, 10);
        c.insert_if_absent(2, 20);
        assert!(c.stats().pressure() == 0.0, "working set fits");
        c.insert_if_absent(3, 30);
        c.insert_if_absent(4, 40);
        let s = c.stats();
        assert_eq!((s.inserts, s.evictions), (4, 2));
        assert!(s.pressure() == 0.5);
    }

    #[test]
    fn first_writer_wins() {
        let mut c: LruCache<u32, u32> = LruCache::new(4);
        assert!(c.insert_if_absent(7, 70));
        assert!(!c.insert_if_absent(7, 71));
        assert_eq!(c.lookup(&7), Some(70));
        assert_eq!(c.stats().inserts, 1);
    }

    #[test]
    fn eviction_is_least_recently_used_and_deterministic() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert_if_absent(1, 10);
        c.insert_if_absent(2, 20);
        // Touch 1 so 2 becomes the LRU victim.
        assert_eq!(c.lookup(&1), Some(10));
        c.insert_if_absent(3, 30);
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup(&2), None, "2 was least recently used");
        assert_eq!(c.lookup(&1), Some(10));
        assert_eq!(c.lookup(&3), Some(30));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let mut c: LruCache<u32, u32> = LruCache::new(0);
        assert!(!c.insert_if_absent(1, 10));
        assert_eq!(c.lookup(&1), None);
        assert_eq!(c.stats().inserts, 0);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn replaying_a_sequence_reproduces_the_stats() {
        let run = || {
            let mut c: LruCache<u32, u32> = LruCache::new(3);
            for &k in &[1, 2, 3, 1, 4, 2, 5, 1, 1, 6] {
                if c.lookup(&k).is_none() {
                    c.insert_if_absent(k, k * 10);
                }
            }
            c.stats()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn shared_cache_get_or_insert_reports_hits() {
        let c: SharedCache<u32, u32> = SharedCache::new(4);
        let (v, hit) = c.get_or_insert_with(&3, || 30);
        assert_eq!((*v, hit), (30, false));
        let (v, hit) = c.get_or_insert_with(&3, || 31);
        assert_eq!((*v, hit), (30, true), "second call must hit the cached value");
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
    }
}
