//! Stable content fingerprints for service operands.
//!
//! The operand caches are keyed by a 128-bit content hash over the exact
//! bytes that define a matrix or vector: dimensions, structure arrays and
//! the IEEE-754 bit patterns of the values. Two submissions with
//! byte-identical content always map to the same fingerprint, across
//! processes and platforms (everything is hashed in a fixed
//! little-endian order), so a warm cache entry is exactly as good as
//! re-encoding the operand from scratch.
//!
//! The hash is two independent 64-bit FNV-1a streams (different offset
//! bases, same data), concatenated into 128 bits. FNV is not
//! collision-resistant against an adversary, but the service caches are
//! a performance layer, not a security boundary: a colliding pair would
//! need ~2^64 distinct operands in one process lifetime to appear by
//! chance, and the conformance counter signatures would catch the
//! resulting wrong report immediately.
//!
//! Each operand family hashes a distinct domain tag first, so a CSR
//! matrix, a BBC matrix and a sparse vector can never collide with each
//! other even if their raw arrays happened to agree.

use sparse::{BbcMatrix, CsrMatrix, SparseVector};

const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
const FNV_OFFSET_A: u64 = 0xCBF2_9CE4_8422_2325;
/// A second, independent stream: the standard offset basis XOR a fixed
/// pad, so the two lanes disagree from the first byte on.
const FNV_OFFSET_B: u64 = 0xCBF2_9CE4_8422_2325 ^ 0x9E37_79B9_7F4A_7C15;

/// A 128-bit content fingerprint (two independent FNV-1a 64 lanes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fingerprint(pub [u64; 2]);

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:016x}", self.0[0], self.0[1])
    }
}

/// Incremental two-lane FNV-1a hasher.
#[derive(Debug, Clone)]
pub struct Hasher {
    a: u64,
    b: u64,
}

impl Default for Hasher {
    fn default() -> Self {
        Hasher::new()
    }
}

impl Hasher {
    /// A fresh hasher at the two offset bases.
    pub fn new() -> Self {
        Hasher { a: FNV_OFFSET_A, b: FNV_OFFSET_B }
    }

    /// Absorbs raw bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs one `u64` in little-endian order.
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// Absorbs a `usize` slice as little-endian `u64`s (lengths first, so
    /// adjacent arrays cannot alias across a boundary shift).
    fn update_usizes(&mut self, vs: &[usize]) {
        self.update_u64(vs.len() as u64);
        for &v in vs {
            self.update_u64(v as u64);
        }
    }

    fn update_u32s(&mut self, vs: &[u32]) {
        self.update_u64(vs.len() as u64);
        for &v in vs {
            self.update(&v.to_le_bytes());
        }
    }

    /// Absorbs f64 values by IEEE-754 bit pattern (exact, no rounding).
    fn update_f64s(&mut self, vs: &[f64]) {
        self.update_u64(vs.len() as u64);
        for &v in vs {
            self.update_u64(v.to_bits());
        }
    }

    /// The final 128-bit fingerprint.
    pub fn finish(&self) -> Fingerprint {
        Fingerprint([self.a, self.b])
    }
}

/// Fingerprints a CSR matrix: dimensions, row pointers, column indices
/// and value bit patterns, behind the `b"CSR"` domain tag.
pub fn fingerprint_csr(m: &CsrMatrix) -> Fingerprint {
    let mut h = Hasher::new();
    h.update(b"CSR");
    h.update_u64(m.nrows() as u64);
    h.update_u64(m.ncols() as u64);
    h.update_usizes(m.row_ptr());
    h.update_u32s(m.col_idx());
    h.update_f64s(m.values());
    h.finish()
}

/// Fingerprints a BBC matrix over its canonical `BBC2` byte stream (the
/// same bytes `BbcMatrix::write_bbc` persists), behind the `b"BBC"`
/// domain tag.
///
/// Note this is a *representation* fingerprint: a CSR operand and its
/// BBC encoding hash to different fingerprints even though they describe
/// the same matrix. The encoding cache keys on the submitted
/// representation, which is what makes a hit sound without decoding
/// anything.
pub fn fingerprint_bbc(m: &BbcMatrix) -> Fingerprint {
    struct HashWriter<'a>(&'a mut Hasher);
    impl std::io::Write for HashWriter<'_> {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.update(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let mut h = Hasher::new();
    h.update(b"BBC");
    // Writing into a hasher cannot fail; the matrix is already in memory.
    let _ = m.write_bbc(HashWriter(&mut h));
    h.finish()
}

/// Fingerprints a sparse vector: dimension, indices and value bit
/// patterns, behind the `b"SPV"` domain tag.
pub fn fingerprint_vector(x: &SparseVector) -> Fingerprint {
    let mut h = Hasher::new();
    h.update(b"SPV");
    h.update_u64(x.dim() as u64);
    h.update_u32s(x.indices());
    h.update_f64s(x.values());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::CooMatrix;

    fn csr(n: usize, entries: &[(usize, usize, f64)]) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for &(r, c, v) in entries {
            coo.push(r, c, v);
        }
        CsrMatrix::try_from(coo).expect("valid test matrix")
    }

    #[test]
    fn identical_content_identical_fingerprint() {
        let a = csr(32, &[(0, 0, 1.0), (17, 3, -2.5)]);
        let b = csr(32, &[(0, 0, 1.0), (17, 3, -2.5)]);
        assert_eq!(fingerprint_csr(&a), fingerprint_csr(&b));
        assert_eq!(
            fingerprint_bbc(&BbcMatrix::from_csr(&a)),
            fingerprint_bbc(&BbcMatrix::from_csr(&b))
        );
    }

    #[test]
    fn any_content_change_moves_the_fingerprint() {
        let base = csr(32, &[(0, 0, 1.0), (17, 3, -2.5)]);
        let fp = fingerprint_csr(&base);
        // Different value.
        assert_ne!(fp, fingerprint_csr(&csr(32, &[(0, 0, 1.0), (17, 3, -2.0)])));
        // Different position.
        assert_ne!(fp, fingerprint_csr(&csr(32, &[(0, 0, 1.0), (17, 4, -2.5)])));
        // Different dimensions, same entries.
        assert_ne!(fp, fingerprint_csr(&csr(48, &[(0, 0, 1.0), (17, 3, -2.5)])));
        // An extra entry.
        assert_ne!(
            fp,
            fingerprint_csr(&csr(32, &[(0, 0, 1.0), (17, 3, -2.5), (1, 1, 0.5)]))
        );
    }

    #[test]
    fn value_bits_are_exact() {
        // -0.0 and 0.0 compare equal as floats but are different content.
        let a = csr(16, &[(0, 0, 0.0)]);
        let b = csr(16, &[(0, 0, -0.0)]);
        assert_ne!(fingerprint_csr(&a), fingerprint_csr(&b));
    }

    #[test]
    fn domains_do_not_collide() {
        let m = csr(16, &[(0, 0, 1.0)]);
        let bbc = BbcMatrix::from_csr(&m);
        assert_ne!(fingerprint_csr(&m), fingerprint_bbc(&bbc));
        let x = SparseVector::try_new(16, vec![0], vec![1.0]).expect("sorted");
        assert_ne!(fingerprint_vector(&x), fingerprint_csr(&m));
    }

    #[test]
    fn vector_fingerprint_tracks_content() {
        let x = SparseVector::try_new(32, vec![1, 5], vec![1.0, 2.0]).expect("sorted");
        let same = SparseVector::try_new(32, vec![1, 5], vec![1.0, 2.0]).expect("sorted");
        let other = SparseVector::try_new(32, vec![1, 6], vec![1.0, 2.0]).expect("sorted");
        assert_eq!(fingerprint_vector(&x), fingerprint_vector(&same));
        assert_ne!(fingerprint_vector(&x), fingerprint_vector(&other));
    }

    #[test]
    fn display_is_32_hex_chars() {
        let s = fingerprint_csr(&csr(16, &[(0, 0, 1.0)])).to_string();
        assert_eq!(s.len(), 32);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
