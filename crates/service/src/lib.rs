//! Long-lived batch job service in front of the Uni-STC engines.
//!
//! The crates below this one answer one question per call: *what does
//! this kernel cost on this engine?* This crate turns that into a
//! serving layer (DESIGN.md §15): a [`Service`] owns a bounded request
//! queue and a dispatcher thread; clients submit matrices and kernel
//! requests from any thread and stream back
//! [`KernelReport`](simkit::driver::KernelReport)s. In between sit the
//! pieces a real deployment needs:
//!
//! * [`fingerprint`] — stable 128-bit content hashes over operand bytes
//!   (CSR arrays, canonical BBC2 stream, sparse-vector contents), the
//!   identity every cache keys on.
//! * [`cache`] — deterministic LRU caches (logical ticks, no wall
//!   clock) for BBC encodings and compiled `Vec<T1Task>` streams, with
//!   exact hit/miss/eviction statistics.
//! * [`service`] — admission control (`analysis::UstcVerifier` plus the
//!   shard-plan proof), same-stream batching, execution on the
//!   resilient `runtime` pool, and live metrics in an
//!   [`obs::MetricsRegistry`].
//!
//! The headline invariant: a warm-cache response is **bit-identical** to
//! a cold one and to the serial driver — same
//! `counter_signature()` — because the caches store exactly what the
//! driver would deterministically recompute. The service chaos suite
//! and the committed `BENCH_pr9-cold` / `BENCH_pr9-warm` pair pin this.
//!
//! # Example
//!
//! ```
//! use service::{JobRequest, KernelRequest, Service, ServiceConfig};
//! use sparse::{CooMatrix, CsrMatrix};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut coo = CooMatrix::new(32, 32);
//! coo.push(0, 0, 1.0);
//! coo.push(17, 3, -2.5);
//! let a = CsrMatrix::try_from(coo)?;
//!
//! let svc = Service::start(ServiceConfig::default());
//! let cold = svc.submit(JobRequest::new(KernelRequest::SpMV { a: a.clone().into() })).wait()?;
//! let warm = svc.submit(JobRequest::new(KernelRequest::SpMV { a: a.into() })).wait()?;
//! // Bit-identical counters; the second run reused the cached encoding
//! // and compiled stream.
//! assert_eq!(cold.report.counter_signature(), warm.report.counter_signature());
//! assert!(warm.encoding_cached && warm.stream_cached);
//! let metrics = svc.shutdown();
//! assert_eq!(metrics.counter("service/jobs_completed"), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod fingerprint;
pub mod request;
pub mod service;

pub use cache::{CacheStats, LruCache, SharedCache};
pub use fingerprint::{fingerprint_bbc, fingerprint_csr, fingerprint_vector, Fingerprint};
pub use request::{JobError, JobRequest, JobResponse, KernelRequest, Operand};
pub use service::{JobHandle, Service, ServiceConfig, DEFAULT_ENGINE};
