//! Request and response types for the batch job service.

use std::sync::Arc;

use simkit::driver::KernelReport;
use sparse::{BbcMatrix, CsrMatrix, SparseVector};

/// A matrix operand, in whichever representation the client holds.
///
/// CSR operands are encoded to BBC by the service (through the
/// fingerprint-keyed encoding cache, so repeated submissions of the same
/// matrix encode once); BBC operands are used as-is.
#[derive(Clone)]
pub enum Operand {
    /// A CSR matrix the service will encode (and cache) as BBC.
    Csr(Arc<CsrMatrix>),
    /// An already-encoded BBC matrix.
    Bbc(Arc<BbcMatrix>),
}

impl std::fmt::Debug for Operand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Operand::Csr(m) => write!(f, "Operand::Csr({}x{})", m.nrows(), m.ncols()),
            Operand::Bbc(m) => {
                write!(f, "Operand::Bbc({}x{} blocks)", m.block_rows(), m.block_cols())
            }
        }
    }
}

impl From<CsrMatrix> for Operand {
    fn from(m: CsrMatrix) -> Self {
        Operand::Csr(Arc::new(m))
    }
}

impl From<BbcMatrix> for Operand {
    fn from(m: BbcMatrix) -> Self {
        Operand::Bbc(Arc::new(m))
    }
}

impl From<Arc<CsrMatrix>> for Operand {
    fn from(m: Arc<CsrMatrix>) -> Self {
        Operand::Csr(m)
    }
}

impl From<Arc<BbcMatrix>> for Operand {
    fn from(m: Arc<BbcMatrix>) -> Self {
        Operand::Bbc(m)
    }
}

/// One kernel invocation on submitted operands.
#[derive(Debug, Clone)]
pub enum KernelRequest {
    /// Sparse matrix x dense vector.
    SpMV {
        /// The sparse matrix.
        a: Operand,
    },
    /// Sparse matrix x sparse vector.
    SpMSpV {
        /// The sparse matrix.
        a: Operand,
        /// The sparse input vector.
        x: Arc<SparseVector>,
    },
    /// Sparse matrix x dense matrix with `n_cols` columns.
    SpMM {
        /// The sparse matrix.
        a: Operand,
        /// Dense operand width.
        n_cols: usize,
    },
    /// Sparse matrix x sparse matrix.
    SpGEMM {
        /// The left sparse matrix.
        a: Operand,
        /// The right sparse matrix.
        b: Operand,
    },
}

impl KernelRequest {
    /// The kernel this request runs.
    pub fn kernel(&self) -> simkit::driver::Kernel {
        match self {
            KernelRequest::SpMV { .. } => simkit::driver::Kernel::SpMV,
            KernelRequest::SpMSpV { .. } => simkit::driver::Kernel::SpMSpV,
            KernelRequest::SpMM { .. } => simkit::driver::Kernel::SpMM,
            KernelRequest::SpGEMM { .. } => simkit::driver::Kernel::SpGEMM,
        }
    }
}

/// A job: one kernel request bound to an engine.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// Engine display name (`"Uni-STC"`, `"DS-STC"`, ...). `None` selects
    /// the default Uni-STC engine.
    pub engine: Option<String>,
    /// The kernel invocation.
    pub kernel: KernelRequest,
}

impl JobRequest {
    /// A job on the default (Uni-STC) engine.
    pub fn new(kernel: KernelRequest) -> Self {
        JobRequest { engine: None, kernel }
    }

    /// A job on a named engine.
    pub fn on_engine(engine: impl Into<String>, kernel: KernelRequest) -> Self {
        JobRequest { engine: Some(engine.into()), kernel }
    }
}

/// Why a job produced no report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// Admission control rejected the stream before scheduling (a
    /// `USTC`-coded static-verification diagnostic).
    Rejected {
        /// The stable diagnostic code, e.g. `"USTC012"`.
        code: String,
        /// The full rendered diagnostic.
        message: String,
    },
    /// The requested engine name is not in the service roster.
    UnknownEngine {
        /// The name the client asked for.
        name: String,
    },
    /// The runtime failed the batch past its retry budget.
    Execution(String),
    /// The service shut down before answering.
    ServiceStopped,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Rejected { code, message } => {
                write!(f, "admission rejected [{code}]: {message}")
            }
            JobError::UnknownEngine { name } => write!(f, "unknown engine `{name}`"),
            JobError::Execution(msg) => write!(f, "execution failed: {msg}"),
            JobError::ServiceStopped => write!(f, "service stopped before answering"),
        }
    }
}

impl std::error::Error for JobError {}

/// A completed job: the kernel report plus how the service got it.
#[derive(Debug, Clone)]
pub struct JobResponse {
    /// The kernel report — bit-identical to the serial driver's for the
    /// same operands, cached or not.
    pub report: KernelReport,
    /// Whether every matrix operand's BBC encoding came from the cache.
    pub encoding_cached: bool,
    /// Whether the compiled T1 task stream came from the cache.
    pub stream_cached: bool,
    /// How many jobs shared this request's compiled stream in the batch
    /// that executed it (at least 1: this job).
    pub batch_size: usize,
    /// Whether the runtime degraded to serial draining while executing
    /// this job's batch.
    pub degraded: bool,
}
