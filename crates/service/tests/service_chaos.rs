//! Chaos suite for the batch job service: fixed-seed `ChaosPlan` sweeps
//! proving that cached, cold, multi-threaded and degraded-to-serial
//! executions all produce the serial driver's exact counter signature,
//! plus a concurrent hit/miss race test on the fingerprint caches.
//!
//! Every test is deterministic: chaos draws are pure functions of
//! `(seed, task, attempt)`, operands are fixed, and the merged report
//! counters are schedule-independent sums.

use std::sync::Arc;

use runtime::{Backoff, ChaosPlan, RuntimeConfig};
use service::{JobRequest, KernelRequest, Service, ServiceConfig, SharedCache};
use simkit::{driver, EnergyModel, Precision};
use sparse::{BbcMatrix, CooMatrix, CsrMatrix};
use uni_stc::{UniStc, UniStcConfig};
use workloads::representative::representative_matrices;

/// A fast retry schedule for tests.
fn fast(cfg: RuntimeConfig) -> RuntimeConfig {
    RuntimeConfig { backoff: Backoff::none(), ..cfg }
}

fn dense_ish(n: usize) -> CsrMatrix {
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 1.0 + i as f64);
        coo.push(i, (i * 5 + 1) % n, -1.0);
        coo.push((i * 3) % n, i, 0.25);
    }
    CsrMatrix::try_from(coo).expect("valid test matrix")
}

fn serial_spmv_signature(a: &CsrMatrix) -> String {
    let engine = UniStc::new(UniStcConfig::with_precision(Precision::Fp64));
    driver::run_spmv(&engine, &EnergyModel::default(), &BbcMatrix::from_csr(a))
        .counter_signature()
}

#[test]
fn chaos_sweep_cached_and_cold_match_the_serial_driver() {
    let a = dense_ish(96);
    let expected = serial_spmv_signature(&a);
    // Fixed-seed sweep: flake and stall rates at {0, 1e-2, 1e-1} on one
    // and two exec threads. Chaos can only change how long a batch
    // takes, never its counters — warm or cold.
    for threads in [1usize, 2] {
        for (seed, flake, stall) in
            [(71, 0.0, 0.0), (72, 1e-2, 0.0), (73, 1e-1, 0.0), (74, 0.0, 1e-2), (75, 1e-1, 1e-2)]
        {
            let chaos = ChaosPlan::new(seed, 0.0, stall, flake, 100).expect("valid rates");
            let cfg = ServiceConfig {
                exec: fast(RuntimeConfig::with_threads(threads).with_chaos(chaos)),
                ..ServiceConfig::default()
            };
            let svc = Service::start(cfg);
            let cold = svc
                .submit(JobRequest::new(KernelRequest::SpMV { a: a.clone().into() }))
                .wait()
                .unwrap_or_else(|e| panic!("cold seed {seed} threads {threads}: {e}"));
            let warm = svc
                .submit(JobRequest::new(KernelRequest::SpMV { a: a.clone().into() }))
                .wait()
                .unwrap_or_else(|e| panic!("warm seed {seed} threads {threads}: {e}"));
            assert!(warm.stream_cached, "second identical request must be a stream hit");
            for (phase, resp) in [("cold", &cold), ("warm", &warm)] {
                assert_eq!(
                    resp.report.counter_signature(),
                    expected,
                    "{phase} seed {seed} flake {flake} stall {stall} threads {threads}"
                );
            }
        }
    }
}

#[test]
fn degraded_to_serial_batches_keep_the_signature() {
    let a = dense_ish(128);
    let expected = serial_spmv_signature(&a);
    // Aggressive crashes with a full-pool quorum: the pool degrades to
    // serial draining mid-batch. The response must say so, the metrics
    // must count it, and the counters must not move.
    let chaos = ChaosPlan::new(29, 0.3, 0.0, 0.0, 0).expect("valid rates");
    let cfg = ServiceConfig {
        exec: fast(RuntimeConfig {
            quorum: 2,
            ..RuntimeConfig::with_threads(2).with_chaos(chaos)
        }),
        ..ServiceConfig::default()
    };
    let svc = Service::start(cfg);
    let mut saw_degraded = false;
    for round in 0..4 {
        let resp = svc
            .submit(JobRequest::new(KernelRequest::SpMV { a: a.clone().into() }))
            .wait()
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        saw_degraded |= resp.degraded;
        assert_eq!(resp.report.counter_signature(), expected, "round {round}");
    }
    assert!(saw_degraded, "30 % crash rate with full-pool quorum must degrade");
    let m = svc.shutdown();
    assert!(m.counter("runtime/degraded_runs") >= 1, "degradations must be counted");
    assert!(m.counter("service/degraded_jobs") >= 1);
}

#[test]
fn chaos_sweep_over_all_kernels_and_corpus_head() {
    // The representative corpus head through a chaotic two-thread
    // service, all four kernels, cold then warm — every signature equal
    // to the serial driver's.
    let rep = representative_matrices().into_iter().next().expect("corpus is non-empty");
    let a = rep.matrix;
    let bbc = BbcMatrix::from_csr(&a);
    let x = Arc::new(bench_vector(a.ncols()));
    let engine = UniStc::new(UniStcConfig::with_precision(Precision::Fp64));
    let em = EnergyModel::default();
    let expectations = [
        driver::run_spmv(&engine, &em, &bbc).counter_signature(),
        driver::run_spmspv(&engine, &em, &bbc, &x).counter_signature(),
        driver::run_spmm(&engine, &em, &bbc, 64).counter_signature(),
        driver::run_spgemm(&engine, &em, &bbc, &bbc).counter_signature(),
    ];
    let chaos = ChaosPlan::new(7, 0.0, 1e-2, 1e-1, 100).expect("valid rates");
    let cfg = ServiceConfig {
        exec: fast(RuntimeConfig::with_threads(2).with_chaos(chaos)),
        ..ServiceConfig::default()
    };
    let svc = Service::start(cfg);
    let requests = || {
        vec![
            KernelRequest::SpMV { a: a.clone().into() },
            KernelRequest::SpMSpV { a: a.clone().into(), x: Arc::clone(&x) },
            KernelRequest::SpMM { a: a.clone().into(), n_cols: 64 },
            KernelRequest::SpGEMM { a: a.clone().into(), b: a.clone().into() },
        ]
    };
    for phase in ["cold", "warm"] {
        for (req, expected) in requests().into_iter().zip(&expectations) {
            let kernel = format!("{:?}", req.kernel());
            let resp = svc
                .submit(JobRequest::new(req))
                .wait()
                .unwrap_or_else(|e| panic!("{phase} {kernel}: {e}"));
            assert_eq!(&resp.report.counter_signature(), expected, "{phase} {kernel}");
        }
    }
}

/// The 50 %-sparse deterministic vector the bench harness uses.
fn bench_vector(dim: usize) -> sparse::SparseVector {
    let mut idx = Vec::new();
    let mut values = Vec::new();
    for i in (0..dim).step_by(2) {
        idx.push(i as u32);
        values.push(((i % 13) as f64 - 6.0) / 4.0);
    }
    sparse::SparseVector::try_new(dim, idx, values).expect("indices are sorted")
}

#[test]
fn concurrent_submits_from_many_threads_agree() {
    // Eight client threads hammer one service with the same request; the
    // fingerprint caches race on hit/miss, but every response must carry
    // the identical report and the stream must have been compiled at
    // most a handful of times (once per racing miss, all bit-identical).
    let a = dense_ish(64);
    let expected = serial_spmv_signature(&a);
    let svc = Arc::new(Service::start(ServiceConfig::default()));
    let mut joins = Vec::new();
    for t in 0..8 {
        let svc = Arc::clone(&svc);
        let a = a.clone();
        joins.push(std::thread::spawn(move || {
            let mut sigs = Vec::new();
            for _ in 0..4 {
                let resp = svc
                    .submit(JobRequest::new(KernelRequest::SpMV { a: a.clone().into() }))
                    .wait()
                    .unwrap_or_else(|e| panic!("client {t}: {e}"));
                sigs.push(resp.report.counter_signature());
            }
            sigs
        }));
    }
    for join in joins {
        let sigs = join.join().expect("client thread must not panic");
        for sig in sigs {
            assert_eq!(sig, expected);
        }
    }
    let svc = Arc::try_unwrap(svc).unwrap_or_else(|_| panic!("all clients joined"));
    let m = svc.shutdown();
    assert_eq!(m.counter("service/jobs_completed"), 32);
    // 32 lookups total; at most one miss per batch the dispatcher saw,
    // and at least one (the first).
    let hits = m.counter("service/stream_cache_hits");
    let misses = m.counter("service/stream_cache_misses");
    assert_eq!(hits + misses, m.counter("service/batches"));
    assert!(misses >= 1);
    assert_eq!(m.counter("service/encoding_cache_misses"), 1, "one fingerprint, one encode");
}

#[test]
fn shared_cache_race_keeps_one_value_and_consistent_stats() {
    // Direct race on the cache primitive: many threads get_or_insert the
    // same key concurrently. Losers must adopt the winner's Arc, stats
    // must add up, and exactly one insert may land.
    let cache: Arc<SharedCache<u64, u64>> = Arc::new(SharedCache::new(8));
    let threads = 8;
    let rounds = 50;
    let mut joins = Vec::new();
    for t in 0..threads {
        let cache = Arc::clone(&cache);
        joins.push(std::thread::spawn(move || {
            let mut observed = Vec::new();
            for r in 0..rounds {
                let key = r % 4;
                let (v, _hit) = cache.get_or_insert_with(&key, || key * 1000 + 1);
                observed.push((key, *v));
            }
            let _ = t;
            observed
        }));
    }
    let mut all = Vec::new();
    for join in joins {
        all.extend(join.join().expect("racer must not panic"));
    }
    for (key, v) in all {
        assert_eq!(v, key * 1000 + 1, "every racer observes the one cached value");
    }
    let stats = cache.stats();
    assert_eq!(cache.len(), 4, "four distinct keys stay resident");
    assert_eq!(stats.inserts, 4, "exactly one insert per key wins");
    assert_eq!(stats.evictions, 0);
    assert_eq!(
        stats.hits + stats.misses,
        threads * rounds,
        "every call is tallied as exactly one hit or one miss"
    );
}
