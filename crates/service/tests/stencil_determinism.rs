//! Time-stepped solver determinism through the batch service.
//!
//! A stencil solver iterates one fixed operator: every Jacobi/CG/heat
//! step is one SpMV on the same matrix, so after the first submission
//! the service answers every further step from the stream cache. These
//! tests pin the headline invariant for that regime: N iterations
//! through the service (warm cache) produce bit-identical
//! `counter_signature()`s and residual trajectories to N direct serial
//! iterations — including under a fixed-seed chaos sweep.

use std::sync::Arc;

use runtime::{Backoff, ChaosPlan, RuntimeConfig};
use service::{JobRequest, KernelRequest, Service, ServiceConfig};
use simkit::{driver, EnergyModel, Precision};
use sparse::{BbcMatrix, CsrMatrix};
use uni_stc::{UniStc, UniStcConfig};
use workloads::stencil::{
    heat, lower, solver, GridShape, Lowering, Ordering, StencilKind,
};

/// A fast retry schedule for tests.
fn fast(cfg: RuntimeConfig) -> RuntimeConfig {
    RuntimeConfig { backoff: Backoff::none(), ..cfg }
}

fn lowering() -> Lowering {
    lower(StencilKind::Star5, GridShape::D2 { nx: 50, ny: 50 }, Ordering::Tiled16)
}

fn rhs(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i % 17) as f64) - 8.0).collect()
}

/// The direct serial reference: one SpMV on the default service engine.
fn serial_signature(a: &CsrMatrix) -> String {
    let engine = UniStc::new(UniStcConfig::with_precision(Precision::Fp64));
    driver::run_spmv(&engine, &EnergyModel::default(), &BbcMatrix::from_csr(a))
        .counter_signature()
}

/// Submits `spmv_count` SpMV steps on one operator and returns the
/// responses' signatures plus how many answered from the stream cache.
fn replay_through_service(
    svc: &Service,
    a: &Arc<CsrMatrix>,
    spmv_count: usize,
) -> (Vec<String>, usize) {
    let mut signatures = Vec::with_capacity(spmv_count);
    let mut stream_hits = 0usize;
    for step in 0..spmv_count {
        let resp = svc
            .submit(JobRequest::new(KernelRequest::SpMV { a: Arc::clone(a).into() }))
            .wait()
            .unwrap_or_else(|e| panic!("step {step}: {e}"));
        if resp.stream_cached {
            stream_hits += 1;
        }
        signatures.push(resp.report.counter_signature());
    }
    (signatures, stream_hits)
}

#[test]
fn eight_jacobi_iterations_service_vs_direct_are_bit_identical() {
    // The CI `stencil-smoke` identity: 8 damped-Jacobi iterations.
    let l = lowering();
    let b = rhs(l.csr.nrows());

    // Direct serial pass: solver numerics plus one serial driver run per
    // SpMV the solver performed.
    let direct = solver::jacobi(&l.csr, &b, solver::JACOBI_WEIGHT, 8);
    let expected = serial_signature(&l.csr);

    // Service pass: identical numerics recomputed locally, every SpMV
    // replayed through the warm service.
    let svc = Service::start(ServiceConfig::default());
    let through = solver::jacobi(&l.csr, &b, solver::JACOBI_WEIGHT, 8);
    let a = Arc::new(l.csr.clone());
    let (signatures, stream_hits) = replay_through_service(&svc, &a, through.spmv_count);

    assert_eq!(through.residuals, direct.residuals, "residual trajectories must be bitwise equal");
    assert_eq!(through.x, direct.x, "iterates must be bitwise equal");
    for (step, sig) in signatures.iter().enumerate() {
        assert_eq!(sig, &expected, "service step {step} diverged from the serial driver");
    }
    assert_eq!(
        stream_hits,
        through.spmv_count - 1,
        "every step after the first must hit the stream cache"
    );
    let m = svc.shutdown();
    assert_eq!(m.counter("service/encoding_cache_misses"), 1, "one operator, one encode");
    assert!(m.gauge("service/latency_p99_us/SpMV").is_some(), "p99 gauge derived at snapshot");
    assert_eq!(m.gauge("service/stream_cache_pressure"), Some(0.0), "one stream entry fits");
}

#[test]
fn cg_trajectory_service_vs_direct_is_bit_identical() {
    let l = lowering();
    let b = rhs(l.csr.nrows());
    let direct = solver::cg_trace(&l.csr, &b, 1e-8, 40);
    assert!(direct.iterations() > 0);

    let svc = Service::start(ServiceConfig::default());
    let through = solver::cg_trace(&l.csr, &b, 1e-8, 40);
    let a = Arc::new(l.csr.clone());
    let (signatures, stream_hits) = replay_through_service(&svc, &a, through.spmv_count);

    assert_eq!(through.residuals, direct.residuals);
    assert_eq!(through.x, direct.x);
    let expected = serial_signature(&l.csr);
    assert!(signatures.iter().all(|s| s == &expected));
    assert_eq!(stream_hits, through.spmv_count - 1);
}

#[test]
fn heat_steps_stay_identical_under_fixed_seed_chaos_sweep() {
    let l = lowering();
    let u0 = heat::initial_condition(&l);
    let params = heat::HeatParams::stable_for(l.kind, 8);
    let direct = heat::run(&l.csr, &u0, params);
    let expected = serial_signature(&l.csr);

    for threads in [1usize, 2] {
        for (seed, flake, stall) in
            [(81, 0.0, 0.0), (82, 1e-1, 0.0), (83, 1e-2, 1e-2), (84, 0.0, 1e-1)]
        {
            let chaos = ChaosPlan::new(seed, 0.0, stall, flake, 100).expect("valid rates");
            let cfg = ServiceConfig {
                exec: fast(RuntimeConfig::with_threads(threads).with_chaos(chaos)),
                ..ServiceConfig::default()
            };
            let svc = Service::start(cfg);
            let through = heat::run(&l.csr, &u0, params);
            let a = Arc::new(l.csr.clone());
            let (signatures, stream_hits) =
                replay_through_service(&svc, &a, through.spmv_count);
            assert_eq!(
                through.energy, direct.energy,
                "energy trajectory diverged (seed {seed}, threads {threads})"
            );
            assert_eq!(through.u, direct.u);
            for (step, sig) in signatures.iter().enumerate() {
                assert_eq!(
                    sig, &expected,
                    "seed {seed} flake {flake} stall {stall} threads {threads} step {step}"
                );
            }
            assert_eq!(stream_hits, through.spmv_count - 1);
        }
    }
}

#[test]
fn distinct_stencil_operators_get_distinct_fingerprints() {
    // Ordering changes the matrix content, so natural vs tiled must be
    // two cache entries — a warm hit must never cross operators.
    let shape = GridShape::D2 { nx: 20, ny: 20 };
    let nat = lower(StencilKind::Star5, shape, Ordering::Natural);
    let til = lower(StencilKind::Star5, shape, Ordering::Tiled16);
    let svc = Service::start(ServiceConfig::default());
    for l in [&nat, &til] {
        let resp = svc
            .submit(JobRequest::new(KernelRequest::SpMV { a: l.csr.clone().into() }))
            .wait()
            .unwrap_or_else(|e| panic!("{}: {e}", l.name()));
        assert!(!resp.stream_cached, "{} must be a cold miss", l.name());
    }
    let m = svc.shutdown();
    assert_eq!(m.counter("service/encoding_cache_misses"), 2, "two operators, two encodes");
}
