//! Integration tests for the batch job service: responses must be
//! bit-identical to the serial driver, the caches must actually serve
//! warm requests, batching must coalesce same-stream jobs, and
//! admission control must reject illegal work with its `USTC` code
//! before anything is scheduled.

use std::sync::Arc;

use runtime::RuntimeConfig;
use service::{JobError, JobRequest, KernelRequest, Service, ServiceConfig};
use simkit::{driver, EnergyModel, Precision};
use sparse::{BbcField, BbcMatrix, CooMatrix, CsrMatrix, SparseVector};
use uni_stc::{UniStc, UniStcConfig};
use workloads::representative::representative_matrices;

fn csr(n: usize, entries: &[(usize, usize, f64)]) -> CsrMatrix {
    let mut coo = CooMatrix::new(n, n);
    for &(r, c, v) in entries {
        coo.push(r, c, v);
    }
    CsrMatrix::try_from(coo).expect("valid test matrix")
}

fn diag_csr(n: usize) -> CsrMatrix {
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 1.0 + i as f64);
        coo.push(i, (i * 7 + 3) % n, -0.5);
    }
    CsrMatrix::try_from(coo).expect("valid test matrix")
}

#[test]
fn spmv_response_matches_serial_driver_bit_for_bit() {
    let a = diag_csr(64);
    let expected = driver::run_spmv(
        &UniStc::new(UniStcConfig::with_precision(Precision::Fp64)),
        &EnergyModel::default(),
        &BbcMatrix::from_csr(&a),
    );

    let svc = Service::start(ServiceConfig::default());
    let got = svc
        .submit(JobRequest::new(KernelRequest::SpMV { a: a.into() }))
        .wait()
        .expect("legal stream must be admitted");
    assert_eq!(got.report.counter_signature(), expected.counter_signature());
    assert_eq!(got.report, expected);
}

#[test]
fn all_four_kernels_match_the_serial_driver() {
    let a = diag_csr(48);
    let bbc = BbcMatrix::from_csr(&a);
    let x = SparseVector::try_new(48, vec![0, 17, 40], vec![1.0, -2.0, 0.5])
        .expect("sorted indices");
    let engine = UniStc::new(UniStcConfig::with_precision(Precision::Fp64));
    let em = EnergyModel::default();

    let svc = Service::start(ServiceConfig::default());
    let cases: Vec<(KernelRequest, String)> = vec![
        (
            KernelRequest::SpMV { a: a.clone().into() },
            driver::run_spmv(&engine, &em, &bbc).counter_signature(),
        ),
        (
            KernelRequest::SpMSpV { a: a.clone().into(), x: Arc::new(x.clone()) },
            driver::run_spmspv(&engine, &em, &bbc, &x).counter_signature(),
        ),
        (
            KernelRequest::SpMM { a: a.clone().into(), n_cols: 40 },
            driver::run_spmm(&engine, &em, &bbc, 40).counter_signature(),
        ),
        (
            KernelRequest::SpGEMM { a: a.clone().into(), b: a.clone().into() },
            driver::run_spgemm(&engine, &em, &bbc, &bbc).counter_signature(),
        ),
    ];
    for (req, expected_sig) in cases {
        let got = svc
            .submit(JobRequest::new(req))
            .wait()
            .expect("legal stream must be admitted");
        assert_eq!(got.report.counter_signature(), expected_sig);
    }
}

#[test]
fn warm_cache_responses_are_bit_identical_and_flagged() {
    let a = diag_csr(64);
    let svc = Service::start(ServiceConfig::default());
    let cold = svc
        .submit(JobRequest::new(KernelRequest::SpMV { a: a.clone().into() }))
        .wait()
        .expect("cold run");
    assert!(!cold.encoding_cached, "first submission must encode");
    assert!(!cold.stream_cached, "first submission must compile");
    let warm = svc
        .submit(JobRequest::new(KernelRequest::SpMV { a: a.into() }))
        .wait()
        .expect("warm run");
    assert!(warm.encoding_cached, "identical operand must hit the encoding cache");
    assert!(warm.stream_cached, "identical request must hit the stream cache");
    assert_eq!(
        cold.report.counter_signature(),
        warm.report.counter_signature(),
        "cached results must be bit-identical to cold ones"
    );
    assert_eq!(cold.report, warm.report);

    let m = svc.shutdown();
    assert_eq!(m.counter("service/jobs_completed"), 2);
    assert_eq!(m.counter("service/stream_cache_hits"), 1);
    assert_eq!(m.counter("service/stream_cache_misses"), 1);
    assert_eq!(m.counter("service/encoding_cache_hits"), 1);
    assert_eq!(m.counter("service/encoding_cache_misses"), 1);
}

#[test]
fn submit_batch_coalesces_same_stream_jobs() {
    let a = diag_csr(64);
    let svc = Service::start(ServiceConfig::default());
    let reqs = vec![
        JobRequest::new(KernelRequest::SpMV { a: a.clone().into() }),
        JobRequest::new(KernelRequest::SpMV { a: a.clone().into() }),
        JobRequest::new(KernelRequest::SpMV { a: a.into() }),
    ];
    let responses: Vec<_> = svc
        .submit_batch(reqs)
        .into_iter()
        .map(|h| h.wait().expect("legal stream"))
        .collect();
    let sigs: Vec<String> =
        responses.iter().map(|r| r.report.counter_signature()).collect();
    assert!(sigs.windows(2).all(|w| w[0] == w[1]), "batched jobs share one report");
    for r in &responses {
        assert_eq!(r.batch_size, 3, "all three jobs share one stream, hence one batch");
    }
    let m = svc.shutdown();
    // One compiled stream served all three jobs.
    assert_eq!(m.counter("service/stream_cache_misses"), 1);
    assert_eq!(m.counter("service/jobs_completed"), 3);
    // The CSR operand was fingerprint-deduplicated down to one encoding.
    assert_eq!(m.counter("service/encoding_cache_misses"), 1);
    assert_eq!(m.counter("service/encoding_cache_hits"), 2);
}

#[test]
fn admission_rejects_corrupt_metadata_with_ustc012() {
    let clean = BbcMatrix::from_csr(&diag_csr(32));
    let mut bad = clean.clone();
    bad.flip_bit(BbcField::BitmapLv2, 0, 3);

    let svc = Service::start(ServiceConfig::default());
    let err = svc
        .submit(JobRequest::new(KernelRequest::SpMV { a: bad.into() }))
        .wait()
        .expect_err("corrupt metadata must be rejected");
    match err {
        JobError::Rejected { code, message } => {
            assert_eq!(code, "USTC012");
            assert!(message.contains("USTC012"), "{message}");
        }
        other => panic!("expected Rejected, got {other:?}"),
    }
    let m = svc.shutdown();
    assert_eq!(m.counter("service/jobs_rejected"), 1);
    assert_eq!(m.counter("service/jobs_completed"), 0);
}

#[test]
fn admission_verdicts_are_memoized_per_fingerprint() {
    // Accepting path: ten identical submissions walk the verifier once;
    // the other nine replay the recorded verdict.
    let a = diag_csr(64);
    let svc = Service::start(ServiceConfig::default());
    for _ in 0..10 {
        svc.submit(JobRequest::new(KernelRequest::SpMV { a: a.clone().into() }))
            .wait()
            .expect("legal stream must be admitted");
    }
    let m = svc.shutdown();
    assert_eq!(m.counter("service/admission_cache_misses"), 1, "one content, one verification");
    assert_eq!(m.counter("service/admission_cache_hits"), 9);

    // Rejecting path: the recorded verdict replays the rejection too —
    // repeated bad submissions never reach the verifier twice.
    let clean = BbcMatrix::from_csr(&diag_csr(32));
    let mut bad = clean.clone();
    bad.flip_bit(BbcField::BitmapLv2, 0, 3);
    let svc = Service::start(ServiceConfig::default());
    let codes: Vec<String> = (0..2)
        .map(|_| {
            match svc
                .submit(JobRequest::new(KernelRequest::SpMV { a: bad.clone().into() }))
                .wait()
                .expect_err("corrupt metadata must be rejected")
            {
                JobError::Rejected { code, .. } => code,
                other => panic!("expected Rejected, got {other:?}"),
            }
        })
        .collect();
    assert_eq!(codes, ["USTC012", "USTC012"], "cached rejection must match the fresh one");
    let m = svc.shutdown();
    assert_eq!(m.counter("service/admission_cache_misses"), 1);
    assert_eq!(m.counter("service/admission_cache_hits"), 1);
    assert_eq!(m.counter("service/jobs_rejected"), 2);
}

#[test]
fn admission_off_still_rejects_nonconforming_spgemm() {
    // 32x32 (2x2 blocks) times 64x64 (4x4 blocks): the grids do not
    // conform, so the task compiler cannot even represent the stream.
    let a = diag_csr(32);
    let b = diag_csr(64);
    let cfg = ServiceConfig { admission: false, ..ServiceConfig::default() };
    let svc = Service::start(cfg);
    let err = svc
        .submit(JobRequest::new(KernelRequest::SpGEMM { a: a.into(), b: b.into() }))
        .wait()
        .expect_err("non-conforming grids must be rejected even without admission");
    match err {
        JobError::Rejected { code, .. } => assert_eq!(code, "USTC012"),
        other => panic!("expected Rejected, got {other:?}"),
    }
}

#[test]
fn unknown_engine_is_a_typed_error() {
    let a = csr(16, &[(0, 0, 1.0)]);
    let svc = Service::start(ServiceConfig::default());
    let err = svc
        .submit(JobRequest::on_engine("No-Such-STC", KernelRequest::SpMV { a: a.into() }))
        .wait()
        .expect_err("unknown engine");
    assert_eq!(err, JobError::UnknownEngine { name: "No-Such-STC".to_owned() });
}

#[test]
fn every_roster_engine_serves_jobs() {
    let a = diag_csr(32);
    let svc = Service::start(ServiceConfig::default());
    for engine in ["NV-DTC", "GAMMA", "SIGMA", "Trapezoid", "DS-STC", "RM-STC", "Uni-STC"] {
        let got = svc
            .submit(JobRequest::on_engine(engine, KernelRequest::SpMV { a: a.clone().into() }))
            .wait()
            .unwrap_or_else(|e| panic!("engine {engine} failed: {e}"));
        assert_eq!(got.report.engine, engine);
    }
}

#[test]
fn zero_column_spmm_yields_an_empty_report() {
    let a = diag_csr(32);
    let svc = Service::start(ServiceConfig::default());
    let got = svc
        .submit(JobRequest::new(KernelRequest::SpMM { a: a.into(), n_cols: 0 }))
        .wait()
        .expect("degenerate but legal request");
    assert_eq!(got.report.t1_tasks, 0);
    assert_eq!(got.report.cycles, 0);
}

#[test]
fn representative_corpus_roundtrips_through_the_service() {
    let svc = Service::start(ServiceConfig {
        exec: RuntimeConfig::with_threads(2),
        ..ServiceConfig::default()
    });
    let engine = UniStc::new(UniStcConfig::with_precision(Precision::Fp64));
    let em = EnergyModel::default();
    for rep in representative_matrices() {
        let expected =
            driver::run_spmv(&engine, &em, &BbcMatrix::from_csr(&rep.matrix)).counter_signature();
        let got = svc
            .submit(JobRequest::new(KernelRequest::SpMV { a: rep.matrix.into() }))
            .wait()
            .unwrap_or_else(|e| panic!("{} failed: {e}", rep.name));
        assert_eq!(got.report.counter_signature(), expected, "{}", rep.name);
    }
}

#[test]
fn metrics_snapshot_records_queue_and_latency() {
    let a = diag_csr(32);
    let svc = Service::start(ServiceConfig::default());
    svc.submit(JobRequest::new(KernelRequest::SpMV { a: a.into() }))
        .wait()
        .expect("legal stream");
    let m = svc.metrics();
    assert!(m.gauge("service/queue_depth").is_some(), "queue depth gauge must be live");
    let depth = m.histogram("service/queue_depth_hist").expect("queue depth histogram");
    assert!(depth.count() >= 1);
    let lat = m.histogram("service/latency_us/SpMV").expect("latency histogram");
    assert_eq!(lat.count(), 1);
    assert_eq!(m.counter("service/batches"), 1);
}

#[test]
fn shutdown_then_wait_reports_service_stopped() {
    let a = csr(16, &[(0, 0, 1.0)]);
    let svc = Service::start(ServiceConfig::default());
    // Answer one job so the dispatcher is provably alive first.
    svc.submit(JobRequest::new(KernelRequest::SpMV { a: a.clone().into() }))
        .wait()
        .expect("legal stream");
    let m = svc.shutdown();
    assert_eq!(m.counter("service/jobs_completed"), 1);
}

#[test]
fn encoding_cache_eviction_still_serves_correct_results() {
    // Capacity 1: the second matrix evicts the first; resubmitting the
    // first must re-encode and still be bit-identical.
    let a = diag_csr(32);
    let b = diag_csr(64);
    let cfg = ServiceConfig {
        encoding_cache_capacity: 1,
        stream_cache_capacity: 1,
        ..ServiceConfig::default()
    };
    let svc = Service::start(cfg);
    let first = svc
        .submit(JobRequest::new(KernelRequest::SpMV { a: a.clone().into() }))
        .wait()
        .expect("legal");
    svc.submit(JobRequest::new(KernelRequest::SpMV { a: b.into() }))
        .wait()
        .expect("legal");
    let again = svc
        .submit(JobRequest::new(KernelRequest::SpMV { a: a.into() }))
        .wait()
        .expect("legal");
    assert!(!again.encoding_cached, "the entry was evicted, so this is a fresh encode");
    assert_eq!(first.report.counter_signature(), again.report.counter_signature());
    let m = svc.shutdown();
    assert!(m.counter("service/encoding_cache_evictions") >= 1);
    assert!(m.counter("service/stream_cache_evictions") >= 1);
}
