//! The conformance suite's integration surface.
//!
//! `cargo test -p conformance` runs the full fixed-seed sweep; export
//! `CONFORMANCE_SEED=<n>` to replay a randomized run, and
//! `CONFORMANCE_BLESS=1` to re-bless the counter snapshot after an
//! intentional perf-model change.

use conformance::compare::Tolerance;
use conformance::generators::Regime;
use conformance::oracle::{self, NumericEngine, ScalarOps};
use conformance::runner::{run_sweep, sweep_numeric_engine, SweepConfig};
use sparse::{CsrMatrix, DenseMatrix, FormatError, SparseVector};

/// The headline check: every regime, every law, every engine, under the
/// session seed (fixed by default, overridable for smoke runs). A failure
/// panics with a shrunk, replayable counterexample.
#[test]
fn full_sweep_under_session_seed() {
    let seed = conformance::conformance_seed();
    let summary = run_sweep(seed, &SweepConfig::default())
        .unwrap_or_else(|ce| panic!("seed {seed}:\n{ce}"));
    assert_eq!(summary.cases, Regime::ALL.len() * 3);
    assert!(summary.laws >= 4, "issue requires at least 4 metamorphic laws");
    assert_eq!(summary.counter_engines, 7, "six baselines plus Uni-STC");
}

/// The backend-equivalence sweep from the issue: all regimes x 4 kernels
/// through scalar vs bitwise (and simd under `--features simd`), demanding
/// bit-identical counter signatures and EXACT numerics. Failures shrink
/// and replay exactly like the main sweep.
#[test]
fn backend_equivalence_sweep_under_session_seed() {
    let seed = conformance::conformance_seed();
    let cfg = SweepConfig::default();
    let cases = conformance::backend_equivalence::run_backend_sweep(seed, &cfg)
        .unwrap_or_else(|ce| panic!("seed {seed}:\n{ce}"));
    let pairs = conformance::backend_equivalence::backend_pairs().len();
    assert_eq!(cases, Regime::ALL.len() * cfg.seeds_per_regime as usize * pairs);
}

/// Counter snapshots against the blessed golden file (see
/// `golden/counters.txt`; re-bless with `CONFORMANCE_BLESS=1`).
#[test]
fn golden_counters_match_blessed_snapshot() {
    conformance::golden::check_or_bless().unwrap_or_else(|e| panic!("{e}"));
}

/// The sweep result is a pure function of the seed.
#[test]
fn sweep_is_deterministic() {
    let cfg = SweepConfig { seeds_per_regime: 1, ..SweepConfig::default() };
    assert_eq!(run_sweep(1234, &cfg).unwrap(), run_sweep(1234, &cfg).unwrap());
}

/// An engine that drops the last partial product of every SpMV row —
/// the classic "forgot the tail of the reduction" kernel bug the issue
/// requires the suite to catch and shrink.
struct DropsLastPartial;

impl NumericEngine for DropsLastPartial {
    fn name(&self) -> &str {
        "drops-last-partial"
    }

    fn spmv(&self, a: &CsrMatrix, x: &[f64]) -> Result<Vec<f64>, FormatError> {
        let entries: Vec<(usize, usize, f64)> = a.iter().collect();
        let mut y = vec![0.0; a.nrows()];
        for (i, &(r, c, v)) in entries.iter().enumerate() {
            let last_of_row = entries.get(i + 1).is_none_or(|&(r2, _, _)| r2 != r);
            if !last_of_row {
                y[r] += v * x[c];
            }
        }
        Ok(y)
    }

    fn spmspv(&self, a: &CsrMatrix, x: &SparseVector) -> Result<Vec<f64>, FormatError> {
        ScalarOps.spmspv(a, x)
    }

    fn spmm(&self, a: &CsrMatrix, b: &DenseMatrix) -> Result<DenseMatrix, FormatError> {
        ScalarOps.spmm(a, b)
    }

    fn spgemm(&self, a: &CsrMatrix, b: &CsrMatrix) -> Result<DenseMatrix, FormatError> {
        ScalarOps.spgemm(a, b)
    }
}

/// Acceptance check from the issue: a deliberately injected dropped-partial
/// bug is caught by the sweep and the counterexample shrinks to a near
/// minimal matrix, re-emitted with its replay seed.
#[test]
fn injected_dropped_partial_is_caught_and_shrunk() {
    let seed = conformance::DEFAULT_SEED;
    let ce = sweep_numeric_engine(&DropsLastPartial, seed, &SweepConfig::default())
        .expect_err("a dropped partial product must not survive the sweep");
    assert_eq!(ce.law, "dense-oracle");
    assert!(ce.detail.contains("spmv"), "{}", ce.detail);
    assert!(ce.detail.contains("drops-last-partial"), "{}", ce.detail);
    // The raw counterexamples have up to ~2300 entries; the shrinker must
    // get this bug down to a handful.
    assert!(
        ce.shrunk.nnz() <= 4,
        "expected a near-minimal counterexample, got {} nnz",
        ce.shrunk.nnz()
    );
    // The re-emitted snippet is standalone: seed plus COO pushes.
    let text = ce.to_string();
    assert!(text.contains(&format!("CONFORMANCE_SEED={seed}")), "{text}");
    assert!(text.contains("CooMatrix::new"), "{text}");
    // And the shrunk matrix still witnesses the bug.
    let still = oracle::check_dense_oracle(
        &DropsLastPartial,
        &ce.shrunk,
        seed,
        Tolerance::FP64_KERNEL,
    );
    assert!(still.is_err(), "shrunk counterexample no longer fails");
}

/// A broken *counter* (an engine lying about useful work) is caught by the
/// differential layer even when the numbers it computes are right.
#[test]
fn differential_layer_rejects_inflated_counters() {
    use simkit::{EnergyModel, T1Task, TileEngine};

    struct Inflated(uni_stc::UniStc);
    impl TileEngine for Inflated {
        fn name(&self) -> &str {
            "inflated"
        }
        fn lanes(&self) -> usize {
            self.0.lanes()
        }
        fn execute(&self, task: &T1Task) -> simkit::T1Result {
            let mut r = self.0.execute(task);
            r.useful += 1;
            r
        }
        fn network_costs(&self) -> simkit::NetworkCosts {
            self.0.network_costs()
        }
    }

    let a = Regime::Banded.generate(3);
    let bbc = sparse::BbcMatrix::from_csr(&a);
    let rep = simkit::driver::run_spmv(&Inflated(uni_stc::UniStc::default()), &EnergyModel::default(), &bbc);
    let want = conformance::differential::expected_spmv_products(&a);
    assert_ne!(rep.useful, want, "inflation must be visible in the counter");
}
