//! Metamorphic laws over the four kernels.
//!
//! Where the dense oracle asks "is the answer right?", metamorphic laws
//! ask "do related inputs give consistently related answers?" — relations
//! that hold for *any* correct linear-algebra implementation regardless of
//! evaluation order. They catch bug classes the oracle can miss (operand
//! routing mixed up between kernels, transpose/permutation index errors)
//! and they pin the four kernels *to each other*, which is the paper's
//! central unification claim.

use sparse::{CooMatrix, CsrMatrix};

use crate::compare::{compare_slices, Tolerance};
use crate::generators::{dense_operand, dense_vector, sparse_vector};
use crate::oracle::{spgemm_rhs, NumericEngine};

/// A named metamorphic law.
pub struct Law {
    /// Stable law name (used in counterexamples and golden summaries).
    pub name: &'static str,
    /// Runs the law for `(engine, matrix, seed, tol)`.
    pub check: fn(&dyn NumericEngine, &CsrMatrix, u64, Tolerance) -> Result<(), String>,
}

/// All implemented laws, in check order.
pub fn all_laws() -> Vec<Law> {
    vec![
        Law { name: "linearity", check: check_linearity },
        Law { name: "spmm-column-slicing", check: check_spmm_column_slicing },
        Law { name: "spgemm-iterated-spmv", check: check_spgemm_iterated_spmv },
        Law { name: "transpose-duality", check: check_transpose_duality },
        Law { name: "identity-neutrality", check: check_identity_neutrality },
        Law { name: "row-permutation", check: check_row_permutation },
        Law { name: "spmspv-spmv-consistency", check: check_spmspv_consistency },
    ]
}

/// Runs every law; the error message names the violated law.
///
/// # Errors
///
/// Returns the first law violation, prefixed `metamorphic/<law>`.
pub fn check_all_laws(
    engine: &dyn NumericEngine,
    a: &CsrMatrix,
    seed: u64,
    tol: Tolerance,
) -> Result<(), String> {
    for law in all_laws() {
        (law.check)(engine, a, seed, tol).map_err(|e| format!("metamorphic/{}: {e}", law.name))?;
    }
    Ok(())
}

fn ctx(engine: &dyn NumericEngine, e: impl std::fmt::Display) -> String {
    format!("engine `{}`: {e}", engine.name())
}

/// `A(αx + βy) = α(Ax) + β(Ay)` with power-of-two coefficients, so the
/// law itself introduces no rounding beyond the kernel's own.
fn check_linearity(
    engine: &dyn NumericEngine,
    a: &CsrMatrix,
    seed: u64,
    tol: Tolerance,
) -> Result<(), String> {
    let (alpha, beta) = (0.5, -2.0);
    let x = dense_vector(a.ncols(), seed);
    let y = dense_vector(a.ncols(), seed ^ 0xFEED);
    let mixed: Vec<f64> =
        x.iter().zip(&y).map(|(&xv, &yv)| alpha * xv + beta * yv).collect();
    let lhs = engine.spmv(a, &mixed).map_err(|e| ctx(engine, e))?;
    let ax = engine.spmv(a, &x).map_err(|e| ctx(engine, e))?;
    let ay = engine.spmv(a, &y).map_err(|e| ctx(engine, e))?;
    let rhs: Vec<f64> = ax.iter().zip(&ay).map(|(&p, &q)| alpha * p + beta * q).collect();
    compare_slices(&lhs, &rhs, tol).map_err(|m| ctx(engine, m))
}

/// Column `j` of `A B` equals `A b_j`: SpMM must be consistent with SpMV
/// applied per column.
fn check_spmm_column_slicing(
    engine: &dyn NumericEngine,
    a: &CsrMatrix,
    seed: u64,
    tol: Tolerance,
) -> Result<(), String> {
    let n_cols = 1 + (seed as usize % 7);
    let b = dense_operand(a.ncols(), n_cols, seed);
    let c = engine.spmm(a, &b).map_err(|e| ctx(engine, e))?;
    for j in 0..n_cols {
        let bj: Vec<f64> = (0..b.nrows()).map(|r| b.row(r)[j]).collect();
        let yj = engine.spmv(a, &bj).map_err(|e| ctx(engine, e))?;
        let cj: Vec<f64> = (0..c.nrows()).map(|r| c.row(r)[j]).collect();
        compare_slices(&cj, &yj, tol)
            .map_err(|m| ctx(engine, format_args!("column {j}: {m}")))?;
    }
    Ok(())
}

/// `(A B) x = A (B x)`: the SpGEMM product must act on vectors exactly as
/// the two SpMV applications chained.
fn check_spgemm_iterated_spmv(
    engine: &dyn NumericEngine,
    a: &CsrMatrix,
    seed: u64,
    tol: Tolerance,
) -> Result<(), String> {
    let b = spgemm_rhs(a);
    let x = dense_vector(b.ncols(), seed);
    let c = engine.spgemm(a, &b).map_err(|e| ctx(engine, e))?;
    // (A B) x via a plain dense walk over the engine's C.
    let mut lhs = vec![0.0; c.nrows()];
    for (r, l) in lhs.iter_mut().enumerate() {
        *l = c.row(r).iter().zip(&x).map(|(&cv, &xv)| cv * xv).sum();
    }
    let bx = engine.spmv(&b, &x).map_err(|e| ctx(engine, e))?;
    let rhs = engine.spmv(a, &bx).map_err(|e| ctx(engine, e))?;
    compare_slices(&lhs, &rhs, tol).map_err(|m| ctx(engine, m))
}

/// `Aᵀ x` computed by the engine equals the column-accumulation of `A`
/// against `x` read off the CSC transpose directly.
fn check_transpose_duality(
    engine: &dyn NumericEngine,
    a: &CsrMatrix,
    seed: u64,
    tol: Tolerance,
) -> Result<(), String> {
    let x = dense_vector(a.nrows(), seed);
    let lhs = engine.spmv(&a.transpose(), &x).map_err(|e| ctx(engine, e))?;
    // CSC view of A: column j of A lists exactly the terms of (Aᵀ x)[j].
    let csc = a.to_csc();
    let mut rhs = vec![0.0; a.ncols()];
    for (j, out) in rhs.iter_mut().enumerate() {
        let (rows, vals) = csc.col(j);
        *out = rows.iter().zip(vals).map(|(&r, &v)| v * x[r as usize]).sum();
    }
    compare_slices(&lhs, &rhs, tol).map_err(|m| ctx(engine, m))
}

/// `A I = A` and `I A = A` under SpGEMM (identity blocks exercise the
/// diagonal-tile fast paths).
fn check_identity_neutrality(
    engine: &dyn NumericEngine,
    a: &CsrMatrix,
    _seed: u64,
    tol: Tolerance,
) -> Result<(), String> {
    let want = a.to_dense();
    let right = engine.spgemm(a, &CsrMatrix::identity(a.ncols())).map_err(|e| ctx(engine, e))?;
    compare_slices(right.as_slice(), want.as_slice(), tol)
        .map_err(|m| ctx(engine, format_args!("A*I: {m}")))?;
    let left = engine.spgemm(&CsrMatrix::identity(a.nrows()), a).map_err(|e| ctx(engine, e))?;
    compare_slices(left.as_slice(), want.as_slice(), tol)
        .map_err(|m| ctx(engine, format_args!("I*A: {m}")))
}

/// `(P A) x = P (A x)` for a seeded row permutation `P` — catches row-index
/// bookkeeping errors independent of values.
fn check_row_permutation(
    engine: &dyn NumericEngine,
    a: &CsrMatrix,
    seed: u64,
    tol: Tolerance,
) -> Result<(), String> {
    let n = a.nrows();
    // Seeded Fisher-Yates permutation of the rows.
    let mut perm: Vec<usize> = (0..n).collect();
    let mut rng = sparse::rng::Rng64::new(seed ^ 0x9E3779B9);
    for i in (1..n).rev() {
        perm.swap(i, rng.next_range(i + 1));
    }
    // P A: row i of PA is row perm[i] of A.
    let mut coo = CooMatrix::new(n, a.ncols());
    let mut inv = vec![0usize; n];
    for (i, &p) in perm.iter().enumerate() {
        inv[p] = i;
    }
    for (r, c, v) in a.iter() {
        coo.push(inv[r], c, v);
    }
    let pa = CsrMatrix::try_from(coo).map_err(|e| ctx(engine, e))?;
    let x = dense_vector(a.ncols(), seed);
    let lhs = engine.spmv(&pa, &x).map_err(|e| ctx(engine, e))?;
    let ax = engine.spmv(a, &x).map_err(|e| ctx(engine, e))?;
    let rhs: Vec<f64> = perm.iter().map(|&p| ax[p]).collect();
    compare_slices(&lhs, &rhs, tol).map_err(|m| ctx(engine, m))
}

/// SpMSpV on a sparse `x` equals SpMV on the densified `x` — the two MV
/// kernels must agree wherever their domains overlap.
fn check_spmspv_consistency(
    engine: &dyn NumericEngine,
    a: &CsrMatrix,
    seed: u64,
    tol: Tolerance,
) -> Result<(), String> {
    let sx = sparse_vector(a.ncols(), seed);
    let ys = engine.spmspv(a, &sx).map_err(|e| ctx(engine, e))?;
    let yd = engine.spmv(a, &sx.to_dense()).map_err(|e| ctx(engine, e))?;
    compare_slices(&ys, &yd, tol).map_err(|m| ctx(engine, m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::Regime;
    use crate::oracle::{ScalarOps, UniStcNumeric};
    use sparse::{DenseMatrix, FormatError, SparseVector};

    #[test]
    fn at_least_four_laws_exist() {
        assert!(all_laws().len() >= 4);
        let mut names: Vec<&str> = all_laws().iter().map(|l| l.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all_laws().len());
    }

    #[test]
    fn uni_stc_satisfies_all_laws_on_all_regimes() {
        let engine = UniStcNumeric::default();
        for regime in Regime::ALL {
            for seed in 0..2 {
                let a = regime.generate(seed);
                check_all_laws(&engine, &a, seed, Tolerance::FP64_KERNEL)
                    .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", regime.name()));
            }
        }
    }

    #[test]
    fn scalar_ops_satisfies_all_laws_on_all_regimes() {
        for regime in Regime::ALL {
            for seed in 0..2 {
                let a = regime.generate(seed);
                check_all_laws(&ScalarOps, &a, seed, Tolerance::FP64_KERNEL)
                    .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", regime.name()));
            }
        }
    }

    #[test]
    fn transposed_routing_bug_violates_duality() {
        // An engine that silently transposes its SpMV operand: linearity
        // holds, the dense oracle would catch it, and so must the
        // transpose-duality law.
        struct Transposed;
        impl NumericEngine for Transposed {
            fn name(&self) -> &str {
                "transposed"
            }
            fn spmv(&self, a: &CsrMatrix, x: &[f64]) -> Result<Vec<f64>, FormatError> {
                // Square matrices only in this self-test.
                crate::oracle::ScalarOps.spmv(&a.transpose(), x)
            }
            fn spmspv(&self, a: &CsrMatrix, x: &SparseVector) -> Result<Vec<f64>, FormatError> {
                crate::oracle::ScalarOps.spmspv(a, x)
            }
            fn spmm(&self, a: &CsrMatrix, b: &DenseMatrix) -> Result<DenseMatrix, FormatError> {
                crate::oracle::ScalarOps.spmm(a, b)
            }
            fn spgemm(&self, a: &CsrMatrix, b: &CsrMatrix) -> Result<DenseMatrix, FormatError> {
                crate::oracle::ScalarOps.spgemm(a, b)
            }
        }
        // An asymmetric square matrix.
        let mut coo = CooMatrix::new(8, 8);
        coo.push(0, 3, 2.0);
        coo.push(5, 1, -1.0);
        coo.push(7, 7, 4.0);
        let a = CsrMatrix::try_from(coo).unwrap();
        let err = check_transpose_duality(&Transposed, &a, 3, Tolerance::FP64_KERNEL);
        assert!(err.is_err());
    }
}
