//! Dense-oracle equivalence checks.
//!
//! The oracle layer computes every kernel a third, maximally boring way —
//! a densified triple loop with no blocking, no bitmaps and no sparse
//! bookkeeping — and demands that an engine under test agrees ULP-tightly.
//! The engine is abstracted behind [`NumericEngine`] so the same checks
//! pin the Uni-STC dataflow ([`UniStcNumeric`]), the scalar reference path
//! ([`ScalarOps`]), and deliberately sabotaged engines in self-tests.

use sparse::{BbcMatrix, CsrMatrix, DenseMatrix, FormatError, SparseVector};
use uni_stc::UniStcConfig;

use crate::compare::{compare_dense, compare_slices, Tolerance};
use crate::generators::{dense_operand, dense_vector, sparse_vector};

/// A numeric implementation of the four sparse kernels, checkable against
/// the dense oracle. Sparse outputs are densified so comparisons are
/// uniform across engines with different output structures.
pub trait NumericEngine {
    /// Engine display name (used in failure messages).
    fn name(&self) -> &str;

    /// `y = A x` with dense `x`.
    ///
    /// # Errors
    ///
    /// Propagates the engine's operand validation errors.
    fn spmv(&self, a: &CsrMatrix, x: &[f64]) -> Result<Vec<f64>, FormatError>;

    /// `y = A x` with sparse `x`, densified result.
    ///
    /// # Errors
    ///
    /// Propagates the engine's operand validation errors.
    fn spmspv(&self, a: &CsrMatrix, x: &SparseVector) -> Result<Vec<f64>, FormatError>;

    /// `C = A B` with dense `B`.
    ///
    /// # Errors
    ///
    /// Propagates the engine's operand validation errors.
    fn spmm(&self, a: &CsrMatrix, b: &DenseMatrix) -> Result<DenseMatrix, FormatError>;

    /// `C = A B` with sparse `B`, densified result.
    ///
    /// # Errors
    ///
    /// Propagates the engine's operand validation errors.
    fn spgemm(&self, a: &CsrMatrix, b: &CsrMatrix) -> Result<DenseMatrix, FormatError>;
}

/// The Uni-STC dataflow ([`uni_stc::kernels`]) behind a BBC encode per
/// call — the primary engine under conformance test.
#[derive(Debug, Clone, Default)]
pub struct UniStcNumeric {
    /// Hardware configuration the dataflow runs under.
    pub cfg: UniStcConfig,
}

impl NumericEngine for UniStcNumeric {
    fn name(&self) -> &str {
        "uni-stc-dataflow"
    }

    fn spmv(&self, a: &CsrMatrix, x: &[f64]) -> Result<Vec<f64>, FormatError> {
        let bbc = BbcMatrix::from_csr(a);
        uni_stc::kernels::spmv(&self.cfg, &bbc, x).map(|(y, _)| y)
    }

    fn spmspv(&self, a: &CsrMatrix, x: &SparseVector) -> Result<Vec<f64>, FormatError> {
        let bbc = BbcMatrix::from_csr(a);
        uni_stc::kernels::spmspv(&self.cfg, &bbc, x).map(|(y, _)| y.to_dense())
    }

    fn spmm(&self, a: &CsrMatrix, b: &DenseMatrix) -> Result<DenseMatrix, FormatError> {
        let bbc = BbcMatrix::from_csr(a);
        uni_stc::kernels::spmm(&self.cfg, &bbc, b).map(|(c, _)| c)
    }

    fn spgemm(&self, a: &CsrMatrix, b: &CsrMatrix) -> Result<DenseMatrix, FormatError> {
        let ba = BbcMatrix::from_csr(a);
        let bb = BbcMatrix::from_csr(b);
        uni_stc::kernels::spgemm(&self.cfg, &ba, &bb).map(|(c, _)| c.to_dense())
    }
}

/// The scalar reference path ([`sparse::ops`]) as a [`NumericEngine`], so
/// the golden CPU kernels are themselves pinned to the dense oracle.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarOps;

impl NumericEngine for ScalarOps {
    fn name(&self) -> &str {
        "scalar-ops"
    }

    fn spmv(&self, a: &CsrMatrix, x: &[f64]) -> Result<Vec<f64>, FormatError> {
        sparse::ops::spmv(a, x)
    }

    fn spmspv(&self, a: &CsrMatrix, x: &SparseVector) -> Result<Vec<f64>, FormatError> {
        sparse::ops::spmspv(a, x).map(|y| y.to_dense())
    }

    fn spmm(&self, a: &CsrMatrix, b: &DenseMatrix) -> Result<DenseMatrix, FormatError> {
        sparse::ops::spmm(a, b)
    }

    fn spgemm(&self, a: &CsrMatrix, b: &CsrMatrix) -> Result<DenseMatrix, FormatError> {
        sparse::ops::spgemm(a, b).map(|c| c.to_dense())
    }
}

/// Oracle SpMV: entry-by-entry accumulation straight off the CSR iterator.
pub fn oracle_spmv(a: &CsrMatrix, x: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0; a.nrows()];
    for (r, c, v) in a.iter() {
        y[r] += v * x[c];
    }
    y
}

/// Oracle SpMM: densified triple loop.
pub fn oracle_spmm(a: &CsrMatrix, b: &DenseMatrix) -> DenseMatrix {
    let mut c = DenseMatrix::zeros(a.nrows(), b.ncols());
    for (r, k, v) in a.iter() {
        let brow = b.row(k);
        let crow = c.row_mut(r);
        for (cj, &bj) in crow.iter_mut().zip(brow) {
            *cj += v * bj;
        }
    }
    c
}

/// Oracle SpGEMM: `A` against a densified `B`.
pub fn oracle_spgemm(a: &CsrMatrix, b: &CsrMatrix) -> DenseMatrix {
    oracle_spmm(a, &b.to_dense())
}

/// Derives the SpGEMM right operand for a test case: `B = Aᵀ` always
/// conforms, is structurally distinct from `A`, and keeps rectangular
/// regimes in play.
pub fn spgemm_rhs(a: &CsrMatrix) -> CsrMatrix {
    a.transpose()
}

/// Checks all four kernels of `engine` against the dense oracle on one
/// matrix, with operands derived deterministically from `seed`.
///
/// # Errors
///
/// Returns a message naming the kernel and the worst mismatch.
pub fn check_dense_oracle(
    engine: &dyn NumericEngine,
    a: &CsrMatrix,
    seed: u64,
    tol: Tolerance,
) -> Result<(), String> {
    let fail = |kernel: &str, m: std::fmt::Arguments<'_>| {
        Err(format!("dense-oracle/{kernel} on engine `{}`: {m}", engine.name()))
    };

    // SpMV.
    let x = dense_vector(a.ncols(), seed);
    match engine.spmv(a, &x) {
        Ok(y) => {
            if let Err(m) = compare_slices(&y, &oracle_spmv(a, &x), tol) {
                return fail("spmv", format_args!("{m}"));
            }
        }
        Err(e) => return fail("spmv", format_args!("rejected valid operands: {e}")),
    }

    // SpMSpV: oracle = dense SpMV of the densified sparse vector.
    let sx = sparse_vector(a.ncols(), seed);
    match engine.spmspv(a, &sx) {
        Ok(y) => {
            if let Err(m) = compare_slices(&y, &oracle_spmv(a, &sx.to_dense()), tol) {
                return fail("spmspv", format_args!("{m}"));
            }
        }
        Err(e) => return fail("spmspv", format_args!("rejected valid operands: {e}")),
    }

    // SpMM with a seeded B width crossing tile and block boundaries.
    let n_cols = 1 + (seed as usize % 21);
    let b = dense_operand(a.ncols(), n_cols, seed);
    match engine.spmm(a, &b) {
        Ok(c) => {
            if let Err(m) = compare_dense(&c, &oracle_spmm(a, &b), tol) {
                return fail("spmm", format_args!("{m}"));
            }
        }
        Err(e) => return fail("spmm", format_args!("rejected valid operands: {e}")),
    }

    // SpGEMM against Aᵀ.
    let bs = spgemm_rhs(a);
    match engine.spgemm(a, &bs) {
        Ok(c) => {
            if let Err(m) = compare_dense(&c, &oracle_spgemm(a, &bs), tol) {
                return fail("spgemm", format_args!("{m}"));
            }
        }
        Err(e) => return fail("spgemm", format_args!("rejected valid operands: {e}")),
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::Regime;

    #[test]
    fn uni_stc_engine_passes_oracle_on_all_regimes() {
        let engine = UniStcNumeric::default();
        for regime in Regime::ALL {
            for seed in 0..3 {
                let a = regime.generate(seed);
                check_dense_oracle(&engine, &a, seed, Tolerance::FP64_KERNEL)
                    .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", regime.name()));
            }
        }
    }

    #[test]
    fn scalar_ops_engine_passes_oracle_on_all_regimes() {
        for regime in Regime::ALL {
            for seed in 0..3 {
                let a = regime.generate(seed);
                check_dense_oracle(&ScalarOps, &a, seed, Tolerance::FP64_KERNEL)
                    .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", regime.name()));
            }
        }
    }

    #[test]
    fn oracle_rejects_wrong_answers() {
        struct OffByOne;
        impl NumericEngine for OffByOne {
            fn name(&self) -> &str {
                "off-by-one"
            }
            fn spmv(&self, a: &CsrMatrix, x: &[f64]) -> Result<Vec<f64>, FormatError> {
                let mut y = oracle_spmv(a, x);
                if let Some(v) = y.first_mut() {
                    *v += 1.0;
                }
                Ok(y)
            }
            fn spmspv(&self, a: &CsrMatrix, x: &SparseVector) -> Result<Vec<f64>, FormatError> {
                Ok(oracle_spmv(a, &x.to_dense()))
            }
            fn spmm(&self, a: &CsrMatrix, b: &DenseMatrix) -> Result<DenseMatrix, FormatError> {
                Ok(oracle_spmm(a, b))
            }
            fn spgemm(&self, a: &CsrMatrix, b: &CsrMatrix) -> Result<DenseMatrix, FormatError> {
                Ok(oracle_spgemm(a, b))
            }
        }
        let a = Regime::Diagonal.generate(1);
        let err = check_dense_oracle(&OffByOne, &a, 1, Tolerance::FP64_KERNEL).unwrap_err();
        assert!(err.contains("dense-oracle/spmv"), "{err}");
        assert!(err.contains("off-by-one"), "{err}");
    }

    #[test]
    fn spgemm_rhs_conforms_for_rectangular_inputs() {
        let a = Regime::PowerLawRows.generate(2);
        let b = spgemm_rhs(&a);
        assert_eq!(a.ncols(), b.nrows());
    }
}
