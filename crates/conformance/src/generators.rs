//! Structured sparsity regimes for property testing.
//!
//! Each [`Regime`] is a family of matrices with a characteristic structure
//! that stresses a different part of the BBC format and the four kernel
//! dataflows: trivial/degenerate shapes, block-aligned patterns that fill
//! tiles exactly, DLMC-style pruning masks, and adversarial single
//! dense-row/column shapes that break row-balanced schedules. Generation is
//! fully deterministic in `(regime, seed)` via [`sparse::rng::Rng64`].
//!
//! Values are drawn from a small dyadic grid (multiples of 0.25 in
//! `[-4, 4]`) so that individual products are exact in FP64 and comparison
//! failures always indicate *structural* kernel bugs, never benign
//! rounding — with occasional full-range draws to keep the ULP comparison
//! honest.

use sparse::rng::Rng64;
use sparse::{CooMatrix, CsrMatrix, DenseMatrix, SparseVector};
use workloads::gen;
use workloads::stencil::{self, GridShape, Ordering, StencilKind};

/// Largest matrix edge a regime generates; keeps the full sweep fast while
/// still crossing several 16x16 block boundaries.
pub const MAX_DIM: usize = 48;

/// A structured sparsity regime (a family of generated matrices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Regime {
    /// No stored entries at all; seeds rotate through 0x0, 0xn, nx0 and
    /// nxm shapes to pin degenerate-dimension handling.
    Empty,
    /// Square diagonal matrices (every T3 task on the tile diagonal).
    Diagonal,
    /// Banded matrices via [`workloads::gen::banded`].
    Banded,
    /// Power-law row lengths: row `i` holds ~`n / (i + 1)` entries, the
    /// skewed degree distribution of graph matrices.
    PowerLawRows,
    /// Dense 16x16 blocks exactly aligned to the BBC block grid.
    BlockAligned16,
    /// Dense 4x4 tiles exactly aligned to the BBC tile grid.
    BlockAligned4,
    /// DLMC-style magnitude-pruning mask: dense weights with the smallest
    /// ~75 % of magnitudes dropped.
    DlmcMask,
    /// One fully dense row in an otherwise very sparse matrix
    /// (adversarial for row-balanced schedules).
    SingleDenseRow,
    /// One fully dense column in an otherwise very sparse matrix
    /// (adversarial for outer-product schedules).
    SingleDenseCol,
    /// Uniform random density via [`workloads::gen::random_uniform`].
    UniformRandom,
    /// Structured stencil operators via [`workloads::stencil`]: small
    /// 2-D/3-D grids, all four stencil kinds, natural and 16-aligned
    /// tile orderings — the banded-with-permutation structure the
    /// time-stepped solver family feeds the engines.
    Stencil,
}

impl Regime {
    /// Every regime, in sweep order. New regimes append at the end:
    /// downstream suites (e.g. `runtime_resilience`) index into this
    /// array by position.
    pub const ALL: [Regime; 11] = [
        Regime::Empty,
        Regime::Diagonal,
        Regime::Banded,
        Regime::PowerLawRows,
        Regime::BlockAligned16,
        Regime::BlockAligned4,
        Regime::DlmcMask,
        Regime::SingleDenseRow,
        Regime::SingleDenseCol,
        Regime::UniformRandom,
        Regime::Stencil,
    ];

    /// Stable display name (used in golden files and counterexamples).
    pub fn name(self) -> &'static str {
        match self {
            Regime::Empty => "empty",
            Regime::Diagonal => "diagonal",
            Regime::Banded => "banded",
            Regime::PowerLawRows => "power-law-rows",
            Regime::BlockAligned16 => "block-aligned-16",
            Regime::BlockAligned4 => "block-aligned-4",
            Regime::DlmcMask => "dlmc-mask",
            Regime::SingleDenseRow => "single-dense-row",
            Regime::SingleDenseCol => "single-dense-col",
            Regime::UniformRandom => "uniform-random",
            Regime::Stencil => "stencil",
        }
    }

    /// Generates the regime's matrix for `seed`. The same `(regime, seed)`
    /// pair always yields the same matrix.
    pub fn generate(self, seed: u64) -> CsrMatrix {
        let mut rng = Rng64::new(seed ^ (self as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let n = 1 + rng.next_range(MAX_DIM);
        match self {
            Regime::Empty => {
                let m = 1 + rng.next_range(MAX_DIM);
                match seed % 4 {
                    0 => CsrMatrix::zeros(0, 0),
                    1 => CsrMatrix::zeros(0, n),
                    2 => CsrMatrix::zeros(n, 0),
                    _ => CsrMatrix::zeros(n, m),
                }
            }
            Regime::Diagonal => {
                let mut coo = CooMatrix::new(n, n);
                for i in 0..n {
                    // Every seed drops a few diagonal entries to vary nnz.
                    if rng.next_bool(0.85) {
                        coo.push(i, i, value(&mut rng));
                    }
                }
                CsrMatrix::try_from(coo).expect("diagonal coordinates in range")
            }
            Regime::Banded => {
                let hb = rng.next_range(5);
                gen::banded(n, hb, 0.5 + 0.5 * rng.next_f64(), seed)
            }
            Regime::PowerLawRows => {
                let m = 1 + rng.next_range(MAX_DIM);
                let mut coo = CooMatrix::new(n, m);
                for r in 0..n {
                    let quota = (n / (r + 1)).clamp(1, m);
                    for _ in 0..quota {
                        coo.push(r, rng.next_range(m), value(&mut rng));
                    }
                }
                CsrMatrix::try_from(coo).expect("power-law coordinates in range")
            }
            Regime::BlockAligned16 => {
                let blocks = 1 + rng.next_range(3);
                gen::block_dense(n.next_multiple_of(16), 16, blocks, seed)
            }
            Regime::BlockAligned4 => {
                let blocks = 1 + rng.next_range(8);
                gen::block_dense(n.next_multiple_of(4), 4, blocks, seed)
            }
            Regime::DlmcMask => {
                // Magnitude pruning: keep the largest quarter of a dense
                // weight matrix, like the DLMC pruned-transformer corpus.
                let m = 1 + rng.next_range(MAX_DIM);
                let mut weights: Vec<(usize, usize, f64)> = Vec::with_capacity(n * m);
                for r in 0..n {
                    for c in 0..m {
                        weights.push((r, c, rng.next_f64_range(-1.0, 1.0)));
                    }
                }
                weights.sort_by(|a, b| {
                    b.2.abs().partial_cmp(&a.2.abs()).expect("finite weights")
                });
                weights.truncate((n * m).div_ceil(4));
                let mut coo = CooMatrix::new(n, m);
                for (r, c, v) in weights {
                    coo.push(r, c, v);
                }
                CsrMatrix::try_from(coo).expect("pruned coordinates in range")
            }
            Regime::SingleDenseRow => {
                let mut coo = CooMatrix::new(n, n);
                let hot = rng.next_range(n);
                for c in 0..n {
                    coo.push(hot, c, value(&mut rng));
                }
                for _ in 0..n / 4 {
                    coo.push(rng.next_range(n), rng.next_range(n), value(&mut rng));
                }
                CsrMatrix::try_from(coo).expect("dense-row coordinates in range")
            }
            Regime::SingleDenseCol => {
                let mut coo = CooMatrix::new(n, n);
                let hot = rng.next_range(n);
                for r in 0..n {
                    coo.push(r, hot, value(&mut rng));
                }
                for _ in 0..n / 4 {
                    coo.push(rng.next_range(n), rng.next_range(n), value(&mut rng));
                }
                CsrMatrix::try_from(coo).expect("dense-col coordinates in range")
            }
            Regime::UniformRandom => gen::random_uniform(n, 0.02 + 0.3 * rng.next_f64(), seed),
            Regime::Stencil => {
                // Small structured grids (matrix dim <= MAX_DIM), all
                // four stencil kinds, both orderings. Weights are small
                // integers, so products are exact in FP64.
                let kind = StencilKind::ALL[rng.next_range(StencilKind::ALL.len())];
                let ordering =
                    if rng.next_bool(0.5) { Ordering::Tiled16 } else { Ordering::Natural };
                let shape = if kind.dims() == 2 {
                    GridShape::D2 { nx: 2 + rng.next_range(7), ny: 2 + rng.next_range(5) }
                } else {
                    GridShape::D3 {
                        nx: 2 + rng.next_range(3),
                        ny: 2 + rng.next_range(2),
                        nz: 2 + rng.next_range(2),
                    }
                };
                stencil::lower(kind, shape, ordering).csr
            }
        }
    }
}

/// A mostly-dyadic test value: multiples of 0.25 in `[-4, 4]`, with a 1-in-8
/// chance of a full-range draw.
fn value(rng: &mut Rng64) -> f64 {
    if rng.next_bool(0.125) {
        rng.next_f64_range(-2.0, 2.0)
    } else {
        (rng.next_range(33) as f64 - 16.0) * 0.25
    }
}

/// A deterministic dense vector of length `dim` (the SpMV operand).
pub fn dense_vector(dim: usize, seed: u64) -> Vec<f64> {
    let mut rng = Rng64::new(seed ^ 0xD15E_A5E0);
    (0..dim).map(|_| value(&mut rng)).collect()
}

/// A deterministic ~50 %-dense sparse vector of dimension `dim` (the
/// SpMSpV operand, matching the paper's Section VI-A methodology).
pub fn sparse_vector(dim: usize, seed: u64) -> SparseVector {
    let mut rng = Rng64::new(seed ^ 0x5EA5_1DE0);
    let mut idx = Vec::new();
    let mut values = Vec::new();
    for i in 0..dim {
        if rng.next_bool(0.5) {
            idx.push(i as u32);
            values.push(value(&mut rng));
        }
    }
    SparseVector::try_new(dim, idx, values).expect("indices are sorted and in range")
}

/// A deterministic dense operand matrix (the SpMM `B`).
pub fn dense_operand(nrows: usize, ncols: usize, seed: u64) -> DenseMatrix {
    let mut rng = Rng64::new(seed ^ 0xB0B0_CAFE);
    let mut b = DenseMatrix::zeros(nrows, ncols);
    for r in 0..nrows {
        for v in b.row_mut(r) {
            *v = value(&mut rng);
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for regime in Regime::ALL {
            for seed in 0..4 {
                let a = regime.generate(seed);
                let b = regime.generate(seed);
                assert_eq!(a, b, "{} seed {seed}", regime.name());
            }
        }
    }

    #[test]
    fn regimes_have_distinct_names() {
        let mut names: Vec<&str> = Regime::ALL.iter().map(|r| r.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Regime::ALL.len());
    }

    #[test]
    fn empty_regime_rotates_degenerate_shapes() {
        assert_eq!(Regime::Empty.generate(0).nrows(), 0);
        assert_eq!(Regime::Empty.generate(0).ncols(), 0);
        assert_eq!(Regime::Empty.generate(1).nrows(), 0);
        assert!(Regime::Empty.generate(1).ncols() > 0);
        assert!(Regime::Empty.generate(2).nrows() > 0);
        assert_eq!(Regime::Empty.generate(2).ncols(), 0);
        for seed in 0..8 {
            assert_eq!(Regime::Empty.generate(seed).nnz(), 0);
        }
    }

    #[test]
    fn dense_row_and_col_are_adversarial() {
        for seed in 0..4 {
            let a = Regime::SingleDenseRow.generate(seed);
            let max_row = (0..a.nrows()).map(|r| a.row_nnz(r)).max().unwrap();
            assert_eq!(max_row, a.ncols(), "seed {seed}");
            let t = Regime::SingleDenseCol.generate(seed).transpose();
            let max_col = (0..t.nrows()).map(|r| t.row_nnz(r)).max().unwrap();
            assert_eq!(max_col, t.ncols(), "seed {seed}");
        }
    }

    #[test]
    fn block_aligned_regimes_fill_whole_tiles() {
        let a = Regime::BlockAligned4.generate(3);
        assert_eq!(a.nrows() % 4, 0);
        assert!(a.nnz() > 0);
        let b = Regime::BlockAligned16.generate(3);
        assert_eq!(b.nrows() % 16, 0);
        assert!(b.nnz() >= 256);
    }

    #[test]
    fn dlmc_mask_prunes_three_quarters() {
        let a = Regime::DlmcMask.generate(5);
        let cells = a.nrows() * a.ncols();
        assert_eq!(a.nnz(), cells.div_ceil(4));
    }

    #[test]
    fn stencil_regime_stays_small_and_symmetric() {
        let mut saw_2d = false;
        let mut saw_3d = false;
        for seed in 0..16 {
            let a = Regime::Stencil.generate(seed);
            assert_eq!(a.nrows(), a.ncols(), "seed {seed}");
            assert!(a.nrows() <= MAX_DIM, "seed {seed}: dim {}", a.nrows());
            assert!(a.nnz() > 0, "seed {seed}");
            for (r, c, v) in a.iter() {
                assert_eq!(a.get(c, r), Some(v), "seed {seed}: asymmetric at ({r},{c})");
            }
            // Star5/Box9 rows have <= 9 entries, Star7/Box27 <= 27.
            let max_row = (0..a.nrows()).map(|r| a.row_nnz(r)).max().unwrap();
            if max_row <= 9 {
                saw_2d = true;
            } else {
                saw_3d = true;
            }
        }
        assert!(saw_2d && saw_3d, "16 seeds must cover both dimensionalities");
    }

    #[test]
    fn operand_generators_are_deterministic() {
        assert_eq!(dense_vector(10, 7), dense_vector(10, 7));
        assert_eq!(sparse_vector(10, 7), sparse_vector(10, 7));
        assert_eq!(dense_operand(4, 4, 7), dense_operand(4, 4, 7));
        let sv = sparse_vector(64, 1);
        assert!(sv.nnz() > 8 && sv.nnz() < 56);
    }
}
