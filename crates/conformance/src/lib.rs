//! Differential conformance testing for the Uni-STC stack.
//!
//! This crate is the repo's answer to "how do we know the simulator is
//! computing the right thing?" — a self-contained, offline property-testing
//! engine (no external fuzzing dependencies) that checks every kernel three
//! independent ways:
//!
//! 1. **Dense-oracle equivalence** ([`oracle`]): each kernel against a
//!    maximally boring densified loop, compared ULP-aware ([`compare`]).
//! 2. **Metamorphic laws** ([`metamorphic`]): linearity, column slicing,
//!    SpGEMM-vs-iterated-SpMV, transpose duality, identity and permutation
//!    invariants — relations any correct implementation satisfies.
//! 3. **Cross-engine differentials** ([`differential`]): the six baseline
//!    cycle models, the Uni-STC engine and the numeric dataflow must all
//!    count exactly the same useful work.
//! 4. **Backend equivalence** ([`backend_equivalence`]): the scalar and
//!    bit-parallel `sparse::kernels` backends (plus `simd` when the
//!    feature is on) must be observationally identical — bit-identical
//!    counter signatures and EXACT-tolerance numerics on every regime.
//!
//! Inputs come from structured sparsity [`generators`] (block-aligned,
//! banded, pruning-mask, adversarial dense-row/column regimes), failures
//! are minimized by the [`shrink`] delta-debugger into standalone
//! counterexamples, and simulator counters are pinned by [`golden`]
//! snapshots with an explicit `CONFORMANCE_BLESS=1` update flow.
//!
//! Entry point: [`runner::run_sweep`], driven from `tests/conformance.rs`.
//! Override the sweep seed with `CONFORMANCE_SEED=<n>` to replay a failure
//! printed by a randomized smoke run.

#![forbid(unsafe_code)]

// The matrix types the whole public API traffics in, re-exported so
// downstream tests can name them without a direct `sparse` dependency.
pub use sparse::{CsrMatrix, DenseMatrix, SparseVector};

pub mod backend_equivalence;
pub mod compare;
pub mod differential;
pub mod generators;
pub mod golden;
pub mod metamorphic;
pub mod oracle;
pub mod runner;
pub mod shrink;

/// Default seed of the fixed conformance sweep.
pub const DEFAULT_SEED: u64 = 0xC0FFEE;

/// The sweep seed: `CONFORMANCE_SEED` from the environment when set (any
/// `u64`, decimal), otherwise [`DEFAULT_SEED`]. A failing randomized run
/// prints its seed so `CONFORMANCE_SEED=<n>` reproduces it exactly.
pub fn conformance_seed() -> u64 {
    match std::env::var("CONFORMANCE_SEED") {
        Ok(v) => v
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("CONFORMANCE_SEED must be a u64, got `{v}`")),
        Err(_) => DEFAULT_SEED,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn default_seed_when_env_unset() {
        // The test harness does not set CONFORMANCE_SEED by default; if the
        // caller exported one, honour it (both paths are valid).
        let seed = super::conformance_seed();
        if std::env::var("CONFORMANCE_SEED").is_err() {
            assert_eq!(seed, super::DEFAULT_SEED);
        }
    }
}
