//! Cross-engine differential counter checks.
//!
//! The six baseline tile engines and Uni-STC are *counter* models: they
//! agree on what work exists (the intermediate products of a T1 task) and
//! differ only in how many cycles and events that work costs. The
//! differential check exploits this: for every kernel, every engine's
//! `useful` MAC count must equal the exact product count derivable from
//! the operands by scalar bookkeeping — and the numeric dataflow's
//! [`DataflowStats::products`](uni_stc::kernels::DataflowStats) must land
//! on the same number. Any engine disagreeing with the closed form (or,
//! transitively, with any other engine) is flagged with the kernel and
//! engine named.

use baselines::all_baselines;
use simkit::{driver, EnergyModel, Precision, TileEngine};
use sparse::{BbcMatrix, CsrMatrix, SparseVector};
use uni_stc::{UniStc, UniStcConfig};

use crate::generators::{dense_operand, sparse_vector};
use crate::oracle::spgemm_rhs;

/// Every counter-model engine under differential test: the six baselines
/// plus Uni-STC itself, all at FP64.
pub fn all_engines() -> Vec<Box<dyn TileEngine>> {
    let mut engines = all_baselines(Precision::Fp64);
    engines.push(Box::new(UniStc::default()));
    engines
}

/// Exact SpMV product count: one MAC per stored entry of `A`.
pub fn expected_spmv_products(a: &CsrMatrix) -> u64 {
    a.nnz() as u64
}

/// Exact SpMSpV product count: one MAC per stored entry of `A` whose
/// column lies in the stored support of `x`.
pub fn expected_spmspv_products(a: &CsrMatrix, x: &SparseVector) -> u64 {
    let mut support = vec![false; a.ncols()];
    for &i in x.indices() {
        support[i as usize] = true;
    }
    a.iter().filter(|&(_, c, _)| support[c]).count() as u64
}

/// Exact SpMM product count: every stored entry of `A` meets every one of
/// the `n_cols` dense `B` columns.
pub fn expected_spmm_products(a: &CsrMatrix, n_cols: usize) -> u64 {
    a.nnz() as u64 * n_cols as u64
}

/// Exact SpGEMM product count (Gustavson flops), via the scalar path.
///
/// # Errors
///
/// Propagates the dimension-mismatch error for non-conforming operands.
pub fn expected_spgemm_products(a: &CsrMatrix, b: &CsrMatrix) -> Result<u64, String> {
    sparse::ops::spgemm_flops(a, b).map_err(|e| e.to_string())
}

/// Runs all four kernels on every engine and checks each report's `useful`
/// counter against the closed-form product count; then pins the numeric
/// dataflow's `DataflowStats::products` to the same numbers.
///
/// Operands are derived deterministically from `seed` exactly as in the
/// dense-oracle check.
///
/// # Errors
///
/// Returns a message naming the kernel, the engine and both counts.
pub fn check_counters(a: &CsrMatrix, seed: u64) -> Result<(), String> {
    let bbc = BbcMatrix::from_csr(a);
    let sx = sparse_vector(a.ncols(), seed);
    let n_cols = 1 + (seed as usize % 21);
    let bt = spgemm_rhs(a);
    let bbc_b = BbcMatrix::from_csr(&bt);
    let energy = EnergyModel::default();

    let want_spmv = expected_spmv_products(a);
    let want_spmspv = expected_spmspv_products(a, &sx);
    let want_spmm = expected_spmm_products(a, n_cols);
    let want_spgemm = expected_spgemm_products(a, &bt)?;

    let fail = |kernel: &str, engine: &str, got: u64, want: u64| {
        Err(format!(
            "differential/{kernel}: engine `{engine}` counted {got} useful products, \
             scalar bookkeeping says {want}"
        ))
    };

    for engine in all_engines() {
        let e = engine.as_ref();
        let r = driver::run_spmv(e, &energy, &bbc);
        if r.useful != want_spmv {
            return fail("spmv", e.name(), r.useful, want_spmv);
        }
        let r = driver::run_spmspv(e, &energy, &bbc, &sx);
        if r.useful != want_spmspv {
            return fail("spmspv", e.name(), r.useful, want_spmspv);
        }
        let r = driver::run_spmm(e, &energy, &bbc, n_cols);
        if r.useful != want_spmm {
            return fail("spmm", e.name(), r.useful, want_spmm);
        }
        let r = driver::run_spgemm(e, &energy, &bbc, &bbc_b);
        if r.useful != want_spgemm {
            return fail("spgemm", e.name(), r.useful, want_spgemm);
        }
    }

    // The numeric dataflow must evaluate exactly the same products the
    // cycle models charge for.
    let cfg = UniStcConfig::default();
    let dataflow = "uni-stc-dataflow";
    let x = crate::generators::dense_vector(a.ncols(), seed);
    let (_, s) = uni_stc::kernels::spmv(&cfg, &bbc, &x).map_err(|e| e.to_string())?;
    if s.products != want_spmv {
        return fail("spmv", dataflow, s.products, want_spmv);
    }
    let (_, s) = uni_stc::kernels::spmspv(&cfg, &bbc, &sx).map_err(|e| e.to_string())?;
    if s.products != want_spmspv {
        return fail("spmspv", dataflow, s.products, want_spmspv);
    }
    let b = dense_operand(a.ncols(), n_cols, seed);
    let (_, s) = uni_stc::kernels::spmm(&cfg, &bbc, &b).map_err(|e| e.to_string())?;
    if s.products != want_spmm {
        return fail("spmm", dataflow, s.products, want_spmm);
    }
    let (_, s) = uni_stc::kernels::spgemm(&cfg, &bbc, &bbc_b).map_err(|e| e.to_string())?;
    if s.products != want_spgemm {
        return fail("spgemm", dataflow, s.products, want_spgemm);
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::Regime;
    use sparse::CooMatrix;

    #[test]
    fn seven_engines_under_test() {
        let engines = all_engines();
        assert_eq!(engines.len(), 7);
        let mut names: Vec<String> =
            engines.iter().map(|e| e.name().to_owned()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7, "engine names must be distinct");
    }

    #[test]
    fn counters_agree_on_all_regimes() {
        for regime in Regime::ALL {
            for seed in 0..2 {
                let a = regime.generate(seed);
                check_counters(&a, seed)
                    .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", regime.name()));
            }
        }
    }

    #[test]
    fn expected_counts_by_hand() {
        let mut coo = CooMatrix::new(4, 4);
        coo.push(0, 0, 1.0);
        coo.push(0, 2, 2.0);
        coo.push(3, 1, -1.0);
        let a = CsrMatrix::try_from(coo).unwrap();
        assert_eq!(expected_spmv_products(&a), 3);
        assert_eq!(expected_spmm_products(&a, 5), 15);
        let x = SparseVector::try_new(4, vec![2], vec![1.0]).unwrap();
        assert_eq!(expected_spmspv_products(&a, &x), 1);
        // B = Aᵀ has one stored entry in each of rows 0, 1 and 2, so each
        // of A's three entries meets exactly one B-row entry.
        let bt = a.transpose();
        assert_eq!(expected_spgemm_products(&a, &bt).unwrap(), 3);
    }

    #[test]
    fn spgemm_flops_reject_mismatched_shapes() {
        let a = CsrMatrix::identity(4);
        let b = CsrMatrix::identity(5);
        assert!(expected_spgemm_products(&a, &b).is_err());
    }
}
