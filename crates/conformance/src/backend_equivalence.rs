//! Differential backend-equivalence suite.
//!
//! `sparse::kernels` ships interchangeable bit-manipulation backends
//! (`scalar`, `bitwise`, and optionally `simd`). They are *supposed* to be
//! observationally identical: same BBC encodings, same simulator counters,
//! same numeric results to the last ULP — the bitwise tricks only change
//! how index math is computed, never what is computed. This module turns
//! that contract into a sweep: for every generator regime and seed it runs
//! the whole stack (BBC encode, all seven counter engines x four kernels,
//! the scalar `sparse::ops` reference and the `uni_stc::kernels` dataflow)
//! under each backend pair and demands bit-identical
//! [`counter_signature`](simkit::KernelReport::counter_signature) strings,
//! structurally equal sparse outputs and [`Tolerance::EXACT`] numerics.
//!
//! Failures shrink through the same ddmin delta-debugger as the rest of
//! the conformance suite and replay with `CONFORMANCE_SEED=<n>`.

use simkit::{driver, EnergyModel};
use sparse::kernels::{with_backend, BackendKind};
use sparse::{BbcMatrix, CsrMatrix};
use uni_stc::UniStcConfig;

use crate::compare::{compare_slices, Tolerance};
use crate::differential::all_engines;
use crate::generators::{dense_operand, dense_vector, sparse_vector, Regime};
use crate::oracle::spgemm_rhs;
use crate::runner::SweepConfig;
use crate::shrink::{shrink_matrix, Counterexample};

/// Everything the stack computes for one `(matrix, seed)` case under one
/// backend, flattened into comparable channels.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The BBC encoding of the input (compared structurally via
    /// `PartialEq`, which covers bitmaps, pointers and value order).
    pub bbc: BbcMatrix,
    /// Labelled `KernelReport::counter_signature()` strings, one per
    /// `(engine, kernel)` — the bit-identity oracle for the cycle models.
    pub signatures: Vec<(String, String)>,
    /// Labelled exact-integer channels (output structure, product counts).
    pub ints: Vec<(String, Vec<u64>)>,
    /// Labelled floating-point channels, compared at [`Tolerance::EXACT`].
    pub floats: Vec<(String, Vec<f64>)>,
}

/// Collects the full stack snapshot for `a` under the *currently active*
/// backend, deriving operands from `seed` exactly as
/// [`check_counters`](crate::differential::check_counters) does.
///
/// # Errors
///
/// Propagates operand-validation errors from the kernels as strings.
pub fn snapshot(a: &CsrMatrix, seed: u64) -> Result<Snapshot, String> {
    let bbc = BbcMatrix::from_csr(a);
    let sx = sparse_vector(a.ncols(), seed);
    let n_cols = 1 + (seed as usize % 21);
    let bt = spgemm_rhs(a);
    let bbc_b = BbcMatrix::from_csr(&bt);
    let energy = EnergyModel::default();

    let mut signatures = Vec::new();
    for engine in all_engines() {
        let e = engine.as_ref();
        let runs = [
            ("spmv", driver::run_spmv(e, &energy, &bbc)),
            ("spmspv", driver::run_spmspv(e, &energy, &bbc, &sx)),
            ("spmm", driver::run_spmm(e, &energy, &bbc, n_cols)),
            ("spgemm", driver::run_spgemm(e, &energy, &bbc, &bbc_b)),
        ];
        for (kernel, report) in runs {
            signatures.push((format!("{}/{kernel}", e.name()), report.counter_signature()));
        }
    }

    let mut ints = Vec::new();
    let mut floats = Vec::new();

    // The scalar reference path (`sparse::ops`).
    let x = dense_vector(a.ncols(), seed);
    let y = sparse::ops::spmv(a, &x).map_err(|e| e.to_string())?;
    floats.push(("ops/spmv".to_owned(), y));
    let sy = sparse::ops::spmspv(a, &sx).map_err(|e| e.to_string())?;
    ints.push(("ops/spmspv indices".to_owned(), widen(sy.indices())));
    floats.push(("ops/spmspv values".to_owned(), sy.values().to_vec()));
    let b = dense_operand(a.ncols(), n_cols, seed);
    let c = sparse::ops::spmm(a, &b).map_err(|e| e.to_string())?;
    floats.push(("ops/spmm".to_owned(), c.as_slice().to_vec()));
    let g = sparse::ops::spgemm(a, &bt).map_err(|e| e.to_string())?;
    ints.push((
        "ops/spgemm row_ptr".to_owned(),
        g.row_ptr().iter().map(|&p| p as u64).collect(),
    ));
    ints.push(("ops/spgemm col_idx".to_owned(), widen(g.col_idx())));
    floats.push(("ops/spgemm values".to_owned(), g.values().to_vec()));

    // The Uni-STC numeric dataflow.
    let cfg = UniStcConfig::default();
    let (y, s) = uni_stc::kernels::spmv(&cfg, &bbc, &x).map_err(|e| e.to_string())?;
    ints.push(("dataflow/spmv products".to_owned(), vec![s.products]));
    floats.push(("dataflow/spmv".to_owned(), y));
    let (sy, s) = uni_stc::kernels::spmspv(&cfg, &bbc, &sx).map_err(|e| e.to_string())?;
    ints.push(("dataflow/spmspv products".to_owned(), vec![s.products]));
    ints.push(("dataflow/spmspv indices".to_owned(), widen(sy.indices())));
    floats.push(("dataflow/spmspv values".to_owned(), sy.values().to_vec()));
    let (c, s) = uni_stc::kernels::spmm(&cfg, &bbc, &b).map_err(|e| e.to_string())?;
    ints.push(("dataflow/spmm products".to_owned(), vec![s.products]));
    floats.push(("dataflow/spmm".to_owned(), c.as_slice().to_vec()));
    let (g, s) = uni_stc::kernels::spgemm(&cfg, &bbc, &bbc_b).map_err(|e| e.to_string())?;
    ints.push(("dataflow/spgemm products".to_owned(), vec![s.products]));
    floats.push(("dataflow/spgemm".to_owned(), g.to_dense().as_slice().to_vec()));

    Ok(Snapshot { bbc, signatures, ints, floats })
}

/// Widens a `u32` index slice into the snapshot's `u64` channel type.
fn widen(idx: &[u32]) -> Vec<u64> {
    idx.iter().map(|&i| u64::from(i)).collect()
}

/// Compares two snapshots channel by channel, naming the first divergence.
///
/// # Errors
///
/// Returns a message naming the channel, both backends and the mismatch.
pub fn diff_snapshots(
    reference: &str,
    want: &Snapshot,
    candidate: &str,
    got: &Snapshot,
) -> Result<(), String> {
    if got.bbc != want.bbc {
        return Err(format!(
            "backend-equivalence: BBC encoding differs between `{reference}` and `{candidate}`"
        ));
    }
    for ((label, want_sig), (_, got_sig)) in want.signatures.iter().zip(&got.signatures) {
        if got_sig != want_sig {
            return Err(format!(
                "backend-equivalence/{label}: counter signature differs\n  {reference}: \
                 {want_sig}\n  {candidate}: {got_sig}"
            ));
        }
    }
    for ((label, want_ints), (_, got_ints)) in want.ints.iter().zip(&got.ints) {
        if got_ints != want_ints {
            return Err(format!(
                "backend-equivalence/{label}: integer channel differs between `{reference}` \
                 and `{candidate}` ({} vs {} entries)",
                want_ints.len(),
                got_ints.len()
            ));
        }
    }
    for ((label, want_vals), (_, got_vals)) in want.floats.iter().zip(&got.floats) {
        if let Err(m) = compare_slices(got_vals, want_vals, Tolerance::EXACT) {
            return Err(format!(
                "backend-equivalence/{label}: `{candidate}` diverges from `{reference}`: {m}"
            ));
        }
    }
    Ok(())
}

/// Runs the full stack under `reference` and `candidate` and demands
/// observational equality (see [`diff_snapshots`]).
///
/// # Errors
///
/// Returns a message naming the diverging channel and both backends.
pub fn check_backend_pair(
    a: &CsrMatrix,
    seed: u64,
    reference: BackendKind,
    candidate: BackendKind,
) -> Result<(), String> {
    let want = with_backend(reference, || snapshot(a, seed))?;
    let got = with_backend(candidate, || snapshot(a, seed))?;
    diff_snapshots(reference.name(), &want, candidate.name(), &got)
}

/// The backend pairs under test: `scalar` is the reference; every other
/// compiled-in backend (`bitwise`, and `simd` with the feature on) is a
/// candidate.
pub fn backend_pairs() -> Vec<(BackendKind, BackendKind)> {
    BackendKind::ALL
        .iter()
        .filter(|&&k| k != BackendKind::Scalar)
        .map(|&k| (BackendKind::Scalar, k))
        .collect()
}

fn shrunk_failure(
    regime: Regime,
    law: String,
    seed: u64,
    detail: String,
    a: &CsrMatrix,
    still_fails: &dyn Fn(&CsrMatrix) -> bool,
) -> Box<Counterexample> {
    Box::new(Counterexample {
        regime: regime.name(),
        law,
        seed,
        detail,
        shrunk: shrink_matrix(a, still_fails),
    })
}

/// Sweeps every generator regime x seed through every backend pair.
///
/// Returns the number of `(regime, seed, pair)` cases checked.
///
/// # Errors
///
/// The first divergence is ddmin-shrunk and returned as a
/// [`Counterexample`] carrying its `CONFORMANCE_SEED` replay line.
pub fn run_backend_sweep(
    base_seed: u64,
    cfg: &SweepConfig,
) -> Result<usize, Box<Counterexample>> {
    let pairs = backend_pairs();
    let mut cases = 0usize;
    for regime in Regime::ALL {
        for s in 0..cfg.seeds_per_regime {
            let seed = base_seed.wrapping_add(s);
            let a = regime.generate(seed);
            for &(reference, candidate) in &pairs {
                cases += 1;
                if let Err(detail) = check_backend_pair(&a, seed, reference, candidate) {
                    let law = format!(
                        "backend-equivalence {} vs {}",
                        reference.name(),
                        candidate.name()
                    );
                    return Err(shrunk_failure(regime, law, seed, detail, &a, &|m| {
                        check_backend_pair(m, seed, reference, candidate).is_err()
                    }));
                }
            }
        }
    }
    Ok(cases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DEFAULT_SEED;

    #[test]
    fn scalar_vs_bitwise_single_seed_sweep_is_clean() {
        let cfg = SweepConfig { seeds_per_regime: 1, ..SweepConfig::default() };
        let cases = run_backend_sweep(DEFAULT_SEED, &cfg)
            .unwrap_or_else(|ce| panic!("seed {DEFAULT_SEED}:\n{ce}"));
        assert_eq!(cases, Regime::ALL.len() * backend_pairs().len());
    }

    #[test]
    fn snapshot_is_deterministic_per_backend() {
        let a = Regime::Banded.generate(7);
        for &kind in sparse::kernels::BackendKind::ALL {
            let s1 = with_backend(kind, || snapshot(&a, 7)).expect("snapshot");
            let s2 = with_backend(kind, || snapshot(&a, 7)).expect("snapshot");
            assert_eq!(s1, s2, "snapshot under {kind} must be pure");
        }
    }

    #[test]
    fn diff_catches_a_corrupted_signature() {
        let a = Regime::BlockAligned16.generate(3);
        let want = with_backend(BackendKind::Scalar, || snapshot(&a, 3)).expect("snapshot");
        let mut got = want.clone();
        got.signatures[0].1.push('!');
        let err = diff_snapshots("scalar", &want, "sabotaged", &got)
            .expect_err("a corrupted counter signature must be flagged");
        assert!(err.contains("counter signature differs"), "{err}");
        assert!(err.contains("sabotaged"), "{err}");
    }

    #[test]
    fn diff_catches_a_one_ulp_numeric_nudge() {
        let a = Regime::BlockAligned16.generate(3);
        let want = with_backend(BackendKind::Scalar, || snapshot(&a, 3)).expect("snapshot");
        let mut got = want.clone();
        let nudged: Option<&mut f64> = got
            .floats
            .iter_mut()
            .flat_map(|(_, vs)| vs.iter_mut())
            .find(|v| **v != 0.0);
        let v = nudged.expect("snapshot has nonzero numerics");
        *v = f64::from_bits(v.to_bits() ^ 1);
        let err = diff_snapshots("scalar", &want, "nudged", &got)
            .expect_err("EXACT tolerance must flag a single-ULP change");
        assert!(err.contains("ulps"), "{err}");
    }

    #[test]
    fn failing_pair_shrinks_and_carries_the_replay_seed() {
        // An always-failing predicate exercises the shrink + replay
        // plumbing without needing a genuinely broken backend.
        let regime = Regime::Banded;
        let seed = 11u64;
        let a = regime.generate(seed);
        let ce = shrunk_failure(
            regime,
            "backend-equivalence scalar vs bitwise".to_owned(),
            seed,
            "synthetic divergence".to_owned(),
            &a,
            &|m| m.nnz() > 0,
        );
        let text = ce.to_string();
        assert!(text.contains(&format!("CONFORMANCE_SEED={seed}")), "{text}");
        assert!(ce.shrunk.nnz() <= a.nnz(), "shrinking must not grow the witness");
    }
}
