//! ULP-aware floating-point comparison.
//!
//! The four kernels accumulate the same products in different orders
//! (per-thread registers, the SDPU merge network, the Gustavson dense
//! accumulator), so results agree only up to rounding. Fixed absolute
//! epsilons (`1e-9` and friends) are both too loose for small values and
//! too tight for large sums; the honest metric is distance in *units in
//! the last place* with a small absolute floor for sums that cancel to
//! (nearly) zero.

use sparse::DenseMatrix;

/// Distance between two `f64` values in units in the last place.
///
/// Equal values (including `+0.0` vs `-0.0`) are at distance 0; any
/// comparison involving a NaN is at distance `u64::MAX`; values of opposite
/// sign are the sum of their distances to zero.
///
/// # Example
///
/// ```
/// use conformance::compare::ulp_diff_f64;
///
/// assert_eq!(ulp_diff_f64(1.0, 1.0), 0);
/// assert_eq!(ulp_diff_f64(1.0, 1.0 + f64::EPSILON), 1);
/// assert_eq!(ulp_diff_f64(0.0, -0.0), 0);
/// assert_eq!(ulp_diff_f64(f64::NAN, 1.0), u64::MAX);
/// ```
pub fn ulp_diff_f64(a: f64, b: f64) -> u64 {
    if a == b {
        return 0;
    }
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    // Map the bit patterns onto a monotone unsigned number line centred so
    // that +0.0 and -0.0 coincide at 1 << 63.
    fn ordered(x: f64) -> u64 {
        let bits = x.to_bits();
        if bits >> 63 == 1 {
            (1 << 63) - (bits & !(1 << 63))
        } else {
            bits + (1 << 63)
        }
    }
    ordered(a).abs_diff(ordered(b))
}

/// Distance between two `f32` values in units in the last place (the FP32
/// analogue of [`ulp_diff_f64`], for precision-scaled engine outputs).
pub fn ulp_diff_f32(a: f32, b: f32) -> u32 {
    if a == b {
        return 0;
    }
    if a.is_nan() || b.is_nan() {
        return u32::MAX;
    }
    fn ordered(x: f32) -> u32 {
        let bits = x.to_bits();
        if bits >> 31 == 1 {
            (1 << 31) - (bits & !(1 << 31))
        } else {
            bits + (1 << 31)
        }
    }
    ordered(a).abs_diff(ordered(b))
}

/// Comparison tolerance: two values agree when they are within `max_ulps`
/// units in the last place *or* within `abs_floor` absolutely (the floor
/// absorbs catastrophic cancellation down to ~0, where ULP distance blows
/// up).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Maximum accepted ULP distance between finite values.
    pub max_ulps: u64,
    /// Absolute difference below which values always agree.
    pub abs_floor: f64,
}

impl Tolerance {
    /// Bit-exact comparison (still identifies `+0.0` and `-0.0`).
    pub const EXACT: Tolerance = Tolerance { max_ulps: 0, abs_floor: 0.0 };

    /// Default tolerance for FP64 kernel outputs: generous enough for any
    /// reassociation of a few thousand products, far tighter than the old
    /// `1e-9` absolute epsilons for values of magnitude below ~4000.
    pub const FP64_KERNEL: Tolerance = Tolerance { max_ulps: 512, abs_floor: 1e-9 };

    /// Tolerance for quantities derived through divisions and norms
    /// (solver residuals, energy ratios) rather than raw kernel sums.
    pub const DERIVED: Tolerance = Tolerance { max_ulps: 1 << 24, abs_floor: 1e-6 };

    /// Whether `a` and `b` agree under this tolerance.
    pub fn eq(&self, a: f64, b: f64) -> bool {
        if (a - b).abs() <= self.abs_floor {
            return true;
        }
        ulp_diff_f64(a, b) <= self.max_ulps
    }
}

/// A located comparison failure, suitable for shrinker output.
#[derive(Debug, Clone, PartialEq)]
pub struct Mismatch {
    /// Flat index of the worst element.
    pub index: usize,
    /// Left value at the worst element.
    pub got: f64,
    /// Right value at the worst element.
    pub want: f64,
    /// ULP distance at the worst element.
    pub ulps: u64,
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "index {}: got {:e}, want {:e} ({} ulps apart)",
            self.index, self.got, self.want, self.ulps
        )
    }
}

/// Compares two slices element-wise, returning the worst offender outside
/// tolerance (or `Ok` when every element agrees).
///
/// # Errors
///
/// Returns a [`Mismatch`] when the lengths differ (reported at the shorter
/// length with NaN sentinels) or any element pair violates `tol`.
pub fn compare_slices(got: &[f64], want: &[f64], tol: Tolerance) -> Result<(), Mismatch> {
    if got.len() != want.len() {
        return Err(Mismatch {
            index: got.len().min(want.len()),
            got: f64::NAN,
            want: f64::NAN,
            ulps: u64::MAX,
        });
    }
    let mut worst: Option<Mismatch> = None;
    for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
        if !tol.eq(g, w) {
            let ulps = ulp_diff_f64(g, w);
            if worst.as_ref().is_none_or(|m| ulps > m.ulps) {
                worst = Some(Mismatch { index: i, got: g, want: w, ulps });
            }
        }
    }
    match worst {
        Some(m) => Err(m),
        None => Ok(()),
    }
}

/// Compares two dense matrices under `tol`; the mismatch index is the
/// row-major flat index.
///
/// # Errors
///
/// Returns a [`Mismatch`] on any shape or element disagreement.
pub fn compare_dense(got: &DenseMatrix, want: &DenseMatrix, tol: Tolerance) -> Result<(), Mismatch> {
    if got.nrows() != want.nrows() || got.ncols() != want.ncols() {
        return Err(Mismatch { index: 0, got: f64::NAN, want: f64::NAN, ulps: u64::MAX });
    }
    compare_slices(got.as_slice(), want.as_slice(), tol)
}

/// Asserts two slices agree under `tol`, panicking with the worst offender
/// in the message. Drop-in replacement for ad-hoc `(a - b).abs() < 1e-9`
/// loops in tests.
///
/// # Panics
///
/// Panics when any element pair violates `tol`; the message names the
/// element and its ULP distance plus the caller-provided context.
pub fn assert_slices_close(got: &[f64], want: &[f64], tol: Tolerance, context: &str) {
    if let Err(m) = compare_slices(got, want, tol) {
        panic!("{context}: {m}");
    }
}

/// Asserts two dense matrices agree under `tol` (see
/// [`assert_slices_close`]).
///
/// # Panics
///
/// Panics when the shapes differ or any element pair violates `tol`.
pub fn assert_dense_close(got: &DenseMatrix, want: &DenseMatrix, tol: Tolerance, context: &str) {
    if let Err(m) = compare_dense(got, want, tol) {
        panic!("{context}: {m}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ulp_adjacent_values() {
        let a = 1.0f64;
        let b = f64::from_bits(a.to_bits() + 1);
        assert_eq!(ulp_diff_f64(a, b), 1);
        assert_eq!(ulp_diff_f64(b, a), 1);
    }

    #[test]
    fn ulp_across_zero() {
        let tiny = f64::from_bits(1); // smallest positive subnormal
        assert_eq!(ulp_diff_f64(tiny, -tiny), 2);
        assert_eq!(ulp_diff_f64(0.0, tiny), 1);
    }

    #[test]
    fn ulp_nan_and_infinity() {
        assert_eq!(ulp_diff_f64(f64::NAN, f64::NAN), u64::MAX);
        assert_eq!(ulp_diff_f64(f64::INFINITY, f64::INFINITY), 0);
        assert!(ulp_diff_f64(f64::MAX, f64::INFINITY) == 1);
    }

    #[test]
    fn ulp_f32_mirrors_f64() {
        assert_eq!(ulp_diff_f32(1.0, 1.0), 0);
        assert_eq!(ulp_diff_f32(1.0, 1.0 + f32::EPSILON), 1);
        assert_eq!(ulp_diff_f32(0.0, -0.0), 0);
        assert_eq!(ulp_diff_f32(f32::NAN, 0.0), u32::MAX);
    }

    #[test]
    fn tolerance_exact_and_kernel() {
        assert!(Tolerance::EXACT.eq(2.5, 2.5));
        // At 1.5 (exponent 0), EPSILON is exactly one ulp.
        assert!(!Tolerance::EXACT.eq(1.5, 1.5 + f64::EPSILON));
        // ULP(1e6) is ~1.16e-10, so 1e-8 is ~86 ulps: well inside 512.
        assert!(Tolerance::FP64_KERNEL.eq(1e6, 1e6 + 1e-8));
        assert!(!Tolerance::FP64_KERNEL.eq(1e6, 1e6 + 1e-6));
        assert!(!Tolerance::FP64_KERNEL.eq(1.0, 1.0001));
    }

    #[test]
    fn abs_floor_absorbs_cancellation() {
        // 1e-30 vs 0.0 is astronomically many ULPs but passes the floor.
        assert!(Tolerance::FP64_KERNEL.eq(1e-30, 0.0));
    }

    #[test]
    fn compare_slices_finds_worst() {
        let got = [1.0, 2.0, 3.5];
        let want = [1.0, 2.0, 3.0];
        let m = compare_slices(&got, &want, Tolerance::FP64_KERNEL).unwrap_err();
        assert_eq!(m.index, 2);
        assert_eq!(m.got, 3.5);
    }

    #[test]
    fn compare_slices_length_mismatch() {
        assert!(compare_slices(&[1.0], &[1.0, 2.0], Tolerance::FP64_KERNEL).is_err());
    }

    #[test]
    fn compare_dense_checks_shape() {
        let a = DenseMatrix::zeros(2, 2);
        let b = DenseMatrix::zeros(2, 3);
        assert!(compare_dense(&a, &b, Tolerance::FP64_KERNEL).is_err());
        assert!(compare_dense(&a, &a, Tolerance::EXACT).is_ok());
    }

    #[test]
    #[should_panic(expected = "spmv check")]
    fn assert_helper_panics_with_context() {
        assert_slices_close(&[1.0], &[2.0], Tolerance::EXACT, "spmv check");
    }
}
