//! Golden-file snapshots of simulator counters.
//!
//! Numeric equivalence says the kernels compute the right values; the
//! golden snapshot says the *simulator* still charges the same cycles and
//! events for the same work. Each conformance run renders every
//! `(regime, engine, kernel)` combination to a
//! [`KernelReport::counter_signature`](simkit::driver::KernelReport) line;
//! the file under `golden/` is the blessed reference. A mismatch is a
//! deliberate perf-model change (re-bless) or an accidental one (a bug) —
//! either way it becomes visible in review instead of drifting silently.
//!
//! Update flow: `CONFORMANCE_BLESS=1 cargo test -p conformance` rewrites
//! the snapshot; the diff then documents the perf-model change.

use std::path::PathBuf;

use simkit::{driver, EnergyModel};
use sparse::BbcMatrix;

use crate::differential::all_engines;
use crate::generators::{sparse_vector, Regime};

/// Seed the snapshot sweep runs under (fixed: the golden file pins these
/// exact matrices).
pub const GOLDEN_SEED: u64 = 7;

/// Renders the full counter snapshot: every regime at [`GOLDEN_SEED`],
/// every engine, all four kernels, one signature line each.
pub fn counters_snapshot() -> String {
    let energy = EnergyModel::default();
    let mut out = String::new();
    out.push_str("# conformance counter snapshot (CONFORMANCE_BLESS=1 to update)\n");
    for regime in Regime::ALL {
        let a = regime.generate(GOLDEN_SEED);
        let bbc = BbcMatrix::from_csr(&a);
        let sx = sparse_vector(a.ncols(), GOLDEN_SEED);
        let bt = a.transpose();
        let bbc_b = BbcMatrix::from_csr(&bt);
        for engine in all_engines() {
            let e = engine.as_ref();
            for rep in [
                driver::run_spmv(e, &energy, &bbc),
                driver::run_spmspv(e, &energy, &bbc, &sx),
                driver::run_spmm(e, &energy, &bbc, 20),
                driver::run_spgemm(e, &energy, &bbc, &bbc_b),
            ] {
                out.push_str(regime.name());
                out.push(' ');
                out.push_str(&rep.counter_signature());
                out.push('\n');
            }
        }
    }
    out
}

/// Path of the blessed snapshot file (inside the crate, so it is versioned
/// with the code it describes).
pub fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden").join("counters.txt")
}

/// Compares the current snapshot against the blessed file — or rewrites
/// the file when `CONFORMANCE_BLESS=1` is set in the environment.
///
/// # Errors
///
/// Returns a unified description of the first diverging line (with its
/// line number) when the snapshot and the blessed file disagree, or an IO
/// error description when the file is missing and blessing is off.
pub fn check_or_bless() -> Result<(), String> {
    let current = counters_snapshot();
    let path = golden_path();
    if std::env::var_os("CONFORMANCE_BLESS").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("golden path has a parent"))
            .map_err(|e| format!("creating {}: {e}", path.display()))?;
        std::fs::write(&path, &current)
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        return Ok(());
    }
    let blessed = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "reading {}: {e}\nrun `CONFORMANCE_BLESS=1 cargo test -p conformance` to create it",
            path.display()
        )
    })?;
    if blessed == current {
        return Ok(());
    }
    // Name the first diverging line for the failure message.
    let mut blessed_lines = blessed.lines();
    let mut current_lines = current.lines();
    let mut lineno = 0usize;
    loop {
        lineno += 1;
        match (blessed_lines.next(), current_lines.next()) {
            (Some(b), Some(c)) if b == c => continue,
            (b, c) => {
                return Err(format!(
                    "counter snapshot diverges from {} at line {lineno}:\n  blessed: {}\n  current: {}\n\
                     re-bless with CONFORMANCE_BLESS=1 if the perf-model change is intentional",
                    path.display(),
                    b.unwrap_or("<missing>"),
                    c.unwrap_or("<missing>"),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_deterministic() {
        assert_eq!(counters_snapshot(), counters_snapshot());
    }

    #[test]
    fn snapshot_covers_every_regime_engine_kernel() {
        let snap = counters_snapshot();
        // 11 regimes x 7 engines x 4 kernels + 1 header line.
        assert_eq!(snap.lines().count(), 11 * 7 * 4 + 1);
        for regime in Regime::ALL {
            assert!(snap.contains(regime.name()), "{} missing", regime.name());
        }
        for kernel in ["SpMV", "SpMSpV", "SpMM", "SpGEMM"] {
            assert!(snap.contains(kernel), "{kernel} missing");
        }
    }

    #[test]
    fn golden_path_is_inside_the_crate() {
        let p = golden_path();
        assert!(p.ends_with("golden/counters.txt"));
        assert!(p.starts_with(env!("CARGO_MANIFEST_DIR")));
    }
}
