//! The conformance sweep: regimes x seeds x (oracle, laws, counters),
//! with automatic shrinking of any failure into a [`Counterexample`].

use sparse::CsrMatrix;

use crate::compare::Tolerance;
use crate::differential::check_counters;
use crate::generators::Regime;
use crate::metamorphic::{all_laws, check_all_laws};
use crate::oracle::{check_dense_oracle, NumericEngine, ScalarOps, UniStcNumeric};
use crate::shrink::{shrink_matrix, Counterexample};

/// Sweep parameters.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Seeds run per regime (each seed is an independent matrix + operand
    /// family).
    pub seeds_per_regime: u64,
    /// Numeric tolerance for the oracle and law comparisons.
    pub tol: Tolerance,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig { seeds_per_regime: 3, tol: Tolerance::FP64_KERNEL }
    }
}

/// What a clean sweep covered (for reporting, and for tests asserting the
/// sweep actually ran everything it claims to).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepSummary {
    /// Generated `(regime, seed)` cases.
    pub cases: usize,
    /// Numeric engines checked against the oracle and the laws.
    pub numeric_engines: usize,
    /// Metamorphic laws applied per case per engine.
    pub laws: usize,
    /// Counter-model engines checked differentially per case.
    pub counter_engines: usize,
}

fn shrunk_failure(
    regime: Regime,
    law: &str,
    seed: u64,
    detail: String,
    a: &CsrMatrix,
    still_fails: &dyn Fn(&CsrMatrix) -> bool,
) -> Box<Counterexample> {
    Box::new(Counterexample {
        regime: regime.name(),
        law: law.to_owned(),
        seed,
        detail,
        shrunk: shrink_matrix(a, still_fails),
    })
}

/// Runs one numeric engine through the full sweep (dense oracle plus every
/// metamorphic law on every regime/seed).
///
/// Returns the number of cases checked.
///
/// # Errors
///
/// The first failure is shrunk and returned as a [`Counterexample`].
pub fn sweep_numeric_engine(
    engine: &dyn NumericEngine,
    base_seed: u64,
    cfg: &SweepConfig,
) -> Result<usize, Box<Counterexample>> {
    let mut cases = 0usize;
    for regime in Regime::ALL {
        for s in 0..cfg.seeds_per_regime {
            let seed = base_seed.wrapping_add(s);
            let a = regime.generate(seed);
            cases += 1;
            if let Err(detail) = check_dense_oracle(engine, &a, seed, cfg.tol) {
                return Err(shrunk_failure(regime, "dense-oracle", seed, detail, &a, &|m| {
                    check_dense_oracle(engine, m, seed, cfg.tol).is_err()
                }));
            }
            if let Err(detail) = check_all_laws(engine, &a, seed, cfg.tol) {
                return Err(shrunk_failure(regime, "metamorphic", seed, detail, &a, &|m| {
                    check_all_laws(engine, m, seed, cfg.tol).is_err()
                }));
            }
        }
    }
    Ok(cases)
}

/// Runs the complete conformance sweep: the Uni-STC dataflow and the
/// scalar reference through [`sweep_numeric_engine`], plus the cross-engine
/// differential counter check on every case.
///
/// # Errors
///
/// The first failure is shrunk and returned as a [`Counterexample`].
pub fn run_sweep(base_seed: u64, cfg: &SweepConfig) -> Result<SweepSummary, Box<Counterexample>> {
    let numeric: [&dyn NumericEngine; 2] = [&UniStcNumeric { cfg: Default::default() }, &ScalarOps];
    let mut cases = 0usize;
    for engine in numeric {
        cases = sweep_numeric_engine(engine, base_seed, cfg)?;
    }
    for regime in Regime::ALL {
        for s in 0..cfg.seeds_per_regime {
            let seed = base_seed.wrapping_add(s);
            let a = regime.generate(seed);
            if let Err(detail) = check_counters(&a, seed) {
                return Err(shrunk_failure(regime, "differential", seed, detail, &a, &|m| {
                    check_counters(m, seed).is_err()
                }));
            }
        }
    }
    Ok(SweepSummary {
        cases,
        numeric_engines: numeric.len(),
        laws: all_laws().len(),
        counter_engines: crate::differential::all_engines().len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_sweep_is_clean_and_covers_everything() {
        let cfg = SweepConfig { seeds_per_regime: 2, ..SweepConfig::default() };
        let summary = run_sweep(0xC0FFEE, &cfg).unwrap_or_else(|ce| panic!("{ce}"));
        assert_eq!(summary.cases, Regime::ALL.len() * 2);
        assert_eq!(summary.numeric_engines, 2);
        assert!(summary.laws >= 4);
        assert_eq!(summary.counter_engines, 7);
    }

    #[test]
    fn sweep_is_deterministic_in_the_seed() {
        let cfg = SweepConfig { seeds_per_regime: 1, ..SweepConfig::default() };
        let a = run_sweep(42, &cfg).unwrap();
        let b = run_sweep(42, &cfg).unwrap();
        assert_eq!(a, b);
    }
}
