//! Minimizing shrinker for failing matrices.
//!
//! When a property fails on a generated matrix, the raw counterexample is
//! usually dozens of entries across several blocks — useless for debugging
//! a dataflow. [`shrink_matrix`] reduces it with a delta-debugging loop
//! (chunked entry removal, dimension trimming, value canonicalisation)
//! while re-running the failing predicate, and [`Counterexample`] re-emits
//! the minimal matrix as a standalone snippet plus the seed that found it.

use sparse::{CooMatrix, CsrMatrix};

/// Hard cap on predicate evaluations per shrink (the predicate runs full
/// kernel comparisons, so runaway shrinks would dominate test time).
const MAX_PREDICATE_CALLS: usize = 2_000;

fn rebuild(nrows: usize, ncols: usize, entries: &[(usize, usize, f64)]) -> Option<CsrMatrix> {
    let mut coo = CooMatrix::new(nrows, ncols);
    for &(r, c, v) in entries {
        if r >= nrows || c >= ncols {
            return None;
        }
        coo.push(r, c, v);
    }
    CsrMatrix::try_from(coo).ok()
}

/// Shrinks `matrix` to a (locally) minimal matrix on which `fails` still
/// returns `true`.
///
/// The loop alternates three strategies until a fixpoint (or the predicate
/// budget runs out):
///
/// 1. **ddmin entry removal** — drop chunks of entries, halving the chunk
///    size from `nnz / 2` down to single entries;
/// 2. **dimension trimming** — shrink `nrows`/`ncols` to the occupied
///    bounding box (empty trailing space never matters structurally, but a
///    kernel bug that *depends* on padding will simply refuse this step);
/// 3. **value canonicalisation** — replace stored values by `1.0` where
///    the failure persists, isolating structure-only bugs.
///
/// The result always still satisfies `fails` (the input is returned
/// unchanged if no reduction applies).
pub fn shrink_matrix(matrix: &CsrMatrix, fails: &dyn Fn(&CsrMatrix) -> bool) -> CsrMatrix {
    let mut entries: Vec<(usize, usize, f64)> = matrix.iter().collect();
    let mut nrows = matrix.nrows();
    let mut ncols = matrix.ncols();
    let mut best = matrix.clone();
    let mut calls = 0usize;

    let try_candidate =
        |nrows: usize, ncols: usize, entries: &[(usize, usize, f64)], calls: &mut usize| {
            if *calls >= MAX_PREDICATE_CALLS {
                return None;
            }
            *calls += 1;
            let cand = rebuild(nrows, ncols, entries)?;
            if fails(&cand) {
                Some(cand)
            } else {
                None
            }
        };

    loop {
        let mut progressed = false;

        // 1. ddmin over entries.
        let mut chunk = (entries.len() / 2).max(1);
        while chunk >= 1 && !entries.is_empty() {
            let mut start = 0;
            while start < entries.len() {
                let end = (start + chunk).min(entries.len());
                let mut reduced = Vec::with_capacity(entries.len() - (end - start));
                reduced.extend_from_slice(&entries[..start]);
                reduced.extend_from_slice(&entries[end..]);
                if let Some(cand) = try_candidate(nrows, ncols, &reduced, &mut calls) {
                    entries = reduced;
                    best = cand;
                    progressed = true;
                    // Do not advance: the next chunk now occupies `start`.
                } else {
                    start = end;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }

        // 2. Trim dimensions to the occupied bounding box.
        let used_rows = entries.iter().map(|&(r, _, _)| r + 1).max().unwrap_or(0);
        let used_cols = entries.iter().map(|&(_, c, _)| c + 1).max().unwrap_or(0);
        for (cand_rows, cand_cols) in [
            (used_rows, used_cols),
            (used_rows.max(1), ncols),
            (nrows, used_cols.max(1)),
        ] {
            if (cand_rows, cand_cols) != (nrows, ncols)
                && cand_rows <= nrows
                && cand_cols <= ncols
            {
                if let Some(cand) = try_candidate(cand_rows, cand_cols, &entries, &mut calls) {
                    nrows = cand_rows;
                    ncols = cand_cols;
                    best = cand;
                    progressed = true;
                }
            }
        }

        // 3. Canonicalise values to 1.0.
        for i in 0..entries.len() {
            if entries[i].2 != 1.0 {
                let saved = entries[i].2;
                entries[i].2 = 1.0;
                if let Some(cand) = try_candidate(nrows, ncols, &entries, &mut calls) {
                    best = cand;
                    progressed = true;
                } else {
                    entries[i].2 = saved;
                }
            }
        }

        if !progressed || calls >= MAX_PREDICATE_CALLS {
            return best;
        }
    }
}

/// A shrunk, reproducible property failure.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Name of the generator regime that produced the original matrix.
    pub regime: &'static str,
    /// Name of the violated property (oracle, law or counter check).
    pub law: String,
    /// The seed that reproduces the failure end-to-end.
    pub seed: u64,
    /// Human-readable description of the disagreement.
    pub detail: String,
    /// The minimal failing matrix.
    pub shrunk: CsrMatrix,
}

impl std::fmt::Display for Counterexample {
    /// Re-emits the failure as a standalone snippet: the seed to replay the
    /// full sweep case, plus the shrunk matrix as `CooMatrix` pushes ready
    /// to paste into a regression test.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "conformance failure: {} violated on regime `{}`", self.law, self.regime)?;
        writeln!(f, "  detail: {}", self.detail)?;
        writeln!(f, "  replay: CONFORMANCE_SEED={} cargo test -p conformance", self.seed)?;
        writeln!(
            f,
            "  shrunk counterexample ({}x{}, {} nnz):",
            self.shrunk.nrows(),
            self.shrunk.ncols(),
            self.shrunk.nnz()
        )?;
        writeln!(
            f,
            "    let mut coo = CooMatrix::new({}, {});",
            self.shrunk.nrows(),
            self.shrunk.ncols()
        )?;
        for (r, c, v) in self.shrunk.iter() {
            writeln!(f, "    coo.push({r}, {c}, {v:?});")?;
        }
        write!(f, "    let a = CsrMatrix::try_from(coo).unwrap();")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix_with(entries: &[(usize, usize, f64)], n: usize) -> CsrMatrix {
        rebuild(n, n, entries).unwrap()
    }

    #[test]
    fn shrinks_to_single_culprit_entry() {
        // Predicate: fails whenever the matrix stores something at (5, 7).
        let a = matrix_with(
            &[(0, 0, 2.0), (1, 3, -1.0), (5, 7, 4.0), (9, 9, 1.5), (3, 2, 0.25)],
            12,
        );
        let fails = |m: &CsrMatrix| m.get(5, 7).is_some();
        let s = shrink_matrix(&a, &fails);
        assert_eq!(s.nnz(), 1);
        assert_eq!(s.get(5, 7), Some(1.0)); // value canonicalised too
        assert_eq!(s.nrows(), 6);
        assert_eq!(s.ncols(), 8);
    }

    #[test]
    fn shrink_preserves_failure() {
        let a = matrix_with(&[(0, 0, 1.0), (2, 2, 3.0)], 4);
        let fails = |m: &CsrMatrix| m.nnz() >= 2;
        let s = shrink_matrix(&a, &fails);
        assert!(fails(&s));
        assert_eq!(s.nnz(), 2);
    }

    #[test]
    fn non_reducible_input_returned_unchanged() {
        let a = matrix_with(&[(0, 0, 1.0)], 1);
        let fails = |m: &CsrMatrix| m.nnz() == 1;
        let s = shrink_matrix(&a, &fails);
        assert_eq!(s, a);
    }

    #[test]
    fn counterexample_display_is_standalone() {
        let ce = Counterexample {
            regime: "diagonal",
            law: "dense-oracle/spmv".into(),
            seed: 42,
            detail: "index 0: got 1, want 2".into(),
            shrunk: matrix_with(&[(0, 0, 1.0)], 1),
        };
        let text = ce.to_string();
        assert!(text.contains("CONFORMANCE_SEED=42"));
        assert!(text.contains("CooMatrix::new(1, 1)"));
        assert!(text.contains("coo.push(0, 0, 1.0);"));
        assert!(text.contains("dense-oracle/spmv"));
    }

    #[test]
    fn value_canonicalisation_respects_predicate() {
        // Predicate depends on the value: canonicalisation must not break it.
        let a = matrix_with(&[(1, 1, 2.5)], 3);
        let fails = |m: &CsrMatrix| m.get(1, 1) == Some(2.5);
        let s = shrink_matrix(&a, &fails);
        assert_eq!(s.get(1, 1), Some(2.5));
    }
}
