//! Sparse-matrix substrate for the Uni-STC reproduction.
//!
//! This crate provides every storage format the paper touches:
//!
//! * [`CooMatrix`] — coordinate triplets, the universal construction format.
//! * [`CsrMatrix`] / [`CscMatrix`] — compressed sparse row / column.
//! * [`DenseMatrix`] — row-major dense storage (operand `B` in SpMM).
//! * [`BitmapMatrix`] — the flat bitmap format of the paper's Fig. 1.
//! * [`BsrMatrix`] — block sparse row with a run-time block size (the
//!   `BSR(4x4)` and `BSR(16x16)` comparison points of Fig. 15).
//! * [`BbcMatrix`] — **Bitmap-Bitmap-CSR**, the unified format proposed by
//!   the paper (Section IV-D, Fig. 13): CSR over 16x16 blocks, a two-level
//!   bitmap inside each block and a two-level value-pointer scheme.
//! * [`SparseVector`] — the sparse operand of SpMSpV.
//!
//! plus golden reference kernels in [`ops`] (SpMV, SpMSpV, SpMM, SpGEMM)
//! that downstream crates use to validate the simulated dataflows,
//! reordering utilities in [`reorder`] (RCM, degree sort, symmetric
//! permutation) for block-structure ablations, Matrix Market I/O in
//! [`mtx`] for loading the real SuiteSparse collection, and storage-size
//! accounting used by the Fig. 15 experiment.
//!
//! # Example
//!
//! ```
//! use sparse::{CooMatrix, CsrMatrix, BbcMatrix};
//!
//! # fn main() -> Result<(), sparse::FormatError> {
//! let mut coo = CooMatrix::new(4, 4);
//! coo.push(0, 0, 1.0);
//! coo.push(1, 3, 2.0);
//! coo.push(3, 1, -1.0);
//! let csr = CsrMatrix::try_from(coo)?;
//! let bbc = BbcMatrix::from_csr(&csr);
//! assert_eq!(bbc.nnz(), 3);
//! let back = bbc.to_csr();
//! assert_eq!(back.nnz(), csr.nnz());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(feature = "simd", feature(portable_simd))]

mod bitmap;
mod bsr;
pub mod bbc;
pub mod kernels;
mod coo;
mod csc;
mod csr;
mod dense;
mod error;
pub mod mtx;
pub mod ops;
pub mod reorder;
pub mod rng;
mod sparsevec;

pub use bitmap::BitmapMatrix;
pub use bsr::BsrMatrix;
pub use bbc::{
    BbcBlock, BbcField, BbcMatrix, BlockDensityProfile, BLOCK_DIM, TILES_PER_BLOCK, TILE_DIM,
};
pub use coo::CooMatrix;
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use error::FormatError;
pub use sparsevec::SparseVector;

/// The crate's error type under its conventional name: every fallible
/// sparse operation returns `Result<_, SparseError>`.
pub use error::FormatError as SparseError;

/// Number of bytes used by one column/row index in compressed formats.
///
/// All formats in this crate use 32-bit indices, matching the accounting of
/// the paper's Fig. 15 storage comparison.
pub const INDEX_BYTES: usize = 4;

/// Number of bytes used by one stored value (FP64).
pub const VALUE_BYTES: usize = 8;

/// Storage accounting common to every matrix format in this crate.
///
/// Fig. 15 of the paper compares the *space reduction* of BSR and BBC over a
/// CSR baseline. The reduction is dominated by metadata (index) storage —
/// all formats store one FP64 word per nonzero — so the trait exposes the
/// metadata and value components separately.
pub trait StorageSize {
    /// Bytes spent on structural metadata (pointers, indices, bitmaps).
    fn metadata_bytes(&self) -> usize;

    /// Bytes spent on numerical values (including explicit zeros padded in
    /// by block formats such as BSR).
    fn value_bytes(&self) -> usize;

    /// Total storage footprint in bytes.
    fn total_bytes(&self) -> usize {
        self.metadata_bytes() + self.value_bytes()
    }
}

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn send_sync_types() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CooMatrix>();
        assert_send_sync::<CsrMatrix>();
        assert_send_sync::<CscMatrix>();
        assert_send_sync::<BsrMatrix>();
        assert_send_sync::<BbcMatrix>();
        assert_send_sync::<BitmapMatrix>();
        assert_send_sync::<DenseMatrix>();
        assert_send_sync::<SparseVector>();
        assert_send_sync::<FormatError>();
    }
}
