//! Kernel backends: swappable implementations of the bitmap hot paths.
//!
//! The BBC format is bitmaps all the way down — encode/decode of 16×16
//! blocks, level-1/level-2 mask overlay products, popcount prefix sums
//! for segment offsets, and the SDPU segment numeric loop. This module
//! extracts those hot paths behind the [`BitKernels`] trait so the same
//! structural semantics can be served by different host implementations:
//!
//! * [`scalar`] — the element-at-a-time reference code this layer was
//!   extracted from. Slow, obvious, and the oracle every other backend
//!   is differentially tested against.
//! * [`bitwise`] — u64 word-at-a-time bit tricks: whole-word AND/OR
//!   overlays, `count_ones` prefix sums, SWAR encode/decode of a 16×16
//!   block packed as 4×u64. The default.
//! * [`simd`] — a `std::simd` portable-SIMD variant of the mask algebra
//!   (nightly only, behind the `simd` cargo feature). Numeric methods
//!   delegate to the bitwise backend so accumulation order is untouched.
//!
//! # Selection
//!
//! The active backend is a process-wide selection, read lazily from the
//! `USTC_BACKEND` environment variable (`scalar` | `bitwise` | `simd`)
//! the first time [`active_kind`] runs, and overridable at runtime via
//! [`set_backend`]. Unknown names warn on stderr and fall back to the
//! default ([`BackendKind::Bitwise`]). Worker threads (e.g. the
//! `runtime` crate's shard pool) inherit the ambient selection — no
//! per-task plumbing is needed.
//!
//! # Equivalence contract
//!
//! Every backend must be *bit-identical* to the scalar reference: the
//! same structural outputs (masks, offsets, set-bit orders) and the
//! same floating-point results. f64 addition is not associative, so
//! numeric methods ([`BitKernels::segment_dot`],
//! [`BitKernels::dot_gather`], [`BitKernels::axpy`]) must preserve the
//! reference accumulation order exactly — bit tricks may only change
//! how indices and masks are *computed*, never the order values are
//! combined in. The contract is enforced three ways: the word-boundary
//! differential harness here ([`differential_check`]), the
//! `conformance::backend_equivalence` sweep (all generator regimes ×
//! all kernels, EXACT tolerance), and the CI backend matrix.

pub mod bitwise;
pub mod scalar;
#[cfg(feature = "simd")]
pub mod simd;

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, PoisonError};

/// Identifier for a compiled-in kernel backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Element-at-a-time reference implementation.
    Scalar,
    /// u64 word-at-a-time bit-trick implementation (the default).
    Bitwise,
    /// `std::simd` mask algebra (requires the `simd` cargo feature and
    /// a nightly toolchain).
    #[cfg(feature = "simd")]
    Simd,
}

/// The backend used when nothing is selected.
pub const DEFAULT_BACKEND: BackendKind = BackendKind::Bitwise;

impl BackendKind {
    /// Every backend compiled into this build.
    pub const ALL: &'static [BackendKind] = &[
        BackendKind::Scalar,
        BackendKind::Bitwise,
        #[cfg(feature = "simd")]
        BackendKind::Simd,
    ];

    /// Stable lower-case name; also the accepted `USTC_BACKEND` value.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Scalar => "scalar",
            BackendKind::Bitwise => "bitwise",
            #[cfg(feature = "simd")]
            BackendKind::Simd => "simd",
        }
    }

    /// Parses a backend name as used by `USTC_BACKEND` and the bench
    /// `--backend` flag. Returns `None` for unknown names and for
    /// backends not compiled into this build (e.g. `simd` without the
    /// `simd` feature).
    pub fn parse(name: &str) -> Option<BackendKind> {
        match name.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(BackendKind::Scalar),
            "bitwise" => Some(BackendKind::Bitwise),
            #[cfg(feature = "simd")]
            "simd" => Some(BackendKind::Simd),
            _ => None,
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// BBC metadata for one 16×16 block, derived from its 256-bit
/// (tile, element) occupancy mask by [`BitKernels::encode_block`].
///
/// Only the first `tiles` entries of `lv2` / `valptr` are meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMeta {
    /// Level-1 bitmap: bit `tr * 4 + tc` set iff tile (tr, tc) stores
    /// at least one nonzero.
    pub lv1: u16,
    /// Number of stored tiles (`lv1.count_ones()`).
    pub tiles: usize,
    /// Level-2 bitmap per stored tile, in ascending tile-bit order.
    pub lv2: [u16; 16],
    /// Value offset of each stored tile from the block's value base —
    /// the popcount prefix sum over `lv2`.
    pub valptr: [u16; 16],
}

/// The bitmap/numeric primitives every backend implements.
///
/// Structural methods operate on explicit bit widths (`len_bits`) so
/// tail-word handling is part of the contract: bit positions at or
/// beyond `len_bits` in the last word are ignored regardless of their
/// stored value. Numeric methods must combine values in exactly the
/// reference (scalar) order — see the module docs.
pub trait BitKernels: Sync {
    /// The backend's stable name (matches [`BackendKind::name`]).
    fn name(&self) -> &'static str;

    /// Number of set bits strictly below position `bit`.
    /// `bit` may be at most `words.len() * 64`.
    fn rank(&self, words: &[u64], bit: usize) -> usize;

    /// Exclusive prefix popcounts: `out[i]` = number of set bits in
    /// `words[..i]`. `out` is cleared and filled with
    /// `words.len() + 1` entries (the last is the total popcount).
    fn prefix_popcounts(&self, words: &[u64], out: &mut Vec<u32>);

    /// Popcount of `a & b` over the first `len_bits` bits.
    fn and_count(&self, a: &[u64], b: &[u64], len_bits: usize) -> u64;

    /// ORs `src` into `acc` word-by-word (`acc[i] |= src[i]`).
    /// Panics if the slices differ in length, mirroring a zip over
    /// equal-length operands in the reference code.
    fn or_into(&self, acc: &mut [u64], src: &[u64]);

    /// Appends the positions of all set bits below `len_bits` to
    /// `out`, in ascending order.
    fn collect_set_bits(&self, words: &[u64], len_bits: usize, out: &mut Vec<u32>);

    /// Expands a BBC block's two-level bitmaps into 16 element-row
    /// masks (bit `c` of `rows[r]` set iff element (r, c) is stored).
    /// `lv2[i]` is the level-2 bitmap of the i-th stored tile; indexes
    /// past `lv2.len()` panic, matching the reference decode on
    /// corrupt metadata.
    fn decode_block(&self, lv1: u16, lv2: &[u16]) -> [u16; 16];

    /// Derives BBC metadata from a 256-bit block occupancy mask packed
    /// as 4×u64: bit `t * 16 + e` of the mask (word `t / 4`, lane
    /// `t % 4`) set iff tile `t` stores element `e`.
    fn encode_block(&self, mask: &[u64; 4]) -> BlockMeta;

    /// Structural product count between two 16×16 element masks: the
    /// number of scalar multiplications `Σ_k colpop(a, k) · rowpop(b, k)`
    /// a dense-over-structure matmul would perform.
    fn block_products(&self, a: &[u16; 16], b: &[u16; 16]) -> u64;

    /// Structural product of two 16×16 element masks: row `r` of the
    /// result ORs together the rows of `b` selected by row `r` of `a`.
    fn block_mul_structure(&self, a: &[u16; 16], b: &[u16; 16]) -> [u16; 16];

    /// One SDPU T1 segment dot product: for each set bit `kk` of
    /// `pattern & 0xF` in ascending order, accumulates
    /// `a_tile[m * 4 + kk] * b_tile[kk * 4 + n]`. Returns the sum and
    /// the number of products performed.
    fn segment_dot(
        &self,
        pattern: u8,
        a_tile: &[f64; 16],
        b_tile: &[f64; 16],
        m: usize,
        n: usize,
    ) -> (f64, u32);

    /// Sparse dot product `Σ_i vals[i] * x[cols[i]]`, accumulated left
    /// to right into a single accumulator.
    fn dot_gather(&self, cols: &[u32], vals: &[f64], x: &[f64]) -> f64;

    /// Scaled row update `acc[j] += scale * b[j]` over
    /// `min(acc.len(), b.len())` elements.
    fn axpy(&self, acc: &mut [f64], scale: f64, b: &[f64]);
}

static SCALAR: scalar::ScalarKernels = scalar::ScalarKernels;
static BITWISE: bitwise::BitwiseKernels = bitwise::BitwiseKernels;
#[cfg(feature = "simd")]
static SIMD: simd::SimdKernels = simd::SimdKernels;

/// The statically-allocated implementation of `kind`.
pub fn backend_for(kind: BackendKind) -> &'static dyn BitKernels {
    match kind {
        BackendKind::Scalar => &SCALAR,
        BackendKind::Bitwise => &BITWISE,
        #[cfg(feature = "simd")]
        BackendKind::Simd => &SIMD,
    }
}

/// 0 = not yet initialised; otherwise `encode_kind(kind)`.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

fn encode_kind(kind: BackendKind) -> u8 {
    match kind {
        BackendKind::Scalar => 1,
        BackendKind::Bitwise => 2,
        #[cfg(feature = "simd")]
        BackendKind::Simd => 3,
    }
}

fn decode_kind(state: u8) -> BackendKind {
    match state {
        1 => BackendKind::Scalar,
        #[cfg(feature = "simd")]
        3 => BackendKind::Simd,
        _ => BackendKind::Bitwise,
    }
}

fn kind_from_env() -> BackendKind {
    match std::env::var("USTC_BACKEND") {
        Ok(value) => BackendKind::parse(&value).unwrap_or_else(|| {
            eprintln!(
                "USTC_BACKEND={value:?} is not an available backend \
                 (expected one of: {}); using `{}`",
                BackendKind::ALL
                    .iter()
                    .map(|k| k.name())
                    .collect::<Vec<_>>()
                    .join(", "),
                DEFAULT_BACKEND.name(),
            );
            DEFAULT_BACKEND
        }),
        Err(_) => DEFAULT_BACKEND,
    }
}

/// The currently selected backend kind. On first use this reads
/// `USTC_BACKEND`; unknown values warn and fall back to
/// [`DEFAULT_BACKEND`].
pub fn active_kind() -> BackendKind {
    match ACTIVE.load(Ordering::Relaxed) {
        0 => {
            let kind = kind_from_env();
            // A racing first call may store a different freshly-parsed
            // kind; both parse the same environment, so the result is
            // identical either way.
            ACTIVE.store(encode_kind(kind), Ordering::Relaxed);
            kind
        }
        state => decode_kind(state),
    }
}

/// Selects the process-wide backend (builder-API counterpart of the
/// `USTC_BACKEND` environment variable).
pub fn set_backend(kind: BackendKind) {
    ACTIVE.store(encode_kind(kind), Ordering::Relaxed);
}

/// The active backend implementation. Hot paths call this once per
/// operation, not per element.
pub fn active() -> &'static dyn BitKernels {
    backend_for(active_kind())
}

/// Serialises [`with_backend`] flips so concurrently running tests
/// cannot interleave scoped selections.
static FLIP_LOCK: Mutex<()> = Mutex::new(());

struct RestoreGuard {
    prev: BackendKind,
}

impl Drop for RestoreGuard {
    fn drop(&mut self) {
        set_backend(self.prev);
    }
}

/// Runs `f` with `kind` as the active backend, restoring the previous
/// selection afterwards (also on panic). Scoped flips are serialised
/// process-wide by a mutex; because every backend is equivalence-tested
/// against the scalar reference, code on other threads observing the
/// temporary selection still computes bit-identical results.
pub fn with_backend<R>(kind: BackendKind, f: impl FnOnce() -> R) -> R {
    let _lock = FLIP_LOCK
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    let _restore = RestoreGuard { prev: active_kind() };
    set_backend(kind);
    f()
}

/// Bit widths exercised by [`differential_check`]: empty, single-bit,
/// and both sides of the 1-word and 4-word boundaries.
pub const BOUNDARY_WIDTHS: [usize; 7] = [0, 1, 63, 64, 65, 255, 256];

fn boundary_masks(len_bits: usize, seed: u64) -> Vec<Vec<u64>> {
    let words = len_bits.div_ceil(64);
    let tail = |mut v: Vec<u64>| {
        if !len_bits.is_multiple_of(64) {
            if let Some(last) = v.last_mut() {
                *last &= (1u64 << (len_bits % 64)) - 1;
            }
        }
        v
    };
    let mut rng = crate::rng::Rng64::new(seed ^ 0xB17_B0A7);
    vec![
        vec![0u64; words],
        tail(vec![u64::MAX; words]),
        tail(vec![0x5555_5555_5555_5555u64; words]),
        tail(vec![0xAAAA_AAAA_AAAA_AAAAu64; words]),
        tail((0..words).map(|_| rng.next_u64()).collect()),
    ]
}

fn check_eq<T: PartialEq + std::fmt::Debug>(
    what: &str,
    reference: &T,
    candidate: &T,
) -> Result<(), String> {
    if reference == candidate {
        Ok(())
    } else {
        Err(format!(
            "{what}: reference {reference:?} != candidate {candidate:?}"
        ))
    }
}

/// Differentially checks `candidate` against `reference` over the
/// word-boundary grid: widths [`BOUNDARY_WIDTHS`] × mask patterns
/// (all-zeros, all-ones, both alternating phases, seeded random) for
/// the word primitives, plus seeded block/numeric cases. Returns a
/// description of the first divergence found.
pub fn differential_check(
    reference: &dyn BitKernels,
    candidate: &dyn BitKernels,
) -> Result<(), String> {
    for &len_bits in &BOUNDARY_WIDTHS {
        for (mi, mask) in boundary_masks(len_bits, len_bits as u64).iter().enumerate() {
            let ctx = |what: &str| format!("{what} (len_bits={len_bits}, mask #{mi})");

            // rank at every interesting position, including the ends.
            let probes = [0, 1, len_bits / 2, len_bits.saturating_sub(1), len_bits];
            for &bit in &probes {
                check_eq(
                    &ctx(&format!("rank(bit={bit})")),
                    &reference.rank(mask, bit),
                    &candidate.rank(mask, bit),
                )?;
            }

            let (mut pr, mut pc) = (Vec::new(), Vec::new());
            reference.prefix_popcounts(mask, &mut pr);
            candidate.prefix_popcounts(mask, &mut pc);
            check_eq(&ctx("prefix_popcounts"), &pr, &pc)?;

            for other in boundary_masks(len_bits, len_bits as u64 ^ 0xFACE) {
                check_eq(
                    &ctx("and_count"),
                    &reference.and_count(mask, &other, len_bits),
                    &candidate.and_count(mask, &other, len_bits),
                )?;

                let mut ar = other.clone();
                let mut ac = other.clone();
                reference.or_into(&mut ar, mask);
                candidate.or_into(&mut ac, mask);
                check_eq(&ctx("or_into"), &ar, &ac)?;
            }

            let (mut sr, mut sc) = (Vec::new(), Vec::new());
            reference.collect_set_bits(mask, len_bits, &mut sr);
            candidate.collect_set_bits(mask, len_bits, &mut sc);
            check_eq(&ctx("collect_set_bits"), &sr, &sc)?;
        }
    }

    // Block primitives over seeded masks (including all-zeros/all-ones).
    let mut rng = crate::rng::Rng64::new(0xB10C_CA5E);
    let mut blocks: Vec<[u16; 16]> = vec![[0u16; 16], [u16::MAX; 16]];
    for _ in 0..8 {
        let mut b = [0u16; 16];
        for row in b.iter_mut() {
            *row = (rng.next_u64() & 0xFFFF) as u16;
        }
        blocks.push(b);
    }
    for a in &blocks {
        for b in &blocks {
            check_eq(
                "block_products",
                &reference.block_products(a, b),
                &candidate.block_products(a, b),
            )?;
            check_eq(
                "block_mul_structure",
                &reference.block_mul_structure(a, b),
                &candidate.block_mul_structure(a, b),
            )?;
        }
        // Round-trip encode/decode through the 4×u64 packing.
        let mut mask256 = [0u64; 4];
        for (t, tile) in tiles_of(a).into_iter().enumerate() {
            mask256[t / 4] |= u64::from(tile) << ((t % 4) * 16);
        }
        let mr = reference.encode_block(&mask256);
        let mc = candidate.encode_block(&mask256);
        check_eq("encode_block", &mr, &mc)?;
        check_eq(
            "decode_block",
            &reference.decode_block(mr.lv1, &mr.lv2[..mr.tiles]),
            &candidate.decode_block(mc.lv1, &mc.lv2[..mc.tiles]),
        )?;
    }

    // Numeric primitives: bit-exact f64 comparison via to_bits.
    let mut a_tile = [0.0f64; 16];
    let mut b_tile = [0.0f64; 16];
    for i in 0..16 {
        a_tile[i] = (rng.next_u64() % 1000) as f64 / 7.0 - 60.0;
        b_tile[i] = (rng.next_u64() % 1000) as f64 / 11.0 - 40.0;
    }
    for pattern in 0u8..16 {
        for m in 0..4 {
            for n in 0..4 {
                let (vr, cr) = reference.segment_dot(pattern, &a_tile, &b_tile, m, n);
                let (vc, cc) = candidate.segment_dot(pattern, &a_tile, &b_tile, m, n);
                check_eq(
                    &format!("segment_dot(pattern={pattern:#x}, m={m}, n={n})"),
                    &(vr.to_bits(), cr),
                    &(vc.to_bits(), cc),
                )?;
            }
        }
    }
    for len in [0usize, 1, 3, 4, 5, 17, 64] {
        let cols: Vec<u32> = (0..len).map(|_| (rng.next_u64() % 96) as u32).collect();
        let vals: Vec<f64> = (0..len).map(|i| a_tile[i % 16] + i as f64).collect();
        let x: Vec<f64> = (0..96).map(|i| b_tile[i % 16] * 0.5 + i as f64).collect();
        check_eq(
            &format!("dot_gather(len={len})"),
            &reference.dot_gather(&cols, &vals, &x).to_bits(),
            &candidate.dot_gather(&cols, &vals, &x).to_bits(),
        )?;

        let mut accr: Vec<f64> = (0..len).map(|i| i as f64 * 0.25).collect();
        let mut accc = accr.clone();
        let brow: Vec<f64> = (0..len).map(|i| b_tile[i % 16]).collect();
        reference.axpy(&mut accr, 1.75, &brow);
        candidate.axpy(&mut accc, 1.75, &brow);
        check_eq(
            &format!("axpy(len={len})"),
            &accr.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            &accc.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        )?;
    }

    Ok(())
}

/// The 16 4×4 tile masks of a 16×16 element mask, tile bit ascending.
fn tiles_of(rows: &[u16; 16]) -> [u16; 16] {
    let mut tiles = [0u16; 16];
    for (r, &row) in rows.iter().enumerate() {
        for c in 0..16 {
            if row >> c & 1 == 1 {
                let t = (r / 4) * 4 + c / 4;
                let e = (r % 4) * 4 + c % 4;
                tiles[t] |= 1 << e;
            }
        }
    }
    tiles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_names() {
        for &kind in BackendKind::ALL {
            assert_eq!(BackendKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(BackendKind::parse("Bitwise"), Some(BackendKind::Bitwise));
        assert_eq!(BackendKind::parse(" scalar "), Some(BackendKind::Scalar));
        assert_eq!(BackendKind::parse("quantum"), None);
        #[cfg(not(feature = "simd"))]
        assert_eq!(BackendKind::parse("simd"), None);
    }

    #[test]
    fn with_backend_restores_previous_selection() {
        let before = active_kind();
        let inside = with_backend(BackendKind::Scalar, active_kind);
        assert_eq!(inside, BackendKind::Scalar);
        assert_eq!(active_kind(), before);
    }

    #[test]
    fn with_backend_nested_flips_restore_in_order() {
        with_backend(BackendKind::Bitwise, || {
            assert_eq!(active_kind(), BackendKind::Bitwise);
            // A nested flip would deadlock on a non-reentrant guard if
            // taken on the same thread; flips are scoped per closure,
            // so exercise sequential scopes instead.
        });
        with_backend(BackendKind::Scalar, || {
            assert_eq!(active().name(), "scalar");
        });
    }

    #[test]
    fn bitwise_matches_scalar_on_boundary_grid() {
        differential_check(&scalar::ScalarKernels, &bitwise::BitwiseKernels)
            .unwrap_or_else(|e| panic!("bitwise diverges from scalar: {e}"));
    }

    #[cfg(feature = "simd")]
    #[test]
    fn simd_matches_scalar_on_boundary_grid() {
        differential_check(&scalar::ScalarKernels, &simd::SimdKernels)
            .unwrap_or_else(|e| panic!("simd diverges from scalar: {e}"));
    }

    /// A backend with a deliberate off-by-one in its tail-word masking:
    /// `rank`, `and_count`, and `collect_set_bits` include one bit past
    /// `len_bits`. Proves the differential harness catches exactly the
    /// class of bug the bitwise rewrite risks introducing.
    struct BuggyTail;

    impl BitKernels for BuggyTail {
        fn name(&self) -> &'static str {
            "buggy-tail"
        }
        fn rank(&self, words: &[u64], bit: usize) -> usize {
            // Off-by-one: counts bits *at or below* `bit`.
            BitwiseKernels.rank(words, (bit + 1).min(words.len() * 64))
        }
        fn prefix_popcounts(&self, words: &[u64], out: &mut Vec<u32>) {
            BitwiseKernels.prefix_popcounts(words, out);
        }
        fn and_count(&self, a: &[u64], b: &[u64], len_bits: usize) -> u64 {
            let widened = (len_bits + 1).min(a.len() * 64);
            BitwiseKernels.and_count(a, b, widened)
        }
        fn or_into(&self, acc: &mut [u64], src: &[u64]) {
            BitwiseKernels.or_into(acc, src);
        }
        fn collect_set_bits(&self, words: &[u64], len_bits: usize, out: &mut Vec<u32>) {
            let widened = (len_bits + 1).min(words.len() * 64);
            BitwiseKernels.collect_set_bits(words, widened, out);
        }
        fn decode_block(&self, lv1: u16, lv2: &[u16]) -> [u16; 16] {
            BitwiseKernels.decode_block(lv1, lv2)
        }
        fn encode_block(&self, mask: &[u64; 4]) -> BlockMeta {
            BitwiseKernels.encode_block(mask)
        }
        fn block_products(&self, a: &[u16; 16], b: &[u16; 16]) -> u64 {
            BitwiseKernels.block_products(a, b)
        }
        fn block_mul_structure(&self, a: &[u16; 16], b: &[u16; 16]) -> [u16; 16] {
            BitwiseKernels.block_mul_structure(a, b)
        }
        fn segment_dot(
            &self,
            pattern: u8,
            a_tile: &[f64; 16],
            b_tile: &[f64; 16],
            m: usize,
            n: usize,
        ) -> (f64, u32) {
            BitwiseKernels.segment_dot(pattern, a_tile, b_tile, m, n)
        }
        fn dot_gather(&self, cols: &[u32], vals: &[f64], x: &[f64]) -> f64 {
            BitwiseKernels.dot_gather(cols, vals, x)
        }
        fn axpy(&self, acc: &mut [f64], scale: f64, b: &[f64]) {
            BitwiseKernels.axpy(acc, scale, b);
        }
    }

    use bitwise::BitwiseKernels;

    #[test]
    fn injected_tail_bug_is_caught() {
        let err = differential_check(&scalar::ScalarKernels, &BuggyTail)
            .expect_err("the off-by-one tail bug must be detected");
        assert!(
            err.contains("rank") || err.contains("and_count") || err.contains("collect_set_bits"),
            "divergence should name a tail-sensitive primitive, got: {err}"
        );
    }

    #[test]
    fn boundary_widths_cover_word_edges() {
        assert_eq!(BOUNDARY_WIDTHS, [0, 1, 63, 64, 65, 255, 256]);
    }

    #[test]
    fn tiles_of_matches_bit_definition() {
        let mut rows = [0u16; 16];
        rows[0] = 0b1; // element (0,0) -> tile 0, elem 0
        rows[5] = 1 << 7; // element (5,7) -> tile (1,1)=5, elem (1,3)=7
        rows[15] = 1 << 15; // element (15,15) -> tile 15, elem 15
        let tiles = tiles_of(&rows);
        assert_eq!(tiles[0], 1);
        assert_eq!(tiles[5], 1 << 7);
        assert_eq!(tiles[15], 1 << 15);
    }
}
