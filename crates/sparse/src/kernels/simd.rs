//! `std::simd` portable-SIMD backend (nightly, `--features simd`).
//!
//! Accelerates only the *mask algebra* — AND/OR overlays and the block
//! SWAR ops — with `u64x4` vectors. All numeric methods delegate to the
//! bitwise backend, whose single-accumulator, left-to-right evaluation
//! is bit-identical to the scalar reference; vectorising f64 sums would
//! reassociate additions and break the EXACT equivalence contract.

use std::simd::num::SimdUint;
use std::simd::u64x4;

use super::bitwise::BitwiseKernels;
use super::{BitKernels, BlockMeta};

/// The portable-SIMD backend (`USTC_BACKEND=simd`).
#[derive(Debug, Clone, Copy, Default)]
pub struct SimdKernels;

const LANES: usize = 4;

impl BitKernels for SimdKernels {
    fn name(&self) -> &'static str {
        "simd"
    }

    fn rank(&self, words: &[u64], bit: usize) -> usize {
        let bit = bit.min(words.len() * 64);
        let full = bit / 64;
        let (chunks, tail) = words[..full].split_at(full - full % LANES);
        let mut vsum = u64x4::splat(0);
        for c in chunks.chunks_exact(LANES) {
            vsum += u64x4::from_slice(c).count_ones();
        }
        let mut count = vsum.reduce_sum();
        for &w in tail {
            count += u64::from(w.count_ones());
        }
        if bit % 64 != 0 {
            count += u64::from((words[full] & ((1u64 << (bit % 64)) - 1)).count_ones());
        }
        count as usize
    }

    fn prefix_popcounts(&self, words: &[u64], out: &mut Vec<u32>) {
        // Prefix sums are inherently serial; the word popcount already
        // is a single instruction, so delegate.
        BitwiseKernels.prefix_popcounts(words, out);
    }

    fn and_count(&self, a: &[u64], b: &[u64], len_bits: usize) -> u64 {
        let nwords = len_bits.div_ceil(64);
        if nwords == 0 {
            return 0;
        }
        let body = (nwords - 1) - (nwords - 1) % LANES;
        let mut vsum = u64x4::splat(0);
        for (ca, cb) in a[..body]
            .chunks_exact(LANES)
            .zip(b[..body].chunks_exact(LANES))
        {
            vsum += (u64x4::from_slice(ca) & u64x4::from_slice(cb)).count_ones();
        }
        let mut count = vsum.reduce_sum();
        for i in body..nwords {
            let mut and = a[i] & b[i];
            if i == nwords - 1 && len_bits % 64 != 0 {
                and &= (1u64 << (len_bits % 64)) - 1;
            }
            count += u64::from(and.count_ones());
        }
        count
    }

    fn or_into(&self, acc: &mut [u64], src: &[u64]) {
        assert_eq!(acc.len(), src.len(), "or_into operand length mismatch");
        let split = acc.len() - acc.len() % LANES;
        let (ah, at) = acc.split_at_mut(split);
        let (sh, st) = src.split_at(split);
        for (ac, sc) in ah.chunks_exact_mut(LANES).zip(sh.chunks_exact(LANES)) {
            (u64x4::from_slice(ac) | u64x4::from_slice(sc)).copy_to_slice(ac);
        }
        for (a, &s) in at.iter_mut().zip(st.iter()) {
            *a |= s;
        }
    }

    fn collect_set_bits(&self, words: &[u64], len_bits: usize, out: &mut Vec<u32>) {
        // Ascending emission is serial by construction; the bitwise
        // trailing_zeros walk is already optimal per set bit.
        BitwiseKernels.collect_set_bits(words, len_bits, out);
    }

    fn decode_block(&self, lv1: u16, lv2: &[u16]) -> [u16; 16] {
        BitwiseKernels.decode_block(lv1, lv2)
    }

    fn encode_block(&self, mask: &[u64; 4]) -> BlockMeta {
        BitwiseKernels.encode_block(mask)
    }

    fn block_products(&self, a: &[u16; 16], b: &[u16; 16]) -> u64 {
        // All four packed words of `a` shift together: one u64x4 shift,
        // mask, and popcount per contraction column.
        let mut packed = [0u64; 4];
        for (r, &row) in a.iter().enumerate() {
            packed[r / 4] |= u64::from(row) << ((r % 4) * 16);
        }
        let pv = u64x4::from_array(packed);
        let lane_lsb = u64x4::splat(0x0001_0001_0001_0001);
        let mut products = 0u64;
        for (k, &brow) in b.iter().enumerate() {
            let col = ((pv >> u64x4::splat(k as u64)) & lane_lsb)
                .count_ones()
                .reduce_sum();
            products += col * u64::from(brow.count_ones());
        }
        products
    }

    fn block_mul_structure(&self, a: &[u16; 16], b: &[u16; 16]) -> [u16; 16] {
        BitwiseKernels.block_mul_structure(a, b)
    }

    fn segment_dot(
        &self,
        pattern: u8,
        a_tile: &[f64; 16],
        b_tile: &[f64; 16],
        m: usize,
        n: usize,
    ) -> (f64, u32) {
        BitwiseKernels.segment_dot(pattern, a_tile, b_tile, m, n)
    }

    fn dot_gather(&self, cols: &[u32], vals: &[f64], x: &[f64]) -> f64 {
        BitwiseKernels.dot_gather(cols, vals, x)
    }

    fn axpy(&self, acc: &mut [f64], scale: f64, b: &[f64]) {
        BitwiseKernels.axpy(acc, scale, b);
    }
}
