//! Element-at-a-time reference backend.
//!
//! These are the loops the bitwise backend was extracted from — each
//! method walks bits and elements one at a time with no word-level
//! tricks. Deliberately boring: this backend is the oracle the
//! differential harness and the conformance backend-equivalence sweep
//! measure every other backend against, so clarity beats speed here.

use super::{BitKernels, BlockMeta};

/// The scalar reference backend (`USTC_BACKEND=scalar`).
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarKernels;

impl BitKernels for ScalarKernels {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn rank(&self, words: &[u64], bit: usize) -> usize {
        let mut count = 0;
        for i in 0..bit.min(words.len() * 64) {
            if words[i / 64] >> (i % 64) & 1 == 1 {
                count += 1;
            }
        }
        count
    }

    fn prefix_popcounts(&self, words: &[u64], out: &mut Vec<u32>) {
        out.clear();
        let mut running = 0u32;
        out.push(running);
        for &w in words {
            let mut word = w;
            for _ in 0..64 {
                running += (word & 1) as u32;
                word >>= 1;
            }
            out.push(running);
        }
    }

    fn and_count(&self, a: &[u64], b: &[u64], len_bits: usize) -> u64 {
        let mut count = 0u64;
        for i in 0..len_bits {
            let abit = a[i / 64] >> (i % 64) & 1;
            let bbit = b[i / 64] >> (i % 64) & 1;
            count += abit & bbit;
        }
        count
    }

    fn or_into(&self, acc: &mut [u64], src: &[u64]) {
        assert_eq!(acc.len(), src.len(), "or_into operand length mismatch");
        for i in 0..acc.len() * 64 {
            if src[i / 64] >> (i % 64) & 1 == 1 {
                acc[i / 64] |= 1 << (i % 64);
            }
        }
    }

    fn collect_set_bits(&self, words: &[u64], len_bits: usize, out: &mut Vec<u32>) {
        for bit in 0..len_bits.min(words.len() * 64) {
            if words[bit / 64] >> (bit % 64) & 1 == 1 {
                out.push(bit as u32);
            }
        }
    }

    fn decode_block(&self, lv1: u16, lv2: &[u16]) -> [u16; 16] {
        // The original `BbcBlock::element_rows` loop: per stored tile,
        // spread each 4-bit level-2 nibble into the element rows.
        let mut rows = [0u16; 16];
        let mut rank = 0usize;
        for tile in 0..16u16 {
            if lv1 >> tile & 1 == 0 {
                continue;
            }
            let mask = lv2[rank];
            rank += 1;
            let (tr, tc) = ((tile / 4) as usize, (tile % 4) as usize);
            for er in 0..4 {
                let nibble = (mask >> (er * 4)) & 0xF;
                rows[tr * 4 + er] |= nibble << (tc * 4);
            }
        }
        rows
    }

    fn encode_block(&self, mask: &[u64; 4]) -> BlockMeta {
        let mut meta = BlockMeta {
            lv1: 0,
            tiles: 0,
            lv2: [0u16; 16],
            valptr: [0u16; 16],
        };
        let mut offset = 0u16;
        for tile in 0..16usize {
            // Re-derive the tile's 16-bit lane one element at a time.
            let mut lane = 0u16;
            for e in 0..16usize {
                let bit = tile * 16 + e;
                if mask[bit / 64] >> (bit % 64) & 1 == 1 {
                    lane |= 1 << e;
                }
            }
            if lane != 0 {
                meta.lv1 |= 1 << tile;
                meta.lv2[meta.tiles] = lane;
                meta.valptr[meta.tiles] = offset;
                meta.tiles += 1;
                for e in 0..16 {
                    offset += lane >> e & 1;
                }
            }
        }
        meta
    }

    fn block_products(&self, a: &[u16; 16], b: &[u16; 16]) -> u64 {
        // The original `Block16::products_with`: per contraction index
        // k, (set bits in column k of a) × (set bits in row k of b).
        let mut products = 0u64;
        for (k, &brow) in b.iter().enumerate() {
            let mut col = 0u32;
            for row in a.iter() {
                col += u32::from(row >> k & 1);
            }
            products += u64::from(col) * u64::from(brow.count_ones());
        }
        products
    }

    fn block_mul_structure(&self, a: &[u16; 16], b: &[u16; 16]) -> [u16; 16] {
        // The original `Block16::mul_structure` r×k loop.
        let mut rows = [0u16; 16];
        for (r, &arow) in a.iter().enumerate() {
            for (k, &brow) in b.iter().enumerate() {
                if arow >> k & 1 == 1 {
                    rows[r] |= brow;
                }
            }
        }
        rows
    }

    fn segment_dot(
        &self,
        pattern: u8,
        a_tile: &[f64; 16],
        b_tile: &[f64; 16],
        m: usize,
        n: usize,
    ) -> (f64, u32) {
        // The original SDPU T1 inner loop from `core::kernels::exec_t1`.
        let mut sum = 0.0;
        let mut products = 0u32;
        for kk in 0..4 {
            if pattern >> kk & 1 == 1 {
                sum += a_tile[m * 4 + kk] * b_tile[kk * 4 + n];
                products += 1;
            }
        }
        (sum, products)
    }

    fn dot_gather(&self, cols: &[u32], vals: &[f64], x: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (&c, &v) in cols.iter().zip(vals.iter()) {
            acc += v * x[c as usize];
        }
        acc
    }

    fn axpy(&self, acc: &mut [f64], scale: f64, b: &[f64]) {
        for (aj, &bj) in acc.iter_mut().zip(b.iter()) {
            *aj += scale * bj;
        }
    }
}
