//! u64 word-at-a-time bit-trick backend (the default).
//!
//! Structural work runs whole-word: `count_ones` for popcount prefix
//! sums and rank, `trailing_zeros` + `m &= m - 1` for ascending set-bit
//! iteration, and SWAR lane tricks over 16×16 blocks packed as 4×u64
//! (word `w` holds tiles `4w..4w+4` as 16-bit lanes, so a block's
//! 256-bit occupancy mask is exactly four words).
//!
//! Numeric methods keep single-accumulator, left-to-right evaluation —
//! bit tricks select *which* products to form, never reorder the f64
//! additions — so results are bit-identical to the scalar reference.

use super::{BitKernels, BlockMeta};

/// Mask with the low `bits % 64` bits set (all bits for a full word).
#[inline]
fn tail_mask(bits: usize) -> u64 {
    if bits.is_multiple_of(64) {
        u64::MAX
    } else {
        (1u64 << (bits % 64)) - 1
    }
}

/// Every 16th bit set: one unit per 16-bit lane of a packed block word.
const LANE_LSB: u64 = 0x0001_0001_0001_0001;

/// The bitwise backend (`USTC_BACKEND=bitwise`).
#[derive(Debug, Clone, Copy, Default)]
pub struct BitwiseKernels;

impl BitKernels for BitwiseKernels {
    fn name(&self) -> &'static str {
        "bitwise"
    }

    fn rank(&self, words: &[u64], bit: usize) -> usize {
        let bit = bit.min(words.len() * 64);
        let (full, rem) = (bit / 64, bit % 64);
        let mut count: u32 = words[..full].iter().map(|w| w.count_ones()).sum();
        if rem != 0 {
            count += (words[full] & ((1u64 << rem) - 1)).count_ones();
        }
        count as usize
    }

    fn prefix_popcounts(&self, words: &[u64], out: &mut Vec<u32>) {
        out.clear();
        out.reserve(words.len() + 1);
        let mut running = 0u32;
        out.push(running);
        for &w in words {
            running += w.count_ones();
            out.push(running);
        }
    }

    fn and_count(&self, a: &[u64], b: &[u64], len_bits: usize) -> u64 {
        let words = len_bits.div_ceil(64);
        let mut count = 0u64;
        for i in 0..words {
            let mut and = a[i] & b[i];
            if i == words - 1 {
                and &= tail_mask(len_bits);
            }
            count += u64::from(and.count_ones());
        }
        count
    }

    fn or_into(&self, acc: &mut [u64], src: &[u64]) {
        assert_eq!(acc.len(), src.len(), "or_into operand length mismatch");
        for (a, &s) in acc.iter_mut().zip(src.iter()) {
            *a |= s;
        }
    }

    fn collect_set_bits(&self, words: &[u64], len_bits: usize, out: &mut Vec<u32>) {
        let len_bits = len_bits.min(words.len() * 64);
        let nwords = len_bits.div_ceil(64);
        for (i, &word) in words[..nwords].iter().enumerate() {
            let mut w = if i == nwords - 1 {
                word & tail_mask(len_bits)
            } else {
                word
            };
            let base = (i * 64) as u32;
            while w != 0 {
                out.push(base + w.trailing_zeros());
                w &= w - 1;
            }
        }
    }

    fn decode_block(&self, lv1: u16, lv2: &[u16]) -> [u16; 16] {
        // Pack the 16 element rows as 4×u64: word `tr` holds rows
        // 4tr..4tr+4 as 16-bit lanes. A tile's 16-bit level-2 mask
        // spreads into its word with one shift-or cascade (nibble er
        // lands in lane er at column offset tc*4) — no per-row loop.
        let mut packed = [0u64; 4];
        let mut rest = lv1;
        let mut rank = 0usize;
        while rest != 0 {
            let tile = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            let m = u64::from(lv2[rank]);
            rank += 1;
            let spread = (m & 0xF)
                | ((m & 0xF0) << 12)
                | ((m & 0xF00) << 24)
                | ((m & 0xF000) << 36);
            packed[tile / 4] |= spread << ((tile % 4) * 4);
        }
        let mut rows = [0u16; 16];
        for (r, row) in rows.iter_mut().enumerate() {
            *row = (packed[r / 4] >> ((r % 4) * 16)) as u16;
        }
        rows
    }

    fn encode_block(&self, mask: &[u64; 4]) -> BlockMeta {
        let mut meta = BlockMeta {
            lv1: 0,
            tiles: 0,
            lv2: [0u16; 16],
            valptr: [0u16; 16],
        };
        let mut offset = 0u16;
        for (w, &word) in mask.iter().enumerate() {
            let mut rest = word;
            while rest != 0 {
                // Lowest non-empty lane: its tile index and 16-bit mask.
                let lane = (rest.trailing_zeros() / 16) as usize;
                let tile_mask = (word >> (lane * 16)) as u16;
                rest &= !(0xFFFFu64 << (lane * 16));
                meta.lv1 |= 1 << (w * 4 + lane);
                meta.lv2[meta.tiles] = tile_mask;
                meta.valptr[meta.tiles] = offset;
                meta.tiles += 1;
                offset += tile_mask.count_ones() as u16;
            }
        }
        meta
    }

    fn block_products(&self, a: &[u16; 16], b: &[u16; 16]) -> u64 {
        // Pack a's rows 4-per-word; column k's popcount over 16 rows is
        // then four SWAR popcounts of (word >> k) & LANE_LSB. 64 word
        // ops replace the scalar 16×16 bit probe.
        let mut packed = [0u64; 4];
        for (r, &row) in a.iter().enumerate() {
            packed[r / 4] |= u64::from(row) << ((r % 4) * 16);
        }
        let mut products = 0u64;
        for (k, &brow) in b.iter().enumerate() {
            let mut col = 0u32;
            for &word in &packed {
                col += ((word >> k) & LANE_LSB).count_ones();
            }
            products += u64::from(col) * u64::from(brow.count_ones());
        }
        products
    }

    fn block_mul_structure(&self, a: &[u16; 16], b: &[u16; 16]) -> [u16; 16] {
        let mut rows = [0u16; 16];
        for (r, &arow) in a.iter().enumerate() {
            let mut m = arow;
            while m != 0 {
                rows[r] |= b[m.trailing_zeros() as usize];
                m &= m - 1;
            }
        }
        rows
    }

    fn segment_dot(
        &self,
        pattern: u8,
        a_tile: &[f64; 16],
        b_tile: &[f64; 16],
        m: usize,
        n: usize,
    ) -> (f64, u32) {
        // Ascending set-bit iteration reproduces the scalar kk order,
        // so the f64 sum is bit-identical; only the skip logic changes.
        let mut bits = pattern & 0xF;
        let products = bits.count_ones();
        let mut sum = 0.0;
        while bits != 0 {
            let kk = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            sum += a_tile[m * 4 + kk] * b_tile[kk * 4 + n];
        }
        (sum, products)
    }

    fn dot_gather(&self, cols: &[u32], vals: &[f64], x: &[f64]) -> f64 {
        // Single accumulator, strictly left to right (bit-identical to
        // scalar); the win is hoisting bounds work out of the gather.
        let mut acc = 0.0;
        let n = cols.len().min(vals.len());
        let mut i = 0;
        while i + 4 <= n {
            acc += vals[i] * x[cols[i] as usize];
            acc += vals[i + 1] * x[cols[i + 1] as usize];
            acc += vals[i + 2] * x[cols[i + 2] as usize];
            acc += vals[i + 3] * x[cols[i + 3] as usize];
            i += 4;
        }
        while i < n {
            acc += vals[i] * x[cols[i] as usize];
            i += 1;
        }
        acc
    }

    fn axpy(&self, acc: &mut [f64], scale: f64, b: &[f64]) {
        // Per-element updates are independent, so chunked evaluation
        // cannot change any individual result.
        let n = acc.len().min(b.len());
        let (ah, at) = acc[..n].split_at_mut(n - n % 4);
        let (bh, bt) = b[..n].split_at(n - n % 4);
        for (ac, bc) in ah.chunks_exact_mut(4).zip(bh.chunks_exact(4)) {
            ac[0] += scale * bc[0];
            ac[1] += scale * bc[1];
            ac[2] += scale * bc[2];
            ac[3] += scale * bc[3];
        }
        for (aj, &bj) in at.iter_mut().zip(bt.iter()) {
            *aj += scale * bj;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_mask_edges() {
        assert_eq!(tail_mask(0), u64::MAX);
        assert_eq!(tail_mask(1), 1);
        assert_eq!(tail_mask(63), u64::MAX >> 1);
        assert_eq!(tail_mask(64), u64::MAX);
        assert_eq!(tail_mask(65), 1);
    }

    #[test]
    fn rank_counts_strictly_below() {
        let words = [0b1011u64, u64::MAX];
        let k = BitwiseKernels;
        assert_eq!(k.rank(&words, 0), 0);
        assert_eq!(k.rank(&words, 1), 1);
        assert_eq!(k.rank(&words, 4), 3);
        assert_eq!(k.rank(&words, 64), 3);
        assert_eq!(k.rank(&words, 65), 4);
        assert_eq!(k.rank(&words, 128), 67);
        // Clamped past the end.
        assert_eq!(k.rank(&words, 1000), 67);
    }

    #[test]
    fn collect_set_bits_masks_stray_tail() {
        // Bits at or past len_bits must be ignored even if set.
        let words = [u64::MAX];
        let mut out = Vec::new();
        BitwiseKernels.collect_set_bits(&words, 3, &mut out);
        assert_eq!(out, [0, 1, 2]);
    }

    #[test]
    fn encode_block_single_elements() {
        // Element (tile 5, elem 7): bit 5*16+7 = 87 -> word 1, lane 1.
        let mut mask = [0u64; 4];
        mask[1] |= 1u64 << (16 + 7);
        let meta = BitwiseKernels.encode_block(&mask);
        assert_eq!(meta.lv1, 1 << 5);
        assert_eq!(meta.tiles, 1);
        assert_eq!(meta.lv2[0], 1 << 7);
        assert_eq!(meta.valptr[0], 0);
    }

    #[test]
    fn decode_matches_encode_on_full_block() {
        let mask = [u64::MAX; 4];
        let meta = BitwiseKernels.encode_block(&mask);
        assert_eq!(meta.lv1, u16::MAX);
        assert_eq!(meta.tiles, 16);
        let rows = BitwiseKernels.decode_block(meta.lv1, &meta.lv2[..meta.tiles]);
        assert_eq!(rows, [u16::MAX; 16]);
    }
}
