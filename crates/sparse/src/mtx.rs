//! Matrix Market (`.mtx`) I/O.
//!
//! The paper evaluates on the SuiteSparse collection, which is distributed
//! in Matrix Market format. This module reads and writes the `coordinate`
//! variant (general / symmetric / skew-symmetric, real / integer /
//! pattern), so users with the real collection can run every experiment on
//! it directly.

use std::io::{BufRead, BufReader, Read, Write};

use crate::{CooMatrix, CsrMatrix, FormatError};

/// Symmetry classes of the Matrix Market coordinate format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Symmetry {
    General,
    Symmetric,
    SkewSymmetric,
}

/// Value field classes (complex matrices are rejected).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    Real,
    Integer,
    Pattern,
}

fn corrupt(detail: &'static str) -> FormatError {
    FormatError::CorruptStream { detail }
}

/// Reads a Matrix Market coordinate stream into CSR form.
///
/// Symmetric and skew-symmetric matrices are expanded to their full
/// structure; `pattern` matrices get unit values. Pass `&mut reader` to
/// keep using the reader afterwards.
///
/// # Errors
///
/// Returns [`FormatError::CorruptStream`] on malformed headers, counts or
/// entries, and [`FormatError::IndexOutOfBounds`] on out-of-range
/// coordinates.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<CsrMatrix, FormatError> {
    let mut lines = BufReader::new(reader).lines();

    // Header: %%MatrixMarket matrix coordinate <field> <symmetry>
    let header = loop {
        match lines.next() {
            Some(Ok(l)) if !l.trim().is_empty() => break l,
            Some(Ok(_)) => continue,
            _ => return Err(corrupt("missing header")),
        }
    };
    let h: Vec<String> = header.split_whitespace().map(|s| s.to_lowercase()).collect();
    if h.len() < 5 || h[0] != "%%matrixmarket" || h[1] != "matrix" {
        return Err(corrupt("not a MatrixMarket matrix header"));
    }
    if h[2] != "coordinate" {
        return Err(corrupt("only the coordinate format is supported"));
    }
    let field = match h[3].as_str() {
        "real" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        _ => return Err(corrupt("unsupported value field (complex?)")),
    };
    let symmetry = match h[4].as_str() {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        "skew-symmetric" => Symmetry::SkewSymmetric,
        _ => return Err(corrupt("unsupported symmetry (hermitian?)")),
    };

    // Size line: rows cols nnz (comments allowed before it).
    let size = loop {
        match lines.next() {
            Some(Ok(l)) => {
                let t = l.trim();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                break l;
            }
            _ => return Err(corrupt("missing size line")),
        }
    };
    let dims: Vec<usize> = size
        .split_whitespace()
        .map(|t| t.parse::<usize>().map_err(|_| corrupt("bad size line")))
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(corrupt("size line needs rows cols nnz"));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = CooMatrix::with_capacity(nrows, ncols, nnz * 2);
    let mut parsed = 0usize;
    for line in lines {
        let line = line.map_err(|_| corrupt("read error"))?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let r: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or(corrupt("bad entry row"))?;
        let c: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or(corrupt("bad entry column"))?;
        let v: f64 = match field {
            Field::Pattern => 1.0,
            Field::Real | Field::Integer => it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or(corrupt("bad entry value"))?,
        };
        if r == 0 || c == 0 {
            return Err(corrupt("matrix market indices are 1-based"));
        }
        let (r, c) = (r - 1, c - 1);
        coo.try_push(r, c, v)?;
        match symmetry {
            Symmetry::General => {}
            Symmetry::Symmetric => {
                if r != c {
                    coo.try_push(c, r, v)?;
                }
            }
            Symmetry::SkewSymmetric => {
                if r != c {
                    coo.try_push(c, r, -v)?;
                }
            }
        }
        parsed += 1;
    }
    if parsed != nnz {
        return Err(corrupt("entry count disagrees with size line"));
    }
    CsrMatrix::try_from(coo)
}

/// Writes a matrix as a `general real coordinate` Matrix Market stream.
/// Pass `&mut writer` to keep using the writer afterwards.
///
/// # Errors
///
/// Propagates any I/O error from the underlying writer.
pub fn write_matrix_market<W: Write>(m: &CsrMatrix, mut w: W) -> std::io::Result<()> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by the Uni-STC reproduction (sparse crate)")?;
    writeln!(w, "{} {} {}", m.nrows(), m.ncols(), m.nnz())?;
    for (r, c, v) in m.iter() {
        writeln!(w, "{} {} {:e}", r + 1, c + 1, v)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const GENERAL: &str = "%%MatrixMarket matrix coordinate real general\n\
        % a comment\n\
        3 3 4\n\
        1 1 2.5\n\
        2 3 -1.0\n\
        3 1 4e-2\n\
        3 3 1.0\n";

    #[test]
    fn reads_general_real() {
        let m = read_matrix_market(GENERAL.as_bytes()).unwrap();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(0, 0), Some(2.5));
        assert_eq!(m.get(1, 2), Some(-1.0));
        assert_eq!(m.get(2, 0), Some(0.04));
    }

    #[test]
    fn expands_symmetric() {
        let src = "%%MatrixMarket matrix coordinate real symmetric\n\
            3 3 3\n1 1 1.0\n2 1 5.0\n3 2 7.0\n";
        let m = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.get(0, 1), Some(5.0));
        assert_eq!(m.get(1, 0), Some(5.0));
        assert_eq!(m.get(1, 2), Some(7.0));
    }

    #[test]
    fn expands_skew_symmetric_with_negation() {
        let src = "%%MatrixMarket matrix coordinate real skew-symmetric\n\
            2 2 1\n2 1 3.0\n";
        let m = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(m.get(1, 0), Some(3.0));
        assert_eq!(m.get(0, 1), Some(-3.0));
    }

    #[test]
    fn pattern_matrices_get_unit_values() {
        let src = "%%MatrixMarket matrix coordinate pattern general\n\
            2 2 2\n1 2\n2 1\n";
        let m = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(m.get(0, 1), Some(1.0));
        assert_eq!(m.get(1, 0), Some(1.0));
    }

    #[test]
    fn rejects_bad_headers_and_counts() {
        assert!(read_matrix_market(&b"garbage\n1 1 0\n"[..]).is_err());
        assert!(read_matrix_market(
            &b"%%MatrixMarket matrix array real general\n2 2\n"[..]
        )
        .is_err());
        assert!(read_matrix_market(
            &b"%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n"[..]
        )
        .is_err());
        // Wrong entry count.
        assert!(read_matrix_market(
            &b"%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n"[..]
        )
        .is_err());
        // Zero-based index.
        assert!(read_matrix_market(
            &b"%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n"[..]
        )
        .is_err());
        // Out-of-range index.
        assert!(read_matrix_market(
            &b"%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1.0\n"[..]
        )
        .is_err());
    }

    #[test]
    fn roundtrip_through_writer() {
        let m = read_matrix_market(GENERAL.as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_matrix_market(&m, &mut buf).unwrap();
        let back = read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn duplicate_entries_are_summed() {
        let src = "%%MatrixMarket matrix coordinate real general\n\
            2 2 2\n1 1 1.0\n1 1 2.0\n";
        let m = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(m.get(0, 0), Some(3.0));
        assert_eq!(m.nnz(), 1);
    }
}
