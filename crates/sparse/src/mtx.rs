//! Matrix Market (`.mtx`) I/O.
//!
//! The paper evaluates on the SuiteSparse collection, which is distributed
//! in Matrix Market format. This module reads and writes the `coordinate`
//! variant (general / symmetric / skew-symmetric, real / integer /
//! pattern), so users with the real collection can run every experiment on
//! it directly.

use std::io::{BufRead, BufReader, Read, Write};

use crate::{CooMatrix, CsrMatrix, FormatError};

/// Symmetry classes of the Matrix Market coordinate format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Symmetry {
    General,
    Symmetric,
    SkewSymmetric,
}

/// Value field classes (complex matrices are rejected).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    Real,
    Integer,
    Pattern,
}

fn bad(line: usize, detail: &'static str) -> FormatError {
    FormatError::ParseError { line, detail }
}

/// Reads a Matrix Market coordinate stream into CSR form.
///
/// Symmetric and skew-symmetric matrices are expanded to their full
/// structure; `pattern` matrices get unit values. Pass `&mut reader` to
/// keep using the reader afterwards.
///
/// # Errors
///
/// Returns [`FormatError::ParseError`] — carrying the 1-based line number
/// of the offending line — on malformed or truncated headers, counts or
/// entries, and [`FormatError::IndexOutOfBounds`] on out-of-range
/// coordinates. No input byte sequence panics the parser.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<CsrMatrix, FormatError> {
    // 1-based line numbers for error reporting; `lineno` always holds the
    // number of the line just pulled from the iterator.
    let mut lines = BufReader::new(reader).lines();
    let mut lineno = 0usize;

    // Header: %%MatrixMarket matrix coordinate <field> <symmetry>
    let header = loop {
        lineno += 1;
        match lines.next() {
            Some(Ok(l)) if !l.trim().is_empty() => break l,
            Some(Ok(_)) => continue,
            Some(Err(_)) => return Err(bad(lineno, "read error")),
            None => return Err(bad(lineno, "missing header")),
        }
    };
    let h: Vec<String> = header.split_whitespace().map(|s| s.to_lowercase()).collect();
    if h.len() < 5 || h[0] != "%%matrixmarket" || h[1] != "matrix" {
        return Err(bad(lineno, "not a MatrixMarket matrix header"));
    }
    if h[2] != "coordinate" {
        return Err(bad(lineno, "only the coordinate format is supported"));
    }
    let field = match h[3].as_str() {
        "real" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        _ => return Err(bad(lineno, "unsupported value field (complex?)")),
    };
    let symmetry = match h[4].as_str() {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        "skew-symmetric" => Symmetry::SkewSymmetric,
        _ => return Err(bad(lineno, "unsupported symmetry (hermitian?)")),
    };

    // Size line: rows cols nnz (comments allowed before it).
    let size = loop {
        lineno += 1;
        match lines.next() {
            Some(Ok(l)) => {
                let t = l.trim();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                break l;
            }
            Some(Err(_)) => return Err(bad(lineno, "read error")),
            None => return Err(bad(lineno, "missing size line")),
        }
    };
    let dims: Vec<usize> = size
        .split_whitespace()
        .map(|t| t.parse::<usize>().map_err(|_| bad(lineno, "bad size line")))
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(bad(lineno, "size line needs rows cols nnz"));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    // Cap the up-front reservation: `nnz` comes straight from the input, so
    // an adversarial size line must not translate into an unbounded
    // allocation before any entry has been seen.
    const CAP: usize = 1 << 16;
    let mut coo = CooMatrix::with_capacity(nrows, ncols, nnz.saturating_mul(2).min(CAP));
    let mut parsed = 0usize;
    for line in lines {
        lineno += 1;
        let line = line.map_err(|_| bad(lineno, "read error"))?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let r: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or(bad(lineno, "bad entry row"))?;
        let c: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or(bad(lineno, "bad entry column"))?;
        let v: f64 = match field {
            Field::Pattern => 1.0,
            Field::Real | Field::Integer => it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or(bad(lineno, "bad entry value"))?,
        };
        if r == 0 || c == 0 {
            return Err(bad(lineno, "matrix market indices are 1-based"));
        }
        let (r, c) = (r - 1, c - 1);
        coo.try_push(r, c, v)?;
        match symmetry {
            Symmetry::General => {}
            Symmetry::Symmetric => {
                if r != c {
                    coo.try_push(c, r, v)?;
                }
            }
            Symmetry::SkewSymmetric => {
                if r != c {
                    coo.try_push(c, r, -v)?;
                }
            }
        }
        parsed += 1;
        if parsed > nnz {
            return Err(bad(lineno, "more entries than the size line declared"));
        }
    }
    if parsed != nnz {
        return Err(bad(lineno, "entry count disagrees with size line"));
    }
    CsrMatrix::try_from(coo)
}

/// Writes a matrix as a `general real coordinate` Matrix Market stream.
/// Pass `&mut writer` to keep using the writer afterwards.
///
/// # Errors
///
/// Propagates any I/O error from the underlying writer.
pub fn write_matrix_market<W: Write>(m: &CsrMatrix, mut w: W) -> std::io::Result<()> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by the Uni-STC reproduction (sparse crate)")?;
    writeln!(w, "{} {} {}", m.nrows(), m.ncols(), m.nnz())?;
    for (r, c, v) in m.iter() {
        writeln!(w, "{} {} {:e}", r + 1, c + 1, v)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const GENERAL: &str = "%%MatrixMarket matrix coordinate real general\n\
        % a comment\n\
        3 3 4\n\
        1 1 2.5\n\
        2 3 -1.0\n\
        3 1 4e-2\n\
        3 3 1.0\n";

    #[test]
    fn reads_general_real() {
        let m = read_matrix_market(GENERAL.as_bytes()).unwrap();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(0, 0), Some(2.5));
        assert_eq!(m.get(1, 2), Some(-1.0));
        assert_eq!(m.get(2, 0), Some(0.04));
    }

    #[test]
    fn expands_symmetric() {
        let src = "%%MatrixMarket matrix coordinate real symmetric\n\
            3 3 3\n1 1 1.0\n2 1 5.0\n3 2 7.0\n";
        let m = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.get(0, 1), Some(5.0));
        assert_eq!(m.get(1, 0), Some(5.0));
        assert_eq!(m.get(1, 2), Some(7.0));
    }

    #[test]
    fn expands_skew_symmetric_with_negation() {
        let src = "%%MatrixMarket matrix coordinate real skew-symmetric\n\
            2 2 1\n2 1 3.0\n";
        let m = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(m.get(1, 0), Some(3.0));
        assert_eq!(m.get(0, 1), Some(-3.0));
    }

    #[test]
    fn pattern_matrices_get_unit_values() {
        let src = "%%MatrixMarket matrix coordinate pattern general\n\
            2 2 2\n1 2\n2 1\n";
        let m = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(m.get(0, 1), Some(1.0));
        assert_eq!(m.get(1, 0), Some(1.0));
    }

    #[test]
    fn rejects_bad_headers_and_counts() {
        assert!(read_matrix_market(&b"garbage\n1 1 0\n"[..]).is_err());
        assert!(read_matrix_market(
            &b"%%MatrixMarket matrix array real general\n2 2\n"[..]
        )
        .is_err());
        assert!(read_matrix_market(
            &b"%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n"[..]
        )
        .is_err());
        // Wrong entry count.
        assert!(read_matrix_market(
            &b"%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n"[..]
        )
        .is_err());
        // Zero-based index.
        assert!(read_matrix_market(
            &b"%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n"[..]
        )
        .is_err());
        // Out-of-range index.
        assert!(read_matrix_market(
            &b"%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1.0\n"[..]
        )
        .is_err());
    }

    fn parse_line_of(err: FormatError) -> usize {
        match err {
            FormatError::ParseError { line, .. } => line,
            other => panic!("expected ParseError, got {other:?}"),
        }
    }

    #[test]
    fn truncated_header_reports_first_line() {
        // Empty input, header-only input, and header-plus-comments input
        // are all truncated before the size line.
        assert_eq!(parse_line_of(read_matrix_market(&b""[..]).unwrap_err()), 1);
        let err = read_matrix_market(
            &b"%%MatrixMarket matrix coordinate real general\n"[..],
        )
        .unwrap_err();
        assert_eq!(parse_line_of(err), 2);
        let err = read_matrix_market(
            &b"%%MatrixMarket matrix coordinate real general\n% note\n% more\n"[..],
        )
        .unwrap_err();
        assert_eq!(parse_line_of(err), 4);
    }

    #[test]
    fn garbage_entry_reports_its_line() {
        let src = "%%MatrixMarket matrix coordinate real general\n\
            2 2 2\n1 1 1.0\n1 two 2.0\n";
        let err = read_matrix_market(src.as_bytes()).unwrap_err();
        assert_eq!(parse_line_of(err), 4);
        assert!(err_detail_mentions(src, "column"));
        let src = "%%MatrixMarket matrix coordinate real general\n\
            2 2 1\n1 1 not-a-number\n";
        let err = read_matrix_market(src.as_bytes()).unwrap_err();
        assert_eq!(parse_line_of(err), 3);
    }

    fn err_detail_mentions(src: &str, needle: &str) -> bool {
        read_matrix_market(src.as_bytes()).unwrap_err().to_string().contains(needle)
    }

    #[test]
    fn entry_count_mismatch_reports_last_line() {
        // Too few entries: the error points past the final line read.
        let short = "%%MatrixMarket matrix coordinate real general\n\
            2 2 3\n1 1 1.0\n2 2 2.0\n";
        let err = read_matrix_market(short.as_bytes()).unwrap_err();
        assert_eq!(parse_line_of(err), 4);
        // Too many entries: rejected at the first surplus entry.
        let long = "%%MatrixMarket matrix coordinate real general\n\
            2 2 1\n1 1 1.0\n2 2 2.0\n2 1 3.0\n";
        let err = read_matrix_market(long.as_bytes()).unwrap_err();
        assert_eq!(parse_line_of(err), 4);
    }

    #[test]
    fn adversarial_size_line_does_not_overallocate() {
        // A size line claiming usize::MAX entries must fail cleanly, not
        // abort on an enormous reservation.
        let src = format!(
            "%%MatrixMarket matrix coordinate real general\n2 2 {}\n1 1 1.0\n",
            usize::MAX / 2
        );
        assert!(read_matrix_market(src.as_bytes()).is_err());
    }

    #[test]
    fn roundtrip_through_writer() {
        let m = read_matrix_market(GENERAL.as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_matrix_market(&m, &mut buf).unwrap();
        let back = read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn duplicate_entries_are_summed() {
        let src = "%%MatrixMarket matrix coordinate real general\n\
            2 2 2\n1 1 1.0\n1 1 2.0\n";
        let m = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(m.get(0, 0), Some(3.0));
        assert_eq!(m.nnz(), 1);
    }
}
