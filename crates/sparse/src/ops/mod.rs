//! Golden reference implementations of the four sparse kernels
//! (Fig. 2 of the paper): SpMV, SpMSpV, SpMM and SpGEMM.
//!
//! These are straightforward, well-tested CPU implementations. The
//! simulator crates use them to (a) validate the numerical results produced
//! along the simulated dataflows and (b) compute structural quantities such
//! as `nnz(C)` and intermediate-product counts (Table VII).

mod add;
mod spgemm;
mod spmm;
mod spmspv;
mod spmv;

pub use add::add_scaled;
pub use spgemm::{spgemm, spgemm_flops, spgemm_structure};
pub use spmm::spmm;
pub use spmspv::spmspv;
pub use spmv::spmv;

use crate::FormatError;

pub(crate) fn dim_err(detail: String) -> FormatError {
    FormatError::DimensionMismatch { detail }
}

#[cfg(test)]
mod randomized {
    //! Deterministic randomized tests (seed-sweep replacements for the old
    //! proptest strategies; no external dependencies, fully offline).

    use super::*;
    use crate::rng::Rng64;
    use crate::{CooMatrix, CsrMatrix, DenseMatrix, SparseVector};

    /// A seeded random CSR matrix up to `max_dim` per side with entries in
    /// [-2, 2] and up to 64 pushed coordinates (duplicates merge).
    fn random_csr(rng: &mut Rng64, max_dim: usize) -> CsrMatrix {
        let m = 1 + rng.next_range(max_dim);
        let n = 1 + rng.next_range(max_dim);
        let nnz = rng.next_range((m * n).min(64) + 1);
        let mut coo = CooMatrix::new(m, n);
        for _ in 0..nnz {
            coo.push(rng.next_range(m), rng.next_range(n), rng.next_f64_range(-2.0, 2.0));
        }
        CsrMatrix::try_from(coo).unwrap()
    }

    fn random_square_csr(rng: &mut Rng64, max_dim: usize) -> CsrMatrix {
        let n = 1 + rng.next_range(max_dim);
        let nnz = rng.next_range((n * n).min(64) + 1);
        let mut coo = CooMatrix::new(n, n);
        for _ in 0..nnz {
            coo.push(rng.next_range(n), rng.next_range(n), rng.next_f64_range(-2.0, 2.0));
        }
        CsrMatrix::try_from(coo).unwrap()
    }

    fn dense_mul(a: &CsrMatrix, b: &DenseMatrix) -> DenseMatrix {
        let mut c = DenseMatrix::zeros(a.nrows(), b.ncols());
        for (r, k, v) in a.iter() {
            for j in 0..b.ncols() {
                c[(r, j)] += v * b[(k, j)];
            }
        }
        c
    }

    const CASES: u64 = 64;

    #[test]
    fn spmv_matches_dense() {
        for seed in 0..CASES {
            let mut rng = Rng64::new(seed);
            let a = random_csr(&mut rng, 24);
            let n = a.ncols();
            let x: Vec<f64> =
                (0..n).map(|i| ((i as u64 * 2654435761 + seed) % 7) as f64 - 3.0).collect();
            let y = spmv(&a, &x).unwrap();
            let mut expect = vec![0.0; a.nrows()];
            for (r, c, v) in a.iter() {
                expect[r] += v * x[c];
            }
            for (got, want) in y.iter().zip(&expect) {
                assert!((got - want).abs() < 1e-9, "seed {seed}");
            }
        }
    }

    #[test]
    fn spmspv_matches_spmv_on_densified() {
        for seed in 0..CASES {
            let mut rng = Rng64::new(seed);
            let a = random_csr(&mut rng, 24);
            let n = a.ncols();
            let dense: Vec<f64> = (0..n)
                .map(|i| {
                    if (i as u64 + seed).is_multiple_of(2) {
                        (i % 5) as f64 - 2.0
                    } else {
                        0.0
                    }
                })
                .collect();
            let x = SparseVector::from_dense(&dense, 0.0);
            let ys = spmspv(&a, &x).unwrap().to_dense();
            let yd = spmv(&a, &dense).unwrap();
            for (got, want) in ys.iter().zip(&yd) {
                assert!((got - want).abs() < 1e-9, "seed {seed}");
            }
        }
    }

    #[test]
    fn spmm_matches_dense() {
        for seed in 0..CASES {
            let mut rng = Rng64::new(seed ^ 0xA5A5);
            let a = random_csr(&mut rng, 16);
            let cols = 1 + rng.next_range(7);
            let k = a.ncols();
            let mut b = DenseMatrix::zeros(k, cols);
            for r in 0..k {
                for c in 0..cols {
                    b[(r, c)] = (((r * cols + c) as u64 + seed) % 5) as f64 - 2.0;
                }
            }
            let got = spmm(&a, &b).unwrap();
            let want = dense_mul(&a, &b);
            assert!(got.max_abs_diff(&want) < 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn spgemm_matches_dense() {
        for seed in 0..CASES {
            let mut rng = Rng64::new(seed ^ 0x5A5A);
            let n = 1 + rng.next_range(14);
            let build = |rng: &mut Rng64| {
                let nnz = rng.next_range((n * n).min(64) + 1);
                let mut coo = CooMatrix::new(n, n);
                for _ in 0..nnz {
                    coo.push(
                        rng.next_range(n),
                        rng.next_range(n),
                        rng.next_f64_range(-2.0, 2.0),
                    );
                }
                CsrMatrix::try_from(coo).unwrap()
            };
            let a = build(&mut rng);
            let b = build(&mut rng);
            let got = spgemm(&a, &b).unwrap().to_dense();
            let want = dense_mul(&a, &b.to_dense());
            assert!(got.max_abs_diff(&want) < 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn spgemm_structure_covers_numeric() {
        for seed in 0..CASES {
            let mut rng = Rng64::new(seed ^ 0xC3C3);
            let a = random_square_csr(&mut rng, 12);
            let c = spgemm(&a, &a).unwrap();
            let s = spgemm_structure(&a, &a).unwrap();
            // Structural nnz is an upper bound on numeric nnz (cancellation).
            assert!(s.nnz() >= c.nnz(), "seed {seed}");
            for (r, cc, _) in c.iter() {
                assert!(s.get(r, cc).is_some(), "seed {seed}");
            }
        }
    }
}
