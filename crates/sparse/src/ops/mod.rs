//! Golden reference implementations of the four sparse kernels
//! (Fig. 2 of the paper): SpMV, SpMSpV, SpMM and SpGEMM.
//!
//! These are straightforward, well-tested CPU implementations. The
//! simulator crates use them to (a) validate the numerical results produced
//! along the simulated dataflows and (b) compute structural quantities such
//! as `nnz(C)` and intermediate-product counts (Table VII).

mod add;
mod spgemm;
mod spmm;
mod spmspv;
mod spmv;

pub use add::add_scaled;
pub use spgemm::{spgemm, spgemm_flops, spgemm_structure};
pub use spmm::spmm;
pub use spmspv::spmspv;
pub use spmv::spmv;

use crate::FormatError;

pub(crate) fn dim_err(detail: String) -> FormatError {
    FormatError::DimensionMismatch { detail }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::{CooMatrix, CsrMatrix, DenseMatrix, SparseVector};
    use proptest::prelude::*;

    /// A random small CSR matrix with entries in [-2, 2].
    fn arb_csr(max_dim: usize) -> impl Strategy<Value = CsrMatrix> {
        (1..=max_dim, 1..=max_dim).prop_flat_map(|(m, n)| {
            proptest::collection::vec(
                ((0..m), (0..n), -2.0f64..2.0),
                0..=(m * n).min(64),
            )
            .prop_map(move |entries| {
                let mut coo = CooMatrix::new(m, n);
                for (r, c, v) in entries {
                    coo.push(r, c, v);
                }
                CsrMatrix::try_from(coo).unwrap()
            })
        })
    }

    /// A random small square CSR matrix with entries in [-2, 2].
    fn arb_square_csr(max_dim: usize) -> impl Strategy<Value = CsrMatrix> {
        (1..=max_dim).prop_flat_map(|n| {
            proptest::collection::vec(((0..n), (0..n), -2.0f64..2.0), 0..=(n * n).min(64))
                .prop_map(move |entries| {
                    let mut coo = CooMatrix::new(n, n);
                    for (r, c, v) in entries {
                        coo.push(r, c, v);
                    }
                    CsrMatrix::try_from(coo).unwrap()
                })
        })
    }

    fn dense_mul(a: &CsrMatrix, b: &DenseMatrix) -> DenseMatrix {
        let mut c = DenseMatrix::zeros(a.nrows(), b.ncols());
        for (r, k, v) in a.iter() {
            for j in 0..b.ncols() {
                c[(r, j)] += v * b[(k, j)];
            }
        }
        c
    }

    proptest! {
        #[test]
        fn spmv_matches_dense(a in arb_csr(24), seed in 0u64..1000) {
            let n = a.ncols();
            let x: Vec<f64> = (0..n).map(|i| ((i as u64 * 2654435761 + seed) % 7) as f64 - 3.0).collect();
            let y = spmv(&a, &x).unwrap();
            let mut expect = vec![0.0; a.nrows()];
            for (r, c, v) in a.iter() {
                expect[r] += v * x[c];
            }
            for (got, want) in y.iter().zip(&expect) {
                prop_assert!((got - want).abs() < 1e-9);
            }
        }

        #[test]
        fn spmspv_matches_spmv_on_densified(a in arb_csr(24), seed in 0u64..1000) {
            let n = a.ncols();
            let dense: Vec<f64> = (0..n)
                .map(|i| if (i as u64 + seed).is_multiple_of(2) { (i % 5) as f64 - 2.0 } else { 0.0 })
                .collect();
            let x = SparseVector::from_dense(&dense, 0.0);
            let ys = spmspv(&a, &x).unwrap().to_dense();
            let yd = spmv(&a, &dense).unwrap();
            for (got, want) in ys.iter().zip(&yd) {
                prop_assert!((got - want).abs() < 1e-9);
            }
        }

        #[test]
        fn spmm_matches_dense(a in arb_csr(16), cols in 1usize..8, seed in 0u64..100) {
            let k = a.ncols();
            let mut b = DenseMatrix::zeros(k, cols);
            for r in 0..k {
                for c in 0..cols {
                    b[(r, c)] = (((r * cols + c) as u64 + seed) % 5) as f64 - 2.0;
                }
            }
            let got = spmm(&a, &b).unwrap();
            let want = dense_mul(&a, &b);
            prop_assert!(got.max_abs_diff(&want) < 1e-9);
        }

        #[test]
        fn spgemm_matches_dense((a, b) in (1usize..=14).prop_flat_map(|n| {
            let entries = || proptest::collection::vec(((0..n), (0..n), -2.0f64..2.0), 0..=(n * n).min(64));
            (entries(), entries()).prop_map(move |(ea, eb)| {
                let build = |es: Vec<(usize, usize, f64)>| {
                    let mut coo = CooMatrix::new(n, n);
                    for (r, c, v) in es { coo.push(r, c, v); }
                    CsrMatrix::try_from(coo).unwrap()
                };
                (build(ea), build(eb))
            })
        })) {
            let got = spgemm(&a, &b).unwrap().to_dense();
            let want = dense_mul(&a, &b.to_dense());
            prop_assert!(got.max_abs_diff(&want) < 1e-9);
        }

        #[test]
        fn spgemm_structure_covers_numeric(a in arb_square_csr(12)) {
            let c = spgemm(&a, &a).unwrap();
            let s = spgemm_structure(&a, &a).unwrap();
            // Structural nnz is an upper bound on numeric nnz (cancellation).
            prop_assert!(s.nnz() >= c.nnz());
            for (r, cc, _) in c.iter() {
                prop_assert!(s.get(r, cc).is_some());
            }
        }
    }
}
