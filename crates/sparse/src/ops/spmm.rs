//! Sparse matrix x dense matrix (SpMM) reference kernel.

use crate::{CsrMatrix, DenseMatrix, FormatError};

use super::dim_err;

/// Computes `C = A * B` for a CSR matrix `A` and a dense matrix `B`.
///
/// The paper's SpMM evaluation fixes `B` to 64 columns (Section VI-A); this
/// reference accepts any width.
///
/// # Errors
///
/// Returns [`FormatError::DimensionMismatch`] if `a.ncols() != b.nrows()`.
///
/// # Example
///
/// ```
/// use sparse::{CsrMatrix, DenseMatrix, ops::spmm};
///
/// # fn main() -> Result<(), sparse::FormatError> {
/// let a = CsrMatrix::try_new(2, 2, vec![0, 1, 2], vec![1, 0], vec![2.0, 1.0])?;
/// let b = DenseMatrix::from_row_major(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
/// let c = spmm(&a, &b)?;
/// assert_eq!(c[(0, 1)], 8.0);
/// # Ok(())
/// # }
/// ```
pub fn spmm(a: &CsrMatrix, b: &DenseMatrix) -> Result<DenseMatrix, FormatError> {
    if a.ncols() != b.nrows() {
        return Err(dim_err(format!(
            "spmm: a.ncols() = {} but b.nrows() = {}",
            a.ncols(),
            b.nrows()
        )));
    }
    // Row updates run through the active kernel backend's axpy; each
    // output element sees the same sequence of additions regardless of
    // backend, so results are bit-identical.
    let be = crate::kernels::active();
    let mut c = DenseMatrix::zeros(a.nrows(), b.ncols());
    for r in 0..a.nrows() {
        let (cols, vals) = a.row(r);
        for (&k, &v) in cols.iter().zip(vals) {
            be.axpy(c.row_mut(r), v, b.row(k as usize));
        }
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_copies_b() {
        let a = CsrMatrix::identity(3);
        let b = DenseMatrix::from_row_major(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let c = spmm(&a, &b).unwrap();
        assert_eq!(c, b);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = CsrMatrix::identity(3);
        let b = DenseMatrix::zeros(2, 2);
        assert!(spmm(&a, &b).is_err());
    }

    #[test]
    fn empty_a_gives_zero_c() {
        let a = CsrMatrix::zeros(2, 3);
        let b = DenseMatrix::from_row_major(3, 1, vec![1.0, 2.0, 3.0]);
        let c = spmm(&a, &b).unwrap();
        assert_eq!(c, DenseMatrix::zeros(2, 1));
    }
}
