//! Sparse matrix x sparse vector (SpMSpV) reference kernel.

use crate::{CscMatrix, CsrMatrix, FormatError, SparseVector};

use super::dim_err;

/// Computes `y = A * x` for a CSR matrix and a sparse vector, returning a
/// sparse result.
///
/// The implementation follows the column-driven SpMSpV formulation: only the
/// columns of `A` selected by the nonzeros of `x` are visited, which is the
/// work the paper's SpMSpV dataflow performs in hardware (Algorithm 1 with a
/// sparse `rxb` mask).
///
/// # Errors
///
/// Returns [`FormatError::DimensionMismatch`] if `x.dim() != a.ncols()`.
///
/// # Example
///
/// ```
/// use sparse::{CsrMatrix, SparseVector, ops::spmspv};
///
/// # fn main() -> Result<(), sparse::FormatError> {
/// let a = CsrMatrix::try_new(2, 3, vec![0, 2, 3], vec![0, 2, 1], vec![1.0, 2.0, 3.0])?;
/// let x = SparseVector::try_new(3, vec![2], vec![10.0])?;
/// let y = spmspv(&a, &x)?;
/// assert_eq!(y.to_dense(), vec![20.0, 0.0]);
/// # Ok(())
/// # }
/// ```
pub fn spmspv(a: &CsrMatrix, x: &SparseVector) -> Result<SparseVector, FormatError> {
    if x.dim() != a.ncols() {
        return Err(dim_err(format!(
            "spmspv: x.dim() = {} but a.ncols() = {}",
            x.dim(),
            a.ncols()
        )));
    }
    // Column-driven: transpose once, then accumulate the selected columns.
    let be = crate::kernels::active();
    let at: CscMatrix = a.to_csc();
    let mut acc = vec![0.0; a.nrows()];
    // Structural touch marks as a word bitset: value-independent, so
    // entries that cancel to an exact 0.0 stay structurally present
    // (hardware-accumulator semantics) without any float comparison.
    // Walking the bitset in ascending bit order replaces the old
    // touch-list sort.
    let mut is_touched = vec![0u64; a.nrows().div_ceil(64)];
    for (col, xv) in x.iter() {
        let (rows, vals) = at.col(col);
        for (&r, &v) in rows.iter().zip(vals) {
            let ri = r as usize;
            is_touched[ri / 64] |= 1u64 << (ri % 64);
            acc[ri] += v * xv;
        }
    }
    let mut touched = Vec::new();
    be.collect_set_bits(&is_touched, a.nrows(), &mut touched);
    let mut values = Vec::with_capacity(touched.len());
    for &r in &touched {
        // Keep exact zeros produced by cancellation out of the result only
        // when they were never touched; touched-but-cancelled entries stay,
        // matching the structural semantics of the hardware accumulator.
        values.push(acc[r as usize]);
    }
    SparseVector::try_new(a.nrows(), touched, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    #[test]
    fn empty_x_gives_empty_y() {
        let a = CsrMatrix::identity(4);
        let x = SparseVector::zeros(4);
        let y = spmspv(&a, &x).unwrap();
        assert_eq!(y.nnz(), 0);
    }

    #[test]
    fn selects_columns() {
        // A = [[1, 2], [0, 3]]; x = (0: 5) -> y = (5, 0)
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 2.0);
        coo.push(1, 1, 3.0);
        let a = CsrMatrix::try_from(coo).unwrap();
        let x = SparseVector::try_new(2, vec![0], vec![5.0]).unwrap();
        let y = spmspv(&a, &x).unwrap();
        assert_eq!(y.to_dense(), vec![5.0, 0.0]);
        assert_eq!(y.nnz(), 1);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = CsrMatrix::identity(3);
        let x = SparseVector::zeros(2);
        assert!(spmspv(&a, &x).is_err());
    }

    #[test]
    fn cancellation_keeps_structural_nonzero() {
        // Row 0 receives +5 and -5: the entry cancels to an exact 0.0 but
        // stays structurally present, as in the hardware accumulator.
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, -1.0);
        coo.push(1, 1, 2.0);
        let a = CsrMatrix::try_from(coo).unwrap();
        let x = SparseVector::try_new(2, vec![0, 1], vec![5.0, 5.0]).unwrap();
        let y = spmspv(&a, &x).unwrap();
        assert_eq!(y.get(0), Some(0.0), "cancelled entry stays structural");
        assert_eq!(y.get(1), Some(10.0));
        assert_eq!(y.nnz(), 2);
    }

    #[test]
    fn accumulates_across_columns() {
        // Row 0 receives contributions from two x entries.
        let mut coo = CooMatrix::new(1, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 1.0);
        let a = CsrMatrix::try_from(coo).unwrap();
        let x = SparseVector::try_new(2, vec![0, 1], vec![3.0, 4.0]).unwrap();
        let y = spmspv(&a, &x).unwrap();
        assert_eq!(y.get(0), Some(7.0));
    }
}
