//! Sparse matrix x sparse matrix (SpGEMM) reference kernel.

use crate::{CsrMatrix, FormatError};

use super::dim_err;

/// Computes `C = A * B` for two CSR matrices using Gustavson's row-wise
/// algorithm with a dense accumulator per row.
///
/// The paper evaluates SpGEMM as `C = A^2` on square matrices (Section
/// VI-A); this reference accepts any conforming pair.
///
/// # Errors
///
/// Returns [`FormatError::DimensionMismatch`] if `a.ncols() != b.nrows()`.
///
/// # Example
///
/// ```
/// use sparse::{CsrMatrix, ops::spgemm};
///
/// # fn main() -> Result<(), sparse::FormatError> {
/// let a = CsrMatrix::try_new(2, 2, vec![0, 1, 2], vec![1, 0], vec![1.0, 1.0])?;
/// let c = spgemm(&a, &a)?; // permutation squared = identity
/// assert_eq!(c.get(0, 0), Some(1.0));
/// assert_eq!(c.get(1, 1), Some(1.0));
/// # Ok(())
/// # }
/// ```
pub fn spgemm(a: &CsrMatrix, b: &CsrMatrix) -> Result<CsrMatrix, FormatError> {
    if a.ncols() != b.nrows() {
        return Err(dim_err(format!(
            "spgemm: a.ncols() = {} but b.nrows() = {}",
            a.ncols(),
            b.nrows()
        )));
    }
    // Occupancy marks live in a word bitset; emission walks set bits
    // in ascending order through the kernel backend, replacing the old
    // per-row touch-list sort. Accumulation order is untouched (still
    // the Gustavson visit order), so values are bit-identical to the
    // original formulation.
    let be = crate::kernels::active();
    let n = b.ncols();
    let mut acc = vec![0.0f64; n];
    let mut mark = vec![0u64; n.div_ceil(64)];
    let mut touched: Vec<u32> = Vec::new();

    let mut row_ptr = vec![0usize; a.nrows() + 1];
    let mut col_idx: Vec<u32> = Vec::new();
    let mut values: Vec<f64> = Vec::new();

    for r in 0..a.nrows() {
        touched.clear();
        let (acols, avals) = a.row(r);
        for (&k, &av) in acols.iter().zip(avals) {
            let (bcols, bvals) = b.row(k as usize);
            for (&c, &bv) in bcols.iter().zip(bvals) {
                mark[c as usize / 64] |= 1u64 << (c % 64);
                acc[c as usize] += av * bv;
            }
        }
        be.collect_set_bits(&mark, n, &mut touched);
        for &c in &touched {
            col_idx.push(c);
            values.push(acc[c as usize]);
            acc[c as usize] = 0.0;
            mark[c as usize / 64] = 0;
        }
        row_ptr[r + 1] = col_idx.len();
    }

    CsrMatrix::try_new(a.nrows(), n, row_ptr, col_idx, values)
}

/// Computes only the structural (symbolic) product: the sparsity pattern of
/// `C = A * B` with all stored values set to 1.0.
///
/// Structural products never drop entries through numerical cancellation,
/// which makes this the right input for hardware-traffic accounting.
///
/// # Errors
///
/// Returns [`FormatError::DimensionMismatch`] if `a.ncols() != b.nrows()`.
pub fn spgemm_structure(a: &CsrMatrix, b: &CsrMatrix) -> Result<CsrMatrix, FormatError> {
    if a.ncols() != b.nrows() {
        return Err(dim_err(format!(
            "spgemm_structure: a.ncols() = {} but b.nrows() = {}",
            a.ncols(),
            b.nrows()
        )));
    }
    // The symbolic product is pure mask algebra: precompute one bitset
    // per B row, then row r of C is the word-at-a-time OR overlay of
    // the B-row bitsets selected by row r of A. The dense B-row table
    // costs nrows(B) x ncols(B) bits, so huge shapes fall back to the
    // per-entry mark loop.
    let be = crate::kernels::active();
    let n = b.ncols();
    let words = n.div_ceil(64);
    let mut touched: Vec<u32> = Vec::new();
    let mut row_ptr = vec![0usize; a.nrows() + 1];
    let mut col_idx: Vec<u32> = Vec::new();

    const OVERLAY_BIT_LIMIT: usize = 1 << 28; // 32 MiB of B-row bitsets
    if b.nrows().saturating_mul(words).saturating_mul(64) <= OVERLAY_BIT_LIMIT {
        let mut brows = vec![0u64; b.nrows() * words];
        for k in 0..b.nrows() {
            let (bcols, _) = b.row(k);
            for &c in bcols {
                brows[k * words + c as usize / 64] |= 1u64 << (c % 64);
            }
        }
        let mut rowmask = vec![0u64; words];
        for r in 0..a.nrows() {
            rowmask.fill(0);
            touched.clear();
            let (acols, _) = a.row(r);
            for &k in acols {
                let k = k as usize;
                be.or_into(&mut rowmask, &brows[k * words..(k + 1) * words]);
            }
            be.collect_set_bits(&rowmask, n, &mut touched);
            col_idx.extend_from_slice(&touched);
            row_ptr[r + 1] = col_idx.len();
        }
    } else {
        let mut mark = vec![0u64; words];
        for r in 0..a.nrows() {
            touched.clear();
            let (acols, _) = a.row(r);
            for &k in acols {
                let (bcols, _) = b.row(k as usize);
                for &c in bcols {
                    mark[c as usize / 64] |= 1u64 << (c % 64);
                }
            }
            be.collect_set_bits(&mark, n, &mut touched);
            for &c in &touched {
                col_idx.push(c);
                mark[c as usize / 64] = 0;
            }
            row_ptr[r + 1] = col_idx.len();
        }
    }
    let nnz = col_idx.len();
    CsrMatrix::try_new(a.nrows(), n, row_ptr, col_idx, vec![1.0; nnz])
}

/// Number of intermediate products (multiply operations) of `C = A * B`,
/// i.e. `sum over nonzeros A[r,k] of nnz(B row k)`.
///
/// This is the "#inter-prod" quantity the paper aggregates per T1 task in
/// Table VII and uses as the density axis of Fig. 20.
///
/// # Errors
///
/// Returns [`FormatError::DimensionMismatch`] if `a.ncols() != b.nrows()`.
pub fn spgemm_flops(a: &CsrMatrix, b: &CsrMatrix) -> Result<u64, FormatError> {
    if a.ncols() != b.nrows() {
        return Err(dim_err(format!(
            "spgemm_flops: a.ncols() = {} but b.nrows() = {}",
            a.ncols(),
            b.nrows()
        )));
    }
    let mut flops = 0u64;
    for r in 0..a.nrows() {
        let (acols, _) = a.row(r);
        for &k in acols {
            flops += b.row_nnz(k as usize) as u64;
        }
    }
    Ok(flops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn small() -> CsrMatrix {
        // [ 1 2 0 ]
        // [ 0 0 3 ]
        // [ 4 0 0 ]
        let mut coo = CooMatrix::new(3, 3);
        for (r, c, v) in [(0, 0, 1.0), (0, 1, 2.0), (1, 2, 3.0), (2, 0, 4.0)] {
            coo.push(r, c, v);
        }
        CsrMatrix::try_from(coo).unwrap()
    }

    #[test]
    fn squares_correctly() {
        let a = small();
        let c = spgemm(&a, &a).unwrap();
        // C = A^2:
        // row0 = row(A,0)*A = 1*[1,2,0] + 2*[0,0,3] = [1,2,6]
        // row1 = 3*[4,0,0] = [12,0,0]
        // row2 = 4*[1,2,0] = [4,8,0]
        assert_eq!(c.get(0, 0), Some(1.0));
        assert_eq!(c.get(0, 1), Some(2.0));
        assert_eq!(c.get(0, 2), Some(6.0));
        assert_eq!(c.get(1, 0), Some(12.0));
        assert_eq!(c.get(2, 0), Some(4.0));
        assert_eq!(c.get(2, 1), Some(8.0));
        assert_eq!(c.nnz(), 6);
    }

    #[test]
    fn flops_counts_products() {
        let a = small();
        // row0: k=0 -> 2, k=1 -> 1; row1: k=2 -> 1; row2: k=0 -> 2. total 6.
        assert_eq!(spgemm_flops(&a, &a).unwrap(), 6);
    }

    #[test]
    fn structure_matches_numeric_without_cancellation() {
        let a = small();
        let c = spgemm(&a, &a).unwrap();
        let s = spgemm_structure(&a, &a).unwrap();
        assert_eq!(s.nnz(), c.nnz());
    }

    #[test]
    fn structure_keeps_cancelled_entries() {
        // A*B where numeric product cancels: [1, -1] * [[1],[1]] = 0
        let mut ca = CooMatrix::new(1, 2);
        ca.push(0, 0, 1.0);
        ca.push(0, 1, -1.0);
        let a = CsrMatrix::try_from(ca).unwrap();
        let mut cb = CooMatrix::new(2, 1);
        cb.push(0, 0, 1.0);
        cb.push(1, 0, 1.0);
        let b = CsrMatrix::try_from(cb).unwrap();
        let c = spgemm(&a, &b).unwrap();
        let s = spgemm_structure(&a, &b).unwrap();
        // The numeric kernel stores the explicit zero (touched entry)...
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(0, 0), Some(0.0));
        // ...and the structural kernel records the position.
        assert_eq!(s.get(0, 0), Some(1.0));
    }

    #[test]
    fn identity_is_neutral() {
        let a = small();
        let i = CsrMatrix::identity(3);
        assert_eq!(spgemm(&a, &i).unwrap(), a);
        assert_eq!(spgemm(&i, &a).unwrap(), a);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = small();
        let b = CsrMatrix::zeros(2, 2);
        assert!(spgemm(&a, &b).is_err());
        assert!(spgemm_structure(&a, &b).is_err());
        assert!(spgemm_flops(&a, &b).is_err());
    }
}
