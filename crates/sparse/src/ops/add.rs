//! Sparse matrix addition: `C = A + beta * B`.

use crate::{CsrMatrix, FormatError};

use super::dim_err;

/// Computes `C = A + beta * B` for two CSR matrices of equal shape.
///
/// Entries that cancel to exactly zero are kept structurally (matching the
/// semantics of hardware accumulators and keeping the operation cheap);
/// call [`CsrMatrix::to_dense`] + [`crate::DenseMatrix::to_csr`] to prune.
///
/// # Errors
///
/// Returns [`FormatError::DimensionMismatch`] if the shapes differ.
///
/// # Example
///
/// ```
/// use sparse::{CsrMatrix, ops::add_scaled};
///
/// # fn main() -> Result<(), sparse::FormatError> {
/// let i = CsrMatrix::identity(2);
/// let c = add_scaled(&i, &i, -0.5)?;
/// assert_eq!(c.get(0, 0), Some(0.5));
/// # Ok(())
/// # }
/// ```
pub fn add_scaled(a: &CsrMatrix, b: &CsrMatrix, beta: f64) -> Result<CsrMatrix, FormatError> {
    if a.nrows() != b.nrows() || a.ncols() != b.ncols() {
        return Err(dim_err(format!(
            "add: shapes {}x{} and {}x{} differ",
            a.nrows(),
            a.ncols(),
            b.nrows(),
            b.ncols()
        )));
    }
    let mut row_ptr = vec![0usize; a.nrows() + 1];
    let mut col_idx: Vec<u32> = Vec::with_capacity(a.nnz() + b.nnz());
    let mut values: Vec<f64> = Vec::with_capacity(a.nnz() + b.nnz());
    for r in 0..a.nrows() {
        let (ac, av) = a.row(r);
        let (bc, bv) = b.row(r);
        let (mut i, mut j) = (0usize, 0usize);
        while i < ac.len() || j < bc.len() {
            let ca = ac.get(i).copied().unwrap_or(u32::MAX);
            let cb = bc.get(j).copied().unwrap_or(u32::MAX);
            match ca.cmp(&cb) {
                std::cmp::Ordering::Less => {
                    col_idx.push(ca);
                    values.push(av[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    col_idx.push(cb);
                    values.push(beta * bv[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    col_idx.push(ca);
                    values.push(av[i] + beta * bv[j]);
                    i += 1;
                    j += 1;
                }
            }
        }
        row_ptr[r + 1] = col_idx.len();
    }
    CsrMatrix::try_new(a.nrows(), a.ncols(), row_ptr, col_idx, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn m(entries: &[(usize, usize, f64)]) -> CsrMatrix {
        let mut coo = CooMatrix::new(3, 3);
        for &(r, c, v) in entries {
            coo.push(r, c, v);
        }
        CsrMatrix::try_from(coo).unwrap()
    }

    #[test]
    fn disjoint_structures_merge() {
        let a = m(&[(0, 0, 1.0), (1, 2, 2.0)]);
        let b = m(&[(0, 1, 3.0), (2, 2, 4.0)]);
        let c = add_scaled(&a, &b, 1.0).unwrap();
        assert_eq!(c.nnz(), 4);
        assert_eq!(c.get(0, 1), Some(3.0));
        assert_eq!(c.get(2, 2), Some(4.0));
    }

    #[test]
    fn overlapping_entries_sum_with_scale() {
        let a = m(&[(1, 1, 5.0)]);
        let b = m(&[(1, 1, 2.0)]);
        let c = add_scaled(&a, &b, -1.5).unwrap();
        assert_eq!(c.get(1, 1), Some(2.0));
    }

    #[test]
    fn cancellation_is_kept_structurally() {
        let a = m(&[(0, 0, 1.0)]);
        let c = add_scaled(&a, &a, -1.0).unwrap();
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(0, 0), Some(0.0));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = m(&[(0, 0, 1.0)]);
        let b = CsrMatrix::zeros(2, 3);
        assert!(add_scaled(&a, &b, 1.0).is_err());
    }

    #[test]
    fn matches_dense_reference() {
        let a = m(&[(0, 0, 1.0), (0, 2, -2.0), (2, 1, 4.0)]);
        let b = m(&[(0, 0, 0.5), (1, 1, 1.0), (2, 1, -1.0)]);
        let c = add_scaled(&a, &b, 2.0).unwrap();
        let (ad, bd, cd) = (a.to_dense(), b.to_dense(), c.to_dense());
        for r in 0..3 {
            for col in 0..3 {
                let want = ad[(r, col)] + 2.0 * bd[(r, col)];
                assert!((cd[(r, col)] - want).abs() < 1e-12);
            }
        }
    }
}
