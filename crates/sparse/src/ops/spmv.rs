//! Sparse matrix x dense vector (SpMV) reference kernel.

use crate::{CsrMatrix, FormatError};

use super::dim_err;

/// Computes `y = A * x` for a CSR matrix and a dense vector.
///
/// # Errors
///
/// Returns [`FormatError::DimensionMismatch`] if `x.len() != a.ncols()`.
///
/// # Example
///
/// ```
/// use sparse::{CsrMatrix, ops::spmv};
///
/// # fn main() -> Result<(), sparse::FormatError> {
/// let a = CsrMatrix::try_new(2, 2, vec![0, 1, 2], vec![1, 0], vec![2.0, 3.0])?;
/// let y = spmv(&a, &[10.0, 20.0])?;
/// assert_eq!(y, vec![40.0, 30.0]);
/// # Ok(())
/// # }
/// ```
pub fn spmv(a: &CsrMatrix, x: &[f64]) -> Result<Vec<f64>, FormatError> {
    if x.len() != a.ncols() {
        return Err(dim_err(format!(
            "spmv: x.len() = {} but a.ncols() = {}",
            x.len(),
            a.ncols()
        )));
    }
    // Per-row gathers run through the active kernel backend; every
    // backend accumulates left to right into a single accumulator, so
    // results are bit-identical across backends.
    let be = crate::kernels::active();
    let mut y = vec![0.0; a.nrows()];
    for (r, yr) in y.iter_mut().enumerate() {
        let (cols, vals) = a.row(r);
        *yr = be.dot_gather(cols, vals, x);
    }
    Ok(y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    #[test]
    fn identity_is_noop() {
        let a = CsrMatrix::identity(4);
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(spmv(&a, &x).unwrap(), x.to_vec());
    }

    #[test]
    fn empty_rows_give_zero() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 1, 2.0);
        let a = CsrMatrix::try_from(coo).unwrap();
        let y = spmv(&a, &[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(y, vec![2.0, 0.0, 0.0]);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = CsrMatrix::identity(3);
        assert!(spmv(&a, &[1.0]).is_err());
    }
}
