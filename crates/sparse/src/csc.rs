//! Compressed sparse column (CSC) format.

use crate::{CsrMatrix, FormatError, StorageSize, INDEX_BYTES, VALUE_BYTES};

/// A sparse matrix in compressed sparse column (CSC) form.
///
/// CSC gives O(1) access to matrix columns, which the outer-product
/// baselines (DS-STC, OuterSPACE-style dataflows) stream. It mirrors
/// [`CsrMatrix`] with rows and columns exchanged.
///
/// # Example
///
/// ```
/// use sparse::{CsrMatrix, CscMatrix};
///
/// # fn main() -> Result<(), sparse::FormatError> {
/// let csr = CsrMatrix::try_new(2, 2, vec![0, 1, 2], vec![1, 0], vec![5.0, 6.0])?;
/// let csc = csr.to_csc();
/// let (rows, vals) = csc.col(0);
/// assert_eq!(rows, &[1]);
/// assert_eq!(vals, &[6.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CscMatrix {
    nrows: usize,
    ncols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Builds a CSC matrix after validating every invariant (mirror image of
    /// [`CsrMatrix::try_new`]).
    ///
    /// # Errors
    ///
    /// Returns [`FormatError`] if pointers are malformed, lengths disagree,
    /// row indices are out of range, or indices within a column are not
    /// strictly increasing.
    pub fn try_new(
        nrows: usize,
        ncols: usize,
        col_ptr: Vec<usize>,
        row_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Result<Self, FormatError> {
        // Validate by viewing the arrays as a transposed CSR matrix.
        let as_csr = CsrMatrix::try_new(ncols, nrows, col_ptr, row_idx, values)?;
        Ok(Self::from_transposed_csr(as_csr))
    }

    /// Reinterprets a CSR matrix as the CSC form of its transpose.
    ///
    /// The arrays are moved, not copied: the CSR row pointer of `t` becomes
    /// the column pointer of the result.
    pub(crate) fn from_transposed_csr(t: CsrMatrix) -> Self {
        let nrows = t.ncols();
        let ncols = t.nrows();
        let col_ptr = t.row_ptr().to_vec();
        let row_idx = t.col_idx().to_vec();
        let values = t.values().to_vec();
        CscMatrix { nrows, ncols, col_ptr, row_idx, values }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The `(row_idx, values)` slices of one column.
    ///
    /// # Panics
    ///
    /// Panics if `col >= self.ncols()`.
    pub fn col(&self, col: usize) -> (&[u32], &[f64]) {
        let lo = self.col_ptr[col];
        let hi = self.col_ptr[col + 1];
        (&self.row_idx[lo..hi], &self.values[lo..hi])
    }

    /// Number of nonzeros stored in `col`.
    ///
    /// # Panics
    ///
    /// Panics if `col >= self.ncols()`.
    pub fn col_nnz(&self, col: usize) -> usize {
        self.col_ptr[col + 1] - self.col_ptr[col]
    }

    /// Converts back to CSR form.
    pub fn to_csr(&self) -> CsrMatrix {
        let as_csr = CsrMatrix::try_new(
            self.ncols,
            self.nrows,
            self.col_ptr.clone(),
            self.row_idx.clone(),
            self.values.clone(),
        )
        .expect("internal CSC arrays are always a valid transposed CSR");
        as_csr.transpose()
    }
}

impl From<&CsrMatrix> for CscMatrix {
    fn from(csr: &CsrMatrix) -> Self {
        csr.to_csc()
    }
}

impl StorageSize for CscMatrix {
    fn metadata_bytes(&self) -> usize {
        INDEX_BYTES * (self.ncols + 1) + INDEX_BYTES * self.nnz()
    }

    fn value_bytes(&self) -> usize {
        VALUE_BYTES * self.nnz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_csr() -> CsrMatrix {
        // [ 1 0 2 0 ]
        // [ 0 0 0 3 ]
        // [ 4 0 0 5 ]
        CsrMatrix::try_new(
            3,
            4,
            vec![0, 2, 3, 5],
            vec![0, 2, 3, 0, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
        .unwrap()
    }

    #[test]
    fn csr_to_csc_columns() {
        let csc = sample_csr().to_csc();
        assert_eq!(csc.nrows(), 3);
        assert_eq!(csc.ncols(), 4);
        let (rows, vals) = csc.col(0);
        assert_eq!(rows, &[0, 2]);
        assert_eq!(vals, &[1.0, 4.0]);
        assert_eq!(csc.col_nnz(1), 0);
        let (rows3, vals3) = csc.col(3);
        assert_eq!(rows3, &[1, 2]);
        assert_eq!(vals3, &[3.0, 5.0]);
    }

    #[test]
    fn csc_csr_roundtrip() {
        let csr = sample_csr();
        let back = csr.to_csc().to_csr();
        assert_eq!(back, csr);
    }

    #[test]
    fn try_new_validates() {
        // Unsorted row indices in a column.
        let err =
            CscMatrix::try_new(3, 1, vec![0, 2], vec![2, 0], vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, FormatError::UnsortedIndices { .. }));
    }

    #[test]
    fn storage_matches_csr_mirror() {
        let csc = sample_csr().to_csc();
        assert_eq!(csc.metadata_bytes(), 4 * 5 + 4 * 5);
        assert_eq!(csc.value_bytes(), 40);
    }
}
