//! Sparse vector, the second operand of SpMSpV.

use crate::{FormatError, StorageSize, INDEX_BYTES, VALUE_BYTES};

/// A sparse vector: sorted indices plus matching values.
///
/// This is the `x` operand of SpMSpV (Fig. 2 of the paper); the evaluation
/// generates it at 50 % density (Section VI-A).
///
/// # Example
///
/// ```
/// use sparse::SparseVector;
///
/// # fn main() -> Result<(), sparse::FormatError> {
/// let x = SparseVector::try_new(8, vec![1, 5], vec![2.0, -1.0])?;
/// assert_eq!(x.get(5), Some(-1.0));
/// assert_eq!(x.get(0), None);
/// assert_eq!(x.to_dense()[1], 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseVector {
    dim: usize,
    idx: Vec<u32>,
    values: Vec<f64>,
}

impl SparseVector {
    /// Builds a sparse vector after validating sortedness and bounds.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError`] if lengths disagree, indices are out of range,
    /// or indices are not strictly increasing.
    pub fn try_new(dim: usize, idx: Vec<u32>, values: Vec<f64>) -> Result<Self, FormatError> {
        if idx.len() != values.len() {
            return Err(FormatError::LengthMismatch { detail: "idx.len() != values.len()" });
        }
        for w in idx.windows(2) {
            if w[0] >= w[1] {
                return Err(FormatError::UnsortedIndices { outer: 0 });
            }
        }
        if let Some(&last) = idx.last() {
            if last as usize >= dim {
                return Err(FormatError::IndexOutOfBounds {
                    row: last as usize,
                    col: 0,
                    nrows: dim,
                    ncols: 1,
                });
            }
        }
        Ok(SparseVector { dim, idx, values })
    }

    /// Creates an empty vector of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        SparseVector { dim, idx: Vec::new(), values: Vec::new() }
    }

    /// Builds a sparse vector from a dense slice, dropping `|v| <= eps`.
    pub fn from_dense(dense: &[f64], eps: f64) -> Self {
        let mut idx = Vec::new();
        let mut values = Vec::new();
        for (i, &v) in dense.iter().enumerate() {
            if v.abs() > eps {
                idx.push(i as u32);
                values.push(v);
            }
        }
        SparseVector { dim: dense.len(), idx, values }
    }

    /// Dimension of the vector.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of entries that are zero.
    pub fn sparsity(&self) -> f64 {
        if self.dim == 0 {
            0.0
        } else {
            1.0 - self.nnz() as f64 / self.dim as f64
        }
    }

    /// Sorted index slice.
    pub fn indices(&self) -> &[u32] {
        &self.idx
    }

    /// Value slice, parallel to [`SparseVector::indices`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The stored value at `i`, or `None` if structurally zero.
    pub fn get(&self, i: usize) -> Option<f64> {
        self.idx.binary_search(&(i as u32)).ok().map(|p| self.values[p])
    }

    /// Iterates over `(index, value)` pairs in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.idx.iter().zip(&self.values).map(|(&i, &v)| (i as usize, v))
    }

    /// Materialises the vector densely.
    pub fn to_dense(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.dim];
        for (i, v) in self.iter() {
            d[i] = v;
        }
        d
    }

    /// Bitmask of the nonzero positions within the 16-element segment
    /// starting at `seg * 16` (bit `k` set means position `seg*16 + k` is
    /// nonzero). Used by the simulator's MV task drivers.
    pub fn segment_mask16(&self, seg: usize) -> u16 {
        let lo = (seg * 16) as u32;
        let hi = lo + 16;
        let start = self.idx.partition_point(|&i| i < lo);
        let mut mask = 0u16;
        for &i in &self.idx[start..] {
            if i >= hi {
                break;
            }
            mask |= 1 << (i - lo);
        }
        mask
    }
}

impl StorageSize for SparseVector {
    fn metadata_bytes(&self) -> usize {
        INDEX_BYTES * self.nnz()
    }

    fn value_bytes(&self) -> usize {
        VALUE_BYTES * self.nnz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_new_validates_sorting() {
        let err = SparseVector::try_new(4, vec![2, 1], vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, FormatError::UnsortedIndices { .. }));
    }

    #[test]
    fn try_new_validates_bounds() {
        let err = SparseVector::try_new(4, vec![4], vec![1.0]).unwrap_err();
        assert!(matches!(err, FormatError::IndexOutOfBounds { .. }));
    }

    #[test]
    fn from_dense_roundtrip() {
        let d = vec![0.0, 1.0, 0.0, -2.0];
        let s = SparseVector::from_dense(&d, 0.0);
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.to_dense(), d);
    }

    #[test]
    fn sparsity_fraction() {
        let s = SparseVector::try_new(4, vec![0, 1], vec![1.0, 1.0]).unwrap();
        assert!((s.sparsity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn segment_mask_extracts_window() {
        let s = SparseVector::try_new(40, vec![0, 15, 16, 20, 39], vec![1.0; 5]).unwrap();
        assert_eq!(s.segment_mask16(0), 0b1000_0000_0000_0001);
        assert_eq!(s.segment_mask16(1), 0b0000_0000_0001_0001);
        assert_eq!(s.segment_mask16(2), 1 << 7);
    }

    #[test]
    fn get_hits_and_misses() {
        let s = SparseVector::try_new(4, vec![1], vec![9.0]).unwrap();
        assert_eq!(s.get(1), Some(9.0));
        assert_eq!(s.get(2), None);
    }
}
