//! Coordinate (triplet) format — the universal construction format.

use crate::{FormatError, StorageSize, INDEX_BYTES, VALUE_BYTES};

/// A sparse matrix in coordinate (COO) form: unordered `(row, col, value)`
/// triplets.
///
/// COO is the construction format: generators push entries in any order and
/// the matrix is then [compressed](crate::CsrMatrix) for computation.
/// Duplicate coordinates are *summed* on conversion, mirroring the usual
/// assembly semantics of finite-element and graph workloads.
///
/// # Example
///
/// ```
/// use sparse::{CooMatrix, CsrMatrix};
///
/// # fn main() -> Result<(), sparse::FormatError> {
/// let mut m = CooMatrix::new(2, 2);
/// m.push(0, 0, 1.0);
/// m.push(0, 0, 2.0); // duplicate: summed on compression
/// m.push(1, 1, 4.0);
/// let csr = CsrMatrix::try_from(m)?;
/// assert_eq!(csr.get(0, 0), Some(3.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    rows: Vec<u32>,
    cols: Vec<u32>,
    vals: Vec<f64>,
}

impl CooMatrix {
    /// Creates an empty `nrows x ncols` matrix.
    ///
    /// # Example
    ///
    /// ```
    /// let m = sparse::CooMatrix::new(8, 8);
    /// assert_eq!(m.nnz(), 0);
    /// ```
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooMatrix { nrows, ncols, rows: Vec::new(), cols: Vec::new(), vals: Vec::new() }
    }

    /// Creates an empty matrix with capacity reserved for `cap` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries (duplicates counted individually).
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Appends an entry.
    ///
    /// # Panics
    ///
    /// Panics if `(row, col)` lies outside the matrix. Generators are trusted
    /// code paths, so this is a programming error rather than a recoverable
    /// condition; use [`CooMatrix::try_push`] for untrusted input.
    pub fn push(&mut self, row: usize, col: usize, val: f64) {
        assert!(
            row < self.nrows && col < self.ncols,
            "entry ({row}, {col}) outside {}x{} matrix",
            self.nrows,
            self.ncols
        );
        self.rows.push(row as u32);
        self.cols.push(col as u32);
        self.vals.push(val);
    }

    /// Appends an entry, returning an error on out-of-bounds coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::IndexOutOfBounds`] if `(row, col)` lies outside
    /// the matrix.
    pub fn try_push(&mut self, row: usize, col: usize, val: f64) -> Result<(), FormatError> {
        if row >= self.nrows || col >= self.ncols {
            return Err(FormatError::IndexOutOfBounds {
                row,
                col,
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        self.push(row, col, val);
        Ok(())
    }

    /// Iterates over the stored `(row, col, value)` triplets in push order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.rows
            .iter()
            .zip(&self.cols)
            .zip(&self.vals)
            .map(|((&r, &c), &v)| (r as usize, c as usize, v))
    }

    /// Sorts the triplets into row-major order and sums duplicates in place.
    ///
    /// After this call the triplets are strictly ordered by `(row, col)` and
    /// every coordinate appears at most once.
    pub fn compress(&mut self) {
        if self.vals.is_empty() {
            return;
        }
        let mut order: Vec<usize> = (0..self.vals.len()).collect();
        order.sort_unstable_by_key(|&i| (self.rows[i], self.cols[i]));
        let mut rows = Vec::with_capacity(self.vals.len());
        let mut cols = Vec::with_capacity(self.vals.len());
        let mut vals = Vec::with_capacity(self.vals.len());
        for &i in &order {
            let (r, c, v) = (self.rows[i], self.cols[i], self.vals[i]);
            if let (Some(&lr), Some(&lc)) = (rows.last(), cols.last()) {
                if lr == r && lc == c {
                    *vals.last_mut().expect("vals nonempty alongside rows") += v;
                    continue;
                }
            }
            rows.push(r);
            cols.push(c);
            vals.push(v);
        }
        self.rows = rows;
        self.cols = cols;
        self.vals = vals;
    }

    /// Returns the transpose (rows and columns exchanged).
    pub fn transpose(&self) -> CooMatrix {
        CooMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            rows: self.cols.clone(),
            cols: self.rows.clone(),
            vals: self.vals.clone(),
        }
    }
}

impl Extend<(usize, usize, f64)> for CooMatrix {
    fn extend<T: IntoIterator<Item = (usize, usize, f64)>>(&mut self, iter: T) {
        for (r, c, v) in iter {
            self.push(r, c, v);
        }
    }
}

impl StorageSize for CooMatrix {
    fn metadata_bytes(&self) -> usize {
        2 * INDEX_BYTES * self.nnz()
    }

    fn value_bytes(&self) -> usize {
        VALUE_BYTES * self.nnz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iter_roundtrip() {
        let mut m = CooMatrix::new(3, 3);
        m.push(2, 1, 5.0);
        m.push(0, 0, 1.0);
        let got: Vec<_> = m.iter().collect();
        assert_eq!(got, vec![(2, 1, 5.0), (0, 0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn push_out_of_bounds_panics() {
        let mut m = CooMatrix::new(2, 2);
        m.push(2, 0, 1.0);
    }

    #[test]
    fn try_push_reports_bounds() {
        let mut m = CooMatrix::new(2, 2);
        assert!(m.try_push(1, 1, 1.0).is_ok());
        let err = m.try_push(0, 9, 1.0).unwrap_err();
        assert!(matches!(err, FormatError::IndexOutOfBounds { col: 9, .. }));
    }

    #[test]
    fn compress_sorts_and_sums_duplicates() {
        let mut m = CooMatrix::new(4, 4);
        m.push(1, 2, 1.0);
        m.push(0, 3, 4.0);
        m.push(1, 2, 2.5);
        m.push(1, 0, -1.0);
        m.compress();
        let got: Vec<_> = m.iter().collect();
        assert_eq!(got, vec![(0, 3, 4.0), (1, 0, -1.0), (1, 2, 3.5)]);
    }

    #[test]
    fn compress_empty_is_noop() {
        let mut m = CooMatrix::new(4, 4);
        m.compress();
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let mut m = CooMatrix::new(2, 3);
        m.push(0, 2, 7.0);
        let t = m.transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.ncols(), 2);
        assert_eq!(t.iter().next(), Some((2, 0, 7.0)));
    }

    #[test]
    fn extend_appends_triplets() {
        let mut m = CooMatrix::new(2, 2);
        m.extend(vec![(0, 0, 1.0), (1, 1, 2.0)]);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn storage_size_counts_indices_and_values() {
        let mut m = CooMatrix::new(2, 2);
        m.push(0, 0, 1.0);
        m.push(1, 1, 2.0);
        assert_eq!(m.metadata_bytes(), 16);
        assert_eq!(m.value_bytes(), 16);
        assert_eq!(m.total_bytes(), 32);
    }
}
