//! Deep structural validation and the bit-level mutation surface used by
//! the fault-injection subsystem.
//!
//! [`BbcMatrix::validate`] cross-checks every derived invariant that
//! [`BbcMatrix::from_csr`] establishes (exact running popcounts, not just
//! monotonicity), so a single flipped metadata bit anywhere in the encoded
//! structure is detectable. [`BbcMatrix::flip_bit`] is the *only* mutable
//! access to the encoded arrays — it deliberately leaves derived state
//! (`tile_ptr`) untouched so that injected corruption is observable exactly
//! the way a hardware soft error would be.

use super::{BbcMatrix, BLOCK_DIM};
use crate::FormatError;

/// One of the five encoded BBC storage arrays a fault can land in.
///
/// The outer CSR arrays (`row_ptr` / `col_idx`) are excluded: the paper's
/// fault model targets the per-block metadata and value storage that the
/// unified decoder consumes (`BitMap_Lv1`, `BitMap_Lv2`, `ValPtr_Lv1`,
/// `ValPtr_Lv2`, `Value`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BbcField {
    /// Per-block level-1 tile bitmap (16-bit words).
    BitmapLv1,
    /// Per-tile level-2 element bitmap (16-bit words).
    BitmapLv2,
    /// Per-block base offset into the value array (32-bit words).
    ValPtrLv1,
    /// Per-tile offset from the block base (16-bit words).
    ValPtrLv2,
    /// The packed nonzero values (64-bit IEEE-754 words).
    Value,
}

impl BbcField {
    /// All five mutable fields, in storage-layout order.
    pub const ALL: [BbcField; 5] = [
        BbcField::BitmapLv1,
        BbcField::BitmapLv2,
        BbcField::ValPtrLv1,
        BbcField::ValPtrLv2,
        BbcField::Value,
    ];

    /// Width in bits of one element of this field.
    pub fn bit_width(self) -> u32 {
        match self {
            BbcField::BitmapLv1 | BbcField::BitmapLv2 | BbcField::ValPtrLv2 => 16,
            BbcField::ValPtrLv1 => 32,
            BbcField::Value => 64,
        }
    }

    /// Whether corruption of this field is structural metadata (always
    /// detectable by [`BbcMatrix::validate`]) as opposed to a numeric value.
    pub fn is_metadata(self) -> bool {
        !matches!(self, BbcField::Value)
    }
}

impl BbcMatrix {
    /// Number of elements stored in `field`.
    pub fn field_len(&self, field: BbcField) -> usize {
        match field {
            BbcField::BitmapLv1 => self.bitmap_lv1.len(),
            BbcField::BitmapLv2 => self.bitmap_lv2.len(),
            BbcField::ValPtrLv1 => self.valptr_lv1.len(),
            BbcField::ValPtrLv2 => self.valptr_lv2.len(),
            BbcField::Value => self.values.len(),
        }
    }

    /// Flips bit `bit` of element `index` of `field`, simulating a single
    /// soft-error upset in the stored structure.
    ///
    /// Derived metadata (`tile_ptr`) is *not* recomputed: the matrix is
    /// left exactly as corrupted storage would appear to the decoder, so
    /// [`BbcMatrix::validate`] can observe the damage.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.field_len(field)` or
    /// `bit >= field.bit_width()`.
    pub fn flip_bit(&mut self, field: BbcField, index: usize, bit: u32) {
        assert!(bit < field.bit_width(), "bit {bit} outside {field:?}");
        match field {
            BbcField::BitmapLv1 => self.bitmap_lv1[index] ^= 1 << bit,
            BbcField::BitmapLv2 => self.bitmap_lv2[index] ^= 1 << bit,
            BbcField::ValPtrLv1 => self.valptr_lv1[index] ^= 1 << bit,
            BbcField::ValPtrLv2 => self.valptr_lv2[index] ^= 1 << bit,
            BbcField::Value => {
                let bits = self.values[index].to_bits() ^ (1u64 << bit);
                self.values[index] = f64::from_bits(bits);
            }
        }
    }

    /// Deep structural validation: re-derives every invariant the encoder
    /// establishes and checks the stored arrays against them *exactly*.
    ///
    /// The checks are strictly stronger than the ones performed while
    /// decoding a stream: value pointers must equal the exact running
    /// popcounts (not merely stay monotonic), every stored block and tile
    /// must be structurally nonzero, and every value must be finite. A
    /// single flipped bit in any metadata array
    /// ([`BbcField::is_metadata`]) makes this fail.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`FormatError`].
    pub fn validate(&self) -> Result<(), FormatError> {
        let ptr_err = |detail| Err(FormatError::MalformedPointers { detail });
        let len_err = |detail| Err(FormatError::LengthMismatch { detail });

        // Grid geometry.
        if self.block_rows != self.nrows.div_ceil(BLOCK_DIM).max(1) {
            return ptr_err("block_rows inconsistent with nrows");
        }
        if self.block_cols != self.ncols.div_ceil(BLOCK_DIM).max(1) {
            return ptr_err("block_cols inconsistent with ncols");
        }

        // Outer CSR over blocks.
        let n_blocks = self.col_idx.len();
        if self.row_ptr.len() != self.block_rows + 1 {
            return ptr_err("row_ptr length != block_rows + 1");
        }
        if self.row_ptr.first() != Some(&0) || self.row_ptr.last() != Some(&n_blocks) {
            return ptr_err("row_ptr endpoints");
        }
        if self.row_ptr.windows(2).any(|w| w[0] > w[1]) {
            return ptr_err("row_ptr not non-decreasing");
        }
        for (br, w) in self.row_ptr.windows(2).enumerate() {
            let row = &self.col_idx[w[0]..w[1]];
            if row.windows(2).any(|p| p[0] >= p[1]) {
                return Err(FormatError::UnsortedIndices { outer: br });
            }
            if row.last().is_some_and(|&c| c as usize >= self.block_cols) {
                return ptr_err("block column outside the grid");
            }
        }

        // Per-block arrays and the level-1 / tile_ptr cross-check.
        if self.bitmap_lv1.len() != n_blocks {
            return len_err("bitmap_lv1 length != block count");
        }
        if self.valptr_lv1.len() != n_blocks {
            return len_err("valptr_lv1 length != block count");
        }
        if self.tile_ptr.len() != n_blocks + 1 || self.tile_ptr.first() != Some(&0) {
            return ptr_err("tile_ptr shape");
        }
        for (i, &lv1) in self.bitmap_lv1.iter().enumerate() {
            if lv1 == 0 {
                return ptr_err("stored block with empty level-1 bitmap");
            }
            if self.tile_ptr[i + 1] - self.tile_ptr[i] != lv1.count_ones() as usize {
                return ptr_err("tile_ptr disagrees with bitmap_lv1 popcount");
            }
        }

        // Per-tile arrays and the level-2 / value-pointer cross-check.
        let n_tiles = self.tile_ptr[n_blocks];
        if self.bitmap_lv2.len() != n_tiles {
            return len_err("bitmap_lv2 length != stored tile count");
        }
        if self.valptr_lv2.len() != n_tiles {
            return len_err("valptr_lv2 length != stored tile count");
        }
        let mut running = 0usize;
        for i in 0..n_blocks {
            if self.valptr_lv1[i] as usize != running {
                return ptr_err("valptr_lv1 disagrees with running value count");
            }
            let mut in_block = 0usize;
            for t in self.tile_ptr[i]..self.tile_ptr[i + 1] {
                let lv2 = self.bitmap_lv2[t];
                if lv2 == 0 {
                    return ptr_err("stored tile with empty level-2 bitmap");
                }
                if self.valptr_lv2[t] as usize != in_block {
                    return ptr_err("valptr_lv2 disagrees with in-block offset");
                }
                in_block += lv2.count_ones() as usize;
            }
            running += in_block;
        }
        if running != self.values.len() {
            return len_err("bitmap_lv2 popcount != values length");
        }

        // Values: a bit flip can denormalise a finite number silently, but
        // exponent-field upsets routinely produce NaN / infinity — catch
        // those.
        if !self.values.iter().all(|v| v.is_finite()) {
            return Err(FormatError::CorruptStream { detail: "non-finite stored value" });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;
    use crate::{CooMatrix, CsrMatrix};

    fn sample(seed: u64) -> BbcMatrix {
        let mut rng = Rng64::new(seed);
        let n = 20 + rng.next_range(40);
        let mut coo = CooMatrix::new(n, n);
        for _ in 0..1 + rng.next_range(150) {
            coo.push(rng.next_range(n), rng.next_range(n), rng.next_f64_range(0.5, 2.0));
        }
        BbcMatrix::from_csr(&CsrMatrix::try_from(coo).unwrap())
    }

    #[test]
    fn freshly_encoded_matrices_validate() {
        for seed in 0..32 {
            sample(seed).validate().unwrap();
        }
    }

    #[test]
    fn every_metadata_bit_flip_is_detected() {
        for seed in 0..8 {
            let clean = sample(seed);
            for field in BbcField::ALL {
                if !field.is_metadata() {
                    continue;
                }
                for index in 0..clean.field_len(field) {
                    for bit in 0..field.bit_width() {
                        let mut m = clean.clone();
                        m.flip_bit(field, index, bit);
                        assert!(
                            m.validate().is_err(),
                            "undetected flip: seed {seed} {field:?}[{index}] bit {bit}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn flip_is_an_involution() {
        let clean = sample(3);
        for field in BbcField::ALL {
            if clean.field_len(field) == 0 {
                continue;
            }
            let mut m = clean.clone();
            m.flip_bit(field, 0, field.bit_width() - 1);
            m.flip_bit(field, 0, field.bit_width() - 1);
            assert_eq!(m, clean, "{field:?}");
        }
    }

    #[test]
    fn value_flip_changes_only_numerics() {
        let mut m = sample(5);
        if m.field_len(BbcField::Value) == 0 {
            return;
        }
        m.flip_bit(BbcField::Value, 0, 52);
        // Mantissa/low-exponent flips keep the structure valid.
        assert!(m.validate().is_ok() || m.values[0].is_infinite() || m.values[0].is_nan());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn flip_rejects_out_of_width_bit() {
        let mut m = sample(1);
        m.flip_bit(BbcField::BitmapLv1, 0, 16);
    }
}
