//! Block-density introspection over the BBC block grid.
//!
//! The stencil lowering (ROADMAP item 4, `workloads::stencil`) chooses a
//! grid→row ordering so that banded operators condense into dense 16x16
//! diagonal blocks. This module supplies the measurement side of that
//! claim: a [`BlockDensityProfile`] summarising how many blocks a matrix
//! touches, how full each block is, and how much of the mass sits on the
//! block diagonal. One stored block is the operand of exactly one T1
//! task, so `blocks` is also the number of T1 tasks an SpMV over the
//! matrix emits.

use super::{BbcMatrix, BLOCK_DIM};

/// Number of elements in one 16x16 block (`BLOCK_DIM * BLOCK_DIM`).
const BLOCK_ELEMS: usize = BLOCK_DIM * BLOCK_DIM;

/// A structural summary of a [`BbcMatrix`]'s 16x16 block population.
///
/// Produced by [`BbcMatrix::block_profile`]. All counts are integers so
/// the profile is exactly reproducible; the derived ratios
/// ([`mean_fill`](Self::mean_fill) etc.) divide them on demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockDensityProfile {
    /// Block rows in the grid (`ceil(nrows / 16)`).
    pub block_rows: usize,
    /// Block columns in the grid (`ceil(ncols / 16)`).
    pub block_cols: usize,
    /// Stored (structurally nonzero) blocks — one T1 task each.
    pub blocks: usize,
    /// Stored 4x4 tiles across all blocks.
    pub tiles: usize,
    /// Stored nonzeros.
    pub nnz: usize,
    /// Stored blocks on the block diagonal (`block_row == block_col`).
    pub diag_blocks: usize,
    /// Nonzeros inside diagonal blocks.
    pub diag_nnz: usize,
    /// Smallest per-block nonzero count (0 when no blocks are stored).
    pub min_fill: usize,
    /// Largest per-block nonzero count.
    pub max_fill: usize,
    /// Blocks at full density (256 nonzeros).
    pub full_blocks: usize,
    /// Blocks at or above half density (>= 128 nonzeros).
    pub half_blocks: usize,
}

impl BlockDensityProfile {
    /// T1 tasks one SpMV over this matrix emits (= stored blocks; every
    /// stored block holds at least one nonzero, so none is filtered as
    /// trivial).
    pub fn t1_tasks(&self) -> usize {
        self.blocks
    }

    /// Mean nonzeros per stored block (0 when nothing is stored).
    pub fn mean_fill(&self) -> f64 {
        if self.blocks == 0 {
            0.0
        } else {
            self.nnz as f64 / self.blocks as f64
        }
    }

    /// Mean nonzeros per stored *diagonal* block (0 when none stored).
    pub fn diag_mean_fill(&self) -> f64 {
        if self.diag_blocks == 0 {
            0.0
        } else {
            self.diag_nnz as f64 / self.diag_blocks as f64
        }
    }

    /// Mean fill as a fraction of block capacity (256), in `[0, 1]`.
    pub fn mean_density(&self) -> f64 {
        self.mean_fill() / BLOCK_ELEMS as f64
    }

    /// Fraction of stored nonzeros that live in diagonal blocks.
    pub fn diag_mass(&self) -> f64 {
        if self.nnz == 0 {
            0.0
        } else {
            self.diag_nnz as f64 / self.nnz as f64
        }
    }

    /// Fraction of grid positions occupied by stored blocks.
    pub fn occupancy(&self) -> f64 {
        let grid = self.block_rows * self.block_cols;
        if grid == 0 {
            0.0
        } else {
            self.blocks as f64 / grid as f64
        }
    }

    /// Renders the headline numbers as one fixed-format line, used by the
    /// stencil bench and example output.
    pub fn summary(&self) -> String {
        format!(
            "blocks={} tiles={} nnz={} mean_fill={:.1} diag_blocks={} \
             diag_fill={:.1} full={} half={} t1={}",
            self.blocks,
            self.tiles,
            self.nnz,
            self.mean_fill(),
            self.diag_blocks,
            self.diag_mean_fill(),
            self.full_blocks,
            self.half_blocks,
            self.t1_tasks(),
        )
    }
}

impl BbcMatrix {
    /// Measures the block-density profile of this matrix.
    ///
    /// Runs in one pass over the stored blocks; all accumulation is
    /// integer arithmetic so the result is bit-reproducible across
    /// platforms and thread counts.
    pub fn block_profile(&self) -> BlockDensityProfile {
        let mut p = BlockDensityProfile {
            block_rows: self.block_rows,
            block_cols: self.block_cols,
            blocks: self.block_count(),
            tiles: self.tile_count(),
            nnz: self.nnz(),
            diag_blocks: 0,
            diag_nnz: 0,
            min_fill: 0,
            max_fill: 0,
            full_blocks: 0,
            half_blocks: 0,
        };
        let mut min_fill = usize::MAX;
        for b in self.blocks() {
            let fill = b.nnz();
            if b.block_row == b.block_col {
                p.diag_blocks += 1;
                p.diag_nnz += fill;
            }
            min_fill = min_fill.min(fill);
            p.max_fill = p.max_fill.max(fill);
            if fill == BLOCK_ELEMS {
                p.full_blocks += 1;
            }
            if fill * 2 >= BLOCK_ELEMS {
                p.half_blocks += 1;
            }
        }
        if p.blocks > 0 {
            p.min_fill = min_fill;
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CooMatrix, CsrMatrix};

    fn profile_of(coo: CooMatrix) -> BlockDensityProfile {
        let csr = CsrMatrix::try_from(coo).expect("valid triplets");
        BbcMatrix::from_csr(&csr).block_profile()
    }

    #[test]
    fn empty_matrix_profile_is_all_zero() {
        let p = profile_of(CooMatrix::new(32, 32));
        assert_eq!(p.blocks, 0);
        assert_eq!(p.t1_tasks(), 0);
        assert_eq!(p.min_fill, 0);
        assert_eq!(p.max_fill, 0);
        assert!(p.mean_fill() == 0.0);
        assert!(p.diag_mass() == 0.0);
        assert!(p.occupancy() == 0.0);
    }

    #[test]
    fn diagonal_and_off_diagonal_blocks_are_separated() {
        let mut coo = CooMatrix::new(32, 32);
        // Diagonal block (0,0): 3 entries; off-diagonal block (0,1): 1.
        coo.push(0, 0, 1.0);
        coo.push(5, 5, 1.0);
        coo.push(10, 3, 1.0);
        coo.push(2, 20, 1.0);
        let p = profile_of(coo);
        assert_eq!(p.blocks, 2);
        assert_eq!(p.diag_blocks, 1);
        assert_eq!(p.diag_nnz, 3);
        assert_eq!(p.nnz, 4);
        assert_eq!(p.min_fill, 1);
        assert_eq!(p.max_fill, 3);
        assert!(p.diag_mass() == 0.75);
        assert!(p.occupancy() == 0.5);
    }

    #[test]
    fn full_block_is_counted_full_and_half() {
        let mut coo = CooMatrix::new(16, 16);
        for r in 0..16 {
            for c in 0..16 {
                coo.push(r, c, 1.0 + (r * 16 + c) as f64);
            }
        }
        let p = profile_of(coo);
        assert_eq!(p.blocks, 1);
        assert_eq!(p.full_blocks, 1);
        assert_eq!(p.half_blocks, 1);
        assert_eq!(p.min_fill, 256);
        assert_eq!(p.max_fill, 256);
        assert!(p.mean_density() == 1.0);
        assert!(p.diag_mass() == 1.0);
    }

    #[test]
    fn summary_renders_counts() {
        let mut coo = CooMatrix::new(16, 16);
        coo.push(0, 0, 1.0);
        let s = profile_of(coo).summary();
        assert!(s.contains("blocks=1"));
        assert!(s.contains("t1=1"));
    }
}
