//! BBC (Bitmap-Bitmap-CSR): the unified sparse format of the paper
//! (Section IV-D, Fig. 13).
//!
//! The format is hierarchical:
//!
//! * **Outer layer** — CSR over structurally nonzero 16x16 *blocks*
//!   (`RowPtr` / `ColIdx`). A block is the operand of one T1 task.
//! * **Inner layer** — a two-level bitmap per block: `BitMap_Lv1` (16 bits)
//!   marks which of the block's sixteen 4x4 *tiles* hold nonzeros, and one
//!   `BitMap_Lv2` word (16 bits) per stored tile marks the nonzero elements
//!   inside it.
//! * **Value pointers** — `ValPtr_Lv1` gives each block's base offset into
//!   the flat `Value` array; `ValPtr_Lv2` gives each stored tile's offset
//!   from that base. The paper offloads this indexing to a one-time software
//!   encoding so the hardware needs no decoder.
//!
//! Values are stored tile-by-tile (tiles in row-major order over the 4x4
//! tile grid) and row-major within each tile.

mod build;
mod io;
pub mod profile;
mod validate;

use crate::{CsrMatrix, StorageSize, INDEX_BYTES, VALUE_BYTES};

pub use io::read_bbc;
pub use profile::BlockDensityProfile;
pub use validate::BbcField;

/// Edge length of a BBC block (= the T1 task dimension, 16).
pub const BLOCK_DIM: usize = 16;

/// Edge length of a BBC tile (= the T3 task dimension, 4).
pub const TILE_DIM: usize = 4;

/// Number of tiles in one block (`(BLOCK_DIM / TILE_DIM)^2`).
pub const TILES_PER_BLOCK: usize = 16;

/// A sparse matrix in the paper's BBC format.
///
/// # Example
///
/// ```
/// use sparse::{BbcMatrix, CooMatrix, CsrMatrix};
///
/// # fn main() -> Result<(), sparse::FormatError> {
/// let mut coo = CooMatrix::new(32, 32);
/// coo.push(0, 0, 1.0);
/// coo.push(17, 30, 2.0);
/// let csr = CsrMatrix::try_from(coo)?;
/// let bbc = BbcMatrix::from_csr(&csr);
/// assert_eq!(bbc.block_count(), 2);
/// assert_eq!(bbc.to_csr(), csr);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BbcMatrix {
    pub(crate) nrows: usize,
    pub(crate) ncols: usize,
    /// Number of block rows (`ceil(nrows / 16)`).
    pub(crate) block_rows: usize,
    /// Number of block columns (`ceil(ncols / 16)`).
    pub(crate) block_cols: usize,
    /// Outer CSR row pointer over blocks (`block_rows + 1` entries).
    pub(crate) row_ptr: Vec<usize>,
    /// Block-column index per stored block.
    pub(crate) col_idx: Vec<u32>,
    /// Level-1 bitmap per stored block: bit `tr * 4 + tc` marks tile
    /// `(tr, tc)` as structurally nonzero.
    pub(crate) bitmap_lv1: Vec<u16>,
    /// Start of each block's tile records in `bitmap_lv2` / `valptr_lv2`
    /// (`block_count + 1` entries; derived metadata, equal to the running
    /// popcount of `bitmap_lv1`).
    pub(crate) tile_ptr: Vec<usize>,
    /// Level-2 bitmap per stored tile: bit `er * 4 + ec` marks element
    /// `(er, ec)` of the tile as nonzero.
    pub(crate) bitmap_lv2: Vec<u16>,
    /// Base offset of each stored block in `values`.
    pub(crate) valptr_lv1: Vec<u32>,
    /// Offset of each stored tile's first value from its block base.
    pub(crate) valptr_lv2: Vec<u16>,
    /// All nonzero values, block-by-block, tile-by-tile, row-major in tile.
    pub(crate) values: Vec<f64>,
}

/// A borrowed view of one stored BBC block — the operand of one T1 task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BbcBlock<'a> {
    /// Block-row coordinate in the block grid.
    pub block_row: usize,
    /// Block-column coordinate in the block grid.
    pub block_col: usize,
    /// Level-1 bitmap (nonzero 4x4 tiles).
    pub bitmap_lv1: u16,
    /// Level-2 bitmaps, one per stored tile, in tile-index order.
    pub bitmap_lv2: &'a [u16],
    /// Per-tile value offsets from the block base.
    pub valptr_lv2: &'a [u16],
    /// The block's values.
    pub values: &'a [f64],
}

impl BbcMatrix {
    /// Number of rows of the logical matrix.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns of the logical matrix.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of block rows in the 16x16 block grid.
    pub fn block_rows(&self) -> usize {
        self.block_rows
    }

    /// Number of block columns in the 16x16 block grid.
    pub fn block_cols(&self) -> usize {
        self.block_cols
    }

    /// Number of stored (structurally nonzero) 16x16 blocks.
    pub fn block_count(&self) -> usize {
        self.col_idx.len()
    }

    /// Number of stored (structurally nonzero) 4x4 tiles.
    pub fn tile_count(&self) -> usize {
        self.bitmap_lv2.len()
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Mean number of nonzeros per stored block ("NnzPB" over 16x16 blocks).
    pub fn nnz_per_block(&self) -> f64 {
        if self.block_count() == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.block_count() as f64
        }
    }

    /// Mean number of nonzeros per stored 4x4 tile (the NnzPB granularity
    /// used on the x-axis of the paper's Fig. 15).
    pub fn nnz_per_tile(&self) -> f64 {
        if self.tile_count() == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.tile_count() as f64
        }
    }

    /// The outer CSR row pointer over blocks.
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The block-column index array.
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// The range of stored-block indices belonging to `block_row`.
    ///
    /// # Panics
    ///
    /// Panics if `block_row >= self.block_rows()`.
    pub fn blocks_in_row(&self, block_row: usize) -> std::ops::Range<usize> {
        self.row_ptr[block_row]..self.row_ptr[block_row + 1]
    }

    /// A view of the `i`-th stored block.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.block_count()`.
    pub fn block(&self, i: usize) -> BbcBlock<'_> {
        let block_row = match self.row_ptr.binary_search(&i) {
            // `i` may coincide with the start of several empty rows; pick the
            // last row whose range actually contains `i`.
            Ok(mut r) => {
                while r + 1 < self.row_ptr.len() && self.row_ptr[r + 1] == i {
                    r += 1;
                }
                r
            }
            Err(r) => r - 1,
        };
        let tiles = self.tile_ptr[i]..self.tile_ptr[i + 1];
        let vlo = self.valptr_lv1[i] as usize;
        let vhi = if i + 1 < self.valptr_lv1.len() {
            self.valptr_lv1[i + 1] as usize
        } else {
            self.values.len()
        };
        BbcBlock {
            block_row,
            block_col: self.col_idx[i] as usize,
            bitmap_lv1: self.bitmap_lv1[i],
            bitmap_lv2: &self.bitmap_lv2[tiles.clone()],
            valptr_lv2: &self.valptr_lv2[tiles],
            values: &self.values[vlo..vhi],
        }
    }

    /// Finds the stored-block index at grid position `(block_row,
    /// block_col)`, or `None` if that block is structurally zero.
    ///
    /// # Panics
    ///
    /// Panics if `block_row >= self.block_rows()`.
    pub fn find_block(&self, block_row: usize, block_col: usize) -> Option<usize> {
        let range = self.blocks_in_row(block_row);
        let cols = &self.col_idx[range.clone()];
        cols.binary_search(&(block_col as u32)).ok().map(|p| range.start + p)
    }

    /// Iterates over all stored blocks.
    pub fn blocks(&self) -> impl Iterator<Item = BbcBlock<'_>> + '_ {
        (0..self.block_count()).map(|i| self.block(i))
    }

    /// Converts back to CSR form.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut coo = crate::CooMatrix::with_capacity(self.nrows, self.ncols, self.nnz());
        for b in self.blocks() {
            for (r, c, v) in b.iter() {
                coo.push(r, c, v);
            }
        }
        CsrMatrix::try_from(coo).expect("BBC coordinates are always in range")
    }

    /// The stored value at `(row, col)`, or `None` when structurally zero.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates lie outside the matrix.
    pub fn get(&self, row: usize, col: usize) -> Option<f64> {
        assert!(row < self.nrows && col < self.ncols, "index out of bounds");
        let i = self.find_block(row / BLOCK_DIM, col / BLOCK_DIM)?;
        self.block(i).get(row % BLOCK_DIM, col % BLOCK_DIM)
    }
}

impl BbcBlock<'_> {
    /// Number of nonzeros stored in this block.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Number of stored tiles in this block.
    pub fn tile_count(&self) -> usize {
        self.bitmap_lv1.count_ones() as usize
    }

    /// The level-2 bitmap of tile `(tile_row, tile_col)`, or 0 when the
    /// tile is structurally empty.
    ///
    /// # Panics
    ///
    /// Panics if `tile_row` or `tile_col` is `>= 4`.
    pub fn tile_mask(&self, tile_row: usize, tile_col: usize) -> u16 {
        assert!(tile_row < TILE_DIM && tile_col < TILE_DIM, "tile index out of bounds");
        let bit = tile_row * TILE_DIM + tile_col;
        if self.bitmap_lv1 >> bit & 1 == 0 {
            return 0;
        }
        let rank = (self.bitmap_lv1 & ((1u16 << bit) - 1)).count_ones() as usize;
        self.bitmap_lv2[rank]
    }

    /// Expands the two-level bitmap into sixteen per-row 16-bit masks
    /// (bit `c` of `rows[r]` set means element `(r, c)` is nonzero).
    ///
    /// Decoding runs through the active kernel backend (see
    /// [`crate::kernels`]): the scalar backend replays the original
    /// per-tile nibble-spread loop, the bitwise backend packs the rows
    /// as 4×u64 and spreads each tile with one shift-or cascade.
    pub fn element_rows(&self) -> [u16; BLOCK_DIM] {
        crate::kernels::active().decode_block(self.bitmap_lv1, self.bitmap_lv2)
    }

    /// The stored value at block-local coordinates `(lr, lc)`, or `None`
    /// when structurally zero.
    ///
    /// # Panics
    ///
    /// Panics if `lr` or `lc` is `>= 16`.
    pub fn get(&self, lr: usize, lc: usize) -> Option<f64> {
        assert!(lr < BLOCK_DIM && lc < BLOCK_DIM, "block-local index out of bounds");
        let (tr, tc) = (lr / TILE_DIM, lc / TILE_DIM);
        let bit = tr * TILE_DIM + tc;
        if self.bitmap_lv1 >> bit & 1 == 0 {
            return None;
        }
        let rank = (self.bitmap_lv1 & ((1u16 << bit) - 1)).count_ones() as usize;
        let mask = self.bitmap_lv2[rank];
        let ebit = (lr % TILE_DIM) * TILE_DIM + (lc % TILE_DIM);
        if mask >> ebit & 1 == 0 {
            return None;
        }
        let erank = (mask & ((1u16 << ebit) - 1)).count_ones() as usize;
        Some(self.values[self.valptr_lv2[rank] as usize + erank])
    }

    /// The packed values of tile `(tile_row, tile_col)` in row-major
    /// element order (empty when the tile is structurally zero).
    ///
    /// This is the access the hardware performs through `ValPtr_Lv2`.
    ///
    /// # Panics
    ///
    /// Panics if `tile_row` or `tile_col` is `>= 4`.
    pub fn tile_values(&self, tile_row: usize, tile_col: usize) -> &[f64] {
        assert!(tile_row < TILE_DIM && tile_col < TILE_DIM, "tile index out of bounds");
        let bit = tile_row * TILE_DIM + tile_col;
        if self.bitmap_lv1 >> bit & 1 == 0 {
            return &[];
        }
        let rank = (self.bitmap_lv1 & ((1u16 << bit) - 1)).count_ones() as usize;
        let start = self.valptr_lv2[rank] as usize;
        let len = self.bitmap_lv2[rank].count_ones() as usize;
        &self.values[start..start + len]
    }

    /// Expands tile `(tile_row, tile_col)` into a dense 4x4 row-major
    /// value array (zeros where structurally empty) — the DPG's conversion
    /// of a submatrix "into four row or column vectors" (Section IV-D).
    ///
    /// # Panics
    ///
    /// Panics if `tile_row` or `tile_col` is `>= 4`.
    pub fn dense_tile(&self, tile_row: usize, tile_col: usize) -> [f64; 16] {
        let mut out = [0.0; 16];
        let mask = self.tile_mask(tile_row, tile_col);
        if mask == 0 {
            return out;
        }
        let vals = self.tile_values(tile_row, tile_col);
        let mut vi = 0usize;
        for (e, slot) in out.iter_mut().enumerate() {
            if mask >> e & 1 == 1 {
                *slot = vals[vi];
                vi += 1;
            }
        }
        out
    }

    /// Iterates over the block's `(global_row, global_col, value)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        let base_r = self.block_row * BLOCK_DIM;
        let base_c = self.block_col * BLOCK_DIM;
        let lv1 = self.bitmap_lv1;
        (0..TILES_PER_BLOCK)
            .filter(move |&bit| lv1 >> bit & 1 == 1)
            .enumerate()
            .flat_map(move |(rank, bit)| {
                let (tr, tc) = (bit / TILE_DIM, bit % TILE_DIM);
                let mask = self.bitmap_lv2[rank];
                let vbase = self.valptr_lv2[rank] as usize;
                (0..16u16).filter(move |&e| mask >> e & 1 == 1).enumerate().map(
                    move |(erank, e)| {
                        let (er, ec) = (e as usize / TILE_DIM, e as usize % TILE_DIM);
                        (
                            base_r + tr * TILE_DIM + er,
                            base_c + tc * TILE_DIM + ec,
                            self.values[vbase + erank],
                        )
                    },
                )
            })
    }
}

impl StorageSize for BbcMatrix {
    fn metadata_bytes(&self) -> usize {
        // RowPtr + ColIdx (outer CSR), per block: BitMap_Lv1 (2B) +
        // ValPtr_Lv1 (4B), per stored tile: BitMap_Lv2 (2B) + ValPtr_Lv2
        // (2B). `tile_ptr` is derived (running popcount) and not stored.
        INDEX_BYTES * (self.block_rows + 1)
            + INDEX_BYTES * self.block_count()
            + 2 * self.block_count()
            + 4 * self.block_count()
            + 2 * self.tile_count()
            + 2 * self.tile_count()
    }

    fn value_bytes(&self) -> usize {
        VALUE_BYTES * self.nnz()
    }
}

impl From<&CsrMatrix> for BbcMatrix {
    fn from(csr: &CsrMatrix) -> Self {
        BbcMatrix::from_csr(csr)
    }
}

#[cfg(test)]
mod tests;
