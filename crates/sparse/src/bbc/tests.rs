//! Unit tests for the BBC format.

use super::*;
use crate::CooMatrix;

fn csr_from(entries: &[(usize, usize, f64)], nrows: usize, ncols: usize) -> CsrMatrix {
    let mut coo = CooMatrix::new(nrows, ncols);
    for &(r, c, v) in entries {
        coo.push(r, c, v);
    }
    CsrMatrix::try_from(coo).unwrap()
}

/// The paper's Fig. 13 downscaled example, scaled to the real 16/4
/// geometry: entries placed so that multiple tiles per block, multiple
/// blocks per row, and an empty block row all occur.
fn sample() -> CsrMatrix {
    csr_from(
        &[
            (0, 0, 1.0),   // block (0,0), tile (0,0)
            (0, 5, 2.0),   // block (0,0), tile (0,1)
            (3, 3, 3.0),   // block (0,0), tile (0,0)
            (7, 14, 4.0),  // block (0,0), tile (1,3)
            (2, 17, 5.0),  // block (0,1), tile (0,0)
            (15, 31, 6.0), // block (0,1), tile (3,3)
            (40, 8, 7.0),  // block (2,0), tile (2,2)
            (47, 0, 8.0),  // block (2,0), tile (3,0)
        ],
        48,
        32,
    )
}

#[test]
fn block_grid_dimensions() {
    let bbc = BbcMatrix::from_csr(&sample());
    assert_eq!(bbc.block_rows(), 3);
    assert_eq!(bbc.block_cols(), 2);
    assert_eq!(bbc.block_count(), 3);
    assert_eq!(bbc.nnz(), 8);
}

#[test]
fn csr_roundtrip() {
    let csr = sample();
    assert_eq!(BbcMatrix::from_csr(&csr).to_csr(), csr);
}

#[test]
fn empty_block_row_has_no_blocks() {
    let bbc = BbcMatrix::from_csr(&sample());
    assert!(bbc.blocks_in_row(1).is_empty());
    assert_eq!(bbc.blocks_in_row(0).len(), 2);
}

#[test]
fn find_block_hits_and_misses() {
    let bbc = BbcMatrix::from_csr(&sample());
    assert!(bbc.find_block(0, 0).is_some());
    assert!(bbc.find_block(0, 1).is_some());
    assert!(bbc.find_block(1, 0).is_none());
    assert!(bbc.find_block(2, 1).is_none());
}

#[test]
fn block_view_coordinates() {
    let bbc = BbcMatrix::from_csr(&sample());
    let i = bbc.find_block(2, 0).unwrap();
    let b = bbc.block(i);
    assert_eq!(b.block_row, 2);
    assert_eq!(b.block_col, 0);
    assert_eq!(b.nnz(), 2);
    assert_eq!(b.tile_count(), 2);
}

#[test]
fn tile_mask_and_get() {
    let bbc = BbcMatrix::from_csr(&sample());
    let b = bbc.block(bbc.find_block(0, 0).unwrap());
    // (0,0) and (3,3) live in tile (0,0): bits 0 and 15.
    assert_eq!(b.tile_mask(0, 0), (1 << 0) | (1 << 15));
    // (0,5) lives in tile (0,1), element (0,1): bit 1.
    assert_eq!(b.tile_mask(0, 1), 1 << 1);
    // (7,14) lives in tile (1,3), element (3,2): bit 14.
    assert_eq!(b.tile_mask(1, 3), 1 << 14);
    assert_eq!(b.tile_mask(2, 2), 0);
    assert_eq!(b.get(0, 0), Some(1.0));
    assert_eq!(b.get(3, 3), Some(3.0));
    assert_eq!(b.get(0, 5), Some(2.0));
    assert_eq!(b.get(7, 14), Some(4.0));
    assert_eq!(b.get(1, 1), None);
    assert_eq!(b.get(8, 8), None);
}

#[test]
fn matrix_get_matches_csr() {
    let csr = sample();
    let bbc = BbcMatrix::from_csr(&csr);
    for r in 0..csr.nrows() {
        for c in 0..csr.ncols() {
            assert_eq!(bbc.get(r, c), csr.get(r, c), "({r},{c})");
        }
    }
}

#[test]
fn element_rows_expand_two_level_bitmap() {
    let bbc = BbcMatrix::from_csr(&sample());
    let b = bbc.block(bbc.find_block(0, 1).unwrap());
    let rows = b.element_rows();
    // (2,17) -> local (2,1); (15,31) -> local (15,15)
    assert_eq!(rows[2], 1 << 1);
    assert_eq!(rows[15], 1 << 15);
    for (r, &m) in rows.iter().enumerate() {
        if r != 2 && r != 15 {
            assert_eq!(m, 0, "row {r}");
        }
    }
}

#[test]
fn values_ordered_tile_major() {
    // Two entries in different tiles of one block: tile order must win over
    // row order.
    let csr = csr_from(&[(0, 5, 10.0), (1, 1, 20.0)], 16, 16);
    let bbc = BbcMatrix::from_csr(&csr);
    let b = bbc.block(0);
    // tile (0,0) holds (1,1); tile (0,1) holds (0,5). Tile-major order puts
    // 20.0 first.
    assert_eq!(b.values, &[20.0, 10.0]);
    assert_eq!(b.valptr_lv2, &[0, 1]);
}

#[test]
fn empty_matrix_has_one_grid_cell() {
    let csr = CsrMatrix::zeros(0, 0);
    let bbc = BbcMatrix::from_csr(&csr);
    assert_eq!(bbc.block_count(), 0);
    assert_eq!(bbc.nnz(), 0);
    assert_eq!(bbc.to_csr().nnz(), 0);
}

#[test]
fn dense_block_stores_all_tiles() {
    let mut coo = CooMatrix::new(16, 16);
    for r in 0..16 {
        for c in 0..16 {
            coo.push(r, c, (r * 16 + c) as f64);
        }
    }
    let bbc = BbcMatrix::from_csr(&CsrMatrix::try_from(coo).unwrap());
    assert_eq!(bbc.block_count(), 1);
    assert_eq!(bbc.tile_count(), 16);
    let b = bbc.block(0);
    assert_eq!(b.bitmap_lv1, u16::MAX);
    assert!(b.bitmap_lv2.iter().all(|&m| m == u16::MAX));
    assert_eq!(b.get(9, 9), Some((9 * 16 + 9) as f64));
}

#[test]
fn nnz_per_block_and_tile() {
    let bbc = BbcMatrix::from_csr(&sample());
    assert!((bbc.nnz_per_block() - 8.0 / 3.0).abs() < 1e-12);
    assert!((bbc.nnz_per_tile() - 8.0 / 7.0).abs() < 1e-12);
}

#[test]
fn tile_values_follow_valptr_lv2() {
    let bbc = BbcMatrix::from_csr(&sample());
    let b = bbc.block(bbc.find_block(0, 0).unwrap());
    // Tile (0,0) holds entries (0,0)=1.0 and (3,3)=3.0 in row-major order.
    assert_eq!(b.tile_values(0, 0), &[1.0, 3.0]);
    assert_eq!(b.tile_values(0, 1), &[2.0]);
    assert_eq!(b.tile_values(1, 3), &[4.0]);
    assert!(b.tile_values(2, 2).is_empty());
}

#[test]
fn dense_tile_expands_with_zeros() {
    let bbc = BbcMatrix::from_csr(&sample());
    let b = bbc.block(bbc.find_block(0, 0).unwrap());
    let t = b.dense_tile(0, 0);
    assert_eq!(t[0], 1.0); // element (0,0)
    assert_eq!(t[15], 3.0); // element (3,3)
    assert_eq!(t.iter().filter(|v| **v != 0.0).count(), 2);
    assert_eq!(b.dense_tile(2, 2), [0.0; 16]);
}

#[test]
fn io_roundtrip() {
    let bbc = BbcMatrix::from_csr(&sample());
    let mut buf = Vec::new();
    bbc.write_bbc(&mut buf).unwrap();
    let back = read_bbc(buf.as_slice()).unwrap();
    assert_eq!(back, bbc);
}

#[test]
fn io_rejects_bad_magic() {
    let err = read_bbc(&b"XXXX"[..]).unwrap_err();
    assert!(matches!(err, crate::FormatError::CorruptStream { .. }));
}

#[test]
fn io_rejects_truncation() {
    let bbc = BbcMatrix::from_csr(&sample());
    let mut buf = Vec::new();
    bbc.write_bbc(&mut buf).unwrap();
    for cut in [3, 20, buf.len() / 2, buf.len() - 1] {
        let err = read_bbc(&buf[..cut]).unwrap_err();
        assert!(matches!(err, crate::FormatError::CorruptStream { .. }), "cut {cut}");
    }
}

#[test]
fn io_rejects_inconsistent_bitmaps() {
    let bbc = BbcMatrix::from_csr(&sample());
    let mut buf = Vec::new();
    bbc.write_bbc(&mut buf).unwrap();
    // Flip a bit in the first bitmap_lv1 word (v2 layout: each section is
    // followed by a 4-byte CRC): the section checksum no longer matches.
    let lv1_off =
        4 + (8 * 8 + 4) + (8 * (bbc.block_rows() + 1) + 4) + (4 * bbc.block_count() + 4);
    buf[lv1_off] ^= 0x40;
    let err = read_bbc(buf.as_slice()).unwrap_err();
    assert!(matches!(err, crate::FormatError::CorruptStream { .. }));
}

/// Serialises `bbc` in the legacy `BBC1` layout (no per-section CRCs).
fn write_v1(bbc: &BbcMatrix) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(b"BBC1");
    for v in [
        bbc.nrows as u64,
        bbc.ncols as u64,
        bbc.block_rows as u64,
        bbc.block_cols as u64,
        bbc.row_ptr.len() as u64,
        bbc.col_idx.len() as u64,
        bbc.bitmap_lv2.len() as u64,
        bbc.values.len() as u64,
    ] {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    for &p in &bbc.row_ptr {
        buf.extend_from_slice(&(p as u64).to_le_bytes());
    }
    for &c in &bbc.col_idx {
        buf.extend_from_slice(&c.to_le_bytes());
    }
    for &b in &bbc.bitmap_lv1 {
        buf.extend_from_slice(&b.to_le_bytes());
    }
    for &p in &bbc.valptr_lv1 {
        buf.extend_from_slice(&p.to_le_bytes());
    }
    for &b in &bbc.bitmap_lv2 {
        buf.extend_from_slice(&b.to_le_bytes());
    }
    for &p in &bbc.valptr_lv2 {
        buf.extend_from_slice(&p.to_le_bytes());
    }
    for &v in &bbc.values {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    buf
}

#[test]
fn io_reads_legacy_v1_stream() {
    let bbc = BbcMatrix::from_csr(&sample());
    let back = read_bbc(write_v1(&bbc).as_slice()).unwrap();
    assert_eq!(back, bbc);
}

#[test]
fn io_rejects_adversarial_header_lengths() {
    // A header claiming astronomically large arrays against a short stream
    // must error (not allocate or panic): the counts are cross-checked
    // against the block grid before any allocation happens.
    let bbc = BbcMatrix::from_csr(&sample());
    let mut buf = Vec::new();
    bbc.write_bbc(&mut buf).unwrap();
    // Header fields start at offset 4 (after the magic): n_blocks is field
    // 5, n_tiles field 6, n_vals field 7.
    for field in [5usize, 6, 7] {
        let mut evil = buf.clone();
        evil[4 + field * 8..4 + (field + 1) * 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = read_bbc(evil.as_slice()).unwrap_err();
        assert!(matches!(err, crate::FormatError::CorruptStream { .. }), "field {field}");
    }
    // Same for a v1 stream, which has no checksums to catch it first.
    let v1 = write_v1(&bbc);
    for field in [5usize, 6, 7] {
        let mut evil = v1.clone();
        evil[4 + field * 8..4 + (field + 1) * 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = read_bbc(evil.as_slice()).unwrap_err();
        assert!(matches!(err, crate::FormatError::CorruptStream { .. }), "v1 field {field}");
    }
}

#[test]
fn every_single_bit_stream_mutation_is_safe() {
    // Exhaustive mutation test over both stream versions: flipping any one
    // bit of a serialized stream must either be rejected with
    // `CorruptStream` or decode to a matrix that still passes `validate()`
    // — reading a mutated stream must never panic.
    let bbc = BbcMatrix::from_csr(&sample());
    let mut v2 = Vec::new();
    bbc.write_bbc(&mut v2).unwrap();
    for (version, stream) in [("v2", v2), ("v1", write_v1(&bbc))] {
        for byte in 0..stream.len() {
            for bit in 0..8 {
                let mut evil = stream.clone();
                evil[byte] ^= 1u8 << bit;
                match read_bbc(evil.as_slice()) {
                    Err(crate::FormatError::CorruptStream { .. }) => {}
                    Err(e) => panic!("{version} byte {byte} bit {bit}: unexpected {e:?}"),
                    Ok(m) => {
                        m.validate().unwrap_or_else(|e| {
                            panic!("{version} byte {byte} bit {bit}: invalid decode {e:?}")
                        });
                    }
                }
            }
        }
    }
}

#[test]
fn truncated_streams_error_at_every_length() {
    // Every proper prefix of a valid stream must be rejected cleanly.
    let bbc = BbcMatrix::from_csr(&sample());
    let mut buf = Vec::new();
    bbc.write_bbc(&mut buf).unwrap();
    for len in 0..buf.len() {
        assert!(
            matches!(
                read_bbc(&buf[..len]),
                Err(crate::FormatError::CorruptStream { .. })
            ),
            "prefix of {len} bytes not rejected"
        );
    }
}

#[test]
fn metadata_bytes_formula() {
    use crate::StorageSize;
    let bbc = BbcMatrix::from_csr(&sample());
    let expect = 4 * 4 + 4 * 3 + 2 * 3 + 4 * 3 + 2 * 7 + 2 * 7;
    assert_eq!(bbc.metadata_bytes(), expect);
    assert_eq!(bbc.value_bytes(), 64);
}

#[test]
fn block_iteration_covers_all_entries() {
    let csr = sample();
    let bbc = BbcMatrix::from_csr(&csr);
    let mut n = 0;
    for b in bbc.blocks() {
        for (r, c, v) in b.iter() {
            assert_eq!(csr.get(r, c), Some(v));
            n += 1;
        }
    }
    assert_eq!(n, csr.nnz());
}

/// Rebuilds a matrix generated by the `conformance` crate as a local
/// [`CsrMatrix`]. The dev-dependency cycle means conformance links its own
/// build of `sparse`, so its matrix type is foreign here; the entry stream
/// is the portable representation.
fn localize(a: &conformance::CsrMatrix) -> CsrMatrix {
    let mut coo = CooMatrix::new(a.nrows(), a.ncols());
    for (r, c, v) in a.iter() {
        coo.push(r, c, v);
    }
    CsrMatrix::try_from(coo).unwrap()
}

#[test]
fn encode_decode_encode_is_idempotent_on_every_regime() {
    // Structured sweep borrowed from the conformance crate: encoding a
    // decoded stream must reproduce the stream byte for byte, and the
    // decoded matrix must equal the original encoder output exactly.
    use conformance::generators::Regime;
    for regime in Regime::ALL {
        for seed in 0..3u64 {
            let a = localize(&regime.generate(seed));
            let bbc = BbcMatrix::from_csr(&a);
            let mut first = Vec::new();
            bbc.write_bbc(&mut first).unwrap();
            let decoded = read_bbc(first.as_slice())
                .unwrap_or_else(|e| panic!("{} seed {seed}: decode failed {e:?}", regime.name()));
            assert_eq!(decoded, bbc, "{} seed {seed}: decode changed the matrix", regime.name());
            let mut second = Vec::new();
            decoded.write_bbc(&mut second).unwrap();
            assert_eq!(first, second, "{} seed {seed}: re-encode diverged", regime.name());
            assert_eq!(decoded.to_csr(), a, "{} seed {seed}: CSR round trip", regime.name());
        }
    }
}

#[test]
fn validate_accepts_every_generator_regime() {
    use conformance::generators::Regime;
    for regime in Regime::ALL {
        for seed in 0..3u64 {
            let a = localize(&regime.generate(seed));
            let bbc = BbcMatrix::from_csr(&a);
            bbc.validate().unwrap_or_else(|e| {
                panic!("{} seed {seed}: fresh encode failed validate: {e:?}", regime.name())
            });
            assert_eq!(bbc.nnz(), a.nnz(), "{} seed {seed}", regime.name());
        }
    }
}
