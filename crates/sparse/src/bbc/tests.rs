//! Unit tests for the BBC format.

use super::*;
use crate::CooMatrix;

fn csr_from(entries: &[(usize, usize, f64)], nrows: usize, ncols: usize) -> CsrMatrix {
    let mut coo = CooMatrix::new(nrows, ncols);
    for &(r, c, v) in entries {
        coo.push(r, c, v);
    }
    CsrMatrix::try_from(coo).unwrap()
}

/// The paper's Fig. 13 downscaled example, scaled to the real 16/4
/// geometry: entries placed so that multiple tiles per block, multiple
/// blocks per row, and an empty block row all occur.
fn sample() -> CsrMatrix {
    csr_from(
        &[
            (0, 0, 1.0),   // block (0,0), tile (0,0)
            (0, 5, 2.0),   // block (0,0), tile (0,1)
            (3, 3, 3.0),   // block (0,0), tile (0,0)
            (7, 14, 4.0),  // block (0,0), tile (1,3)
            (2, 17, 5.0),  // block (0,1), tile (0,0)
            (15, 31, 6.0), // block (0,1), tile (3,3)
            (40, 8, 7.0),  // block (2,0), tile (2,2)
            (47, 0, 8.0),  // block (2,0), tile (3,0)
        ],
        48,
        32,
    )
}

#[test]
fn block_grid_dimensions() {
    let bbc = BbcMatrix::from_csr(&sample());
    assert_eq!(bbc.block_rows(), 3);
    assert_eq!(bbc.block_cols(), 2);
    assert_eq!(bbc.block_count(), 3);
    assert_eq!(bbc.nnz(), 8);
}

#[test]
fn csr_roundtrip() {
    let csr = sample();
    assert_eq!(BbcMatrix::from_csr(&csr).to_csr(), csr);
}

#[test]
fn empty_block_row_has_no_blocks() {
    let bbc = BbcMatrix::from_csr(&sample());
    assert!(bbc.blocks_in_row(1).is_empty());
    assert_eq!(bbc.blocks_in_row(0).len(), 2);
}

#[test]
fn find_block_hits_and_misses() {
    let bbc = BbcMatrix::from_csr(&sample());
    assert!(bbc.find_block(0, 0).is_some());
    assert!(bbc.find_block(0, 1).is_some());
    assert!(bbc.find_block(1, 0).is_none());
    assert!(bbc.find_block(2, 1).is_none());
}

#[test]
fn block_view_coordinates() {
    let bbc = BbcMatrix::from_csr(&sample());
    let i = bbc.find_block(2, 0).unwrap();
    let b = bbc.block(i);
    assert_eq!(b.block_row, 2);
    assert_eq!(b.block_col, 0);
    assert_eq!(b.nnz(), 2);
    assert_eq!(b.tile_count(), 2);
}

#[test]
fn tile_mask_and_get() {
    let bbc = BbcMatrix::from_csr(&sample());
    let b = bbc.block(bbc.find_block(0, 0).unwrap());
    // (0,0) and (3,3) live in tile (0,0): bits 0 and 15.
    assert_eq!(b.tile_mask(0, 0), (1 << 0) | (1 << 15));
    // (0,5) lives in tile (0,1), element (0,1): bit 1.
    assert_eq!(b.tile_mask(0, 1), 1 << 1);
    // (7,14) lives in tile (1,3), element (3,2): bit 14.
    assert_eq!(b.tile_mask(1, 3), 1 << 14);
    assert_eq!(b.tile_mask(2, 2), 0);
    assert_eq!(b.get(0, 0), Some(1.0));
    assert_eq!(b.get(3, 3), Some(3.0));
    assert_eq!(b.get(0, 5), Some(2.0));
    assert_eq!(b.get(7, 14), Some(4.0));
    assert_eq!(b.get(1, 1), None);
    assert_eq!(b.get(8, 8), None);
}

#[test]
fn matrix_get_matches_csr() {
    let csr = sample();
    let bbc = BbcMatrix::from_csr(&csr);
    for r in 0..csr.nrows() {
        for c in 0..csr.ncols() {
            assert_eq!(bbc.get(r, c), csr.get(r, c), "({r},{c})");
        }
    }
}

#[test]
fn element_rows_expand_two_level_bitmap() {
    let bbc = BbcMatrix::from_csr(&sample());
    let b = bbc.block(bbc.find_block(0, 1).unwrap());
    let rows = b.element_rows();
    // (2,17) -> local (2,1); (15,31) -> local (15,15)
    assert_eq!(rows[2], 1 << 1);
    assert_eq!(rows[15], 1 << 15);
    for (r, &m) in rows.iter().enumerate() {
        if r != 2 && r != 15 {
            assert_eq!(m, 0, "row {r}");
        }
    }
}

#[test]
fn values_ordered_tile_major() {
    // Two entries in different tiles of one block: tile order must win over
    // row order.
    let csr = csr_from(&[(0, 5, 10.0), (1, 1, 20.0)], 16, 16);
    let bbc = BbcMatrix::from_csr(&csr);
    let b = bbc.block(0);
    // tile (0,0) holds (1,1); tile (0,1) holds (0,5). Tile-major order puts
    // 20.0 first.
    assert_eq!(b.values, &[20.0, 10.0]);
    assert_eq!(b.valptr_lv2, &[0, 1]);
}

#[test]
fn empty_matrix_has_one_grid_cell() {
    let csr = CsrMatrix::zeros(0, 0);
    let bbc = BbcMatrix::from_csr(&csr);
    assert_eq!(bbc.block_count(), 0);
    assert_eq!(bbc.nnz(), 0);
    assert_eq!(bbc.to_csr().nnz(), 0);
}

#[test]
fn dense_block_stores_all_tiles() {
    let mut coo = CooMatrix::new(16, 16);
    for r in 0..16 {
        for c in 0..16 {
            coo.push(r, c, (r * 16 + c) as f64);
        }
    }
    let bbc = BbcMatrix::from_csr(&CsrMatrix::try_from(coo).unwrap());
    assert_eq!(bbc.block_count(), 1);
    assert_eq!(bbc.tile_count(), 16);
    let b = bbc.block(0);
    assert_eq!(b.bitmap_lv1, u16::MAX);
    assert!(b.bitmap_lv2.iter().all(|&m| m == u16::MAX));
    assert_eq!(b.get(9, 9), Some((9 * 16 + 9) as f64));
}

#[test]
fn nnz_per_block_and_tile() {
    let bbc = BbcMatrix::from_csr(&sample());
    assert!((bbc.nnz_per_block() - 8.0 / 3.0).abs() < 1e-12);
    assert!((bbc.nnz_per_tile() - 8.0 / 7.0).abs() < 1e-12);
}

#[test]
fn tile_values_follow_valptr_lv2() {
    let bbc = BbcMatrix::from_csr(&sample());
    let b = bbc.block(bbc.find_block(0, 0).unwrap());
    // Tile (0,0) holds entries (0,0)=1.0 and (3,3)=3.0 in row-major order.
    assert_eq!(b.tile_values(0, 0), &[1.0, 3.0]);
    assert_eq!(b.tile_values(0, 1), &[2.0]);
    assert_eq!(b.tile_values(1, 3), &[4.0]);
    assert!(b.tile_values(2, 2).is_empty());
}

#[test]
fn dense_tile_expands_with_zeros() {
    let bbc = BbcMatrix::from_csr(&sample());
    let b = bbc.block(bbc.find_block(0, 0).unwrap());
    let t = b.dense_tile(0, 0);
    assert_eq!(t[0], 1.0); // element (0,0)
    assert_eq!(t[15], 3.0); // element (3,3)
    assert_eq!(t.iter().filter(|v| **v != 0.0).count(), 2);
    assert_eq!(b.dense_tile(2, 2), [0.0; 16]);
}

#[test]
fn io_roundtrip() {
    let bbc = BbcMatrix::from_csr(&sample());
    let mut buf = Vec::new();
    bbc.write_bbc(&mut buf).unwrap();
    let back = read_bbc(buf.as_slice()).unwrap();
    assert_eq!(back, bbc);
}

#[test]
fn io_rejects_bad_magic() {
    let err = read_bbc(&b"XXXX"[..]).unwrap_err();
    assert!(matches!(err, crate::FormatError::CorruptStream { .. }));
}

#[test]
fn io_rejects_truncation() {
    let bbc = BbcMatrix::from_csr(&sample());
    let mut buf = Vec::new();
    bbc.write_bbc(&mut buf).unwrap();
    for cut in [3, 20, buf.len() / 2, buf.len() - 1] {
        let err = read_bbc(&buf[..cut]).unwrap_err();
        assert!(matches!(err, crate::FormatError::CorruptStream { .. }), "cut {cut}");
    }
}

#[test]
fn io_rejects_inconsistent_bitmaps() {
    let bbc = BbcMatrix::from_csr(&sample());
    let mut buf = Vec::new();
    bbc.write_bbc(&mut buf).unwrap();
    // Flip a bit in the first bitmap_lv1 word: popcounts no longer match.
    let lv1_off = 4 + 8 * 8 + 8 * (bbc.block_rows() + 1) + 4 * bbc.block_count();
    buf[lv1_off] ^= 0x40;
    let err = read_bbc(buf.as_slice()).unwrap_err();
    assert!(matches!(err, crate::FormatError::CorruptStream { .. }));
}

#[test]
fn metadata_bytes_formula() {
    use crate::StorageSize;
    let bbc = BbcMatrix::from_csr(&sample());
    let expect = 4 * 4 + 4 * 3 + 2 * 3 + 4 * 3 + 2 * 7 + 2 * 7;
    assert_eq!(bbc.metadata_bytes(), expect);
    assert_eq!(bbc.value_bytes(), 64);
}

#[test]
fn block_iteration_covers_all_entries() {
    let csr = sample();
    let bbc = BbcMatrix::from_csr(&csr);
    let mut n = 0;
    for b in bbc.blocks() {
        for (r, c, v) in b.iter() {
            assert_eq!(csr.get(r, c), Some(v));
            n += 1;
        }
    }
    assert_eq!(n, csr.nnz());
}
