//! One-time software encoding of a matrix into BBC form.
//!
//! The paper stresses that BBC indexing is "offloaded to a one-time software
//! encoding" whose cost is amortised across kernel invocations (Section
//! IV-D / VI-B). This module is that encoder.

use super::{BbcMatrix, BLOCK_DIM, TILE_DIM};
use crate::CsrMatrix;

impl BbcMatrix {
    /// Encodes a CSR matrix into BBC form.
    ///
    /// The encoding is a single pass per block row: entries are bucketed
    /// into 16x16 blocks, each block's two-level bitmap is derived, and
    /// values are re-ordered tile-by-tile.
    pub fn from_csr(csr: &CsrMatrix) -> Self {
        let nrows = csr.nrows();
        let ncols = csr.ncols();
        let block_rows = nrows.div_ceil(BLOCK_DIM).max(1);
        let block_cols = ncols.div_ceil(BLOCK_DIM).max(1);

        let mut row_ptr = vec![0usize; block_rows + 1];
        let mut col_idx: Vec<u32> = Vec::new();
        let mut bitmap_lv1: Vec<u16> = Vec::new();
        let mut tile_ptr: Vec<usize> = vec![0];
        let mut bitmap_lv2: Vec<u16> = Vec::new();
        let mut valptr_lv1: Vec<u32> = Vec::new();
        let mut valptr_lv2: Vec<u16> = Vec::new();
        let mut values: Vec<f64> = Vec::with_capacity(csr.nnz());

        // Scratch: per block in this block-row, the block column plus its
        // entries keyed by (tile_bit, elem_bit) for ordering.
        type BlockEntries = (u32, Vec<(u8, u8, f64)>);
        let mut scratch: Vec<BlockEntries> = Vec::new();

        for br in 0..block_rows {
            scratch.clear();
            let r_lo = br * BLOCK_DIM;
            let r_hi = ((br + 1) * BLOCK_DIM).min(nrows);
            for r in r_lo..r_hi {
                let (cols, vals) = csr.row(r);
                for (&c, &v) in cols.iter().zip(vals) {
                    let bc = c / BLOCK_DIM as u32;
                    let pos = match scratch.binary_search_by_key(&bc, |e| e.0) {
                        Ok(p) => p,
                        Err(p) => {
                            scratch.insert(p, (bc, Vec::new()));
                            p
                        }
                    };
                    let lr = r - r_lo;
                    let lc = c as usize - bc as usize * BLOCK_DIM;
                    let tile_bit = (lr / TILE_DIM) * TILE_DIM + lc / TILE_DIM;
                    let elem_bit = (lr % TILE_DIM) * TILE_DIM + lc % TILE_DIM;
                    scratch[pos].1.push((tile_bit as u8, elem_bit as u8, v));
                }
            }
            for (bc, entries) in scratch.iter_mut() {
                let mut entries = std::mem::take(entries);
                entries.sort_unstable_by_key(|&(t, e, _)| (t, e));
                col_idx.push(*bc);
                valptr_lv1.push(values.len() as u32);
                let mut lv1 = 0u16;
                let block_base = values.len();
                let mut cur_tile: Option<u8> = None;
                for (t, e, v) in entries {
                    debug_assert!(e < 16);
                    if cur_tile != Some(t) {
                        cur_tile = Some(t);
                        lv1 |= 1 << t;
                        bitmap_lv2.push(0);
                        valptr_lv2.push((values.len() - block_base) as u16);
                    }
                    *bitmap_lv2.last_mut().expect("tile record pushed above") |= 1 << e;
                    values.push(v);
                }
                bitmap_lv1.push(lv1);
                tile_ptr.push(bitmap_lv2.len());
            }
            row_ptr[br + 1] = col_idx.len();
        }

        BbcMatrix {
            nrows,
            ncols,
            block_rows,
            block_cols,
            row_ptr,
            col_idx,
            bitmap_lv1,
            tile_ptr,
            bitmap_lv2,
            valptr_lv1,
            valptr_lv2,
            values,
        }
    }
}
