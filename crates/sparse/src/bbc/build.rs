//! One-time software encoding of a matrix into BBC form.
//!
//! The paper stresses that BBC indexing is "offloaded to a one-time software
//! encoding" whose cost is amortised across kernel invocations (Section
//! IV-D / VI-B). This module is that encoder.
//!
//! Two encoding strategies exist, selected by the active kernel backend
//! (see [`crate::kernels`]):
//!
//! * **scalar** — the original per-entry path: bucket entries into
//!   per-block vectors, sort by (tile, elem), emit.
//! * **bitwise / simd** — a packed path: each touched block accumulates
//!   a 256-bit occupancy mask (4×u64, bit `tile * 16 + elem`) plus a
//!   direct-indexed value scratch; metadata falls out of
//!   [`crate::kernels::BitKernels::encode_block`] (SWAR lane extraction +
//!   `count_ones` prefix sums) and values are emitted by ascending
//!   set-bit iteration — no sorting, no binary-search inserts.
//!
//! Both paths produce identical `BbcMatrix` contents (ascending bit
//! order *is* the (tile, elem) sort order); the conformance
//! backend-equivalence sweep asserts this with `PartialEq`.

use super::{BbcMatrix, BLOCK_DIM, TILE_DIM, TILES_PER_BLOCK};
use crate::kernels::{self, BackendKind, BitKernels};
use crate::CsrMatrix;

/// The packed encoder keeps ~2 KiB of scratch per block column; above
/// this many block columns (≈16 MiB) it falls back to the scalar path,
/// whose scratch is proportional to the block row's nonzeros instead.
const PACKED_BLOCK_COL_LIMIT: usize = 1 << 13;

/// Bits in a block occupancy mask (16 tiles × 16 elements).
const BLOCK_BITS: usize = TILES_PER_BLOCK * TILES_PER_BLOCK;

impl BbcMatrix {
    /// Encodes a CSR matrix into BBC form using the active kernel
    /// backend (see [`crate::kernels::active_kind`]).
    pub fn from_csr(csr: &CsrMatrix) -> Self {
        Self::from_csr_with(csr, kernels::active_kind())
    }

    /// Encodes a CSR matrix into BBC form with an explicit backend
    /// choice. All backends produce identical output; they differ only
    /// in how the per-block bitmaps and value order are derived.
    pub fn from_csr_with(csr: &CsrMatrix, kind: BackendKind) -> Self {
        let block_cols = csr.ncols().div_ceil(BLOCK_DIM).max(1);
        match kind {
            BackendKind::Scalar => Self::from_csr_scalar(csr),
            _ if block_cols > PACKED_BLOCK_COL_LIMIT => Self::from_csr_scalar(csr),
            kind => Self::from_csr_packed(csr, kernels::backend_for(kind)),
        }
    }

    /// The original per-entry encoder: a single pass per block row;
    /// entries are bucketed into 16x16 blocks, each block's two-level
    /// bitmap is derived, and values are re-ordered tile-by-tile.
    fn from_csr_scalar(csr: &CsrMatrix) -> Self {
        let nrows = csr.nrows();
        let ncols = csr.ncols();
        let block_rows = nrows.div_ceil(BLOCK_DIM).max(1);
        let block_cols = ncols.div_ceil(BLOCK_DIM).max(1);

        let mut row_ptr = vec![0usize; block_rows + 1];
        let mut col_idx: Vec<u32> = Vec::new();
        let mut bitmap_lv1: Vec<u16> = Vec::new();
        let mut tile_ptr: Vec<usize> = vec![0];
        let mut bitmap_lv2: Vec<u16> = Vec::new();
        let mut valptr_lv1: Vec<u32> = Vec::new();
        let mut valptr_lv2: Vec<u16> = Vec::new();
        let mut values: Vec<f64> = Vec::with_capacity(csr.nnz());

        // Scratch: per block in this block-row, the block column plus its
        // entries keyed by (tile_bit, elem_bit) for ordering.
        type BlockEntries = (u32, Vec<(u8, u8, f64)>);
        let mut scratch: Vec<BlockEntries> = Vec::new();

        for br in 0..block_rows {
            scratch.clear();
            let r_lo = br * BLOCK_DIM;
            let r_hi = ((br + 1) * BLOCK_DIM).min(nrows);
            for r in r_lo..r_hi {
                let (cols, vals) = csr.row(r);
                for (&c, &v) in cols.iter().zip(vals) {
                    let bc = c / BLOCK_DIM as u32;
                    let pos = match scratch.binary_search_by_key(&bc, |e| e.0) {
                        Ok(p) => p,
                        Err(p) => {
                            scratch.insert(p, (bc, Vec::new()));
                            p
                        }
                    };
                    let lr = r - r_lo;
                    let lc = c as usize - bc as usize * BLOCK_DIM;
                    let tile_bit = (lr / TILE_DIM) * TILE_DIM + lc / TILE_DIM;
                    let elem_bit = (lr % TILE_DIM) * TILE_DIM + lc % TILE_DIM;
                    scratch[pos].1.push((tile_bit as u8, elem_bit as u8, v));
                }
            }
            for (bc, entries) in scratch.iter_mut() {
                let mut entries = std::mem::take(entries);
                entries.sort_unstable_by_key(|&(t, e, _)| (t, e));
                col_idx.push(*bc);
                valptr_lv1.push(values.len() as u32);
                let mut lv1 = 0u16;
                let block_base = values.len();
                let mut cur_tile: Option<u8> = None;
                for (t, e, v) in entries {
                    debug_assert!(e < 16);
                    if cur_tile != Some(t) {
                        cur_tile = Some(t);
                        lv1 |= 1 << t;
                        bitmap_lv2.push(0);
                        valptr_lv2.push((values.len() - block_base) as u16);
                    }
                    *bitmap_lv2.last_mut().expect("tile record pushed above") |= 1 << e;
                    values.push(v);
                }
                bitmap_lv1.push(lv1);
                tile_ptr.push(bitmap_lv2.len());
            }
            row_ptr[br + 1] = col_idx.len();
        }

        BbcMatrix {
            nrows,
            ncols,
            block_rows,
            block_cols,
            row_ptr,
            col_idx,
            bitmap_lv1,
            tile_ptr,
            bitmap_lv2,
            valptr_lv1,
            valptr_lv2,
            values,
        }
    }

    /// The packed encoder: per block row, entries set bits in a 256-bit
    /// occupancy mask (one per touched block column) and drop their
    /// value into a direct-indexed slot; emission walks the touched
    /// columns in ascending order (a word bitset), derives metadata via
    /// `encode_block`, and streams values out by ascending set bit.
    fn from_csr_packed(csr: &CsrMatrix, be: &dyn BitKernels) -> Self {
        let nrows = csr.nrows();
        let ncols = csr.ncols();
        let block_rows = nrows.div_ceil(BLOCK_DIM).max(1);
        let block_cols = ncols.div_ceil(BLOCK_DIM).max(1);

        let mut row_ptr = vec![0usize; block_rows + 1];
        let mut col_idx: Vec<u32> = Vec::new();
        let mut bitmap_lv1: Vec<u16> = Vec::new();
        let mut tile_ptr: Vec<usize> = vec![0];
        let mut bitmap_lv2: Vec<u16> = Vec::new();
        let mut valptr_lv1: Vec<u32> = Vec::new();
        let mut valptr_lv2: Vec<u16> = Vec::new();
        let mut values: Vec<f64> = Vec::with_capacity(csr.nnz());

        // Per-block-column scratch, reused across block rows. Value
        // slots are only read where the (freshly cleared) mask has a
        // bit set, so they never need zeroing.
        let mut masks: Vec<[u64; 4]> = vec![[0u64; 4]; block_cols];
        let mut slot_vals: Vec<f64> = vec![0.0; block_cols * BLOCK_BITS];
        let mut touched = vec![0u64; block_cols.div_ceil(64)];
        let mut touched_cols: Vec<u32> = Vec::new();
        let mut block_bits: Vec<u32> = Vec::with_capacity(BLOCK_BITS);

        for br in 0..block_rows {
            let r_lo = br * BLOCK_DIM;
            let r_hi = ((br + 1) * BLOCK_DIM).min(nrows);
            for r in r_lo..r_hi {
                let (cols, vals) = csr.row(r);
                for (&c, &v) in cols.iter().zip(vals) {
                    let bc = (c / BLOCK_DIM as u32) as usize;
                    let lr = r - r_lo;
                    let lc = c as usize - bc * BLOCK_DIM;
                    let tile_bit = (lr / TILE_DIM) * TILE_DIM + lc / TILE_DIM;
                    let elem_bit = (lr % TILE_DIM) * TILE_DIM + lc % TILE_DIM;
                    let bit = tile_bit * TILES_PER_BLOCK + elem_bit;
                    masks[bc][bit / 64] |= 1u64 << (bit % 64);
                    slot_vals[bc * BLOCK_BITS + bit] = v;
                    touched[bc / 64] |= 1u64 << (bc % 64);
                }
            }

            touched_cols.clear();
            be.collect_set_bits(&touched, block_cols, &mut touched_cols);
            for &bc in &touched_cols {
                let bc = bc as usize;
                let meta = be.encode_block(&masks[bc]);
                col_idx.push(bc as u32);
                valptr_lv1.push(values.len() as u32);
                bitmap_lv1.push(meta.lv1);
                bitmap_lv2.extend_from_slice(&meta.lv2[..meta.tiles]);
                valptr_lv2.extend_from_slice(&meta.valptr[..meta.tiles]);
                tile_ptr.push(bitmap_lv2.len());

                // Ascending (tile*16 + elem) bit order == the (tile,
                // elem) sort order of the scalar path.
                block_bits.clear();
                be.collect_set_bits(&masks[bc], BLOCK_BITS, &mut block_bits);
                let base = bc * BLOCK_BITS;
                values.extend(block_bits.iter().map(|&b| slot_vals[base + b as usize]));

                masks[bc] = [0u64; 4];
            }
            for w in touched.iter_mut() {
                *w = 0;
            }
            row_ptr[br + 1] = col_idx.len();
        }

        BbcMatrix {
            nrows,
            ncols,
            block_rows,
            block_cols,
            row_ptr,
            col_idx,
            bitmap_lv1,
            tile_ptr,
            bitmap_lv2,
            valptr_lv1,
            valptr_lv2,
            values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn sample(seed: u64) -> CsrMatrix {
        let mut rng = crate::rng::Rng64::new(seed);
        let mut coo = CooMatrix::new(70, 53);
        for _ in 0..400 {
            let r = (rng.next_u64() % 70) as usize;
            let c = (rng.next_u64() % 53) as usize;
            coo.push(r, c, (rng.next_u64() % 1000) as f64 - 500.0);
        }
        CsrMatrix::try_from(coo).expect("valid sample")
    }

    #[test]
    fn packed_encoder_matches_scalar_encoder() {
        for seed in 0..6 {
            let csr = sample(seed);
            let scalar = BbcMatrix::from_csr_with(&csr, BackendKind::Scalar);
            let bitwise = BbcMatrix::from_csr_with(&csr, BackendKind::Bitwise);
            assert_eq!(scalar, bitwise, "seed {seed}");
            #[cfg(feature = "simd")]
            assert_eq!(
                scalar,
                BbcMatrix::from_csr_with(&csr, BackendKind::Simd),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn packed_encoder_matches_on_degenerate_shapes() {
        for csr in [
            CsrMatrix::identity(0),
            CsrMatrix::identity(1),
            CsrMatrix::identity(16),
            CsrMatrix::identity(17),
        ] {
            assert_eq!(
                BbcMatrix::from_csr_with(&csr, BackendKind::Scalar),
                BbcMatrix::from_csr_with(&csr, BackendKind::Bitwise),
            );
        }
    }
}
