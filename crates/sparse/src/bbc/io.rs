//! Binary file I/O for BBC matrices.
//!
//! The paper notes that the one-time BBC construction cost "can be entirely
//! eliminated for frequently used matrices by saving and reloading them via
//! implemented file I/O function" (Section IV-D). This module implements
//! that function: a self-describing little-endian stream with a magic tag
//! and explicit array lengths.
//!
//! Two stream versions exist:
//!
//! * **`BBC2`** (written by [`BbcMatrix::write_bbc`]) — every section
//!   (header and each storage array) is followed by its IEEE CRC-32, so
//!   payload corruption is detected before the decoder trusts the bytes.
//! * **`BBC1`** (legacy) — identical layout without the per-section CRCs;
//!   still readable for backwards compatibility.
//!
//! Regardless of version, every decoded matrix passes
//! [`BbcMatrix::validate`] before it is returned, so no stream — corrupt,
//! truncated or adversarial — can hand out an inconsistent matrix.

use std::io::{Read, Write};

use super::BbcMatrix;
use crate::FormatError;

const MAGIC_V1: &[u8; 4] = b"BBC1";
const MAGIC_V2: &[u8; 4] = b"BBC2";

/// Incremental IEEE CRC-32 (reflected polynomial 0xEDB88320), bitwise —
/// no lookup table, no external dependency.
struct Crc32(u32);

impl Crc32 {
    fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u32::from(b);
            for _ in 0..8 {
                let mask = (self.0 & 1).wrapping_neg();
                self.0 = (self.0 >> 1) ^ (0xEDB8_8320 & mask);
            }
        }
    }

    fn finish(&self) -> u32 {
        !self.0
    }
}

/// A writer that accumulates a CRC over each section and appends it on
/// [`CrcWriter::end_section`].
struct CrcWriter<W: Write> {
    inner: W,
    crc: Crc32,
}

impl<W: Write> CrcWriter<W> {
    fn put(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.crc.update(bytes);
        self.inner.write_all(bytes)
    }

    fn end_section(&mut self) -> std::io::Result<()> {
        let sum = self.crc.finish();
        self.crc = Crc32::new();
        self.inner.write_all(&sum.to_le_bytes())
    }
}

/// A reader that accumulates a CRC over each section and, for v2 streams,
/// verifies the stored checksum on [`CrcReader::end_section`].
struct CrcReader<R: Read> {
    inner: R,
    crc: Crc32,
    /// v2 streams carry per-section checksums; v1 streams do not.
    checked: bool,
}

impl<R: Read> CrcReader<R> {
    fn take(&mut self, buf: &mut [u8]) -> std::io::Result<()> {
        self.inner.read_exact(buf)?;
        self.crc.update(buf);
        Ok(())
    }

    fn take_u64(&mut self) -> std::io::Result<u64> {
        let mut b = [0u8; 8];
        self.take(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    fn end_section(&mut self, section: &'static str) -> Result<(), FormatError> {
        let sum = self.crc.finish();
        self.crc = Crc32::new();
        if !self.checked {
            return Ok(());
        }
        let mut b = [0u8; 4];
        self.inner
            .read_exact(&mut b)
            .map_err(|_| FormatError::CorruptStream { detail: section })?;
        if u32::from_le_bytes(b) != sum {
            return Err(FormatError::CorruptStream { detail: section });
        }
        Ok(())
    }
}

impl BbcMatrix {
    /// Serialises the matrix to `w` in the `BBC2` binary stream format
    /// (per-section CRC-32 checksums).
    ///
    /// Pass `&mut writer` to keep using the writer afterwards.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from the underlying writer.
    pub fn write_bbc<W: Write>(&self, w: W) -> std::io::Result<()> {
        let mut w = CrcWriter { inner: w, crc: Crc32::new() };
        w.inner.write_all(MAGIC_V2)?;
        for v in [
            self.nrows as u64,
            self.ncols as u64,
            self.block_rows as u64,
            self.block_cols as u64,
            self.row_ptr.len() as u64,
            self.col_idx.len() as u64,
            self.bitmap_lv2.len() as u64,
            self.values.len() as u64,
        ] {
            w.put(&v.to_le_bytes())?;
        }
        w.end_section()?;
        for &p in &self.row_ptr {
            w.put(&(p as u64).to_le_bytes())?;
        }
        w.end_section()?;
        for &c in &self.col_idx {
            w.put(&c.to_le_bytes())?;
        }
        w.end_section()?;
        for &b in &self.bitmap_lv1 {
            w.put(&b.to_le_bytes())?;
        }
        w.end_section()?;
        for &p in &self.valptr_lv1 {
            w.put(&p.to_le_bytes())?;
        }
        w.end_section()?;
        for &b in &self.bitmap_lv2 {
            w.put(&b.to_le_bytes())?;
        }
        w.end_section()?;
        for &p in &self.valptr_lv2 {
            w.put(&p.to_le_bytes())?;
        }
        w.end_section()?;
        for &v in &self.values {
            w.put(&v.to_le_bytes())?;
        }
        w.end_section()
    }
}

/// Deserialises a BBC matrix previously written with
/// [`BbcMatrix::write_bbc`]. Accepts both the current `BBC2` streams
/// (per-section CRC-32) and legacy `BBC1` streams (no checksums). Pass
/// `&mut reader` to keep using the reader afterwards.
///
/// # Errors
///
/// Returns [`FormatError::CorruptStream`] on a bad magic tag, truncated
/// stream, checksum mismatch, implausible header, or when the decoded
/// arrays fail [`BbcMatrix::validate`].
pub fn read_bbc<R: Read>(r: R) -> Result<BbcMatrix, FormatError> {
    let corrupt = |detail| FormatError::CorruptStream { detail };
    let mut r = CrcReader { inner: r, crc: Crc32::new(), checked: false };
    let mut magic = [0u8; 4];
    r.inner.read_exact(&mut magic).map_err(|_| corrupt("truncated magic"))?;
    r.checked = match &magic {
        m if m == MAGIC_V2 => true,
        m if m == MAGIC_V1 => false,
        _ => return Err(corrupt("bad magic")),
    };

    let mut hdr = [0u64; 8];
    for h in hdr.iter_mut() {
        *h = r.take_u64().map_err(|_| corrupt("truncated header"))?;
    }
    r.end_section("header checksum mismatch")?;
    let [nrows, ncols, block_rows, block_cols, n_rowptr, n_blocks, n_tiles, n_vals] = hdr;

    // Semantic cross-validation of the header *before* trusting any length
    // for allocation: the block grid must match the logical dimensions and
    // every count must fit inside the structure above it.
    if block_rows != (nrows.div_ceil(16)).max(1) || block_cols != (ncols.div_ceil(16)).max(1) {
        return Err(corrupt("block grid inconsistent with dimensions"));
    }
    if n_rowptr != block_rows + 1 {
        return Err(corrupt("row_ptr length != block_rows + 1"));
    }
    if n_blocks > block_rows.saturating_mul(block_cols) {
        return Err(corrupt("more stored blocks than grid cells"));
    }
    if n_tiles > n_blocks.saturating_mul(16) {
        return Err(corrupt("more stored tiles than 16 per block"));
    }
    if n_vals > n_tiles.saturating_mul(16) {
        return Err(corrupt("more values than 16 per tile"));
    }
    // Never trust a header length for pre-allocation beyond a modest cap —
    // the read loops grow vectors as real bytes arrive, so a lying header
    // against a short stream errors without allocating.
    const CAP: usize = 1 << 16;
    let clamp = |n: u64| (n as usize).min(CAP);

    let mut row_ptr = Vec::with_capacity(clamp(n_rowptr));
    for _ in 0..n_rowptr {
        row_ptr.push(r.take_u64().map_err(|_| corrupt("truncated row_ptr"))? as usize);
    }
    r.end_section("row_ptr checksum mismatch")?;
    let mut col_idx = Vec::with_capacity(clamp(n_blocks));
    for _ in 0..n_blocks {
        let mut b = [0u8; 4];
        r.take(&mut b).map_err(|_| corrupt("truncated col_idx"))?;
        col_idx.push(u32::from_le_bytes(b));
    }
    r.end_section("col_idx checksum mismatch")?;
    let mut bitmap_lv1 = Vec::with_capacity(clamp(n_blocks));
    for _ in 0..n_blocks {
        let mut b = [0u8; 2];
        r.take(&mut b).map_err(|_| corrupt("truncated bitmap_lv1"))?;
        bitmap_lv1.push(u16::from_le_bytes(b));
    }
    r.end_section("bitmap_lv1 checksum mismatch")?;
    let mut valptr_lv1 = Vec::with_capacity(clamp(n_blocks));
    for _ in 0..n_blocks {
        let mut b = [0u8; 4];
        r.take(&mut b).map_err(|_| corrupt("truncated valptr_lv1"))?;
        valptr_lv1.push(u32::from_le_bytes(b));
    }
    r.end_section("valptr_lv1 checksum mismatch")?;
    let mut bitmap_lv2 = Vec::with_capacity(clamp(n_tiles));
    for _ in 0..n_tiles {
        let mut b = [0u8; 2];
        r.take(&mut b).map_err(|_| corrupt("truncated bitmap_lv2"))?;
        bitmap_lv2.push(u16::from_le_bytes(b));
    }
    r.end_section("bitmap_lv2 checksum mismatch")?;
    let mut valptr_lv2 = Vec::with_capacity(clamp(n_tiles));
    for _ in 0..n_tiles {
        let mut b = [0u8; 2];
        r.take(&mut b).map_err(|_| corrupt("truncated valptr_lv2"))?;
        valptr_lv2.push(u16::from_le_bytes(b));
    }
    r.end_section("valptr_lv2 checksum mismatch")?;
    let mut values = Vec::with_capacity(clamp(n_vals));
    for _ in 0..n_vals {
        let mut b = [0u8; 8];
        r.take(&mut b).map_err(|_| corrupt("truncated values"))?;
        values.push(f64::from_le_bytes(b));
    }
    r.end_section("values checksum mismatch")?;

    // Re-derive tile_ptr, then run the full deep validation so a decoded
    // matrix upholds every encoder invariant.
    let mut tile_ptr = Vec::with_capacity(clamp(n_blocks) + 1);
    tile_ptr.push(0usize);
    let mut running = 0usize;
    for &lv1 in &bitmap_lv1 {
        running += lv1.count_ones() as usize;
        tile_ptr.push(running);
    }
    let m = BbcMatrix {
        nrows: nrows as usize,
        ncols: ncols as usize,
        block_rows: block_rows as usize,
        block_cols: block_cols as usize,
        row_ptr,
        col_idx,
        bitmap_lv1,
        tile_ptr,
        bitmap_lv2,
        valptr_lv1,
        valptr_lv2,
        values,
    };
    m.validate().map_err(|_| corrupt("stream decodes to an inconsistent matrix"))?;
    Ok(m)
}
