//! Binary file I/O for BBC matrices.
//!
//! The paper notes that the one-time BBC construction cost "can be entirely
//! eliminated for frequently used matrices by saving and reloading them via
//! implemented file I/O function" (Section IV-D). This module implements
//! that function: a self-describing little-endian stream with a magic tag
//! and explicit array lengths.

use std::io::{Read, Write};

use super::BbcMatrix;
use crate::FormatError;

const MAGIC: &[u8; 4] = b"BBC1";

fn write_u64<W: Write>(w: &mut W, v: u64) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64<R: Read>(r: &mut R) -> std::io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

impl BbcMatrix {
    /// Serialises the matrix to `w` in the BBC binary stream format.
    ///
    /// Pass `&mut writer` to keep using the writer afterwards.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from the underlying writer.
    pub fn write_bbc<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        w.write_all(MAGIC)?;
        for v in [
            self.nrows as u64,
            self.ncols as u64,
            self.block_rows as u64,
            self.block_cols as u64,
            self.row_ptr.len() as u64,
            self.col_idx.len() as u64,
            self.bitmap_lv2.len() as u64,
            self.values.len() as u64,
        ] {
            write_u64(&mut w, v)?;
        }
        for &p in &self.row_ptr {
            write_u64(&mut w, p as u64)?;
        }
        for &c in &self.col_idx {
            w.write_all(&c.to_le_bytes())?;
        }
        for &b in &self.bitmap_lv1 {
            w.write_all(&b.to_le_bytes())?;
        }
        for &p in &self.valptr_lv1 {
            w.write_all(&p.to_le_bytes())?;
        }
        for &b in &self.bitmap_lv2 {
            w.write_all(&b.to_le_bytes())?;
        }
        for &p in &self.valptr_lv2 {
            w.write_all(&p.to_le_bytes())?;
        }
        for &v in &self.values {
            w.write_all(&v.to_le_bytes())?;
        }
        Ok(())
    }
}

/// Deserialises a BBC matrix previously written with
/// [`BbcMatrix::write_bbc`]. Pass `&mut reader` to keep using the reader
/// afterwards.
///
/// # Errors
///
/// Returns [`FormatError::CorruptStream`] on a bad magic tag, truncated
/// stream, or internally inconsistent arrays.
pub fn read_bbc<R: Read>(mut r: R) -> Result<BbcMatrix, FormatError> {
    let corrupt = |detail| FormatError::CorruptStream { detail };
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic).map_err(|_| corrupt("truncated magic"))?;
    if &magic != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let mut hdr = [0u64; 8];
    for h in hdr.iter_mut() {
        *h = read_u64(&mut r).map_err(|_| corrupt("truncated header"))?;
    }
    let [nrows, ncols, block_rows, block_cols, n_rowptr, n_blocks, n_tiles, n_vals] = hdr;
    if n_rowptr != block_rows + 1 {
        return Err(corrupt("row_ptr length != block_rows + 1"));
    }
    // Guard against absurd allocations from corrupt headers: never trust a
    // header length for pre-allocation beyond a modest cap — the read loop
    // grows vectors as real bytes arrive, and truncation errors naturally.
    if n_vals > (1 << 40) || n_blocks > (1 << 40) || n_tiles > (1 << 40) {
        return Err(corrupt("implausible array length"));
    }
    const CAP: usize = 1 << 16;
    let clamp = |n: u64| (n as usize).min(CAP);

    let mut row_ptr = Vec::with_capacity(clamp(n_rowptr));
    for _ in 0..n_rowptr {
        row_ptr.push(read_u64(&mut r).map_err(|_| corrupt("truncated row_ptr"))? as usize);
    }
    let mut col_idx = Vec::with_capacity(clamp(n_blocks));
    for _ in 0..n_blocks {
        let mut b = [0u8; 4];
        r.read_exact(&mut b).map_err(|_| corrupt("truncated col_idx"))?;
        col_idx.push(u32::from_le_bytes(b));
    }
    let mut bitmap_lv1 = Vec::with_capacity(clamp(n_blocks));
    for _ in 0..n_blocks {
        let mut b = [0u8; 2];
        r.read_exact(&mut b).map_err(|_| corrupt("truncated bitmap_lv1"))?;
        bitmap_lv1.push(u16::from_le_bytes(b));
    }
    let mut valptr_lv1 = Vec::with_capacity(clamp(n_blocks));
    for _ in 0..n_blocks {
        let mut b = [0u8; 4];
        r.read_exact(&mut b).map_err(|_| corrupt("truncated valptr_lv1"))?;
        valptr_lv1.push(u32::from_le_bytes(b));
    }
    let mut bitmap_lv2 = Vec::with_capacity(clamp(n_tiles));
    for _ in 0..n_tiles {
        let mut b = [0u8; 2];
        r.read_exact(&mut b).map_err(|_| corrupt("truncated bitmap_lv2"))?;
        bitmap_lv2.push(u16::from_le_bytes(b));
    }
    let mut valptr_lv2 = Vec::with_capacity(clamp(n_tiles));
    for _ in 0..n_tiles {
        let mut b = [0u8; 2];
        r.read_exact(&mut b).map_err(|_| corrupt("truncated valptr_lv2"))?;
        valptr_lv2.push(u16::from_le_bytes(b));
    }
    let mut values = Vec::with_capacity(clamp(n_vals));
    for _ in 0..n_vals {
        let mut b = [0u8; 8];
        r.read_exact(&mut b).map_err(|_| corrupt("truncated values"))?;
        values.push(f64::from_le_bytes(b));
    }

    // Re-derive tile_ptr and validate internal consistency.
    let mut tile_ptr = Vec::with_capacity(clamp(n_blocks) + 1);
    tile_ptr.push(0usize);
    let mut running = 0usize;
    for &lv1 in &bitmap_lv1 {
        running += lv1.count_ones() as usize;
        tile_ptr.push(running);
    }
    if running != bitmap_lv2.len() {
        return Err(corrupt("bitmap_lv1 popcount != bitmap_lv2 length"));
    }
    let elem_count: usize = bitmap_lv2.iter().map(|m| m.count_ones() as usize).sum();
    if elem_count != values.len() {
        return Err(corrupt("bitmap_lv2 popcount != values length"));
    }
    if row_ptr.first() != Some(&0) || row_ptr.last() != Some(&(n_blocks as usize)) {
        return Err(corrupt("row_ptr endpoints"));
    }
    if row_ptr.windows(2).any(|w| w[0] > w[1]) {
        return Err(corrupt("row_ptr not non-decreasing"));
    }
    // Block columns must be strictly increasing within each block row and
    // inside the grid; value pointers must be non-decreasing and in range.
    for w in row_ptr.windows(2) {
        let row = &col_idx[w[0]..w[1]];
        if row.windows(2).any(|p| p[0] >= p[1]) {
            return Err(corrupt("block columns not strictly increasing"));
        }
        if row.last().is_some_and(|&c| c as u64 >= block_cols) {
            return Err(corrupt("block column outside the grid"));
        }
    }
    if valptr_lv1.windows(2).any(|w| w[0] > w[1]) {
        return Err(corrupt("valptr_lv1 not non-decreasing"));
    }
    if valptr_lv1.last().is_some_and(|&p| p as usize > values.len()) {
        return Err(corrupt("valptr_lv1 outside the value array"));
    }

    Ok(BbcMatrix {
        nrows: nrows as usize,
        ncols: ncols as usize,
        block_rows: block_rows as usize,
        block_cols: block_cols as usize,
        row_ptr,
        col_idx,
        bitmap_lv1,
        tile_ptr,
        bitmap_lv2,
        valptr_lv1,
        valptr_lv2,
        values,
    })
}
