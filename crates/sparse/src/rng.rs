//! Deterministic pseudo-random numbers for workload generation and tests.
//!
//! The workspace builds in fully offline environments, so it carries no
//! external RNG dependency. [`Rng64`] is an xorshift64* generator: a tiny,
//! seedable, reproducible stream that is more than good enough for sparsity
//! patterns, value sampling and randomized test cases. It is **not**
//! cryptographic and must never be used where unpredictability matters.

/// A seedable xorshift64* pseudo-random number generator.
///
/// The same seed always yields the same stream, on every platform: matrix
/// generators and tests rely on this for reproducibility.
///
/// # Example
///
/// ```
/// use sparse::rng::Rng64;
///
/// let mut a = Rng64::new(42);
/// let mut b = Rng64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let f = a.next_f64();
/// assert!((0.0..1.0).contains(&f));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from a seed. A zero seed is remapped to a fixed
    /// nonzero constant (xorshift has an all-zero fixed point).
    pub fn new(seed: u64) -> Self {
        // SplitMix64 scramble so that small consecutive seeds (0, 1, 2, ...)
        // produce uncorrelated streams.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Rng64 { state: if z == 0 { 0x4D59_5DF4_D0F3_3173 } else { z } }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn next_range(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        // Multiply-shift rejection-free mapping; the bias is < 2^-53 for
        // every n this workspace uses.
        (self.next_f64() * n as f64) as usize % n
    }

    /// A uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn next_f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi && lo.is_finite() && hi.is_finite(), "bad range [{lo}, {hi})");
        lo + self.next_f64() * (hi - lo)
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// Whether `rate` is a probability: finite and inside `[0.0, 1.0]`.
///
/// NaN is rejected (every comparison with NaN is false, so the range
/// check handles it without a special case). This is the single source
/// of truth for rate validation across the workspace — both
/// `simkit::fault::FaultPlan` and `runtime::chaos::ChaosPlan` delegate
/// here, so the two injection layers can never drift apart on what
/// counts as a legal rate.
pub fn is_valid_rate(rate: f64) -> bool {
    (0.0..=1.0).contains(&rate)
}

/// Clamps `rate` into `[0.0, 1.0]`; NaN collapses to `0.0` (inject
/// nothing). The lenient companion of [`is_valid_rate`] for call sites
/// that warn-and-continue instead of rejecting.
pub fn clamp_rate(rate: f64) -> f64 {
    if rate.is_nan() {
        0.0
    } else {
        rate.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = Rng64::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng64::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = Rng64::new(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Rng64::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = Rng64::new(3);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = Rng64::new(11);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.next_range(5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = Rng64::new(19);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn bernoulli_tracks_probability() {
        let mut r = Rng64::new(23);
        let hits = (0..10_000).filter(|_| r.next_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02, "{hits}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        Rng64::new(1).next_range(0);
    }

    #[test]
    fn rate_validation_accepts_probabilities_only() {
        assert!(is_valid_rate(0.0));
        assert!(is_valid_rate(0.5));
        assert!(is_valid_rate(1.0));
        assert!(!is_valid_rate(-0.0001));
        assert!(!is_valid_rate(1.0001));
        assert!(!is_valid_rate(f64::NAN));
        assert!(!is_valid_rate(f64::INFINITY));
        assert!(!is_valid_rate(f64::NEG_INFINITY));
    }

    #[test]
    fn rate_clamping_collapses_into_unit_interval() {
        assert_eq!(clamp_rate(0.3), 0.3);
        assert_eq!(clamp_rate(-4.0), 0.0);
        assert_eq!(clamp_rate(42.0), 1.0);
        assert_eq!(clamp_rate(f64::NAN), 0.0);
        assert_eq!(clamp_rate(f64::INFINITY), 1.0);
        assert_eq!(clamp_rate(f64::NEG_INFINITY), 0.0);
        // Every clamped value is valid, by construction.
        for r in [-1.0, 0.0, 0.25, 1.0, 9.0, f64::NAN] {
            assert!(is_valid_rate(clamp_rate(r)));
        }
    }
}
