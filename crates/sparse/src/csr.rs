//! Compressed sparse row (CSR) format.

use crate::{CooMatrix, CscMatrix, DenseMatrix, FormatError, StorageSize, INDEX_BYTES, VALUE_BYTES};

/// A sparse matrix in compressed sparse row (CSR) form.
///
/// CSR is the baseline format of the paper's storage study (Fig. 15) and the
/// input to BBC construction. Invariants (enforced by [`CsrMatrix::try_new`]
/// and preserved by every constructor):
///
/// * `row_ptr.len() == nrows + 1`, `row_ptr[0] == 0`, non-decreasing, and
///   `row_ptr[nrows] == col_idx.len() == values.len()`;
/// * column indices within each row are strictly increasing and `< ncols`.
///
/// # Example
///
/// ```
/// use sparse::CsrMatrix;
///
/// # fn main() -> Result<(), sparse::FormatError> {
/// // [ 1 0 2 ]
/// // [ 0 3 0 ]
/// let m = CsrMatrix::try_new(2, 3, vec![0, 2, 3], vec![0, 2, 1], vec![1.0, 2.0, 3.0])?;
/// assert_eq!(m.get(0, 2), Some(2.0));
/// assert_eq!(m.get(1, 0), None);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix after validating every invariant.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError`] if pointers are malformed, array lengths
    /// disagree, column indices are out of range, or indices within a row
    /// are not strictly increasing.
    pub fn try_new(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Result<Self, FormatError> {
        if row_ptr.len() != nrows + 1 {
            return Err(FormatError::MalformedPointers { detail: "row_ptr.len() != nrows + 1" });
        }
        if row_ptr[0] != 0 {
            return Err(FormatError::MalformedPointers { detail: "row_ptr[0] != 0" });
        }
        if row_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(FormatError::MalformedPointers { detail: "row_ptr not non-decreasing" });
        }
        if *row_ptr.last().expect("row_ptr nonempty") != col_idx.len() {
            return Err(FormatError::MalformedPointers {
                detail: "row_ptr[nrows] != col_idx.len()",
            });
        }
        if col_idx.len() != values.len() {
            return Err(FormatError::LengthMismatch { detail: "col_idx.len() != values.len()" });
        }
        for r in 0..nrows {
            let cols = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            for w in cols.windows(2) {
                if w[0] >= w[1] {
                    return Err(FormatError::UnsortedIndices { outer: r });
                }
            }
            if let Some(&c) = cols.last() {
                if c as usize >= ncols {
                    return Err(FormatError::IndexOutOfBounds {
                        row: r,
                        col: c as usize,
                        nrows,
                        ncols,
                    });
                }
            }
        }
        Ok(CsrMatrix { nrows, ncols, row_ptr, col_idx, values })
    }

    /// Creates an empty matrix with no stored entries.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        CsrMatrix {
            nrows,
            ncols,
            row_ptr: vec![0; nrows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n as u32).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The row-pointer array (`nrows + 1` entries).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The column-index array, one entry per nonzero.
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// The value array, one entry per nonzero.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the value array (structure is immutable).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// The `(col_idx, values)` slices of one row.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.nrows()`.
    pub fn row(&self, row: usize) -> (&[u32], &[f64]) {
        let lo = self.row_ptr[row];
        let hi = self.row_ptr[row + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Number of nonzeros stored in `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.nrows()`.
    pub fn row_nnz(&self, row: usize) -> usize {
        self.row_ptr[row + 1] - self.row_ptr[row]
    }

    /// The stored value at `(row, col)`, or `None` when the entry is
    /// structurally zero.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.nrows()`.
    pub fn get(&self, row: usize, col: usize) -> Option<f64> {
        let (cols, vals) = self.row(row);
        cols.binary_search(&(col as u32)).ok().map(|i| vals[i])
    }

    /// Iterates over all `(row, col, value)` entries in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.nrows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter().zip(vals).map(move |(&c, &v)| (r, c as usize, v))
        })
    }

    /// Returns the transpose as a new CSR matrix.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.col_idx {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.ncols {
            counts[i + 1] += counts[i];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut cursor = counts;
        for (r, c, v) in self.iter() {
            let dst = cursor[c];
            col_idx[dst] = r as u32;
            values[dst] = v;
            cursor[c] += 1;
        }
        CsrMatrix { nrows: self.ncols, ncols: self.nrows, row_ptr, col_idx, values }
    }

    /// Converts to compressed sparse column form.
    pub fn to_csc(&self) -> CscMatrix {
        let t = self.transpose();
        CscMatrix::from_transposed_csr(t)
    }

    /// Materialises the matrix densely (row-major).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.nrows, self.ncols);
        for (r, c, v) in self.iter() {
            d[(r, c)] = v;
        }
        d
    }

    /// Mean number of nonzeros per row.
    pub fn avg_row_nnz(&self) -> f64 {
        if self.nrows == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.nrows as f64
        }
    }

    /// Fraction of entries that are structurally zero, in `[0, 1]`.
    pub fn sparsity(&self) -> f64 {
        let cells = self.nrows as f64 * self.ncols as f64;
        if cells == 0.0 {
            0.0
        } else {
            1.0 - self.nnz() as f64 / cells
        }
    }
}

impl TryFrom<CooMatrix> for CsrMatrix {
    type Error = FormatError;

    /// Compresses a COO matrix (sorting entries and summing duplicates).
    fn try_from(mut coo: CooMatrix) -> Result<Self, FormatError> {
        coo.compress();
        let nrows = coo.nrows();
        let ncols = coo.ncols();
        let mut row_ptr = vec![0usize; nrows + 1];
        let mut col_idx = Vec::with_capacity(coo.nnz());
        let mut values = Vec::with_capacity(coo.nnz());
        for (r, c, v) in coo.iter() {
            if r >= nrows || c >= ncols {
                return Err(FormatError::IndexOutOfBounds { row: r, col: c, nrows, ncols });
            }
            row_ptr[r + 1] += 1;
            col_idx.push(c as u32);
            values.push(v);
        }
        for i in 0..nrows {
            row_ptr[i + 1] += row_ptr[i];
        }
        Ok(CsrMatrix { nrows, ncols, row_ptr, col_idx, values })
    }
}

impl From<&CsrMatrix> for CooMatrix {
    fn from(csr: &CsrMatrix) -> Self {
        let mut coo = CooMatrix::with_capacity(csr.nrows(), csr.ncols(), csr.nnz());
        coo.extend(csr.iter());
        coo
    }
}

impl StorageSize for CsrMatrix {
    fn metadata_bytes(&self) -> usize {
        INDEX_BYTES * (self.nrows + 1) + INDEX_BYTES * self.nnz()
    }

    fn value_bytes(&self) -> usize {
        VALUE_BYTES * self.nnz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [ 1 0 2 0 ]
        // [ 0 0 0 3 ]
        // [ 4 0 0 5 ]
        CsrMatrix::try_new(
            3,
            4,
            vec![0, 2, 3, 5],
            vec![0, 2, 3, 0, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
        .unwrap()
    }

    #[test]
    fn try_new_accepts_valid() {
        let m = sample();
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.row_nnz(2), 2);
    }

    #[test]
    fn try_new_rejects_bad_pointer_length() {
        let err = CsrMatrix::try_new(2, 2, vec![0, 1], vec![0], vec![1.0]).unwrap_err();
        assert!(matches!(err, FormatError::MalformedPointers { .. }));
    }

    #[test]
    fn try_new_rejects_decreasing_pointers() {
        let err = CsrMatrix::try_new(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, FormatError::MalformedPointers { .. }));
    }

    #[test]
    fn try_new_rejects_unsorted_columns() {
        let err =
            CsrMatrix::try_new(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, FormatError::UnsortedIndices { outer: 0 }));
    }

    #[test]
    fn try_new_rejects_out_of_range_column() {
        let err = CsrMatrix::try_new(1, 2, vec![0, 1], vec![5], vec![1.0]).unwrap_err();
        assert!(matches!(err, FormatError::IndexOutOfBounds { .. }));
    }

    #[test]
    fn try_new_rejects_length_mismatch() {
        let err = CsrMatrix::try_new(1, 2, vec![0, 1], vec![0], vec![]).unwrap_err();
        assert!(matches!(err, FormatError::LengthMismatch { .. }));
    }

    #[test]
    fn get_finds_stored_and_missing() {
        let m = sample();
        assert_eq!(m.get(0, 2), Some(2.0));
        assert_eq!(m.get(1, 0), None);
        assert_eq!(m.get(2, 3), Some(5.0));
    }

    #[test]
    fn coo_roundtrip_preserves_entries() {
        let m = sample();
        let coo = CooMatrix::from(&m);
        let back = CsrMatrix::try_from(coo).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn transpose_is_involution() {
        let m = sample();
        let tt = m.transpose().transpose();
        assert_eq!(tt, m);
    }

    #[test]
    fn transpose_moves_entries() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.nrows(), 4);
        assert_eq!(t.ncols(), 3);
        assert_eq!(t.get(3, 1), Some(3.0));
        assert_eq!(t.get(0, 2), Some(4.0));
    }

    #[test]
    fn identity_has_unit_diagonal() {
        let i = CsrMatrix::identity(5);
        assert_eq!(i.nnz(), 5);
        for k in 0..5 {
            assert_eq!(i.get(k, k), Some(1.0));
        }
    }

    #[test]
    fn to_dense_matches_entries() {
        let m = sample();
        let d = m.to_dense();
        assert_eq!(d[(2, 0)], 4.0);
        assert_eq!(d[(1, 1)], 0.0);
    }

    #[test]
    fn sparsity_and_avg_row_nnz() {
        let m = sample();
        assert!((m.sparsity() - (1.0 - 5.0 / 12.0)).abs() < 1e-12);
        assert!((m.avg_row_nnz() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn storage_size_matches_formula() {
        let m = sample();
        assert_eq!(m.metadata_bytes(), 4 * 4 + 4 * 5);
        assert_eq!(m.value_bytes(), 8 * 5);
    }

    #[test]
    fn zeros_has_valid_structure() {
        let z = CsrMatrix::zeros(3, 3);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.row_nnz(2), 0);
    }
}
