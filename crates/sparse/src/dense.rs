//! Row-major dense matrix, used for SpMM operands and golden results.

use std::ops::{Index, IndexMut};

use crate::{CsrMatrix, StorageSize, VALUE_BYTES};

/// A dense matrix stored row-major, used as the `B` operand of SpMM and as
/// the golden result container of the reference kernels.
///
/// # Example
///
/// ```
/// use sparse::DenseMatrix;
///
/// let mut m = DenseMatrix::zeros(2, 3);
/// m[(1, 2)] = 4.0;
/// assert_eq!(m.row(1), &[0.0, 0.0, 4.0]);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DenseMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates an all-zero `nrows x ncols` matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseMatrix { nrows, ncols, data: vec![0.0; nrows * ncols] }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != nrows * ncols`.
    pub fn from_row_major(nrows: usize, ncols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), nrows * ncols, "row-major data length mismatch");
        DenseMatrix { nrows, ncols, data }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// One row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.nrows()`.
    pub fn row(&self, row: usize) -> &[f64] {
        &self.data[row * self.ncols..(row + 1) * self.ncols]
    }

    /// One row as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.nrows()`.
    pub fn row_mut(&mut self, row: usize) -> &mut [f64] {
        &mut self.data[row * self.ncols..(row + 1) * self.ncols]
    }

    /// The backing row-major slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Number of entries whose absolute value exceeds `eps`.
    pub fn count_nonzero(&self, eps: f64) -> usize {
        self.data.iter().filter(|v| v.abs() > eps).count()
    }

    /// Converts to CSR, dropping entries with `|v| <= eps`.
    pub fn to_csr(&self, eps: f64) -> CsrMatrix {
        let mut coo = crate::CooMatrix::new(self.nrows, self.ncols);
        for r in 0..self.nrows {
            for c in 0..self.ncols {
                let v = self[(r, c)];
                if v.abs() > eps {
                    coo.push(r, c, v);
                }
            }
        }
        CsrMatrix::try_from(coo).expect("dense entries are always in range")
    }

    /// Maximum absolute difference against another matrix of equal shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f64 {
        assert_eq!(self.nrows, other.nrows, "row count mismatch");
        assert_eq!(self.ncols, other.ncols, "column count mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl Index<(usize, usize)> for DenseMatrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.nrows && c < self.ncols, "index ({r}, {c}) out of bounds");
        &self.data[r * self.ncols + c]
    }
}

impl IndexMut<(usize, usize)> for DenseMatrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.nrows && c < self.ncols, "index ({r}, {c}) out of bounds");
        &mut self.data[r * self.ncols + c]
    }
}

impl StorageSize for DenseMatrix {
    fn metadata_bytes(&self) -> usize {
        0
    }

    fn value_bytes(&self) -> usize {
        VALUE_BYTES * self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_index() {
        let mut m = DenseMatrix::zeros(2, 2);
        assert_eq!(m[(0, 1)], 0.0);
        m[(0, 1)] = 3.0;
        assert_eq!(m[(0, 1)], 3.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = DenseMatrix::zeros(2, 2);
        let _ = m[(2, 0)];
    }

    #[test]
    fn from_row_major_lays_out_rows() {
        let m = DenseMatrix::from_row_major(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(m.row(0), &[1., 2., 3.]);
        assert_eq!(m.row(1), &[4., 5., 6.]);
        assert_eq!(m[(1, 0)], 4.0);
    }

    #[test]
    fn to_csr_drops_small_entries() {
        let m = DenseMatrix::from_row_major(2, 2, vec![1.0, 1e-15, 0.0, 2.0]);
        let csr = m.to_csr(1e-12);
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.get(1, 1), Some(2.0));
    }

    #[test]
    fn max_abs_diff_detects_difference() {
        let a = DenseMatrix::from_row_major(1, 2, vec![1.0, 2.0]);
        let b = DenseMatrix::from_row_major(1, 2, vec![1.5, 2.0]);
        assert!((a.max_abs_diff(&b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn count_nonzero_uses_eps() {
        let m = DenseMatrix::from_row_major(1, 3, vec![0.0, 1e-9, 5.0]);
        assert_eq!(m.count_nonzero(1e-6), 1);
        assert_eq!(m.count_nonzero(1e-12), 2);
    }
}
