//! Matrix reordering: permutations, reverse Cuthill-McKee bandwidth
//! reduction, and degree sorting.
//!
//! STC performance depends heavily on *where* nonzeros sit relative to the
//! 16x16 block grid (Section III of the paper). Reordering rows/columns
//! changes that placement without changing the mathematics, which makes it
//! the natural ablation axis for the block-structure sensitivity study
//! (`ablation_reorder` in the bench crate).

use crate::{CooMatrix, CsrMatrix, FormatError};

/// Validates that `perm` is a permutation of `0..n`.
fn check_permutation(perm: &[usize], n: usize) -> Result<(), FormatError> {
    if perm.len() != n {
        return Err(FormatError::LengthMismatch { detail: "permutation length != dimension" });
    }
    let mut seen = vec![false; n];
    for &p in perm {
        if p >= n || seen[p] {
            return Err(FormatError::MalformedPointers {
                detail: "not a permutation of 0..n",
            });
        }
        seen[p] = true;
    }
    Ok(())
}

/// Symmetrically permutes a square matrix: `B[p[i], p[j]] = A[i, j]`.
///
/// # Errors
///
/// Returns [`FormatError`] if `a` is not square or `perm` is not a
/// permutation of `0..a.nrows()`.
pub fn permute_symmetric(a: &CsrMatrix, perm: &[usize]) -> Result<CsrMatrix, FormatError> {
    if a.nrows() != a.ncols() {
        return Err(FormatError::DimensionMismatch {
            detail: "symmetric permutation needs a square matrix".into(),
        });
    }
    check_permutation(perm, a.nrows())?;
    let mut coo = CooMatrix::with_capacity(a.nrows(), a.ncols(), a.nnz());
    for (r, c, v) in a.iter() {
        coo.push(perm[r], perm[c], v);
    }
    CsrMatrix::try_from(coo)
}

/// Reverse Cuthill-McKee ordering of the symmetrised structure of `a`:
/// a classic bandwidth-reducing permutation. Returns `perm` with
/// `perm[old] = new`.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn reverse_cuthill_mckee(a: &CsrMatrix) -> Vec<usize> {
    assert_eq!(a.nrows(), a.ncols(), "RCM needs a square matrix");
    let n = a.nrows();
    // Symmetrised adjacency lists.
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (r, c, _) in a.iter() {
        if r != c {
            adj[r].push(c as u32);
            adj[c].push(r as u32);
        }
    }
    for l in adj.iter_mut() {
        l.sort_unstable();
        l.dedup();
    }
    let degree: Vec<usize> = adj.iter().map(Vec::len).collect();

    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    // Process components from minimum-degree seeds.
    let mut seeds: Vec<usize> = (0..n).collect();
    seeds.sort_by_key(|&v| degree[v]);
    for &seed in &seeds {
        if visited[seed] {
            continue;
        }
        visited[seed] = true;
        let mut queue = std::collections::VecDeque::from([seed]);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            let mut nbrs: Vec<u32> =
                adj[u].iter().copied().filter(|&v| !visited[v as usize]).collect();
            nbrs.sort_by_key(|&v| degree[v as usize]);
            for v in nbrs {
                visited[v as usize] = true;
                queue.push_back(v as usize);
            }
        }
    }
    // Reverse, then convert position list into old -> new mapping.
    order.reverse();
    let mut perm = vec![0usize; n];
    for (new, &old) in order.iter().enumerate() {
        perm[old] = new;
    }
    perm
}

/// Degree-descending row ordering (hubs first): `perm[old] = new`.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn degree_sort(a: &CsrMatrix) -> Vec<usize> {
    assert_eq!(a.nrows(), a.ncols(), "degree sort needs a square matrix");
    let mut idx: Vec<usize> = (0..a.nrows()).collect();
    idx.sort_by_key(|&r| std::cmp::Reverse(a.row_nnz(r)));
    let mut perm = vec![0usize; a.nrows()];
    for (new, &old) in idx.iter().enumerate() {
        perm[old] = new;
    }
    perm
}

/// Structural bandwidth: `max |i - j|` over nonzeros (0 for diagonal or
/// empty matrices).
pub fn bandwidth(a: &CsrMatrix) -> usize {
    a.iter().map(|(r, c, _)| r.abs_diff(c)).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> CsrMatrix {
        // A ring graph numbered to have terrible bandwidth: neighbours are
        // i +- n/2 alternating.
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
            let j = (i + n / 2) % n;
            if i != j {
                coo.push(i, j, -1.0);
                coo.push(j, i, -1.0);
            }
        }
        CsrMatrix::try_from(coo).unwrap()
    }

    #[test]
    fn permutation_preserves_values() {
        let a = ring(8);
        let perm: Vec<usize> = (0..8).rev().collect();
        let b = permute_symmetric(&a, &perm).unwrap();
        assert_eq!(b.nnz(), a.nnz());
        for (r, c, v) in a.iter() {
            assert_eq!(b.get(perm[r], perm[c]), Some(v));
        }
    }

    #[test]
    fn identity_permutation_is_noop() {
        let a = ring(8);
        let perm: Vec<usize> = (0..8).collect();
        assert_eq!(permute_symmetric(&a, &perm).unwrap(), a);
    }

    #[test]
    fn invalid_permutations_rejected() {
        let a = ring(4);
        assert!(permute_symmetric(&a, &[0, 1, 2]).is_err()); // wrong length
        assert!(permute_symmetric(&a, &[0, 1, 1, 2]).is_err()); // duplicate
        assert!(permute_symmetric(&a, &[0, 1, 2, 9]).is_err()); // out of range
    }

    #[test]
    fn rcm_reduces_bandwidth() {
        let a = ring(64);
        let before = bandwidth(&a);
        let perm = reverse_cuthill_mckee(&a);
        let b = permute_symmetric(&a, &perm).unwrap();
        let after = bandwidth(&b);
        assert!(after < before, "bandwidth {before} -> {after}");
        assert!(after <= 4, "ring should become near-tridiagonal, got {after}");
    }

    #[test]
    fn rcm_is_a_permutation_even_with_isolated_nodes() {
        let mut coo = CooMatrix::new(6, 6);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        // Nodes 2..6 isolated.
        let a = CsrMatrix::try_from(coo).unwrap();
        let perm = reverse_cuthill_mckee(&a);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn degree_sort_puts_hubs_first() {
        let mut coo = CooMatrix::new(5, 5);
        for c in 0..5 {
            coo.push(3, c, 1.0); // row 3 is the hub
        }
        coo.push(0, 0, 1.0);
        let a = CsrMatrix::try_from(coo).unwrap();
        let perm = degree_sort(&a);
        assert_eq!(perm[3], 0); // hub becomes row 0
    }

    #[test]
    fn bandwidth_of_diagonal_is_zero() {
        assert_eq!(bandwidth(&CsrMatrix::identity(5)), 0);
        assert_eq!(bandwidth(&CsrMatrix::zeros(3, 3)), 0);
    }
}
