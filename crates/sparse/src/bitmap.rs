//! Flat bitmap sparse format (the paper's Fig. 1).

use crate::{CsrMatrix, FormatError, StorageSize, VALUE_BYTES};

/// A sparse matrix stored as one flat bitmask plus a packed value array
/// (the bitmap format of the paper's Fig. 1).
///
/// Bit `r * ncols + c` of the mask is set when entry `(r, c)` is nonzero;
/// values are stored in row-major order of their set bits. The format is
/// compact for small, moderately dense matrices and is the conceptual
/// ancestor of BBC's per-tile level-2 bitmaps.
///
/// # Example
///
/// ```
/// use sparse::{BitmapMatrix, CsrMatrix};
///
/// # fn main() -> Result<(), sparse::FormatError> {
/// let csr = CsrMatrix::try_new(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 2.0])?;
/// let bm = BitmapMatrix::from_csr(&csr);
/// assert_eq!(bm.get(0, 0), Some(1.0));
/// assert_eq!(bm.to_csr()?, csr);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BitmapMatrix {
    nrows: usize,
    ncols: usize,
    mask: Vec<u64>,
    values: Vec<f64>,
}

impl BitmapMatrix {
    /// Converts a CSR matrix into bitmap form.
    pub fn from_csr(csr: &CsrMatrix) -> Self {
        let nrows = csr.nrows();
        let ncols = csr.ncols();
        let bits = nrows * ncols;
        let mut mask = vec![0u64; bits.div_ceil(64)];
        let mut values = Vec::with_capacity(csr.nnz());
        for (r, c, v) in csr.iter() {
            let bit = r * ncols + c;
            mask[bit / 64] |= 1u64 << (bit % 64);
            values.push(v);
        }
        BitmapMatrix { nrows, ncols, mask, values }
    }

    /// Builds a bitmap matrix from raw parts.
    ///
    /// `mask` holds `nrows * ncols` bits (little-endian within each word);
    /// `values` holds one value per set bit, in bit order.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::LengthMismatch`] if `mask` has the wrong word
    /// count or the popcount of `mask` disagrees with `values.len()`.
    pub fn try_from_parts(
        nrows: usize,
        ncols: usize,
        mask: Vec<u64>,
        values: Vec<f64>,
    ) -> Result<Self, FormatError> {
        let bits = nrows * ncols;
        if mask.len() != bits.div_ceil(64) {
            return Err(FormatError::LengthMismatch { detail: "mask word count" });
        }
        // Bits beyond nrows*ncols must be clear.
        if !bits.is_multiple_of(64) {
            if let Some(&last) = mask.last() {
                if last >> (bits % 64) != 0 {
                    return Err(FormatError::LengthMismatch { detail: "mask has stray bits" });
                }
            }
        }
        let pop: u32 = mask.iter().map(|w| w.count_ones()).sum();
        if pop as usize != values.len() {
            return Err(FormatError::LengthMismatch { detail: "mask popcount != values.len()" });
        }
        Ok(BitmapMatrix { nrows, ncols, mask, values })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Whether entry `(row, col)` is structurally nonzero.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn is_set(&self, row: usize, col: usize) -> bool {
        assert!(row < self.nrows && col < self.ncols, "index out of bounds");
        let bit = row * self.ncols + col;
        self.mask[bit / 64] >> (bit % 64) & 1 == 1
    }

    /// The stored value at `(row, col)`, or `None` when structurally zero.
    ///
    /// Retrieval counts the set bits before the queried position (the rank
    /// operation the paper's hardware performs with a popcount unit).
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn get(&self, row: usize, col: usize) -> Option<f64> {
        if !self.is_set(row, col) {
            return None;
        }
        let bit = row * self.ncols + col;
        Some(self.values[crate::kernels::active().rank(&self.mask, bit)])
    }

    /// Converts back to CSR form.
    ///
    /// Walks the mask word-at-a-time through the active kernel backend
    /// (set bits come back in ascending order, which is exactly the
    /// row-major value order) instead of probing every cell; the mask's
    /// tail word is masked to `nrows * ncols` bits so ragged widths —
    /// total bit counts that are not a multiple of 64 — cannot leak
    /// stray positions.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError`] if the CSR constructor rejects the emitted
    /// coordinates — impossible for a structurally valid bitmap, but
    /// surfaced as a typed error rather than a panic.
    pub fn to_csr(&self) -> Result<CsrMatrix, FormatError> {
        let mut coo = crate::CooMatrix::with_capacity(self.nrows, self.ncols, self.nnz());
        let mut set_bits = Vec::with_capacity(self.nnz());
        crate::kernels::active().collect_set_bits(
            &self.mask,
            self.nrows * self.ncols,
            &mut set_bits,
        );
        for (&bit, &v) in set_bits.iter().zip(self.values.iter()) {
            let bit = bit as usize;
            coo.push(bit / self.ncols, bit % self.ncols, v);
        }
        CsrMatrix::try_from(coo)
    }
}

impl StorageSize for BitmapMatrix {
    fn metadata_bytes(&self) -> usize {
        (self.nrows * self.ncols).div_ceil(8)
    }

    fn value_bytes(&self) -> usize {
        VALUE_BYTES * self.nnz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1_matrix() -> CsrMatrix {
        // The paper's Fig. 1 example:
        // [ a 0 b 0 ]
        // [ 0 c 0 0 ]
        // [ 0 0 0 d ]
        // [ e 0 0 f ]
        CsrMatrix::try_new(
            4,
            4,
            vec![0, 2, 3, 4, 6],
            vec![0, 2, 1, 3, 0, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        )
        .unwrap()
    }

    #[test]
    fn fig1_mask_matches_paper() {
        let bm = BitmapMatrix::from_csr(&fig1_matrix());
        // Paper mask (row-major): 1010 0100 0001 1001
        let expect = [1, 0, 1, 0, 0, 1, 0, 0, 0, 0, 0, 1, 1, 0, 0, 1];
        for (bit, &e) in expect.iter().enumerate() {
            assert_eq!(bm.is_set(bit / 4, bit % 4), e == 1, "bit {bit}");
        }
    }

    #[test]
    fn roundtrip_preserves_matrix() {
        let csr = fig1_matrix();
        assert_eq!(BitmapMatrix::from_csr(&csr).to_csr().unwrap(), csr);
    }

    #[test]
    fn to_csr_returns_typed_result() {
        // Degenerate shapes convert without panicking.
        let empty = BitmapMatrix::from_csr(&CsrMatrix::identity(0));
        assert_eq!(empty.to_csr().unwrap().nnz(), 0);
    }

    #[test]
    fn get_uses_rank() {
        let bm = BitmapMatrix::from_csr(&fig1_matrix());
        assert_eq!(bm.get(0, 0), Some(1.0));
        assert_eq!(bm.get(3, 3), Some(6.0));
        assert_eq!(bm.get(2, 0), None);
    }

    #[test]
    fn try_from_parts_validates_popcount() {
        let err = BitmapMatrix::try_from_parts(2, 2, vec![0b11], vec![1.0]).unwrap_err();
        assert!(matches!(err, FormatError::LengthMismatch { .. }));
    }

    #[test]
    fn try_from_parts_rejects_stray_bits() {
        let err = BitmapMatrix::try_from_parts(2, 2, vec![1 << 10], vec![1.0]).unwrap_err();
        assert!(matches!(err, FormatError::LengthMismatch { .. }));
    }

    #[test]
    fn storage_is_one_bit_per_cell() {
        let bm = BitmapMatrix::from_csr(&fig1_matrix());
        assert_eq!(bm.metadata_bytes(), 2); // 16 cells -> 2 bytes
        assert_eq!(bm.value_bytes(), 48);
    }

    /// One-row matrix with every cell set, at a given total bit width.
    fn ragged_full(ncols: usize) -> CsrMatrix {
        let values: Vec<f64> = (0..ncols).map(|c| c as f64 + 1.0).collect();
        let col_idx: Vec<u32> = (0..ncols as u32).collect();
        CsrMatrix::try_new(1, ncols, vec![0, ncols], col_idx, values).unwrap()
    }

    #[test]
    fn roundtrip_at_ragged_widths() {
        // Total bit counts straddling the word boundaries: the tail
        // word is empty, one bit, one-short, exactly full, one-over.
        for ncols in [0usize, 1, 63, 64, 65, 255, 256] {
            let csr = ragged_full(ncols);
            let bm = BitmapMatrix::from_csr(&csr);
            assert_eq!(bm.nnz(), ncols, "ncols={ncols}");
            assert_eq!(bm.to_csr().unwrap(), csr, "ncols={ncols}");
        }
    }

    #[test]
    fn rank_at_ragged_widths() {
        for ncols in [1usize, 63, 64, 65, 255, 256] {
            let bm = BitmapMatrix::from_csr(&ragged_full(ncols));
            assert_eq!(bm.get(0, 0), Some(1.0), "ncols={ncols}");
            assert_eq!(bm.get(0, ncols - 1), Some(ncols as f64), "ncols={ncols}");
        }
    }

    #[test]
    fn ragged_multirow_tail_straddles_rows() {
        // 3 rows x 43 cols = 129 bits: rows straddle word boundaries so
        // a tail-masking bug would drop or duplicate entries.
        let mut coo = crate::CooMatrix::new(3, 43);
        for (i, &(r, c)) in [(0, 0), (0, 42), (1, 20), (2, 0), (2, 42)].iter().enumerate() {
            coo.push(r, c, i as f64 + 0.5);
        }
        let csr = CsrMatrix::try_from(coo).unwrap();
        let bm = BitmapMatrix::from_csr(&csr);
        assert_eq!(bm.get(2, 42), Some(4.5));
        assert_eq!(bm.get(1, 19), None);
        assert_eq!(bm.to_csr().unwrap(), csr);
    }

    #[test]
    fn backends_agree_on_bitmap_paths() {
        use crate::kernels::{with_backend, BackendKind};
        let csr = ragged_full(65);
        for &kind in BackendKind::ALL {
            let round = with_backend(kind, || {
                BitmapMatrix::from_csr(&csr).to_csr().unwrap()
            });
            assert_eq!(round, csr, "backend={}", kind.name());
        }
    }
}
