//! Block sparse row (BSR) format with a run-time block size.

use crate::{CsrMatrix, FormatError, StorageSize, INDEX_BYTES, VALUE_BYTES};

/// A sparse matrix in block sparse row form: CSR over dense `b x b` blocks.
///
/// BSR is a comparison point of the paper's storage study (Fig. 15, with
/// `b = 4` and `b = 16`). Every structurally nonzero block stores all
/// `b * b` values densely, which is exactly why BSR "typically requires more
/// storage than CSR" on scattered matrices.
///
/// # Example
///
/// ```
/// use sparse::{BsrMatrix, CsrMatrix};
///
/// # fn main() -> Result<(), sparse::FormatError> {
/// let csr = CsrMatrix::try_new(4, 4, vec![0, 1, 1, 1, 2], vec![0, 3], vec![1.0, 2.0])?;
/// let bsr = BsrMatrix::from_csr(&csr, 2)?;
/// assert_eq!(bsr.block_count(), 2);
/// assert_eq!(bsr.to_csr(), csr);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BsrMatrix {
    nrows: usize,
    ncols: usize,
    block: usize,
    block_row_ptr: Vec<usize>,
    block_col_idx: Vec<u32>,
    /// Dense block payloads, `block * block` values each, row-major inside
    /// the block, concatenated in block order.
    block_values: Vec<f64>,
    nnz: usize,
}

impl BsrMatrix {
    /// Converts a CSR matrix into BSR with `block x block` blocks.
    ///
    /// Rows and columns are conceptually zero-padded up to the next multiple
    /// of `block`.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::InvalidBlockSize`] if `block == 0`.
    pub fn from_csr(csr: &CsrMatrix, block: usize) -> Result<Self, FormatError> {
        if block == 0 {
            return Err(FormatError::InvalidBlockSize { block });
        }
        let nrows = csr.nrows();
        let ncols = csr.ncols();
        let nbr = nrows.div_ceil(block);
        let mut block_row_ptr = vec![0usize; nbr + 1];
        let mut block_col_idx: Vec<u32> = Vec::new();
        let mut block_values: Vec<f64> = Vec::new();

        for br in 0..nbr {
            // Collect the blocks touched by this block-row, in column order.
            // Map block column -> position in this block-row's block list.
            let mut cols_in_row: Vec<u32> = Vec::new();
            for r in br * block..((br + 1) * block).min(nrows) {
                let (cols, _) = csr.row(r);
                for &c in cols {
                    let bc = c / block as u32;
                    if let Err(pos) = cols_in_row.binary_search(&bc) {
                        cols_in_row.insert(pos, bc);
                    }
                }
            }
            let base_block = block_col_idx.len();
            block_col_idx.extend_from_slice(&cols_in_row);
            block_values.extend(std::iter::repeat_n(0.0, cols_in_row.len() * block * block));
            for r in br * block..((br + 1) * block).min(nrows) {
                let (cols, vals) = csr.row(r);
                for (&c, &v) in cols.iter().zip(vals) {
                    let bc = c / block as u32;
                    let pos = cols_in_row
                        .binary_search(&bc)
                        .expect("block column was inserted above");
                    let bi = base_block + pos;
                    let lr = r - br * block;
                    let lc = c as usize - bc as usize * block;
                    block_values[bi * block * block + lr * block + lc] = v;
                }
            }
            block_row_ptr[br + 1] = block_col_idx.len();
        }

        Ok(BsrMatrix {
            nrows,
            ncols,
            block,
            block_row_ptr,
            block_col_idx,
            block_values,
            nnz: csr.nnz(),
        })
    }

    /// Number of rows of the logical (unpadded) matrix.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns of the logical (unpadded) matrix.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// The block edge length `b`.
    pub fn block_size(&self) -> usize {
        self.block
    }

    /// Number of stored (structurally nonzero) blocks.
    pub fn block_count(&self) -> usize {
        self.block_col_idx.len()
    }

    /// Number of logical nonzeros (excluding the explicit zero padding
    /// inside stored blocks).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Mean number of logical nonzeros per stored block ("NnzPB", the
    /// x-axis of the paper's Fig. 15).
    pub fn nnz_per_block(&self) -> f64 {
        if self.block_count() == 0 {
            0.0
        } else {
            self.nnz as f64 / self.block_count() as f64
        }
    }

    /// The dense payload of the `i`-th stored block (row-major, `b*b` long).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.block_count()`.
    pub fn block_payload(&self, i: usize) -> &[f64] {
        let bb = self.block * self.block;
        &self.block_values[i * bb..(i + 1) * bb]
    }

    /// Converts back to CSR form, dropping the explicit block padding zeros.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut coo = crate::CooMatrix::with_capacity(self.nrows, self.ncols, self.nnz);
        for br in 0..self.block_row_ptr.len() - 1 {
            for bi in self.block_row_ptr[br]..self.block_row_ptr[br + 1] {
                let bc = self.block_col_idx[bi] as usize;
                let payload = self.block_payload(bi);
                for lr in 0..self.block {
                    for lc in 0..self.block {
                        let v = payload[lr * self.block + lc];
                        let (r, c) = (br * self.block + lr, bc * self.block + lc);
                        if v != 0.0 && r < self.nrows && c < self.ncols {
                            coo.push(r, c, v);
                        }
                    }
                }
            }
        }
        CsrMatrix::try_from(coo).expect("BSR coordinates are always in range")
    }
}

impl StorageSize for BsrMatrix {
    fn metadata_bytes(&self) -> usize {
        INDEX_BYTES * (self.block_row_ptr.len()) + INDEX_BYTES * self.block_count()
    }

    fn value_bytes(&self) -> usize {
        VALUE_BYTES * self.block_values.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // 6x6 with a dense 2x2 corner block and scattered singletons.
        let mut coo = crate::CooMatrix::new(6, 6);
        for (r, c, v) in [
            (0, 0, 1.0),
            (0, 1, 2.0),
            (1, 0, 3.0),
            (1, 1, 4.0),
            (2, 5, 5.0),
            (5, 3, 6.0),
        ] {
            coo.push(r, c, v);
        }
        CsrMatrix::try_from(coo).unwrap()
    }

    #[test]
    fn from_csr_counts_blocks() {
        let bsr = BsrMatrix::from_csr(&sample(), 2).unwrap();
        assert_eq!(bsr.block_count(), 3);
        assert_eq!(bsr.nnz(), 6);
        assert!((bsr.nnz_per_block() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn roundtrip_preserves_matrix() {
        let csr = sample();
        for b in [1, 2, 3, 4, 16] {
            let bsr = BsrMatrix::from_csr(&csr, b).unwrap();
            assert_eq!(bsr.to_csr(), csr, "block size {b}");
        }
    }

    #[test]
    fn zero_block_size_rejected() {
        let err = BsrMatrix::from_csr(&sample(), 0).unwrap_err();
        assert!(matches!(err, FormatError::InvalidBlockSize { block: 0 }));
    }

    #[test]
    fn dense_block_payload_layout() {
        let bsr = BsrMatrix::from_csr(&sample(), 2).unwrap();
        // First block row, first block: the dense corner.
        assert_eq!(bsr.block_payload(0), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn storage_blows_up_for_scattered_matrices() {
        use crate::StorageSize;
        let csr = sample();
        let bsr16 = BsrMatrix::from_csr(&csr, 16).unwrap();
        // One 16x16 block per nonzero region stores 256 values for 6 nnz.
        assert!(bsr16.total_bytes() > csr.total_bytes());
    }

    #[test]
    fn non_divisible_dimensions_are_padded() {
        // 5x5 matrix, block 2 -> 3x3 block grid.
        let mut coo = crate::CooMatrix::new(5, 5);
        coo.push(4, 4, 9.0);
        let csr = CsrMatrix::try_from(coo).unwrap();
        let bsr = BsrMatrix::from_csr(&csr, 2).unwrap();
        assert_eq!(bsr.block_count(), 1);
        assert_eq!(bsr.to_csr(), csr);
    }
}
