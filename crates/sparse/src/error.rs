//! Error types for sparse-format construction and conversion.

use std::error::Error;
use std::fmt;

/// Error returned when constructing or validating a sparse format.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FormatError {
    /// An entry's row or column index lies outside the matrix dimensions.
    IndexOutOfBounds {
        /// Row index of the offending entry.
        row: usize,
        /// Column index of the offending entry.
        col: usize,
        /// Number of rows in the matrix.
        nrows: usize,
        /// Number of columns in the matrix.
        ncols: usize,
    },
    /// A row-pointer (or column-pointer) array is not monotonically
    /// non-decreasing, does not start at zero, or has the wrong length.
    MalformedPointers {
        /// Human-readable description of the violated invariant.
        detail: &'static str,
    },
    /// Column indices within a CSR row (or row indices within a CSC column)
    /// are not strictly increasing.
    UnsortedIndices {
        /// The row (CSR) or column (CSC) in which the violation occurred.
        outer: usize,
    },
    /// Array lengths disagree (e.g. `col_idx.len() != values.len()`).
    LengthMismatch {
        /// Human-readable description of the disagreeing arrays.
        detail: &'static str,
    },
    /// Operand dimensions do not match for a kernel invocation.
    DimensionMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A block size that is zero or does not evenly tile the structure the
    /// caller required.
    InvalidBlockSize {
        /// The offending block size.
        block: usize,
    },
    /// A serialized BBC stream is truncated or carries a bad magic number.
    CorruptStream {
        /// Human-readable description of the corruption.
        detail: &'static str,
    },
    /// A text stream (e.g. Matrix Market) failed to parse at a specific
    /// line.
    ParseError {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description of what was expected.
        detail: &'static str,
    },
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::IndexOutOfBounds { row, col, nrows, ncols } => write!(
                f,
                "entry ({row}, {col}) outside {nrows}x{ncols} matrix"
            ),
            FormatError::MalformedPointers { detail } => {
                write!(f, "malformed pointer array: {detail}")
            }
            FormatError::UnsortedIndices { outer } => {
                write!(f, "indices not strictly increasing in row/column {outer}")
            }
            FormatError::LengthMismatch { detail } => {
                write!(f, "array length mismatch: {detail}")
            }
            FormatError::DimensionMismatch { detail } => {
                write!(f, "dimension mismatch: {detail}")
            }
            FormatError::InvalidBlockSize { block } => {
                write!(f, "invalid block size {block}")
            }
            FormatError::CorruptStream { detail } => {
                write!(f, "corrupt BBC stream: {detail}")
            }
            FormatError::ParseError { line, detail } => {
                write!(f, "parse error at line {line}: {detail}")
            }
        }
    }
}

impl Error for FormatError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let errs = [
            FormatError::IndexOutOfBounds { row: 5, col: 6, nrows: 4, ncols: 4 },
            FormatError::MalformedPointers { detail: "does not start at 0" },
            FormatError::UnsortedIndices { outer: 3 },
            FormatError::LengthMismatch { detail: "col_idx vs values" },
            FormatError::DimensionMismatch { detail: "a.ncols != b.nrows".into() },
            FormatError::InvalidBlockSize { block: 0 },
            FormatError::CorruptStream { detail: "bad magic" },
            FormatError::ParseError { line: 7, detail: "expected rows cols nnz" },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }
}
