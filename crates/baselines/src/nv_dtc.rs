//! NV-DTC: the NVIDIA A100 dense tensor core (Table VI row "NV-DTC").
//!
//! The dense tensor core has no unstructured-sparsity adaptation: every T1
//! task executes a fixed schedule of dense T3 boxes ((8 or 4)x4x4), so the
//! cycle count is independent of operand sparsity and utilisation collapses
//! on sparse inputs (the paper measures < 25 % utilisation in 84.34 % of
//! cycles on real matrices, Fig. 5).

use simkit::{network, NetworkCosts, Precision, T1Result, T1Task, TileEngine};

/// The dense-tensor-core baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NvDtc {
    precision: Precision,
}

impl NvDtc {
    /// Creates the engine at the given precision (64 or 128 MAC lanes).
    pub fn new(precision: Precision) -> Self {
        NvDtc { precision }
    }

    /// T3 box M dimension: 4 @FP64, 8 @FP32 (Table VI).
    fn box_m(&self) -> usize {
        self.precision.lanes() / 16
    }
}

impl Default for NvDtc {
    fn default() -> Self {
        NvDtc::new(Precision::Fp64)
    }
}

impl TileEngine for NvDtc {
    fn name(&self) -> &str {
        "NV-DTC"
    }

    fn lanes(&self) -> usize {
        self.precision.lanes()
    }

    fn execute(&self, task: &T1Task) -> T1Result {
        let mut r = T1Result::new(self.lanes());
        let (m0, n0, k0) = (self.box_m(), 4usize, 4usize);
        let n_total = task.n_cols.max(1);
        // Fixed dense schedule: every box takes one cycle, sparse or not.
        for mi in (0..16).step_by(m0) {
            for ni in (0..n_total).step_by(n0) {
                for ki in (0..16).step_by(k0) {
                    let mut useful = 0usize;
                    for r_ in mi..mi + m0 {
                        let arow = task.a.row_mask(r_);
                        for k in ki..ki + k0 {
                            if arow >> k & 1 == 1 {
                                let brow = task.b.row_mask(k);
                                for c in ni..(ni + n0).min(n_total) {
                                    if brow >> c & 1 == 1 {
                                        useful += 1;
                                    }
                                }
                            }
                        }
                    }
                    r.record_cycle(useful);
                    r.useful += useful as u64;
                }
            }
        }
        // Dense operand fetch and dense result writeback: the tensor core
        // moves full tiles regardless of their content.
        r.events.a_elems = 256;
        r.events.b_elems = (16 * n_total) as u64;
        r.events.c_writes = (16 * n_total) as u64;
        // Accumulation happens in the register tile across K boxes; no
        // scattered partial traffic.
        r.events.partial_updates = 0;
        r
    }

    fn network_costs(&self) -> NetworkCosts {
        // Static operand delivery: small fixed-function networks.
        let fixed = network::crossbar_energy_per_elem(16, 16);
        NetworkCosts { a: fixed, b: fixed, c_partial: fixed, c_final: fixed }
    }

    fn area_mm2(&self) -> f64 {
        // The dense tensor core is the zero-overhead reference point: every
        // STC's "dedicated modules" are measured on top of it. Use a small
        // epsilon to keep EED ratios finite.
        0.001
    }

    fn c_network_ports(&self) -> u64 {
        64 * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::Block16;

    #[test]
    fn dense_task_is_64_cycles_full_util() {
        let e = NvDtc::default();
        let r = e.execute(&T1Task::mm(Block16::dense(), Block16::dense()));
        assert_eq!(r.cycles, 64);
        assert_eq!(r.useful, 4096);
        assert!((r.util.mean_utilisation() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sparse_task_same_cycles_low_util() {
        let e = NvDtc::default();
        let diag = Block16::from_fn(|r, c| r == c);
        let r = e.execute(&T1Task::mm(diag, diag));
        // Fixed schedule: still 64 cycles for only 16 products.
        assert_eq!(r.cycles, 64);
        assert_eq!(r.useful, 16);
        assert!(r.util.mean_utilisation() < 0.01);
    }

    #[test]
    fn mv_task_uses_16_cycles() {
        let e = NvDtc::default();
        let r = e.execute(&T1Task::mv(Block16::dense(), u16::MAX));
        // 16 (M) x 1 (N ceil to one 4-wide box) x 16 (K) / boxes of 4x4x4.
        assert_eq!(r.cycles, 16);
        assert_eq!(r.useful, 256);
        // MV caps utilisation at 25 %: each 4-wide N box has 1 useful col.
        assert!((r.util.mean_utilisation() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn fp32_uses_bigger_boxes() {
        let e = NvDtc::new(Precision::Fp32);
        let r = e.execute(&T1Task::mm(Block16::dense(), Block16::dense()));
        // 2 x 4 x 4 = 32 boxes of 8x4x4.
        assert_eq!(r.cycles, 32);
        assert_eq!(r.useful, 4096);
    }

    #[test]
    fn dense_traffic_is_structure_independent() {
        let e = NvDtc::default();
        let sparse = e.execute(&T1Task::mm(Block16::from_fn(|r, c| r + c == 3), Block16::dense()));
        assert_eq!(sparse.events.a_elems, 256);
        assert_eq!(sparse.events.c_writes, 256);
    }
}
