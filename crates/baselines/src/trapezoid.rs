//! Trapezoid (Yang et al., ISCA'24), throughput-aligned as in the paper.
//!
//! Trapezoid is a versatile dense/sparse matrix engine with three modes
//! and rigid T3 geometries (Table VI, 64-MAC column):
//!
//! * **TrIP** (inner product): 16 x 2 x 2,
//! * **TrGT** (Gustavson, tall): 16 x 4 x 1,
//! * **TrGS** (Gustavson, square): 8 x 4 x 2.
//!
//! Each mode assigns one PE row per (compacted nonempty) A row; a PE row
//! processes a positional `k0`-wide K window against a positional `n0`-wide
//! B-column window per cycle, and a row group finishes when its *slowest*
//! row finishes — the
//! per-row **load imbalance** the paper blames for Trapezoid's modest
//! SpGEMM gains on irregular matrices (Section VI-D). Each T1 task runs
//! under every mode and the best is kept, matching the paper's
//! "best-performing configuration" methodology.

use simkit::{network, NetworkCosts, Precision, T1Result, T1Task, TileEngine};

/// The Trapezoid baseline (performance comparison only, as in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trapezoid {
    precision: Precision,
}

impl Trapezoid {
    /// Creates the engine at the given precision.
    pub fn new(precision: Precision) -> Self {
        Trapezoid { precision }
    }

    /// The `(m0, n0, k0)` geometries of TrIP / TrGT / TrGS (Table VI).
    fn modes(&self) -> [(usize, usize, usize); 3] {
        match self.precision {
            Precision::Fp64 => [(16, 2, 2), (16, 4, 1), (8, 4, 2)],
            Precision::Fp32 => [(16, 4, 2), (16, 4, 2), (8, 4, 4)],
            Precision::Fp16 => [(16, 4, 4), (16, 8, 2), (8, 8, 4)],
        }
    }

    fn run_mode(&self, task: &T1Task, m0: usize, n0: usize, k0: usize) -> T1Result {
        let lanes = self.lanes();
        let mut r = T1Result::new(lanes);
        let n_total = task.n_cols.max(1);

        // Per-row cycle schedules: each entry is the useful-product count
        // of one row-cycle (a positional k0-window x n0-column-window
        // quantum — the rigid T3 geometry of Table VI; scattered nonzeros
        // across windows waste lanes, like the other fixed-shape designs).
        let mut rows: Vec<Vec<usize>> = Vec::new();
        let mut row_nnz: Vec<usize> = Vec::new();
        for row in 0..16 {
            let arow = task.a.row_mask(row);
            if arow == 0 {
                continue;
            }
            let mut sched = Vec::new();
            for k0_lo in (0..16).step_by(k0) {
                let kwin: Vec<usize> =
                    (k0_lo..k0_lo + k0).filter(|&k| arow >> k & 1 == 1).collect();
                if kwin.is_empty() {
                    continue;
                }
                let union: u16 =
                    kwin.iter().map(|&k| task.b.row_mask(k)).fold(0, |a, m| a | m);
                if union == 0 {
                    continue;
                }
                for n_lo in (0..n_total).step_by(n0) {
                    let width = n0.min(n_total - n_lo);
                    let gmask = (((1u32 << width) - 1) as u16) << n_lo;
                    let useful: usize = kwin
                        .iter()
                        .map(|&k| (task.b.row_mask(k) & gmask).count_ones() as usize)
                        .sum();
                    if useful > 0 {
                        sched.push(useful);
                    }
                }
            }
            if !sched.is_empty() {
                rows.push(sched);
                row_nnz.push(arow.count_ones() as usize);
            }
        }

        for (group, nnzs) in rows.chunks(m0).zip(row_nnz.chunks(m0)) {
            let group_cycles = group.iter().map(Vec::len).max().unwrap_or(0);
            for t in 0..group_cycles {
                let used: usize = group.iter().map(|s| s.get(t).copied().unwrap_or(0)).sum();
                r.record_cycle(used.min(lanes));
                r.useful += used as u64;
            }
            for (sched, &nnz) in group.iter().zip(nnzs) {
                r.events.a_elems += nnz as u64;
                r.events.b_elems += sched.iter().sum::<usize>() as u64;
            }
            r.events.sched_ops += 1;
        }
        // Dot products accumulate inside the PE rows: one partial per
        // structurally nonzero output.
        r.events.partial_updates = task.c_nnz() as u64;
        r.events.c_writes = task.c_nnz() as u64;
        r
    }
}

impl Default for Trapezoid {
    fn default() -> Self {
        Trapezoid::new(Precision::Fp64)
    }
}

impl TileEngine for Trapezoid {
    fn name(&self) -> &str {
        "Trapezoid"
    }

    fn lanes(&self) -> usize {
        self.precision.lanes()
    }

    fn execute(&self, task: &T1Task) -> T1Result {
        self.modes()
            .iter()
            .map(|&(m0, n0, k0)| self.run_mode(task, m0, n0, k0))
            .min_by_key(|r| r.cycles)
            .expect("at least one mode")
    }

    fn network_costs(&self) -> NetworkCosts {
        NetworkCosts {
            a: network::crossbar_energy_per_elem(16, 8),
            b: network::crossbar_energy_per_elem(16, 16),
            c_partial: network::crossbar_energy_per_elem(64, 64),
            c_final: network::crossbar_energy_per_elem(64, 64),
        }
    }

    fn area_mm2(&self) -> f64 {
        simkit::area::GENERIC_STC_AREA_MM2
    }

    fn c_network_ports(&self) -> u64 {
        64 * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::Block16;

    #[test]
    fn dense_block_full_throughput() {
        let e = Trapezoid::default();
        let r = e.execute(&T1Task::mm(Block16::dense(), Block16::dense()));
        // TrIP: 16 rows x (8 k-chunks x 8 col-chunks) balanced = 64 cycles.
        assert_eq!(r.cycles, 64);
        assert_eq!(r.useful, 4096);
        assert!((r.util.mean_utilisation() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mv_uses_k_pairs_per_cycle() {
        // Dense A, dense x: each row has 16 k's in chunks of 2 (TrIP),
        // one column: 8 row-cycles, 16 rows in one group -> 8 cycles.
        let e = Trapezoid::default();
        let r = e.execute(&T1Task::mv(Block16::dense(), u16::MAX));
        assert_eq!(r.useful, 256);
        assert_eq!(r.cycles, 8);
        // 2 useful lanes of the 4 per PE row (N = 1 wastes n0): 50 %.
        assert!((r.util.mean_utilisation() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn load_imbalance_stalls_group() {
        // One heavy row among light rows: the group waits for it.
        let a = Block16::from_fn(|r, c| r == 0 || (r < 8 && c == 0));
        let b = Block16::dense();
        let e = Trapezoid::default();
        let t = T1Task::mm(a, b);
        let r = e.execute(&t);
        assert_eq!(r.useful, t.products());
        // Row 0: 16 k in chunks of 2, x 8 col chunks = 64 row-cycles in
        // TrIP; the light rows idle after their first few.
        assert!(r.cycles >= 32);
        assert!(r.util.mean_utilisation() < 0.5);
    }

    #[test]
    fn empty_rows_are_bypassed() {
        // Unlike GAMMA, Trapezoid compacts nonempty rows into groups.
        let a = Block16::from_fn(|r, c| r == 3 && c < 4);
        let e = Trapezoid::default();
        let r = e.execute(&T1Task::mm(a, Block16::dense()));
        assert_eq!(r.useful, 64);
        // Single row, 2 k-chunks x 8 col-chunks (TrIP) or 1x(4) (TrGS).
        assert!(r.cycles <= 16);
    }

    #[test]
    fn best_mode_is_selected() {
        // A single-k task: TrGT (k0 = 1, n0 = 4) beats TrIP (k0 = 2).
        let a = Block16::from_fn(|_, c| c == 0);
        let b = Block16::from_fn(|r, _| r == 0);
        let e = Trapezoid::default();
        let t = T1Task::mm(a, b);
        let r = e.execute(&t);
        assert_eq!(r.useful, t.products());
        // 16 rows x ceil(16 cols / 4) = 4 row-cycles each, one group.
        assert_eq!(r.cycles, 4);
    }

    #[test]
    fn useful_matches_products() {
        let a = Block16::from_fn(|r, c| (r * 5 + c) % 3 == 0);
        let b = Block16::from_fn(|r, c| (r + c) % 2 == 0);
        let t = T1Task::mm(a, b);
        let r = Trapezoid::default().execute(&t);
        assert_eq!(r.useful, t.products());
    }
}
