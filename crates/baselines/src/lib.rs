//! Baseline sparse-tensor-core models for the Uni-STC evaluation.
//!
//! Each baseline implements [`simkit::TileEngine`] with the dataflow and
//! task geometry the paper documents for it (Tables III and VI, Figs. 4, 6
//! and 14):
//!
//! | Engine | Dataflow | T3 task (64-MAC config) | Key restriction |
//! |---|---|---|---|
//! | [`NvDtc`] | dense | 4x4x4 boxes | no sparsity adaptation |
//! | [`DsStc`] | outer product | 8x8x1 (gathered) | no concatenation across K; every partial scattered |
//! | [`RmStc`] | row-row | 8x4x2 (gathered) | concatenation only along N; sensitive to sparse A |
//! | [`Gamma`] | Gustavson row-wise | 16x4x1 | cannot bypass empty rows in a 16-row group |
//! | [`Sigma`] | flexible dot product | 1x4x16 | single-sided: B zeros occupy lanes |
//! | [`Trapezoid`] | grouped dot product | best of TrIP/TrGT/TrGS | per-row load imbalance inside a group |
//!
//! GAMMA, SIGMA and Trapezoid are throughput-aligned adaptations (the paper
//! does the same and compares them on performance only, Section VI-C).
//!
//! # Example
//!
//! ```
//! use baselines::{DsStc, RmStc};
//! use simkit::{driver, EnergyModel, Precision, TileEngine};
//! use sparse::{BbcMatrix, CsrMatrix, CooMatrix};
//!
//! # fn main() -> Result<(), sparse::FormatError> {
//! let mut coo = CooMatrix::new(32, 32);
//! for i in 0..32 { coo.push(i, i, 1.0); }
//! let a = BbcMatrix::from_csr(&CsrMatrix::try_from(coo)?);
//! let em = EnergyModel::default();
//! let ds = driver::run_spmv(&DsStc::new(Precision::Fp64), &em, &a);
//! let rm = driver::run_spmv(&RmStc::new(Precision::Fp64), &em, &a);
//! assert!(ds.cycles > 0 && rm.cycles > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ds_stc;
mod gamma;
mod nv_dtc;
mod rm_stc;
mod sigma;
mod trapezoid;
pub(crate) mod util;

pub use ds_stc::DsStc;
pub use gamma::Gamma;
pub use nv_dtc::NvDtc;
pub use rm_stc::RmStc;
pub use sigma::Sigma;
pub use trapezoid::Trapezoid;

use simkit::{Precision, TileEngine};

/// All six baseline engines at the given precision, boxed for driver loops.
pub fn all_baselines(precision: Precision) -> Vec<Box<dyn TileEngine>> {
    vec![
        Box::new(NvDtc::new(precision)),
        Box::new(DsStc::new(precision)),
        Box::new(RmStc::new(precision)),
        Box::new(Gamma::new(precision)),
        Box::new(Sigma::new(precision)),
        Box::new(Trapezoid::new(precision)),
    ]
}

#[cfg(test)]
mod conformance {
    //! Cross-engine conformance: every baseline must (a) account for every
    //! intermediate product exactly once and (b) never exceed its lane
    //! budget in any cycle — checked by construction of `UtilHistogram` —
    //! across randomized task structures.

    use super::*;
    use simkit::{Block16, Precision, T1Task};
    use sparse::rng::Rng64;

    /// Deterministic replacement for the old proptest strategy: a seeded
    /// random block with up to `max_nnz` set positions.
    fn random_block(rng: &mut Rng64, max_nnz: usize) -> Block16 {
        let nnz = rng.next_range(max_nnz + 1);
        let mut b = Block16::empty();
        for _ in 0..nnz {
            b.set(rng.next_range(16), rng.next_range(16));
        }
        b
    }

    const CASES: u64 = 64;

    #[test]
    fn engines_cover_all_products_mm() {
        for seed in 0..CASES {
            let mut rng = Rng64::new(seed);
            let task = T1Task::mm(random_block(&mut rng, 48), random_block(&mut rng, 48));
            if task.is_trivial() {
                continue;
            }
            for engine in all_baselines(Precision::Fp64) {
                let r = engine.execute(&task);
                assert_eq!(
                    r.useful,
                    task.products(),
                    "{} lost or duplicated products (seed {seed})",
                    engine.name()
                );
                assert_eq!(r.util.useful_ops(), r.useful, "{}", engine.name());
                assert!(r.cycles > 0, "{} took zero cycles", engine.name());
            }
        }
    }

    #[test]
    fn engines_cover_all_products_mv() {
        for seed in 0..CASES {
            let mut rng = Rng64::new(seed ^ 0x11);
            let mask = rng.next_u64() as u16;
            let task = T1Task::mv(random_block(&mut rng, 48), mask);
            if task.is_trivial() {
                continue;
            }
            for engine in all_baselines(Precision::Fp64) {
                let r = engine.execute(&task);
                assert_eq!(r.useful, task.products(), "{} (seed {seed})", engine.name());
                assert!(r.cycles > 0, "{}", engine.name());
            }
        }
    }

    #[test]
    fn fp32_doubles_lanes() {
        for seed in 0..CASES {
            let mut rng = Rng64::new(seed ^ 0x22);
            let task = T1Task::mm(random_block(&mut rng, 32), random_block(&mut rng, 32));
            if task.is_trivial() {
                continue;
            }
            for engine in all_baselines(Precision::Fp32) {
                let r = engine.execute(&task);
                assert_eq!(engine.lanes(), 128, "{}", engine.name());
                assert_eq!(r.useful, task.products(), "{} (seed {seed})", engine.name());
            }
        }
    }

    #[test]
    fn fp16_quadruples_lanes() {
        for seed in 0..CASES {
            let mut rng = Rng64::new(seed ^ 0x33);
            let task = T1Task::mm(random_block(&mut rng, 32), random_block(&mut rng, 32));
            if task.is_trivial() {
                continue;
            }
            for engine in all_baselines(Precision::Fp16) {
                let r = engine.execute(&task);
                assert_eq!(engine.lanes(), 256, "{}", engine.name());
                assert_eq!(r.useful, task.products(), "{} (seed {seed})", engine.name());
            }
        }
    }

    #[test]
    fn dense_mm_cycle_counts() {
        let task = T1Task::mm(Block16::dense(), Block16::dense());
        // The dense floor per precision: 4096 products / lanes. Every
        // baseline's dense schedule reaches it (full utilisation).
        for (precision, floor) in
            [(Precision::Fp64, 64u64), (Precision::Fp32, 32), (Precision::Fp16, 16)]
        {
            for engine in all_baselines(precision) {
                let r = engine.execute(&task);
                assert!(
                    r.cycles >= floor,
                    "{} broke the {floor}-cycle floor at {precision}",
                    engine.name()
                );
                assert!(
                    r.cycles <= floor + 16,
                    "{} needs {} cycles on a dense block at {precision}",
                    engine.name(),
                    r.cycles
                );
            }
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<String> =
            all_baselines(Precision::Fp64).iter().map(|e| e.name().to_owned()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
