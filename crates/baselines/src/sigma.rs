//! SIGMA (Qin et al., HPCA'20), throughput-aligned as in the paper.
//!
//! Dataflow: **flexible dot product** with a rigid T3 quantum of
//! 1 x (8|4) x 16 (Table VI): each cycle, the Benes distribution network
//! maps one A row's nonzeros across the K-deep lane array against a group
//! of (8|4) B columns, and the forwarding adder network (FAN) reduces
//! them. Two documented weaknesses (Section VI-C.1 / Fig. 21):
//!
//! * the dataflow is **single-sided** — B operands are broadcast by K
//!   position whether or not they are zero, so sparse B wastes lanes and
//!   transmission energy;
//! * the 1-row T3 quantum leaves most lanes idle on short rows, which is
//!   why SIGMA is "impeded" on SpMV and achieves "only marginal SpGEMM
//!   improvements" in the AMG study.

use simkit::{network, NetworkCosts, Precision, T1Result, T1Task, TileEngine};

/// The SIGMA baseline (performance comparison only, as in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sigma {
    precision: Precision,
}

impl Sigma {
    /// Creates the engine at the given precision.
    pub fn new(precision: Precision) -> Self {
        Sigma { precision }
    }

    /// N-group width: 4 @FP64, 8 @FP32 (Table VI).
    fn group_width(&self) -> usize {
        match self.precision {
            Precision::Fp64 => 4,
            Precision::Fp32 => 8,
            Precision::Fp16 => 16,
        }
    }
}

impl Default for Sigma {
    fn default() -> Self {
        Sigma::new(Precision::Fp64)
    }
}

impl TileEngine for Sigma {
    fn name(&self) -> &str {
        "SIGMA"
    }

    fn lanes(&self) -> usize {
        self.precision.lanes()
    }

    fn execute(&self, task: &T1Task) -> T1Result {
        let mut r = T1Result::new(self.lanes());
        let w = self.group_width();
        let n_total = task.n_cols.max(1);

        for row in 0..16 {
            let arow = task.a.row_mask(row);
            let nk = arow.count_ones() as usize;
            if nk == 0 {
                continue;
            }
            r.events.a_elems += nk as u64; // A row fetched once, stationary
            for g0 in (0..n_total).step_by(w) {
                let width = w.min(n_total - g0);
                let mut useful = 0usize;
                let mut outputs = 0usize;
                for c in g0..g0 + width {
                    let matched = (arow & task.b.col_mask(c)).count_ones() as usize;
                    useful += matched;
                    if matched > 0 {
                        outputs += 1;
                    }
                }
                if useful == 0 {
                    // The bitmap front-end drops fully-mismatched groups.
                    continue;
                }
                // One rigid 1 x w x 16 T3 quantum per cycle: B values are
                // broadcast into nk x width lanes regardless of B zeros
                // (the single-sided transmission overhead).
                r.events.b_elems += (nk * width) as u64;
                r.events.partial_updates += outputs as u64;
                r.events.sched_ops += 1;
                r.record_cycle(useful);
                r.useful += useful as u64;
            }
        }
        r.events.c_writes = task.c_nnz() as u64;
        r
    }

    fn network_costs(&self) -> NetworkCosts {
        NetworkCosts {
            // Benes distribution network over the full lane array.
            a: network::crossbar_energy_per_elem(16, 64),
            b: network::crossbar_energy_per_elem(16, 64),
            c_partial: network::crossbar_energy_per_elem(64, 64),
            c_final: network::crossbar_energy_per_elem(64, 64),
        }
    }

    fn area_mm2(&self) -> f64 {
        simkit::area::GENERIC_STC_AREA_MM2
    }

    fn c_network_ports(&self) -> u64 {
        64 * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::Block16;

    #[test]
    fn dense_block_full_throughput() {
        let e = Sigma::default();
        let r = e.execute(&T1Task::mm(Block16::dense(), Block16::dense()));
        // 16 rows x 4 column groups = 64 cycles, full utilisation.
        assert_eq!(r.cycles, 64);
        assert_eq!(r.useful, 4096);
        assert!((r.util.mean_utilisation() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn short_rows_leave_lanes_idle() {
        // One nonzero per row: each 1 x 4 x 16 quantum carries 4 useful
        // products on 64 lanes.
        let a = Block16::from_fn(|r, c| c == r);
        let e = Sigma::default();
        let r = e.execute(&T1Task::mm(a, Block16::dense()));
        assert_eq!(r.useful, 256);
        assert_eq!(r.cycles, 64); // 16 rows x 4 groups, one per cycle
        assert!(r.util.mean_utilisation() < 0.07);
    }

    #[test]
    fn sparse_b_wastes_transmission() {
        let b = Block16::from_fn(|_, c| c == 0);
        let e = Sigma::default();
        let r = e.execute(&T1Task::mm(Block16::dense(), b));
        assert_eq!(r.useful, 256);
        // Only the first group of each row survives the bitmap check.
        assert_eq!(r.cycles, 16);
        // B broadcast counts the zero lanes: 16 k x 4 cols per quantum.
        assert_eq!(r.events.b_elems, 16 * 64);
    }

    #[test]
    fn mv_is_one_row_per_cycle() {
        let e = Sigma::default();
        let r = e.execute(&T1Task::mv(Block16::dense(), u16::MAX));
        assert_eq!(r.useful, 256);
        // 16 rows, one rigid quantum each: the Fig. 21 SpMV weakness.
        assert_eq!(r.cycles, 16);
        assert!((r.util.mean_utilisation() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn useful_matches_products() {
        let a = Block16::from_fn(|r, c| (r + 2 * c) % 5 == 0);
        let b = Block16::from_fn(|r, c| (3 * r + c) % 4 == 0);
        let t = T1Task::mm(a, b);
        let r = Sigma::default().execute(&t);
        assert_eq!(r.useful, t.products());
    }
}
