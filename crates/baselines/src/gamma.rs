//! GAMMA (Zhang et al., ASPLOS'21), throughput-aligned as in the paper.
//!
//! Dataflow: **Gustavson row-wise**, T3 = 16 x (8|4) x 1: for each K
//! position, the scalars of the full 16-row A column multiply a gathered
//! column group of the B row. The paper's documented weakness: GAMMA's
//! blocking "cannot bypass empty rows" — rows of the 16-row group with a
//! zero A scalar still occupy their lanes (Section VI-C.1).

use crate::util::chunks;
use simkit::{network, NetworkCosts, Precision, T1Result, T1Task, TileEngine};

/// The GAMMA baseline (performance comparison only, as in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gamma {
    precision: Precision,
}

impl Gamma {
    /// Creates the engine at the given precision.
    pub fn new(precision: Precision) -> Self {
        Gamma { precision }
    }

    /// Column-group width: 4 @FP64, 8 @FP32 (Table VI).
    fn group_width(&self) -> usize {
        match self.precision {
            Precision::Fp64 => 4,
            Precision::Fp32 => 8,
            Precision::Fp16 => 16,
        }
    }
}

impl Default for Gamma {
    fn default() -> Self {
        Gamma::new(Precision::Fp64)
    }
}

impl TileEngine for Gamma {
    fn name(&self) -> &str {
        "GAMMA"
    }

    fn lanes(&self) -> usize {
        self.precision.lanes()
    }

    fn execute(&self, task: &T1Task) -> T1Result {
        let mut r = T1Result::new(self.lanes());
        let w = self.group_width();
        for k in 0..16 {
            let na = task.a.col_mask(k).count_ones() as usize;
            let nb = task.b.row_mask(k).count_ones() as usize;
            if na == 0 || nb == 0 {
                continue;
            }
            r.events.a_elems += na as u64;
            r.events.b_elems += nb as u64;
            for cw in chunks(nb, w) {
                // All 16 row lanes are held by the group whether or not
                // their A scalar is nonzero: empty rows are not bypassed.
                let used = na * cw;
                r.record_cycle(used);
                r.useful += used as u64;
                // K = 1 per task: each product is its own partial.
                r.events.partial_updates += used as u64;
            }
            r.events.sched_ops += 1;
        }
        r.events.c_writes = task.c_nnz() as u64;
        r
    }

    fn network_costs(&self) -> NetworkCosts {
        NetworkCosts {
            a: network::crossbar_energy_per_elem(16, 8),
            b: network::crossbar_energy_per_elem(16, 8),
            c_partial: network::crossbar_energy_per_elem(64, 128),
            c_final: network::crossbar_energy_per_elem(64, 128),
        }
    }

    fn area_mm2(&self) -> f64 {
        simkit::area::GENERIC_STC_AREA_MM2
    }

    fn c_network_ports(&self) -> u64 {
        64 * 128
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::Block16;

    #[test]
    fn dense_block_full_utilisation() {
        let e = Gamma::default();
        let r = e.execute(&T1Task::mm(Block16::dense(), Block16::dense()));
        // 16 k x 4 column groups = 64 cycles.
        assert_eq!(r.cycles, 64);
        assert_eq!(r.useful, 4096);
        assert!((r.util.mean_utilisation() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_rows_not_bypassed() {
        // Only 2 of 16 A rows populated: utilisation capped at 2/16.
        let a = Block16::from_fn(|r, _| r < 2);
        let e = Gamma::default();
        let r = e.execute(&T1Task::mm(a, Block16::dense()));
        assert!(r.util.mean_utilisation() <= 2.0 / 16.0 + 1e-12);
        assert_eq!(r.useful, 2 * 16 * 16);
    }

    #[test]
    fn mv_single_column_group() {
        let e = Gamma::default();
        let r = e.execute(&T1Task::mv(Block16::dense(), u16::MAX));
        // nb = 1 per k: one group per k, 16 lanes of 64.
        assert_eq!(r.cycles, 16);
        assert_eq!(r.useful, 256);
        assert!((r.util.mean_utilisation() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn useful_matches_products() {
        let a = Block16::from_fn(|r, c| (r * 3 + c) % 4 == 0);
        let b = Block16::from_fn(|r, c| (r + c) % 3 == 0);
        let t = T1Task::mm(a, b);
        let r = Gamma::default().execute(&t);
        assert_eq!(r.useful, t.products());
    }
}
