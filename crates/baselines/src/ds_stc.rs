//! DS-STC: the dual-side sparse tensor core (Wang et al., ISCA'21 /
//! Zhang et al., TC'24), as characterised in the paper.
//!
//! Dataflow: **outer product**. For each K position, DS-STC multiplies a
//! *half-column* access window of A with a *half-row* window of B in T3
//! tiles of 8x8x1 (@FP64; 8x16x1 @FP32). Three properties drive its
//! inefficiencies (Figs. 4, 6 and 14):
//!
//! * the rigid positional windows waste lanes whenever nonzeros scatter
//!   across windows (the paper's red-slashed "ineffective accesses");
//! * tasks at different K positions cannot be concatenated, so every
//!   occupied K slice costs at least one full cycle;
//! * every intermediate product is scattered across a full-scale output
//!   network toward the C accumulator (no pre-merging), which dominates
//!   its energy (Fig. 18).

use simkit::{network, NetworkCosts, Precision, T1Result, T1Task, TileEngine};

/// The dual-side sparse tensor core baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DsStc {
    precision: Precision,
}

impl DsStc {
    /// Creates the engine at the given precision.
    pub fn new(precision: Precision) -> Self {
        DsStc { precision }
    }

    /// Access-window widths: T3 = 8 x (16|8) x 1 (Table VI); the FP16
    /// tier extrapolates to a full 16 x 16 x 1 slice per cycle.
    fn chunk_dims(&self) -> (usize, usize) {
        match self.precision {
            Precision::Fp64 => (8, 8),
            Precision::Fp32 => (8, 16),
            Precision::Fp16 => (16, 16),
        }
    }
}

impl Default for DsStc {
    fn default() -> Self {
        DsStc::new(Precision::Fp64)
    }
}

impl TileEngine for DsStc {
    fn name(&self) -> &str {
        "DS-STC"
    }

    fn lanes(&self) -> usize {
        self.precision.lanes()
    }

    fn execute(&self, task: &T1Task) -> T1Result {
        let mut r = T1Result::new(self.lanes());
        let (wa, wb) = self.chunk_dims();
        for k in 0..16 {
            let acol = task.a.col_mask(k);
            let brow = task.b.row_mask(k);
            if acol == 0 || brow == 0 {
                // The bitmap front-end skips empty K slices.
                continue;
            }
            // Fig. 4: per cycle DS-STC forms an outer product from a
            // *half-column of A* and a *half-row of B* — positional access
            // windows, not perfectly gathered nonzeros. Sparsity scattered
            // across windows causes the paper's "ineffective accesses".
            let a_wins: Vec<usize> = (0..16)
                .step_by(wa)
                .map(|lo| (acol >> lo & ((1u32 << wa) - 1) as u16).count_ones() as usize)
                .filter(|&n| n > 0)
                .collect();
            let b_wins: Vec<usize> = (0..16)
                .step_by(wb)
                .map(|lo| {
                    (brow >> lo & ((1u32 << wb) - 1) as u16).count_ones() as usize
                })
                .filter(|&n| n > 0)
                .collect();
            // The A window is buffered once per K slice; the B windows are
            // re-streamed for every A window.
            let na: usize = a_wins.iter().sum();
            let nb: usize = b_wins.iter().sum();
            r.events.a_elems += na as u64;
            r.events.b_elems += (nb * a_wins.len()) as u64;
            for &ca in &a_wins {
                for &cb in &b_wins {
                    r.record_cycle(ca * cb);
                    r.useful += (ca * cb) as u64;
                }
            }
            // Outer product: every partial product is scattered toward the
            // C accumulator individually (no merge before write).
            r.events.partial_updates += (na * nb) as u64;
        }
        r.events.c_writes = task.c_nnz() as u64;
        r.events.sched_ops = 16; // one window decision per K slice
        r
    }

    fn network_costs(&self) -> NetworkCosts {
        NetworkCosts {
            a: network::crossbar_energy_per_elem(16, 8),
            b: network::crossbar_energy_per_elem(16, 8),
            // Scatter across the full-scale output crossbar.
            c_partial: network::flat_network_cost(),
            c_final: network::flat_network_cost(),
        }
    }

    fn area_mm2(&self) -> f64 {
        simkit::area::DS_STC_AREA_MM2
    }

    fn c_network_ports(&self) -> u64 {
        64 * 256
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::Block16;

    #[test]
    fn dense_block_runs_at_full_utilisation() {
        let e = DsStc::default();
        let r = e.execute(&T1Task::mm(Block16::dense(), Block16::dense()));
        // 16 K slices x ceil(16/8)^2 = 64 cycles.
        assert_eq!(r.cycles, 64);
        assert_eq!(r.useful, 4096);
        assert!((r.util.mean_utilisation() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spmv_utilisation_capped_at_one_eighth() {
        // Dense A, dense x: per K slice nb = 1 -> at most 8 of 64 lanes.
        let e = DsStc::default();
        let r = e.execute(&T1Task::mv(Block16::dense(), u16::MAX));
        assert_eq!(r.useful, 256);
        assert!(r.util.mean_utilisation() <= 0.125 + 1e-12);
        assert_eq!(r.cycles, 32); // 16 k x 2 A half-windows
    }

    #[test]
    fn empty_k_slices_are_skipped() {
        // A uses only k = 0; B provides k = 0 and k = 5.
        let a = Block16::from_fn(|_, c| c == 0);
        let b = Block16::from_fn(|r, _| r == 0 || r == 5);
        let e = DsStc::default();
        let r = e.execute(&T1Task::mm(a, b));
        // Only k = 0 is occupied on both sides: 16 A nnz x 16 B nnz.
        assert_eq!(r.useful, 256);
        assert_eq!(r.cycles, 4);
    }

    #[test]
    fn scattered_windows_waste_lanes() {
        // 8 nonzeros split across both A half-windows: twice the cycles of
        // the same nonzeros packed into one window (Fig. 4's red slashes).
        let packed = Block16::from_fn(|r, c| c == 0 && r < 8);
        let scattered = Block16::from_fn(|r, c| c == 0 && r % 2 == 0);
        let b = Block16::from_fn(|r, c| r == 0 && c < 8);
        let e = DsStc::default();
        let rp = e.execute(&T1Task::mm(packed, b));
        let rs = e.execute(&T1Task::mm(scattered, b));
        assert_eq!(rp.useful, rs.useful);
        assert_eq!(rp.cycles, 1);
        assert_eq!(rs.cycles, 2);
        assert!(rs.util.mean_utilisation() < rp.util.mean_utilisation());
    }

    #[test]
    fn no_k_concatenation_single_products_cost_full_cycles() {
        // One product in each of 16 K slices: 16 cycles at 1/64 utilisation
        // (the Fig. 6 restriction).
        let diag = Block16::from_fn(|r, c| r == c);
        let e = DsStc::default();
        let r = e.execute(&T1Task::mm(diag, diag));
        assert_eq!(r.useful, 16);
        assert_eq!(r.cycles, 16);
        assert!(r.util.mean_utilisation() < 0.02);
    }

    #[test]
    fn partials_scatter_every_product() {
        let e = DsStc::default();
        let t = T1Task::mm(Block16::dense(), Block16::dense());
        let r = e.execute(&t);
        assert_eq!(r.events.partial_updates, 4096);
        assert_eq!(r.events.c_writes, 256);
    }

    #[test]
    fn fp32_widens_b_chunks() {
        let e = DsStc::new(Precision::Fp32);
        let r = e.execute(&T1Task::mm(Block16::dense(), Block16::dense()));
        // 16 k x ceil(16/8) x ceil(16/16) = 32 cycles at 128 lanes.
        assert_eq!(r.cycles, 32);
        assert_eq!(r.useful, 4096);
    }
}
