//! Shared helpers for baseline dataflow models.

/// Iterator over the chunk widths produced by gathering `count` nonzeros
/// into compacted chunks of `width` (e.g. `chunks(19, 8)` yields 8, 8, 3).
pub(crate) fn chunks(count: usize, width: usize) -> impl Iterator<Item = usize> {
    debug_assert!(width > 0);
    let full = count / width;
    let rem = count % width;
    std::iter::repeat_n(width, full).chain((rem > 0).then_some(rem))
}

/// Iterator over the set-bit indices of a 16-bit mask.
pub(crate) fn bits(mask: u16) -> impl Iterator<Item = usize> {
    (0..16).filter(move |&i| mask >> i & 1 == 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_splits_with_remainder() {
        assert_eq!(chunks(19, 8).collect::<Vec<_>>(), vec![8, 8, 3]);
        assert_eq!(chunks(16, 8).collect::<Vec<_>>(), vec![8, 8]);
        assert_eq!(chunks(0, 8).count(), 0);
        assert_eq!(chunks(3, 8).collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn bits_enumerates_set_positions() {
        assert_eq!(bits(0b1001_0000_0000_0011).collect::<Vec<_>>(), vec![0, 1, 12, 15]);
        assert_eq!(bits(0).count(), 0);
        assert_eq!(bits(u16::MAX).count(), 16);
    }
}
