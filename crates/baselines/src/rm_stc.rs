//! RM-STC: the row-merge sparse tensor core (Huang et al., MICRO'23), as
//! characterised in the paper.
//!
//! Dataflow: **row-row**. Per cycle it executes a T3 task of
//! (8|16) x 4 x 2: scalars from an 8-row x 2-k window of `A` multiply
//! gathered 4-column groups of the two matching `B` rows, and the <= 2
//! products landing on the same output element are merged before write-out.
//! Its documented weaknesses (Figs. 4, 6, 14):
//!
//! * concatenation is possible only along the N dimension, so sparse `A`
//!   windows leave scalar lanes idle ("particularly sensitive to the
//!   sparsity of matrix A");
//! * MV tasks have a single N column, capping utilisation at 25 % (@FP64).

use crate::util::bits;
use simkit::{network, NetworkCosts, Precision, T1Result, T1Task, TileEngine};

/// The row-merge sparse tensor core baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RmStc {
    precision: Precision,
}

impl RmStc {
    /// Creates the engine at the given precision.
    pub fn new(precision: Precision) -> Self {
        RmStc { precision }
    }

    /// Rows and gathered-column-group width of the T3 window:
    /// 8x4 @FP64, 16x4 @FP32 (Table VI); 16x8 extrapolated @FP16.
    fn window_dims(&self) -> (usize, usize) {
        match self.precision {
            Precision::Fp64 => (8, 4),
            Precision::Fp32 => (16, 4),
            Precision::Fp16 => (16, 8),
        }
    }
}

impl Default for RmStc {
    fn default() -> Self {
        RmStc::new(Precision::Fp64)
    }
}

impl TileEngine for RmStc {
    fn name(&self) -> &str {
        "RM-STC"
    }

    fn lanes(&self) -> usize {
        self.precision.lanes()
    }

    fn execute(&self, task: &T1Task) -> T1Result {
        let mut r = T1Result::new(self.lanes());
        let (rows_per_group, group_width) = self.window_dims();
        let n_groups = 16 / rows_per_group;
        for kp in 0..8 {
            let (k0, k1) = (2 * kp, 2 * kp + 1);
            let b0 = task.b.row_mask(k0);
            let b1 = task.b.row_mask(k1);
            let union = b0 | b1;
            if union == 0 {
                continue;
            }
            // Gathered column groups of 4 over the union of the two B rows
            // (concatenation along N only — the Fig. 6 restriction).
            let cols: Vec<usize> = bits(union).collect();
            let mut b_fetched = false;
            for group in cols.chunks(group_width) {
                let gmask: u16 = group.iter().map(|&c| 1u16 << c).sum();
                let nb0 = (b0 & gmask).count_ones() as usize;
                let nb1 = (b1 & gmask).count_ones() as usize;
                let mut group_used = false;
                for rg in 0..n_groups {
                    let rlo = rg * rows_per_group;
                    let mut lanes_used = 0usize;
                    let mut scalars = 0u64;
                    let mut outputs = 0u64;
                    for row in rlo..rlo + rows_per_group {
                        let a0 = task.a.get(row, k0);
                        let a1 = task.a.get(row, k1);
                        if !a0 && !a1 {
                            continue;
                        }
                        scalars += a0 as u64 + a1 as u64;
                        let prods = if a0 { nb0 } else { 0 } + if a1 { nb1 } else { 0 };
                        lanes_used += prods;
                        // Products on the same output element merge (<= 2,
                        // one per k) before the write: distinct outputs.
                        let row_out = (if a0 { b0 } else { 0 } | if a1 { b1 } else { 0 }) & gmask;
                        outputs += row_out.count_ones() as u64;
                    }
                    if lanes_used == 0 {
                        continue;
                    }
                    group_used = true;
                    r.record_cycle(lanes_used);
                    r.useful += lanes_used as u64;
                    r.events.a_elems += scalars;
                    r.events.partial_updates += outputs;
                }
                if group_used && !b_fetched {
                    // B row data for this K pair is fetched once and
                    // broadcast to all scalar lanes / row groups.
                    r.events.b_elems += (b0.count_ones() + b1.count_ones()) as u64;
                    b_fetched = true;
                }
            }
            r.events.sched_ops += 1;
        }
        r.events.c_writes = task.c_nnz() as u64;
        r
    }

    fn network_costs(&self) -> NetworkCosts {
        NetworkCosts {
            a: network::crossbar_energy_per_elem(16, 8),
            b: network::crossbar_energy_per_elem(16, 4),
            // Row-merged partials travel a mid-scale output network.
            c_partial: network::crossbar_energy_per_elem(64, 64),
            c_final: network::crossbar_energy_per_elem(64, 64),
        }
    }

    fn area_mm2(&self) -> f64 {
        simkit::area::RM_STC_AREA_MM2
    }

    fn c_network_ports(&self) -> u64 {
        64 * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::Block16;

    #[test]
    fn dense_block_runs_at_full_utilisation() {
        let e = RmStc::default();
        let r = e.execute(&T1Task::mm(Block16::dense(), Block16::dense()));
        // 8 k-pairs x 4 column groups x 2 row groups = 64 cycles.
        assert_eq!(r.cycles, 64);
        assert_eq!(r.useful, 4096);
        assert!((r.util.mean_utilisation() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mv_utilisation_capped_at_quarter() {
        let e = RmStc::default();
        let r = e.execute(&T1Task::mv(Block16::dense(), u16::MAX));
        assert_eq!(r.useful, 256);
        // Single N column: at most 8 rows x 2 k = 16 of 64 lanes.
        assert!(r.util.mean_utilisation() <= 0.25 + 1e-12);
        assert_eq!(r.cycles, 16);
    }

    #[test]
    fn sparse_a_wastes_scalar_lanes() {
        // One A row only: 7 of 8 scalar rows idle.
        let a = Block16::from_fn(|r, _| r == 0);
        let e = RmStc::default();
        let r = e.execute(&T1Task::mm(a, Block16::dense()));
        assert_eq!(r.useful, 16 * 16);
        assert!(r.util.mean_utilisation() <= 0.125 + 1e-12);
    }

    #[test]
    fn merges_pairs_before_write() {
        // Both k's of a pair hit the same outputs: partials = half the
        // products.
        let a = Block16::from_fn(|r, c| r == 0 && c < 2);
        let b = Block16::from_fn(|r, c| r < 2 && c < 4);
        let e = RmStc::default();
        let r = e.execute(&T1Task::mm(a, b));
        assert_eq!(r.useful, 8);
        assert_eq!(r.events.partial_updates, 4);
    }

    #[test]
    fn empty_k_pairs_skipped() {
        let a = Block16::from_fn(|r, c| r == 0 && c == 0);
        let b = Block16::from_fn(|r, c| r == 0 && c == 0);
        let e = RmStc::default();
        let r = e.execute(&T1Task::mm(a, b));
        assert_eq!(r.cycles, 1);
        assert_eq!(r.useful, 1);
    }

    #[test]
    fn fp32_uses_sixteen_row_window() {
        let e = RmStc::new(Precision::Fp32);
        let r = e.execute(&T1Task::mm(Block16::dense(), Block16::dense()));
        // 8 k-pairs x 4 column groups x 1 row group = 32 cycles @128 lanes.
        assert_eq!(r.cycles, 32);
        assert_eq!(r.useful, 4096);
    }

    #[test]
    fn b_fetched_once_per_k_pair() {
        let e = RmStc::default();
        let r = e.execute(&T1Task::mm(Block16::dense(), Block16::dense()));
        // 8 k-pairs x 32 B elements.
        assert_eq!(r.events.b_elems, 256);
    }
}
