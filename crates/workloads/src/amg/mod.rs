//! Algebraic multigrid (AMG) solver — the application case study of the
//! paper's Fig. 21.
//!
//! The paper adapts an AMG solver (AmgT-style) and measures the speedup of
//! its SpMV and SpGEMM kernels under each STC. This module implements a
//! real aggregation-based AMG:
//!
//! * **Setup**: strength-of-connection filtering, greedy aggregation
//!   ([`aggregation`]), piecewise-constant prolongation `P`, restriction
//!   `R = P^T`, and the Galerkin triple product `A_c = R (A P)` computed
//!   with the reference SpGEMM — the SpGEMM workload of Fig. 21.
//! * **Solve**: damped-Jacobi V-cycles ([`vcycle`]) — the SpMV workload.
//!
//! [`AmgHierarchy::spgemm_pairs`] and [`AmgHierarchy::spmv_trace`] expose
//! the exact kernel mix so the Fig. 21 harness can replay it through every
//! simulated engine.

pub mod aggregation;
pub mod vcycle;

use sparse::ops::spgemm;
use sparse::CsrMatrix;

/// AMG construction options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmgOptions {
    /// Strength-of-connection threshold in `[0, 1]`.
    pub theta: f64,
    /// Maximum number of levels (including the finest).
    pub max_levels: usize,
    /// Stop coarsening when a level has at most this many rows.
    pub coarse_size: usize,
    /// Damped-Jacobi weight (2/3 is the classic choice).
    pub jacobi_weight: f64,
    /// Pre-smoothing sweeps per level per cycle.
    pub pre_smooth: usize,
    /// Post-smoothing sweeps per level per cycle.
    pub post_smooth: usize,
    /// Smoothed aggregation: damp the tentative prolongation with one
    /// weighted-Jacobi sweep, `P = (I - omega D^-1 A) T`. This is what
    /// makes aggregation AMG mesh-independent (and adds one more SpGEMM
    /// per level to the Fig. 21 setup workload).
    pub smoothed_aggregation: bool,
    /// Prolongation-smoothing weight (omega / lambda_max(D^-1 A)).
    pub prolongation_weight: f64,
}

impl Default for AmgOptions {
    fn default() -> Self {
        AmgOptions {
            theta: 0.25,
            max_levels: 10,
            coarse_size: 64,
            jacobi_weight: 2.0 / 3.0,
            pre_smooth: 2,
            post_smooth: 2,
            smoothed_aggregation: true,
            prolongation_weight: 2.0 / 3.0,
        }
    }
}

/// One AMG level: its operator and (except on the coarsest level) the
/// transfer operators to the next level.
#[derive(Debug, Clone)]
pub struct Level {
    /// The level operator `A_l`.
    pub a: CsrMatrix,
    /// Prolongation `P_l` (absent on the coarsest level).
    pub p: Option<CsrMatrix>,
    /// Restriction `R_l = P_l^T` (absent on the coarsest level).
    pub r: Option<CsrMatrix>,
}

/// A constructed AMG hierarchy.
#[derive(Debug, Clone)]
pub struct AmgHierarchy {
    /// Levels from finest (index 0) to coarsest.
    pub levels: Vec<Level>,
    /// Options used at construction.
    pub options: AmgOptions,
}

/// Smooths a tentative prolongation: `P = T - omega D^-1 (A T)`.
///
/// The `A T` product is one more SpGEMM in the setup's kernel mix; the
/// diagonal scaling and subtraction are cheap vector passes.
fn smooth_prolongation(a: &CsrMatrix, t: &CsrMatrix, omega: f64) -> CsrMatrix {
    let at = spgemm(a, t).expect("A and T conform by construction");
    // Scale rows of AT by omega / a_ii. lambda_max(D^-1 A) <= 2 for the
    // diagonally dominant operators we coarsen, so omega ~ 2/3 damps the
    // high-frequency range.
    let mut scaled = at;
    for r in 0..a.nrows() {
        let d = a.get(r, r).unwrap_or(1.0);
        if d.abs() < 1e-300 {
            continue;
        }
        let (lo, hi) = (scaled.row_ptr()[r], scaled.row_ptr()[r + 1]);
        for v in &mut scaled.values_mut()[lo..hi] {
            *v *= omega / d;
        }
    }
    sparse::ops::add_scaled(t, &scaled, -1.0).expect("T and scaled AT share a shape")
}

/// Builds an AMG hierarchy for a square matrix.
///
/// # Panics
///
/// Panics if `a` is not square or is empty.
pub fn build_hierarchy(a: &CsrMatrix, options: AmgOptions) -> AmgHierarchy {
    assert_eq!(a.nrows(), a.ncols(), "AMG needs a square operator");
    assert!(a.nrows() > 0, "AMG needs a nonempty operator");
    let mut levels: Vec<Level> = Vec::new();
    let mut current = a.clone();
    while levels.len() + 1 < options.max_levels && current.nrows() > options.coarse_size {
        let agg = aggregation::aggregate(&current, options.theta);
        if agg.n_aggregates == 0 || agg.n_aggregates >= current.nrows() {
            break; // coarsening stalled
        }
        let t = aggregation::prolongation(&agg);
        let p = if options.smoothed_aggregation {
            smooth_prolongation(&current, &t, options.prolongation_weight)
        } else {
            t
        };
        let r = p.transpose();
        // Galerkin triple product: A_c = R * (A * P) — two SpGEMMs, the
        // kernel mix Fig. 21 measures.
        let ap = spgemm(&current, &p).expect("A and P conform by construction");
        let coarse = spgemm(&r, &ap).expect("R and AP conform by construction");
        levels.push(Level { a: current, p: Some(p), r: Some(r) });
        current = coarse;
    }
    levels.push(Level { a: current, p: None, r: None });
    AmgHierarchy { levels, options }
}

impl AmgHierarchy {
    /// Number of levels.
    pub fn n_levels(&self) -> usize {
        self.levels.len()
    }

    /// Total grid complexity: sum of level rows over fine rows.
    pub fn grid_complexity(&self) -> f64 {
        let fine = self.levels[0].a.nrows() as f64;
        self.levels.iter().map(|l| l.a.nrows() as f64).sum::<f64>() / fine
    }

    /// Total operator complexity: sum of level nnz over fine nnz.
    pub fn operator_complexity(&self) -> f64 {
        let fine = self.levels[0].a.nnz() as f64;
        self.levels.iter().map(|l| l.a.nnz() as f64).sum::<f64>() / fine
    }

    /// The SpGEMM pairs of the setup phase, in execution order:
    /// `(A_l, P_l)` then `(R_l, A_l P_l)` per coarsened level.
    pub fn spgemm_pairs(&self) -> Vec<(CsrMatrix, CsrMatrix)> {
        let mut out = Vec::new();
        for l in &self.levels {
            if let (Some(p), Some(r)) = (&l.p, &l.r) {
                let ap = spgemm(&l.a, p).expect("pairs conform");
                out.push((l.a.clone(), p.clone()));
                out.push((r.clone(), ap));
            }
        }
        out
    }

    /// The SpMV invocation mix of `n_cycles` V-cycles: for each level,
    /// `(operator, invocations)`. Each smoothing sweep and each residual
    /// evaluation is one SpMV on that level's operator.
    pub fn spmv_trace(&self, n_cycles: usize) -> Vec<(&CsrMatrix, usize)> {
        let o = &self.options;
        let mut out = Vec::new();
        for (li, l) in self.levels.iter().enumerate() {
            let per_cycle = if li + 1 == self.levels.len() {
                // Coarsest: direct solve, no SpMV.
                0
            } else {
                // pre-smooths + residual + post-smooths (each Jacobi sweep
                // contains one SpMV; the residual restriction adds one).
                o.pre_smooth + 1 + o.post_smooth
            };
            if per_cycle > 0 {
                out.push((&l.a, per_cycle * n_cycles));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn hierarchy_coarsens_poisson() {
        let a = gen::poisson_2d(32); // 1024 unknowns
        let h = build_hierarchy(&a, AmgOptions::default());
        assert!(h.n_levels() >= 2, "only {} levels", h.n_levels());
        // Aggregation coarsens by roughly 3x per level on a 2-D stencil.
        for w in h.levels.windows(2) {
            assert!(w[1].a.nrows() < w[0].a.nrows());
        }
        assert!(h.levels.last().unwrap().a.nrows() <= 64 + 512);
        assert!(h.grid_complexity() < 2.0);
        assert!(h.operator_complexity() < 3.0);
    }

    #[test]
    fn galerkin_operators_stay_symmetric() {
        let a = gen::poisson_2d(16);
        let h = build_hierarchy(&a, AmgOptions::default());
        for l in &h.levels {
            let t = l.a.transpose();
            for (r, c, v) in l.a.iter() {
                let tv = t.get(r, c).unwrap_or(0.0);
                assert!((v - tv).abs() < 1e-9, "asymmetry at ({r},{c})");
            }
        }
    }

    #[test]
    fn spgemm_pairs_conform() {
        let a = gen::poisson_2d(16);
        let h = build_hierarchy(&a, AmgOptions::default());
        let pairs = h.spgemm_pairs();
        assert_eq!(pairs.len(), 2 * (h.n_levels() - 1));
        for (x, y) in &pairs {
            assert_eq!(x.ncols(), y.nrows());
        }
    }

    #[test]
    fn spmv_trace_counts_sweeps() {
        let a = gen::poisson_2d(16);
        let h = build_hierarchy(&a, AmgOptions::default());
        let trace = h.spmv_trace(3);
        // 2 + 1 + 2 = 5 SpMVs per level per cycle, x3 cycles.
        assert!(trace.iter().all(|&(_, n)| n == 15));
        assert_eq!(trace.len(), h.n_levels() - 1);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_rejected() {
        let a = CsrMatrix::zeros(4, 5);
        build_hierarchy(&a, AmgOptions::default());
    }
}
