//! Damped-Jacobi V-cycle and the AMG solve loop.

use sparse::ops::spmv;
use sparse::CsrMatrix;

use super::AmgHierarchy;

/// Result of an AMG solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveResult {
    /// V-cycles performed.
    pub iterations: usize,
    /// Final relative residual `||b - Ax|| / ||b||`.
    pub relative_residual: f64,
    /// Whether the tolerance was met.
    pub converged: bool,
}

/// One damped-Jacobi sweep: `x += w * D^-1 (b - A x)`.
///
/// Shared with the stencil time-stepped solver driver
/// (`crate::stencil::solver`), which replays the same smoother outside a
/// V-cycle.
pub(crate) fn jacobi_sweep(a: &CsrMatrix, b: &[f64], x: &mut [f64], weight: f64) {
    let ax = spmv(a, x).expect("dimensions fixed by hierarchy");
    for i in 0..a.nrows() {
        let d = a.get(i, i).unwrap_or(1.0);
        if d.abs() > 1e-300 {
            x[i] += weight * (b[i] - ax[i]) / d;
        }
    }
}

/// Residual `r = b - A x`.
fn residual(a: &CsrMatrix, b: &[f64], x: &[f64]) -> Vec<f64> {
    let ax = spmv(a, x).expect("dimensions fixed by hierarchy");
    b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect()
}

fn norm2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Dense LU solve with partial pivoting for the coarsest level.
///
/// # Panics
///
/// Panics if the matrix is singular to working precision.
pub fn dense_solve(a: &CsrMatrix, b: &[f64]) -> Vec<f64> {
    let n = a.nrows();
    assert_eq!(n, a.ncols(), "dense solve needs a square matrix");
    assert_eq!(n, b.len(), "right-hand side length mismatch");
    let mut m = a.to_dense();
    let mut x: Vec<f64> = b.to_vec();
    for col in 0..n {
        // Partial pivot.
        let piv = (col..n)
            .max_by(|&i, &j| {
                m[(i, col)].abs().partial_cmp(&m[(j, col)].abs()).expect("finite")
            })
            .expect("nonempty range");
        assert!(m[(piv, col)].abs() > 1e-12, "coarse operator is singular");
        if piv != col {
            for k in 0..n {
                let tmp = m[(col, k)];
                m[(col, k)] = m[(piv, k)];
                m[(piv, k)] = tmp;
            }
            x.swap(col, piv);
        }
        for row in col + 1..n {
            let f = m[(row, col)] / m[(col, col)];
            if f == 0.0 {
                continue;
            }
            for k in col..n {
                let v = m[(col, k)];
                m[(row, k)] -= f * v;
            }
            x[row] -= f * x[col];
        }
    }
    for col in (0..n).rev() {
        x[col] /= m[(col, col)];
        for row in 0..col {
            let f = m[(row, col)];
            x[row] -= f * x[col];
        }
    }
    x
}

impl AmgHierarchy {
    /// Performs one V-cycle on level `lvl`, improving `x` for `A_lvl x = b`.
    fn vcycle_level(&self, lvl: usize, b: &[f64], x: &mut Vec<f64>) {
        let level = &self.levels[lvl];
        if lvl + 1 == self.levels.len() {
            *x = dense_solve(&level.a, b);
            return;
        }
        let o = &self.options;
        for _ in 0..o.pre_smooth {
            jacobi_sweep(&level.a, b, x, o.jacobi_weight);
        }
        let r = residual(&level.a, b, x);
        let rt = level.r.as_ref().expect("non-coarsest level has R");
        let rc = spmv(rt, &r).expect("restriction conforms");
        let mut ec = vec![0.0; rc.len()];
        self.vcycle_level(lvl + 1, &rc, &mut ec);
        let p = level.p.as_ref().expect("non-coarsest level has P");
        let e = spmv(p, &ec).expect("prolongation conforms");
        for (xi, ei) in x.iter_mut().zip(&e) {
            *xi += ei;
        }
        for _ in 0..o.post_smooth {
            jacobi_sweep(&level.a, b, x, o.jacobi_weight);
        }
    }

    /// Performs one V-cycle on the finest level.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` or `x.len()` do not match the fine operator.
    pub fn vcycle(&self, b: &[f64], x: &mut Vec<f64>) {
        assert_eq!(b.len(), self.levels[0].a.nrows(), "rhs length mismatch");
        assert_eq!(x.len(), b.len(), "solution length mismatch");
        self.vcycle_level(0, b, x);
    }

    /// Solves `A x = b` by repeated V-cycles from a zero initial guess.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the fine operator.
    pub fn solve(&self, b: &[f64], tol: f64, max_cycles: usize) -> (Vec<f64>, SolveResult) {
        let a = &self.levels[0].a;
        assert_eq!(b.len(), a.nrows(), "rhs length mismatch");
        let bnorm = norm2(b).max(1e-300);
        let mut x = vec![0.0; b.len()];
        let mut iterations = 0;
        let mut rel = 1.0;
        while iterations < max_cycles {
            self.vcycle(b, &mut x);
            iterations += 1;
            rel = norm2(&residual(a, b, &x)) / bnorm;
            if rel < tol {
                break;
            }
        }
        (x, SolveResult { iterations, relative_residual: rel, converged: rel < tol })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amg::{build_hierarchy, AmgOptions};
    use crate::gen;

    #[test]
    fn dense_solve_inverts_small_system() {
        let mut coo = sparse::CooMatrix::new(3, 3);
        for (r, c, v) in [
            (0, 0, 4.0),
            (0, 1, 1.0),
            (1, 0, 1.0),
            (1, 1, 3.0),
            (1, 2, 1.0),
            (2, 1, 1.0),
            (2, 2, 2.0),
        ] {
            coo.push(r, c, v);
        }
        let a = CsrMatrix::try_from(coo).unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let x = dense_solve(&a, &b);
        let r = residual(&a, &b, &x);
        assert!(norm2(&r) < 1e-10);
    }

    #[test]
    fn dense_solve_handles_pivoting() {
        // Zero on the leading diagonal forces a row swap.
        let mut coo = sparse::CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        let a = CsrMatrix::try_from(coo).unwrap();
        let x = dense_solve(&a, &[5.0, 7.0]);
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn vcycle_reduces_residual() {
        let a = gen::poisson_2d(16);
        let h = build_hierarchy(&a, AmgOptions::default());
        let b = vec![1.0; 256];
        let mut x = vec![0.0; 256];
        let r0 = norm2(&residual(&a, &b, &x));
        h.vcycle(&b, &mut x);
        let r1 = norm2(&residual(&a, &b, &x));
        assert!(r1 < 0.8 * r0, "cycle reduced {r0} only to {r1}");
    }

    #[test]
    fn solve_converges_on_poisson() {
        let a = gen::poisson_2d(24);
        let h = build_hierarchy(&a, AmgOptions::default());
        let b: Vec<f64> = (0..a.nrows()).map(|i| ((i % 7) as f64) - 3.0).collect();
        let (x, res) = h.solve(&b, 1e-8, 200);
        assert!(res.converged, "residual {}", res.relative_residual);
        assert!(res.iterations < 200);
        // Check the solution truly solves the system.
        let r = residual(&a, &b, &x);
        assert!(norm2(&r) / norm2(&b) < 1e-8);
    }

    #[test]
    fn jacobi_alone_converges_slower_than_vcycle() {
        let a = gen::poisson_2d(16);
        let h = build_hierarchy(&a, AmgOptions::default());
        let b = vec![1.0; 256];
        // One V-cycle.
        let mut xv = vec![0.0; 256];
        h.vcycle(&b, &mut xv);
        let rv = norm2(&residual(&a, &b, &xv));
        // The same number of fine-level Jacobi sweeps without coarse
        // correction.
        let sweeps = h.options.pre_smooth + h.options.post_smooth;
        let mut xj = vec![0.0; 256];
        for _ in 0..sweeps {
            jacobi_sweep(&a, &b, &mut xj, h.options.jacobi_weight);
        }
        let rj = norm2(&residual(&a, &b, &xj));
        assert!(rv < rj, "V-cycle {rv} vs Jacobi {rj}");
    }
}
