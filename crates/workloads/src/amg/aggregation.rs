//! Strength-of-connection filtering and greedy aggregation.

use sparse::{CooMatrix, CsrMatrix};

/// The result of aggregating a level: each fine node's aggregate index.
#[derive(Debug, Clone)]
pub struct Aggregation {
    /// Aggregate index per fine node (`usize::MAX` never appears in the
    /// output: isolated nodes get singleton aggregates).
    pub assignment: Vec<usize>,
    /// Number of aggregates (coarse unknowns).
    pub n_aggregates: usize,
}

/// Builds the strength graph: entry `(i, j)` is strong when
/// `|a_ij| >= theta * max_{k != i} |a_ik|`.
///
/// Returns per-row lists of strong neighbours (excluding the diagonal).
#[allow(clippy::needless_range_loop)] // i indexes both the matrix and `strong`
pub fn strength_graph(a: &CsrMatrix, theta: f64) -> Vec<Vec<usize>> {
    let mut strong = vec![Vec::new(); a.nrows()];
    for i in 0..a.nrows() {
        let (cols, vals) = a.row(i);
        let max_off = cols
            .iter()
            .zip(vals)
            .filter(|(&c, _)| c as usize != i)
            .map(|(_, v)| v.abs())
            .fold(0.0f64, f64::max);
        if max_off == 0.0 {
            continue;
        }
        for (&c, &v) in cols.iter().zip(vals) {
            if c as usize != i && v.abs() >= theta * max_off {
                strong[i].push(c as usize);
            }
        }
    }
    strong
}

/// Greedy aggregation (the standard two-pass scheme): pass 1 forms an
/// aggregate from each fully-unaggregated strong neighbourhood; pass 2
/// attaches leftover nodes to a neighbouring aggregate; remaining isolated
/// nodes become singletons.
pub fn aggregate(a: &CsrMatrix, theta: f64) -> Aggregation {
    let n = a.nrows();
    let strong = strength_graph(a, theta);
    const UNASSIGNED: usize = usize::MAX;
    let mut assignment = vec![UNASSIGNED; n];
    let mut n_aggregates = 0usize;

    // Pass 1: root nodes whose entire strong neighbourhood is free.
    for i in 0..n {
        if assignment[i] != UNASSIGNED {
            continue;
        }
        if strong[i].iter().any(|&j| assignment[j] != UNASSIGNED) {
            continue;
        }
        let agg = n_aggregates;
        n_aggregates += 1;
        assignment[i] = agg;
        for &j in &strong[i] {
            assignment[j] = agg;
        }
    }

    // Pass 2: attach leftovers to a strongly-connected aggregate.
    for i in 0..n {
        if assignment[i] != UNASSIGNED {
            continue;
        }
        if let Some(&j) = strong[i].iter().find(|&&j| assignment[j] != UNASSIGNED) {
            assignment[i] = assignment[j];
        }
    }

    // Pass 3: singletons for anything still isolated.
    for slot in assignment.iter_mut() {
        if *slot == UNASSIGNED {
            *slot = n_aggregates;
            n_aggregates += 1;
        }
    }

    Aggregation { assignment, n_aggregates }
}

/// Piecewise-constant prolongation: `P[i, agg(i)] = 1`.
pub fn prolongation(agg: &Aggregation) -> CsrMatrix {
    let n = agg.assignment.len();
    let mut coo = CooMatrix::with_capacity(n, agg.n_aggregates, n);
    for (i, &a) in agg.assignment.iter().enumerate() {
        coo.push(i, a, 1.0);
    }
    CsrMatrix::try_from(coo).expect("assignments are in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn strength_graph_filters_weak_entries() {
        // Row 0: strong 5.0 and weak 0.1 off-diagonals.
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 10.0);
        coo.push(0, 1, 5.0);
        coo.push(0, 2, 0.1);
        coo.push(1, 1, 1.0);
        coo.push(2, 2, 1.0);
        let a = CsrMatrix::try_from(coo).unwrap();
        let s = strength_graph(&a, 0.25);
        assert_eq!(s[0], vec![1]);
        assert!(s[1].is_empty());
    }

    #[test]
    fn aggregate_covers_every_node() {
        let a = gen::poisson_2d(16);
        let agg = aggregate(&a, 0.25);
        assert_eq!(agg.assignment.len(), 256);
        assert!(agg.n_aggregates > 0 && agg.n_aggregates < 256);
        for &x in &agg.assignment {
            assert!(x < agg.n_aggregates);
        }
        // Every aggregate is nonempty.
        let mut seen = vec![false; agg.n_aggregates];
        for &x in &agg.assignment {
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn poisson_coarsening_ratio_is_sane() {
        // 5-point stencil aggregates have 3-5 nodes typically.
        let a = gen::poisson_2d(32);
        let agg = aggregate(&a, 0.25);
        let ratio = 1024.0 / agg.n_aggregates as f64;
        assert!((2.0..8.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn isolated_nodes_become_singletons() {
        let a = CsrMatrix::identity(4); // no off-diagonals at all
        let agg = aggregate(&a, 0.25);
        assert_eq!(agg.n_aggregates, 4);
    }

    #[test]
    fn prolongation_has_unit_row_sums() {
        let a = gen::poisson_2d(8);
        let agg = aggregate(&a, 0.25);
        let p = prolongation(&agg);
        assert_eq!(p.nrows(), 64);
        assert_eq!(p.ncols(), agg.n_aggregates);
        for r in 0..p.nrows() {
            assert_eq!(p.row_nnz(r), 1);
        }
    }
}
