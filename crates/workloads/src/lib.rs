//! Workloads for the Uni-STC evaluation.
//!
//! The paper evaluates on the SuiteSparse collection (2 893 matrices), the
//! DLMC pruned-DNN collection (302 matrices at 70 % / 98 % sparsity) and an
//! AMG solver. Those datasets are not redistributable here, so this crate
//! provides deterministic synthetic equivalents that exercise the same
//! code paths (see DESIGN.md, "Substitutions"):
//!
//! * [`gen`] — structure-family generators: FEM stencils, banded, uniform
//!   random, R-MAT power law, block-dense, arrow, Kronecker.
//! * [`corpus`] — a ~300-matrix SuiteSparse-like corpus sweeping the
//!   intermediate-product density axis of Fig. 20 end to end.
//! * [`representative`] — synthetic analogues of the paper's eight
//!   representative matrices (Table VII), matched on structure family and
//!   relative block density.
//! * [`dlmc`] — DLMC-like pruned weight matrices at ResNet-50 and
//!   Transformer layer shapes, and [`dnn`] — whole-model forward-pass
//!   accounting on a simulated engine.
//! * [`amg`] — a real algebraic-multigrid solver (strength graph, greedy
//!   aggregation, smoothed prolongation, Galerkin triple product,
//!   damped-Jacobi V-cycle) whose SpMV/SpGEMM mix drives the Fig. 21 case
//!   study.
//! * [`bfs`] / [`gnn`] — the other Table II applications: linear-algebraic
//!   breadth-first search (SpMV/SpMSpV mix) and a pooled GCN forward pass
//!   (SpMM/SpGEMM mix), both with engine-replayable kernel traces.
//! * [`stencil`] — structured-grid stencil operators (2-D 5/9-point,
//!   3-D 7/27-point) lowered CSR→BBC under a 16-aligned tile ordering
//!   that condenses the band into dense diagonal blocks, plus
//!   time-stepped damped-Jacobi / CG / heat-equation drivers — the
//!   repeated-operand regime the batch service's caches exploit.
//!
//! Everything is seeded and deterministic: the same inputs always produce
//! the same matrices.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amg;
pub mod bfs;
pub mod cg;
pub mod corpus;
pub mod dlmc;
pub mod dnn;
pub mod gen;
pub mod gnn;
pub mod representative;
pub mod stencil;
