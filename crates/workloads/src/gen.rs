//! Deterministic sparse-matrix generators covering the structure families
//! that drive STC behaviour.

use sparse::rng::Rng64;
use sparse::{CooMatrix, CsrMatrix};

/// Uniform random matrix: each entry independently nonzero with
/// probability `density`. Matches the paper's random-matrix methodology
/// (Fig. 16 uses random 8192x8192 matrices of varying sparsity).
///
/// # Panics
///
/// Panics if `density` is not in `[0, 1]` or `n == 0`.
pub fn random_uniform(n: usize, density: f64, seed: u64) -> CsrMatrix {
    assert!(n > 0, "matrix dimension must be positive");
    assert!((0.0..=1.0).contains(&density), "density must be in [0, 1]");
    let mut rng = Rng64::new(seed);
    let expected = (n as f64 * n as f64 * density).round() as usize;
    let mut coo = CooMatrix::with_capacity(n, n, expected);
    if density > 0.2 {
        // Dense-ish: Bernoulli per cell.
        for r in 0..n {
            for c in 0..n {
                if rng.next_f64() < density {
                    coo.push(r, c, value(&mut rng));
                }
            }
        }
    } else {
        // Sparse: sample coordinates (duplicates merge on compression,
        // keeping nnz within a fraction of a percent of the target).
        for _ in 0..expected {
            let r = rng.next_range(n);
            let c = rng.next_range(n);
            coo.push(r, c, value(&mut rng));
        }
    }
    CsrMatrix::try_from(coo).expect("generated coordinates are in range")
}

/// 2-D Poisson 5-point stencil on a `g x g` grid (the classic FEM/FD
/// matrix; also the AMG test problem).
///
/// # Panics
///
/// Panics if `g == 0`.
pub fn poisson_2d(g: usize) -> CsrMatrix {
    assert!(g > 0, "grid dimension must be positive");
    let n = g * g;
    let mut coo = CooMatrix::with_capacity(n, n, 5 * n);
    for y in 0..g {
        for x in 0..g {
            let i = y * g + x;
            coo.push(i, i, 4.0);
            if x > 0 {
                coo.push(i, i - 1, -1.0);
            }
            if x + 1 < g {
                coo.push(i, i + 1, -1.0);
            }
            if y > 0 {
                coo.push(i, i - g, -1.0);
            }
            if y + 1 < g {
                coo.push(i, i + g, -1.0);
            }
        }
    }
    CsrMatrix::try_from(coo).expect("stencil coordinates are in range")
}

/// 3-D Poisson 7-point stencil on a `g^3` grid.
///
/// # Panics
///
/// Panics if `g == 0`.
pub fn poisson_3d(g: usize) -> CsrMatrix {
    assert!(g > 0, "grid dimension must be positive");
    let n = g * g * g;
    let mut coo = CooMatrix::with_capacity(n, n, 7 * n);
    let idx = |x: usize, y: usize, z: usize| (z * g + y) * g + x;
    for z in 0..g {
        for y in 0..g {
            for x in 0..g {
                let i = idx(x, y, z);
                coo.push(i, i, 6.0);
                if x > 0 {
                    coo.push(i, idx(x - 1, y, z), -1.0);
                }
                if x + 1 < g {
                    coo.push(i, idx(x + 1, y, z), -1.0);
                }
                if y > 0 {
                    coo.push(i, idx(x, y - 1, z), -1.0);
                }
                if y + 1 < g {
                    coo.push(i, idx(x, y + 1, z), -1.0);
                }
                if z > 0 {
                    coo.push(i, idx(x, y, z - 1), -1.0);
                }
                if z + 1 < g {
                    coo.push(i, idx(x, y, z + 1), -1.0);
                }
            }
        }
    }
    CsrMatrix::try_from(coo).expect("stencil coordinates are in range")
}

/// Banded matrix with `half_bandwidth` diagonals on each side of the main
/// diagonal, each retained with probability `fill` (FEM beam / wavefront
/// structures such as `pwtk` or `cant`).
///
/// # Panics
///
/// Panics if `n == 0` or `fill` is not in `[0, 1]`.
pub fn banded(n: usize, half_bandwidth: usize, fill: f64, seed: u64) -> CsrMatrix {
    assert!(n > 0, "matrix dimension must be positive");
    assert!((0.0..=1.0).contains(&fill), "fill must be in [0, 1]");
    let mut rng = Rng64::new(seed);
    let mut coo = CooMatrix::new(n, n);
    for r in 0..n {
        let lo = r.saturating_sub(half_bandwidth);
        let hi = (r + half_bandwidth + 1).min(n);
        for c in lo..hi {
            if c == r || rng.next_f64() < fill {
                coo.push(r, c, value(&mut rng));
            }
        }
    }
    CsrMatrix::try_from(coo).expect("banded coordinates are in range")
}

/// R-MAT power-law graph adjacency matrix (social/web graphs; the
/// long-row irregular family, e.g. `crankseg_2`-like hubs).
///
/// Uses the standard (a, b, c, d) = (0.57, 0.19, 0.19, 0.05) parameters.
///
/// # Panics
///
/// Panics if `n` is not a power of two or `nnz_target == 0`.
pub fn rmat(n: usize, nnz_target: usize, seed: u64) -> CsrMatrix {
    assert!(n.is_power_of_two(), "R-MAT dimension must be a power of two");
    assert!(nnz_target > 0, "need a positive nnz target");
    let mut rng = Rng64::new(seed);
    let levels = n.trailing_zeros();
    let mut coo = CooMatrix::with_capacity(n, n, nnz_target);
    for _ in 0..nnz_target {
        let (mut r, mut c) = (0usize, 0usize);
        for _ in 0..levels {
            r <<= 1;
            c <<= 1;
            let p: f64 = rng.next_f64();
            if p < 0.57 {
                // top-left
            } else if p < 0.76 {
                c |= 1;
            } else if p < 0.95 {
                r |= 1;
            } else {
                r |= 1;
                c |= 1;
            }
        }
        coo.push(r, c, value(&mut rng));
    }
    CsrMatrix::try_from(coo).expect("R-MAT coordinates are in range")
}

/// Block-dense matrix: `blocks` dense `block x block` blocks scattered at
/// random block-aligned positions (FEM with dense element couplings, e.g.
/// `pdb1HYS`-like clusters).
///
/// # Panics
///
/// Panics if `block == 0` or `block > n`.
pub fn block_dense(n: usize, block: usize, blocks: usize, seed: u64) -> CsrMatrix {
    assert!(block > 0 && block <= n, "block size must be in 1..=n");
    let mut rng = Rng64::new(seed);
    let grid = n / block;
    let mut coo = CooMatrix::new(n, n);
    let mut seen = std::collections::HashSet::new();
    for _ in 0..blocks {
        let br = rng.next_range(grid);
        let bc = rng.next_range(grid);
        if !seen.insert((br, bc)) {
            continue;
        }
        for r in 0..block {
            for c in 0..block {
                coo.push(br * block + r, bc * block + c, value(&mut rng));
            }
        }
    }
    CsrMatrix::try_from(coo).expect("block coordinates are in range")
}

/// Arrow matrix: a banded core plus `dense_rows` fully dense rows and
/// columns (the `gupta3` family: optimisation/interior-point matrices with
/// extreme intermediate-product counts).
///
/// # Panics
///
/// Panics if `n == 0` or `dense_rows > n`.
pub fn arrow(n: usize, half_bandwidth: usize, dense_rows: usize, seed: u64) -> CsrMatrix {
    assert!(n > 0, "matrix dimension must be positive");
    assert!(dense_rows <= n, "cannot have more dense rows than rows");
    let mut rng = Rng64::new(seed);
    let mut coo = CooMatrix::new(n, n);
    for r in 0..n {
        let lo = r.saturating_sub(half_bandwidth);
        let hi = (r + half_bandwidth + 1).min(n);
        for c in lo..hi {
            coo.push(r, c, value(&mut rng));
        }
    }
    for d in 0..dense_rows {
        for c in 0..n {
            if c > d + half_bandwidth || d > c + half_bandwidth {
                coo.push(d, c, value(&mut rng));
                coo.push(c, d, value(&mut rng));
            }
        }
    }
    coo.compress();
    CsrMatrix::try_from(coo).expect("arrow coordinates are in range")
}

/// Kronecker product of a small seed pattern with itself `order` times —
/// produces self-similar sparsity (graph-like hierarchical structure).
///
/// # Panics
///
/// Panics if the seed pattern is empty or `order == 0`.
pub fn kronecker(pattern: &[(usize, usize)], base: usize, order: u32, seed: u64) -> CsrMatrix {
    assert!(!pattern.is_empty(), "need a nonempty seed pattern");
    assert!(order > 0, "order must be positive");
    let mut rng = Rng64::new(seed);
    let mut entries: Vec<(usize, usize)> = vec![(0, 0)];
    let mut dim = 1usize;
    for _ in 0..order {
        let mut next = Vec::with_capacity(entries.len() * pattern.len());
        for &(r, c) in &entries {
            for &(pr, pc) in pattern {
                next.push((r * base + pr, c * base + pc));
            }
        }
        entries = next;
        dim *= base;
    }
    let mut coo = CooMatrix::with_capacity(dim, dim, entries.len());
    for (r, c) in entries {
        coo.push(r, c, value(&mut rng));
    }
    CsrMatrix::try_from(coo).expect("kronecker coordinates are in range")
}

/// Diagonal-plus-noise matrix: dense main diagonal plus `off_density`
/// random off-diagonal entries (circuit-simulation style structure).
///
/// # Panics
///
/// Panics if `n == 0` or `off_density` is not in `[0, 1]`.
pub fn diagonal_noise(n: usize, off_density: f64, seed: u64) -> CsrMatrix {
    assert!(n > 0, "matrix dimension must be positive");
    assert!((0.0..=1.0).contains(&off_density), "density must be in [0, 1]");
    let mut rng = Rng64::new(seed);
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, value(&mut rng));
    }
    let extras = (n as f64 * n as f64 * off_density) as usize;
    for _ in 0..extras {
        let r = rng.next_range(n);
        let c = rng.next_range(n);
        if r != c {
            coo.push(r, c, value(&mut rng));
        }
    }
    coo.compress();
    CsrMatrix::try_from(coo).expect("diagonal coordinates are in range")
}

/// Graph Laplacian of a symmetrised R-MAT graph: `L = D - A_sym`, with a
/// unit diagonal shift to keep it non-singular. This is the irregular
/// AMG test problem (real AMG deployments include graph Laplacians, and
/// the power-law rows expose the load-imbalance effects the paper's
/// Fig. 21 attributes to "real-world irregularity").
///
/// # Panics
///
/// Panics if `n` is not a power of two or `nnz_target == 0`.
pub fn graph_laplacian(n: usize, nnz_target: usize, seed: u64) -> CsrMatrix {
    let adj = rmat(n, nnz_target, seed);
    let mut coo = CooMatrix::new(n, n);
    for (r, c, _) in adj.iter() {
        if r != c {
            coo.push(r, c, -1.0);
            coo.push(c, r, -1.0);
        }
    }
    coo.compress();
    let sym = CsrMatrix::try_from(coo).expect("symmetrised coordinates are in range");
    let mut full = CooMatrix::new(n, n);
    for r in 0..n {
        // Weighted row degree plus a unit shift keeps the operator SPD
        // (multi-edges accumulate weight during compression).
        let (_, vals) = sym.row(r);
        let degree: f64 = vals.iter().map(|v| v.abs()).sum();
        full.push(r, r, degree + 1.0);
    }
    for (r, c, v) in sym.iter() {
        full.push(r, c, v);
    }
    CsrMatrix::try_from(full).expect("laplacian coordinates are in range")
}

fn value(rng: &mut Rng64) -> f64 {
    // Nonzero values in [-1, 1] \ {0}.
    loop {
        let v: f64 = rng.next_f64_range(-1.0, 1.0);
        if v.abs() > 1e-6 {
            return v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_uniform_hits_density_target() {
        let m = random_uniform(256, 0.01, 7);
        let got = m.nnz() as f64 / (256.0 * 256.0);
        assert!((got - 0.01).abs() < 0.002, "density {got}");
        // Determinism.
        assert_eq!(random_uniform(256, 0.01, 7), m);
        assert_ne!(random_uniform(256, 0.01, 8), m);
    }

    #[test]
    fn random_uniform_dense_path() {
        let m = random_uniform(64, 0.5, 3);
        let got = m.nnz() as f64 / (64.0 * 64.0);
        assert!((got - 0.5).abs() < 0.05, "density {got}");
    }

    #[test]
    fn poisson_2d_structure() {
        let m = poisson_2d(8);
        assert_eq!(m.nrows(), 64);
        // Interior point has 5 entries, corners 3.
        assert_eq!(m.row_nnz(9), 5);
        assert_eq!(m.row_nnz(0), 3);
        assert_eq!(m.get(9, 9), Some(4.0));
        assert_eq!(m.get(9, 8), Some(-1.0));
        // Symmetry.
        assert_eq!(m.transpose(), m);
    }

    #[test]
    fn poisson_3d_structure() {
        let m = poisson_3d(4);
        assert_eq!(m.nrows(), 64);
        assert_eq!(m.get(0, 0), Some(6.0));
        assert_eq!(m.transpose(), m);
        // Interior point (1,1,1) has 7 entries.
        let i = (4 + 1) * 4 + 1;
        assert_eq!(m.row_nnz(i), 7);
    }

    #[test]
    fn banded_stays_in_band() {
        let m = banded(100, 3, 0.8, 5);
        for (r, c, _) in m.iter() {
            assert!(r.abs_diff(c) <= 3);
        }
        // Diagonal always present.
        for i in 0..100 {
            assert!(m.get(i, i).is_some());
        }
    }

    #[test]
    fn rmat_is_skewed() {
        let m = rmat(256, 2000, 11);
        assert!(m.nnz() > 1000); // duplicates merged but most survive
        // Power-law: the max-degree row far exceeds the mean.
        let max_row = (0..256).map(|r| m.row_nnz(r)).max().unwrap();
        let mean = m.nnz() as f64 / 256.0;
        assert!(max_row as f64 > 3.0 * mean, "max {max_row} mean {mean}");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rmat_rejects_non_power_of_two() {
        rmat(100, 10, 0);
    }

    #[test]
    fn block_dense_has_dense_blocks() {
        let m = block_dense(64, 8, 4, 2);
        assert!(m.nnz().is_multiple_of(64));
        assert!(m.nnz() <= 4 * 64);
    }

    #[test]
    fn arrow_has_dense_rows() {
        let m = arrow(64, 2, 2, 9);
        assert_eq!(m.row_nnz(0), 64);
        assert_eq!(m.row_nnz(1), 64);
        assert!(m.row_nnz(32) <= 7); // band + 2 dense columns
    }

    #[test]
    fn kronecker_grows_self_similar() {
        let pattern = [(0, 0), (0, 1), (1, 1)];
        let m = kronecker(&pattern, 2, 3, 1);
        assert_eq!(m.nrows(), 8);
        assert_eq!(m.nnz(), 27); // 3^3
    }

    #[test]
    fn graph_laplacian_is_symmetric_and_diagonally_dominant() {
        let l = graph_laplacian(128, 600, 5);
        assert_eq!(l.transpose(), l);
        for r in 0..128 {
            let (cols, vals) = l.row(r);
            let mut diag = 0.0;
            let mut off = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                if c as usize == r {
                    diag = v;
                } else {
                    off += v.abs();
                }
            }
            assert!(diag > off, "row {r}: diag {diag} vs off {off}");
        }
    }

    #[test]
    fn diagonal_noise_keeps_diagonal() {
        let m = diagonal_noise(128, 0.005, 4);
        for i in 0..128 {
            assert!(m.get(i, i).is_some());
        }
        assert!(m.nnz() >= 128);
    }
}
