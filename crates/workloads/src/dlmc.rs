//! DLMC-like pruned DNN weight matrices.
//!
//! The paper evaluates DNN inference with the 302 DLMC weight matrices at
//! 70 % and 98 % sparsity (ResNet-50 and Transformer). DLMC's pruned
//! weights are unstructured at matched sparsity, so a seeded Bernoulli
//! mask at the same layer shape exercises the same code path (DESIGN.md,
//! "Substitutions"). Convolutions are treated as im2col GEMMs, as the
//! paper treats convolution as SpGEMM.

use sparse::CsrMatrix;


/// The two DNN models of the paper's Fig. 17.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DnnModel {
    /// ResNet-50 (convolutional; activations sparse after preprocessing).
    ResNet50,
    /// Transformer (dense-ish GEMM workloads).
    Transformer,
}

impl std::fmt::Display for DnnModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DnnModel::ResNet50 => write!(f, "ResNet50"),
            DnnModel::Transformer => write!(f, "Transformer"),
        }
    }
}

/// One GEMM-shaped DNN layer: the weight is `rows x cols`, multiplied by
/// an activation matrix with `batch_cols` columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerSpec {
    /// Model the layer belongs to.
    pub model: DnnModel,
    /// Layer index used in the paper's figure labels (e.g. "ResNet50-12").
    pub index: u32,
    /// Weight rows (output channels / model dim), scaled down.
    pub rows: usize,
    /// Weight columns (input channels x kernel window / model dim).
    pub cols: usize,
    /// Activation columns processed per invocation.
    pub batch_cols: usize,
}

impl LayerSpec {
    /// Display label, e.g. `ResNet50-12`.
    pub fn label(&self) -> String {
        format!("{}-{}", self.model, self.index)
    }

    /// Builds the pruned weight matrix at the given sparsity.
    ///
    /// # Panics
    ///
    /// Panics if `sparsity` is not in `[0, 1)`.
    pub fn weight(&self, sparsity: f64, seed: u64) -> CsrMatrix {
        assert!((0.0..1.0).contains(&sparsity), "sparsity must be in [0, 1)");
        let density = 1.0 - sparsity;
        // Rectangular weights: generate square then crop via block walk is
        // wasteful; generate directly.
        rectangular_random(self.rows, self.cols, density, seed ^ self.layer_seed())
    }

    fn layer_seed(&self) -> u64 {
        (self.index as u64) << 32
            | (self.rows as u64) << 16
            | (self.cols as u64 & 0xFFFF)
            | match self.model {
                DnnModel::ResNet50 => 0x1000_0000_0000_0000,
                DnnModel::Transformer => 0x2000_0000_0000_0000,
            }
    }
}

fn rectangular_random(rows: usize, cols: usize, density: f64, seed: u64) -> CsrMatrix {
    use sparse::rng::Rng64;
    let mut rng = Rng64::new(seed);
    let mut coo = sparse::CooMatrix::new(rows, cols);
    if density > 0.2 {
        for r in 0..rows {
            for c in 0..cols {
                if rng.next_f64() < density {
                    coo.push(r, c, rng.next_f64_range(-1.0, 1.0).max(1e-3));
                }
            }
        }
    } else {
        let target = (rows as f64 * cols as f64 * density) as usize;
        for _ in 0..target {
            coo.push(rng.next_range(rows), rng.next_range(cols), 0.5);
        }
        coo.compress();
    }
    CsrMatrix::try_from(coo).expect("generated coordinates are in range")
}

/// Representative layers of a model (shapes scaled to 1/4 of the real
/// network to keep the sweep tractable; relative proportions preserved).
pub fn layers(model: DnnModel) -> Vec<LayerSpec> {
    match model {
        DnnModel::ResNet50 => {
            // (index, out_ch, in_ch x k x k) scaled by 1/4; batch = im2col
            // output pixels per invocation (56x56 / 4 etc.).
            [
                (2u32, 64usize, 144usize, 784usize),
                (12, 128, 288, 196),
                (23, 256, 576, 196),
                (31, 256, 576, 196),
                (42, 512, 1152, 64),
                (48, 512, 512, 64),
            ]
            .into_iter()
            .map(|(index, rows, cols, batch)| LayerSpec {
                model,
                index,
                rows,
                cols,
                batch_cols: batch,
            })
            .collect()
        }
        DnnModel::Transformer => {
            // Attention projections and FFN at d_model = 512 / 4 = 128.
            [
                (1u32, 128usize, 128usize, 256usize), // QKV projection
                (4, 128, 128, 256),                   // attention output
                (6, 512, 128, 256),                   // FFN up
                (7, 128, 512, 256),                   // FFN down
                (10, 128, 128, 256),                  // layer-2 projection
                (12, 512, 128, 256),                  // layer-2 FFN
            ]
            .into_iter()
            .map(|(index, rows, cols, batch)| LayerSpec {
                model,
                index,
                rows,
                cols,
                batch_cols: batch,
            })
            .collect()
        }
    }
}

/// The two DLMC sparsity levels the paper evaluates.
pub const DLMC_SPARSITIES: [f64; 2] = [0.70, 0.98];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_models_have_layers() {
        assert_eq!(layers(DnnModel::ResNet50).len(), 6);
        assert_eq!(layers(DnnModel::Transformer).len(), 6);
    }

    #[test]
    fn labels_match_paper_style() {
        let l = &layers(DnnModel::ResNet50)[1];
        assert_eq!(l.label(), "ResNet50-12");
    }

    #[test]
    fn weight_sparsity_matches_target() {
        for &s in &DLMC_SPARSITIES {
            let l = layers(DnnModel::Transformer)[2];
            let w = l.weight(s, 42);
            assert_eq!(w.nrows(), 512);
            assert_eq!(w.ncols(), 128);
            let got = w.sparsity();
            assert!((got - s).abs() < 0.03, "target {s} got {got}");
        }
    }

    #[test]
    fn weights_are_deterministic() {
        let l = layers(DnnModel::ResNet50)[0];
        assert_eq!(l.weight(0.7, 1), l.weight(0.7, 1));
        assert_ne!(l.weight(0.7, 1), l.weight(0.7, 2));
    }

    #[test]
    fn different_layers_differ() {
        let ls = layers(DnnModel::Transformer);
        let a = ls[0].weight(0.7, 1);
        let b = ls[4].weight(0.7, 1);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "sparsity")]
    fn full_sparsity_rejected() {
        layers(DnnModel::ResNet50)[0].weight(1.0, 0);
    }
}
