//! Graph neural network (GCN) forward pass with hierarchical pooling —
//! the SpMM / SpGEMM application of the paper's Table II.
//!
//! A GCN layer propagates node features with the normalised adjacency:
//! `H' = relu(A_hat H W)` — the `A_hat x (H W)` product is an **SpMM**
//! (sparse matrix x dense feature block). Hierarchical pooling coarsens
//! the graph with an assignment matrix `S`: `A_pool = S^T A_hat S` — two
//! **SpGEMMs** (the same triple-product shape as AMG's Galerkin operator).
//! This is exactly the "node information propagation and aggregation"
//! kernel mix Section III-A attributes to GNNs.

use sparse::ops::{spgemm, spmm};
use sparse::{CooMatrix, CsrMatrix, DenseMatrix};

/// A GCN model: per-level normalised adjacency and weight matrices.
#[derive(Debug, Clone)]
pub struct GcnModel {
    /// Normalised adjacency per pooling level (finest first).
    pub adjacencies: Vec<CsrMatrix>,
    /// Pooling assignment matrices between consecutive levels.
    pub poolings: Vec<CsrMatrix>,
    /// Dense layer weights (one per level, `features x features`).
    pub weights: Vec<DenseMatrix>,
    /// Feature width.
    pub features: usize,
}

/// Symmetrically normalised adjacency with self loops:
/// `A_hat = D^-1/2 (A + A^T + I) D^-1/2`.
///
/// # Panics
///
/// Panics if `adj` is not square.
pub fn normalise_adjacency(adj: &CsrMatrix) -> CsrMatrix {
    assert_eq!(adj.nrows(), adj.ncols(), "adjacency must be square");
    let n = adj.nrows();
    let mut coo = CooMatrix::new(n, n);
    for (r, c, _) in adj.iter() {
        if r != c {
            coo.push(r, c, 1.0);
            coo.push(c, r, 1.0);
        }
    }
    for i in 0..n {
        coo.push(i, i, 1.0);
    }
    coo.compress();
    let sym = CsrMatrix::try_from(coo).expect("coordinates in range");
    // Clamp multi-edge weights to 1 and normalise.
    let mut coo = CooMatrix::with_capacity(n, n, sym.nnz());
    let degree: Vec<f64> = (0..n).map(|r| sym.row_nnz(r) as f64).collect();
    for (r, c, _) in sym.iter() {
        coo.push(r, c, 1.0 / (degree[r] * degree[c]).sqrt());
    }
    CsrMatrix::try_from(coo).expect("coordinates in range")
}

/// Greedy modular pooling: vertices are assigned to `n / ratio` clusters
/// by index hashing (deterministic, structure-agnostic).
///
/// # Panics
///
/// Panics if `ratio == 0`.
pub fn pooling_assignment(n: usize, ratio: usize) -> CsrMatrix {
    assert!(ratio > 0, "pooling ratio must be positive");
    let clusters = (n / ratio).max(1);
    let mut coo = CooMatrix::new(n, clusters);
    for v in 0..n {
        coo.push(v, v % clusters, 1.0);
    }
    CsrMatrix::try_from(coo).expect("coordinates in range")
}

impl GcnModel {
    /// Builds a pooled GCN over a graph: `levels` pooling stages with the
    /// given pooling ratio and feature width. Weights are deterministic
    /// pseudo-random.
    ///
    /// # Panics
    ///
    /// Panics if `adj` is not square or `levels == 0`.
    pub fn build(adj: &CsrMatrix, levels: usize, ratio: usize, features: usize) -> Self {
        assert!(levels > 0, "need at least one level");
        let mut adjacencies = vec![normalise_adjacency(adj)];
        let mut poolings = Vec::new();
        for l in 1..levels {
            let prev = &adjacencies[l - 1];
            let s = pooling_assignment(prev.nrows(), ratio);
            // A_pool = S^T * (A_hat * S): the two SpGEMMs of aggregation.
            let as_ = spgemm(prev, &s).expect("A and S conform");
            let pooled = spgemm(&s.transpose(), &as_).expect("S^T and AS conform");
            poolings.push(s);
            adjacencies.push(pooled);
        }
        let weights = (0..levels)
            .map(|l| {
                let mut w = DenseMatrix::zeros(features, features);
                for r in 0..features {
                    for c in 0..features {
                        let h = ((l * features * features + r * features + c) as u64)
                            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
                        w[(r, c)] = (((h >> 32) as u32) as f64 / u32::MAX as f64 - 0.5) * 0.4;
                    }
                }
                w
            })
            .collect();
        GcnModel { adjacencies, poolings, weights, features }
    }

    /// Number of pooling levels.
    pub fn n_levels(&self) -> usize {
        self.adjacencies.len()
    }

    /// Runs the forward pass on dense input features, returning the final
    /// (pooled) node embeddings.
    ///
    /// # Panics
    ///
    /// Panics if `h.nrows()` does not match the finest graph or
    /// `h.ncols() != self.features`.
    pub fn forward(&self, h: &DenseMatrix) -> DenseMatrix {
        assert_eq!(h.nrows(), self.adjacencies[0].nrows(), "feature rows mismatch");
        assert_eq!(h.ncols(), self.features, "feature width mismatch");
        let mut h = h.clone();
        for (l, a_hat) in self.adjacencies.iter().enumerate() {
            // H W (dense), then A_hat x (H W): the SpMM.
            let hw = dense_mul(&h, &self.weights[l]);
            let mut next = spmm(a_hat, &hw).expect("A_hat and HW conform");
            relu(&mut next);
            if l < self.poolings.len() {
                // Pool features: H_pool = S^T H (an SpMM on S^T).
                next = spmm(&self.poolings[l].transpose(), &next)
                    .expect("S^T and H conform");
            }
            h = next;
        }
        h
    }

    /// The SpGEMM pairs of the pooling (aggregation) stage, in execution
    /// order, for engine replay.
    pub fn spgemm_pairs(&self) -> Vec<(CsrMatrix, CsrMatrix)> {
        let mut out = Vec::new();
        for (l, s) in self.poolings.iter().enumerate() {
            let a = &self.adjacencies[l];
            let as_ = spgemm(a, s).expect("conforms");
            out.push((a.clone(), s.clone()));
            out.push((s.transpose(), as_));
        }
        out
    }

    /// The SpMM invocations of the propagation stage: `(matrix, n_cols)`.
    pub fn spmm_trace(&self) -> Vec<(&CsrMatrix, usize)> {
        self.adjacencies.iter().map(|a| (a, self.features)).collect()
    }
}

fn dense_mul(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let mut c = DenseMatrix::zeros(a.nrows(), b.ncols());
    for r in 0..a.nrows() {
        for k in 0..a.ncols() {
            let av = a[(r, k)];
            if av == 0.0 {
                continue;
            }
            for j in 0..b.ncols() {
                c[(r, j)] += av * b[(k, j)];
            }
        }
    }
    c
}

fn relu(m: &mut DenseMatrix) {
    for r in 0..m.nrows() {
        for v in m.row_mut(r) {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn normalised_adjacency_is_symmetric_and_bounded() {
        let a = normalise_adjacency(&gen::rmat(64, 300, 1));
        assert_eq!(a.transpose(), a);
        // Every entry is 1/sqrt(d_i d_j) in (0, 1]; the diagonal is 1/d_i.
        for (r, c, v) in a.iter() {
            assert!(v > 0.0 && v <= 1.0, "entry ({r},{c}) = {v}");
        }
        for r in 0..a.nrows() {
            let d = a.row_nnz(r) as f64;
            let diag = a.get(r, r).unwrap();
            assert!((diag - 1.0 / d).abs() < 1e-12, "row {r}");
        }
        // Spectral radius of A_hat is <= 1: power iteration stays bounded.
        let mut x = vec![1.0; a.nrows()];
        for _ in 0..30 {
            x = sparse::ops::spmv(&a, &x).unwrap();
        }
        let norm: f64 = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(norm <= (a.nrows() as f64).sqrt() + 1e-6, "norm {norm}");
    }

    #[test]
    fn pooling_assignment_partitions_vertices() {
        let s = pooling_assignment(100, 4);
        assert_eq!(s.nrows(), 100);
        assert_eq!(s.ncols(), 25);
        for r in 0..100 {
            assert_eq!(s.row_nnz(r), 1);
        }
    }

    #[test]
    fn model_coarsens_graphs() {
        let adj = gen::rmat(128, 700, 3);
        let m = GcnModel::build(&adj, 3, 4, 8);
        assert_eq!(m.n_levels(), 3);
        assert_eq!(m.adjacencies[0].nrows(), 128);
        assert_eq!(m.adjacencies[1].nrows(), 32);
        assert_eq!(m.adjacencies[2].nrows(), 8);
        assert_eq!(m.spgemm_pairs().len(), 4);
        assert_eq!(m.spmm_trace().len(), 3);
    }

    #[test]
    fn forward_pass_produces_finite_embeddings() {
        let adj = gen::rmat(64, 400, 5);
        let m = GcnModel::build(&adj, 2, 4, 8);
        let mut h = DenseMatrix::zeros(64, 8);
        for r in 0..64 {
            for c in 0..8 {
                h[(r, c)] = ((r + c) % 5) as f64 / 5.0;
            }
        }
        let out = m.forward(&h);
        assert_eq!(out.nrows(), 16);
        assert_eq!(out.ncols(), 8);
        assert!(out.as_slice().iter().all(|v| v.is_finite() && *v >= 0.0));
        assert!(out.count_nonzero(0.0) > 0);
    }

    #[test]
    fn forward_is_deterministic() {
        let adj = gen::rmat(64, 300, 7);
        let m = GcnModel::build(&adj, 2, 4, 4);
        let h = DenseMatrix::from_row_major(64, 4, vec![0.5; 256]);
        assert_eq!(m.forward(&h), m.forward(&h));
    }

    #[test]
    fn pooled_adjacency_matches_triple_product() {
        let adj = gen::rmat(64, 300, 2);
        let m = GcnModel::build(&adj, 2, 4, 4);
        let a = &m.adjacencies[0];
        let s = &m.poolings[0];
        let want = spgemm(&s.transpose(), &spgemm(a, s).unwrap()).unwrap();
        assert_eq!(m.adjacencies[1], want);
    }
}
