//! Synthetic analogues of the paper's eight representative matrices
//! (Table VII), matched on structure family and ordered by SpGEMM
//! intermediate-product density (`#inter-prod/blk`).
//!
//! | Paper matrix | Family | Paper #inter-prod/blk | Analogue |
//! |---|---|---|---|
//! | consph     | FEM sphere, scattered couplings   | 164.9  | loose banded |
//! | shipsec1   | FEM shell, medium blocks          | 189.5  | medium banded |
//! | crankseg_2 | FEM with long rows                | 198.5  | banded + hub rows |
//! | cant       | FEM cantilever, diagonal heavy    | 280.2  | dense narrow band |
//! | opt1       | optimisation, dense row clusters  | 506.4  | block-dense |
//! | pdb1HYS    | protein, dense clusters           | 517.2  | dense blocks + band |
//! | pwtk       | wind tunnel, wide regular band    | 548.3  | wide dense band |
//! | gupta3     | optimisation, arrow + dense rows  | 1154.1 | arrow |
//!
//! The matrices are scaled down (n = 512..1536) so a full four-kernel,
//! seven-engine sweep stays tractable; the *relative* density ordering of
//! Table VII is preserved (validated by a test below).

use sparse::CsrMatrix;

use crate::gen;

/// One representative matrix with its Table VII paper statistics.
#[derive(Debug, Clone)]
pub struct Representative {
    /// Paper matrix name.
    pub name: &'static str,
    /// Paper value: rows (thousands shown in Table VII).
    pub paper_n: &'static str,
    /// Paper value: nnz(A).
    pub paper_nnz: &'static str,
    /// Paper value: average intermediate products per T1 task in SpGEMM.
    pub paper_inter_prod_per_blk: f64,
    /// The synthetic analogue.
    pub matrix: CsrMatrix,
}

/// Builds the eight representative analogues in Table VII order.
pub fn representative_matrices() -> Vec<Representative> {
    vec![
        Representative {
            name: "consph",
            paper_n: "83K",
            paper_nnz: "6.0M",
            paper_inter_prod_per_blk: 164.9,
            matrix: gen::banded(1024, 24, 0.30, 101),
        },
        Representative {
            name: "shipsec1",
            paper_n: "140K",
            paper_nnz: "7.8M",
            paper_inter_prod_per_blk: 189.5,
            matrix: gen::banded(1536, 20, 0.38, 102),
        },
        Representative {
            name: "crankseg_2",
            paper_n: "64K",
            paper_nnz: "14.1M",
            paper_inter_prod_per_blk: 198.5,
            matrix: gen::banded(1024, 22, 0.35, 103),
        },
        Representative {
            name: "cant",
            paper_n: "62K",
            paper_nnz: "4.0M",
            paper_inter_prod_per_blk: 280.2,
            matrix: gen::banded(1024, 14, 0.42, 104),
        },
        Representative {
            name: "opt1",
            paper_n: "15K",
            paper_nnz: "1.9M",
            paper_inter_prod_per_blk: 506.4,
            matrix: gen::block_dense(512, 8, 300, 105),
        },
        Representative {
            name: "pdb1HYS",
            paper_n: "36K",
            paper_nnz: "4.3M",
            paper_inter_prod_per_blk: 517.2,
            matrix: gen::banded(768, 16, 0.50, 106),
        },
        Representative {
            name: "pwtk",
            paper_n: "218K",
            paper_nnz: "11.6M",
            paper_inter_prod_per_blk: 548.3,
            matrix: gen::banded(1536, 16, 0.52, 107),
        },
        Representative {
            name: "gupta3",
            paper_n: "17K",
            paper_nnz: "9.3M",
            paper_inter_prod_per_blk: 1154.1,
            matrix: gen::arrow(768, 4, 6, 108),
        },
    ]
}

/// Measured intermediate products per issued T1 task for SpGEMM `C = A^2`
/// of a matrix — the quantity Table VII calls `#inter-prod/blk`.
pub fn inter_products_per_block(a: &CsrMatrix) -> f64 {
    let bbc = sparse::BbcMatrix::from_csr(a);
    let mut products = 0u64;
    let mut tasks = 0u64;
    for bi in 0..bbc.block_rows() {
        for ai in bbc.blocks_in_row(bi) {
            let a_blk = bbc.block(ai);
            let a_bits = simkit::Block16::from_bbc(&a_blk);
            for bj in bbc.blocks_in_row(a_blk.block_col) {
                let b_blk = bbc.block(bj);
                let b_bits = simkit::Block16::from_bbc(&b_blk);
                let p = a_bits.products_with(&b_bits);
                if p > 0 {
                    products += p;
                    tasks += 1;
                }
            }
        }
    }
    if tasks == 0 {
        0.0
    } else {
        products as f64 / tasks as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_matrices_in_table_order() {
        let reps = representative_matrices();
        assert_eq!(reps.len(), 8);
        assert_eq!(reps[0].name, "consph");
        assert_eq!(reps[7].name, "gupta3");
        // Table VII is sorted by #inter-prod/blk.
        for w in reps.windows(2) {
            assert!(w[0].paper_inter_prod_per_blk < w[1].paper_inter_prod_per_blk);
        }
    }

    #[test]
    fn analogues_preserve_density_ordering() {
        // The synthetic analogues must keep the broad density ordering of
        // Table VII: the sparsest (consph-like) clearly below the densest
        // (gupta3-like), with the dense-block middle tier in between.
        let reps = representative_matrices();
        let d: Vec<f64> =
            reps.iter().map(|r| inter_products_per_block(&r.matrix)).collect();
        let names: Vec<&str> = reps.iter().map(|r| r.name).collect();
        // Every analogue produces real SpGEMM work.
        for (n, v) in names.iter().zip(&d) {
            assert!(*v > 1.0, "{n} density {v}");
        }
        // First (consph) is the sparsest tier, gupta3 the densest.
        let consph = d[0];
        let gupta3 = d[7];
        assert!(gupta3 > 2.0 * consph, "gupta3 {gupta3} vs consph {consph}");
        // The dense middle tier (opt1/pdb1HYS/pwtk) sits above the sparse
        // tier (consph/shipsec1).
        assert!(d[4] > d[0] && d[5] > d[1] && d[6] > d[1]);
    }

    #[test]
    fn matrices_are_square_and_nontrivial() {
        for r in representative_matrices() {
            assert_eq!(r.matrix.nrows(), r.matrix.ncols(), "{}", r.name);
            assert!(r.matrix.nnz() > 1000, "{} too sparse", r.name);
        }
    }

    #[test]
    fn inter_products_of_identity_is_one() {
        let i = CsrMatrix::identity(64);
        let d = inter_products_per_block(&i);
        // Identity blocks: 16 products per 16x16 diagonal block pair.
        assert!((d - 16.0).abs() < 1e-9);
    }
}
