//! Application-level DNN inference accounting.
//!
//! The paper reports that Uni-STC "retains application-level speedups of
//! 1.43x on DNNs" (Section I). This module walks a whole model's layer
//! sequence (the [`crate::dlmc`] layer specs) through a simulated engine
//! and aggregates cycles and energy across the forward pass, for both the
//! dense-activation (SpMM) and sparse-activation (SpGEMM, convolution
//! treated as SpGEMM) regimes.

use simkit::driver::{run_spgemm, run_spmm};
use simkit::{EnergyModel, TileEngine};
use sparse::{BbcMatrix, CooMatrix, CsrMatrix};

use crate::dlmc::{layers, DnnModel, LayerSpec};

/// Inference regime: what the activations look like.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ActivationMode {
    /// Dense activations: each layer is one SpMM (weight x dense batch).
    Dense,
    /// Sparse activations at the given sparsity: each layer is one SpGEMM
    /// (the paper treats convolution as SpGEMM; ResNet-50 inputs "are
    /// usually sparse after preprocessing").
    Sparse(f64),
}

/// Cycles and energy of one layer's execution.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerResult {
    /// Layer label (e.g. `ResNet50-12`).
    pub label: String,
    /// Cycles on the simulated engine.
    pub cycles: u64,
    /// Energy in model units.
    pub energy: f64,
    /// Mean MAC utilisation.
    pub utilisation: f64,
}

/// Aggregated forward-pass result.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceReport {
    /// Engine display name.
    pub engine: String,
    /// Per-layer results in execution order.
    pub layers: Vec<LayerResult>,
    /// Total cycles of the forward pass.
    pub total_cycles: u64,
    /// Total energy of the forward pass.
    pub total_energy: f64,
}

impl InferenceReport {
    /// Application-level speedup of this report over a baseline run.
    ///
    /// # Panics
    ///
    /// Panics if this report has zero cycles.
    pub fn speedup_over(&self, baseline: &InferenceReport) -> f64 {
        assert!(self.total_cycles > 0, "report has zero cycles");
        baseline.total_cycles as f64 / self.total_cycles as f64
    }

    /// Application-level energy reduction over a baseline run.
    ///
    /// # Panics
    ///
    /// Panics if this report has zero energy.
    pub fn energy_reduction_over(&self, baseline: &InferenceReport) -> f64 {
        assert!(self.total_energy > 0.0, "report has zero energy");
        baseline.total_energy / self.total_energy
    }
}

/// Deterministic sparse activation matrix for a layer (`cols x batch`).
fn activation_matrix(layer: &LayerSpec, sparsity: f64, seed: u64) -> CsrMatrix {
    let (rows, cols) = (layer.cols, layer.batch_cols);
    let mut coo = CooMatrix::new(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            let h = ((r * cols + c) as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(seed.wrapping_mul(0x2545_F491_4F6C_DD1D));
            let h = (h ^ (h >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            if ((h >> 40) as f64) < (1.0 - sparsity) * (1u64 << 24) as f64 {
                coo.push(r, c, 0.25);
            }
        }
    }
    CsrMatrix::try_from(coo).expect("activation coordinates are in range")
}

/// Runs one model's forward pass on one engine.
pub fn run_inference(
    engine: &dyn TileEngine,
    energy_model: &EnergyModel,
    model: DnnModel,
    weight_sparsity: f64,
    mode: ActivationMode,
    seed: u64,
) -> InferenceReport {
    let mut out = InferenceReport {
        engine: engine.name().to_owned(),
        layers: Vec::new(),
        total_cycles: 0,
        total_energy: 0.0,
    };
    for layer in layers(model) {
        let w = layer.weight(weight_sparsity, seed);
        let w_bbc = BbcMatrix::from_csr(&w);
        let report = match mode {
            ActivationMode::Dense => {
                run_spmm(engine, energy_model, &w_bbc, layer.batch_cols)
            }
            ActivationMode::Sparse(s) => {
                let act = BbcMatrix::from_csr(&activation_matrix(&layer, s, seed ^ 0xA5));
                run_spgemm(engine, energy_model, &w_bbc, &act)
            }
        };
        out.total_cycles += report.cycles;
        out.total_energy += report.energy.total();
        out.layers.push(LayerResult {
            label: layer.label(),
            cycles: report.cycles,
            energy: report.energy.total(),
            utilisation: report.mean_utilisation(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::Precision;

    struct CountEverything;

    impl TileEngine for CountEverything {
        fn name(&self) -> &str {
            "count"
        }
        fn lanes(&self) -> usize {
            Precision::Fp32.lanes()
        }
        fn execute(&self, task: &simkit::T1Task) -> simkit::T1Result {
            let mut r = simkit::T1Result::new(self.lanes());
            let mut left = task.products();
            while left > 0 {
                let used = left.min(self.lanes() as u64) as usize;
                r.record_cycle(used);
                left -= used as u64;
            }
            r.useful = task.products();
            r.events.c_writes = task.c_nnz() as u64;
            r
        }
        fn network_costs(&self) -> simkit::NetworkCosts {
            simkit::NetworkCosts::flat()
        }
    }

    #[test]
    fn totals_sum_layers() {
        let em = EnergyModel::default();
        let rep = run_inference(
            &CountEverything,
            &em,
            DnnModel::Transformer,
            0.7,
            ActivationMode::Dense,
            1,
        );
        assert_eq!(rep.layers.len(), 6);
        assert_eq!(rep.total_cycles, rep.layers.iter().map(|l| l.cycles).sum::<u64>());
        let esum: f64 = rep.layers.iter().map(|l| l.energy).sum();
        assert!((rep.total_energy - esum).abs() < 1e-6);
    }

    #[test]
    fn inference_is_deterministic() {
        let em = EnergyModel::default();
        let run = || {
            run_inference(
                &CountEverything,
                &em,
                DnnModel::ResNet50,
                0.98,
                ActivationMode::Sparse(0.5),
                7,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sparser_weights_need_fewer_cycles() {
        let em = EnergyModel::default();
        let dense_w = run_inference(
            &CountEverything,
            &em,
            DnnModel::Transformer,
            0.70,
            ActivationMode::Dense,
            3,
        );
        let sparse_w = run_inference(
            &CountEverything,
            &em,
            DnnModel::Transformer,
            0.98,
            ActivationMode::Dense,
            3,
        );
        assert!(sparse_w.total_cycles < dense_w.total_cycles);
    }

    #[test]
    fn speedup_helpers() {
        let em = EnergyModel::default();
        let a = run_inference(
            &CountEverything,
            &em,
            DnnModel::Transformer,
            0.7,
            ActivationMode::Dense,
            1,
        );
        assert!((a.speedup_over(&a) - 1.0).abs() < 1e-12);
        assert!((a.energy_reduction_over(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn activation_sparsity_tracks_target() {
        let layer = layers(DnnModel::ResNet50)[0];
        let act = activation_matrix(&layer, 0.5, 3);
        let got = act.sparsity();
        assert!((got - 0.5).abs() < 0.05, "sparsity {got}");
    }
}
