//! Structured-sparsity lowering: stencil operator assembly and the
//! grid→row ordering transformation.
//!
//! A stencil operator on an `nx × ny` (or `nx × ny × nz`) grid is a
//! banded matrix: row `i` couples grid point `i` to its geometric
//! neighbours. Under the *natural* (lexicographic) ordering the
//! neighbour couplings sit at fixed offsets `±1, ±nx, ±nx·ny, …`, so
//! unless those offsets happen to be multiples of 16 every coupling
//! smears across two partially-filled 16x16 blocks. The *16-aligned tile
//! ordering* instead numbers the grid patch-by-patch — 4×4 patches in
//! 2-D, 4×2×2 in 3-D, sixteen points each — so all intra-patch
//! couplings (the bulk of a compact stencil's mass) land inside one
//! dense diagonal block, and inter-patch couplings connect whole
//! aligned 16-runs. The [`sparse::BlockDensityProfile`] of each lowering
//! quantifies the effect; [`compare_orderings`] puts the two side by
//! side.

use sparse::{reorder, BbcMatrix, BlockDensityProfile, CooMatrix, CsrMatrix};

/// Patch edge along `x` used by [`Ordering::Tiled16`] (2-D: 4×4; 3-D:
/// 4×2×2 — sixteen points either way, one BBC block row run).
const PATCH_X: usize = 4;
/// Patch edge along `y` in 2-D.
const PATCH_Y_2D: usize = 4;
/// Patch edge along `y` in 3-D.
const PATCH_Y_3D: usize = 2;
/// Patch edge along `z` in 3-D.
const PATCH_Z: usize = 2;

/// The stencil families the lowering supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StencilKind {
    /// 2-D 5-point star (von Neumann): the classic Poisson operator.
    Star5,
    /// 2-D 9-point box (Moore): star plus diagonals.
    Box9,
    /// 3-D 7-point star: Poisson in three dimensions.
    Star7,
    /// 3-D 27-point box: full 3×3×3 neighbourhood.
    Box27,
}

impl StencilKind {
    /// Every supported stencil kind.
    pub const ALL: [StencilKind; 4] =
        [StencilKind::Star5, StencilKind::Box9, StencilKind::Star7, StencilKind::Box27];

    /// Stable lowercase name, used in corpus labels and bench keys.
    pub fn name(self) -> &'static str {
        match self {
            StencilKind::Star5 => "star5",
            StencilKind::Box9 => "box9",
            StencilKind::Star7 => "star7",
            StencilKind::Box27 => "box27",
        }
    }

    /// Grid dimensionality the kind applies to (2 or 3).
    pub fn dims(self) -> usize {
        match self {
            StencilKind::Star5 | StencilKind::Box9 => 2,
            StencilKind::Star7 | StencilKind::Box27 => 3,
        }
    }

    /// Neighbour offsets (excluding the centre point).
    fn offsets(self) -> Vec<(i64, i64, i64)> {
        match self {
            StencilKind::Star5 => {
                vec![(-1, 0, 0), (1, 0, 0), (0, -1, 0), (0, 1, 0)]
            }
            StencilKind::Box9 => {
                let mut out = Vec::with_capacity(8);
                for dy in -1i64..=1 {
                    for dx in -1i64..=1 {
                        if (dx, dy) != (0, 0) {
                            out.push((dx, dy, 0));
                        }
                    }
                }
                out
            }
            StencilKind::Star7 => vec![
                (-1, 0, 0),
                (1, 0, 0),
                (0, -1, 0),
                (0, 1, 0),
                (0, 0, -1),
                (0, 0, 1),
            ],
            StencilKind::Box27 => {
                let mut out = Vec::with_capacity(26);
                for dz in -1i64..=1 {
                    for dy in -1i64..=1 {
                        for dx in -1i64..=1 {
                            if (dx, dy, dz) != (0, 0, 0) {
                                out.push((dx, dy, dz));
                            }
                        }
                    }
                }
                out
            }
        }
    }

    /// Centre weight: the neighbour count, making the operator a
    /// diagonally-dominant (Dirichlet-truncated) discrete Laplacian —
    /// symmetric positive-definite, so CG and damped Jacobi apply.
    pub fn center_weight(self) -> f64 {
        self.offsets().len() as f64
    }
}

/// Extents of the structured grid a stencil acts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GridShape {
    /// Two-dimensional `nx × ny` grid (`x` fastest in natural order).
    D2 {
        /// Points along `x`.
        nx: usize,
        /// Points along `y`.
        ny: usize,
    },
    /// Three-dimensional `nx × ny × nz` grid (`x` fastest, then `y`).
    D3 {
        /// Points along `x`.
        nx: usize,
        /// Points along `y`.
        ny: usize,
        /// Points along `z`.
        nz: usize,
    },
}

impl GridShape {
    /// Total number of grid points (= matrix dimension).
    pub fn len(&self) -> usize {
        match *self {
            GridShape::D2 { nx, ny } => nx * ny,
            GridShape::D3 { nx, ny, nz } => nx * ny * nz,
        }
    }

    /// Whether the grid has no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Grid dimensionality (2 or 3).
    pub fn dims(&self) -> usize {
        match self {
            GridShape::D2 { .. } => 2,
            GridShape::D3 { .. } => 3,
        }
    }

    /// Stable name such as `64x64` or `12x12x12`.
    pub fn name(&self) -> String {
        match *self {
            GridShape::D2 { nx, ny } => format!("{nx}x{ny}"),
            GridShape::D3 { nx, ny, nz } => format!("{nx}x{ny}x{nz}"),
        }
    }

    /// Natural (lexicographic) linear index of a grid point.
    fn index(&self, x: usize, y: usize, z: usize) -> usize {
        match *self {
            GridShape::D2 { nx, .. } => y * nx + x,
            GridShape::D3 { nx, ny, .. } => (z * ny + y) * nx + x,
        }
    }
}

/// Grid→row orderings the lowering can apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ordering {
    /// Natural lexicographic order — the naive lowering.
    Natural,
    /// 16-aligned tile order: full 16-point patches (4×4 in 2-D, 4×2×2
    /// in 3-D) are numbered first, patch by patch, so each patch
    /// occupies one aligned 16-row run (= one BBC block row); ragged
    /// boundary leftovers are appended at the tail to keep every full
    /// patch aligned.
    Tiled16,
}

impl Ordering {
    /// Both orderings, naive first.
    pub const ALL: [Ordering; 2] = [Ordering::Natural, Ordering::Tiled16];

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Ordering::Natural => "natural",
            Ordering::Tiled16 => "tiled16",
        }
    }
}

/// The permutation realising `ordering` on `shape`, in
/// [`sparse::reorder::permute_symmetric`] convention: `perm[natural] =
/// new_row`. The identity for [`Ordering::Natural`].
pub fn ordering_permutation(shape: &GridShape, ordering: Ordering) -> Vec<usize> {
    let n = shape.len();
    match ordering {
        Ordering::Natural => (0..n).collect(),
        Ordering::Tiled16 => {
            // First pass: full patches, lexicographic by patch, natural
            // nesting inside the patch. Second pass: everything not yet
            // numbered, in natural order.
            let mut order = Vec::with_capacity(n);
            match *shape {
                GridShape::D2 { nx, ny } => {
                    let (fx, fy) = (nx / PATCH_X, ny / PATCH_Y_2D);
                    for py in 0..fy {
                        for px in 0..fx {
                            for dy in 0..PATCH_Y_2D {
                                for dx in 0..PATCH_X {
                                    order.push(shape.index(
                                        px * PATCH_X + dx,
                                        py * PATCH_Y_2D + dy,
                                        0,
                                    ));
                                }
                            }
                        }
                    }
                    for y in 0..ny {
                        for x in 0..nx {
                            if x >= fx * PATCH_X || y >= fy * PATCH_Y_2D {
                                order.push(shape.index(x, y, 0));
                            }
                        }
                    }
                }
                GridShape::D3 { nx, ny, nz } => {
                    let (fx, fy, fz) = (nx / PATCH_X, ny / PATCH_Y_3D, nz / PATCH_Z);
                    for pz in 0..fz {
                        for py in 0..fy {
                            for px in 0..fx {
                                for dz in 0..PATCH_Z {
                                    for dy in 0..PATCH_Y_3D {
                                        for dx in 0..PATCH_X {
                                            order.push(shape.index(
                                                px * PATCH_X + dx,
                                                py * PATCH_Y_3D + dy,
                                                pz * PATCH_Z + dz,
                                            ));
                                        }
                                    }
                                }
                            }
                        }
                    }
                    for z in 0..nz {
                        for y in 0..ny {
                            for x in 0..nx {
                                if x >= fx * PATCH_X
                                    || y >= fy * PATCH_Y_3D
                                    || z >= fz * PATCH_Z
                                {
                                    order.push(shape.index(x, y, z));
                                }
                            }
                        }
                    }
                }
            }
            // Invert: order[new] = natural  →  perm[natural] = new.
            let mut perm = vec![0usize; n];
            for (new, &natural) in order.iter().enumerate() {
                perm[natural] = new;
            }
            perm
        }
    }
}

/// Assembles the stencil operator in natural ordering: centre weight
/// [`StencilKind::center_weight`], `-1` per present neighbour, Dirichlet
/// truncation at the boundary (missing neighbours simply absent).
fn assemble_natural(kind: StencilKind, shape: &GridShape) -> CsrMatrix {
    assert_eq!(
        kind.dims(),
        shape.dims(),
        "stencil kind and grid shape must agree on dimensionality"
    );
    let n = shape.len();
    let offsets = kind.offsets();
    let mut coo = CooMatrix::with_capacity(n, n, n * (offsets.len() + 1));
    let (ex, ey, ez) = match *shape {
        GridShape::D2 { nx, ny } => (nx as i64, ny as i64, 1i64),
        GridShape::D3 { nx, ny, nz } => (nx as i64, ny as i64, nz as i64),
    };
    for z in 0..ez {
        for y in 0..ey {
            for x in 0..ex {
                let row = shape.index(x as usize, y as usize, z as usize);
                coo.push(row, row, kind.center_weight());
                for &(dx, dy, dz) in &offsets {
                    let (qx, qy, qz) = (x + dx, y + dy, z + dz);
                    if (0..ex).contains(&qx) && (0..ey).contains(&qy) && (0..ez).contains(&qz)
                    {
                        let col = shape.index(qx as usize, qy as usize, qz as usize);
                        coo.push(row, col, -1.0);
                    }
                }
            }
        }
    }
    CsrMatrix::try_from(coo).expect("stencil assembly emits in-range unique triplets")
}

/// A lowered stencil operator: the permuted CSR operator, its BBC
/// encoding, and the block-density evidence.
#[derive(Debug, Clone)]
pub struct Lowering {
    /// Stencil family.
    pub kind: StencilKind,
    /// Grid extents.
    pub shape: GridShape,
    /// Grid→row ordering applied.
    pub ordering: Ordering,
    /// The applied permutation (`perm[natural] = row`).
    pub perm: Vec<usize>,
    /// The operator under the chosen ordering.
    pub csr: CsrMatrix,
    /// BBC encoding of [`Self::csr`].
    pub bbc: BbcMatrix,
    /// Block-density profile of the encoding.
    pub profile: BlockDensityProfile,
}

impl Lowering {
    /// Stable corpus/bench label, e.g. `stencil-star5-64x64-tiled16`.
    pub fn name(&self) -> String {
        format!("stencil-{}-{}-{}", self.kind.name(), self.shape.name(), self.ordering.name())
    }
}

/// Lowers `kind` on `shape` under `ordering` into CSR→BBC form.
///
/// # Panics
///
/// Panics if the kind's dimensionality does not match the shape's, or if
/// the grid is empty.
pub fn lower(kind: StencilKind, shape: GridShape, ordering: Ordering) -> Lowering {
    assert!(!shape.is_empty(), "stencil grid must have at least one point");
    let natural = assemble_natural(kind, &shape);
    let perm = ordering_permutation(&shape, ordering);
    let csr = match ordering {
        Ordering::Natural => natural,
        Ordering::Tiled16 => reorder::permute_symmetric(&natural, &perm)
            .expect("ordering_permutation returns a bijection on 0..n"),
    };
    let bbc = BbcMatrix::from_csr(&csr);
    let profile = bbc.block_profile();
    Lowering { kind, shape, ordering, perm, csr, bbc, profile }
}

/// Side-by-side block-density evidence for the ordering transformation.
#[derive(Debug, Clone, Copy)]
pub struct OrderingComparison {
    /// Profile under the naive natural ordering.
    pub natural: BlockDensityProfile,
    /// Profile under the 16-aligned tile ordering.
    pub tiled: BlockDensityProfile,
}

impl OrderingComparison {
    /// Ratio of naive to tiled stored blocks (> 1 means the tile
    /// ordering touches fewer blocks, i.e. emits fewer T1 tasks).
    pub fn block_reduction(&self) -> f64 {
        if self.tiled.blocks == 0 {
            0.0
        } else {
            self.natural.blocks as f64 / self.tiled.blocks as f64
        }
    }

    /// Mean-fill improvement of tiled over natural (in nonzeros per
    /// stored block).
    pub fn fill_gain(&self) -> f64 {
        self.tiled.mean_fill() - self.natural.mean_fill()
    }
}

/// Lowers `kind` on `shape` under both orderings and reports the two
/// block-density profiles.
pub fn compare_orderings(kind: StencilKind, shape: GridShape) -> OrderingComparison {
    OrderingComparison {
        natural: lower(kind, shape, Ordering::Natural).profile,
        tiled: lower(kind, shape, Ordering::Tiled16).profile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::ops::spmv;

    fn shapes_for(kind: StencilKind) -> Vec<GridShape> {
        if kind.dims() == 2 {
            vec![
                GridShape::D2 { nx: 20, ny: 20 },
                GridShape::D2 { nx: 33, ny: 17 },
                GridShape::D2 { nx: 48, ny: 48 },
            ]
        } else {
            vec![GridShape::D3 { nx: 10, ny: 10, nz: 10 }, GridShape::D3 { nx: 9, ny: 7, nz: 5 }]
        }
    }

    #[test]
    fn permutation_is_a_bijection() {
        for kind in StencilKind::ALL {
            for shape in shapes_for(kind) {
                for ordering in Ordering::ALL {
                    let perm = ordering_permutation(&shape, ordering);
                    let mut seen = vec![false; shape.len()];
                    for &p in &perm {
                        assert!(!seen[p], "duplicate target {p} in {ordering:?}");
                        seen[p] = true;
                    }
                }
            }
        }
    }

    #[test]
    fn orderings_are_permutation_equivalent() {
        // A_tiled (P x) must equal P (A_natural x): the lowering changes
        // block structure, never the operator.
        let shape = GridShape::D2 { nx: 21, ny: 13 };
        let nat = lower(StencilKind::Box9, shape, Ordering::Natural);
        let til = lower(StencilKind::Box9, shape, Ordering::Tiled16);
        assert_eq!(nat.csr.nnz(), til.csr.nnz());
        let n = shape.len();
        let x: Vec<f64> = (0..n).map(|i| ((i % 11) as f64) - 5.0).collect();
        let mut px = vec![0.0; n];
        for (natural, &new) in til.perm.iter().enumerate() {
            px[new] = x[natural];
        }
        let ax = spmv(&nat.csr, &x).expect("square");
        let apx = spmv(&til.csr, &px).expect("square");
        for (natural, &new) in til.perm.iter().enumerate() {
            assert_eq!(apx[new], ax[natural], "row {natural} disagrees");
        }
    }

    #[test]
    fn operator_is_symmetric_diagonally_dominant() {
        for kind in StencilKind::ALL {
            for shape in shapes_for(kind) {
                let l = lower(kind, shape, Ordering::Tiled16);
                let n = shape.len();
                for r in 0..n {
                    let mut offdiag = 0.0f64;
                    let (cols, vals) = l.csr.row(r);
                    for (&c, &v) in cols.iter().zip(vals) {
                        let c = c as usize;
                        assert_eq!(l.csr.get(c, r), Some(v), "asymmetric at ({r},{c})");
                        if c != r {
                            offdiag += v.abs();
                        }
                    }
                    let d = l.csr.get(r, r).expect("centre weight present");
                    assert!(d >= offdiag, "row {r} not diagonally dominant");
                }
            }
        }
    }

    #[test]
    fn bbc_roundtrip_preserves_operator() {
        let l = lower(StencilKind::Star7, GridShape::D3 { nx: 8, ny: 6, nz: 4 }, Ordering::Tiled16);
        assert_eq!(l.bbc.to_csr(), l.csr);
        assert_eq!(l.profile.nnz, l.csr.nnz());
    }

    #[test]
    fn lowering_names_are_stable() {
        let l = lower(StencilKind::Star5, GridShape::D2 { nx: 20, ny: 20 }, Ordering::Tiled16);
        assert_eq!(l.name(), "stencil-star5-20x20-tiled16");
    }

    // ---- The transformation-quality evidence (DESIGN.md §16 table). ----
    //
    // Measured picture: the tile ordering condenses the stencil band onto
    // the block diagonal in every family (diagonal blocks 1.4–3.5x
    // fuller), turns box-stencil diagonal blocks half-dense, and on grids
    // whose extents are NOT multiples of 16 — where the natural
    // ordering's ±nx band offsets smear every coupling across two
    // partially-filled blocks — it also cuts total stored blocks (= T1
    // tasks) by ~1.4x. On perfectly 16-aligned grids the natural
    // ordering's band offsets already land block-aligned, so raw block
    // counts tie there; the diagonal-condensation win is unconditional.

    #[test]
    fn tiled_condenses_diagonal_blocks_for_every_family() {
        for kind in StencilKind::ALL {
            for shape in shapes_for(kind) {
                let c = compare_orderings(kind, shape);
                assert!(
                    c.tiled.diag_mean_fill() > c.natural.diag_mean_fill(),
                    "{} {}: tiled diag fill {:.1} !> natural {:.1}",
                    kind.name(),
                    shape.name(),
                    c.tiled.diag_mean_fill(),
                    c.natural.diag_mean_fill()
                );
            }
        }
    }

    #[test]
    fn tiled_cuts_t1_tasks_on_unaligned_star_grids() {
        // 50x50 star stencil: the regime the ordering transformation
        // exists for — the natural ±50 band offsets smear every vertical
        // coupling across two partial blocks, the patch ordering does
        // not. (Box stencils trade the corner couplings into extra
        // inter-patch blocks, so their win is diagonal condensation, not
        // raw block count — see the test below.)
        let c = compare_orderings(StencilKind::Star5, GridShape::D2 { nx: 50, ny: 50 });
        assert!(
            c.block_reduction() > 1.2,
            "block reduction {:.3} <= 1.2 (natural {} vs tiled {})",
            c.block_reduction(),
            c.natural.blocks,
            c.tiled.blocks
        );
        assert!(c.fill_gain() > 0.0, "fill gain {:.2}", c.fill_gain());
        assert_eq!(c.tiled.t1_tasks(), c.tiled.blocks);
    }

    #[test]
    fn tiled_makes_box27_diagonal_blocks_half_dense() {
        let c = compare_orderings(StencilKind::Box27, GridShape::D3 { nx: 12, ny: 12, nz: 12 });
        assert_eq!(c.natural.half_blocks, 0, "natural ordering never reaches half density");
        assert!(
            c.tiled.half_blocks >= c.tiled.diag_blocks,
            "every tiled diagonal block should be half-dense: {} < {}",
            c.tiled.half_blocks,
            c.tiled.diag_blocks
        );
        assert!(c.tiled.diag_mean_fill() >= 150.0, "{:.1}", c.tiled.diag_mean_fill());
    }
}

#[cfg(test)]
mod probe {
    //! Regenerates the DESIGN.md §16 block-density table:
    //! `cargo test -p workloads --release print_profiles -- --ignored --nocapture`

    use super::*;

    #[test]
    #[ignore = "table regeneration helper, run with --ignored --nocapture"]
    fn print_profiles() {
        let cases: Vec<(StencilKind, GridShape)> = vec![
            (StencilKind::Star5, GridShape::D2 { nx: 64, ny: 64 }),
            (StencilKind::Star5, GridShape::D2 { nx: 50, ny: 50 }),
            (StencilKind::Star5, GridShape::D2 { nx: 48, ny: 48 }),
            (StencilKind::Box9, GridShape::D2 { nx: 64, ny: 64 }),
            (StencilKind::Box9, GridShape::D2 { nx: 50, ny: 50 }),
            (StencilKind::Box9, GridShape::D2 { nx: 33, ny: 17 }),
            (StencilKind::Star7, GridShape::D3 { nx: 16, ny: 16, nz: 16 }),
            (StencilKind::Star7, GridShape::D3 { nx: 12, ny: 12, nz: 12 }),
            (StencilKind::Box27, GridShape::D3 { nx: 16, ny: 16, nz: 16 }),
            (StencilKind::Box27, GridShape::D3 { nx: 12, ny: 12, nz: 12 }),
            (StencilKind::Box27, GridShape::D3 { nx: 10, ny: 9, nz: 7 }),
        ];
        for (kind, shape) in cases {
            let c = compare_orderings(kind, shape);
            println!(
                "{:6} {:10} | nat: blocks={:5} fill={:6.1} diagfill={:6.1} half={:4} | til: blocks={:5} fill={:6.1} diagfill={:6.1} half={:4} | reduction={:.3} fillgain={:+.1}",
                kind.name(), shape.name(),
                c.natural.blocks, c.natural.mean_fill(), c.natural.diag_mean_fill(), c.natural.half_blocks,
                c.tiled.blocks, c.tiled.mean_fill(), c.tiled.diag_mean_fill(), c.tiled.half_blocks,
                c.block_reduction(), c.fill_gain(),
            );
        }
    }
}
