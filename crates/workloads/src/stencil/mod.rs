//! Stencil workload family: structured-grid operators lowered into BBC
//! block structure, plus the time-stepped solvers that reuse them.
//!
//! SparStencil and SPIDER (PAPERS.md) retarget sparse tensor cores to
//! scientific stencil computation by transforming structured stencil
//! operators into the hardware's sparse block format. This module is that
//! front-end for Uni-STC (ROADMAP item 4):
//!
//! * [`lowering`] — assemble 2-D (5/9-point) and 3-D (7/27-point)
//!   stencil operators on structured grids and lower them CSR→BBC under a
//!   chosen grid→row [`Ordering`]. The interesting part is the
//!   structured-sparsity transformation: the 16-aligned tile ordering
//!   ([`Ordering::Tiled16`]) folds each grid patch of 16 points onto one
//!   aligned row run, so the stencil's neighbour couplings condense into
//!   dense 16x16 diagonal blocks instead of smearing across the band.
//!   Every lowering reports a [`sparse::BlockDensityProfile`] proving the
//!   transformation quality against the naive ordering.
//! * [`solver`] — multi-iteration damped Jacobi (reusing the AMG
//!   smoother) and traced CG (reusing [`crate::cg`]), each recording the
//!   residual trajectory and the SpMV replay count for per-engine cycle
//!   accounting.
//! * [`heat`] — an explicit heat-equation time-stepper: N steps of
//!   `u ← u - dt·κ·A u` on one fixed operator, the repeated-operand
//!   regime the service's encoding/stream caches are built for.
//!
//! Everything is deterministic: the same kind/shape/ordering always
//! produces the same operator, and the solvers are seeded by their
//! inputs alone.

pub mod heat;
pub mod lowering;
pub mod solver;

pub use heat::{HeatParams, HeatRun};
pub use lowering::{
    compare_orderings, lower, ordering_permutation, GridShape, Lowering, Ordering,
    OrderingComparison, StencilKind,
};
pub use solver::IterationTrace;
