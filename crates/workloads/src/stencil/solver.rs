//! Time-stepped solver drivers over a lowered stencil operator.
//!
//! Both solvers run a fixed operator for many iterations — the
//! repeated-operand regime where one BBC encoding (one operator
//! fingerprint in `crates/service`) serves N iterations of cached
//! stream hits. Each returns an [`IterationTrace`]: the relative
//! residual after every iteration plus the exact number of SpMV
//! invocations performed, which is the engine/service replay count for
//! cycle accounting.

use sparse::ops::spmv;
use sparse::CsrMatrix;

use crate::amg::vcycle::jacobi_sweep;
use crate::cg;

/// Damping weight used by [`jacobi`] by default — the classic 2/3 that
/// the AMG V-cycle smoother also uses.
pub const JACOBI_WEIGHT: f64 = 2.0 / 3.0;

/// The record of a multi-iteration solve.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationTrace {
    /// Relative residual `||b - A x_k|| / ||b||` after iteration `k`
    /// (one entry per iteration performed).
    pub residuals: Vec<f64>,
    /// Exact number of SpMV invocations on the operator — the replay
    /// count for per-engine cycle accounting.
    pub spmv_count: usize,
    /// The final iterate.
    pub x: Vec<f64>,
}

impl IterationTrace {
    /// Iterations performed.
    pub fn iterations(&self) -> usize {
        self.residuals.len()
    }

    /// The final relative residual (1.0 before any iteration ran).
    pub fn final_residual(&self) -> f64 {
        self.residuals.last().copied().unwrap_or(1.0)
    }
}

fn norm2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Runs `iters` damped-Jacobi sweeps `x += w·D⁻¹(b - A x)` from a zero
/// initial guess, reusing the AMG V-cycle smoother, and records the
/// relative residual after each sweep.
///
/// SpMV accounting: each iteration performs one smoother SpMV plus one
/// residual-evaluation SpMV, so `spmv_count == 2 * iters`.
///
/// # Panics
///
/// Panics if `a` is not square or `b.len() != a.nrows()`.
pub fn jacobi(a: &CsrMatrix, b: &[f64], weight: f64, iters: usize) -> IterationTrace {
    assert_eq!(a.nrows(), a.ncols(), "Jacobi needs a square operator");
    assert_eq!(b.len(), a.nrows(), "rhs length mismatch");
    let bnorm = norm2(b).max(1e-300);
    let mut x = vec![0.0; b.len()];
    let mut residuals = Vec::with_capacity(iters);
    let mut spmv_count = 0usize;
    for _ in 0..iters {
        jacobi_sweep(a, b, &mut x, weight);
        spmv_count += 1;
        let ax = spmv(a, &x).expect("dimensions checked above");
        spmv_count += 1;
        let r: f64 = b
            .iter()
            .zip(&ax)
            .map(|(bi, axi)| (bi - axi) * (bi - axi))
            .sum::<f64>()
            .sqrt();
        residuals.push(r / bnorm);
    }
    IterationTrace { residuals, spmv_count, x }
}

/// Runs conjugate gradients via [`crate::cg::solve_traced`] and adapts
/// the result into an [`IterationTrace`].
///
/// SpMV accounting: CG performs exactly one SpMV per iteration, so
/// `spmv_count == iterations()`.
///
/// # Panics
///
/// Panics if `a` is not square or `b.len() != a.nrows()`.
pub fn cg_trace(a: &CsrMatrix, b: &[f64], tol: f64, max_iters: usize) -> IterationTrace {
    let (x, res, residuals) = cg::solve_traced(a, b, tol, max_iters);
    IterationTrace { residuals, spmv_count: res.iterations, x }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::lowering::{lower, GridShape, Ordering, StencilKind};

    fn rhs(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i % 13) as f64) - 6.0).collect()
    }

    #[test]
    fn jacobi_residuals_decrease_monotonically_on_spd_stencil() {
        let l = lower(StencilKind::Star5, GridShape::D2 { nx: 20, ny: 20 }, Ordering::Tiled16);
        let b = rhs(l.csr.nrows());
        let t = jacobi(&l.csr, &b, JACOBI_WEIGHT, 16);
        assert_eq!(t.iterations(), 16);
        assert_eq!(t.spmv_count, 32);
        for w in t.residuals.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "residual rose: {w:?}");
        }
        assert!(t.final_residual() < 0.9);
    }

    #[test]
    fn cg_trace_matches_untraced_solve() {
        let l = lower(StencilKind::Star7, GridShape::D3 { nx: 8, ny: 8, nz: 8 }, Ordering::Tiled16);
        let b = rhs(l.csr.nrows());
        let t = cg_trace(&l.csr, &b, 1e-10, 500);
        let (x, res) = cg::solve(&l.csr, &b, 1e-10, 500);
        assert!(res.converged);
        assert_eq!(t.x, x);
        assert_eq!(t.iterations(), res.iterations);
        assert_eq!(t.spmv_count, res.iterations);
        assert_eq!(t.final_residual(), res.relative_residual);
    }

    #[test]
    fn traces_are_deterministic() {
        let l = lower(StencilKind::Box9, GridShape::D2 { nx: 17, ny: 17 }, Ordering::Tiled16);
        let b = rhs(l.csr.nrows());
        let a = jacobi(&l.csr, &b, JACOBI_WEIGHT, 8);
        let c = jacobi(&l.csr, &b, JACOBI_WEIGHT, 8);
        assert_eq!(a, c);
    }
}
