//! Explicit heat-equation time-stepper on a lowered stencil operator.
//!
//! Forward-Euler diffusion: `u ← u - dt·κ·A u`, with `A` the
//! (Dirichlet-truncated) stencil Laplacian from [`crate::stencil::lowering`].
//! Every step is exactly one SpMV on the *same* operator, so an N-step
//! run submitted through `crates/service` hits the encoding and stream
//! caches on every step after the first — the workload ROADMAP item 4
//! introduces to make the PR 9 caches measurable.
//!
//! The explicit scheme is stable when `dt·κ·λmax(A) < 2`; by Gershgorin
//! `λmax(A) ≤ 2·center_weight`, so [`HeatParams::stable_for`] derives a
//! safe default step from the stencil kind alone.

use sparse::ops::spmv;
use sparse::CsrMatrix;

use super::lowering::{GridShape, Lowering, StencilKind};

/// Parameters of a heat-equation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeatParams {
    /// Time-step size.
    pub dt: f64,
    /// Diffusivity κ.
    pub kappa: f64,
    /// Number of explicit steps to take.
    pub steps: usize,
}

impl HeatParams {
    /// A stable parameter set for `kind`: κ = 1 and
    /// `dt = 1 / (2·center_weight)`, half the Gershgorin stability
    /// limit.
    pub fn stable_for(kind: StencilKind, steps: usize) -> HeatParams {
        HeatParams { dt: 1.0 / (2.0 * kind.center_weight()), kappa: 1.0, steps }
    }
}

/// The record of a heat run: final field plus per-step diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct HeatRun {
    /// The temperature field after the last step.
    pub u: Vec<f64>,
    /// Thermal energy `Σ u²` after each step (one entry per step).
    /// Dirichlet boundaries leak heat, so the sequence must decay.
    pub energy: Vec<f64>,
    /// Exact number of SpMV invocations (= steps) — the service/engine
    /// replay count.
    pub spmv_count: usize,
}

impl HeatRun {
    /// Energy after the final step (the initial energy if no steps ran).
    pub fn final_energy(&self) -> f64 {
        self.energy.last().copied().unwrap_or(0.0)
    }
}

/// A deterministic initial condition: a hot square patch in the grid
/// centre (value 1.0, elsewhere 0.0), expressed in the lowering's row
/// ordering so the same physical field is used under any [`super::Ordering`].
pub fn initial_condition(lowering: &Lowering) -> Vec<f64> {
    let mut u = vec![0.0; lowering.shape.len()];
    let hot = |coord: usize, extent: usize| {
        let lo = extent / 4;
        let hi = extent - extent / 4;
        coord >= lo && coord < hi
    };
    match lowering.shape {
        GridShape::D2 { nx, ny } => {
            for y in 0..ny {
                for x in 0..nx {
                    if hot(x, nx) && hot(y, ny) {
                        u[lowering.perm[y * nx + x]] = 1.0;
                    }
                }
            }
        }
        GridShape::D3 { nx, ny, nz } => {
            for z in 0..nz {
                for y in 0..ny {
                    for x in 0..nx {
                        if hot(x, nx) && hot(y, ny) && hot(z, nz) {
                            u[lowering.perm[(z * ny + y) * nx + x]] = 1.0;
                        }
                    }
                }
            }
        }
    }
    u
}

/// One explicit step `u ← u - dt·κ·A u`. Exactly one SpMV.
///
/// # Panics
///
/// Panics if `a` is not square or `u.len() != a.nrows()`.
pub fn step(a: &CsrMatrix, u: &mut [f64], dt: f64, kappa: f64) {
    assert_eq!(a.nrows(), a.ncols(), "heat stepping needs a square operator");
    assert_eq!(u.len(), a.nrows(), "field length mismatch");
    let au = spmv(a, u).expect("dimensions checked above");
    for (ui, aui) in u.iter_mut().zip(&au) {
        *ui -= dt * kappa * aui;
    }
}

/// Runs `params.steps` explicit steps from `u0`, recording the energy
/// after each step.
///
/// # Panics
///
/// Panics if `a` is not square or `u0.len() != a.nrows()`.
pub fn run(a: &CsrMatrix, u0: &[f64], params: HeatParams) -> HeatRun {
    let mut u = u0.to_vec();
    let mut energy = Vec::with_capacity(params.steps);
    for _ in 0..params.steps {
        step(a, &mut u, params.dt, params.kappa);
        energy.push(u.iter().map(|v| v * v).sum::<f64>());
    }
    HeatRun { u, energy, spmv_count: params.steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::lowering::{lower, Ordering};

    #[test]
    fn energy_decays_monotonically_under_stable_step() {
        let l = lower(StencilKind::Star5, GridShape::D2 { nx: 24, ny: 24 }, Ordering::Tiled16);
        let u0 = initial_condition(&l);
        let params = HeatParams::stable_for(StencilKind::Star5, 32);
        let run = run(&l.csr, &u0, params);
        assert_eq!(run.spmv_count, 32);
        let e0: f64 = u0.iter().map(|v| v * v).sum();
        let mut prev = e0;
        for &e in &run.energy {
            assert!(e <= prev + 1e-12, "energy rose: {e} > {prev}");
            assert!(e >= 0.0);
            prev = e;
        }
        assert!(run.final_energy() < e0, "Dirichlet boundaries must leak heat");
    }

    #[test]
    fn orderings_step_the_same_physics() {
        // The same physical field stepped under both orderings must agree
        // pointwise through the permutation, bit for bit.
        let shape = GridShape::D2 { nx: 18, ny: 14 };
        let nat = lower(StencilKind::Box9, shape, Ordering::Natural);
        let til = lower(StencilKind::Box9, shape, Ordering::Tiled16);
        let params = HeatParams::stable_for(StencilKind::Box9, 12);
        let rn = run(&nat.csr, &initial_condition(&nat), params);
        let rt = run(&til.csr, &initial_condition(&til), params);
        for (natural, &new) in til.perm.iter().enumerate() {
            assert_eq!(rt.u[new], rn.u[natural], "field diverged at grid point {natural}");
        }
    }

    #[test]
    fn run_is_deterministic() {
        let l = lower(StencilKind::Star7, GridShape::D3 { nx: 6, ny: 6, nz: 6 }, Ordering::Tiled16);
        let u0 = initial_condition(&l);
        let params = HeatParams::stable_for(StencilKind::Star7, 8);
        assert_eq!(run(&l.csr, &u0, params), run(&l.csr, &u0, params));
    }
}
