//! The SuiteSparse-like synthetic corpus.
//!
//! The paper evaluates over all 2 893 SuiteSparse matrices; this corpus is
//! the reproduction's substitute: ~300 deterministic matrices spanning the
//! structure families that drive STC behaviour, sweeping the
//! intermediate-products-per-T1 density axis of Fig. 20 end to end.

use sparse::CsrMatrix;

use crate::gen;

/// The structure family of a corpus matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Uniform random.
    Random,
    /// 2-D / 3-D FEM stencils.
    Stencil,
    /// Banded / wavefront.
    Banded,
    /// Power-law graph (R-MAT).
    PowerLaw,
    /// Scattered dense blocks.
    BlockDense,
    /// Arrow (banded + dense rows/columns).
    Arrow,
    /// Kronecker self-similar.
    Kronecker,
    /// Dense diagonal plus noise.
    Diagonal,
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Family::Random => "random",
            Family::Stencil => "stencil",
            Family::Banded => "banded",
            Family::PowerLaw => "power-law",
            Family::BlockDense => "block-dense",
            Family::Arrow => "arrow",
            Family::Kronecker => "kronecker",
            Family::Diagonal => "diagonal",
        };
        f.write_str(s)
    }
}

/// A named corpus entry: the spec is cheap, the matrix is built on demand.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Unique name, e.g. `random-512-d0.0100-s3`.
    pub name: String,
    /// Structure family.
    pub family: Family,
    builder: BuilderSpec,
}

#[derive(Debug, Clone)]
enum BuilderSpec {
    Random { n: usize, density: f64, seed: u64 },
    Poisson2d { g: usize },
    Poisson3d { g: usize },
    Banded { n: usize, hb: usize, fill: f64, seed: u64 },
    Rmat { n: usize, nnz: usize, seed: u64 },
    BlockDense { n: usize, block: usize, blocks: usize, seed: u64 },
    Arrow { n: usize, hb: usize, dense: usize, seed: u64 },
    Kronecker { order: u32, seed: u64 },
    Diagonal { n: usize, off: f64, seed: u64 },
}

impl CorpusEntry {
    /// Builds the matrix (deterministic per entry).
    pub fn build(&self) -> CsrMatrix {
        match self.builder {
            BuilderSpec::Random { n, density, seed } => gen::random_uniform(n, density, seed),
            BuilderSpec::Poisson2d { g } => gen::poisson_2d(g),
            BuilderSpec::Poisson3d { g } => gen::poisson_3d(g),
            BuilderSpec::Banded { n, hb, fill, seed } => gen::banded(n, hb, fill, seed),
            BuilderSpec::Rmat { n, nnz, seed } => gen::rmat(n, nnz, seed),
            BuilderSpec::BlockDense { n, block, blocks, seed } => {
                gen::block_dense(n, block, blocks, seed)
            }
            BuilderSpec::Arrow { n, hb, dense, seed } => gen::arrow(n, hb, dense, seed),
            BuilderSpec::Kronecker { order, seed } => {
                gen::kronecker(&[(0, 0), (0, 1), (1, 0), (1, 1), (2, 2), (2, 0)], 3, order, seed)
            }
            BuilderSpec::Diagonal { n, off, seed } => gen::diagonal_noise(n, off, seed),
        }
    }
}

/// Builds the full corpus specification (~300 entries).
///
/// Sizes are scaled to keep a full four-kernel sweep tractable on a
/// laptop-class machine while preserving the paper's density-axis
/// coverage; see EXPERIMENTS.md for the deviation note.
pub fn corpus() -> Vec<CorpusEntry> {
    let mut out = Vec::new();
    let mut push = |name: String, family: Family, builder: BuilderSpec| {
        out.push(CorpusEntry { name, family, builder });
    };

    // Random: 3 sizes x 10 densities x 2 seeds = 60.
    for &n in &[256usize, 512, 1024] {
        for &d in &[0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4] {
            for seed in 0..2u64 {
                push(
                    format!("random-{n}-d{d:.4}-s{seed}"),
                    Family::Random,
                    BuilderSpec::Random { n, density: d, seed },
                );
            }
        }
    }
    // Stencils: 2-D and 3-D at several grids = 16.
    for &g in &[16usize, 24, 32, 40, 48, 56, 64, 80] {
        push(format!("poisson2d-{g}"), Family::Stencil, BuilderSpec::Poisson2d { g });
    }
    for &g in &[6usize, 8, 10, 12, 14, 16, 18, 20] {
        push(format!("poisson3d-{g}"), Family::Stencil, BuilderSpec::Poisson3d { g });
    }
    // Banded: 3 sizes x 4 bandwidths x 3 fills = 36.
    for &n in &[256usize, 512, 1024] {
        for &hb in &[2usize, 8, 24, 48] {
            for &fill in &[0.3, 0.7, 1.0] {
                push(
                    format!("banded-{n}-b{hb}-f{fill:.1}"),
                    Family::Banded,
                    BuilderSpec::Banded { n, hb, fill, seed: n as u64 + hb as u64 },
                );
            }
        }
    }
    // Power law: 3 sizes x 5 fill levels x 3 seeds = 45.
    for &n in &[256usize, 512, 1024] {
        for &mult in &[2usize, 4, 8, 16, 32] {
            for seed in 0..3u64 {
                push(
                    format!("rmat-{n}-m{mult}-s{seed}"),
                    Family::PowerLaw,
                    BuilderSpec::Rmat { n, nnz: n * mult, seed: seed * 97 + mult as u64 },
                );
            }
        }
    }
    // Block dense: 3 sizes x 3 block sizes x 3 counts = 27.
    for &n in &[256usize, 512, 1024] {
        for &block in &[4usize, 8, 16] {
            for &frac in &[8usize, 16, 32] {
                push(
                    format!("blocks-{n}-b{block}-c{frac}"),
                    Family::BlockDense,
                    BuilderSpec::BlockDense {
                        n,
                        block,
                        blocks: n / frac,
                        seed: (n + block * frac) as u64,
                    },
                );
            }
        }
    }
    // Arrow: 3 sizes x 3 bandwidths x 3 dense-row counts = 27.
    for &n in &[256usize, 512, 1024] {
        for &hb in &[2usize, 6, 12] {
            for &dense in &[2usize, 8, 16] {
                push(
                    format!("arrow-{n}-b{hb}-d{dense}"),
                    Family::Arrow,
                    BuilderSpec::Arrow { n, hb, dense, seed: (n * hb + dense) as u64 },
                );
            }
        }
    }
    // Kronecker: orders 4..=6, 4 seeds = 12.
    for order in 4..=6u32 {
        for seed in 0..4u64 {
            push(
                format!("kron-o{order}-s{seed}"),
                Family::Kronecker,
                BuilderSpec::Kronecker { order, seed },
            );
        }
    }
    // Diagonal noise: 3 sizes x 5 noise levels x 2 seeds = 30.
    for &n in &[256usize, 512, 1024] {
        for &off in &[0.0, 0.0005, 0.002, 0.008, 0.02] {
            for seed in 0..2u64 {
                push(
                    format!("diag-{n}-o{off:.4}-s{seed}"),
                    Family::Diagonal,
                    BuilderSpec::Diagonal { n, off, seed: seed + n as u64 },
                );
            }
        }
    }
    out
}

/// A reduced corpus (every `stride`-th entry) for quick runs and tests.
///
/// # Panics
///
/// Panics if `stride == 0`.
pub fn corpus_sample(stride: usize) -> Vec<CorpusEntry> {
    assert!(stride > 0, "stride must be positive");
    corpus().into_iter().step_by(stride).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_about_300_entries() {
        let c = corpus();
        assert!(
            (250..=350).contains(&c.len()),
            "corpus has {} entries",
            c.len()
        );
    }

    #[test]
    fn names_are_unique() {
        let c = corpus();
        let mut names: Vec<&str> = c.iter().map(|e| e.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn every_family_is_represented() {
        let c = corpus();
        for f in [
            Family::Random,
            Family::Stencil,
            Family::Banded,
            Family::PowerLaw,
            Family::BlockDense,
            Family::Arrow,
            Family::Kronecker,
            Family::Diagonal,
        ] {
            assert!(c.iter().any(|e| e.family == f), "family {f} missing");
        }
    }

    #[test]
    fn entries_build_deterministically() {
        let c = corpus_sample(40);
        for e in &c {
            let a = e.build();
            let b = e.build();
            assert_eq!(a, b, "{} not deterministic", e.name);
            assert!(a.nnz() > 0, "{} is empty", e.name);
        }
    }

    #[test]
    fn corpus_sample_strides() {
        let full = corpus().len();
        let half = corpus_sample(2).len();
        assert!(half == full / 2 || half == full.div_ceil(2));
    }

    #[test]
    fn density_axis_is_covered() {
        // The corpus must contain both very sparse and near-dense-block
        // matrices so Fig. 20's x-axis is covered.
        let c = corpus();
        let sparse_entry = c.iter().find(|e| e.name.contains("d0.0005")).unwrap().build();
        let dense_entry = c.iter().find(|e| e.name.contains("d0.4000")).unwrap().build();
        assert!(sparse_entry.sparsity() > 0.999);
        assert!(dense_entry.sparsity() < 0.7);
    }
}
