//! Breadth-first search on a sparse adjacency matrix — the SpMV / SpMSpV
//! application of the paper's Table II.
//!
//! Linear-algebraic BFS: the frontier is a sparse vector `f`; one step is
//! `f' = (A^T f) masked by unvisited`, i.e. one SpMSpV per level (the
//! boolean semiring is emulated on floats). Early levels have very sparse
//! frontiers (SpMSpV territory); mid-traversal frontiers of power-law
//! graphs approach dense vectors (SpMV territory) — exactly the kernel mix
//! Table II attributes to BFS.

use sparse::ops::spmspv;
use sparse::{CsrMatrix, SparseVector};

/// Result of a BFS traversal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfsResult {
    /// BFS level per vertex (`-1` when unreachable).
    pub levels: Vec<i32>,
    /// Number of traversal iterations (levels expanded).
    pub iterations: usize,
    /// Number of reached vertices (including the source).
    pub reached: usize,
}

/// One recorded traversal step, for replaying the kernel mix through a
/// simulated engine.
#[derive(Debug, Clone, PartialEq)]
pub struct BfsStep {
    /// The frontier fed to this step's SpMSpV.
    pub frontier: SparseVector,
    /// Frontier density at this step (`nnz / n`).
    pub density: f64,
}

/// Runs BFS from `source` over the out-edges of `adj`, recording the
/// frontier of every step.
///
/// # Panics
///
/// Panics if `adj` is not square or `source` is out of range.
pub fn bfs(adj: &CsrMatrix, source: usize) -> (BfsResult, Vec<BfsStep>) {
    assert_eq!(adj.nrows(), adj.ncols(), "BFS needs a square adjacency matrix");
    assert!(source < adj.nrows(), "source vertex out of range");
    let n = adj.nrows();
    // Pulling along columns of A = pushing along rows of A^T.
    let at = adj.transpose();
    let mut levels = vec![-1i32; n];
    levels[source] = 0;
    let mut frontier =
        SparseVector::try_new(n, vec![source as u32], vec![1.0]).expect("source in range");
    let mut steps = Vec::new();
    let mut reached = 1usize;
    let mut level = 0i32;
    while frontier.nnz() > 0 {
        steps.push(BfsStep {
            frontier: frontier.clone(),
            density: frontier.nnz() as f64 / n as f64,
        });
        let next = spmspv(&at, &frontier).expect("dimensions fixed above");
        level += 1;
        let mut idx = Vec::new();
        let mut vals = Vec::new();
        for (v, _) in next.iter() {
            if levels[v] < 0 {
                levels[v] = level;
                idx.push(v as u32);
                vals.push(1.0);
                reached += 1;
            }
        }
        frontier = SparseVector::try_new(n, idx, vals).expect("indices sorted");
    }
    (BfsResult { levels, iterations: steps.len(), reached }, steps)
}

/// Replays a recorded traversal through a simulated engine: one SpMSpV per
/// step with the *actual* frontier of that step. Returns total cycles.
pub fn replay_cycles(
    engine: &dyn simkit::TileEngine,
    energy_model: &simkit::EnergyModel,
    adj: &sparse::BbcMatrix,
    steps: &[BfsStep],
) -> u64 {
    steps
        .iter()
        .map(|s| simkit::driver::run_spmspv(engine, energy_model, adj, &s.frontier).cycles)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use sparse::CooMatrix;

    /// A path graph 0 -> 1 -> ... -> n-1.
    fn path(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n - 1 {
            coo.push(i, i + 1, 1.0);
        }
        CsrMatrix::try_from(coo).unwrap()
    }

    #[test]
    fn path_graph_levels_are_distances() {
        let (res, steps) = bfs(&path(6), 0);
        assert_eq!(res.levels, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(res.reached, 6);
        assert_eq!(res.iterations, 6); // five expansions + final empty check
        assert_eq!(steps.len(), 6);
        assert!(steps[0].density < steps[5].density + 1e-12);
    }

    #[test]
    fn unreachable_vertices_stay_minus_one() {
        // Two components: 0 -> 1, 2 -> 3.
        let mut coo = CooMatrix::new(4, 4);
        coo.push(0, 1, 1.0);
        coo.push(2, 3, 1.0);
        let adj = CsrMatrix::try_from(coo).unwrap();
        let (res, _) = bfs(&adj, 0);
        assert_eq!(res.levels, vec![0, 1, -1, -1]);
        assert_eq!(res.reached, 2);
    }

    #[test]
    fn bfs_matches_reference_traversal_on_rmat() {
        let adj = gen::rmat(256, 1500, 9);
        let (res, _) = bfs(&adj, 0);
        // Reference: classic queue BFS over the same out-edges.
        let n = adj.nrows();
        let mut want = vec![-1i32; n];
        want[0] = 0;
        let mut queue = std::collections::VecDeque::from([0usize]);
        while let Some(u) = queue.pop_front() {
            let (cols, _) = adj.row(u);
            for &v in cols {
                if want[v as usize] < 0 {
                    want[v as usize] = want[u] + 1;
                    queue.push_back(v as usize);
                }
            }
        }
        assert_eq!(res.levels, want);
    }

    #[test]
    fn frontier_density_peaks_mid_traversal_on_power_law() {
        let adj = gen::rmat(512, 6000, 4);
        let (_, steps) = bfs(&adj, 0);
        assert!(steps.len() >= 2);
        let peak = steps.iter().map(|s| s.density).fold(0.0, f64::max);
        assert!(peak > steps[0].density, "peak {peak}");
    }

    #[test]
    fn replay_counts_cycles() {
        use baselines::DsStc;
        let adj = gen::rmat(128, 900, 2);
        let (_, steps) = bfs(&adj, 0);
        let bbc = sparse::BbcMatrix::from_csr(&adj);
        let em = simkit::EnergyModel::default();
        let cycles = replay_cycles(&DsStc::default(), &em, &bbc, &steps);
        assert!(cycles > 0);
    }
}
