//! Conjugate-gradient solver — the classic SpMV-dominated iterative
//! workload (the "linear solvers" the paper's Section VI-B amortisation
//! argument appeals to: one BBC encoding, thousands of SpMV invocations).

use sparse::ops::spmv;
use sparse::CsrMatrix;

/// Result of a CG solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgResult {
    /// Iterations performed (= SpMV invocations).
    pub iterations: usize,
    /// Final relative residual.
    pub relative_residual: f64,
    /// Whether the tolerance was met.
    pub converged: bool,
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Solves `A x = b` for a symmetric positive-definite `A` by conjugate
/// gradients from a zero initial guess.
///
/// Returns the solution and the solve statistics. Every iteration performs
/// exactly one SpMV on `a` — the quantity [`spmv_invocations`] exposes for
/// engine replay.
///
/// # Panics
///
/// Panics if `a` is not square or `b.len() != a.nrows()`.
pub fn solve(a: &CsrMatrix, b: &[f64], tol: f64, max_iters: usize) -> (Vec<f64>, CgResult) {
    let (x, res, _) = solve_traced(a, b, tol, max_iters);
    (x, res)
}

/// [`solve`], additionally recording the relative recurrence residual
/// `sqrt(r·r) / ||b||` after every iteration — the residual trajectory
/// the time-stepped stencil benchmarks compare across execution paths
/// (see `crate::stencil::solver`).
///
/// The trajectory has exactly `result.iterations` entries and costs no
/// extra SpMV: CG's recurrence already maintains `r·r`.
///
/// # Panics
///
/// Panics if `a` is not square or `b.len() != a.nrows()`.
pub fn solve_traced(
    a: &CsrMatrix,
    b: &[f64],
    tol: f64,
    max_iters: usize,
) -> (Vec<f64>, CgResult, Vec<f64>) {
    assert_eq!(a.nrows(), a.ncols(), "CG needs a square operator");
    assert_eq!(b.len(), a.nrows(), "rhs length mismatch");
    let n = b.len();
    let bnorm = dot(b, b).sqrt().max(1e-300);
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut rsold = dot(&r, &r);
    let mut iterations = 0usize;
    let mut trajectory = Vec::new();
    while iterations < max_iters {
        if rsold.sqrt() / bnorm < tol {
            break;
        }
        let ap = spmv(a, &p).expect("dimensions checked above");
        let denom = dot(&p, &ap);
        if denom.abs() < 1e-300 {
            break; // breakdown (A not SPD)
        }
        let alpha = rsold / denom;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rsnew = dot(&r, &r);
        let beta = rsnew / rsold;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rsold = rsnew;
        iterations += 1;
        trajectory.push(rsold.sqrt() / bnorm);
    }
    let rel = rsold.sqrt() / bnorm;
    (x, CgResult { iterations, relative_residual: rel, converged: rel < tol }, trajectory)
}

/// Number of SpMV invocations a CG solve of `res` performed (one per
/// iteration) — the replay count for per-engine cycle accounting.
pub fn spmv_invocations(res: &CgResult) -> usize {
    res.iterations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn solves_poisson_to_tolerance() {
        let a = gen::poisson_2d(16);
        let b: Vec<f64> = (0..256).map(|i| ((i % 7) as f64) - 3.0).collect();
        let (x, res) = solve(&a, &b, 1e-10, 1000);
        assert!(res.converged, "residual {}", res.relative_residual);
        // Verify from scratch.
        let ax = spmv(&a, &x).unwrap();
        let err: f64 =
            ax.iter().zip(&b).map(|(p, q)| (p - q) * (p - q)).sum::<f64>().sqrt();
        let bn: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(err / bn < 1e-9);
    }

    #[test]
    fn cg_converges_within_n_iterations_in_exact_arithmetic() {
        // CG's n-step guarantee (loosely, with floating point slack).
        let a = gen::poisson_2d(8);
        let b = vec![1.0; 64];
        let (_, res) = solve(&a, &b, 1e-12, 200);
        assert!(res.converged);
        assert!(res.iterations <= 80, "{} iterations", res.iterations);
    }

    #[test]
    fn solves_graph_laplacian() {
        let a = gen::graph_laplacian(256, 1200, 3);
        let b: Vec<f64> = (0..256).map(|i| (i % 3) as f64).collect();
        let (_, res) = solve(&a, &b, 1e-9, 2000);
        assert!(res.converged, "residual {}", res.relative_residual);
        assert_eq!(spmv_invocations(&res), res.iterations);
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let a = gen::poisson_2d(8);
        let (x, res) = solve(&a, &vec![0.0; 64], 1e-10, 10);
        assert_eq!(res.iterations, 0);
        assert!(x.iter().all(|v| *v == 0.0));
    }
}
