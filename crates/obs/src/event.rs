//! The trace-event vocabulary emitted by instrumented components.
//!
//! Every event carries a timestamp in **simulated cycles** (not wall
//! clock): traces are therefore fully deterministic for a fixed workload,
//! which is what lets the repo pin a golden Chrome-trace snapshot.

/// One timestamped observation from an instrumented component.
///
/// Emitters and their events:
///
/// | Component | Events |
/// |---|---|
/// | `simkit::driver` | [`TaskIssue`](TraceEvent::TaskIssue), [`TaskRetire`](TraceEvent::TaskRetire) |
/// | `uni_stc::tms` | [`TmsGenerate`](TraceEvent::TmsGenerate) |
/// | `uni_stc::dpg` | [`DpgExpand`](TraceEvent::DpgExpand) |
/// | `uni_stc::sdpu` | [`SdpuPack`](TraceEvent::SdpuPack) |
/// | `uni_stc::pipeline` | [`DpgPowerGate`](TraceEvent::DpgPowerGate), [`QueueDepth`](TraceEvent::QueueDepth), [`Stall`](TraceEvent::Stall) (plus the three above) |
/// | `runtime::pool` | [`WorkerSpawn`](TraceEvent::WorkerSpawn), [`WorkerSteal`](TraceEvent::WorkerSteal), [`TaskRetry`](TraceEvent::TaskRetry), [`WorkerCrash`](TraceEvent::WorkerCrash), [`RuntimeDegrade`](TraceEvent::RuntimeDegrade) |
///
/// Simulator events are timestamped in simulated cycles; the `runtime`
/// scheduler events reuse the `cycle` field for **microseconds since pool
/// start** (1 trace µs ≙ 1 cycle in the Chrome export, so both land on a
/// sensible timeline in Perfetto — just on different tracks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A T1 task entered an engine at `cycle` on the driver's global
    /// timeline.
    TaskIssue {
        /// Sequential task number within the kernel run.
        task: u64,
        /// Global issue cycle.
        cycle: u64,
        /// Intermediate products the task carries.
        products: u64,
    },
    /// A T1 task left the engine at `cycle` (global timeline).
    TaskRetire {
        /// Sequential task number within the kernel run.
        task: u64,
        /// Global retire cycle.
        cycle: u64,
        /// Execution cycles the task took.
        cycles: u64,
        /// Useful MAC operations it performed.
        useful: u64,
    },
    /// The TMS generated the T3 task batch for one T1 task (stage 1).
    TmsGenerate {
        /// Task-local cycle (0: generation latency is hidden by the
        /// asynchronous `stc.task_gen` lifecycle).
        cycle: u64,
        /// Number of T3 tasks generated.
        t3_tasks: u32,
    },
    /// A DPG expanded one T3 task into T4 segments (stage 2).
    DpgExpand {
        /// Task-local cycle.
        cycle: u64,
        /// Number of T4 segments produced.
        segments: u32,
        /// Total intermediate products across those segments.
        products: u32,
    },
    /// Per-cycle DPG power-gate state: `active` of `total` DPGs powered.
    DpgPowerGate {
        /// Task-local execution cycle.
        cycle: u64,
        /// DPGs that emitted this cycle (powered under dynamic gating).
        active: u32,
        /// Total DPGs in the configuration.
        total: u32,
    },
    /// Per-cycle SDPU packing outcome.
    SdpuPack {
        /// Task-local execution cycle.
        cycle: u64,
        /// T4 segments packed onto the lane array this cycle.
        segments: u32,
        /// Lanes carrying useful products.
        lanes_used: u32,
        /// Total MAC lanes.
        lanes: u32,
    },
    /// Per-cycle queue occupancy sample.
    QueueDepth {
        /// Task-local execution cycle.
        cycle: u64,
        /// T3 tasks waiting in the Tile queue (not yet on a DPG).
        tile: u32,
        /// T4 segments resident in DPG slots (the Dot-product queue).
        dot: u32,
    },
    /// One or more DPGs stalled by write-conflict arbitration this cycle.
    Stall {
        /// Task-local execution cycle.
        cycle: u64,
        /// Number of stalled DPGs.
        dpgs: u32,
    },
    /// The parallel runtime spawned a worker thread.
    WorkerSpawn {
        /// Microseconds since pool start.
        cycle: u64,
        /// Worker index.
        worker: u32,
    },
    /// A worker stole queued work from another worker's deque.
    WorkerSteal {
        /// Microseconds since pool start.
        cycle: u64,
        /// The stealing worker.
        worker: u32,
        /// The worker stolen from.
        victim: u32,
    },
    /// A task attempt failed (crash, stall timeout, transient fault or
    /// panic) and was requeued for another attempt.
    TaskRetry {
        /// Microseconds since pool start.
        cycle: u64,
        /// Task index within the run.
        task: u64,
        /// The attempt number being scheduled (1 = first retry).
        attempt: u32,
    },
    /// A worker thread crashed (chaos-injected or real) and left the pool.
    WorkerCrash {
        /// Microseconds since pool start.
        cycle: u64,
        /// The crashed worker.
        worker: u32,
    },
    /// Live workers fell below quorum: the runtime degraded to serial
    /// execution on the supervisor thread.
    RuntimeDegrade {
        /// Microseconds since pool start.
        cycle: u64,
        /// Workers still alive at the degrade decision.
        live: u32,
        /// The configured quorum.
        quorum: u32,
    },
}

impl TraceEvent {
    /// The event's timestamp in simulated cycles.
    pub fn cycle(&self) -> u64 {
        match *self {
            TraceEvent::TaskIssue { cycle, .. }
            | TraceEvent::TaskRetire { cycle, .. }
            | TraceEvent::TmsGenerate { cycle, .. }
            | TraceEvent::DpgExpand { cycle, .. }
            | TraceEvent::DpgPowerGate { cycle, .. }
            | TraceEvent::SdpuPack { cycle, .. }
            | TraceEvent::QueueDepth { cycle, .. }
            | TraceEvent::Stall { cycle, .. }
            | TraceEvent::WorkerSpawn { cycle, .. }
            | TraceEvent::WorkerSteal { cycle, .. }
            | TraceEvent::TaskRetry { cycle, .. }
            | TraceEvent::WorkerCrash { cycle, .. }
            | TraceEvent::RuntimeDegrade { cycle, .. } => cycle,
        }
    }

    /// The same event shifted onto a global timeline starting at `base`.
    pub fn at_offset(mut self, base: u64) -> Self {
        match &mut self {
            TraceEvent::TaskIssue { cycle, .. }
            | TraceEvent::TaskRetire { cycle, .. }
            | TraceEvent::TmsGenerate { cycle, .. }
            | TraceEvent::DpgExpand { cycle, .. }
            | TraceEvent::DpgPowerGate { cycle, .. }
            | TraceEvent::SdpuPack { cycle, .. }
            | TraceEvent::QueueDepth { cycle, .. }
            | TraceEvent::Stall { cycle, .. }
            | TraceEvent::WorkerSpawn { cycle, .. }
            | TraceEvent::WorkerSteal { cycle, .. }
            | TraceEvent::TaskRetry { cycle, .. }
            | TraceEvent::WorkerCrash { cycle, .. }
            | TraceEvent::RuntimeDegrade { cycle, .. } => *cycle += base,
        }
        self
    }

    /// A short stable kind label, used by exporters and counters.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::TaskIssue { .. } => "task_issue",
            TraceEvent::TaskRetire { .. } => "task_retire",
            TraceEvent::TmsGenerate { .. } => "tms_generate",
            TraceEvent::DpgExpand { .. } => "dpg_expand",
            TraceEvent::DpgPowerGate { .. } => "dpg_power_gate",
            TraceEvent::SdpuPack { .. } => "sdpu_pack",
            TraceEvent::QueueDepth { .. } => "queue_depth",
            TraceEvent::Stall { .. } => "stall",
            TraceEvent::WorkerSpawn { .. } => "worker_spawn",
            TraceEvent::WorkerSteal { .. } => "worker_steal",
            TraceEvent::TaskRetry { .. } => "task_retry",
            TraceEvent::WorkerCrash { .. } => "worker_crash",
            TraceEvent::RuntimeDegrade { .. } => "runtime_degrade",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_and_offset_agree_for_every_variant() {
        let evs = [
            TraceEvent::TaskIssue { task: 1, cycle: 10, products: 5 },
            TraceEvent::TaskRetire { task: 1, cycle: 12, cycles: 2, useful: 5 },
            TraceEvent::TmsGenerate { cycle: 0, t3_tasks: 4 },
            TraceEvent::DpgExpand { cycle: 0, segments: 3, products: 9 },
            TraceEvent::DpgPowerGate { cycle: 2, active: 2, total: 8 },
            TraceEvent::SdpuPack { cycle: 2, segments: 5, lanes_used: 17, lanes: 64 },
            TraceEvent::QueueDepth { cycle: 2, tile: 4, dot: 11 },
            TraceEvent::Stall { cycle: 2, dpgs: 1 },
            TraceEvent::WorkerSpawn { cycle: 3, worker: 0 },
            TraceEvent::WorkerSteal { cycle: 4, worker: 1, victim: 0 },
            TraceEvent::TaskRetry { cycle: 5, task: 9, attempt: 1 },
            TraceEvent::WorkerCrash { cycle: 6, worker: 1 },
            TraceEvent::RuntimeDegrade { cycle: 7, live: 1, quorum: 2 },
        ];
        for ev in evs {
            let shifted = ev.at_offset(100);
            assert_eq!(shifted.cycle(), ev.cycle() + 100, "{}", ev.kind());
            assert_eq!(shifted.kind(), ev.kind());
        }
    }

    #[test]
    fn kinds_are_distinct() {
        let kinds = [
            TraceEvent::TaskIssue { task: 0, cycle: 0, products: 0 }.kind(),
            TraceEvent::TaskRetire { task: 0, cycle: 0, cycles: 0, useful: 0 }.kind(),
            TraceEvent::TmsGenerate { cycle: 0, t3_tasks: 0 }.kind(),
            TraceEvent::DpgExpand { cycle: 0, segments: 0, products: 0 }.kind(),
            TraceEvent::DpgPowerGate { cycle: 0, active: 0, total: 0 }.kind(),
            TraceEvent::SdpuPack { cycle: 0, segments: 0, lanes_used: 0, lanes: 0 }.kind(),
            TraceEvent::QueueDepth { cycle: 0, tile: 0, dot: 0 }.kind(),
            TraceEvent::Stall { cycle: 0, dpgs: 0 }.kind(),
            TraceEvent::WorkerSpawn { cycle: 0, worker: 0 }.kind(),
            TraceEvent::WorkerSteal { cycle: 0, worker: 0, victim: 0 }.kind(),
            TraceEvent::TaskRetry { cycle: 0, task: 0, attempt: 0 }.kind(),
            TraceEvent::WorkerCrash { cycle: 0, worker: 0 }.kind(),
            TraceEvent::RuntimeDegrade { cycle: 0, live: 0, quorum: 0 }.kind(),
        ];
        let mut sorted = kinds.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), kinds.len());
    }
}
