//! A minimal JSON value model, writer and parser.
//!
//! The workspace is dependency-free, so the Chrome-trace exporter, the
//! metrics registry and the perf-regression runner share this hand-rolled
//! implementation instead of serde. Objects preserve insertion order, so
//! serialisation is deterministic — a requirement for the golden
//! Chrome-trace snapshot.

use std::fmt::Write as _;

/// A JSON value. Objects are ordered (insertion order is preserved).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers up to 2^53 round-trip exactly).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object as an ordered key/value list.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from key/value pairs.
    pub fn object(pairs: Vec<(&str, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as a non-negative integer, if exactly one.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n == n.trunc() && n <= 9_007_199_254_740_992.0 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Compact one-line rendering.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation (stable line-per-item
    /// layout, used for golden snapshots).
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => write_number(*n, out),
            Value::Str(s) => write_string(s, out),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Num(v as f64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::Num(v as f64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Num(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf
        return;
    }
    let magnitude = n.abs();
    if n == n.trunc() && magnitude <= 9_007_199_254_740_992.0 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte position and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub pos: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed).
///
/// # Errors
///
/// Returns a [`JsonError`] with the byte position of the first problem.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { pos: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect_byte(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect_byte(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect_byte(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':', "expected ':'")?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Re-decode the UTF-8 sequence starting at pos - 1.
                    let start = self.pos - 1;
                    let tail = &self.bytes[start..];
                    let len = utf8_len(b);
                    if tail.len() < len {
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    match std::str::from_utf8(&tail[..len]) {
                        Ok(s) => {
                            out.push_str(s);
                            self.pos = start + len;
                        }
                        Err(_) => return Err(self.err("invalid UTF-8 in string")),
                    }
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let cp = self.hex4()?;
        // Surrogate pair handling: a high surrogate must be followed by
        // an escaped low surrogate.
        if (0xD800..=0xDBFF).contains(&cp) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let low = self.hex4()?;
                if (0xDC00..=0xDFFF).contains(&low) {
                    let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(cp).ok_or_else(|| self.err("invalid unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated unicode escape"));
            };
            let d = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a') as u32 + 10,
                b'A'..=b'F' => (b - b'A') as u32 + 10,
                _ => return Err(self.err("invalid hex digit")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Value::Num(n)),
            _ => Err(self.err("invalid number")),
        }
    }
}

fn utf8_len(first: u8) -> usize {
    if first >= 0xF0 {
        4
    } else if first >= 0xE0 {
        3
    } else {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let v = Value::object(vec![
            ("name", Value::from("Uni-STC")),
            ("cycles", Value::from(1234u64)),
            ("util", Value::from(0.5)),
            ("flags", Value::Array(vec![Value::Bool(true), Value::Null])),
            ("nested", Value::object(vec![("k", Value::from(-3.5))])),
        ]);
        let s = v.to_json();
        assert_eq!(parse(&s), Ok(v.clone()));
        // Pretty output parses back to the same value too.
        assert_eq!(parse(&v.to_json_pretty()), Ok(v));
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Value::from(42u64).to_json(), "42");
        assert_eq!(Value::Num(-7.0).to_json(), "-7");
        assert_eq!(Value::from(2.5).to_json(), "2.5");
        assert_eq!(Value::Num(f64::NAN).to_json(), "null");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Value::from("a\"b\\c\nd\te\u{0007}");
        let s = v.to_json();
        assert_eq!(parse(&s), Ok(v));
    }

    #[test]
    fn parses_standard_escapes_and_unicode() {
        let v = parse(r#""\u0041\u00e9 \uD83D\uDE00 \/ \b\f""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé 😀 / \u{0008}\u{000C}"));
    }

    #[test]
    fn parses_non_ascii_passthrough() {
        let v = parse("\"héllo→\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo→"));
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"a": [1, 2], "b": "x", "n": 9}"#).unwrap();
        assert_eq!(v.get("a").and_then(Value::as_array).map(<[Value]>::len), Some(2));
        assert_eq!(v.get("b").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(9));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::from(1.5).as_u64(), None);
        assert_eq!(Value::Num(-1.0).as_u64(), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in
            ["", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "01x", "\"\\q\"", "1 2", "\"\\uD800\""]
        {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_excessive_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn preserves_object_order() {
        let v = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let keys: Vec<&str> =
            v.as_object().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["z", "a"]);
    }
}
