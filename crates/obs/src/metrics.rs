//! The metrics registry: counters, gauges, fixed-bucket histograms and
//! wall-clock spans.
//!
//! Metric names are flat strings, conventionally `component/metric`
//! (`driver/t1_tasks`, `kernel/spmv`). Registries serialise to JSON with
//! keys in sorted order, so exports are deterministic given deterministic
//! inputs (wall-clock span *durations* are of course not deterministic —
//! the perf-regression comparator only gates on cycle counts).

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use crate::json::Value;

/// A fixed-bucket histogram over `u64` observations.
///
/// Bucket `i` counts observations `v` with `v <= bounds[i]` (and greater
/// than the previous bound); one implicit overflow bucket counts
/// everything above the last bound. Upper-inclusive bounds make the
/// mapping exact for integer observations: `bounds = [1, 4, 16]` yields
/// the intervals `[0,1]`, `(1,4]`, `(4,16]`, `(16,∞)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// `bounds.len() + 1` counts; the last is the overflow bucket.
    counts: Vec<u64>,
    sum: u64,
    /// Set once the running `sum` has clamped at `u64::MAX`: from that
    /// point on, any mean derived from `sum / count` under-reports, so
    /// consumers must check this flag before trusting it.
    saturated: bool,
}

impl Histogram {
    /// Creates a histogram with the given upper-inclusive bucket bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn with_bounds(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0,
            saturated: false,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx] += 1;
        match self.sum.checked_add(v) {
            Some(s) => self.sum = s,
            None => {
                self.sum = u64::MAX;
                self.saturated = true;
            }
        }
    }

    /// The configured upper-inclusive bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of all observed values. Clamped at `u64::MAX` once the true
    /// total overflows — check [`Histogram::saturated`] before deriving a
    /// mean from it.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Whether the running sum ever overflowed and clamped at
    /// `u64::MAX`. While set, `sum()` (and any mean derived from it)
    /// under-reports the true total.
    pub fn saturated(&self) -> bool {
        self.saturated
    }

    /// The `q`-quantile as an upper bound: the smallest bucket upper
    /// bound below which at least `ceil(q * count)` observations fall.
    ///
    /// Fixed buckets cannot recover exact order statistics, so the
    /// estimate is conservative (never below the true quantile).
    /// Returns `None` when the histogram is empty, and `Some(u64::MAX)`
    /// when the quantile lands in the overflow bucket — an SLO gate on
    /// the result then fails, which is the right default for "the tail
    /// escaped the instrumented range".
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < q <= 1.0`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1]");
        let total = self.count();
        if total == 0 {
            return None;
        }
        // ceil(q * total) without floating-point edge surprises at q=1.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(self.bounds.get(i).copied().unwrap_or(u64::MAX));
            }
        }
        Some(u64::MAX)
    }

    fn to_json(&self) -> Value {
        Value::object(vec![
            ("bounds", Value::Array(self.bounds.iter().map(|&b| Value::from(b)).collect())),
            ("counts", Value::Array(self.counts.iter().map(|&c| Value::from(c)).collect())),
            ("count", Value::from(self.count())),
            ("sum", Value::from(self.sum)),
            ("saturated", Value::Bool(self.saturated)),
        ])
    }
}

/// Aggregated wall-clock span statistics for one name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanStats {
    /// Completed spans recorded.
    pub count: u64,
    /// Total time across spans.
    pub total: Duration,
    /// Shortest span.
    pub min: Duration,
    /// Longest span.
    pub max: Duration,
}

impl SpanStats {
    fn record(&mut self, d: Duration) {
        self.count += 1;
        self.total += d;
        self.min = self.min.min(d);
        self.max = self.max.max(d);
    }

    fn to_json(self) -> Value {
        Value::object(vec![
            ("count", Value::from(self.count)),
            ("total_ms", Value::from(self.total.as_secs_f64() * 1e3)),
            ("min_ms", Value::from(self.min.as_secs_f64() * 1e3)),
            ("max_ms", Value::from(self.max.as_secs_f64() * 1e3)),
        ])
    }
}

/// A running wall-clock measurement, recorded into a registry on
/// completion via [`MetricsRegistry::record_span`].
///
/// # Example
///
/// ```
/// use obs::{MetricsRegistry, WallSpan};
///
/// let mut reg = MetricsRegistry::new();
/// let span = WallSpan::start();
/// // ... the work being measured ...
/// reg.record_span("kernel/spmv", span.elapsed());
/// assert_eq!(reg.span("kernel/spmv").map(|s| s.count), Some(1));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct WallSpan {
    start: Instant,
}

impl WallSpan {
    /// Starts the clock.
    pub fn start() -> Self {
        WallSpan { start: Instant::now() }
    }

    /// Time elapsed since [`WallSpan::start`].
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

/// A registry of named counters, gauges, histograms and wall-clock spans.
///
/// Names are sorted in every accessor and in the JSON export, so output
/// ordering never depends on insertion order.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    spans: BTreeMap<String, SpanStats>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `by` to the named counter (created at zero).
    pub fn inc_counter(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += by;
    }

    /// The counter's current value (zero if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the named gauge to `v`.
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_owned(), v);
    }

    /// The gauge's current value, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Records `v` into the named histogram, creating it with `bounds` on
    /// first use.
    ///
    /// # Panics
    ///
    /// Panics if the histogram exists with different bounds (two call
    /// sites disagreeing about a metric's buckets is a bug), or if a new
    /// `bounds` is empty or unsorted.
    pub fn observe(&mut self, name: &str, bounds: &[u64], v: u64) {
        let h = self
            .histograms
            .entry(name.to_owned())
            .or_insert_with(|| Histogram::with_bounds(bounds));
        assert_eq!(h.bounds(), bounds, "histogram {name} re-registered with different bounds");
        h.observe(v);
    }

    /// The named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Records one completed wall-clock span under `name`.
    pub fn record_span(&mut self, name: &str, d: Duration) {
        self.spans
            .entry(name.to_owned())
            .or_insert(SpanStats {
                count: 0,
                total: Duration::ZERO,
                min: Duration::MAX,
                max: Duration::ZERO,
            })
            .record(d);
    }

    /// The aggregated span statistics for `name`, if any were recorded.
    pub fn span(&self, name: &str) -> Option<&SpanStats> {
        self.spans.get(name)
    }

    /// Serialises the whole registry: `{"counters": {..}, "gauges": {..},
    /// "histograms": {..}, "spans": {..}}` with sorted keys.
    pub fn to_json(&self) -> Value {
        let counters =
            self.counters.iter().map(|(k, &v)| (k.clone(), Value::from(v))).collect();
        let gauges = self.gauges.iter().map(|(k, &v)| (k.clone(), Value::from(v))).collect();
        let histograms =
            self.histograms.iter().map(|(k, h)| (k.clone(), h.to_json())).collect();
        let spans = self.spans.iter().map(|(k, s)| (k.clone(), s.to_json())).collect();
        Value::Object(vec![
            ("counters".to_owned(), Value::Object(counters)),
            ("gauges".to_owned(), Value::Object(gauges)),
            ("histograms".to_owned(), Value::Object(histograms)),
            ("spans".to_owned(), Value::Object(spans)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_boundaries_are_upper_inclusive() {
        let mut h = Histogram::with_bounds(&[1, 4, 16]);
        // Exactly on each bound lands in that bound's bucket.
        h.observe(0); // [0,1] -> bucket 0
        h.observe(1); // bucket 0 (inclusive upper bound)
        h.observe(2); // (1,4] -> bucket 1
        h.observe(4); // bucket 1
        h.observe(5); // (4,16] -> bucket 2
        h.observe(16); // bucket 2
        h.observe(17); // overflow
        h.observe(u64::MAX); // overflow
        assert_eq!(h.bucket_counts(), &[2, 2, 2, 2]);
        assert_eq!(h.count(), 8);
    }

    #[test]
    fn histogram_sum_saturates() {
        let mut h = Histogram::with_bounds(&[10]);
        h.observe(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert!(!h.saturated(), "an exact u64::MAX sum is not an overflow");
        h.observe(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert!(h.saturated(), "the second observation overflowed the sum");
        // The flag is sticky and surfaces in the JSON export.
        h.observe(1);
        assert!(h.saturated());
        let v = h.to_json();
        assert_eq!(v.get("saturated"), Some(&Value::Bool(true)));
    }

    #[test]
    fn histogram_export_reports_unsaturated_sums() {
        let mut h = Histogram::with_bounds(&[10]);
        h.observe(3);
        h.observe(4);
        assert_eq!(h.sum(), 7);
        assert!(!h.saturated());
        let v = h.to_json();
        assert_eq!(v.get("saturated"), Some(&Value::Bool(false)));
        assert_eq!(v.get("sum").and_then(Value::as_u64), Some(7));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_rejected() {
        Histogram::with_bounds(&[4, 4]);
    }

    #[test]
    #[should_panic(expected = "at least one bound")]
    fn empty_bounds_rejected() {
        Histogram::with_bounds(&[]);
    }

    #[test]
    fn quantiles_report_bucket_upper_bounds() {
        let mut h = Histogram::with_bounds(&[1, 4, 16]);
        assert_eq!(h.quantile(0.5), None, "empty histogram has no quantiles");
        for v in [0, 1, 2, 3, 5, 6, 7, 8, 9, 10] {
            h.observe(v);
        }
        // 10 observations: 2 in [0,1], 2 in (1,4], 6 in (4,16].
        assert_eq!(h.quantile(0.2), Some(1));
        assert_eq!(h.quantile(0.4), Some(4));
        assert_eq!(h.quantile(0.5), Some(16));
        assert_eq!(h.quantile(0.99), Some(16));
        assert_eq!(h.quantile(1.0), Some(16));
        h.observe(1_000);
        assert_eq!(h.quantile(1.0), Some(u64::MAX), "tail escaped the bucket range");
        assert_eq!(h.quantile(0.5), Some(16));
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0, 1]")]
    fn quantile_rejects_zero() {
        let _ = Histogram::with_bounds(&[1]).quantile(0.0);
    }

    #[test]
    fn counters_and_gauges() {
        let mut r = MetricsRegistry::new();
        assert_eq!(r.counter("x"), 0);
        r.inc_counter("x", 2);
        r.inc_counter("x", 3);
        assert_eq!(r.counter("x"), 5);
        assert_eq!(r.gauge("g"), None);
        r.set_gauge("g", 0.75);
        assert_eq!(r.gauge("g"), Some(0.75));
    }

    #[test]
    fn registry_histograms_share_bounds() {
        let mut r = MetricsRegistry::new();
        r.observe("lat", &[1, 2], 1);
        r.observe("lat", &[1, 2], 3);
        let h = r.histogram("lat").expect("histogram exists");
        assert_eq!(h.bucket_counts(), &[1, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "different bounds")]
    fn registry_rejects_bound_mismatch() {
        let mut r = MetricsRegistry::new();
        r.observe("lat", &[1, 2], 1);
        r.observe("lat", &[1, 3], 1);
    }

    #[test]
    fn spans_aggregate_min_max() {
        let mut r = MetricsRegistry::new();
        r.record_span("k", Duration::from_millis(4));
        r.record_span("k", Duration::from_millis(2));
        r.record_span("k", Duration::from_millis(6));
        let s = r.span("k").expect("span exists");
        assert_eq!(s.count, 3);
        assert_eq!(s.total, Duration::from_millis(12));
        assert_eq!(s.min, Duration::from_millis(2));
        assert_eq!(s.max, Duration::from_millis(6));
    }

    #[test]
    fn wall_span_measures_something() {
        let mut r = MetricsRegistry::new();
        let t = WallSpan::start();
        r.record_span("w", t.elapsed());
        let s = r.span("w").expect("span exists");
        assert_eq!(s.count, 1);
        assert!(s.max >= s.min);
    }

    #[test]
    fn json_export_has_sorted_sections() {
        let mut r = MetricsRegistry::new();
        r.inc_counter("z", 1);
        r.inc_counter("a", 2);
        r.set_gauge("util", 0.5);
        r.observe("h", &[8], 3);
        r.record_span("s", Duration::from_millis(1));
        let v = r.to_json();
        let counters = v.get("counters").and_then(Value::as_object).expect("counters");
        let keys: Vec<&str> = counters.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["a", "z"]);
        assert!(v.get("histograms").and_then(|h| h.get("h")).is_some());
        assert!(v.get("spans").and_then(|s| s.get("s")).is_some());
        // The export parses back.
        assert!(crate::json::parse(&v.to_json_pretty()).is_ok());
    }
}
