//! Chrome-trace-event JSON export.
//!
//! Converts a recorded [`TraceEvent`] stream into the [Trace Event
//! Format] consumed by Perfetto and `chrome://tracing`: one microsecond of
//! trace time per simulated cycle. T1 tasks become complete (`"X"`) slices
//! on a "T1 tasks" thread; TMS generation and DPG expansion become instant
//! (`"i"`) events on a "TMS / DPG" thread; power-gate state, SDPU lane
//! occupancy, queue depths and arbitration stalls become counter (`"C"`)
//! tracks, which Perfetto renders as stacked area charts.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//!
//! The export is deterministic for a deterministic event stream (cycle
//! timestamps only, no wall clock), which is what allows the golden
//! snapshot test (`OBS_BLESS=1` to re-bless).

use crate::json::Value;
use crate::TraceEvent;

const PID: u64 = 0;
const TID_TASKS: u64 = 0;
const TID_SCHED: u64 = 1;
const TID_RUNTIME: u64 = 2;

fn meta_thread_name(tid: u64, name: &str) -> Value {
    Value::object(vec![
        ("name", Value::from("thread_name")),
        ("ph", Value::from("M")),
        ("pid", Value::from(PID)),
        ("tid", Value::from(tid)),
        ("args", Value::object(vec![("name", Value::from(name))])),
    ])
}

fn counter(name: &str, ts: u64, args: Vec<(&str, Value)>) -> Value {
    Value::object(vec![
        ("name", Value::from(name)),
        ("ph", Value::from("C")),
        ("pid", Value::from(PID)),
        ("ts", Value::from(ts)),
        ("args", Value::object(args)),
    ])
}

fn instant(name: String, tid: u64, ts: u64, args: Vec<(&str, Value)>) -> Value {
    Value::object(vec![
        ("name", Value::Str(name)),
        ("ph", Value::from("i")),
        ("s", Value::from("t")),
        ("pid", Value::from(PID)),
        ("tid", Value::from(tid)),
        ("ts", Value::from(ts)),
        ("args", Value::object(args)),
    ])
}

/// Builds the full Chrome trace document for an event stream.
///
/// The result serialises with [`Value::to_json`] (compact) or
/// [`Value::to_json_pretty`] (golden snapshots).
pub fn trace_document(events: &[TraceEvent]) -> Value {
    let mut out: Vec<Value> = vec![
        meta_thread_name(TID_TASKS, "T1 tasks"),
        meta_thread_name(TID_SCHED, "TMS / DPG"),
    ];
    // The runtime track only appears when a scheduler actually traced
    // something, so purely simulated streams (and their golden snapshots)
    // are unaffected.
    let has_runtime = events.iter().any(|e| {
        matches!(
            e,
            TraceEvent::WorkerSpawn { .. }
                | TraceEvent::WorkerSteal { .. }
                | TraceEvent::TaskRetry { .. }
                | TraceEvent::WorkerCrash { .. }
                | TraceEvent::RuntimeDegrade { .. }
        )
    });
    if has_runtime {
        out.push(meta_thread_name(TID_RUNTIME, "runtime scheduler"));
    }
    for ev in events {
        match *ev {
            TraceEvent::TaskIssue { .. } => {
                // The retire event carries the full slice; issues need no
                // separate mark (they coincide with the slice start).
            }
            TraceEvent::TaskRetire { task, cycle, cycles, useful } => {
                out.push(Value::object(vec![
                    ("name", Value::Str(format!("T1 #{task}"))),
                    ("ph", Value::from("X")),
                    ("pid", Value::from(PID)),
                    ("tid", Value::from(TID_TASKS)),
                    ("ts", Value::from(cycle.saturating_sub(cycles))),
                    ("dur", Value::from(cycles)),
                    ("args", Value::object(vec![("useful", Value::from(useful))])),
                ]));
            }
            TraceEvent::TmsGenerate { cycle, t3_tasks } => {
                out.push(instant(
                    "TMS generate".to_owned(),
                    TID_SCHED,
                    cycle,
                    vec![("t3_tasks", Value::from(u64::from(t3_tasks)))],
                ));
            }
            TraceEvent::DpgExpand { cycle, segments, products } => {
                out.push(instant(
                    "DPG expand".to_owned(),
                    TID_SCHED,
                    cycle,
                    vec![
                        ("segments", Value::from(u64::from(segments))),
                        ("products", Value::from(u64::from(products))),
                    ],
                ));
            }
            TraceEvent::DpgPowerGate { cycle, active, total } => {
                out.push(counter(
                    "active DPGs",
                    cycle,
                    vec![
                        ("active", Value::from(u64::from(active))),
                        ("gated", Value::from(u64::from(total.saturating_sub(active)))),
                    ],
                ));
            }
            TraceEvent::SdpuPack { cycle, segments, lanes_used, lanes } => {
                out.push(counter(
                    "SDPU lanes",
                    cycle,
                    vec![
                        ("used", Value::from(u64::from(lanes_used))),
                        ("idle", Value::from(u64::from(lanes.saturating_sub(lanes_used)))),
                        ("segments", Value::from(u64::from(segments))),
                    ],
                ));
            }
            TraceEvent::QueueDepth { cycle, tile, dot } => {
                out.push(counter(
                    "queues",
                    cycle,
                    vec![
                        ("tile", Value::from(u64::from(tile))),
                        ("dot", Value::from(u64::from(dot))),
                    ],
                ));
            }
            TraceEvent::Stall { cycle, dpgs } => {
                out.push(counter(
                    "stalled DPGs",
                    cycle,
                    vec![("stalled", Value::from(u64::from(dpgs)))],
                ));
            }
            TraceEvent::WorkerSpawn { cycle, worker } => {
                out.push(instant(
                    format!("spawn w{worker}"),
                    TID_RUNTIME,
                    cycle,
                    vec![("worker", Value::from(u64::from(worker)))],
                ));
            }
            TraceEvent::WorkerSteal { cycle, worker, victim } => {
                out.push(instant(
                    format!("steal w{worker}<-w{victim}"),
                    TID_RUNTIME,
                    cycle,
                    vec![
                        ("worker", Value::from(u64::from(worker))),
                        ("victim", Value::from(u64::from(victim))),
                    ],
                ));
            }
            TraceEvent::TaskRetry { cycle, task, attempt } => {
                out.push(instant(
                    format!("retry #{task}"),
                    TID_RUNTIME,
                    cycle,
                    vec![
                        ("task", Value::from(task)),
                        ("attempt", Value::from(u64::from(attempt))),
                    ],
                ));
            }
            TraceEvent::WorkerCrash { cycle, worker } => {
                out.push(instant(
                    format!("crash w{worker}"),
                    TID_RUNTIME,
                    cycle,
                    vec![("worker", Value::from(u64::from(worker)))],
                ));
            }
            TraceEvent::RuntimeDegrade { cycle, live, quorum } => {
                out.push(instant(
                    "degrade to serial".to_owned(),
                    TID_RUNTIME,
                    cycle,
                    vec![
                        ("live", Value::from(u64::from(live))),
                        ("quorum", Value::from(u64::from(quorum))),
                    ],
                ));
            }
        }
    }
    Value::object(vec![
        ("traceEvents", Value::Array(out)),
        ("displayTimeUnit", Value::from("ms")),
        (
            "metadata",
            Value::object(vec![
                ("tool", Value::from("uni-stc obs")),
                ("time_unit", Value::from("1 trace us = 1 simulated cycle")),
            ]),
        ),
    ])
}

/// Pretty-printed Chrome trace JSON (the golden-snapshot rendering).
pub fn export_pretty(events: &[TraceEvent]) -> String {
    trace_document(events).to_json_pretty()
}

/// Compact Chrome trace JSON (what gets written next to BENCH files).
pub fn export(events: &[TraceEvent]) -> String {
    trace_document(events).to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent::TaskIssue { task: 0, cycle: 0, products: 12 },
            TraceEvent::TmsGenerate { cycle: 0, t3_tasks: 3 },
            TraceEvent::DpgExpand { cycle: 0, segments: 4, products: 12 },
            TraceEvent::DpgPowerGate { cycle: 0, active: 2, total: 8 },
            TraceEvent::SdpuPack { cycle: 0, segments: 4, lanes_used: 12, lanes: 64 },
            TraceEvent::QueueDepth { cycle: 0, tile: 1, dot: 4 },
            TraceEvent::Stall { cycle: 1, dpgs: 1 },
            TraceEvent::TaskRetire { task: 0, cycle: 2, cycles: 2, useful: 12 },
        ]
    }

    #[test]
    fn export_is_valid_json_with_trace_events() {
        let doc = json::parse(&export(&sample())).expect("valid JSON");
        let evs = doc.get("traceEvents").and_then(Value::as_array).expect("traceEvents");
        // 2 thread-name metadata + 7 payload events (issue folds into X).
        assert_eq!(evs.len(), 9);
        for ev in evs {
            assert!(ev.get("ph").and_then(Value::as_str).is_some(), "{ev:?}");
            assert!(ev.get("name").and_then(Value::as_str).is_some(), "{ev:?}");
        }
    }

    #[test]
    fn task_slice_spans_issue_to_retire() {
        let doc = trace_document(&sample());
        let evs = doc.get("traceEvents").and_then(Value::as_array).expect("traceEvents");
        let slice = evs
            .iter()
            .find(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .expect("one X slice");
        assert_eq!(slice.get("ts").and_then(Value::as_u64), Some(0));
        assert_eq!(slice.get("dur").and_then(Value::as_u64), Some(2));
        assert_eq!(slice.get("name").and_then(Value::as_str), Some("T1 #0"));
    }

    #[test]
    fn counters_carry_their_series() {
        let doc = trace_document(&sample());
        let evs = doc.get("traceEvents").and_then(Value::as_array).expect("traceEvents");
        let gate = evs
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("active DPGs"))
            .expect("power-gate counter");
        let args = gate.get("args").expect("args");
        assert_eq!(args.get("active").and_then(Value::as_u64), Some(2));
        assert_eq!(args.get("gated").and_then(Value::as_u64), Some(6));
    }

    #[test]
    fn export_is_deterministic() {
        assert_eq!(export(&sample()), export(&sample()));
        assert_eq!(export_pretty(&sample()), export_pretty(&sample()));
    }

    #[test]
    fn empty_stream_still_valid() {
        let doc = json::parse(&export(&[])).expect("valid JSON");
        let evs = doc.get("traceEvents").and_then(Value::as_array).expect("traceEvents");
        assert_eq!(evs.len(), 2); // just the thread names
    }

    #[test]
    fn runtime_events_land_on_their_own_track() {
        let events = [
            TraceEvent::WorkerSpawn { cycle: 0, worker: 0 },
            TraceEvent::WorkerSteal { cycle: 5, worker: 1, victim: 0 },
            TraceEvent::TaskRetry { cycle: 9, task: 3, attempt: 1 },
            TraceEvent::WorkerCrash { cycle: 12, worker: 1 },
            TraceEvent::RuntimeDegrade { cycle: 13, live: 1, quorum: 2 },
        ];
        let doc = json::parse(&export(&events)).expect("valid JSON");
        let evs = doc.get("traceEvents").and_then(Value::as_array).expect("traceEvents");
        // 3 thread-name metadata (runtime track appears) + 5 instants.
        assert_eq!(evs.len(), 8);
        // Track names live in the metadata events' args, instant names at
        // the top level — collect both.
        let name_of = |e: &Value| -> Option<String> {
            e.get("args")
                .and_then(|a| a.get("name"))
                .or_else(|| e.get("name"))
                .and_then(Value::as_str)
                .map(str::to_owned)
        };
        let named: Vec<String> = evs.iter().filter_map(name_of).collect();
        assert!(named.iter().any(|n| n == "runtime scheduler"), "{named:?}");
        assert!(named.iter().any(|n| n == "degrade to serial"), "{named:?}");
        // Non-runtime streams must not grow the extra track (golden
        // snapshots depend on this).
        let plain = json::parse(&export(&sample())).expect("valid JSON");
        let plain_names: Vec<String> = plain
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents")
            .iter()
            .filter_map(name_of)
            .collect();
        assert!(!plain_names.iter().any(|n| n == "runtime scheduler"));
    }
}
