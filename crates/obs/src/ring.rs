//! A bounded ring-buffer trace sink.

use crate::{TraceEvent, TraceSink};

/// A bounded trace sink that keeps the **most recent** `capacity` events.
///
/// When the buffer is full, each new event overwrites the oldest one and
/// bumps [`RingSink::overwritten`] — long runs stay bounded in memory and
/// the tail of the trace (usually the interesting part) survives.
///
/// # Example
///
/// ```
/// use obs::{RingSink, TraceEvent, TraceSink};
///
/// let mut ring = RingSink::new(2);
/// ring.record(TraceEvent::Stall { cycle: 0, dpgs: 1 });
/// ring.record(TraceEvent::Stall { cycle: 1, dpgs: 2 });
/// ring.record(TraceEvent::Stall { cycle: 2, dpgs: 3 });
/// let cycles: Vec<u64> = ring.events().iter().map(|e| e.cycle()).collect();
/// assert_eq!(cycles, [1, 2]);
/// assert_eq!(ring.overwritten(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct RingSink {
    capacity: usize,
    buf: Vec<TraceEvent>,
    /// Index of the oldest event once the buffer has wrapped.
    next: usize,
    overwritten: u64,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingSink { capacity, buf: Vec::new(), next: 0, overwritten: 0 }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events dropped to make room (total recorded = `len + overwritten`).
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Total events ever recorded into this ring.
    pub fn recorded(&self) -> u64 {
        self.buf.len() as u64 + self.overwritten
    }

    /// The retained events in chronological (recording) order.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.next..]);
        out.extend_from_slice(&self.buf[..self.next]);
        out
    }

    /// Drops all retained events and resets the overwrite counter.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.next = 0;
        self.overwritten = 0;
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.next] = ev;
            self.next = (self.next + 1) % self.capacity;
            self.overwritten += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stall(cycle: u64) -> TraceEvent {
        TraceEvent::Stall { cycle, dpgs: 1 }
    }

    #[test]
    fn fills_then_wraps() {
        let mut r = RingSink::new(3);
        assert!(r.is_empty());
        for c in 0..3 {
            r.record(stall(c));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.overwritten(), 0);
        let cycles: Vec<u64> = r.events().iter().map(|e| e.cycle()).collect();
        assert_eq!(cycles, [0, 1, 2]);

        r.record(stall(3)); // overwrites cycle 0
        let cycles: Vec<u64> = r.events().iter().map(|e| e.cycle()).collect();
        assert_eq!(cycles, [1, 2, 3]);
        assert_eq!(r.overwritten(), 1);
        assert_eq!(r.recorded(), 4);
    }

    #[test]
    fn wraparound_is_stable_over_many_generations() {
        let mut r = RingSink::new(4);
        for c in 0..103 {
            r.record(stall(c));
        }
        let cycles: Vec<u64> = r.events().iter().map(|e| e.cycle()).collect();
        assert_eq!(cycles, [99, 100, 101, 102]);
        assert_eq!(r.overwritten(), 99);
        assert_eq!(r.recorded(), 103);
        assert_eq!(r.len(), r.capacity());
    }

    #[test]
    fn capacity_one_keeps_only_latest() {
        let mut r = RingSink::new(1);
        for c in 0..10 {
            r.record(stall(c));
        }
        let evs = r.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].cycle(), 9);
        assert_eq!(r.overwritten(), 9);
    }

    #[test]
    fn clear_resets_everything() {
        let mut r = RingSink::new(2);
        r.record(stall(0));
        r.record(stall(1));
        r.record(stall(2));
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.overwritten(), 0);
        assert_eq!(r.recorded(), 0);
        r.record(stall(7));
        assert_eq!(r.events()[0].cycle(), 7);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        RingSink::new(0);
    }

    #[test]
    fn sink_is_enabled() {
        assert!(RingSink::new(1).enabled());
    }
}
