//! Observability for the Uni-STC reproduction: pipeline tracing, a metrics
//! registry, and Chrome-trace export.
//!
//! The paper's whole evaluation is cycle-level performance comparison
//! (Figs. 17–22, Tables VIII–IX), and the ROADMAP's north star — "as fast
//! as the hardware allows" — needs a way to see *where* a kernel spends its
//! cycles before any optimisation can prove itself. This crate provides the
//! plumbing, with zero external dependencies:
//!
//! * [`TraceEvent`] — the timestamped event vocabulary instrumented
//!   components emit: T1 task issue/retire (driver), TMS task generation,
//!   DPG expansion and power-gate transitions, SDPU segment packing and
//!   per-cycle Tile/Dot queue occupancy (pipeline).
//! * [`TraceSink`] — the consumer trait. [`NoopSink`] is the zero-overhead
//!   disabled path (`enabled()` is `false`, so instrumentation points skip
//!   event construction entirely); [`RingSink`] is a bounded ring buffer
//!   that keeps the most recent events and counts what it overwrote.
//! * [`chrome`] — a Chrome-trace-event JSON exporter: any traced kernel run
//!   opens in Perfetto or `chrome://tracing`.
//! * [`MetricsRegistry`] — counters, gauges, fixed-bucket histograms and
//!   wall-clock spans, exportable as JSON.
//! * [`json`] — the minimal JSON value model, writer and parser the
//!   exporters and the perf-regression runner share.
//!
//! Tracing is strictly observational: a run with [`NoopSink`] is
//! bit-identical (cycles, `EventCounts`, numeric results) to the same run
//! through the untraced entry points — the repo's observability tests pin
//! this.
//!
//! # Example
//!
//! ```
//! use obs::{RingSink, TraceEvent, TraceSink};
//!
//! let mut ring = RingSink::new(4);
//! for c in 0..6 {
//!     ring.record(TraceEvent::QueueDepth { cycle: c, tile: 1, dot: 2 });
//! }
//! assert_eq!(ring.len(), 4);        // bounded
//! assert_eq!(ring.overwritten(), 2); // oldest two dropped
//! assert_eq!(ring.events()[0].cycle(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
mod event;
pub mod json;
mod metrics;
mod ring;

pub use event::TraceEvent;
pub use metrics::{Histogram, MetricsRegistry, SpanStats, WallSpan};
pub use ring::RingSink;

/// A consumer of [`TraceEvent`]s.
///
/// Instrumentation points call [`TraceSink::enabled`] before building an
/// event whose construction costs anything (a queue-depth sum, a product
/// count), so the disabled path stays zero-overhead.
pub trait TraceSink {
    /// Records one event.
    fn record(&mut self, ev: TraceEvent);

    /// Whether this sink wants events at all. Instrumentation may skip
    /// event construction entirely when this is `false`.
    fn enabled(&self) -> bool {
        true
    }
}

/// The zero-overhead disabled sink: drops everything, reports
/// `enabled() == false` so instrumentation points skip event construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    #[inline(always)]
    fn record(&mut self, _ev: TraceEvent) {}

    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
}

/// Collecting sink: every event, unbounded, in order.
impl TraceSink for Vec<TraceEvent> {
    fn record(&mut self, ev: TraceEvent) {
        self.push(ev);
    }
}

/// A sink adaptor that shifts event timestamps by a base cycle.
///
/// Engines trace in task-local cycles (each T1 task starts at cycle 0);
/// the kernel driver wraps its sink in an `OffsetSink` at the task's
/// global start cycle so the merged stream forms one coherent timeline.
pub struct OffsetSink<'a> {
    inner: &'a mut dyn TraceSink,
    base: u64,
}

impl<'a> OffsetSink<'a> {
    /// Wraps `inner`, adding `base` to every recorded event's cycle.
    pub fn new(inner: &'a mut dyn TraceSink, base: u64) -> Self {
        OffsetSink { inner, base }
    }
}

impl TraceSink for OffsetSink<'_> {
    fn record(&mut self, ev: TraceEvent) {
        self.inner.record(ev.at_offset(self.base));
    }

    fn enabled(&self) -> bool {
        self.inner.enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_is_disabled() {
        let mut s = NoopSink;
        assert!(!s.enabled());
        s.record(TraceEvent::Stall { cycle: 0, dpgs: 1 }); // no-op
    }

    #[test]
    fn vec_sink_collects_in_order() {
        let mut v: Vec<TraceEvent> = Vec::new();
        v.record(TraceEvent::Stall { cycle: 3, dpgs: 1 });
        v.record(TraceEvent::Stall { cycle: 5, dpgs: 2 });
        assert!(v.enabled());
        assert_eq!(v.len(), 2);
        assert_eq!(v[1].cycle(), 5);
    }

    #[test]
    fn offset_sink_shifts_timestamps() {
        let mut v: Vec<TraceEvent> = Vec::new();
        {
            let mut off = OffsetSink::new(&mut v, 100);
            assert!(off.enabled());
            off.record(TraceEvent::QueueDepth { cycle: 7, tile: 1, dot: 2 });
        }
        assert_eq!(v[0].cycle(), 107);
    }

    #[test]
    fn offset_sink_propagates_enabled() {
        let mut noop = NoopSink;
        let off = OffsetSink::new(&mut noop, 10);
        assert!(!off.enabled());
    }
}
