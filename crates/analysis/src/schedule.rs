//! Deterministic schedule exploration: a loom-style, zero-dependency
//! model checker for the pool's queue/steal/retry/degrade state machine.
//!
//! The runtime's determinism claim is *schedule-independence*: whatever
//! order workers pop, steal, crash and retry, the merged result is the
//! serial result and every task runs exactly once. Fixed-seed chaos
//! tests sample a few real schedules; this module instead **enumerates**
//! them. [`explore`] runs a miniature replica of
//! [`runtime::pool`]'s semantics — per-worker deques with round-robin
//! initial distribution, a shared injector queue, steal-from-the-back,
//! bounded retry, crash/stall/flake transitions drawn from the real
//! [`runtime::ChaosPlan`], and quorum-loss serial draining — through
//! every interleaving of worker turns (depth-first, budget-bounded), and
//! checks at every terminal state that
//!
//! * every task completed **exactly once** (nothing lost, nothing
//!   double-executed), and
//! * the merged counter signature equals the serial reference.
//!
//! Any violation is a `USTC019` diagnostic carrying the exact schedule
//! witness, so a failure is replayable by eye. [`ModelBug`] injects the
//! classic scheduler defects (dropping a stolen task, re-enqueueing a
//! completed one, order-dependent merging) to prove the explorer catches
//! them — the same caught-defect discipline the conformance harness uses.
//!
//! The model is intentionally *coarser* than the real pool (one atomic
//! acquire-execute step per turn, no wall-clock watchdog — a stall is
//! modelled as the watchdog's reassignment) but preserves the properties
//! being verified: work conservation and order-independent merging.

use std::collections::VecDeque;

use runtime::ChaosPlan;
use sparse::rng::Rng64;

use crate::diag::{Code, Diagnostic, Report, Span};

/// A scheduler defect to inject into the model, for caught-defect tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelBug {
    /// No injected defect: the faithful model.
    None,
    /// A stolen attempt vanishes instead of executing — the classic
    /// lost-update race on a work-stealing deque. Some schedule loses a
    /// task.
    DropStolenTask,
    /// A completed task is re-enqueued once more — double execution.
    DoubleExecute,
    /// The merge is a function of completion *order* (a hash chain
    /// instead of a sum) — schedules diverge in their merged signature.
    OrderDependentMerge,
}

/// One miniature scenario for the explorer.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Worker count (keep at 2–3: interleavings grow factorially).
    pub workers: usize,
    /// Task count (keep at 3–6).
    pub tasks: usize,
    /// Chaos draws past this attempt number are suppressed, exactly like
    /// the pool's bounded infrastructure budget: progress is guaranteed.
    pub max_retries: u32,
    /// Minimum live workers; below it the supervisor drains serially.
    pub quorum: usize,
    /// Crash/stall/flake injection, drawn per `(task, attempt)` from the
    /// real runtime plan.
    pub chaos: ChaosPlan,
    /// The injected defect ([`ModelBug::None`] for the faithful model).
    pub bug: ModelBug,
}

impl ModelConfig {
    /// A chaos-free scenario with `workers` workers and `tasks` tasks.
    pub fn clean(workers: usize, tasks: usize) -> Self {
        ModelConfig {
            workers: workers.max(1),
            tasks,
            max_retries: 2,
            quorum: 1,
            chaos: ChaosPlan::none(0),
            bug: ModelBug::None,
        }
    }

    /// [`ModelConfig::clean`] plus a chaos plan.
    pub fn with_chaos(mut self, chaos: ChaosPlan) -> Self {
        self.chaos = chaos;
        self
    }

    /// [`ModelConfig::clean`] plus an injected defect.
    pub fn with_bug(mut self, bug: ModelBug) -> Self {
        self.bug = bug;
        self
    }
}

/// One queued unit of work: a task and its attempt number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Attempt {
    task: usize,
    attempt: u32,
}

/// One transition of the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Move {
    /// Worker `w` takes a turn: acquire one attempt (own front →
    /// injector → steal back) and execute it through the chaos draws.
    Step(usize),
    /// The supervisor notices quorum loss and drains everything serially.
    Degrade,
}

impl std::fmt::Display for Move {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Move::Step(w) => write!(f, "w{w}"),
            Move::Degrade => write!(f, "degrade"),
        }
    }
}

/// The model state between transitions. Small and `Clone` on purpose:
/// the explorer forks it at every branch point.
#[derive(Debug, Clone, PartialEq, Eq)]
struct State {
    queues: Vec<VecDeque<Attempt>>,
    injector: VecDeque<Attempt>,
    live: Vec<bool>,
    /// Completions per task (the invariant demands exactly 1 each).
    done: Vec<u32>,
    /// Order-independent merge: wrapping sum of task contributions.
    merged: u64,
    /// Order-dependent hash chain of completions (what
    /// [`ModelBug::OrderDependentMerge`] reports instead).
    order_hash: u64,
    degraded: bool,
}

/// The deterministic per-task contribution the merge accumulates — the
/// model's stand-in for a shard's counter deltas.
fn contrib(task: usize) -> u64 {
    Rng64::new(task as u64).next_u64()
}

impl State {
    /// Round-robin initial distribution, exactly like the pool: task `i`
    /// starts on worker `i % workers`.
    fn initial(cfg: &ModelConfig) -> State {
        let mut queues = vec![VecDeque::new(); cfg.workers];
        for task in 0..cfg.tasks {
            queues[task % cfg.workers].push_back(Attempt { task, attempt: 0 });
        }
        State {
            queues,
            injector: VecDeque::new(),
            live: vec![true; cfg.workers],
            done: vec![0; cfg.tasks],
            merged: 0,
            order_hash: 0,
            degraded: false,
        }
    }

    fn live_count(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }

    fn work_remaining(&self) -> bool {
        !self.injector.is_empty() || self.queues.iter().any(|q| !q.is_empty())
    }

    /// Whether worker `w` could acquire an attempt this turn.
    fn can_acquire(&self, w: usize) -> bool {
        self.live[w] && self.work_remaining()
    }

    /// Records a completion.
    fn complete(&mut self, task: usize) {
        self.done[task] += 1;
        self.merged = self.merged.wrapping_add(contrib(task));
        self.order_hash = self.order_hash.rotate_left(7) ^ contrib(task);
    }

    /// The merged signature this schedule reports.
    fn signature(&self, bug: ModelBug) -> u64 {
        if bug == ModelBug::OrderDependentMerge {
            self.order_hash
        } else {
            self.merged
        }
    }
}

/// Every transition enabled in `st`, in deterministic order.
fn enabled_moves(cfg: &ModelConfig, st: &State) -> Vec<Move> {
    let mut moves = Vec::new();
    for w in 0..cfg.workers {
        if st.can_acquire(w) {
            moves.push(Move::Step(w));
        }
    }
    if !st.degraded && st.live_count() < cfg.quorum && st.work_remaining() {
        moves.push(Move::Degrade);
    }
    moves
}

/// Applies one transition. Mirrors the pool's acquire order (own queue
/// front, then injector, then steal another queue's back) and its
/// supervisor reactions (crash → worker lost + requeue; stall → watchdog
/// reassignment; flake → retry; budget exhausted → execute chaos-free).
fn apply(cfg: &ModelConfig, st: &mut State, mv: Move) {
    match mv {
        Move::Degrade => {
            st.degraded = true;
            // The supervisor drains everything inline, chaos-free.
            let mut pending: Vec<Attempt> = Vec::new();
            pending.extend(st.injector.drain(..));
            for q in &mut st.queues {
                pending.extend(q.drain(..));
            }
            pending.sort_by_key(|a| a.task);
            for a in pending {
                st.complete(a.task);
            }
        }
        Move::Step(w) => {
            let (att, stolen) = if let Some(a) = st.queues[w].pop_front() {
                (a, false)
            } else if let Some(a) = st.injector.pop_front() {
                (a, false)
            } else {
                // Steal scan order mirrors the pool: (w+1), (w+2), ...
                let mut found = None;
                for off in 1..cfg.workers {
                    let v = (w + off) % cfg.workers;
                    if let Some(a) = st.queues[v].pop_back() {
                        found = Some(a);
                        break;
                    }
                }
                match found {
                    Some(a) => (a, true),
                    None => return, // raced to empty; nothing to do
                }
            };
            if stolen && cfg.bug == ModelBug::DropStolenTask {
                // The injected defect: the stolen attempt evaporates.
                return;
            }
            let t = att.task as u64;
            if att.attempt <= cfg.max_retries {
                if cfg.chaos.crashes(t, att.attempt) {
                    st.live[w] = false;
                    st.injector.push_back(Attempt { task: att.task, attempt: att.attempt + 1 });
                    return;
                }
                if cfg.chaos.stalls(t, att.attempt) || cfg.chaos.flakes(t, att.attempt) {
                    // Watchdog reassignment / transient failure: requeue
                    // with a fresh attempt number.
                    st.injector.push_back(Attempt { task: att.task, attempt: att.attempt + 1 });
                    return;
                }
            }
            st.complete(att.task);
            // The injected defect: re-enqueue the completed task once.
            // The duplicate carries an out-of-budget attempt number so it
            // executes chaos-free and is never itself duplicated.
            if cfg.bug == ModelBug::DoubleExecute && att.attempt <= cfg.max_retries {
                st.queues[w].push_back(Attempt {
                    task: att.task,
                    attempt: cfg.max_retries + 1,
                });
            }
        }
    }
}

/// One invariant violation at a terminal state, with its schedule
/// witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A task never executed.
    LostTask {
        /// The task that was lost.
        task: usize,
        /// The schedule that lost it (rendered moves).
        witness: String,
    },
    /// A task executed more than once.
    DoubleExecuted {
        /// The repeated task.
        task: usize,
        /// How many times it completed.
        count: u32,
        /// The schedule that repeated it.
        witness: String,
    },
    /// The merged signature differs from the serial reference.
    DivergentSignature {
        /// The schedule's merged signature.
        got: u64,
        /// The serial reference signature.
        expected: u64,
        /// The diverging schedule.
        witness: String,
    },
}

/// What [`explore`] found.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Complete schedules (distinct interleavings) reached.
    pub schedules: u64,
    /// Whether the budget cut exploration short.
    pub truncated: bool,
    /// Every distinct merged signature observed, sorted.
    pub signatures: Vec<u64>,
    /// The first violations found (capped at [`MAX_VIOLATIONS`]), in
    /// discovery order.
    pub violations: Vec<Violation>,
    /// Total violating schedules (may exceed `violations.len()`).
    pub violating_schedules: u64,
}

/// Cap on recorded violations; beyond it only the count grows.
pub const MAX_VIOLATIONS: usize = 8;

impl Exploration {
    /// Whether every explored schedule upheld both invariants.
    pub fn is_clean(&self) -> bool {
        self.violating_schedules == 0 && self.signatures.len() <= 1
    }

    /// Renders the findings as `USTC019` diagnostics (empty when clean).
    pub fn report(&self) -> Report {
        let mut report = Report::new();
        for v in &self.violations {
            let (span, message) = match v {
                Violation::LostTask { task, witness } => (
                    Span { task: Some(*task), ..Span::default() },
                    format!("schedule [{witness}] never executes task {task}"),
                ),
                Violation::DoubleExecuted { task, count, witness } => (
                    Span { task: Some(*task), ..Span::default() },
                    format!("schedule [{witness}] executes task {task} {count} times"),
                ),
                Violation::DivergentSignature { got, expected, witness } => (
                    Span::none(),
                    format!(
                        "schedule [{witness}] merges to signature {got:#018x}, \
                         serial reference is {expected:#018x}"
                    ),
                ),
            };
            report.push(Diagnostic::new(Code::ScheduleDivergence, span, message));
        }
        report
    }
}

struct Explorer<'a> {
    cfg: &'a ModelConfig,
    budget: u64,
    depth_limit: usize,
    expected: u64,
    out: Exploration,
}

impl Explorer<'_> {
    fn finish(&mut self, st: &State, path: &[Move]) {
        self.out.schedules += 1;
        let sig = st.signature(self.cfg.bug);
        if let Err(pos) = self.out.signatures.binary_search(&sig) {
            self.out.signatures.insert(pos, sig);
        }
        let witness = || {
            let parts: Vec<String> = path.iter().map(Move::to_string).collect();
            parts.join(",")
        };
        let mut violated = false;
        for (task, &count) in st.done.iter().enumerate() {
            if count == 1 {
                continue;
            }
            violated = true;
            if self.out.violations.len() < MAX_VIOLATIONS {
                self.out.violations.push(if count == 0 {
                    Violation::LostTask { task, witness: witness() }
                } else {
                    Violation::DoubleExecuted { task, count, witness: witness() }
                });
            }
        }
        if sig != self.expected {
            violated = true;
            if self.out.violations.len() < MAX_VIOLATIONS {
                self.out.violations.push(Violation::DivergentSignature {
                    got: sig,
                    expected: self.expected,
                    witness: witness(),
                });
            }
        }
        if violated {
            self.out.violating_schedules += 1;
        }
    }

    fn dfs(&mut self, st: &State, path: &mut Vec<Move>) {
        if self.out.schedules >= self.budget {
            self.out.truncated = true;
            return;
        }
        if path.len() >= self.depth_limit {
            // A transition sequence longer than any legal drain means the
            // model (or an injected bug) is not making progress; cut the
            // branch instead of recursing without bound.
            self.out.truncated = true;
            return;
        }
        let moves = enabled_moves(self.cfg, st);
        if moves.is_empty() {
            self.finish(st, path);
            return;
        }
        for mv in moves {
            let mut next = st.clone();
            apply(self.cfg, &mut next, mv);
            path.push(mv);
            self.dfs(&next, path);
            path.pop();
        }
    }
}

/// Explores every schedule of `cfg`'s state machine, depth-first, up to
/// `budget` complete schedules. The serial reference signature is the
/// order-independent sum over all tasks — exactly what a single-threaded
/// drain produces.
pub fn explore(cfg: &ModelConfig, budget: u64) -> Exploration {
    let mut expected = 0u64;
    for task in 0..cfg.tasks {
        expected = expected.wrapping_add(contrib(task));
    }
    // Any legal drain finishes within one transition per (task, attempt)
    // pair plus one duplicate each and the degrade step; double it for
    // slack before declaring a branch non-terminating.
    let depth_limit = 2 * (cfg.tasks + 1) * (cfg.max_retries as usize + 3) + cfg.workers + 4;
    let mut explorer = Explorer {
        cfg,
        budget: budget.max(1),
        depth_limit,
        expected,
        out: Exploration {
            schedules: 0,
            truncated: false,
            signatures: Vec::new(),
            violations: Vec::new(),
            violating_schedules: 0,
        },
    };
    let st = State::initial(cfg);
    let mut path = Vec::new();
    explorer.dfs(&st, &mut path);
    explorer.out
}

/// The fixed-seed scenario suite CI explores: clean and chaotic
/// miniatures of the pool, each bounded by a schedule budget. Together
/// they cover well over 1000 distinct interleavings.
pub fn default_suite() -> Vec<(&'static str, ModelConfig, u64)> {
    let crashy = match ChaosPlan::new(11, 0.3, 0.0, 0.2, 0) {
        Ok(plan) => plan,
        Err(_) => ChaosPlan::none(11),
    };
    let flaky = match ChaosPlan::new(23, 0.0, 0.25, 0.25, 0) {
        Ok(plan) => plan,
        Err(_) => ChaosPlan::none(23),
    };
    vec![
        ("2w4t-clean", ModelConfig::clean(2, 4), 20_000),
        ("3w4t-clean", ModelConfig::clean(3, 4), 20_000),
        ("3w6t-clean", ModelConfig::clean(3, 6), 20_000),
        ("2w5t-crashy", ModelConfig::clean(2, 5).with_chaos(crashy), 20_000),
        ("3w3t-flaky", ModelConfig::clean(3, 3).with_chaos(flaky), 20_000),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_workers_two_tasks_explore_exhaustively() {
        let e = explore(&ModelConfig::clean(2, 2), 1_000);
        assert!(!e.truncated);
        assert!(e.schedules >= 2, "at least two interleavings, got {}", e.schedules);
        assert!(e.is_clean(), "{:?}", e.violations);
        assert_eq!(e.signatures.len(), 1);
    }

    #[test]
    fn faithful_model_is_schedule_independent_under_chaos() {
        for (name, cfg, budget) in default_suite() {
            let e = explore(&cfg, budget);
            assert!(e.is_clean(), "{name}: {:?}", e.violations);
            assert!(e.report().is_clean());
            assert!(e.schedules > 0, "{name} explored nothing");
        }
    }

    #[test]
    fn suite_covers_a_thousand_interleavings() {
        let total: u64 = default_suite()
            .into_iter()
            .map(|(_, cfg, budget)| explore(&cfg, budget).schedules)
            .sum();
        assert!(total >= 1_000, "only {total} interleavings explored");
    }

    #[test]
    fn dropped_steal_loses_a_task() {
        let e = explore(&ModelConfig::clean(2, 3).with_bug(ModelBug::DropStolenTask), 50_000);
        assert!(!e.is_clean(), "the lost-task defect must be caught");
        assert!(e
            .violations
            .iter()
            .any(|v| matches!(v, Violation::LostTask { .. })), "{:?}", e.violations);
        let r = e.report();
        assert!(r.has_code(Code::ScheduleDivergence));
    }

    #[test]
    fn double_execution_is_caught() {
        let e = explore(&ModelConfig::clean(2, 2).with_bug(ModelBug::DoubleExecute), 50_000);
        assert!(e
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DoubleExecuted { .. })), "{:?}", e.violations);
    }

    #[test]
    fn order_dependent_merge_diverges() {
        let e = explore(&ModelConfig::clean(2, 3).with_bug(ModelBug::OrderDependentMerge), 50_000);
        assert!(e
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DivergentSignature { .. })), "{:?}", e.violations);
    }

    #[test]
    fn quorum_loss_degrades_and_still_completes_every_task() {
        // Crash-heavy chaos with a quorum of 2 on 2 workers: one crash
        // forces the Degrade transition into the enabled set.
        let chaos = ChaosPlan::new(7, 0.6, 0.0, 0.0, 0).unwrap_or(ChaosPlan::none(7));
        let cfg = ModelConfig {
            quorum: 2,
            ..ModelConfig::clean(2, 3).with_chaos(chaos)
        };
        let e = explore(&cfg, 50_000);
        assert!(e.is_clean(), "{:?}", e.violations);
        assert!(e.schedules > 0);
    }

    #[test]
    fn exploration_is_deterministic() {
        let cfg = ModelConfig::clean(3, 4);
        let a = explore(&cfg, 5_000);
        let b = explore(&cfg, 5_000);
        assert_eq!(a.schedules, b.schedules);
        assert_eq!(a.signatures, b.signatures);
    }
}
