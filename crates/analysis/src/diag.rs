//! The diagnostics engine: stable `USTC` codes, severities, spans into
//! program listings, and human / JSON renderers.
//!
//! Every invariant the static verifier proves has one stable code, so test
//! suites, CI gates and downstream tooling can match on `USTC007` rather
//! than on message text. Codes are append-only: a code is never renumbered
//! or reused once it has shipped in a golden snapshot.

use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but executable: the hardware would run the stream,
    /// possibly at degraded fidelity (e.g. a clamped cycle cost).
    Warning,
    /// The stream is illegal: executing it would fault the lifecycle state
    /// machine, overflow a queue, or feed a unit an impossible operand.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The stable diagnostic codes of the static verifier.
///
/// The full table lives in DESIGN.md §9; the variant doc comments here are
/// the normative one-line summaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Code {
    /// `USTC001` — `stc.numeric.*` issued with no task batch in flight
    /// (the lifecycle state machine is IDLE).
    NumericWithoutBatch,
    /// `USTC002` — `stc.task_gen.*` issued while a previous batch is still
    /// in flight (BUSY/READY).
    OverlappingTaskGen,
    /// `USTC003` — instruction cost outside its Table V cycle range (the
    /// hardware clamps, so the stream's cost model is lying).
    CostOutOfRange,
    /// `USTC004` — a generated task batch is never consumed by a
    /// `stc.numeric.*` (dead task generation at stream end).
    UnconsumedBatch,
    /// `USTC005` — MV/MM kind mismatch between `stc.task_gen.*` and the
    /// `stc.numeric.*` that consumes its batch.
    KindMismatch,
    /// `USTC006` — a T4 segment length outside `1..=4` lanes; the SDPU
    /// lane allocator would reject (panic on) it.
    SegmentTooLong,
    /// `USTC007` — Tile-queue occupancy above the 64 T3 tasks one T1 task
    /// can legally produce (4x4x4 outer-product grid).
    TileQueueOverflow,
    /// `USTC008` — Dot-product-queue occupancy above the 16 T4 codes one
    /// T3 task can legally produce (4x4 output tile).
    DotQueueOverflow,
    /// `USTC009` — TMS write conflict: two T3 tasks in the same issue
    /// window target the same output tile.
    WriteConflict,
    /// `USTC010` — a T3 task routed to a DPG slot outside the configured
    /// `n_dpg` array.
    DpgRouteOutOfRange,
    /// `USTC011` — a T3 task routed to a DPG the power-gating look-ahead
    /// has gated off for its issue window.
    GatedDpgRoute,
    /// `USTC012` — BBC metadata fails deep structural validation
    /// (bitmap/ValPtr popcount cross-checks).
    CorruptMetadata,
    /// `USTC013` — an instruction stream disagrees with the stream the
    /// verifier recompiles from the operand metadata.
    CostMismatch,
    /// `USTC014` — two shards of a `runtime::kernels` shard plan claim
    /// the same T1 task: executing the plan double-counts the task in
    /// every merged counter.
    ShardOverlap,
    /// `USTC015` — a T1 task is claimed by no shard: executing the plan
    /// silently drops the task from the merged report.
    ShardGap,
    /// `USTC016` — a shard is malformed: empty, out of the stream's
    /// range, or planned for a different stream length.
    ShardMalformed,
    /// `USTC017` — the per-shard report fold is not commutative: folding
    /// the same shard reports in a different order changes the merged
    /// counters, so the parallel schedule leaks into the result.
    NonCommutativeFold,
    /// `USTC018` — the fold accumulates energy per shard instead of
    /// leaving it to be recomputed exactly once from the merged events.
    EnergyRefold,
    /// `USTC019` — schedule divergence: an explored pool schedule lost a
    /// task, executed one twice, or produced a merged counter signature
    /// different from the serial reference.
    ScheduleDivergence,
}

impl Code {
    /// Every code, in numeric order (for docs and exhaustiveness tests).
    pub const ALL: [Code; 19] = [
        Code::NumericWithoutBatch,
        Code::OverlappingTaskGen,
        Code::CostOutOfRange,
        Code::UnconsumedBatch,
        Code::KindMismatch,
        Code::SegmentTooLong,
        Code::TileQueueOverflow,
        Code::DotQueueOverflow,
        Code::WriteConflict,
        Code::DpgRouteOutOfRange,
        Code::GatedDpgRoute,
        Code::CorruptMetadata,
        Code::CostMismatch,
        Code::ShardOverlap,
        Code::ShardGap,
        Code::ShardMalformed,
        Code::NonCommutativeFold,
        Code::EnergyRefold,
        Code::ScheduleDivergence,
    ];

    /// The stable code string, e.g. `"USTC007"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::NumericWithoutBatch => "USTC001",
            Code::OverlappingTaskGen => "USTC002",
            Code::CostOutOfRange => "USTC003",
            Code::UnconsumedBatch => "USTC004",
            Code::KindMismatch => "USTC005",
            Code::SegmentTooLong => "USTC006",
            Code::TileQueueOverflow => "USTC007",
            Code::DotQueueOverflow => "USTC008",
            Code::WriteConflict => "USTC009",
            Code::DpgRouteOutOfRange => "USTC010",
            Code::GatedDpgRoute => "USTC011",
            Code::CorruptMetadata => "USTC012",
            Code::CostMismatch => "USTC013",
            Code::ShardOverlap => "USTC014",
            Code::ShardGap => "USTC015",
            Code::ShardMalformed => "USTC016",
            Code::NonCommutativeFold => "USTC017",
            Code::EnergyRefold => "USTC018",
            Code::ScheduleDivergence => "USTC019",
        }
    }

    /// The code's fixed severity.
    pub fn severity(self) -> Severity {
        match self {
            Code::CostOutOfRange
            | Code::UnconsumedBatch
            | Code::WriteConflict
            | Code::CostMismatch => Severity::Warning,
            Code::NumericWithoutBatch
            | Code::OverlappingTaskGen
            | Code::KindMismatch
            | Code::SegmentTooLong
            | Code::TileQueueOverflow
            | Code::DotQueueOverflow
            | Code::DpgRouteOutOfRange
            | Code::GatedDpgRoute
            | Code::CorruptMetadata
            | Code::ShardOverlap
            | Code::ShardGap
            | Code::ShardMalformed
            | Code::NonCommutativeFold
            | Code::EnergyRefold
            | Code::ScheduleDivergence => Severity::Error,
        }
    }

    /// One-line normative summary (the DESIGN.md table entry).
    pub fn summary(self) -> &'static str {
        match self {
            Code::NumericWithoutBatch => "numeric issued with no task batch in flight",
            Code::OverlappingTaskGen => "task_gen issued while a batch is in flight",
            Code::CostOutOfRange => "instruction cost outside its Table V cycle range",
            Code::UnconsumedBatch => "generated task batch never consumed",
            Code::KindMismatch => "mv/mm kind mismatch between task_gen and numeric",
            Code::SegmentTooLong => "T4 segment length outside 1..=4 lanes",
            Code::TileQueueOverflow => "Tile-queue occupancy above 64 T3 tasks",
            Code::DotQueueOverflow => "Dot-product-queue occupancy above 16 T4 codes",
            Code::WriteConflict => "write conflict inside one issue window",
            Code::DpgRouteOutOfRange => "T3 task routed outside the DPG array",
            Code::GatedDpgRoute => "T3 task routed to a power-gated DPG",
            Code::CorruptMetadata => "BBC metadata fails structural validation",
            Code::CostMismatch => "stream disagrees with metadata-derived recompilation",
            Code::ShardOverlap => "two shards claim the same T1 task",
            Code::ShardGap => "a T1 task is claimed by no shard",
            Code::ShardMalformed => "shard empty, out of range, or planned for the wrong stream",
            Code::NonCommutativeFold => "shard-report fold is order-dependent",
            Code::EnergyRefold => "fold accumulates energy instead of recomputing it once",
            Code::ScheduleDivergence => "a pool schedule loses, repeats, or re-merges a task",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where in the verified artifact a diagnostic points.
///
/// All components are optional: a lifecycle finding carries a warp and an
/// instruction index (resolvable against [`Program::listing`]); a model
/// finding carries a T1 (block) index and a task index within it.
///
/// [`Program::listing`]: uni_stc::isa::Program::listing
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Warp index within a [`CompiledKernel`](uni_stc::compiler::CompiledKernel).
    pub warp: Option<usize>,
    /// Instruction index within the warp's program listing.
    pub instr: Option<usize>,
    /// T1 node index (for matrix-derived models, the BBC block index).
    pub block: Option<usize>,
    /// T3 task index within the T1 node.
    pub task: Option<usize>,
}

impl Span {
    /// A span with no location (whole-artifact findings).
    pub fn none() -> Self {
        Span::default()
    }

    /// A span pointing at one instruction of one warp's listing.
    pub fn at_instr(warp: usize, instr: usize) -> Self {
        Span { warp: Some(warp), instr: Some(instr), ..Span::default() }
    }

    /// A span pointing at one T3 task of one T1 node.
    pub fn at_task(block: usize, task: usize) -> Self {
        Span { block: Some(block), task: Some(task), ..Span::default() }
    }

    /// A span pointing at a whole T1 node.
    pub fn at_block(block: usize) -> Self {
        Span { block: Some(block), ..Span::default() }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        if let Some(w) = self.warp {
            parts.push(format!("warp {w}"));
        }
        if let Some(i) = self.instr {
            parts.push(format!("instr {i}"));
        }
        if let Some(b) = self.block {
            parts.push(format!("t1 {b}"));
        }
        if let Some(t) = self.task {
            parts.push(format!("t3 {t}"));
        }
        if parts.is_empty() {
            write!(f, "<stream>")
        } else {
            f.write_str(&parts.join(", "))
        }
    }
}

/// One verifier finding: a code, a location and a specific message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: Code,
    /// Where it points.
    pub span: Span,
    /// The instance-specific message (values, indices, limits).
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic.
    pub fn new(code: Code, span: Span, message: impl Into<String>) -> Self {
        Diagnostic { code, span, message: message.into() }
    }

    /// The code's severity.
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {} ({})",
            self.severity(),
            self.code,
            self.message,
            self.span
        )
    }
}

/// An ordered collection of diagnostics from one verification run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    diags: Vec<Diagnostic>,
}

impl Report {
    /// An empty (clean) report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Appends a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    /// Appends every finding of another report.
    pub fn merge(&mut self, other: Report) {
        self.diags.extend(other.diags);
    }

    /// All findings, in emission order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Whether the run produced no findings at all.
    pub fn is_clean(&self) -> bool {
        self.diags.is_empty()
    }

    /// Whether any finding is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.diags.iter().any(|d| d.severity() == Severity::Error)
    }

    /// The first error-severity finding, if any (what a driver reports when
    /// it refuses to simulate a stream).
    pub fn first_error(&self) -> Option<&Diagnostic> {
        self.diags.iter().find(|d| d.severity() == Severity::Error)
    }

    /// Whether any finding carries `code`.
    pub fn has_code(&self, code: Code) -> bool {
        self.diags.iter().any(|d| d.code == code)
    }

    /// Human-readable rendering: one line per finding plus a summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diags {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        let errors = self.diags.iter().filter(|d| d.severity() == Severity::Error).count();
        let warnings = self.diags.len() - errors;
        out.push_str(&format!("{errors} error(s), {warnings} warning(s)\n"));
        out
    }

    /// JSON rendering (an array of finding objects), hand-rolled so the
    /// workspace stays dependency-free.
    pub fn render_json(&self) -> String {
        let mut out = String::from("[");
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"code\":\"");
            out.push_str(d.code.as_str());
            out.push_str("\",\"severity\":\"");
            out.push_str(&d.severity().to_string());
            out.push_str("\",\"span\":\"");
            out.push_str(&json_escape(&d.span.to_string()));
            out.push_str("\",\"message\":\"");
            out.push_str(&json_escape(&d.message));
            out.push_str("\"}");
        }
        out.push(']');
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_dense() {
        for (i, code) in Code::ALL.iter().enumerate() {
            assert_eq!(code.as_str(), format!("USTC{:03}", i + 1));
            assert!(!code.summary().is_empty());
        }
    }

    #[test]
    fn severity_ordering_puts_errors_above_warnings() {
        assert!(Severity::Error > Severity::Warning);
        assert_eq!(Code::TileQueueOverflow.severity(), Severity::Error);
        assert_eq!(Code::WriteConflict.severity(), Severity::Warning);
    }

    #[test]
    fn span_renders_all_components() {
        assert_eq!(Span::none().to_string(), "<stream>");
        assert_eq!(Span::at_instr(2, 7).to_string(), "warp 2, instr 7");
        assert_eq!(Span::at_task(3, 5).to_string(), "t1 3, t3 5");
    }

    #[test]
    fn report_tracks_errors_and_codes() {
        let mut r = Report::new();
        assert!(r.is_clean());
        assert!(!r.has_errors());
        r.push(Diagnostic::new(Code::CostOutOfRange, Span::at_instr(0, 1), "cost 99"));
        assert!(!r.has_errors());
        r.push(Diagnostic::new(Code::NumericWithoutBatch, Span::at_instr(0, 2), "idle"));
        assert!(r.has_errors());
        assert!(r.has_code(Code::NumericWithoutBatch));
        assert!(!r.has_code(Code::CorruptMetadata));
        assert_eq!(r.first_error().map(|d| d.code), Some(Code::NumericWithoutBatch));
    }

    #[test]
    fn human_rendering_is_line_per_finding() {
        let mut r = Report::new();
        r.push(Diagnostic::new(Code::SegmentTooLong, Span::at_task(0, 0), "len 5"));
        let h = r.render_human();
        assert!(h.contains("error[USTC006]: len 5 (t1 0, t3 0)"));
        assert!(h.ends_with("1 error(s), 0 warning(s)\n"));
    }

    #[test]
    fn json_rendering_escapes_and_wraps() {
        let mut r = Report::new();
        r.push(Diagnostic::new(Code::CorruptMetadata, Span::none(), "bad \"quote\"\n"));
        let j = r.render_json();
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert!(j.contains("\\\"quote\\\"\\n"));
        assert!(j.contains("\"code\":\"USTC012\""));
        assert_eq!(Report::new().render_json(), "[]");
    }

    #[test]
    fn json_escape_controls() {
        assert_eq!(json_escape("a\u{1}b"), "a\\u0001b");
        assert_eq!(json_escape("t\tr\r"), "t\\tr\\r");
    }
}
