//! The stream model: the verifier's intermediate representation of one
//! kernel invocation.
//!
//! A [`StreamModel`] is the task hierarchy a kernel run *would* enqueue —
//! one [`T1Node`] per issued T1 task, each holding its TMS-ordered T3
//! tasks with an explicit DPG route — built without executing anything.
//! The constructors mirror the enumeration order of the `simkit::driver`
//! kernels exactly, so a model check is a static proof about the stream
//! the simulator will consume.
//!
//! Routing is built the way the hardware routes: T3 tasks issue in windows
//! of `n_dpg` consecutive queue entries; the power-gating look-ahead
//! ([`uni_stc::power::dpgs_required`]) picks the active DPG count per
//! window, and tasks round-robin over the active slots. Hand-crafted
//! models are free to carry any routing — that is what the verifier's
//! routing checks are for.

use simkit::driver::Kernel;
use simkit::Block16;
use sparse::{BbcMatrix, SparseVector};
use uni_stc::power::dpgs_required;
use uni_stc::tms::{generate_t3_tasks, T3Task};
use uni_stc::UniStcConfig;

/// Capacity of the TMS Tile queue in T3 tasks: one T1 task expands into at
/// most a full 4x4x4 outer-product grid.
pub const TILE_QUEUE_CAP: usize = 64;

/// Capacity of a DPG's Dot-product queue in T4 codes: one T3 task produces
/// at most one code per output position of the 4x4 tile C.
pub const DOT_QUEUE_CAP: usize = 16;

/// One T3 task together with the DPG slot it is routed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct T3Node {
    /// The tile-multiplication task.
    pub task: T3Task,
    /// DPG slot index (`0..n_dpg`) consuming this task.
    pub dpg: usize,
}

/// One issued T1 task and its TMS-ordered T3 expansion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct T1Node {
    /// BBC block index of operand A for matrix-derived models (spans).
    pub block: Option<usize>,
    /// The T3 tasks, in TMS issue order, with their DPG routes.
    pub t3: Vec<T3Node>,
}

/// The static model of one kernel invocation's task stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamModel {
    /// Which kernel the stream belongs to.
    pub kernel: Kernel,
    /// One node per issued (non-trivial) T1 task, in issue order.
    pub t1: Vec<T1Node>,
}

/// Active DPG count for one issue window of T3 tasks, as the TMS
/// look-ahead would gate it.
pub fn active_dpgs(cfg: &UniStcConfig, window: &[T3Task]) -> usize {
    if !cfg.power_gating {
        return cfg.n_dpg;
    }
    let products: Vec<u32> = window.iter().map(|t| t.products).collect();
    dpgs_required(cfg, &products).clamp(1, cfg.n_dpg)
}

/// Routes a TMS-ordered T3 task list onto DPG slots: windows of `n_dpg`
/// consecutive tasks, round-robin over the window's active DPGs.
pub fn route_tasks(cfg: &UniStcConfig, tasks: &[T3Task]) -> Vec<T3Node> {
    let mut out = Vec::with_capacity(tasks.len());
    for window in tasks.chunks(cfg.n_dpg.max(1)) {
        let active = active_dpgs(cfg, window);
        for (idx, &task) in window.iter().enumerate() {
            out.push(T3Node { task, dpg: idx % active });
        }
    }
    out
}

fn push_node(
    cfg: &UniStcConfig,
    t1: &mut Vec<T1Node>,
    block: Option<usize>,
    a: &Block16,
    b: &Block16,
) {
    let tasks = generate_t3_tasks(a, b, cfg.ordering);
    if tasks.is_empty() {
        return; // trivial T1 tasks never reach the engine
    }
    t1.push(T1Node { block, t3: route_tasks(cfg, &tasks) });
}

impl StreamModel {
    /// SpMV (`y = A x`, dense `x`): one T1 node per stored block of `A`.
    pub fn spmv(cfg: &UniStcConfig, a: &BbcMatrix) -> Self {
        let mut t1 = Vec::new();
        let x = Block16::from_vector_mask(u16::MAX);
        for bi in 0..a.block_count() {
            let bits = Block16::from_bbc(&a.block(bi));
            push_node(cfg, &mut t1, Some(bi), &bits, &x);
        }
        StreamModel { kernel: Kernel::SpMV, t1 }
    }

    /// SpMSpV: one T1 node per stored block whose 16-element `x` segment
    /// carries a nonzero.
    pub fn spmspv(cfg: &UniStcConfig, a: &BbcMatrix, x: &SparseVector) -> Self {
        let mut t1 = Vec::new();
        for bi in 0..a.block_count() {
            let blk = a.block(bi);
            let mask = x.segment_mask16(blk.block_col);
            if mask == 0 {
                continue;
            }
            let bits = Block16::from_bbc(&blk);
            push_node(cfg, &mut t1, Some(bi), &bits, &Block16::from_vector_mask(mask));
        }
        StreamModel { kernel: Kernel::SpMSpV, t1 }
    }

    /// SpMM (`C = A B`, dense `B` with `n_cols` columns): `ceil(n_cols /
    /// 16)` T1 nodes per stored block of `A`.
    pub fn spmm(cfg: &UniStcConfig, a: &BbcMatrix, n_cols: usize) -> Self {
        let mut t1 = Vec::new();
        if n_cols == 0 {
            return StreamModel { kernel: Kernel::SpMM, t1 };
        }
        let col_blocks = n_cols.div_ceil(16);
        let tail = n_cols - (col_blocks - 1) * 16;
        for bi in 0..a.block_count() {
            let bits = Block16::from_bbc(&a.block(bi));
            for cb in 0..col_blocks {
                let width = if cb + 1 == col_blocks { tail } else { 16 };
                push_node(cfg, &mut t1, Some(bi), &bits, &Block16::dense().keep_cols(width));
            }
        }
        StreamModel { kernel: Kernel::SpMM, t1 }
    }

    /// SpGEMM (`C = A B`): the block-level outer-product walk of Algorithm
    /// 2; `block` spans carry the A-block index.
    ///
    /// # Panics
    ///
    /// Panics if the block grids do not conform.
    pub fn spgemm(cfg: &UniStcConfig, a: &BbcMatrix, b: &BbcMatrix) -> Self {
        assert_eq!(a.block_cols(), b.block_rows(), "SpGEMM block grids do not conform");
        let mut t1 = Vec::new();
        for bi in 0..a.block_rows() {
            for ai in a.blocks_in_row(bi) {
                let a_blk = a.block(ai);
                let a_bits = Block16::from_bbc(&a_blk);
                for bj in b.blocks_in_row(a_blk.block_col) {
                    let b_bits = Block16::from_bbc(&b.block(bj));
                    push_node(cfg, &mut t1, Some(ai), &a_bits, &b_bits);
                }
            }
        }
        StreamModel { kernel: Kernel::SpGEMM, t1 }
    }

    /// Total T3 tasks across the stream.
    pub fn total_t3(&self) -> usize {
        self.t1.iter().map(|n| n.t3.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::{CooMatrix, CsrMatrix};
    use uni_stc::tms::TaskOrdering;

    fn bbc(n: usize, entries: impl IntoIterator<Item = (usize, usize)>) -> BbcMatrix {
        let mut coo = CooMatrix::new(n, n);
        for (r, c) in entries {
            coo.push(r, c, 1.0);
        }
        BbcMatrix::from_csr(&CsrMatrix::try_from(coo).unwrap())
    }

    #[test]
    fn spmv_model_mirrors_driver_task_count() {
        let a = bbc(64, (0..64).map(|i| (i, i)));
        let cfg = UniStcConfig::default();
        let m = StreamModel::spmv(&cfg, &a);
        assert_eq!(m.kernel, Kernel::SpMV);
        assert_eq!(m.t1.len(), a.block_count());
        assert!(m.total_t3() > 0);
        for (i, node) in m.t1.iter().enumerate() {
            assert_eq!(node.block, Some(i));
        }
    }

    #[test]
    fn spmspv_model_skips_masked_blocks() {
        let a = bbc(32, [(0, 0), (0, 20)]);
        let x = SparseVector::try_new(32, vec![20], vec![1.0]).unwrap();
        let cfg = UniStcConfig::default();
        let m = StreamModel::spmspv(&cfg, &a, &x);
        assert_eq!(m.t1.len(), 1);
    }

    #[test]
    fn spmm_model_scales_with_column_blocks() {
        let a = bbc(16, [(0, 0)]);
        let cfg = UniStcConfig::default();
        assert_eq!(StreamModel::spmm(&cfg, &a, 64).t1.len(), 4);
        assert_eq!(StreamModel::spmm(&cfg, &a, 20).t1.len(), 2);
        assert!(StreamModel::spmm(&cfg, &a, 0).t1.is_empty());
    }

    #[test]
    fn spgemm_model_drops_trivial_pairs() {
        let a = bbc(16, [(0, 0)]);
        let b = bbc(16, [(5, 0)]);
        let cfg = UniStcConfig::default();
        assert!(StreamModel::spgemm(&cfg, &a, &b).t1.is_empty());
        let sq = StreamModel::spgemm(&cfg, &a, &a);
        assert_eq!(sq.t1.len(), 1);
    }

    #[test]
    fn routing_stays_inside_active_window() {
        let cfg = UniStcConfig::default();
        // Dense supply: the look-ahead activates two DPGs per window.
        let dense = generate_t3_tasks(
            &Block16::dense(),
            &Block16::dense(),
            TaskOrdering::OuterProduct,
        );
        let routed = route_tasks(&cfg, &dense);
        assert_eq!(routed.len(), 64);
        for window in routed.chunks(cfg.n_dpg) {
            let tasks: Vec<T3Task> = window.iter().map(|n| n.task).collect();
            let active = active_dpgs(&cfg, &tasks);
            assert_eq!(active, 2);
            assert!(window.iter().all(|n| n.dpg < active));
        }
    }

    #[test]
    fn gating_off_routes_over_all_dpgs() {
        let cfg = UniStcConfig { power_gating: false, ..UniStcConfig::default() };
        let dense = generate_t3_tasks(
            &Block16::dense(),
            &Block16::dense(),
            TaskOrdering::OuterProduct,
        );
        let routed = route_tasks(&cfg, &dense);
        assert!(routed.iter().any(|n| n.dpg == cfg.n_dpg - 1));
    }
}
