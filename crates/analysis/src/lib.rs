//! # ustc-verify: static analysis for Uni-STC streams and sources
//!
//! Two independent static-analysis surfaces over the workspace:
//!
//! 1. **The stream verifier** ([`Verifier`]) — proves UWMMA lifecycle
//!    legality, SDPU lane feasibility, Tile/Dot-product queue occupancy
//!    bounds, TMS write-conflict freedom, routing / power-gating soundness
//!    and BBC metadata consistency over [`uni_stc::isa::Program`]s,
//!    [`uni_stc::compiler::CompiledKernel`]s and [`StreamModel`]s —
//!    *without executing anything*. Findings carry stable `USTC001`..
//!    diagnostic codes ([`Code`]) with severities and spans, rendered
//!    human-readable or as JSON ([`Report`]). [`UstcVerifier`] plugs the
//!    verifier into [`simkit::driver::Driver::verify_before_run`] so
//!    illegal streams are rejected before a single cycle is simulated.
//! 2. **The concurrency verifier** ([`concurrency`], [`schedule`]) —
//!    proves the parallel runtime's determinism claims statically:
//!    shard plans are pairwise-disjoint covers of the task stream
//!    (`USTC014`–`USTC016`), the shard-report fold is a commutative
//!    monoid that never re-folds energy (`USTC017`–`USTC018`), and a
//!    loom-style schedule explorer enumerates the pool's
//!    queue/steal/retry/degrade interleavings asserting every schedule
//!    merges to the serial signature with no task lost or repeated
//!    (`USTC019`).
//! 3. **The source lint** ([`lint`]) — a dependency-free scanner over the
//!    workspace's library code enforcing the repo's robustness rules
//!    (no panicking calls outside tests, no ad-hoc float equality, no
//!    direct event-counter mutation outside the accounting layers, and
//!    the determinism lints: no hash-order iteration, no wall-clock
//!    reads, no interior mutability, no order-sensitive float folds
//!    outside the sanctioned sites), run in CI via
//!    `cargo run -p analysis --bin lint`.
//!
//! The golden-diagnostics snapshot ([`golden`]) pins the exact rendering
//! of every code against `golden/diagnostics.txt` (bless with
//! `ANALYSIS_BLESS=1`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod concurrency;
pub mod diag;
pub mod golden;
pub mod lint;
pub mod model;
pub mod schedule;
pub mod verifier;

pub use concurrency::{verify_fold, verify_model_plan, verify_runtime_fold, verify_shard_plan};
pub use diag::{Code, Diagnostic, Report, Severity, Span};
pub use model::{StreamModel, T1Node, T3Node, DOT_QUEUE_CAP, TILE_QUEUE_CAP};
pub use schedule::{explore, Exploration, ModelBug, ModelConfig, Violation};
pub use verifier::{UstcVerifier, Verifier};
