//! Workspace lint gate: `cargo run -p analysis --bin lint`.
//!
//! Scans every library source under `crates/*/src` against the rules in
//! [`analysis::lint`] and exits nonzero on any finding, so CI can gate on
//! it. `--rules` prints the rule table.

use std::process::ExitCode;

fn main() -> ExitCode {
    if std::env::args().any(|a| a == "--rules") {
        for (name, summary) in analysis::lint::rule_table() {
            println!("{name:<16} {summary}");
        }
        return ExitCode::SUCCESS;
    }
    let root = analysis::lint::workspace_root();
    let report = match analysis::lint::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: cannot scan workspace at {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    for f in &report.findings {
        println!("{f}");
    }
    if report.findings.is_empty() {
        println!("lint clean: {} library files scanned, 0 findings", report.files_scanned);
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "lint: {} finding(s) across {} scanned files",
            report.findings.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}
