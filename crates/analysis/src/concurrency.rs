//! Concurrency verification: static proofs over shard plans and the
//! shard-report fold.
//!
//! The parallel runtime's headline claim — a sharded run folds to a
//! report **bit-identical** to the serial driver's — rests on exactly
//! three properties, and this module proves each one statically, before
//! a single worker is spawned:
//!
//! 1. **Disjointness** — no two shards claim the same T1 task
//!    (`USTC014`), or the task would be double-counted.
//! 2. **Coverage** — every task is claimed by some shard (`USTC015`),
//!    and every shard is well-formed: non-empty, in range, planned for
//!    the right stream length (`USTC016`).
//! 3. **Commutative-monoid fold** — folding the per-shard
//!    [`KernelReport`]s is order-independent (`USTC017`) and leaves the
//!    energy field untouched so it is recomputed exactly once from the
//!    merged events (`USTC018`), never summed per shard.
//!
//! [`verify_shard_plan`] and [`verify_model_plan`] walk a
//! [`runtime::ShardPlan`] (optionally against the [`StreamModel`] whose
//! T1 list it shards) and report *every* violation, where the runtime's
//! own [`runtime::ShardPlan::verify_before_run`] gate stops at the
//! first. [`verify_fold`] takes the fold as a function and tests it over
//! deterministic permutations of the shard reports, so injected-defect
//! tests can hand it a broken fold and assert the exact code.
//!
//! Spans reuse the model vocabulary: `block` is the shard index, `task`
//! the T1 task index.

use simkit::driver::KernelReport;
use sparse::rng::Rng64;

use crate::diag::{Code, Diagnostic, Report, Span};
use crate::model::StreamModel;

/// Seed for the deterministic fold permutations; fixed so the golden
/// snapshot pins the exact shuffles [`verify_fold`] exercises.
const FOLD_SHUFFLE_SEED: u64 = 0x5EED_F01D;

/// How many seeded shuffles [`verify_fold`] tries on top of the identity
/// and reversed orders.
const FOLD_SHUFFLES: usize = 3;

/// Verifies a shard plan in isolation: disjointness, coverage and shard
/// well-formedness. Reports every violation (`USTC014`–`USTC016`), not
/// just the first.
pub fn verify_shard_plan(plan: &runtime::ShardPlan) -> Report {
    let mut report = Report::new();
    let tasks = plan.tasks();
    // `owner[i]` = 1 + index of the first shard that claimed task i.
    let mut owner = vec![0usize; tasks];
    for (s, range) in plan.shards().iter().enumerate() {
        if range.start >= range.end {
            report.push(Diagnostic::new(
                Code::ShardMalformed,
                Span::at_block(s),
                format!("shard {s} is empty ({}..{})", range.start, range.end),
            ));
            continue;
        }
        if range.end > tasks {
            report.push(Diagnostic::new(
                Code::ShardMalformed,
                Span::at_block(s),
                format!("shard {s} ends at {}, past the {tasks}-task stream", range.end),
            ));
        }
        let claim = range.start..range.end.min(tasks);
        for (task, slot) in owner.iter_mut().enumerate().take(claim.end).skip(claim.start) {
            if *slot != 0 {
                report.push(Diagnostic::new(
                    Code::ShardOverlap,
                    Span::at_task(s, task),
                    format!("shards {} and {s} both claim task {task}", *slot - 1),
                ));
            } else {
                *slot = s + 1;
            }
        }
    }
    for (task, &o) in owner.iter().enumerate() {
        if o == 0 {
            report.push(Diagnostic::new(
                Code::ShardGap,
                Span { task: Some(task), ..Span::default() },
                format!("task {task} is claimed by no shard"),
            ));
        }
    }
    report
}

/// Verifies a shard plan *against the stream it claims to shard*: the
/// plan must be sized for the model's T1 list (`USTC016` otherwise) and
/// pass every [`verify_shard_plan`] check.
pub fn verify_model_plan(plan: &runtime::ShardPlan, model: &StreamModel) -> Report {
    let mut report = Report::new();
    if plan.tasks() != model.t1.len() {
        report.push(Diagnostic::new(
            Code::ShardMalformed,
            Span::none(),
            format!(
                "plan shards a {}-task stream but the {} model issues {} T1 tasks",
                plan.tasks(),
                model.kernel,
                model.t1.len()
            ),
        ));
    }
    report.merge(verify_shard_plan(plan));
    report
}

/// Folds `shards` into a copy of `seed` in the index order given by
/// `order`.
fn fold_in_order(
    seed: &KernelReport,
    shards: &[KernelReport],
    fold: &dyn Fn(&mut KernelReport, &KernelReport),
    order: &[usize],
) -> KernelReport {
    let mut acc = seed.clone();
    for &i in order {
        fold(&mut acc, &shards[i]);
    }
    acc
}

/// Whether two folded reports agree on every order-sensitive counter
/// (everything except the energy field, which `USTC018` checks
/// separately).
fn counters_agree(a: &KernelReport, b: &KernelReport) -> bool {
    a.cycles == b.cycles
        && a.useful == b.useful
        && a.t1_tasks == b.t1_tasks
        && a.util == b.util
        && a.events == b.events
}

/// Describes a permutation compactly for diagnostics.
fn order_label(order: &[usize]) -> String {
    let parts: Vec<String> = order.iter().map(usize::to_string).collect();
    parts.join(",")
}

/// Verifies that `fold` merges shard reports as a commutative monoid
/// with `seed` (the empty-stream report) as identity:
///
/// * folding in the identity order, the reversed order and
///   [`FOLD_SHUFFLES`] seeded shuffles must agree on every counter —
///   a divergence is `USTC017`;
/// * the fold must leave `seed`'s energy untouched (energy is a
///   function of the *merged* events, recomputed exactly once by the
///   caller) — a fold that accumulates energy is `USTC018`.
pub fn verify_fold(
    seed: &KernelReport,
    shards: &[KernelReport],
    fold: &dyn Fn(&mut KernelReport, &KernelReport),
) -> Report {
    let mut report = Report::new();
    let identity: Vec<usize> = (0..shards.len()).collect();
    let base = fold_in_order(seed, shards, fold, &identity);

    let mut orders: Vec<Vec<usize>> = Vec::new();
    let mut reversed = identity.clone();
    reversed.reverse();
    orders.push(reversed);
    let mut rng = Rng64::new(FOLD_SHUFFLE_SEED);
    for _ in 0..FOLD_SHUFFLES {
        let mut order = identity.clone();
        // Fisher–Yates with the fixed seed: the same shuffles every run.
        for i in (1..order.len()).rev() {
            let j = rng.next_range(i + 1);
            order.swap(i, j);
        }
        orders.push(order);
    }

    for order in &orders {
        let alt = fold_in_order(seed, shards, fold, order);
        if !counters_agree(&base, &alt) {
            report.push(Diagnostic::new(
                Code::NonCommutativeFold,
                Span::none(),
                format!(
                    "folding {} shard reports in order [{}] diverges from shard order: \
                     {} vs {}",
                    shards.len(),
                    order_label(order),
                    alt.counter_signature(),
                    base.counter_signature()
                ),
            ));
            break; // one witness is enough; more orders add no information
        }
    }

    if base.energy != seed.energy {
        report.push(Diagnostic::new(
            Code::EnergyRefold,
            Span::none(),
            "fold accumulates energy per shard; energy must be recomputed exactly once \
             from the merged events"
                .to_owned(),
        ));
    }
    report
}

/// [`verify_fold`] over the runtime's real [`runtime::fold_report`] —
/// the fold every sharded kernel run uses. Clean by construction; the
/// golden suite pins that this stays true.
pub fn verify_runtime_fold(seed: &KernelReport, shards: &[KernelReport]) -> Report {
    verify_fold(seed, shards, &runtime::fold_report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::driver::Kernel;
    use simkit::{EventCounts, UtilHistogram};

    fn shard_report(cycles: u64, useful: u64, t1: u64) -> KernelReport {
        KernelReport {
            engine: "seeded".to_owned(),
            kernel: Kernel::SpMV,
            cycles,
            useful,
            t1_tasks: t1,
            util: UtilHistogram::new(4),
            events: EventCounts::default(),
            energy: Default::default(),
        }
    }

    fn seed_report() -> KernelReport {
        shard_report(0, 0, 0)
    }

    #[test]
    fn clean_contiguous_plan_verifies_clean() {
        for (tasks, threads) in [(10, 2), (0, 4), (97, 8)] {
            let plan = runtime::ShardPlan::contiguous(tasks, threads);
            assert!(verify_shard_plan(&plan).is_clean(), "tasks={tasks} threads={threads}");
        }
    }

    #[test]
    fn overlap_gap_and_malformed_each_get_their_code() {
        let plan = runtime::ShardPlan::from_ranges(10, vec![0..4, 3..6, 8..10, 4..4, 9..12]);
        let r = verify_shard_plan(&plan);
        assert!(r.has_code(Code::ShardOverlap), "{}", r.render_human());
        assert!(r.has_code(Code::ShardGap), "tasks 6,7 uncovered: {}", r.render_human());
        assert!(r.has_code(Code::ShardMalformed), "{}", r.render_human());
        assert!(r.has_errors());
    }

    #[test]
    fn runtime_fold_is_a_commutative_monoid() {
        let shards: Vec<KernelReport> =
            (0..6).map(|i| shard_report(10 + i, 5 * i, 1)).collect();
        let r = verify_runtime_fold(&seed_report(), &shards);
        assert!(r.is_clean(), "{}", r.render_human());
    }

    #[test]
    fn order_dependent_fold_is_ustc017() {
        let shards: Vec<KernelReport> = (0..4).map(|i| shard_report(i + 1, 0, 1)).collect();
        // A "max so far" fold depends on encounter order via saturating_sub.
        let bad = |acc: &mut KernelReport, next: &KernelReport| {
            acc.cycles = acc.cycles * 2 + next.cycles;
            acc.t1_tasks += next.t1_tasks;
        };
        let r = verify_fold(&seed_report(), &shards, &bad);
        assert!(r.has_code(Code::NonCommutativeFold), "{}", r.render_human());
    }

    #[test]
    fn energy_accumulating_fold_is_ustc018() {
        let mut shards: Vec<KernelReport> =
            (0..3).map(|i| shard_report(i, i, 1)).collect();
        for s in &mut shards {
            s.energy.compute = 1.5;
        }
        let bad = |acc: &mut KernelReport, next: &KernelReport| {
            runtime::fold_report(acc, next);
            acc.energy.compute += next.energy.compute;
        };
        let r = verify_fold(&seed_report(), &shards, &bad);
        assert!(r.has_code(Code::EnergyRefold), "{}", r.render_human());
        assert!(!r.has_code(Code::NonCommutativeFold), "{}", r.render_human());
    }

    #[test]
    fn model_plan_length_mismatch_is_ustc016() {
        let model = StreamModel { kernel: Kernel::SpMV, t1: Vec::new() };
        let plan = runtime::ShardPlan::contiguous(3, 1);
        let r = verify_model_plan(&plan, &model);
        assert!(r.has_code(Code::ShardMalformed), "{}", r.render_human());
    }
}
