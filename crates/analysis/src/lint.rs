//! The workspace source lint: robustness rules over library code.
//!
//! A dependency-free scanner (no proc macros, no syn) over every library
//! source file in `crates/*/src`, enforcing the repo's hardening rules:
//!
//! * **no-unwrap / no-expect / no-panic** — library code returns typed
//!   errors; panicking calls belong in tests and binaries.
//! * **float-eq** — ad-hoc `== 0.0`-style comparisons and hand-rolled
//!   epsilon checks belong in the conformance ULP helpers, not scattered
//!   through kernels.
//! * **event-mutation** — [`simkit::EventCounts`] fields are written only
//!   by the accounting layers (engines, drivers, baselines), never ad hoc.
//! * **hash-iteration / wall-clock / interior-mutability /
//!   float-fold-order** — the determinism lints: no hash-ordered
//!   collections whose iteration order could leak into a report, no
//!   wall-clock reads in folded counter paths, no `static mut` / cells /
//!   locks / atomics outside the backend registry and the pool, and no
//!   order-sensitive float accumulation (sum integer counters, recompute
//!   floats once from the merged result).
//!
//! Test modules (everything from the first `#[cfg(test)]` line on), doc /
//! line comments, binaries, benches and integration tests are out of
//! scope. Each rule carries an explicit per-file allowlist: the grandfathered
//! sites are named here, in review, rather than silently tolerated.
//!
//! Run as `cargo run -p analysis --bin lint` (CI fails on any finding) or
//! via the `workspace_is_lint_clean` test.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

// Pattern fragments are assembled at compile time so this file does not
// match its own rules when it scans itself.
const P_UNWRAP: &str = concat!(".unw", "rap()");
const P_EXPECT: &str = concat!(".exp", "ect(");
const P_PANIC: &str = concat!("pan", "ic!(");
const P_UNREACHABLE: &str = concat!("unreach", "able!(");
const P_TODO: &str = concat!("to", "do!(");
const P_UNIMPLEMENTED: &str = concat!("unimpl", "emented!(");
const P_ABS_CMP: &str = concat!(".ab", "s() <");
const P_EVENTS: &str = concat!("eve", "nts.");
const P_CFG_TEST: &str = concat!("#[cfg(te", "st)]");
const P_HASHMAP: &str = concat!("Hash", "Map");
const P_HASHSET: &str = concat!("Hash", "Set");
const P_INSTANT_NOW: &str = concat!("Instant", "::now");
const P_SYSTEMTIME_NOW: &str = concat!("SystemTime", "::now");
const P_STATIC_MUT: &str = concat!("static ", "mut ");
const P_CELL: &str = concat!("Ce", "ll<");
const P_ONCE_LOCK: &str = concat!("Once", "Lock");
const P_ONCE_CELL: &str = concat!("Once", "Cell");
const P_MUTEX: &str = concat!("Mut", "ex<");
const P_RWLOCK: &str = concat!("RwL", "ock<");
const P_ATOMIC: &str = concat!("Ato", "mic");
const P_SUM_F32: &str = concat!(".sum::<f", "32>()");
const P_SUM_F64: &str = concat!(".sum::<f", "64>()");
const P_FOLD_F0: &str = concat!(".fold(0", ".0");
const P_FOLD_F0F: &str = concat!(".fold(0", "f");

/// The [`EventCounts`](simkit::EventCounts) fields the event-mutation rule
/// guards.
const EVENT_FIELDS: &[&str] = &[
    "a_elems",
    "b_elems",
    "partial_updates",
    "c_writes",
    "meta_words",
    "sched_ops",
    "unit_cycles",
    "mac_issued",
    "c_ports_cycles",
    "faults_injected",
    "faults_detected",
    "faults_uncorrected",
];

/// One lint rule: a name, a line predicate and its allowlist of
/// grandfathered files (workspace-relative path substrings).
struct Rule {
    name: &'static str,
    summary: &'static str,
    check: fn(&str) -> bool,
    allow: &'static [&'static str],
}

fn has_unwrap(line: &str) -> bool {
    line.contains(P_UNWRAP)
}

fn has_expect(line: &str) -> bool {
    line.contains(P_EXPECT)
}

fn has_panic_macro(line: &str) -> bool {
    [P_PANIC, P_UNREACHABLE, P_TODO, P_UNIMPLEMENTED].iter().any(|p| line.contains(p))
}

/// `== 1.0` / `!= 0.0`-style literal float comparisons, and hand-rolled
/// `(..).abs() < eps` epsilon checks.
fn has_float_eq(line: &str) -> bool {
    if line.contains(P_ABS_CMP) {
        return true;
    }
    for op in ["==", "!="] {
        let mut rest = line;
        while let Some(pos) = rest.find(op) {
            let after = &rest[pos + op.len()..];
            if starts_with_float_literal(after.trim_start()) {
                return true;
            }
            rest = after;
        }
    }
    false
}

/// Whether `s` begins with a float literal like `0.0`, `-1.5` or `1e-9`.
fn starts_with_float_literal(s: &str) -> bool {
    let s = s.strip_prefix('-').unwrap_or(s);
    let digits = s.len() - s.trim_start_matches(|c: char| c.is_ascii_digit()).len();
    if digits == 0 {
        return false;
    }
    let rest = &s[digits..];
    match rest.as_bytes().first() {
        Some(b'.') => rest.as_bytes().get(1).is_some_and(u8::is_ascii_digit),
        Some(b'e') | Some(b'E') => true,
        _ => false,
    }
}

/// Hash-ordered collections: their iteration order is seeded per process,
/// so any report built by walking one is nondeterministic by construction.
fn has_hash_collection(line: &str) -> bool {
    line.contains(P_HASHMAP) || line.contains(P_HASHSET)
}

/// Wall-clock reads. Counters folded into reports must be functions of
/// the input, never of time; timing lives in the pool's watchdog and the
/// metrics wall-span, both allowlisted.
fn has_wall_clock(line: &str) -> bool {
    line.contains(P_INSTANT_NOW) || line.contains(P_SYSTEMTIME_NOW)
}

/// `static mut` and the interior-mutability / shared-state primitives.
/// Outside the backend registry and the pool itself, library code is
/// plain values in, plain values out — that is what makes the fold a
/// monoid.
fn has_interior_mutability(line: &str) -> bool {
    [P_STATIC_MUT, P_CELL, P_ONCE_LOCK, P_ONCE_CELL, P_MUTEX, P_RWLOCK, P_ATOMIC]
        .iter()
        .any(|p| line.contains(p))
}

/// Order-sensitive float accumulation (`.sum::<f64>()`, `.fold(0.0, ..)`):
/// float addition does not associate, so a parallel re-ordering changes
/// the result. Accumulate integers, recompute floats once at the end.
fn has_float_fold(line: &str) -> bool {
    [P_SUM_F32, P_SUM_F64, P_FOLD_F0, P_FOLD_F0F].iter().any(|p| line.contains(p))
}

/// Direct assignment (`=`, `+=`, `-=`) to an `events.<field>` lvalue.
fn has_event_mutation(line: &str) -> bool {
    let mut rest = line;
    while let Some(pos) = rest.find(P_EVENTS) {
        let after = &rest[pos + P_EVENTS.len()..];
        for field in EVENT_FIELDS {
            if let Some(tail) = after.strip_prefix(field) {
                let t = tail.trim_start();
                if t.starts_with("+=")
                    || t.starts_with("-=")
                    || (t.starts_with('=') && !t.starts_with("=="))
                {
                    return true;
                }
            }
        }
        rest = after;
    }
    false
}

const RULES: &[Rule] = &[
    Rule {
        name: "no-unwrap",
        summary: "library code must not call unwrap; return a typed error",
        check: has_unwrap,
        allow: &[
            // Emits .unwrap() inside a *generated* reproduction snippet.
            "conformance/src/shrink.rs",
        ],
    },
    Rule {
        name: "no-expect",
        summary: "library code should avoid expect; grandfathered sites are listed",
        check: has_expect,
        allow: &[
            "analysis/src/golden.rs",
            "baselines/src/trapezoid.rs",
            "bench/src/lib.rs",
            "conformance/src/generators.rs",
            "conformance/src/golden.rs",
            "core/src/kernels.rs",
            "core/src/multi.rs",
            "core/src/schedule.rs",
            "sparse/src/bbc/build.rs",
            "sparse/src/bbc/mod.rs",
            "sparse/src/bsr.rs",
            "sparse/src/coo.rs",
            "sparse/src/csc.rs",
            "sparse/src/csr.rs",
            "sparse/src/dense.rs",
            "workloads/src/",
        ],
    },
    Rule {
        name: "no-panic",
        summary: "library code must not use panicking macros",
        check: has_panic_macro,
        allow: &[
            // Seed parsing and ULP assertion helpers are deliberate aborts.
            "conformance/src/compare.rs",
            "conformance/src/lib.rs",
        ],
    },
    Rule {
        name: "float-eq",
        summary: "no ad-hoc float equality / epsilon compares outside the ULP helpers",
        check: has_float_eq,
        allow: &[
            "conformance/src/compare.rs",
            "conformance/src/shrink.rs",
            "simkit/src/metrics.rs",
            "sparse/src/bsr.rs",
            "sparse/src/csr.rs",
            "workloads/src/",
        ],
    },
    Rule {
        name: "event-mutation",
        summary: "EventCounts fields are written only by the accounting layers",
        check: has_event_mutation,
        allow: &[
            "baselines/src/",
            "core/src/multi.rs",
            "core/src/pipeline.rs",
            "simkit/src/driver.rs",
            "simkit/src/result.rs",
        ],
    },
    Rule {
        name: "hash-iteration",
        summary: "no hash-ordered collections in library code; their iteration order is \
                  per-process and would leak into reports",
        check: has_hash_collection,
        allow: &[
            // Insert-only duplicate check; iteration order never observed.
            "workloads/src/gen.rs",
        ],
    },
    Rule {
        name: "wall-clock",
        summary: "no wall-clock reads in folded paths; timing belongs to the pool watchdog \
                  and the metrics wall-span",
        check: has_wall_clock,
        allow: &["obs/src/metrics.rs", "runtime/src/pool.rs"],
    },
    Rule {
        name: "interior-mutability",
        summary: "no mutable statics, cells, locks or atomics outside the backend registry, \
                  the pool and the service layer",
        check: has_interior_mutability,
        allow: &[
            "runtime/src/pool.rs",
            "sparse/src/kernels/mod.rs",
            // The serving layer is the one place shared mutable state is
            // the point: fingerprint-keyed caches and a live metrics
            // registry behind a dispatcher thread (DESIGN.md §15).
            "service/src/cache.rs",
            "service/src/service.rs",
        ],
    },
    Rule {
        name: "float-fold-order",
        summary: "no order-sensitive float accumulation; fold integer counters, recompute \
                  floats once from the merged result",
        check: has_float_fold,
        allow: &["sparse/src/dense.rs", "workloads/src/"],
    },
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name, e.g. `"no-unwrap"`.
    pub rule: &'static str,
    /// Workspace-relative file path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending line, trimmed.
    pub text: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.text)
    }
}

/// Summary of one lint run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintReport {
    /// Library files scanned.
    pub files_scanned: usize,
    /// All findings, in path order.
    pub findings: Vec<Finding>,
}

/// Whether a library source path is in scope for linting.
fn in_scope(rel: &str) -> bool {
    if !rel.ends_with(".rs") {
        return false;
    }
    if rel.contains("/src/bin/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
    {
        return false;
    }
    !rel.ends_with("tests.rs")
}

fn allowed(rule: &Rule, rel: &str) -> bool {
    rule.allow.iter().any(|a| rel.contains(a))
}

/// Lints one file's contents (already read), given its workspace-relative
/// path.
fn lint_source(rel: &str, source: &str, findings: &mut Vec<Finding>) {
    for (i, raw) in source.lines().enumerate() {
        let line = raw.trim();
        if line == P_CFG_TEST {
            return; // the rest of the file is the test module
        }
        if line.starts_with("//") {
            continue; // doc and line comments
        }
        for rule in RULES {
            if (rule.check)(line) && !allowed(rule, rel) {
                findings.push(Finding {
                    rule: rule.name,
                    file: rel.to_owned(),
                    line: i + 1,
                    text: line.to_owned(),
                });
            }
        }
    }
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> =
        fs::read_dir(dir)?.collect::<Result<Vec<_>, _>>()?.into_iter().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk(&path, out)?;
        } else {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs the lint over every library source under `<root>/crates/*/src`.
///
/// # Errors
///
/// Returns an IO error if the workspace layout cannot be read.
pub fn run(root: &Path) -> io::Result<LintReport> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<_> = fs::read_dir(&crates_dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    let mut files = Vec::new();
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if src.is_dir() {
            walk(&src, &mut files)?;
        }
    }
    let mut findings = Vec::new();
    let mut files_scanned = 0usize;
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        if !in_scope(&rel) {
            continue;
        }
        files_scanned += 1;
        let source = fs::read_to_string(&path)?;
        lint_source(&rel, &source, &mut findings);
    }
    Ok(LintReport { files_scanned, findings })
}

/// The workspace root, derived from this crate's manifest directory.
pub fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// The rule names and summaries, for `--help`-style output.
pub fn rule_table() -> Vec<(&'static str, &'static str)> {
    RULES.iter().map(|r| (r.name, r.summary)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patterns_match_seeded_lines() {
        assert!(has_unwrap(&format!("let x = y{P_UNWRAP};")));
        assert!(!has_unwrap("let x = y.unwrap_or(0);"));
        assert!(has_expect(&format!("let x = y{P_EXPECT}\"msg\");")));
        assert!(has_panic_macro(&format!("{P_PANIC}\"boom\")")));
        assert!(has_panic_macro(&format!("{P_UNREACHABLE})")));
        assert!(!has_panic_macro("let p = panicky;"));
    }

    #[test]
    fn float_eq_detects_literal_compares() {
        assert!(has_float_eq("if acc[r] == 0.0 {"));
        assert!(has_float_eq("if v != 1.0 {"));
        assert!(has_float_eq("if x == 2e-9 {"));
        assert!(has_float_eq(&format!("if (a - b){P_ABS_CMP} 1e-12 {{")));
        assert!(!has_float_eq("if a == b {"));
        assert!(!has_float_eq("if n == 0 {"));
        assert!(!has_float_eq("let eq = x == y;"));
    }

    #[test]
    fn event_mutation_detects_lvalue_writes() {
        assert!(has_event_mutation(&format!("r.{P_EVENTS}meta_words += 36;")));
        assert!(has_event_mutation(&format!("rep.{P_EVENTS}faults_injected = n;")));
        assert!(!has_event_mutation(&format!("if r.{P_EVENTS}meta_words == 36 {{")));
        assert!(!has_event_mutation(&format!("let m = r.{P_EVENTS}meta_words;")));
    }

    #[test]
    fn determinism_rules_match_seeded_lines() {
        assert!(has_hash_collection(&format!("use std::collections::{P_HASHMAP};")));
        assert!(has_hash_collection(&format!("let seen: {P_HASHSET}<u64> = ...;")));
        assert!(!has_hash_collection("let seen: BTreeMap<u64, u64> = BTreeMap::new();"));
        assert!(has_wall_clock(&format!("let t0 = {P_INSTANT_NOW}();")));
        assert!(has_wall_clock(&format!("let wall = {P_SYSTEMTIME_NOW}();")));
        assert!(!has_wall_clock("let now = self.clock;"));
        assert!(has_interior_mutability(&format!("{P_STATIC_MUT}REGISTRY: u8 = 0;")));
        assert!(has_interior_mutability(&format!("queues: Vec<{P_MUTEX}VecDeque<u64>>>,")));
        assert!(has_interior_mutability(&format!("done: {P_ATOMIC}Bool,")));
        assert!(!has_interior_mutability("let mut acc = 0u64;"));
        assert!(has_float_fold(&format!("let s = xs.iter(){P_SUM_F64};")));
        assert!(has_float_fold(&format!("let m = xs.iter(){P_FOLD_F0}, f64::max);")));
        assert!(!has_float_fold("let n: u64 = xs.iter().sum();"));
    }

    #[test]
    fn scanner_skips_comments_and_test_modules() {
        let src = format!(
            "fn ok() {{}}\n// comment with {P_UNWRAP}\n{P_CFG_TEST}\nfn t() {{ x{P_UNWRAP}; }}\n"
        );
        let mut findings = Vec::new();
        lint_source("crates/demo/src/lib.rs", &src, &mut findings);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn scanner_reports_violations_with_locations() {
        let src = format!("fn bad() {{\n    x{P_UNWRAP};\n}}\n");
        let mut findings = Vec::new();
        lint_source("crates/demo/src/lib.rs", &src, &mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "no-unwrap");
        assert_eq!(findings[0].line, 2);
        assert!(findings[0].to_string().starts_with("crates/demo/src/lib.rs:2:"));
    }

    #[test]
    fn allowlists_are_honoured() {
        let src = format!("fn grandfathered() {{ x{P_UNWRAP}; }}\n");
        let mut findings = Vec::new();
        lint_source("crates/conformance/src/shrink.rs", &src, &mut findings);
        assert!(findings.is_empty());
    }

    #[test]
    fn scope_excludes_bins_tests_and_benches() {
        assert!(in_scope("crates/sparse/src/csr.rs"));
        assert!(!in_scope("crates/analysis/src/bin/lint.rs"));
        assert!(!in_scope("crates/conformance/tests/differential.rs"));
        assert!(!in_scope("crates/bench/benches/kernels.rs"));
        assert!(!in_scope("crates/sparse/src/csr_tests.rs"));
        assert!(!in_scope("crates/sparse/src/notes.md"));
    }

    #[test]
    fn workspace_is_lint_clean() {
        let report = run(&workspace_root()).expect("workspace sources are readable");
        assert!(report.files_scanned > 40, "scanned {} files", report.files_scanned);
        let rendered: Vec<String> = report.findings.iter().map(Finding::to_string).collect();
        assert!(report.findings.is_empty(), "lint findings:\n{}", rendered.join("\n"));
    }

    #[test]
    fn rule_table_names_every_rule() {
        let t = rule_table();
        assert_eq!(t.len(), 9);
        assert!(t.iter().any(|(n, _)| *n == "no-unwrap"));
        assert!(t.iter().any(|(n, _)| *n == "event-mutation"));
        assert!(t.iter().any(|(n, _)| *n == "hash-iteration"));
        assert!(t.iter().any(|(n, _)| *n == "wall-clock"));
        assert!(t.iter().any(|(n, _)| *n == "interior-mutability"));
        assert!(t.iter().any(|(n, _)| *n == "float-fold-order"));
    }
}
