//! The static stream verifier: proves UWMMA/schedule invariants over
//! programs, compiled kernels and stream models without executing them.
//!
//! Checks and their codes (full table in DESIGN.md §9):
//!
//! * **Lifecycle legality** over [`Program`] instruction sequences —
//!   `USTC001` numeric without a batch, `USTC002` overlapping task_gen,
//!   `USTC003` cost outside Table V, `USTC004` dead batch, `USTC005`
//!   mv/mm kind mismatch.
//! * **Lane feasibility** of T4 segments against the SDPU allocator —
//!   `USTC006`.
//! * **Queue occupancy bounds** — `USTC007` (Tile queue), `USTC008`
//!   (Dot-product queue).
//! * **Write-conflict freedom** of the T3 order — `USTC009`.
//! * **Routing and power-gating soundness** — `USTC010`, `USTC011`.
//! * **BBC metadata consistency** via [`BbcMatrix::validate`] — `USTC012`.
//! * **Stream/metadata agreement** by recompilation diff — `USTC013`.

use sparse::{BbcMatrix, SparseVector};
use uni_stc::compiler::{compile_spgemm, compile_spmv, CompiledKernel};
use uni_stc::dpg::expand_t3;
use uni_stc::isa::{Program, Uwmma};
use uni_stc::{UniStcConfig, T4_MAX_LEN};

use crate::diag::{Code, Diagnostic, Report, Span};
use crate::model::{active_dpgs, StreamModel, T3Node, DOT_QUEUE_CAP, TILE_QUEUE_CAP};

/// Task-batch kind tracked by the lifecycle walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BatchKind {
    Mv,
    Mm,
}

impl BatchKind {
    fn name(self) -> &'static str {
        match self {
            BatchKind::Mv => "mv",
            BatchKind::Mm => "mm",
        }
    }
}

/// The static verifier, parameterised by one Uni-STC configuration.
#[derive(Debug, Clone)]
pub struct Verifier {
    cfg: UniStcConfig,
}

impl Verifier {
    /// A verifier for the given configuration.
    pub fn new(cfg: UniStcConfig) -> Self {
        Verifier { cfg }
    }

    /// The configuration the verifier checks against.
    pub fn config(&self) -> &UniStcConfig {
        &self.cfg
    }

    /// Lifecycle-checks one instruction stream (`USTC001`–`USTC005`).
    /// Spans carry instruction indices resolvable against
    /// [`Program::listing`].
    pub fn verify_program(&self, program: &Program) -> Report {
        self.program_report(None, program)
    }

    /// Lifecycle-checks every warp of a compiled kernel, attributing
    /// findings to `(warp, instr)` spans.
    pub fn verify_kernel(&self, kernel: &CompiledKernel) -> Report {
        let mut report = Report::new();
        for w in &kernel.warps {
            report.merge(self.program_report(Some(w.warp), &w.program));
        }
        report
    }

    fn program_report(&self, warp: Option<usize>, program: &Program) -> Report {
        let mut report = Report::new();
        let span = |instr: usize| Span { warp, instr: Some(instr), ..Span::default() };
        let mut batch: Option<(BatchKind, usize)> = None;
        for (i, instr) in program.instructions().iter().enumerate() {
            let (lo, hi) = instr.op.cycle_range();
            if instr.cost < lo || instr.cost > hi {
                report.push(Diagnostic::new(
                    Code::CostOutOfRange,
                    span(i),
                    format!(
                        "{} cost {} outside Table V range {lo}..={hi}",
                        instr.op.mnemonic(),
                        instr.cost
                    ),
                ));
            }
            let kind = match instr.op {
                Uwmma::LoadMetaMv | Uwmma::LoadMetaMm | Uwmma::LoadA => continue,
                Uwmma::TaskGenMv | Uwmma::NumericMv => BatchKind::Mv,
                Uwmma::TaskGenMm | Uwmma::NumericMm => BatchKind::Mm,
            };
            match instr.op {
                Uwmma::TaskGenMv | Uwmma::TaskGenMm => {
                    if let Some((_, at)) = batch {
                        report.push(Diagnostic::new(
                            Code::OverlappingTaskGen,
                            span(i),
                            format!(
                                "{} overlaps the unconsumed batch generated at instr {at}",
                                instr.op.mnemonic()
                            ),
                        ));
                    }
                    batch = Some((kind, i));
                }
                Uwmma::NumericMv | Uwmma::NumericMm => match batch.take() {
                    None => report.push(Diagnostic::new(
                        Code::NumericWithoutBatch,
                        span(i),
                        format!("{} issued with no task batch in flight", instr.op.mnemonic()),
                    )),
                    Some((k, at)) if k != kind => report.push(Diagnostic::new(
                        Code::KindMismatch,
                        span(i),
                        format!(
                            "{} consumes a {} batch generated at instr {at}",
                            instr.op.mnemonic(),
                            k.name()
                        ),
                    )),
                    Some(_) => {}
                },
                _ => {}
            }
        }
        if let Some((k, at)) = batch {
            report.push(Diagnostic::new(
                Code::UnconsumedBatch,
                span(at),
                format!("stc.task_gen.{} batch generated here is never consumed", k.name()),
            ));
        }
        report
    }

    /// Checks a raw T4 segment stream for SDPU lane feasibility
    /// (`USTC006`): every segment must be atomic and 1..=4 lanes, or
    /// [`LaneAllocator::try_place`] would reject it.
    ///
    /// [`LaneAllocator::try_place`]: uni_stc::sdpu::LaneAllocator::try_place
    pub fn verify_segments(&self, segments: &[u8]) -> Report {
        let mut report = Report::new();
        for (i, &seg) in segments.iter().enumerate() {
            if !(1..=T4_MAX_LEN).contains(&(seg as usize)) {
                report.push(Diagnostic::new(
                    Code::SegmentTooLong,
                    Span { task: Some(i), ..Span::default() },
                    format!("segment length {seg} outside 1..={T4_MAX_LEN} lanes"),
                ));
            }
        }
        report
    }

    /// Checks claimed queue occupancies against the hardware capacities
    /// (`USTC007` / `USTC008`): `tile_entries` is one T1 task's Tile-queue
    /// load; `dot_entries[d]` is one T3 task's Dot-product-queue load.
    pub fn verify_queues(&self, tile_entries: usize, dot_entries: &[usize]) -> Report {
        let mut report = Report::new();
        if tile_entries > TILE_QUEUE_CAP {
            report.push(Diagnostic::new(
                Code::TileQueueOverflow,
                Span::none(),
                format!("{tile_entries} T3 tasks exceed the {TILE_QUEUE_CAP}-entry Tile queue"),
            ));
        }
        for (i, &n) in dot_entries.iter().enumerate() {
            if n > DOT_QUEUE_CAP {
                report.push(Diagnostic::new(
                    Code::DotQueueOverflow,
                    Span { task: Some(i), ..Span::default() },
                    format!("{n} T4 codes exceed the {DOT_QUEUE_CAP}-entry Dot-product queue"),
                ));
            }
        }
        report
    }

    /// Verifies a stream model: queue bounds, segment feasibility of every
    /// T3 expansion, write-conflict freedom of the task order, and routing
    /// / power-gating soundness (`USTC006`–`USTC011`).
    pub fn verify_model(&self, model: &StreamModel) -> Report {
        let mut report = Report::new();
        for (ni, node) in model.t1.iter().enumerate() {
            let block = node.block.unwrap_or(ni);
            if node.t3.len() > TILE_QUEUE_CAP {
                report.push(Diagnostic::new(
                    Code::TileQueueOverflow,
                    Span::at_block(block),
                    format!(
                        "{} T3 tasks exceed the {TILE_QUEUE_CAP}-entry Tile queue",
                        node.t3.len()
                    ),
                ));
            }
            self.check_t3_expansions(&mut report, block, &node.t3);
            self.check_write_conflicts(&mut report, block, &node.t3);
            self.check_routing(&mut report, block, &node.t3);
        }
        report
    }

    /// Per-T3 checks: Dot-product-queue load and segment lengths.
    fn check_t3_expansions(&self, report: &mut Report, block: usize, t3: &[T3Node]) {
        for (ti, node) in t3.iter().enumerate() {
            let codes = expand_t3(node.task.a_tile, node.task.b_tile, self.cfg.fill_order);
            if codes.len() > DOT_QUEUE_CAP {
                report.push(Diagnostic::new(
                    Code::DotQueueOverflow,
                    Span::at_task(block, ti),
                    format!(
                        "{} T4 codes exceed the {DOT_QUEUE_CAP}-entry Dot-product queue",
                        codes.len()
                    ),
                ));
            }
            for code in &codes {
                let len = code.len() as usize;
                if !(1..=T4_MAX_LEN).contains(&len) {
                    report.push(Diagnostic::new(
                        Code::SegmentTooLong,
                        Span::at_task(block, ti),
                        format!("segment length {len} outside 1..={T4_MAX_LEN} lanes"),
                    ));
                }
            }
        }
    }

    /// Within every run of consecutive same-K tasks, each output tile may
    /// appear at most once: a duplicate means the TMS would issue two
    /// same-layer writes to one accumulator entry (`USTC009`).
    fn check_write_conflicts(&self, report: &mut Report, block: usize, t3: &[T3Node]) {
        let mut run_k: Option<u8> = None;
        let mut seen = [false; 16];
        for (ti, node) in t3.iter().enumerate() {
            if run_k != Some(node.task.k) {
                run_k = Some(node.task.k);
                seen = [false; 16];
            }
            let id = node.task.output_id() as usize & 0xF;
            if seen[id] {
                report.push(Diagnostic::new(
                    Code::WriteConflict,
                    Span::at_task(block, ti),
                    format!(
                        "output tile ({}, {}) written twice within K layer {}",
                        node.task.i, node.task.j, node.task.k
                    ),
                ));
            }
            seen[id] = true;
        }
    }

    /// Routing checks per issue window (`USTC010` / `USTC011`).
    fn check_routing(&self, report: &mut Report, block: usize, t3: &[T3Node]) {
        for (wi, window) in t3.chunks(self.cfg.n_dpg.max(1)).enumerate() {
            let tasks: Vec<_> = window.iter().map(|n| n.task).collect();
            let active = active_dpgs(&self.cfg, &tasks);
            for (i, node) in window.iter().enumerate() {
                let ti = wi * self.cfg.n_dpg.max(1) + i;
                if node.dpg >= self.cfg.n_dpg {
                    report.push(Diagnostic::new(
                        Code::DpgRouteOutOfRange,
                        Span::at_task(block, ti),
                        format!("DPG slot {} outside the {}-DPG array", node.dpg, self.cfg.n_dpg),
                    ));
                } else if self.cfg.power_gating && node.dpg >= active {
                    report.push(Diagnostic::new(
                        Code::GatedDpgRoute,
                        Span::at_task(block, ti),
                        format!(
                            "DPG slot {} is power-gated (window activates {active} of {})",
                            node.dpg, self.cfg.n_dpg
                        ),
                    ));
                }
            }
        }
    }

    /// Deep-validates BBC metadata (`USTC012`), reusing
    /// [`BbcMatrix::validate`]'s bitmap/ValPtr popcount cross-checks.
    pub fn verify_matrix(&self, a: &BbcMatrix) -> Report {
        let mut report = Report::new();
        if let Err(e) = a.validate() {
            report.push(Diagnostic::new(
                Code::CorruptMetadata,
                Span::none(),
                format!("BBC validation failed: {e}"),
            ));
        }
        report
    }

    /// Full static check of an SpMV invocation: metadata, stream model and
    /// the compiled per-warp UWMMA streams. Stops after the metadata check
    /// when the matrix is corrupt (a corrupt structure cannot be safely
    /// walked).
    pub fn verify_spmv(&self, a: &BbcMatrix, n_warps: usize) -> Report {
        let mut report = self.verify_matrix(a);
        if report.has_errors() {
            return report;
        }
        report.merge(self.verify_model(&StreamModel::spmv(&self.cfg, a)));
        report.merge(self.verify_kernel(&compile_spmv(&self.cfg, a, n_warps.max(1))));
        report
    }

    /// Full static check of an SpMSpV invocation (metadata + model; the
    /// compiler has no SpMSpV entry point).
    pub fn verify_spmspv(&self, a: &BbcMatrix, x: &SparseVector) -> Report {
        let mut report = self.verify_matrix(a);
        if report.has_errors() {
            return report;
        }
        report.merge(self.verify_model(&StreamModel::spmspv(&self.cfg, a, x)));
        report
    }

    /// Full static check of an SpMM invocation (metadata + model).
    pub fn verify_spmm(&self, a: &BbcMatrix, n_cols: usize) -> Report {
        let mut report = self.verify_matrix(a);
        if report.has_errors() {
            return report;
        }
        report.merge(self.verify_model(&StreamModel::spmm(&self.cfg, a, n_cols)));
        report
    }

    /// Full static check of an SpGEMM invocation: both operands' metadata,
    /// the stream model, and the compiled streams.
    pub fn verify_spgemm(&self, a: &BbcMatrix, b: &BbcMatrix, n_warps: usize) -> Report {
        let mut report = self.verify_matrix(a);
        report.merge(self.verify_matrix(b));
        if report.has_errors() || a.block_cols() != b.block_rows() {
            return report;
        }
        report.merge(self.verify_model(&StreamModel::spgemm(&self.cfg, a, b)));
        report.merge(self.verify_kernel(&compile_spgemm(&self.cfg, a, b, n_warps.max(1))));
        report
    }

    /// Diffs a caller-supplied SpMV kernel against the stream the verifier
    /// recompiles from the matrix metadata (`USTC013`), on top of the full
    /// SpMV check.
    pub fn verify_spmv_against(&self, a: &BbcMatrix, kernel: &CompiledKernel) -> Report {
        let mut report = self.verify_matrix(a);
        report.merge(self.verify_kernel(kernel));
        if report.has_errors() {
            return report;
        }
        let expected = compile_spmv(&self.cfg, a, kernel.warps.len().max(1));
        report.merge(diff_kernels(&expected, kernel));
        report
    }
}

/// Emits one `USTC013` per warp whose stream diverges from the expected
/// recompilation (first divergent instruction named in the span).
fn diff_kernels(expected: &CompiledKernel, actual: &CompiledKernel) -> Report {
    let mut report = Report::new();
    if expected.warps.len() != actual.warps.len() {
        report.push(Diagnostic::new(
            Code::CostMismatch,
            Span::none(),
            format!(
                "kernel has {} warps, metadata-derived recompilation has {}",
                actual.warps.len(),
                expected.warps.len()
            ),
        ));
        return report;
    }
    for (e, a) in expected.warps.iter().zip(&actual.warps) {
        let ei = e.program.instructions();
        let ai = a.program.instructions();
        let divergence = ei
            .iter()
            .zip(ai)
            .position(|(x, y)| x != y)
            .or(if ei.len() != ai.len() { Some(ei.len().min(ai.len())) } else { None });
        if let Some(at) = divergence {
            let detail = match (ei.get(at), ai.get(at)) {
                (Some(x), Some(y)) => format!(
                    "expected {} cost {}, found {} cost {}",
                    x.op.mnemonic(),
                    x.cost,
                    y.op.mnemonic(),
                    y.cost
                ),
                _ => format!("stream lengths differ ({} vs {})", ai.len(), ei.len()),
            };
            report.push(Diagnostic::new(
                Code::CostMismatch,
                Span::at_instr(a.warp, at),
                format!("stream disagrees with metadata-derived recompilation: {detail}"),
            ));
        }
    }
    report
}

/// [`simkit::driver::StreamVerifier`] adapter: lets the simkit [`Driver`]
/// reject illegal streams with their first `USTC` error code before
/// simulating them.
///
/// [`Driver`]: simkit::driver::Driver
#[derive(Debug, Clone)]
pub struct UstcVerifier {
    verifier: Verifier,
    n_warps: usize,
}

impl UstcVerifier {
    /// Default warp count the adapter compiles kernels with.
    pub const DEFAULT_WARPS: usize = 4;

    /// An adapter over the given configuration.
    pub fn new(cfg: UniStcConfig) -> Self {
        UstcVerifier { verifier: Verifier::new(cfg), n_warps: Self::DEFAULT_WARPS }
    }

    /// Overrides the warp count used for kernel compilation checks.
    pub fn with_warps(mut self, n_warps: usize) -> Self {
        self.n_warps = n_warps.max(1);
        self
    }

    /// The wrapped verifier.
    pub fn verifier(&self) -> &Verifier {
        &self.verifier
    }
}

fn to_result(report: Report) -> Result<(), simkit::driver::VerifyError> {
    match report.first_error() {
        None => Ok(()),
        Some(d) => Err(simkit::driver::VerifyError {
            code: d.code.as_str().to_owned(),
            message: d.to_string(),
        }),
    }
}

impl simkit::driver::StreamVerifier for UstcVerifier {
    fn verify_spmv(&self, a: &BbcMatrix) -> Result<(), simkit::driver::VerifyError> {
        to_result(self.verifier.verify_spmv(a, self.n_warps))
    }

    fn verify_spmspv(
        &self,
        a: &BbcMatrix,
        x: &SparseVector,
    ) -> Result<(), simkit::driver::VerifyError> {
        to_result(self.verifier.verify_spmspv(a, x))
    }

    fn verify_spmm(&self, a: &BbcMatrix, n_cols: usize) -> Result<(), simkit::driver::VerifyError> {
        to_result(self.verifier.verify_spmm(a, n_cols))
    }

    fn verify_spgemm(
        &self,
        a: &BbcMatrix,
        b: &BbcMatrix,
    ) -> Result<(), simkit::driver::VerifyError> {
        to_result(self.verifier.verify_spgemm(a, b, self.n_warps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::{CooMatrix, CsrMatrix};
    use uni_stc::tms::T3Task;

    fn bbc(n: usize, entries: impl IntoIterator<Item = (usize, usize)>) -> BbcMatrix {
        let mut coo = CooMatrix::new(n, n);
        for (r, c) in entries {
            coo.push(r, c, 1.0);
        }
        BbcMatrix::from_csr(&CsrMatrix::try_from(coo).unwrap())
    }

    fn dense_task(k: u8, i: u8, j: u8) -> T3Task {
        T3Task { i, j, k, a_tile: u16::MAX, b_tile: u16::MAX, products: 64 }
    }

    #[test]
    fn legal_program_is_clean() {
        let v = Verifier::new(UniStcConfig::default());
        assert!(v.verify_program(&Program::spmv_block(8, 64)).is_clean());
        assert!(v.verify_program(&Program::spgemm_block(64, 4096)).is_clean());
        assert!(v.verify_program(&Program::new()).is_clean());
    }

    #[test]
    fn lifecycle_codes_match_program_run_errors() {
        let v = Verifier::new(UniStcConfig::default());
        // Anything verify_program flags as an error must also fail run(),
        // and vice versa, on these seeded streams.
        let mut numeric_first = Program::new();
        numeric_first.push(Uwmma::NumericMm, 4);
        let r = v.verify_program(&numeric_first);
        assert!(r.has_code(Code::NumericWithoutBatch));
        assert!(numeric_first.run().is_err());

        let mut double_gen = Program::new();
        double_gen.push(Uwmma::TaskGenMm, 2).push(Uwmma::TaskGenMv, 2);
        let r = v.verify_program(&double_gen);
        assert!(r.has_code(Code::OverlappingTaskGen));
        assert!(double_gen.run().is_err());
    }

    #[test]
    fn kind_mismatch_flagged() {
        let v = Verifier::new(UniStcConfig::default());
        let mut p = Program::new();
        p.push(Uwmma::TaskGenMv, 2).push(Uwmma::NumericMm, 4);
        let r = v.verify_program(&p);
        assert!(r.has_code(Code::KindMismatch));
        assert!(r.has_errors());
    }

    #[test]
    fn cost_and_dead_batch_are_warnings() {
        let v = Verifier::new(UniStcConfig::default());
        let mut p = Program::new();
        p.push(Uwmma::LoadMetaMv, 9); // clamped by hardware: warning
        p.push(Uwmma::TaskGenMv, 2); // never consumed: warning
        let r = v.verify_program(&p);
        assert!(r.has_code(Code::CostOutOfRange));
        assert!(r.has_code(Code::UnconsumedBatch));
        assert!(!r.has_errors());
        assert!(p.run().is_ok(), "warnings must not reject an executable stream");
    }

    #[test]
    fn segments_checked_against_lane_allocator_domain() {
        let v = Verifier::new(UniStcConfig::default());
        assert!(v.verify_segments(&[1, 2, 3, 4]).is_clean());
        let r = v.verify_segments(&[4, 5, 0]);
        let codes: Vec<_> = r.diagnostics().iter().map(|d| d.code).collect();
        assert_eq!(codes, vec![Code::SegmentTooLong, Code::SegmentTooLong]);
    }

    #[test]
    fn queue_bounds_enforced() {
        let v = Verifier::new(UniStcConfig::default());
        assert!(v.verify_queues(64, &[16, 16]).is_clean());
        let r = v.verify_queues(65, &[17]);
        assert!(r.has_code(Code::TileQueueOverflow));
        assert!(r.has_code(Code::DotQueueOverflow));
    }

    #[test]
    fn derived_models_verify_clean() {
        let cfg = UniStcConfig::default();
        let v = Verifier::new(cfg);
        let a = bbc(64, (0..64).flat_map(|i| [(i, i), (i, (i * 7) % 64)]));
        assert!(v.verify_model(&StreamModel::spmv(&cfg, &a)).is_clean());
        assert!(v.verify_model(&StreamModel::spmm(&cfg, &a, 40)).is_clean());
        assert!(v.verify_model(&StreamModel::spgemm(&cfg, &a, &a)).is_clean());
        assert!(v.verify_spmv(&a, 4).is_clean());
        assert!(v.verify_spgemm(&a, &a, 4).is_clean());
    }

    #[test]
    fn hand_crafted_route_violations_flagged() {
        let cfg = UniStcConfig::default();
        let v = Verifier::new(cfg);
        // Window of three dense tasks: the look-ahead activates 2 DPGs.
        let t3 = vec![
            T3Node { task: dense_task(0, 0, 0), dpg: 0 },
            T3Node { task: dense_task(0, 0, 1), dpg: 9 },  // outside the array
            T3Node { task: dense_task(0, 0, 2), dpg: 7 },  // gated
        ];
        let model = StreamModel {
            kernel: simkit::driver::Kernel::SpMV,
            t1: vec![crate::model::T1Node { block: Some(3), t3 }],
        };
        let r = v.verify_model(&model);
        assert!(r.has_code(Code::DpgRouteOutOfRange));
        assert!(r.has_code(Code::GatedDpgRoute));
        let oob = r.diagnostics().iter().find(|d| d.code == Code::DpgRouteOutOfRange);
        assert_eq!(oob.map(|d| d.span.block), Some(Some(3)));
    }

    #[test]
    fn same_layer_duplicate_output_is_conflict() {
        let cfg = UniStcConfig::default();
        let v = Verifier::new(cfg);
        let t3 = crate::model::route_tasks(
            &cfg,
            &[dense_task(0, 1, 1), dense_task(0, 1, 1)],
        );
        let model = StreamModel {
            kernel: simkit::driver::Kernel::SpMV,
            t1: vec![crate::model::T1Node { block: None, t3 }],
        };
        let r = v.verify_model(&model);
        assert!(r.has_code(Code::WriteConflict));
        assert!(!r.has_errors(), "write conflicts stall, they do not fault");
    }

    #[test]
    fn corrupt_matrix_flagged_before_model_walk() {
        let v = Verifier::new(UniStcConfig::default());
        let a = bbc(32, (0..32).map(|i| (i, i)));
        let mut bad = a.clone();
        bad.flip_bit(sparse::BbcField::BitmapLv2, 0, 3);
        let r = v.verify_spmv(&bad, 2);
        assert!(r.has_code(Code::CorruptMetadata));
        assert!(r.has_errors());
        assert!(v.verify_spmv(&a, 2).is_clean());
    }

    #[test]
    fn recompilation_diff_catches_tampered_costs() {
        let cfg = UniStcConfig::default();
        let v = Verifier::new(cfg);
        let a = bbc(48, (0..48).map(|i| (i, (i * 3) % 48)));
        let kernel = compile_spmv(&cfg, &a, 2);
        assert!(v.verify_spmv_against(&a, &kernel).is_clean());
        let mut tampered = kernel.clone();
        let program = &mut tampered.warps[0].program;
        let mut rebuilt = Program::new();
        for (i, instr) in program.instructions().iter().enumerate() {
            // Inflate the first numeric cost: the stream now claims more
            // cycles than the metadata supports.
            let cost = if i == 3 { instr.cost + 1 } else { instr.cost };
            rebuilt.push(instr.op, cost);
        }
        *program = rebuilt;
        let r = v.verify_spmv_against(&a, &tampered);
        assert!(r.has_code(Code::CostMismatch));
        assert_eq!(r.diagnostics().len(), 1);
    }
}
