//! Golden-diagnostics snapshot: the exact rendering of every `USTC` code.
//!
//! The stream verifier's value is its *stability*: downstream tooling and
//! CI gates match on `USTC007`, severities and span shapes. This module
//! runs a fixed suite of seeded illegal (and legal) artifacts through the
//! verifier and snapshots the human rendering of every report against
//! `golden/diagnostics.txt`. Any change to a code, severity, message shape
//! or span rendering shows up as a reviewable diff instead of silently
//! breaking consumers.
//!
//! Update flow: `ANALYSIS_BLESS=1 cargo test -p analysis` rewrites the
//! snapshot; the diff then documents the diagnostics change.

use std::path::PathBuf;

use simkit::driver::{Kernel, KernelReport};
use simkit::{EventCounts, UtilHistogram};
use sparse::{BbcField, BbcMatrix, CooMatrix, CsrMatrix};
use uni_stc::compiler::compile_spmv;
use uni_stc::isa::{Program, Uwmma};
use uni_stc::tms::T3Task;
use uni_stc::UniStcConfig;

use crate::concurrency::{verify_fold, verify_model_plan, verify_runtime_fold, verify_shard_plan};
use crate::diag::Report;
use crate::model::{route_tasks, StreamModel, T1Node, T3Node};
use crate::schedule::{explore, ModelBug, ModelConfig};
use crate::verifier::Verifier;

/// A deterministic diagonal-plus-stride BBC matrix (the snapshot pins it).
fn seeded_matrix(n: usize) -> BbcMatrix {
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 1.0);
        coo.push(i, (i * 7) % n, 2.0);
    }
    BbcMatrix::from_csr(&CsrMatrix::try_from(coo).expect("seeded coordinates are in range"))
}

fn dense_task(k: u8, i: u8, j: u8) -> T3Task {
    T3Task { i, j, k, a_tile: u16::MAX, b_tile: u16::MAX, products: 64 }
}

/// A deterministic per-shard [`KernelReport`] for the fold sections.
fn shard_report(cycles: u64, useful: u64, t1_tasks: u64) -> KernelReport {
    KernelReport {
        engine: "seeded".to_owned(),
        kernel: Kernel::SpMV,
        cycles,
        useful,
        t1_tasks,
        util: UtilHistogram::new(4),
        events: EventCounts::default(),
        energy: Default::default(),
    }
}

/// The seeded artifact suite: every `USTC` code exercised at least once,
/// plus one clean run, each paired with a stable snapshot section name.
pub fn seeded_suite() -> Vec<(&'static str, Report)> {
    let cfg = UniStcConfig::default();
    let v = Verifier::new(cfg);
    let mut suite = Vec::new();

    // USTC001: numeric with the lifecycle still IDLE.
    let mut p = Program::new();
    p.push(Uwmma::NumericMm, 4);
    suite.push(("numeric-without-batch", v.verify_program(&p)));

    // USTC002 (+004): overlapping task generation, batch never consumed.
    let mut p = Program::new();
    p.push(Uwmma::TaskGenMm, 2).push(Uwmma::TaskGenMv, 2);
    suite.push(("overlapping-task-gen", v.verify_program(&p)));

    // USTC005: mv batch consumed by an mm numeric.
    let mut p = Program::new();
    p.push(Uwmma::TaskGenMv, 2).push(Uwmma::NumericMm, 4);
    suite.push(("kind-mismatch", v.verify_program(&p)));

    // USTC003 + USTC004: lying cost model and a dead batch.
    let mut p = Program::new();
    p.push(Uwmma::LoadMetaMv, 9).push(Uwmma::TaskGenMv, 2);
    suite.push(("cost-out-of-range", v.verify_program(&p)));

    // USTC006: segments the SDPU lane allocator would reject.
    suite.push(("segment-overflow", v.verify_segments(&[4, 5, 0])));

    // USTC007 + USTC008: claimed occupancies above the queue capacities.
    suite.push(("queue-overflow", v.verify_queues(65, &[17])));

    // USTC010 + USTC011: routes outside the array and into a gated DPG.
    let routed = vec![
        T3Node { task: dense_task(0, 0, 0), dpg: 0 },
        T3Node { task: dense_task(0, 0, 1), dpg: 9 },
        T3Node { task: dense_task(0, 0, 2), dpg: 7 },
    ];
    let model = StreamModel {
        kernel: Kernel::SpMV,
        t1: vec![T1Node { block: Some(3), t3: routed }],
    };
    suite.push(("bad-routing", v.verify_model(&model)));

    // USTC009: same output tile twice within one K layer.
    let t3 = route_tasks(&cfg, &[dense_task(0, 1, 1), dense_task(0, 1, 1)]);
    let model = StreamModel { kernel: Kernel::SpMV, t1: vec![T1Node { block: None, t3 }] };
    suite.push(("write-conflict", v.verify_model(&model)));

    // USTC012: one flipped metadata bit, caught before any model walk.
    let mut corrupt = seeded_matrix(32);
    corrupt.flip_bit(BbcField::BitmapLv2, 0, 3);
    suite.push(("corrupt-metadata", v.verify_spmv(&corrupt, 2)));

    // USTC013: a stream whose numeric cost disagrees with the metadata.
    let a = seeded_matrix(48);
    let kernel = compile_spmv(&cfg, &a, 2);
    let mut tampered = kernel.clone();
    let mut rebuilt = Program::new();
    for (i, instr) in tampered.warps[0].program.instructions().iter().enumerate() {
        rebuilt.push(instr.op, if i == 3 { instr.cost + 1 } else { instr.cost });
    }
    tampered.warps[0].program = rebuilt;
    suite.push(("cost-mismatch", v.verify_spmv_against(&a, &tampered)));

    // Clean control: a real compiled SpMV stream verifies clean end-to-end.
    suite.push(("clean-spmv", v.verify_spmv(&seeded_matrix(64), 4)));

    // USTC014 + USTC015 + USTC016: one plan that overlaps (3..6 after
    // 0..4), leaves tasks 6..8 uncovered, and carries an empty shard and
    // an out-of-range shard.
    let plan = runtime::ShardPlan::from_ranges(10, vec![0..4, 3..6, 8..10, 4..4, 9..12]);
    suite.push(("shard-plan-violations", verify_shard_plan(&plan)));

    // USTC016 (model form): a plan sized for the wrong stream.
    let empty_model = StreamModel { kernel: Kernel::SpMV, t1: Vec::new() };
    let stale_plan = runtime::ShardPlan::contiguous(3, 1);
    suite.push(("stale-model-plan", verify_model_plan(&stale_plan, &empty_model)));

    // USTC017: a fold whose counters depend on shard encounter order.
    let shards: Vec<KernelReport> = (0..4).map(|i| shard_report(i + 1, 0, 1)).collect();
    let order_dependent = |acc: &mut KernelReport, next: &KernelReport| {
        acc.cycles = acc.cycles * 2 + next.cycles;
        acc.t1_tasks += next.t1_tasks;
    };
    suite.push(("order-dependent-fold", verify_fold(&shard_report(0, 0, 0), &shards, &order_dependent)));

    // USTC018: a fold that accumulates energy per shard instead of
    // leaving it for the single post-merge recomputation.
    let mut energetic: Vec<KernelReport> = (0..3).map(|i| shard_report(i, i, 1)).collect();
    for s in &mut energetic {
        s.energy.compute = 1.5;
    }
    let energy_refolding = |acc: &mut KernelReport, next: &KernelReport| {
        runtime::fold_report(acc, next);
        acc.energy.compute += next.energy.compute;
    };
    suite.push((
        "energy-refolding-fold",
        verify_fold(&shard_report(0, 0, 0), &energetic, &energy_refolding),
    ));

    // USTC019: the schedule explorer catching an injected lost-steal bug.
    let lost = explore(&ModelConfig::clean(2, 3).with_bug(ModelBug::DropStolenTask), 50_000);
    suite.push(("lost-task-schedule", lost.report()));

    // Clean concurrency control: the real contiguous planner, the real
    // runtime fold and the faithful pool model all verify clean.
    let mut clean = verify_shard_plan(&runtime::ShardPlan::contiguous(97, 8));
    clean.merge(verify_runtime_fold(&shard_report(0, 0, 0), &shards));
    clean.merge(explore(&ModelConfig::clean(2, 4), 20_000).report());
    suite.push(("clean-concurrency", clean));

    suite
}

/// Renders the full diagnostics snapshot: one `##`-headed section per
/// seeded artifact, each holding the report's human rendering.
pub fn diagnostics_snapshot() -> String {
    let mut out = String::new();
    out.push_str("# analysis diagnostics snapshot (ANALYSIS_BLESS=1 to update)\n");
    for (name, report) in seeded_suite() {
        out.push_str("## ");
        out.push_str(name);
        out.push('\n');
        out.push_str(&report.render_human());
    }
    out
}

/// Path of the blessed snapshot file (inside the crate, so it is versioned
/// with the diagnostics it pins).
pub fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden").join("diagnostics.txt")
}

/// Compares the current snapshot against the blessed file — or rewrites
/// the file when `ANALYSIS_BLESS=1` is set in the environment.
///
/// # Errors
///
/// Returns a description of the first diverging line (with its line
/// number) when the snapshot and the blessed file disagree, or an IO error
/// description when the file is missing and blessing is off.
pub fn check_or_bless() -> Result<(), String> {
    let current = diagnostics_snapshot();
    let path = golden_path();
    if std::env::var_os("ANALYSIS_BLESS").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("golden path has a parent"))
            .map_err(|e| format!("creating {}: {e}", path.display()))?;
        std::fs::write(&path, &current)
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        return Ok(());
    }
    let blessed = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "reading {}: {e}\nrun `ANALYSIS_BLESS=1 cargo test -p analysis` to create it",
            path.display()
        )
    })?;
    if blessed == current {
        return Ok(());
    }
    let mut blessed_lines = blessed.lines();
    let mut current_lines = current.lines();
    let mut lineno = 0usize;
    loop {
        lineno += 1;
        match (blessed_lines.next(), current_lines.next()) {
            (Some(b), Some(c)) if b == c => continue,
            (b, c) => {
                return Err(format!(
                    "diagnostics snapshot diverges from {} at line {lineno}:\n  blessed: {}\n  current: {}\n\
                     re-bless with ANALYSIS_BLESS=1 if the diagnostics change is intentional",
                    path.display(),
                    b.unwrap_or("<missing>"),
                    c.unwrap_or("<missing>"),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Code;

    #[test]
    fn snapshot_is_deterministic() {
        assert_eq!(diagnostics_snapshot(), diagnostics_snapshot());
    }

    #[test]
    fn suite_exercises_every_code() {
        let suite = seeded_suite();
        for code in Code::ALL {
            assert!(
                suite.iter().any(|(_, r)| r.has_code(code)),
                "{} not exercised by the seeded suite",
                code.as_str()
            );
        }
        let clean = suite.iter().find(|(n, _)| *n == "clean-spmv").expect("clean control");
        assert!(clean.1.is_clean(), "the clean control must stay clean");
    }

    #[test]
    fn snapshot_names_every_code_string() {
        let snap = diagnostics_snapshot();
        for code in Code::ALL {
            assert!(snap.contains(code.as_str()), "{} missing from snapshot", code.as_str());
        }
    }

    #[test]
    fn golden_matches_or_blesses() {
        if let Err(e) = check_or_bless() {
            panic!("{e}");
        }
    }

    #[test]
    fn golden_path_is_inside_the_crate() {
        let p = golden_path();
        assert!(p.ends_with("golden/diagnostics.txt"));
        assert!(p.starts_with(env!("CARGO_MANIFEST_DIR")));
    }
}
