//! Integration tests for the static stream verifier: seeded illegal
//! streams must be flagged with their exact stable `USTC` codes, every
//! conformance generator regime must verify clean, and the simkit driver
//! bridge must reject corrupted streams before simulating a cycle.

use analysis::{Code, StreamModel, T1Node, T3Node, UstcVerifier, Verifier};
use conformance::generators::{sparse_vector, Regime};
use simkit::driver::{Driver, Kernel};
use simkit::fault::FaultPlan;
use simkit::{driver, EnergyModel};
use sparse::{BbcField, BbcMatrix, CooMatrix, CsrMatrix};
use uni_stc::isa::{Program, Uwmma};
use uni_stc::tms::T3Task;
use uni_stc::{UniStc, UniStcConfig};

fn bbc(n: usize, entries: impl IntoIterator<Item = (usize, usize)>) -> BbcMatrix {
    let mut coo = CooMatrix::new(n, n);
    for (r, c) in entries {
        coo.push(r, c, 1.0);
    }
    BbcMatrix::from_csr(&CsrMatrix::try_from(coo).expect("in-range coordinates"))
}

fn dense_task(k: u8, i: u8, j: u8) -> T3Task {
    T3Task { i, j, k, a_tile: u16::MAX, b_tile: u16::MAX, products: 64 }
}

#[test]
fn out_of_order_uwmma_gets_exact_codes() {
    let v = Verifier::new(UniStcConfig::default());
    // Numeric before any task_gen: exactly USTC001.
    let mut p = Program::new();
    p.push(Uwmma::LoadMetaMv, 1).push(Uwmma::NumericMv, 4);
    let r = v.verify_program(&p);
    let codes: Vec<&str> = r.diagnostics().iter().map(|d| d.code.as_str()).collect();
    assert_eq!(codes, vec!["USTC001"]);
    // Overlapping task generation: USTC002 (plus the dead batch, USTC004).
    let mut p = Program::new();
    p.push(Uwmma::TaskGenMv, 2).push(Uwmma::TaskGenMv, 2);
    let r = v.verify_program(&p);
    assert_eq!(r.first_error().map(|d| d.code.as_str()), Some("USTC002"));
}

#[test]
fn five_lane_segment_is_ustc006() {
    let v = Verifier::new(UniStcConfig::default());
    let r = v.verify_segments(&[1, 5]);
    let codes: Vec<&str> = r.diagnostics().iter().map(|d| d.code.as_str()).collect();
    assert_eq!(codes, vec!["USTC006"]);
}

#[test]
fn queue_overflows_are_ustc007_and_008() {
    let v = Verifier::new(UniStcConfig::default());
    let r = v.verify_queues(65, &[16, 17]);
    let codes: Vec<&str> = r.diagnostics().iter().map(|d| d.code.as_str()).collect();
    assert_eq!(codes, vec!["USTC007", "USTC008"]);
}

#[test]
fn task_to_gated_dpg_is_ustc011() {
    let cfg = UniStcConfig::default();
    let v = Verifier::new(cfg);
    // Three dense tasks: the power-gating look-ahead activates 2 DPGs, so
    // slot 7 is gated even though it exists.
    let t3 = vec![
        T3Node { task: dense_task(0, 0, 0), dpg: 0 },
        T3Node { task: dense_task(0, 0, 1), dpg: 1 },
        T3Node { task: dense_task(0, 0, 2), dpg: 7 },
    ];
    let model =
        StreamModel { kernel: Kernel::SpMV, t1: vec![T1Node { block: Some(0), t3 }] };
    let r = v.verify_model(&model);
    let codes: Vec<&str> = r.diagnostics().iter().map(|d| d.code.as_str()).collect();
    assert_eq!(codes, vec!["USTC011"]);
    // With gating disabled in the config, the same route is legal.
    let open = UniStcConfig { power_gating: false, ..UniStcConfig::default() };
    assert!(Verifier::new(open).verify_model(&model).is_clean());
}

#[test]
fn every_conformance_regime_verifies_clean() {
    const SEED: u64 = 7;
    let v = Verifier::new(UniStcConfig::default());
    for regime in Regime::ALL {
        let a_csr = regime.generate(SEED);
        let a = BbcMatrix::from_csr(&a_csr);
        let x = sparse_vector(a_csr.ncols(), SEED);
        let b = BbcMatrix::from_csr(&a_csr.transpose());
        for (kernel, r) in [
            ("spmv", v.verify_spmv(&a, 4)),
            ("spmspv", v.verify_spmspv(&a, &x)),
            ("spmm", v.verify_spmm(&a, 20)),
            ("spgemm", v.verify_spgemm(&a, &b, 4)),
        ] {
            assert!(
                r.is_clean(),
                "{} {kernel} not clean:\n{}",
                regime.name(),
                r.render_human()
            );
        }
    }
}

#[test]
fn driver_gate_passes_clean_streams_unchanged() {
    let a = bbc(64, (0..64).flat_map(|i| [(i, i), (i, (i * 7) % 64)]));
    let engine = UniStc::default();
    let energy = EnergyModel::default();
    let verifier = UstcVerifier::new(UniStcConfig::default());
    let gated = Driver::new(&engine, &energy).verify_before_run(&verifier);
    let rep = gated.spmv(&a).expect("clean stream must pass the gate");
    let direct = driver::run_spmv(&engine, &energy, &a);
    assert_eq!(rep.counter_signature(), direct.counter_signature());
}

#[test]
fn driver_gate_rejects_corrupt_metadata_with_ustc012() {
    let a = bbc(32, (0..32).map(|i| (i, i)));
    let mut bad = a.clone();
    bad.flip_bit(BbcField::BitmapLv2, 0, 3);
    let engine = UniStc::default();
    let energy = EnergyModel::default();
    let verifier = UstcVerifier::new(UniStcConfig::default());
    let gated = Driver::new(&engine, &energy).verify_before_run(&verifier);
    let err = gated.spmv(&bad).expect_err("corrupt metadata must be rejected");
    assert_eq!(err.code, "USTC012");
    assert!(err.to_string().contains("USTC012"), "{err}");
    // Without the gate, the driver happily simulates the corrupted stream.
    assert!(Driver::new(&engine, &energy).spmv(&bad).is_ok());
}

#[test]
fn fault_bridge_catches_bit_flips_before_execution() {
    let a = bbc(48, (0..48).flat_map(|i| [(i, i), (i, (i * 5) % 48)]));
    let engine = UniStc::default();
    let energy = EnergyModel::default();
    let verifier = UstcVerifier::new(UniStcConfig::default());
    let gated = Driver::new(&engine, &energy).verify_before_run(&verifier);
    // A saturating fault plan flips metadata bits with certainty; the
    // static gate must catch the corruption before any cycle is simulated.
    let plan = FaultPlan::uniform(0xF00D, 1.0);
    let err = gated.spmv_faulted(&a, &plan).expect_err("metadata corruption must be caught");
    assert_eq!(err.code, "USTC012");
    // The empty plan injects nothing: the gated run matches the plain one.
    let none = FaultPlan::none(0xF00D);
    let rep = gated.spmv_faulted(&a, &none).expect("no faults, no rejection");
    assert_eq!(rep.events.faults_injected, 0);
    let ungated = Driver::new(&engine, &energy)
        .spmv_faulted(&a, &none)
        .expect("ungated driver never rejects");
    assert_eq!(rep.counter_signature(), ungated.counter_signature());
}

#[test]
fn compiled_kernel_verify_bridges_to_stable_codes() {
    let cfg = UniStcConfig::default();
    let a = bbc(64, (0..64).map(|i| (i, (i * 3) % 64)));
    let kernel = uni_stc::compiler::compile_spmv(&cfg, &a, 2);
    assert!(kernel.verify().is_ok());
    // The analysis verifier agrees, and resolves spans into the listings.
    let v = Verifier::new(cfg);
    let r = v.verify_kernel(&kernel);
    assert!(r.is_clean(), "{}", r.render_human());
    // Tamper a warp: both the kernel self-check and the verifier object.
    let mut tampered = kernel;
    let mut p = Program::new();
    p.push(Uwmma::NumericMm, 4);
    tampered.warps[0].program = p;
    let diags = tampered.verify().expect_err("illegal stream");
    assert_eq!(diags[0].warp, 0);
    let r = v.verify_kernel(&tampered);
    assert!(r.has_code(Code::NumericWithoutBatch));
    let d = r.first_error().expect("error present");
    assert_eq!(d.span.warp, Some(0));
    assert_eq!(d.span.instr, Some(0));
    // The span resolves against the listing's instruction index.
    let listing = tampered.warps[0].program.listing();
    assert!(listing.contains("   0:  stc.numeric.mm"));
}

#[test]
fn engine_reference_drive_matches_verifier_verdict() {
    // End-to-end: a stream the verifier calls clean must actually execute
    // (lifecycle-legal), and one it rejects must fail execution too.
    let cfg = UniStcConfig::default();
    let v = Verifier::new(cfg);
    let a = bbc(96, (0..96).flat_map(|i| [(i, i), (i, (i * 11) % 96)]));
    let kernel = uni_stc::compiler::compile_spmv(&cfg, &a, 3);
    assert!(v.verify_kernel(&kernel).is_clean());
    assert!(kernel.run().is_ok());
    let mut bad = Program::new();
    bad.push(Uwmma::TaskGenMv, 2).push(Uwmma::TaskGenMv, 2);
    assert!(v.verify_program(&bad).has_errors());
    assert!(bad.run().is_err());
}
