//! Caught-defect tests for the concurrency verifier: each classic
//! parallel-runtime bug, injected deliberately, must be rejected with its
//! exact stable `USTC` code — in both the human and the JSON renderings —
//! and the runtime's own pre-spawn gate must refuse the same artifacts.

use analysis::schedule::{explore, ModelBug, ModelConfig};
use analysis::{verify_fold, verify_runtime_fold, verify_shard_plan, Code};
use simkit::driver::{Kernel, KernelReport};
use simkit::{EventCounts, UtilHistogram};

fn shard_report(cycles: u64, useful: u64, t1_tasks: u64) -> KernelReport {
    KernelReport {
        engine: "test".to_owned(),
        kernel: Kernel::SpMV,
        cycles,
        useful,
        t1_tasks,
        util: UtilHistogram::new(4),
        events: EventCounts::default(),
        energy: Default::default(),
    }
}

/// Asserts `code` appears in both renderers of `report`.
fn assert_code_in_both_renderings(report: &analysis::Report, code: Code) {
    assert!(report.has_code(code), "expected {}:\n{}", code.as_str(), report.render_human());
    let human = report.render_human();
    let json = report.render_json();
    assert!(human.contains(code.as_str()), "{} missing from human rendering:\n{human}", code.as_str());
    assert!(json.contains(code.as_str()), "{} missing from JSON rendering:\n{json}", code.as_str());
}

#[test]
fn injected_overlapping_shard_plan_is_rejected_as_ustc014() {
    let plan = runtime::ShardPlan::from_ranges(8, vec![0..5, 4..8]);
    let report = verify_shard_plan(&plan);
    assert_code_in_both_renderings(&report, Code::ShardOverlap);
    assert!(!report.has_code(Code::ShardGap), "the overlap plan covers every task");

    // The runtime's own gate refuses the same plan before spawning.
    assert!(matches!(
        plan.verify_before_run(),
        Err(runtime::ShardPlanError::Overlap { shard: 1, other: 0, task: 4 })
    ));
}

#[test]
fn injected_non_commutative_fold_is_rejected_as_ustc017() {
    let shards: Vec<KernelReport> = (0..5).map(|i| shard_report(3 * i + 1, i, 1)).collect();
    let order_dependent = |acc: &mut KernelReport, next: &KernelReport| {
        acc.cycles = acc.cycles * 2 + next.cycles;
        acc.t1_tasks += next.t1_tasks;
    };
    let report = verify_fold(&shard_report(0, 0, 0), &shards, &order_dependent);
    assert_code_in_both_renderings(&report, Code::NonCommutativeFold);

    // The runtime's real fold stays a commutative monoid on the same shards.
    assert!(verify_runtime_fold(&shard_report(0, 0, 0), &shards).is_clean());
}

#[test]
fn injected_lost_task_schedule_is_rejected_as_ustc019() {
    let buggy = ModelConfig::clean(2, 3).with_bug(ModelBug::DropStolenTask);
    let exploration = explore(&buggy, 50_000);
    assert!(!exploration.is_clean(), "the dropped-steal defect must be caught");
    let report = exploration.report();
    assert_code_in_both_renderings(&report, Code::ScheduleDivergence);
}

#[test]
fn explorer_covers_a_thousand_interleavings_with_zero_divergence() {
    let mut total = 0u64;
    for (name, cfg, budget) in analysis::schedule::default_suite() {
        let e = explore(&cfg, budget);
        assert!(e.is_clean(), "{name} diverged: {:?}", e.violations);
        assert_eq!(e.signatures.len(), 1, "{name} produced multiple signatures");
        total += e.schedules;
    }
    assert!(total >= 1_000, "only {total} distinct interleavings explored");
}

#[test]
fn runtime_rejects_a_bad_plan_end_to_end_with_the_matching_code() {
    // The static verifier and the runtime gate agree on the same artifact:
    // every plan the verifier flags, the gate refuses, and vice versa.
    let plans = [
        runtime::ShardPlan::from_ranges(6, vec![0..3, 2..6]),
        runtime::ShardPlan::from_ranges(6, vec![0..2, 4..6]),
        runtime::ShardPlan::from_ranges(6, vec![0..6, 6..6]),
        runtime::ShardPlan::contiguous(6, 2),
    ];
    for plan in &plans {
        let statically_clean = verify_shard_plan(plan).is_clean();
        let gate_clean = plan.verify_before_run().is_ok();
        assert_eq!(statically_clean, gate_clean, "verifier and gate disagree on {plan:?}");
    }
}
