//! Sharded kernel execution with bit-identical report merging.
//!
//! Every quantity in a [`KernelReport`] is an order-independent
//! aggregate: `cycles`, `useful` and `t1_tasks` are sums over tasks,
//! [`EventCounts`](simkit::EventCounts) adds field-wise,
//! [`UtilHistogram`](simkit::UtilHistogram) merges by adding bucket
//! counts, and energy is a *function of the merged events*, recomputed
//! once at the end rather than summed. Sharding a task stream, running
//! each shard through the untouched serial driver
//! ([`simkit::driver::run_tasks`]), and folding the shard reports in
//! shard order therefore reproduces the serial report **bit for bit** —
//! the conformance golden counter snapshots pin this.
//!
//! The shards execute on the [`pool`](crate::pool), so they inherit its
//! resilience: a shard whose execution panics is retried and, past the
//! budget, surfaces as
//! [`DegradedError::RetriesExhausted`](uni_stc::multi::DegradedError);
//! injected chaos can never change the merged counters, only how long the
//! run takes.
//!
//! Worker threads also inherit the process-wide `sparse::kernels`
//! backend selection (`USTC_BACKEND` / `sparse::kernels::set_backend`)
//! — the choice is an ambient atomic, so no per-shard plumbing exists
//! and a sharded run under any backend folds to the same bit-identical
//! report as the serial driver.

use simkit::driver::{self, Kernel, KernelReport};
use simkit::{EnergyModel, T1Task, TileEngine};
use sparse::{BbcMatrix, SparseVector};
use uni_stc::multi::DegradedError;

use crate::pool::{self, RuntimeConfig, TaskOutcome};

/// A sharded kernel run: the merged report plus what the scheduler saw.
#[derive(Debug, Clone)]
pub struct ShardedRun {
    /// The merged kernel report — bit-identical to the serial driver's.
    pub report: KernelReport,
    /// Scheduler statistics (steals, retries, crashes, ...).
    pub stats: pool::RunStats,
    /// Present iff the pool fell below quorum and finished serially.
    pub degraded: Option<pool::DegradedReport>,
    /// Scheduler lifecycle trace (µs timestamps since the run started).
    pub trace: Vec<obs::TraceEvent>,
}

/// Shard length targeting ~4 shards per worker, so steals have something
/// to rebalance without shrinking shards into scheduling overhead.
pub fn shard_len(tasks: usize, threads: usize) -> usize {
    (tasks / (threads.max(1) * 4)).max(1)
}

/// Folds `next` into `acc`: plain sums, in shard order. Energy is *not*
/// merged here — it is recomputed from the merged events by the caller.
fn fold_report(acc: &mut KernelReport, next: &KernelReport) {
    acc.cycles += next.cycles;
    acc.useful += next.useful;
    acc.t1_tasks += next.t1_tasks;
    acc.util.merge(&next.util);
    acc.events += next.events;
}

/// Runs a materialised task stream sharded across the pool and merges a
/// report bit-identical to `driver::run_tasks` over the same stream.
///
/// # Errors
///
/// Returns [`DegradedError::RetriesExhausted`] if any shard kept failing
/// intrinsically (the engine panicked on it) beyond the retry budget; the
/// error names the first failed shard and its attempt count.
pub fn run_tasks_sharded(
    cfg: &RuntimeConfig,
    engine: &(dyn TileEngine + Sync),
    energy_model: &EnergyModel,
    kernel: Kernel,
    tasks: Vec<T1Task>,
) -> Result<ShardedRun, DegradedError> {
    let chunk = shard_len(tasks.len(), cfg.threads);
    let shards: Vec<&[T1Task]> = tasks.chunks(chunk).collect();
    let run = pool::run(cfg, &shards, |_, shard: &&[T1Task]| {
        Ok(driver::run_tasks(engine, energy_model, kernel, shard.iter().copied()))
    });
    // Seed the accumulator with the empty-stream report so the engine
    // name, kernel tag, lane count and zero counters match the serial
    // driver even when there are no tasks at all.
    let mut report = driver::run_tasks(engine, energy_model, kernel, std::iter::empty());
    for (index, outcome) in run.outcomes.iter().enumerate() {
        match outcome {
            TaskOutcome::Done(shard_report) => fold_report(&mut report, shard_report),
            TaskOutcome::Failed { attempts, .. } => {
                return Err(DegradedError::RetriesExhausted {
                    task: index as u64,
                    attempts: *attempts,
                })
            }
        }
    }
    report.energy = energy_model.energy(&report.events, &engine.network_costs());
    Ok(ShardedRun {
        report,
        stats: run.stats,
        degraded: run.degraded,
        trace: run.trace,
    })
}

/// Sharded SpMV — same task stream as [`driver::run_spmv`].
///
/// # Errors
///
/// See [`run_tasks_sharded`].
pub fn run_spmv_sharded(
    cfg: &RuntimeConfig,
    engine: &(dyn TileEngine + Sync),
    energy_model: &EnergyModel,
    a: &BbcMatrix,
) -> Result<ShardedRun, DegradedError> {
    run_tasks_sharded(cfg, engine, energy_model, Kernel::SpMV, driver::spmv_tasks(a))
}

/// Sharded SpMSpV — same task stream as [`driver::run_spmspv`].
///
/// # Errors
///
/// See [`run_tasks_sharded`].
pub fn run_spmspv_sharded(
    cfg: &RuntimeConfig,
    engine: &(dyn TileEngine + Sync),
    energy_model: &EnergyModel,
    a: &BbcMatrix,
    x: &SparseVector,
) -> Result<ShardedRun, DegradedError> {
    run_tasks_sharded(cfg, engine, energy_model, Kernel::SpMSpV, driver::spmspv_tasks(a, x))
}

/// Sharded SpMM — same task stream as [`driver::run_spmm`].
///
/// # Errors
///
/// See [`run_tasks_sharded`].
pub fn run_spmm_sharded(
    cfg: &RuntimeConfig,
    engine: &(dyn TileEngine + Sync),
    energy_model: &EnergyModel,
    a: &BbcMatrix,
    n_cols: usize,
) -> Result<ShardedRun, DegradedError> {
    run_tasks_sharded(cfg, engine, energy_model, Kernel::SpMM, driver::spmm_tasks(a, n_cols))
}

/// Sharded SpGEMM — same task stream as [`driver::run_spgemm`].
///
/// # Errors
///
/// See [`run_tasks_sharded`].
///
/// # Panics
///
/// Panics if the block grids do not conform, exactly as
/// [`driver::spgemm_tasks`] does.
pub fn run_spgemm_sharded(
    cfg: &RuntimeConfig,
    engine: &(dyn TileEngine + Sync),
    energy_model: &EnergyModel,
    a: &BbcMatrix,
    b: &BbcMatrix,
) -> Result<ShardedRun, DegradedError> {
    run_tasks_sharded(cfg, engine, energy_model, Kernel::SpGEMM, driver::spgemm_tasks(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::{NetworkCosts, T1Result};

    /// The reference engine from the driver tests: perfect packing.
    struct Ideal;

    impl TileEngine for Ideal {
        fn name(&self) -> &str {
            "ideal"
        }
        fn lanes(&self) -> usize {
            64
        }
        fn execute(&self, task: &T1Task) -> T1Result {
            let mut r = T1Result::new(64);
            let mut left = task.products();
            while left > 0 {
                let used = left.min(64) as usize;
                r.record_cycle(used);
                left -= used as u64;
            }
            r.useful = task.products();
            r
        }
        fn network_costs(&self) -> NetworkCosts {
            NetworkCosts::flat()
        }
    }

    fn demo_matrix(seed: u64) -> BbcMatrix {
        BbcMatrix::from_csr(&workloads::gen::random_uniform(96, 0.08, seed))
    }

    fn demo_vector(dim: usize, density: f64, seed: u64) -> SparseVector {
        let mut rng = sparse::rng::Rng64::new(seed);
        let mut idx = Vec::new();
        let mut vals = Vec::new();
        for i in 0..dim {
            if rng.next_f64() < density {
                idx.push(i as u32);
                vals.push(rng.next_f64());
            }
        }
        SparseVector::try_new(dim, idx, vals).expect("indices sorted by construction")
    }

    #[test]
    fn sharded_spmv_matches_serial_bit_for_bit() {
        let a = demo_matrix(1);
        let em = EnergyModel::default();
        let serial = driver::run_spmv(&Ideal, &em, &a);
        for threads in [1, 2, 8] {
            let cfg = RuntimeConfig::with_threads(threads);
            let sharded = run_spmv_sharded(&cfg, &Ideal, &em, &a).expect("no failures");
            assert_eq!(
                sharded.report.counter_signature(),
                serial.counter_signature(),
                "threads={threads}"
            );
            assert_eq!(sharded.report, serial, "full report, threads={threads}");
        }
    }

    #[test]
    fn sharded_run_inherits_ambient_backend() {
        // Worker threads read the process-wide backend selection; a
        // sharded run under any backend must fold to the serial
        // bitwise report bit for bit.
        use sparse::kernels::{with_backend, BackendKind};
        let a = demo_matrix(5);
        let em = EnergyModel::default();
        let serial = driver::run_spmv(&Ideal, &em, &a);
        for &kind in BackendKind::ALL {
            let sharded = with_backend(kind, || {
                let cfg = RuntimeConfig::with_threads(4);
                run_spmv_sharded(&cfg, &Ideal, &em, &a).expect("no failures")
            });
            assert_eq!(
                sharded.report.counter_signature(),
                serial.counter_signature(),
                "backend={}",
                kind.name()
            );
        }
    }

    #[test]
    fn all_four_kernels_match_serial() {
        let a = demo_matrix(2);
        let b = demo_matrix(3);
        let x = demo_vector(96, 0.25, 9);
        let em = EnergyModel::default();
        let cfg = RuntimeConfig::with_threads(4);
        let pairs = [
            (
                driver::run_spmv(&Ideal, &em, &a).counter_signature(),
                run_spmv_sharded(&cfg, &Ideal, &em, &a).expect("spmv").report.counter_signature(),
            ),
            (
                driver::run_spmspv(&Ideal, &em, &a, &x).counter_signature(),
                run_spmspv_sharded(&cfg, &Ideal, &em, &a, &x)
                    .expect("spmspv")
                    .report
                    .counter_signature(),
            ),
            (
                driver::run_spmm(&Ideal, &em, &a, 40).counter_signature(),
                run_spmm_sharded(&cfg, &Ideal, &em, &a, 40)
                    .expect("spmm")
                    .report
                    .counter_signature(),
            ),
            (
                driver::run_spgemm(&Ideal, &em, &a, &b).counter_signature(),
                run_spgemm_sharded(&cfg, &Ideal, &em, &a, &b)
                    .expect("spgemm")
                    .report
                    .counter_signature(),
            ),
        ];
        for (serial, sharded) in pairs {
            assert_eq!(serial, sharded);
        }
    }

    #[test]
    fn empty_stream_matches_serial() {
        let em = EnergyModel::default();
        let cfg = RuntimeConfig::with_threads(2);
        let sharded =
            run_tasks_sharded(&cfg, &Ideal, &em, Kernel::SpMM, Vec::new()).expect("empty");
        let serial = driver::run_tasks(&Ideal, &em, Kernel::SpMM, std::iter::empty());
        assert_eq!(sharded.report, serial);
        assert_eq!(sharded.report.t1_tasks, 0);
    }

    #[test]
    fn chaos_does_not_change_the_merged_counters() {
        let a = demo_matrix(4);
        let em = EnergyModel::default();
        let serial = driver::run_spmv(&Ideal, &em, &a);
        let chaos = crate::chaos::ChaosPlan::new(77, 0.05, 0.0, 0.1, 0).expect("valid rates");
        let cfg = RuntimeConfig {
            backoff: crate::pool::Backoff::none(),
            ..RuntimeConfig::with_threads(2).with_chaos(chaos)
        };
        let sharded = run_spmv_sharded(&cfg, &Ideal, &em, &a).expect("chaos is survivable");
        assert_eq!(sharded.report, serial);
    }

    #[test]
    fn panicking_engine_surfaces_retries_exhausted() {
        struct Grenade;
        impl TileEngine for Grenade {
            fn name(&self) -> &str {
                "grenade"
            }
            fn lanes(&self) -> usize {
                64
            }
            fn execute(&self, _task: &T1Task) -> T1Result {
                panic!("engine exploded")
            }
            fn network_costs(&self) -> NetworkCosts {
                NetworkCosts::flat()
            }
        }
        let a = demo_matrix(5);
        let em = EnergyModel::default();
        let cfg = RuntimeConfig {
            max_retries: 1,
            backoff: crate::pool::Backoff::none(),
            ..RuntimeConfig::with_threads(2)
        };
        match run_spmv_sharded(&cfg, &Grenade, &em, &a) {
            Err(DegradedError::RetriesExhausted { attempts, .. }) => {
                assert_eq!(attempts, 2, "first try + one retry");
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
    }

    #[test]
    fn shard_len_scales_with_threads() {
        assert_eq!(shard_len(0, 4), 1);
        assert_eq!(shard_len(100, 1), 25);
        assert_eq!(shard_len(1000, 8), 31);
        assert!(shard_len(3, 8) >= 1);
    }
}
