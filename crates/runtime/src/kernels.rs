//! Sharded kernel execution with bit-identical report merging.
//!
//! Every quantity in a [`KernelReport`] is an order-independent
//! aggregate: `cycles`, `useful` and `t1_tasks` are sums over tasks,
//! [`EventCounts`](simkit::EventCounts) adds field-wise,
//! [`UtilHistogram`](simkit::UtilHistogram) merges by adding bucket
//! counts, and energy is a *function of the merged events*, recomputed
//! once at the end rather than summed. Sharding a task stream, running
//! each shard through the untouched serial driver
//! ([`simkit::driver::run_tasks`]), and folding the shard reports in
//! shard order therefore reproduces the serial report **bit for bit** —
//! the conformance golden counter snapshots pin this.
//!
//! The shards execute on the [`pool`](crate::pool), so they inherit its
//! resilience: a shard whose execution panics is retried and, past the
//! budget, surfaces as
//! [`DegradedError::RetriesExhausted`](uni_stc::multi::DegradedError);
//! injected chaos can never change the merged counters, only how long the
//! run takes.
//!
//! Worker threads also inherit the process-wide `sparse::kernels`
//! backend selection (`USTC_BACKEND` / `sparse::kernels::set_backend`)
//! — the choice is an ambient atomic, so no per-shard plumbing exists
//! and a sharded run under any backend folds to the same bit-identical
//! report as the serial driver.

use simkit::driver::{self, Kernel, KernelReport};
use simkit::{EnergyModel, T1Task, TileEngine};
use sparse::{BbcMatrix, SparseVector};
use uni_stc::multi::DegradedError;

use crate::pool::{self, RuntimeConfig, TaskOutcome};

/// A sharded kernel run: the merged report plus what the scheduler saw.
#[derive(Debug, Clone)]
pub struct ShardedRun {
    /// The merged kernel report — bit-identical to the serial driver's.
    pub report: KernelReport,
    /// Scheduler statistics (steals, retries, crashes, ...).
    pub stats: pool::RunStats,
    /// Present iff the pool fell below quorum and finished serially.
    pub degraded: Option<pool::DegradedReport>,
    /// Scheduler lifecycle trace (µs timestamps since the run started).
    pub trace: Vec<obs::TraceEvent>,
}

/// Shard length targeting ~4 shards per worker, so steals have something
/// to rebalance without shrinking shards into scheduling overhead.
pub fn shard_len(tasks: usize, threads: usize) -> usize {
    (tasks / (threads.max(1) * 4)).max(1)
}

/// Folds `next` into `acc`: plain sums, in shard order. Energy is *not*
/// merged here — it is recomputed from the merged events by the caller.
///
/// Public so `analysis::concurrency` can verify the fold itself: the
/// merged report is order-independent (a commutative monoid over shard
/// reports) precisely because every field is a plain sum/merge and the
/// energy field is left untouched.
pub fn fold_report(acc: &mut KernelReport, next: &KernelReport) {
    acc.cycles += next.cycles;
    acc.useful += next.useful;
    acc.t1_tasks += next.t1_tasks;
    acc.util.merge(&next.util);
    acc.events += next.events;
}

/// Why a [`ShardPlan`] is illegal to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPlanError {
    /// A shard's range is empty (`start >= end`): it would produce a
    /// report for no tasks and signals a broken planner.
    EmptyShard {
        /// Index of the degenerate shard.
        shard: usize,
    },
    /// A shard's range extends past the end of the task stream.
    OutOfRange {
        /// Index of the offending shard.
        shard: usize,
        /// The shard's (exclusive) end.
        end: usize,
        /// The stream length it overruns.
        tasks: usize,
    },
    /// Two shards both claim the same task index — executing the plan
    /// would double-count that task's contribution to every counter.
    Overlap {
        /// The later of the two claiming shards.
        shard: usize,
        /// The earlier claiming shard.
        other: usize,
        /// The doubly-claimed task index.
        task: usize,
    },
    /// A task index is claimed by no shard — executing the plan would
    /// silently drop that task from the merged report.
    Gap {
        /// The first unclaimed task index.
        task: usize,
    },
}

impl std::fmt::Display for ShardPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardPlanError::EmptyShard { shard } => {
                write!(f, "shard {shard} is empty")
            }
            ShardPlanError::OutOfRange { shard, end, tasks } => {
                write!(f, "shard {shard} ends at {end}, past the {tasks}-task stream")
            }
            ShardPlanError::Overlap { shard, other, task } => {
                write!(f, "shards {other} and {shard} both claim task {task}")
            }
            ShardPlanError::Gap { task } => {
                write!(f, "task {task} is claimed by no shard")
            }
        }
    }
}

impl std::error::Error for ShardPlanError {}

/// How a task stream is split across pool workers: a list of contiguous
/// index ranges over `0..tasks`.
///
/// A plan is *legal* when its shards are pairwise disjoint, cover every
/// task index exactly once, and none is empty or out of range —
/// [`ShardPlan::verify_before_run`] proves this before any worker is
/// spawned, and `analysis::concurrency::verify_shard_plan` turns the
/// same checks into `USTC014`–`USTC016` diagnostics. Plans built by
/// [`ShardPlan::contiguous`] are legal by construction; hand-built plans
/// ([`ShardPlan::from_ranges`]) carry whatever the caller put in them —
/// that is what the verifier is for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    tasks: usize,
    shards: Vec<std::ops::Range<usize>>,
}

impl ShardPlan {
    /// The plan [`run_tasks_sharded`] uses: contiguous chunks of
    /// [`shard_len`] tasks, targeting ~4 shards per worker.
    pub fn contiguous(tasks: usize, threads: usize) -> Self {
        let chunk = shard_len(tasks, threads);
        let mut shards = Vec::new();
        let mut start = 0;
        while start < tasks {
            let end = (start + chunk).min(tasks);
            shards.push(start..end);
            start = end;
        }
        ShardPlan { tasks, shards }
    }

    /// An arbitrary plan over a `tasks`-long stream. Nothing is checked
    /// here — run [`ShardPlan::verify_before_run`] (or the analysis
    /// verifier) before executing it.
    pub fn from_ranges(tasks: usize, shards: Vec<std::ops::Range<usize>>) -> Self {
        ShardPlan { tasks, shards }
    }

    /// Length of the task stream the plan covers.
    pub fn tasks(&self) -> usize {
        self.tasks
    }

    /// The shard ranges, in execution-submission order.
    pub fn shards(&self) -> &[std::ops::Range<usize>] {
        &self.shards
    }

    /// Proves the plan safe to execute: every shard in range and
    /// non-empty, shards pairwise disjoint, every task covered.
    ///
    /// This is the gate [`run_tasks_planned`] applies before spawning a
    /// single worker; the first violation (in shard order, then gap
    /// order) is returned.
    ///
    /// # Errors
    ///
    /// Returns the first [`ShardPlanError`] the plan violates.
    pub fn verify_before_run(&self) -> Result<(), ShardPlanError> {
        // `owner[i]` = 1 + index of the shard that claimed task i.
        let mut owner = vec![0usize; self.tasks];
        for (s, range) in self.shards.iter().enumerate() {
            if range.start >= range.end {
                return Err(ShardPlanError::EmptyShard { shard: s });
            }
            if range.end > self.tasks {
                return Err(ShardPlanError::OutOfRange {
                    shard: s,
                    end: range.end,
                    tasks: self.tasks,
                });
            }
            for task in range.clone() {
                if owner[task] != 0 {
                    return Err(ShardPlanError::Overlap {
                        shard: s,
                        other: owner[task] - 1,
                        task,
                    });
                }
                owner[task] = s + 1;
            }
        }
        if let Some(task) = owner.iter().position(|&o| o == 0) {
            return Err(ShardPlanError::Gap { task });
        }
        Ok(())
    }
}

/// Why a planned run produced no merged report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlannedRunError {
    /// The plan failed [`ShardPlan::verify_before_run`]; no worker was
    /// spawned and no task executed.
    Rejected(ShardPlanError),
    /// The plan was legal but a shard kept failing intrinsically past the
    /// retry budget.
    Execution(DegradedError),
}

impl std::fmt::Display for PlannedRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlannedRunError::Rejected(e) => write!(f, "shard plan rejected: {e}"),
            PlannedRunError::Execution(e) => write!(f, "planned run failed: {e}"),
        }
    }
}

impl std::error::Error for PlannedRunError {}

/// Runs a materialised task stream sharded across the pool and merges a
/// report bit-identical to `driver::run_tasks` over the same stream.
///
/// # Errors
///
/// Returns [`DegradedError::RetriesExhausted`] if any shard kept failing
/// intrinsically (the engine panicked on it) beyond the retry budget; the
/// error names the first failed shard and its attempt count.
pub fn run_tasks_sharded(
    cfg: &RuntimeConfig,
    engine: &(dyn TileEngine + Sync),
    energy_model: &EnergyModel,
    kernel: Kernel,
    tasks: Vec<T1Task>,
) -> Result<ShardedRun, DegradedError> {
    let plan = ShardPlan::contiguous(tasks.len(), cfg.threads);
    debug_assert!(plan.verify_before_run().is_ok(), "contiguous plans are legal");
    run_planned_unchecked(cfg, &plan, engine, energy_model, kernel, &tasks)
}

/// [`run_tasks_sharded`] with a caller-supplied [`ShardPlan`]. The plan
/// is verified *before any worker is spawned*: an illegal plan (overlap,
/// gap, empty or out-of-range shard) is rejected with
/// [`PlannedRunError::Rejected`] and zero tasks execute.
///
/// # Errors
///
/// [`PlannedRunError::Rejected`] when the plan fails
/// [`ShardPlan::verify_before_run`]; [`PlannedRunError::Execution`] when
/// a shard failed intrinsically past the retry budget.
pub fn run_tasks_planned(
    cfg: &RuntimeConfig,
    plan: &ShardPlan,
    engine: &(dyn TileEngine + Sync),
    energy_model: &EnergyModel,
    kernel: Kernel,
    tasks: &[T1Task],
) -> Result<ShardedRun, PlannedRunError> {
    if plan.tasks() != tasks.len() {
        // A plan for the wrong stream length is a coverage violation of
        // one kind or the other; surface it through the same gate.
        let stale = ShardPlan::from_ranges(tasks.len(), plan.shards().to_vec());
        return match stale.verify_before_run() {
            Err(e) => Err(PlannedRunError::Rejected(e)),
            // Every shard fits inside the (longer) actual stream: the
            // plan still leaves the tail uncovered.
            Ok(()) => Err(PlannedRunError::Rejected(ShardPlanError::Gap {
                task: plan.tasks().min(tasks.len()),
            })),
        };
    }
    plan.verify_before_run().map_err(PlannedRunError::Rejected)?;
    run_planned_unchecked(cfg, plan, engine, energy_model, kernel, tasks)
        .map_err(PlannedRunError::Execution)
}

/// Executes an already-verified plan: one pool task per shard, fold in
/// shard order, energy recomputed once from the merged events.
fn run_planned_unchecked(
    cfg: &RuntimeConfig,
    plan: &ShardPlan,
    engine: &(dyn TileEngine + Sync),
    energy_model: &EnergyModel,
    kernel: Kernel,
    tasks: &[T1Task],
) -> Result<ShardedRun, DegradedError> {
    let shards: Vec<&[T1Task]> =
        plan.shards().iter().map(|r| &tasks[r.start.min(tasks.len())..r.end.min(tasks.len())]).collect();
    let run = pool::run(cfg, &shards, |_, shard: &&[T1Task]| {
        Ok(driver::run_tasks(engine, energy_model, kernel, shard.iter().copied()))
    });
    // Seed the accumulator with the empty-stream report so the engine
    // name, kernel tag, lane count and zero counters match the serial
    // driver even when there are no tasks at all.
    let mut report = driver::run_tasks(engine, energy_model, kernel, std::iter::empty());
    for (index, outcome) in run.outcomes.iter().enumerate() {
        match outcome {
            TaskOutcome::Done(shard_report) => fold_report(&mut report, shard_report),
            TaskOutcome::Failed { attempts, .. } => {
                return Err(DegradedError::RetriesExhausted {
                    task: index as u64,
                    attempts: *attempts,
                })
            }
        }
    }
    report.energy = energy_model.energy(&report.events, &engine.network_costs());
    Ok(ShardedRun {
        report,
        stats: run.stats,
        degraded: run.degraded,
        trace: run.trace,
    })
}

/// Sharded SpMV — same task stream as [`driver::run_spmv`].
///
/// # Errors
///
/// See [`run_tasks_sharded`].
pub fn run_spmv_sharded(
    cfg: &RuntimeConfig,
    engine: &(dyn TileEngine + Sync),
    energy_model: &EnergyModel,
    a: &BbcMatrix,
) -> Result<ShardedRun, DegradedError> {
    run_tasks_sharded(cfg, engine, energy_model, Kernel::SpMV, driver::spmv_tasks(a))
}

/// Sharded SpMSpV — same task stream as [`driver::run_spmspv`].
///
/// # Errors
///
/// See [`run_tasks_sharded`].
pub fn run_spmspv_sharded(
    cfg: &RuntimeConfig,
    engine: &(dyn TileEngine + Sync),
    energy_model: &EnergyModel,
    a: &BbcMatrix,
    x: &SparseVector,
) -> Result<ShardedRun, DegradedError> {
    run_tasks_sharded(cfg, engine, energy_model, Kernel::SpMSpV, driver::spmspv_tasks(a, x))
}

/// Sharded SpMM — same task stream as [`driver::run_spmm`].
///
/// # Errors
///
/// See [`run_tasks_sharded`].
pub fn run_spmm_sharded(
    cfg: &RuntimeConfig,
    engine: &(dyn TileEngine + Sync),
    energy_model: &EnergyModel,
    a: &BbcMatrix,
    n_cols: usize,
) -> Result<ShardedRun, DegradedError> {
    run_tasks_sharded(cfg, engine, energy_model, Kernel::SpMM, driver::spmm_tasks(a, n_cols))
}

/// Sharded SpGEMM — same task stream as [`driver::run_spgemm`].
///
/// # Errors
///
/// See [`run_tasks_sharded`].
///
/// # Panics
///
/// Panics if the block grids do not conform, exactly as
/// [`driver::spgemm_tasks`] does.
pub fn run_spgemm_sharded(
    cfg: &RuntimeConfig,
    engine: &(dyn TileEngine + Sync),
    energy_model: &EnergyModel,
    a: &BbcMatrix,
    b: &BbcMatrix,
) -> Result<ShardedRun, DegradedError> {
    run_tasks_sharded(cfg, engine, energy_model, Kernel::SpGEMM, driver::spgemm_tasks(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::{NetworkCosts, T1Result};

    /// The reference engine from the driver tests: perfect packing.
    struct Ideal;

    impl TileEngine for Ideal {
        fn name(&self) -> &str {
            "ideal"
        }
        fn lanes(&self) -> usize {
            64
        }
        fn execute(&self, task: &T1Task) -> T1Result {
            let mut r = T1Result::new(64);
            let mut left = task.products();
            while left > 0 {
                let used = left.min(64) as usize;
                r.record_cycle(used);
                left -= used as u64;
            }
            r.useful = task.products();
            r
        }
        fn network_costs(&self) -> NetworkCosts {
            NetworkCosts::flat()
        }
    }

    fn demo_matrix(seed: u64) -> BbcMatrix {
        BbcMatrix::from_csr(&workloads::gen::random_uniform(96, 0.08, seed))
    }

    fn demo_vector(dim: usize, density: f64, seed: u64) -> SparseVector {
        let mut rng = sparse::rng::Rng64::new(seed);
        let mut idx = Vec::new();
        let mut vals = Vec::new();
        for i in 0..dim {
            if rng.next_f64() < density {
                idx.push(i as u32);
                vals.push(rng.next_f64());
            }
        }
        SparseVector::try_new(dim, idx, vals).expect("indices sorted by construction")
    }

    #[test]
    fn sharded_spmv_matches_serial_bit_for_bit() {
        let a = demo_matrix(1);
        let em = EnergyModel::default();
        let serial = driver::run_spmv(&Ideal, &em, &a);
        for threads in [1, 2, 8] {
            let cfg = RuntimeConfig::with_threads(threads);
            let sharded = run_spmv_sharded(&cfg, &Ideal, &em, &a).expect("no failures");
            assert_eq!(
                sharded.report.counter_signature(),
                serial.counter_signature(),
                "threads={threads}"
            );
            assert_eq!(sharded.report, serial, "full report, threads={threads}");
        }
    }

    #[test]
    fn sharded_run_inherits_ambient_backend() {
        // Worker threads read the process-wide backend selection; a
        // sharded run under any backend must fold to the serial
        // bitwise report bit for bit.
        use sparse::kernels::{with_backend, BackendKind};
        let a = demo_matrix(5);
        let em = EnergyModel::default();
        let serial = driver::run_spmv(&Ideal, &em, &a);
        for &kind in BackendKind::ALL {
            let sharded = with_backend(kind, || {
                let cfg = RuntimeConfig::with_threads(4);
                run_spmv_sharded(&cfg, &Ideal, &em, &a).expect("no failures")
            });
            assert_eq!(
                sharded.report.counter_signature(),
                serial.counter_signature(),
                "backend={}",
                kind.name()
            );
        }
    }

    #[test]
    fn all_four_kernels_match_serial() {
        let a = demo_matrix(2);
        let b = demo_matrix(3);
        let x = demo_vector(96, 0.25, 9);
        let em = EnergyModel::default();
        let cfg = RuntimeConfig::with_threads(4);
        let pairs = [
            (
                driver::run_spmv(&Ideal, &em, &a).counter_signature(),
                run_spmv_sharded(&cfg, &Ideal, &em, &a).expect("spmv").report.counter_signature(),
            ),
            (
                driver::run_spmspv(&Ideal, &em, &a, &x).counter_signature(),
                run_spmspv_sharded(&cfg, &Ideal, &em, &a, &x)
                    .expect("spmspv")
                    .report
                    .counter_signature(),
            ),
            (
                driver::run_spmm(&Ideal, &em, &a, 40).counter_signature(),
                run_spmm_sharded(&cfg, &Ideal, &em, &a, 40)
                    .expect("spmm")
                    .report
                    .counter_signature(),
            ),
            (
                driver::run_spgemm(&Ideal, &em, &a, &b).counter_signature(),
                run_spgemm_sharded(&cfg, &Ideal, &em, &a, &b)
                    .expect("spgemm")
                    .report
                    .counter_signature(),
            ),
        ];
        for (serial, sharded) in pairs {
            assert_eq!(serial, sharded);
        }
    }

    #[test]
    fn empty_stream_matches_serial() {
        let em = EnergyModel::default();
        let cfg = RuntimeConfig::with_threads(2);
        let sharded =
            run_tasks_sharded(&cfg, &Ideal, &em, Kernel::SpMM, Vec::new()).expect("empty");
        let serial = driver::run_tasks(&Ideal, &em, Kernel::SpMM, std::iter::empty());
        assert_eq!(sharded.report, serial);
        assert_eq!(sharded.report.t1_tasks, 0);
    }

    #[test]
    fn chaos_does_not_change_the_merged_counters() {
        let a = demo_matrix(4);
        let em = EnergyModel::default();
        let serial = driver::run_spmv(&Ideal, &em, &a);
        let chaos = crate::chaos::ChaosPlan::new(77, 0.05, 0.0, 0.1, 0).expect("valid rates");
        let cfg = RuntimeConfig {
            backoff: crate::pool::Backoff::none(),
            ..RuntimeConfig::with_threads(2).with_chaos(chaos)
        };
        let sharded = run_spmv_sharded(&cfg, &Ideal, &em, &a).expect("chaos is survivable");
        assert_eq!(sharded.report, serial);
    }

    #[test]
    fn panicking_engine_surfaces_retries_exhausted() {
        struct Grenade;
        impl TileEngine for Grenade {
            fn name(&self) -> &str {
                "grenade"
            }
            fn lanes(&self) -> usize {
                64
            }
            fn execute(&self, _task: &T1Task) -> T1Result {
                panic!("engine exploded")
            }
            fn network_costs(&self) -> NetworkCosts {
                NetworkCosts::flat()
            }
        }
        let a = demo_matrix(5);
        let em = EnergyModel::default();
        let cfg = RuntimeConfig {
            max_retries: 1,
            backoff: crate::pool::Backoff::none(),
            ..RuntimeConfig::with_threads(2)
        };
        match run_spmv_sharded(&cfg, &Grenade, &em, &a) {
            Err(DegradedError::RetriesExhausted { attempts, .. }) => {
                assert_eq!(attempts, 2, "first try + one retry");
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
    }

    #[test]
    fn shard_len_scales_with_threads() {
        assert_eq!(shard_len(0, 4), 1);
        assert_eq!(shard_len(100, 1), 25);
        assert_eq!(shard_len(1000, 8), 31);
        assert!(shard_len(3, 8) >= 1);
    }

    #[test]
    fn contiguous_plans_are_legal_by_construction() {
        for tasks in [0, 1, 3, 17, 100, 1000] {
            for threads in [1, 2, 8, 64] {
                let plan = ShardPlan::contiguous(tasks, threads);
                assert_eq!(plan.tasks(), tasks);
                assert!(plan.verify_before_run().is_ok(), "tasks={tasks} threads={threads}");
                let covered: usize = plan.shards().iter().map(|r| r.len()).sum();
                assert_eq!(covered, tasks);
            }
        }
    }

    #[test]
    fn illegal_plans_are_rejected_with_the_specific_violation() {
        let overlap = ShardPlan::from_ranges(8, vec![0..5, 4..8]);
        assert_eq!(
            overlap.verify_before_run(),
            Err(ShardPlanError::Overlap { shard: 1, other: 0, task: 4 })
        );
        let gap = ShardPlan::from_ranges(8, vec![0..3, 5..8]);
        assert_eq!(gap.verify_before_run(), Err(ShardPlanError::Gap { task: 3 }));
        let empty = ShardPlan::from_ranges(4, vec![0..4, 2..2]);
        assert_eq!(empty.verify_before_run(), Err(ShardPlanError::EmptyShard { shard: 1 }));
        let oob = ShardPlan::from_ranges(4, std::iter::once(0..6).collect());
        assert_eq!(
            oob.verify_before_run(),
            Err(ShardPlanError::OutOfRange { shard: 0, end: 6, tasks: 4 })
        );
        for e in [
            overlap.verify_before_run().unwrap_err(),
            gap.verify_before_run().unwrap_err(),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn planned_run_rejects_before_spawning_workers() {
        use std::sync::atomic::{AtomicU64, Ordering};
        static EXECUTED: AtomicU64 = AtomicU64::new(0);
        struct Counting;
        impl TileEngine for Counting {
            fn name(&self) -> &str {
                "counting"
            }
            fn lanes(&self) -> usize {
                64
            }
            fn execute(&self, task: &T1Task) -> T1Result {
                EXECUTED.fetch_add(1, Ordering::SeqCst);
                let mut r = T1Result::new(64);
                r.useful = task.products();
                r
            }
            fn network_costs(&self) -> NetworkCosts {
                NetworkCosts::flat()
            }
        }
        let tasks = driver::spmv_tasks(&demo_matrix(6));
        let bad = ShardPlan::from_ranges(tasks.len(), vec![0..tasks.len(), 0..1]);
        let cfg = RuntimeConfig::with_threads(2);
        let em = EnergyModel::default();
        let before = EXECUTED.load(Ordering::SeqCst);
        let err = run_tasks_planned(&cfg, &bad, &Counting, &em, Kernel::SpMV, &tasks)
            .expect_err("overlapping plan must be rejected");
        assert!(matches!(err, PlannedRunError::Rejected(ShardPlanError::Overlap { .. })), "{err}");
        assert_eq!(EXECUTED.load(Ordering::SeqCst), before, "no task may have executed");
    }

    #[test]
    fn planned_run_rejects_a_stale_plan_for_the_wrong_stream() {
        let tasks = driver::spmv_tasks(&demo_matrix(6));
        let stale = ShardPlan::contiguous(tasks.len() + 3, 2);
        let cfg = RuntimeConfig::with_threads(2);
        let em = EnergyModel::default();
        let err = run_tasks_planned(&cfg, &stale, &Ideal, &em, Kernel::SpMV, &tasks)
            .expect_err("plan length must match the stream");
        assert!(matches!(err, PlannedRunError::Rejected(_)), "{err}");
    }

    #[test]
    fn legal_custom_plan_matches_serial_bit_for_bit() {
        let a = demo_matrix(7);
        let em = EnergyModel::default();
        let tasks = driver::spmv_tasks(&a);
        let serial = driver::run_spmv(&Ideal, &em, &a);
        // A lopsided but legal plan: one big shard plus singletons.
        let mut ranges: Vec<_> = std::iter::once(0..tasks.len() / 2).collect();
        for t in tasks.len() / 2..tasks.len() {
            ranges.push(t..t + 1);
        }
        let plan = ShardPlan::from_ranges(tasks.len(), ranges);
        let cfg = RuntimeConfig::with_threads(3);
        let run = run_tasks_planned(&cfg, &plan, &Ideal, &em, Kernel::SpMV, &tasks)
            .expect("legal plan executes");
        assert_eq!(run.report, serial);
    }
}
