//! Resilient parallel runtime for the Uni-STC reproduction.
//!
//! The simulator's corpus sweeps are embarrassingly parallel — every T1
//! task and every corpus matrix is independent — but a naive thread pool
//! would trade away the two properties the repo is built on:
//! **bit-exact determinism** (the conformance golden snapshots pin every
//! counter) and **robustness** (a panicking engine must cost one report,
//! not the process). This crate provides a scheduler that keeps both
//! while the machinery underneath it is actively failing:
//!
//! * [`pool`] — a supervised work-stealing pool over `std::thread` (no
//!   external dependencies). Per-attempt panic isolation via
//!   `catch_unwind`, bounded retry with exponential [`Backoff`], a
//!   watchdog that reassigns attempts past their deadline, and graceful
//!   degradation: when crashes push the pool below
//!   [`RuntimeConfig::quorum`], the supervisor drains the remaining work
//!   serially and reports a [`DegradedReport`] instead of erroring.
//! * [`chaos`] — a seeded [`ChaosPlan`] (the scheduler-level sibling of
//!   `simkit::fault::FaultPlan`) that deterministically injects worker
//!   crashes, stalls and transient task failures, so the resilience
//!   paths above are exercised by fixed-seed tests rather than trusted.
//! * [`kernels`] — sharded kernel execution: task streams split into
//!   shards, each shard run through the untouched serial driver, and the
//!   shard reports folded into a [`simkit::driver::KernelReport`] that is
//!   bit-identical to the serial one (every counter is an
//!   order-independent sum; energy is recomputed from the merged events).
//!
//! Scheduler lifecycle (worker spawn / steal / retry / crash / degrade)
//! is recorded as [`obs::TraceEvent`]s and can be replayed into any
//! `obs::TraceSink` — including the Chrome-trace exporter, which gives
//! the scheduler its own track in Perfetto.
//!
//! # Example
//!
//! ```
//! use runtime::{run, RuntimeConfig, TaskOutcome, ChaosPlan, Backoff};
//!
//! let inputs: Vec<u64> = (0..64).collect();
//! // Two workers, deterministic 5 % transient-failure injection.
//! let chaos = ChaosPlan::new(7, 0.0, 0.0, 0.05, 0).unwrap();
//! let cfg = RuntimeConfig {
//!     backoff: Backoff::none(),
//!     ..RuntimeConfig::with_threads(2).with_chaos(chaos)
//! };
//! let report = run(&cfg, &inputs, |_, &x| Ok(x * x));
//! for (i, outcome) in report.outcomes.iter().enumerate() {
//!     assert_eq!(*outcome, TaskOutcome::Done((i as u64) * (i as u64)));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod kernels;
pub mod pool;

pub use chaos::{ChaosPlan, InvalidChaosRate};
pub use kernels::{
    fold_report, run_spgemm_sharded, run_spmm_sharded, run_spmspv_sharded, run_spmv_sharded,
    run_tasks_planned, run_tasks_sharded, shard_len, PlannedRunError, ShardPlan, ShardPlanError,
    ShardedRun,
};
pub use pool::{
    run, Backoff, DegradedReport, RunReport, RunStats, RuntimeConfig, TaskError, TaskOutcome,
};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::ChaosPlan>();
        assert_send_sync::<crate::RuntimeConfig>();
        assert_send_sync::<crate::RunStats>();
        assert_send_sync::<crate::DegradedReport>();
        assert_send_sync::<crate::TaskError>();
    }
}
