//! Deterministic chaos injection for the parallel runtime.
//!
//! [`ChaosPlan`] mirrors `simkit::fault::FaultPlan` one layer up the
//! stack: where a `FaultPlan` flips bits in operand storage, a `ChaosPlan`
//! breaks the *machinery executing the work* — it crashes worker threads,
//! stalls them past their watchdog deadline, and makes task attempts fail
//! transiently. Every decision is a pure function of
//! `(seed, task, attempt)`, never of wall clock or thread identity, so a
//! chaos campaign is exactly reproducible from its seed even though the
//! thread schedule is not.
//!
//! The determinism contract the runtime builds on: chaos decides *which
//! attempts* are sabotaged, the scheduler decides *when and where* they
//! run, and neither may influence task results — a sabotaged attempt is
//! retried or drained, and the task function itself is pure.

use sparse::rng::{is_valid_rate, Rng64};

/// A rejected chaos-rate parameter: rates are probabilities in
/// `[0.0, 1.0]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidChaosRate {
    /// Which rate was rejected (`"crash"`, `"stall"` or `"flake"`).
    pub which: &'static str,
    /// The offending value (possibly NaN).
    pub rate: f64,
}

impl std::fmt::Display for InvalidChaosRate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "chaos {} rate {} is outside [0.0, 1.0]", self.which, self.rate)
    }
}

impl std::error::Error for InvalidChaosRate {}

/// A seeded, rate-parameterised plan for sabotaging the runtime.
///
/// Rates are per-attempt probabilities: each `(task, attempt)` pair gets
/// one independent deterministic draw per failure class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPlan {
    /// Seed; the same seed yields the same sabotage set for the same task
    /// stream.
    pub seed: u64,
    /// Probability that the worker executing an attempt crashes (its
    /// thread leaves the pool; the attempt is requeued).
    pub crash_rate: f64,
    /// Probability that an attempt stalls for [`ChaosPlan::stall_micros`]
    /// before executing (exercising the watchdog).
    pub stall_rate: f64,
    /// Probability that an attempt fails transiently (a retry with a
    /// fresh attempt number draws again).
    pub flake_rate: f64,
    /// How long an injected stall lasts, in microseconds.
    pub stall_micros: u64,
}

impl ChaosPlan {
    /// A plan that injects nothing.
    pub fn none(seed: u64) -> Self {
        ChaosPlan { seed, crash_rate: 0.0, stall_rate: 0.0, flake_rate: 0.0, stall_micros: 0 }
    }

    /// A validated plan; rates must be probabilities.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidChaosRate`] naming the first out-of-range rate.
    pub fn new(
        seed: u64,
        crash_rate: f64,
        stall_rate: f64,
        flake_rate: f64,
        stall_micros: u64,
    ) -> Result<Self, InvalidChaosRate> {
        for (which, rate) in
            [("crash", crash_rate), ("stall", stall_rate), ("flake", flake_rate)]
        {
            // Shared with `simkit::fault` via `sparse::rng::is_valid_rate`:
            // one definition of "legal probability" for both layers.
            if !is_valid_rate(rate) {
                return Err(InvalidChaosRate { which, rate });
            }
        }
        Ok(ChaosPlan { seed, crash_rate, stall_rate, flake_rate, stall_micros })
    }

    /// Whether this plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        self.crash_rate > 0.0 || self.stall_rate > 0.0 || self.flake_rate > 0.0
    }

    /// One deterministic draw for `(task, attempt)` in failure class
    /// `salt`.
    fn roll(&self, salt: u64, task: u64, attempt: u32, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        // Mix the coordinates into one seed; Rng64::new applies a SplitMix
        // scramble, so nearby coordinates produce uncorrelated draws.
        let mixed = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(salt.rotate_left(24))
            .wrapping_add(task.wrapping_mul(0xD134_2543_DE82_EF95))
            .wrapping_add(u64::from(attempt).wrapping_mul(0xBF58_476D_1CE4_E5B9));
        Rng64::new(mixed).next_f64() < rate
    }

    /// Whether the worker executing `(task, attempt)` crashes.
    pub fn crashes(&self, task: u64, attempt: u32) -> bool {
        self.roll(1, task, attempt, self.crash_rate)
    }

    /// Whether `(task, attempt)` stalls before executing.
    pub fn stalls(&self, task: u64, attempt: u32) -> bool {
        self.roll(2, task, attempt, self.stall_rate)
    }

    /// Whether `(task, attempt)` fails transiently.
    pub fn flakes(&self, task: u64, attempt: u32) -> bool {
        self.roll(3, task, attempt, self.flake_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fires() {
        let plan = ChaosPlan::none(42);
        assert!(!plan.is_active());
        for task in 0..100 {
            for attempt in 0..4 {
                assert!(!plan.crashes(task, attempt));
                assert!(!plan.stalls(task, attempt));
                assert!(!plan.flakes(task, attempt));
            }
        }
    }

    #[test]
    fn draws_are_deterministic_and_seed_sensitive() {
        let a = ChaosPlan::new(1, 0.3, 0.3, 0.3, 10).unwrap();
        let b = ChaosPlan::new(1, 0.3, 0.3, 0.3, 10).unwrap();
        let c = ChaosPlan::new(2, 0.3, 0.3, 0.3, 10).unwrap();
        let fire = |p: &ChaosPlan| -> Vec<bool> {
            (0..200).map(|t| p.crashes(t, 0)).collect()
        };
        assert_eq!(fire(&a), fire(&b));
        assert_ne!(fire(&a), fire(&c), "different seeds must differ");
    }

    #[test]
    fn classes_draw_independently() {
        let p = ChaosPlan::new(9, 0.5, 0.5, 0.5, 10).unwrap();
        let crashes: Vec<bool> = (0..200).map(|t| p.crashes(t, 0)).collect();
        let stalls: Vec<bool> = (0..200).map(|t| p.stalls(t, 0)).collect();
        assert_ne!(crashes, stalls, "classes must not share a draw");
    }

    #[test]
    fn attempts_redraw() {
        let p = ChaosPlan::new(3, 0.5, 0.0, 0.0, 0).unwrap();
        let per_attempt: Vec<bool> = (0..64).map(|a| p.crashes(7, a)).collect();
        assert!(per_attempt.iter().any(|&x| x));
        assert!(per_attempt.iter().any(|&x| !x), "an attempt must eventually pass");
    }

    #[test]
    fn rates_approximate_their_probability() {
        let p = ChaosPlan::new(5, 0.1, 0.0, 0.0, 0).unwrap();
        let fired = (0..10_000).filter(|&t| p.crashes(t, 0)).count();
        assert!((800..1200).contains(&fired), "10 % of 10k draws, got {fired}");
    }

    #[test]
    fn invalid_rates_are_rejected() {
        assert!(ChaosPlan::new(1, -0.1, 0.0, 0.0, 0).is_err());
        assert!(ChaosPlan::new(1, 0.0, 1.5, 0.0, 0).is_err());
        assert!(ChaosPlan::new(1, 0.0, 0.0, f64::NAN, 0).is_err());
        let err = ChaosPlan::new(1, 0.0, 2.0, 0.0, 0).unwrap_err();
        assert_eq!(err.which, "stall");
        assert!(err.to_string().contains("stall"), "{err}");
    }
}
