//! The supervised work-stealing pool.
//!
//! [`run`] executes `n` independent tasks over a fixed worker set and
//! returns one [`TaskOutcome`] per task plus scheduler statistics, a
//! possible [`DegradedReport`], and the scheduler's lifecycle trace.
//!
//! # Supervision model
//!
//! A supervisor (the calling thread) owns all mutable bookkeeping; workers
//! only pull [`Attempt`]s from deques and report what happened over a
//! channel. Per-attempt faults are isolated with
//! [`std::panic::catch_unwind`], so a panicking task function costs one
//! attempt, never a worker. Failures split into two classes:
//!
//! * **infrastructure** — injected worker crashes, watchdog-detected
//!   stalls, transient flakes. These requeue the task with exponential
//!   backoff; once a task has burned its infrastructure budget the
//!   supervisor executes it *inline, chaos-free* (the serial fallback), so
//!   no amount of injected chaos can fail a healthy task.
//! * **intrinsic** — the task function itself panicked or returned an
//!   error. These retry up to [`RuntimeConfig::max_retries`] times and then
//!   surface as [`TaskOutcome::Failed`].
//!
//! When crashes shrink the pool below [`RuntimeConfig::quorum`], the
//! supervisor stops dispatching, drains every unfinished task serially on
//! its own thread, and reports the downgrade as a [`DegradedReport`]
//! instead of an error.
//!
//! # Determinism
//!
//! Task functions are required to be pure (same `(index, item)` in, same
//! value out). Outcomes are keyed by task index and the first delivered
//! result wins, so the *values* in [`RunReport::outcomes`] are independent
//! of worker count, steal order, chaos plan and wall-clock timing — only
//! the statistics and the trace vary. The kernel layer builds its
//! bit-identical report merging on exactly this property.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::chaos::ChaosPlan;

/// Exponential retry backoff: attempt `k` waits
/// `base * growth^k` microseconds, capped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// Delay before the first retry, in microseconds.
    pub base_micros: u64,
    /// Multiplier applied per retry.
    pub growth: u64,
    /// Upper bound on any single delay, in microseconds.
    pub cap_micros: u64,
}

impl Backoff {
    /// No delay between retries.
    pub fn none() -> Self {
        Backoff { base_micros: 0, growth: 1, cap_micros: 0 }
    }

    /// Doubling backoff from `base_micros` up to `cap_micros`.
    pub fn exponential(base_micros: u64, cap_micros: u64) -> Self {
        Backoff { base_micros, growth: 2, cap_micros }
    }

    /// The delay before retry number `retry` (0-based).
    pub fn delay(&self, retry: u32) -> Duration {
        let mut d = self.base_micros;
        for _ in 0..retry {
            d = d.saturating_mul(self.growth);
            if d >= self.cap_micros {
                d = self.cap_micros;
                break;
            }
        }
        Duration::from_micros(d.min(self.cap_micros))
    }
}

/// Scheduler configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeConfig {
    /// Worker threads; `1` executes on the calling thread with no pool.
    pub threads: usize,
    /// Retry budget per failure class (intrinsic and infrastructure each
    /// get `max_retries` retries beyond the first attempt).
    pub max_retries: u32,
    /// Delay schedule between retries.
    pub backoff: Backoff,
    /// Per-attempt watchdog deadline; an attempt running longer is
    /// presumed stalled and reassigned.
    pub task_deadline: Duration,
    /// Minimum live workers; below this the pool degrades to serial.
    pub quorum: usize,
    /// Chaos injection plan ([`ChaosPlan::none`] for production runs).
    pub chaos: ChaosPlan,
}

impl RuntimeConfig {
    /// Single-threaded execution on the calling thread.
    pub fn serial() -> Self {
        Self::with_threads(1)
    }

    /// A pool of `threads` workers with default resilience parameters:
    /// 3 retries, 50 µs doubling backoff capped at 5 ms, a 5 s watchdog,
    /// and quorum at half the pool (rounded up).
    pub fn with_threads(threads: usize) -> Self {
        let threads = threads.max(1);
        RuntimeConfig {
            threads,
            max_retries: 3,
            backoff: Backoff::exponential(50, 5_000),
            task_deadline: Duration::from_secs(5),
            quorum: threads.div_ceil(2),
            chaos: ChaosPlan::none(0),
        }
    }

    /// This configuration with a chaos plan attached.
    pub fn with_chaos(mut self, chaos: ChaosPlan) -> Self {
        self.chaos = chaos;
        self
    }
}

/// Why a task failed for good (intrinsic failure, budget exhausted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskError {
    /// The task function panicked; the payload message is preserved.
    Panicked(String),
    /// The task function returned an error.
    Failed(String),
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskError::Panicked(msg) => write!(f, "task panicked: {msg}"),
            TaskError::Failed(msg) => write!(f, "task failed: {msg}"),
        }
    }
}

impl std::error::Error for TaskError {}

/// Final state of one task.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskOutcome<R> {
    /// The task produced a value.
    Done(R),
    /// The task failed intrinsically on every attempt.
    Failed {
        /// Attempts consumed (first try plus retries).
        attempts: u32,
        /// The last intrinsic error observed.
        error: TaskError,
    },
}

impl<R> TaskOutcome<R> {
    /// Whether the task produced a value.
    pub fn is_done(&self) -> bool {
        matches!(self, TaskOutcome::Done(_))
    }
}

/// Scheduler statistics for one [`run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Worker threads spawned (0 in serial mode).
    pub workers: usize,
    /// Successful steals between worker deques.
    pub steals: u64,
    /// Requeues of any kind (intrinsic retries and infrastructure
    /// requeues).
    pub retries: u64,
    /// Injected transient failures observed.
    pub flakes: u64,
    /// Worker threads lost to injected crashes.
    pub crashes: u64,
    /// Attempts the watchdog declared stalled and reassigned.
    pub stalls_detected: u64,
    /// Tasks the supervisor executed inline after their infrastructure
    /// budget ran out.
    pub drained_inline: u64,
}

impl RunStats {
    /// Accumulates the scheduler counters into `reg` (under `runtime/`),
    /// and records the worker count as a gauge. Degradation events and
    /// scheduler health thereby surface in any metrics export — e.g. the
    /// `perf_regression` BENCH documents — instead of living only in the
    /// Chrome trace track.
    pub fn export_metrics(&self, reg: &mut obs::MetricsRegistry) {
        reg.set_gauge("runtime/pool_workers", self.workers as f64);
        reg.inc_counter("runtime/steals", self.steals);
        reg.inc_counter("runtime/retries", self.retries);
        reg.inc_counter("runtime/flakes", self.flakes);
        reg.inc_counter("runtime/crashes", self.crashes);
        reg.inc_counter("runtime/stalls_detected", self.stalls_detected);
        reg.inc_counter("runtime/drained_inline", self.drained_inline);
    }
}

/// The pool fell below quorum and finished the run serially.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradedReport {
    /// Workers still alive when the pool degraded.
    pub live_workers: usize,
    /// The quorum that was no longer met.
    pub quorum: usize,
    /// Tasks the supervisor drained serially after degrading.
    pub tasks_drained: usize,
}

impl DegradedReport {
    /// Exposes the degradation event as gauges (under `runtime/`) and
    /// bumps the `runtime/degraded_runs` counter, so quorum losses are
    /// visible in metrics exports, not only in the trace.
    pub fn export_metrics(&self, reg: &mut obs::MetricsRegistry) {
        reg.inc_counter("runtime/degraded_runs", 1);
        reg.set_gauge("runtime/degraded_live_workers", self.live_workers as f64);
        reg.set_gauge("runtime/degraded_quorum", self.quorum as f64);
        reg.inc_counter("runtime/degraded_tasks_drained", self.tasks_drained as u64);
    }
}

impl std::fmt::Display for DegradedReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "pool degraded to serial: {} live workers < quorum {}; drained {} tasks",
            self.live_workers, self.quorum, self.tasks_drained
        )
    }
}

/// Everything one [`run`] produced.
#[derive(Debug, Clone)]
pub struct RunReport<R> {
    /// One outcome per input task, in input order.
    pub outcomes: Vec<TaskOutcome<R>>,
    /// Scheduler statistics.
    pub stats: RunStats,
    /// Present iff the pool fell below quorum and degraded to serial.
    pub degraded: Option<DegradedReport>,
    /// Scheduler lifecycle events (spawn / steal / retry / crash /
    /// degrade), timestamped in microseconds since the run started.
    pub trace: Vec<obs::TraceEvent>,
}

impl<R> RunReport<R> {
    /// Tasks that failed for good, as `(index, attempts, error)`.
    pub fn failures(&self) -> Vec<(usize, u32, &TaskError)> {
        self.outcomes
            .iter()
            .enumerate()
            .filter_map(|(i, o)| match o {
                TaskOutcome::Done(_) => None,
                TaskOutcome::Failed { attempts, error } => Some((i, *attempts, error)),
            })
            .collect()
    }

    /// Replays the scheduler lifecycle trace into `sink`.
    pub fn replay_trace(&self, sink: &mut dyn obs::TraceSink) {
        if !sink.enabled() {
            return;
        }
        for ev in &self.trace {
            sink.record(*ev);
        }
    }
}

/// One unit of queued work: which task, which attempt, and the earliest
/// instant it may execute (backoff).
#[derive(Debug, Clone, Copy)]
struct Attempt {
    index: usize,
    attempt: u32,
    not_before: Instant,
}

/// What a worker observed executing one attempt.
enum Fault {
    /// Injected transient failure; the task function never ran.
    Flaked,
    /// The task function returned an error.
    Errored(String),
    /// The task function panicked (caught).
    Panicked(String),
}

/// Worker-to-supervisor messages.
enum Msg<R> {
    Started { index: usize, attempt: u32 },
    Finished { index: usize, result: Result<R, Fault> },
    Stole { worker: u32, victim: u32 },
    Crashed { worker: u32, index: usize },
}

/// State shared between workers and supervisor.
struct Shared {
    /// One deque per worker; workers pop their own front, steal others'
    /// back. A crashed worker's leftover deque stays stealable.
    queues: Vec<Mutex<VecDeque<Attempt>>>,
    /// Overflow queue for requeued work; any worker may pull from it.
    injector: Mutex<VecDeque<Attempt>>,
    /// Set by the supervisor when the run is over (or degraded).
    shutdown: AtomicBool,
}

/// How long an idle worker naps before re-polling the queues.
const IDLE_NAP: Duration = Duration::from_micros(200);

fn lock(q: &Mutex<VecDeque<Attempt>>) -> std::sync::MutexGuard<'_, VecDeque<Attempt>> {
    // A worker panicking while holding a queue lock is impossible (pushes
    // and pops don't panic), but recover rather than propagate anyway.
    q.lock().unwrap_or_else(|e| e.into_inner())
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

/// Executes one attempt of task `index` with panic isolation.
fn execute_once<T, R, F>(index: usize, items: &[T], f: &F) -> Result<R, TaskError>
where
    F: Fn(usize, &T) -> Result<R, String>,
{
    match catch_unwind(AssertUnwindSafe(|| f(index, &items[index]))) {
        Ok(Ok(r)) => Ok(r),
        Ok(Err(e)) => Err(TaskError::Failed(e)),
        Err(payload) => Err(TaskError::Panicked(panic_message(payload.as_ref()))),
    }
}

/// Pulls the next attempt for worker `id`: own deque, then the injector,
/// then stealing from the other deques (reporting the steal).
fn pop_work<R>(shared: &Shared, id: usize, tx: &mpsc::Sender<Msg<R>>) -> Option<Attempt> {
    if let Some(att) = lock(&shared.queues[id]).pop_front() {
        return Some(att);
    }
    if let Some(att) = lock(&shared.injector).pop_front() {
        return Some(att);
    }
    for offset in 1..shared.queues.len() {
        let victim = (id + offset) % shared.queues.len();
        if let Some(att) = lock(&shared.queues[victim]).pop_back() {
            let _ = tx.send(Msg::Stole { worker: id as u32, victim: victim as u32 });
            return Some(att);
        }
    }
    None
}

/// The worker thread body. Returns when the supervisor signals shutdown —
/// or early, if the chaos plan crashes this worker.
fn worker_loop<T, R, F>(
    id: u32,
    shared: &Shared,
    items: &[T],
    f: &F,
    chaos: ChaosPlan,
    tx: &mpsc::Sender<Msg<R>>,
) where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> Result<R, String> + Sync,
{
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let Some(att) = pop_work(shared, id as usize, tx) else {
            std::thread::sleep(IDLE_NAP);
            continue;
        };
        let now = Instant::now();
        if att.not_before > now {
            // Backoff not elapsed: park it on the injector and nap.
            lock(&shared.injector).push_back(att);
            std::thread::sleep(IDLE_NAP.min(att.not_before - now));
            continue;
        }
        let _ = tx.send(Msg::Started { index: att.index, attempt: att.attempt });
        if chaos.crashes(att.index as u64, att.attempt) {
            // Simulated hard crash: this thread leaves the pool for good.
            let _ = tx.send(Msg::Crashed { worker: id, index: att.index });
            return;
        }
        if chaos.stalls(att.index as u64, att.attempt) {
            std::thread::sleep(Duration::from_micros(chaos.stall_micros));
        }
        let result = if chaos.flakes(att.index as u64, att.attempt) {
            Err(Fault::Flaked)
        } else {
            match catch_unwind(AssertUnwindSafe(|| f(att.index, &items[att.index]))) {
                Ok(Ok(r)) => Ok(r),
                Ok(Err(e)) => Err(Fault::Errored(e)),
                Err(payload) => Err(Fault::Panicked(panic_message(payload.as_ref()))),
            }
        };
        let _ = tx.send(Msg::Finished { index: att.index, result });
    }
}

/// Supervisor-side per-run bookkeeping.
struct Supervisor<R> {
    start: Instant,
    outcomes: Vec<Option<TaskOutcome<R>>>,
    /// Next attempt number to hand out per task (attempt 0 is seeded).
    next_attempt: Vec<u32>,
    /// Infrastructure failures charged per task.
    infra_used: Vec<u32>,
    /// Intrinsic failures charged per task.
    intrinsic_used: Vec<u32>,
    last_error: Vec<Option<TaskError>>,
    /// Watchdog state: `(attempt, deadline)` for the attempt believed to be
    /// running.
    in_flight: Vec<Option<(u32, Instant)>>,
    completed: usize,
    stats: RunStats,
    trace: Vec<obs::TraceEvent>,
}

impl<R> Supervisor<R> {
    fn new(n: usize, start: Instant) -> Self {
        Supervisor {
            start,
            outcomes: (0..n).map(|_| None).collect(),
            next_attempt: vec![1; n],
            infra_used: vec![0; n],
            intrinsic_used: vec![0; n],
            last_error: (0..n).map(|_| None).collect(),
            in_flight: vec![None; n],
            completed: 0,
            stats: RunStats::default(),
            trace: Vec::new(),
        }
    }

    /// Microseconds since the run started (the trace clock).
    fn now_us(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    fn record_done(&mut self, index: usize, value: R) {
        if self.outcomes[index].is_none() {
            self.outcomes[index] = Some(TaskOutcome::Done(value));
            self.completed += 1;
        }
        self.in_flight[index] = None;
    }

    fn record_failed(&mut self, index: usize, error: TaskError) {
        if self.outcomes[index].is_none() {
            let attempts = self.intrinsic_used[index].max(1);
            self.outcomes[index] = Some(TaskOutcome::Failed { attempts, error });
            self.completed += 1;
        }
        self.in_flight[index] = None;
    }

    /// Requeues task `index` on the injector with `delay` backoff.
    fn requeue(&mut self, index: usize, delay: Duration, injector: &Mutex<VecDeque<Attempt>>) {
        let attempt = self.next_attempt[index];
        self.next_attempt[index] += 1;
        self.stats.retries += 1;
        self.trace.push(obs::TraceEvent::TaskRetry {
            cycle: self.now_us(),
            task: index as u64,
            attempt,
        });
        let not_before = Instant::now() + delay;
        lock(injector).push_back(Attempt { index, attempt, not_before });
    }

    /// Charges an infrastructure failure: requeue with backoff, or — once
    /// the budget is spent — execute inline, chaos-free.
    fn infra_failure<T, F>(
        &mut self,
        index: usize,
        cfg: &RuntimeConfig,
        injector: &Mutex<VecDeque<Attempt>>,
        items: &[T],
        f: &F,
    ) where
        F: Fn(usize, &T) -> Result<R, String>,
    {
        self.in_flight[index] = None;
        if self.outcomes[index].is_some() {
            return;
        }
        self.infra_used[index] += 1;
        if self.infra_used[index] > cfg.max_retries {
            // The scheduler keeps sabotaging this task; run it ourselves
            // with no chaos in the way.
            self.stats.drained_inline += 1;
            match execute_once(index, items, f) {
                Ok(r) => self.record_done(index, r),
                Err(e) => {
                    self.intrinsic_used[index] += 1;
                    self.record_failed(index, e);
                }
            }
        } else {
            let delay = cfg.backoff.delay(self.infra_used[index] - 1);
            self.requeue(index, delay, injector);
        }
    }

    /// Charges an intrinsic failure: retry with backoff until the budget
    /// is spent, then fail the task.
    fn intrinsic_failure(
        &mut self,
        index: usize,
        error: TaskError,
        cfg: &RuntimeConfig,
        injector: &Mutex<VecDeque<Attempt>>,
    ) {
        self.in_flight[index] = None;
        if self.outcomes[index].is_some() {
            return;
        }
        self.intrinsic_used[index] += 1;
        if self.intrinsic_used[index] > cfg.max_retries {
            self.record_failed(index, error);
        } else {
            self.last_error[index] = Some(error);
            let delay = cfg.backoff.delay(self.intrinsic_used[index] - 1);
            self.requeue(index, delay, injector);
        }
    }

    /// Scans the watchdog table; reassigns attempts past their deadline.
    fn watchdog<T, F>(
        &mut self,
        cfg: &RuntimeConfig,
        injector: &Mutex<VecDeque<Attempt>>,
        items: &[T],
        f: &F,
    ) where
        F: Fn(usize, &T) -> Result<R, String>,
    {
        let now = Instant::now();
        for index in 0..self.in_flight.len() {
            if self.outcomes[index].is_some() {
                continue;
            }
            if let Some((_, deadline)) = self.in_flight[index] {
                if now >= deadline {
                    self.stats.stalls_detected += 1;
                    self.infra_failure(index, cfg, injector, items, f);
                }
            }
        }
    }

    /// Serially executes (chaos-free) every task without an outcome.
    /// Returns how many it drained.
    fn drain_serially<T, F>(&mut self, items: &[T], f: &F) -> usize
    where
        F: Fn(usize, &T) -> Result<R, String>,
    {
        let mut drained = 0;
        for index in 0..self.outcomes.len() {
            if self.outcomes[index].is_some() {
                continue;
            }
            drained += 1;
            match execute_once(index, items, f) {
                Ok(r) => self.record_done(index, r),
                Err(e) => {
                    self.intrinsic_used[index] += 1;
                    self.record_failed(index, e);
                }
            }
        }
        drained
    }
}

/// Runs `items` through `f` under `cfg`, returning one outcome per item.
///
/// `f` must be pure: given the same `(index, item)` it must return the
/// same value regardless of which thread runs it or how many attempts it
/// takes — that is what makes the outcome vector schedule-independent.
/// With `cfg.threads <= 1` everything runs on the calling thread; the
/// retry, backoff and chaos semantics still apply (an injected "crash"
/// merely costs an attempt, since there is no worker to lose).
pub fn run<T, R, F>(cfg: &RuntimeConfig, items: &[T], f: F) -> RunReport<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> Result<R, String> + Sync,
{
    if cfg.threads <= 1 {
        run_serial(cfg, items, &f)
    } else {
        run_parallel(cfg, items, &f)
    }
}

/// Single-threaded executor: same retry / backoff / chaos semantics as the
/// pool, minus workers, channels and the watchdog.
fn run_serial<T, R, F>(cfg: &RuntimeConfig, items: &[T], f: &F) -> RunReport<R>
where
    F: Fn(usize, &T) -> Result<R, String>,
{
    let start = Instant::now();
    let mut sup: Supervisor<R> = Supervisor::new(items.len(), start);
    let chaos = cfg.chaos;
    for index in 0..items.len() {
        let mut attempt = 0u32;
        let mut infra = 0u32;
        let mut intrinsic = 0u32;
        loop {
            if infra > cfg.max_retries {
                // Infrastructure budget spent: run once, chaos-free.
                sup.stats.drained_inline += 1;
                match execute_once(index, items, f) {
                    Ok(r) => sup.record_done(index, r),
                    Err(e) => {
                        sup.intrinsic_used[index] = intrinsic + 1;
                        sup.record_failed(index, e);
                    }
                }
                break;
            }
            let infra_hit = if chaos.crashes(index as u64, attempt) {
                // No worker to lose in serial mode; costs the attempt.
                sup.stats.crashes += 1;
                true
            } else if chaos.flakes(index as u64, attempt) {
                sup.stats.flakes += 1;
                true
            } else {
                false
            };
            if infra_hit {
                infra += 1;
                sup.stats.retries += 1;
                sup.trace.push(obs::TraceEvent::TaskRetry {
                    cycle: sup.now_us(),
                    task: index as u64,
                    attempt: attempt + 1,
                });
                std::thread::sleep(cfg.backoff.delay(infra - 1));
                attempt += 1;
                continue;
            }
            if chaos.stalls(index as u64, attempt) {
                std::thread::sleep(Duration::from_micros(chaos.stall_micros));
            }
            match execute_once(index, items, f) {
                Ok(r) => {
                    sup.record_done(index, r);
                    break;
                }
                Err(e) => {
                    intrinsic += 1;
                    sup.intrinsic_used[index] = intrinsic;
                    if intrinsic > cfg.max_retries {
                        sup.record_failed(index, e);
                        break;
                    }
                    sup.stats.retries += 1;
                    sup.trace.push(obs::TraceEvent::TaskRetry {
                        cycle: sup.now_us(),
                        task: index as u64,
                        attempt: attempt + 1,
                    });
                    std::thread::sleep(cfg.backoff.delay(intrinsic - 1));
                    attempt += 1;
                }
            }
        }
    }
    let outcomes = finalize(sup.outcomes);
    RunReport { outcomes, stats: sup.stats, degraded: None, trace: sup.trace }
}

/// Converts the supervisor's outcome table into the final vector. Every
/// slot is filled by construction; an empty slot (unreachable) is reported
/// as a zero-attempt failure rather than panicking.
fn finalize<R>(outcomes: Vec<Option<TaskOutcome<R>>>) -> Vec<TaskOutcome<R>> {
    outcomes
        .into_iter()
        .map(|o| {
            o.unwrap_or_else(|| TaskOutcome::Failed {
                attempts: 0,
                error: TaskError::Failed("task was never completed by the scheduler".to_owned()),
            })
        })
        .collect()
}

fn run_parallel<T, R, F>(cfg: &RuntimeConfig, items: &[T], f: &F) -> RunReport<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> Result<R, String> + Sync,
{
    let n = items.len();
    let threads = cfg.threads;
    let quorum = cfg.quorum.clamp(1, threads);
    let start = Instant::now();
    let shared = Shared {
        queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
        injector: Mutex::new(VecDeque::new()),
        shutdown: AtomicBool::new(false),
    };
    // Round-robin initial distribution; steals rebalance from there.
    for index in 0..n {
        lock(&shared.queues[index % threads]).push_back(Attempt {
            index,
            attempt: 0,
            not_before: start,
        });
    }
    let (tx, rx) = mpsc::channel::<Msg<R>>();
    let mut sup: Supervisor<R> = Supervisor::new(n, start);
    let mut live = threads;
    let mut degraded: Option<DegradedReport> = None;
    // Tick fast enough to catch deadlines promptly without spinning.
    let tick = (cfg.task_deadline / 4)
        .max(Duration::from_millis(1))
        .min(Duration::from_millis(50));

    let shared_ref = &shared;
    std::thread::scope(|scope| {
        for id in 0..threads {
            let worker_tx = tx.clone();
            let chaos = cfg.chaos;
            scope.spawn(move || {
                worker_loop(id as u32, shared_ref, items, f, chaos, &worker_tx);
            });
            sup.stats.workers += 1;
            sup.trace.push(obs::TraceEvent::WorkerSpawn {
                cycle: sup.now_us(),
                worker: id as u32,
            });
        }
        // Only workers hold senders now: when every worker has exited the
        // channel disconnects and the supervisor notices.
        drop(tx);

        while sup.completed < n {
            match rx.recv_timeout(tick) {
                Ok(Msg::Started { index, attempt }) => {
                    if sup.outcomes[index].is_none() {
                        sup.in_flight[index] = Some((attempt, Instant::now() + cfg.task_deadline));
                    }
                }
                Ok(Msg::Finished { index, result }) => match result {
                    Ok(r) => sup.record_done(index, r),
                    Err(Fault::Flaked) => {
                        sup.stats.flakes += 1;
                        sup.infra_failure(index, cfg, &shared.injector, items, f);
                    }
                    Err(Fault::Errored(e)) => {
                        sup.intrinsic_failure(index, TaskError::Failed(e), cfg, &shared.injector);
                    }
                    Err(Fault::Panicked(msg)) => {
                        sup.intrinsic_failure(
                            index,
                            TaskError::Panicked(msg),
                            cfg,
                            &shared.injector,
                        );
                    }
                },
                Ok(Msg::Stole { worker, victim }) => {
                    sup.stats.steals += 1;
                    sup.trace.push(obs::TraceEvent::WorkerSteal {
                        cycle: sup.now_us(),
                        worker,
                        victim,
                    });
                }
                Ok(Msg::Crashed { worker, index }) => {
                    live -= 1;
                    sup.stats.crashes += 1;
                    sup.trace.push(obs::TraceEvent::WorkerCrash { cycle: sup.now_us(), worker });
                    sup.infra_failure(index, cfg, &shared.injector, items, f);
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    // Every worker is gone; whatever remains is ours.
                    live = 0;
                }
            }
            sup.watchdog(cfg, &shared.injector, items, f);
            if live < quorum && degraded.is_none() && sup.completed < n {
                sup.trace.push(obs::TraceEvent::RuntimeDegrade {
                    cycle: sup.now_us(),
                    live: live as u32,
                    quorum: quorum as u32,
                });
                shared.shutdown.store(true, Ordering::Release);
                let drained = sup.drain_serially(items, f);
                degraded =
                    Some(DegradedReport { live_workers: live, quorum, tasks_drained: drained });
                break;
            }
        }
        shared.shutdown.store(true, Ordering::Release);
        // Scope joins the surviving workers here; they exit on the flag
        // within one idle nap.
    });

    let outcomes = finalize(sup.outcomes);
    RunReport { outcomes, stats: sup.stats, degraded, trace: sup.trace }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn double(cfg: &RuntimeConfig, n: usize) -> RunReport<usize> {
        let items: Vec<usize> = (0..n).collect();
        run(cfg, &items, |_, &x| Ok(x * 2))
    }

    #[test]
    fn serial_runs_every_task_in_order() {
        let rep = double(&RuntimeConfig::serial(), 100);
        assert!(rep.degraded.is_none());
        assert_eq!(rep.stats.workers, 0);
        for (i, o) in rep.outcomes.iter().enumerate() {
            assert_eq!(*o, TaskOutcome::Done(i * 2));
        }
    }

    #[test]
    fn pool_matches_serial_outcomes() {
        let serial = double(&RuntimeConfig::serial(), 200);
        for threads in [2, 4, 8] {
            let pooled = double(&RuntimeConfig::with_threads(threads), 200);
            assert_eq!(pooled.outcomes, serial.outcomes, "threads={threads}");
            assert_eq!(pooled.stats.workers, threads);
            assert!(pooled.degraded.is_none());
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let rep = double(&RuntimeConfig::with_threads(4), 0);
        assert!(rep.outcomes.is_empty());
        assert!(rep.degraded.is_none());
    }

    #[test]
    fn panics_are_isolated_and_bounded() {
        let items: Vec<u32> = (0..20).collect();
        let cfg = RuntimeConfig {
            backoff: Backoff::none(),
            ..RuntimeConfig::with_threads(4)
        };
        let rep = run(&cfg, &items, |_, &x| {
            if x == 7 {
                panic!("boom on 7");
            }
            Ok(x + 1)
        });
        for (i, o) in rep.outcomes.iter().enumerate() {
            if i == 7 {
                match o {
                    TaskOutcome::Failed { attempts, error: TaskError::Panicked(msg) } => {
                        assert_eq!(*attempts, cfg.max_retries + 1);
                        assert!(msg.contains("boom on 7"), "{msg}");
                    }
                    other => panic!("task 7 should fail by panic, got {other:?}"),
                }
            } else {
                assert_eq!(*o, TaskOutcome::Done(i as u32 + 1));
            }
        }
        assert_eq!(rep.failures().len(), 1);
    }

    #[test]
    fn intrinsic_errors_exhaust_the_retry_budget() {
        let items = [0u8];
        let cfg = RuntimeConfig {
            max_retries: 2,
            backoff: Backoff::none(),
            ..RuntimeConfig::serial()
        };
        let rep: RunReport<u8> = run(&cfg, &items, |_, _| Err("always".to_owned()));
        match &rep.outcomes[0] {
            TaskOutcome::Failed { attempts, error: TaskError::Failed(msg) } => {
                assert_eq!(*attempts, 3, "first try + 2 retries");
                assert_eq!(msg, "always");
            }
            other => panic!("expected failure, got {other:?}"),
        }
        assert_eq!(rep.stats.retries, 2);
    }

    #[test]
    fn flakes_retry_and_recover() {
        let items: Vec<usize> = (0..300).collect();
        let chaos = ChaosPlan::new(11, 0.0, 0.0, 0.2, 0).unwrap();
        let cfg = RuntimeConfig {
            backoff: Backoff::none(),
            ..RuntimeConfig::with_threads(2).with_chaos(chaos)
        };
        let rep = run(&cfg, &items, |_, &x| Ok(x * 3));
        assert!(rep.stats.flakes > 0, "20 % flake rate over 300 tasks must fire");
        for (i, o) in rep.outcomes.iter().enumerate() {
            assert_eq!(*o, TaskOutcome::Done(i * 3));
        }
    }

    #[test]
    fn crashes_degrade_to_serial_below_quorum() {
        let items: Vec<usize> = (0..400).collect();
        // Crash rate high enough to take out both workers almost surely.
        let chaos = ChaosPlan::new(5, 0.2, 0.0, 0.0, 0).unwrap();
        let cfg = RuntimeConfig {
            quorum: 2,
            backoff: Backoff::none(),
            ..RuntimeConfig::with_threads(2).with_chaos(chaos)
        };
        let rep = run(&cfg, &items, |_, &x| Ok(x + 10));
        let deg = rep.degraded.expect("two workers at 20 % crash rate must degrade");
        assert!(deg.live_workers < 2);
        assert_eq!(deg.quorum, 2);
        assert!(rep.stats.crashes > 0);
        for (i, o) in rep.outcomes.iter().enumerate() {
            assert_eq!(*o, TaskOutcome::Done(i + 10), "degraded run still completes all tasks");
        }
    }

    #[test]
    fn watchdog_reassigns_stalled_attempts() {
        let items: Vec<usize> = (0..40).collect();
        // Stalls far longer than the deadline: the watchdog must fire.
        let chaos = ChaosPlan::new(3, 0.0, 0.15, 0.0, 200_000).unwrap();
        let cfg = RuntimeConfig {
            task_deadline: Duration::from_millis(20),
            backoff: Backoff::none(),
            ..RuntimeConfig::with_threads(2).with_chaos(chaos)
        };
        let rep = run(&cfg, &items, |_, &x| Ok(x));
        assert!(rep.stats.stalls_detected > 0, "stall injection must trip the watchdog");
        for (i, o) in rep.outcomes.iter().enumerate() {
            assert_eq!(*o, TaskOutcome::Done(i));
        }
    }

    #[test]
    fn trace_records_lifecycle_events() {
        let rep = double(&RuntimeConfig::with_threads(3), 50);
        let spawns = rep
            .trace
            .iter()
            .filter(|e| matches!(e, obs::TraceEvent::WorkerSpawn { .. }))
            .count();
        assert_eq!(spawns, 3);
        let mut sink: Vec<obs::TraceEvent> = Vec::new();
        rep.replay_trace(&mut sink);
        assert_eq!(sink.len(), rep.trace.len());
    }

    #[test]
    fn backoff_schedule_is_bounded() {
        let b = Backoff::exponential(100, 1_000);
        assert_eq!(b.delay(0), Duration::from_micros(100));
        assert_eq!(b.delay(1), Duration::from_micros(200));
        assert_eq!(b.delay(4), Duration::from_micros(1_000), "capped");
        assert_eq!(b.delay(63), Duration::from_micros(1_000), "no overflow");
        assert_eq!(Backoff::none().delay(9), Duration::ZERO);
    }

    #[test]
    fn config_defaults_are_sane() {
        let cfg = RuntimeConfig::with_threads(8);
        assert_eq!(cfg.threads, 8);
        assert_eq!(cfg.quorum, 4);
        assert_eq!(RuntimeConfig::with_threads(0).threads, 1, "clamped");
        assert_eq!(RuntimeConfig::serial().quorum, 1);
    }
}
