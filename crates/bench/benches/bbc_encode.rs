//! Micro-bench: BBC encoding (the one-time software format conversion of
//! Section IV-D) and BBC file I/O. Plain `Instant`-based timing so the
//! suite runs with no external harness.

use std::hint::black_box;
use std::time::Instant;

use sparse::BbcMatrix;
use workloads::gen;

fn time<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) {
    // One warm-up pass, then an averaged timed loop.
    black_box(f());
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per_iter = start.elapsed() / iters;
    println!("{name:<28} {per_iter:>12.2?}/iter  ({iters} iters)");
}

fn main() {
    let poisson = gen::poisson_2d(64);
    let random = gen::random_uniform(1024, 0.01, 7);
    let banded = gen::banded(1024, 16, 0.8, 3);

    println!("== bbc_encode ==");
    time("poisson2d-4096", 50, || BbcMatrix::from_csr(black_box(&poisson)));
    time("random-1024-d0.01", 50, || BbcMatrix::from_csr(black_box(&random)));
    time("banded-1024", 50, || BbcMatrix::from_csr(black_box(&banded)));

    let bbc = BbcMatrix::from_csr(&banded);
    let mut buf = Vec::new();
    bbc.write_bbc(&mut buf).unwrap();

    println!("== bbc_io ==");
    time("write", 50, || {
        let mut out = Vec::with_capacity(buf.len());
        bbc.write_bbc(&mut out).unwrap();
        out
    });
    time("read", 50, || sparse::bbc::read_bbc(black_box(buf.as_slice())));
}
