//! Criterion micro-bench: BBC encoding (the one-time software format
//! conversion of Section IV-D) and BBC file I/O.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sparse::BbcMatrix;
use workloads::gen;

fn bench_encode(c: &mut Criterion) {
    let poisson = gen::poisson_2d(64);
    let random = gen::random_uniform(1024, 0.01, 7);
    let banded = gen::banded(1024, 16, 0.8, 3);

    let mut g = c.benchmark_group("bbc_encode");
    g.bench_function("poisson2d-4096", |b| {
        b.iter(|| BbcMatrix::from_csr(black_box(&poisson)))
    });
    g.bench_function("random-1024-d0.01", |b| {
        b.iter(|| BbcMatrix::from_csr(black_box(&random)))
    });
    g.bench_function("banded-1024", |b| b.iter(|| BbcMatrix::from_csr(black_box(&banded))));
    g.finish();

    let bbc = BbcMatrix::from_csr(&banded);
    let mut buf = Vec::new();
    bbc.write_bbc(&mut buf).unwrap();
    let mut g = c.benchmark_group("bbc_io");
    g.bench_function("write", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(buf.len());
            bbc.write_bbc(&mut out).unwrap();
            out
        })
    });
    g.bench_function("read", |b| b.iter(|| sparse::bbc::read_bbc(black_box(buf.as_slice()))));
    g.finish();
}

criterion_group!(benches, bench_encode);
criterion_main!(benches);
