//! Micro-bench: reference sparse kernels and end-to-end kernel simulation
//! on a mid-size matrix. Plain `Instant`-based timing so the suite runs
//! with no external harness.

use std::hint::black_box;
use std::time::Instant;

use bench::MatrixCtx;
use simkit::driver::Kernel;
use simkit::EnergyModel;
use sparse::ops::{spgemm, spmv};
use sparse::DenseMatrix;
use uni_stc::UniStc;
use workloads::gen;

fn time<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) {
    black_box(f());
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per_iter = start.elapsed() / iters;
    println!("{name:<28} {per_iter:>12.2?}/iter  ({iters} iters)");
}

fn bench_reference_kernels() {
    let a = gen::banded(1024, 12, 0.8, 3);
    let x = vec![1.0; 1024];
    println!("== reference ==");
    time("spmv-banded-1024", 200, || spmv(black_box(&a), black_box(&x)).unwrap());
    let small = gen::poisson_2d(32);
    time("spgemm-poisson-1024", 50, || {
        spgemm(black_box(&small), black_box(&small)).unwrap()
    });
    let bm = DenseMatrix::zeros(1024, 32);
    time("spmm-banded-1024x32", 50, || {
        sparse::ops::spmm(black_box(&a), black_box(&bm)).unwrap()
    });
}

fn bench_simulated_kernels() {
    let em = EnergyModel::default();
    let ctx = MatrixCtx::new("banded", gen::banded(512, 8, 0.7, 5), 1);
    let uni = UniStc::default();
    println!("== simulate_uni_stc ==");
    for kernel in [Kernel::SpMV, Kernel::SpMSpV, Kernel::SpMM, Kernel::SpGEMM] {
        time(&kernel.to_string(), 20, || ctx.run(black_box(&uni), &em, kernel));
    }
}

fn bench_amg() {
    use workloads::amg::{build_hierarchy, AmgOptions};
    let a = gen::poisson_2d(32);
    println!("== amg ==");
    time("setup-poisson-1024", 10, || {
        build_hierarchy(black_box(&a), AmgOptions::default())
    });
    let h = build_hierarchy(&a, AmgOptions::default());
    let rhs = vec![1.0; a.nrows()];
    time("vcycle-poisson-1024", 10, || {
        let mut x = vec![0.0; rhs.len()];
        h.vcycle(black_box(&rhs), &mut x);
        x
    });
}

fn main() {
    bench_reference_kernels();
    bench_simulated_kernels();
    bench_amg();
}
