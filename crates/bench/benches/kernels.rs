//! Criterion micro-bench: reference sparse kernels and end-to-end kernel
//! simulation on a mid-size matrix.

use bench::MatrixCtx;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use simkit::driver::Kernel;
use simkit::EnergyModel;
use sparse::ops::{spgemm, spmv};
use sparse::DenseMatrix;
use uni_stc::UniStc;
use workloads::gen;

fn bench_reference_kernels(c: &mut Criterion) {
    let a = gen::banded(1024, 12, 0.8, 3);
    let x = vec![1.0; 1024];
    let mut g = c.benchmark_group("reference");
    g.bench_function("spmv-banded-1024", |b| {
        b.iter(|| spmv(black_box(&a), black_box(&x)).unwrap())
    });
    let small = gen::poisson_2d(32);
    g.bench_function("spgemm-poisson-1024", |b| {
        b.iter(|| spgemm(black_box(&small), black_box(&small)).unwrap())
    });
    let bm = DenseMatrix::zeros(1024, 32);
    g.bench_function("spmm-banded-1024x32", |b| {
        b.iter(|| sparse::ops::spmm(black_box(&a), black_box(&bm)).unwrap())
    });
    g.finish();
}

fn bench_simulated_kernels(c: &mut Criterion) {
    let em = EnergyModel::default();
    let ctx = MatrixCtx::new("banded", gen::banded(512, 8, 0.7, 5), 1);
    let uni = UniStc::default();
    let mut g = c.benchmark_group("simulate_uni_stc");
    g.sample_size(20);
    for kernel in [Kernel::SpMV, Kernel::SpMSpV, Kernel::SpMM, Kernel::SpGEMM] {
        g.bench_function(kernel.to_string(), |b| {
            b.iter(|| ctx.run(black_box(&uni), &em, kernel))
        });
    }
    g.finish();
}

fn bench_amg(c: &mut Criterion) {
    use workloads::amg::{build_hierarchy, AmgOptions};
    let a = gen::poisson_2d(32);
    let mut g = c.benchmark_group("amg");
    g.sample_size(10);
    g.bench_function("setup-poisson-1024", |b| {
        b.iter(|| build_hierarchy(black_box(&a), AmgOptions::default()))
    });
    let h = build_hierarchy(&a, AmgOptions::default());
    let rhs = vec![1.0; a.nrows()];
    g.bench_function("vcycle-poisson-1024", |b| {
        b.iter(|| {
            let mut x = vec![0.0; rhs.len()];
            h.vcycle(black_box(&rhs), &mut x);
            x
        })
    });
    g.finish();
}

criterion_group!(benches, bench_reference_kernels, bench_simulated_kernels, bench_amg);
criterion_main!(benches);
