//! Criterion micro-bench: per-engine T1-task scheduling throughput of the
//! simulator models (dense, diagonal and irregular block pairs).

use bench::all_engines;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use simkit::{Block16, Precision, T1Task};

fn tasks() -> Vec<(&'static str, T1Task)> {
    vec![
        ("dense", T1Task::mm(Block16::dense(), Block16::dense())),
        (
            "diagonal",
            T1Task::mm(Block16::from_fn(|r, c| r == c), Block16::from_fn(|r, c| r == c)),
        ),
        (
            "irregular",
            T1Task::mm(
                Block16::from_fn(|r, c| (r * 7 + c * 3) % 5 < 2),
                Block16::from_fn(|r, c| (r + c * 11) % 4 < 2),
            ),
        ),
        ("mv", T1Task::mv(Block16::from_fn(|r, c| (r + c) % 3 == 0), u16::MAX)),
    ]
}

fn bench_engines(c: &mut Criterion) {
    for (task_name, task) in tasks() {
        let mut g = c.benchmark_group(format!("t1_{task_name}"));
        for engine in all_engines(Precision::Fp64) {
            g.bench_function(engine.name().to_owned(), |b| {
                b.iter(|| engine.execute(black_box(&task)))
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
