//! Micro-bench: per-engine T1-task scheduling throughput of the simulator
//! models (dense, diagonal and irregular block pairs). Plain
//! `Instant`-based timing so the suite runs with no external harness.

use std::hint::black_box;
use std::time::Instant;

use bench::all_engines;
use simkit::{Block16, Precision, T1Task};

fn tasks() -> Vec<(&'static str, T1Task)> {
    vec![
        ("dense", T1Task::mm(Block16::dense(), Block16::dense())),
        (
            "diagonal",
            T1Task::mm(Block16::from_fn(|r, c| r == c), Block16::from_fn(|r, c| r == c)),
        ),
        (
            "irregular",
            T1Task::mm(
                Block16::from_fn(|r, c| (r * 7 + c * 3) % 5 < 2),
                Block16::from_fn(|r, c| (r + c * 11) % 4 < 2),
            ),
        ),
        ("mv", T1Task::mv(Block16::from_fn(|r, c| (r + c) % 3 == 0), u16::MAX)),
    ]
}

fn main() {
    const ITERS: u32 = 2000;
    for (task_name, task) in tasks() {
        println!("== t1_{task_name} ==");
        for engine in all_engines(Precision::Fp64) {
            black_box(engine.execute(&task));
            let start = Instant::now();
            for _ in 0..ITERS {
                black_box(engine.execute(black_box(&task)));
            }
            let per_iter = start.elapsed() / ITERS;
            println!("{:<16} {per_iter:>12.2?}/iter  ({ITERS} iters)", engine.name());
        }
    }
}
