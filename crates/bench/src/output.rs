//! Shared output serialization for the experiment binaries.
//!
//! Every binary renders its results through a [`Report`]: aligned text
//! tables on stdout by default, or one machine-readable JSON document when
//! `--json` is passed. A single serializer keeps the JSON shape identical
//! across all figures, so downstream tooling parses one schema
//! (`title` / `sections[] { title, headers, rows[], notes[] }` with each
//! row an object keyed by header).

use obs::json::Value;

/// Whether `--json` was passed: binaries emit one JSON document on stdout
/// instead of text tables.
pub fn json_mode() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Emits a warning line on **stderr**. Binaries must route every
/// diagnostic through this (or `eprintln!` directly) so that under
/// `--json` stdout stays exactly one machine-parseable document — a
/// warning interleaved into stdout would corrupt the JSON for every
/// downstream consumer.
pub fn warn(message: impl std::fmt::Display) {
    eprintln!("warning: {message}");
}

/// One titled table plus free-form note lines (geomeans, paper reference
/// points, caveats).
#[derive(Debug, Clone)]
pub struct Section {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Section {
    /// A new section with the given column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Section {
            title: title.into(),
            headers: headers.iter().map(|h| (*h).to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends one table row (cells beyond the header count are dropped in
    /// the JSON rendering; keep rows and headers aligned).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Appends a free-form note line below the table.
    pub fn note(&mut self, line: impl Into<String>) {
        self.notes.push(line.into());
    }

    fn to_json(&self) -> Value {
        let rows: Vec<Value> = self
            .rows
            .iter()
            .map(|r| {
                Value::Object(
                    self.headers
                        .iter()
                        .zip(r.iter())
                        .map(|(h, c)| (h.clone(), Value::Str(c.clone())))
                        .collect(),
                )
            })
            .collect();
        Value::object(vec![
            ("title", Value::Str(self.title.clone())),
            (
                "headers",
                Value::Array(self.headers.iter().map(|h| Value::Str(h.clone())).collect()),
            ),
            ("rows", Value::Array(rows)),
            (
                "notes",
                Value::Array(self.notes.iter().map(|n| Value::Str(n.clone())).collect()),
            ),
        ])
    }

    fn emit_text(&self) {
        if !self.title.is_empty() {
            println!("--- {} ---", self.title);
        }
        let headers: Vec<&str> = self.headers.iter().map(String::as_str).collect();
        crate::print_table(&headers, &self.rows);
        for note in &self.notes {
            println!("  {note}");
        }
        println!();
    }
}

/// A whole binary's output: a title plus one or more [`Section`]s.
#[derive(Debug, Clone)]
pub struct Report {
    title: String,
    sections: Vec<Section>,
}

impl Report {
    /// A new report with the given overall title.
    pub fn new(title: impl Into<String>) -> Self {
        Report { title: title.into(), sections: Vec::new() }
    }

    /// Appends a finished section.
    pub fn push(&mut self, section: Section) {
        self.sections.push(section);
    }

    /// The machine-readable rendering (stable across all binaries).
    pub fn to_json(&self) -> Value {
        Value::object(vec![
            ("title", Value::Str(self.title.clone())),
            (
                "sections",
                Value::Array(self.sections.iter().map(Section::to_json).collect()),
            ),
        ])
    }

    /// Prints the report: JSON if `--json` was passed, text tables
    /// otherwise.
    pub fn emit(&self) {
        if json_mode() {
            println!("{}", self.to_json().to_json_pretty());
        } else {
            println!("{}\n", self.title);
            for s in &self.sections {
                s.emit_text();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serialises_rows_keyed_by_header() {
        let mut s = Section::new("k", &["matrix", "cycles"]);
        s.row(vec!["m1".into(), "42".into()]);
        s.note("geomean 1.0");
        let mut r = Report::new("t");
        r.push(s);
        let v = r.to_json();
        assert_eq!(v.get("title").and_then(Value::as_str), Some("t"));
        let sections = v.get("sections").and_then(Value::as_array).expect("sections");
        assert_eq!(sections.len(), 1);
        let rows = sections[0].get("rows").and_then(Value::as_array).expect("rows");
        assert_eq!(rows[0].get("matrix").and_then(Value::as_str), Some("m1"));
        assert_eq!(rows[0].get("cycles").and_then(Value::as_str), Some("42"));
        let notes = sections[0].get("notes").and_then(Value::as_array).expect("notes");
        assert_eq!(notes.len(), 1);
        // Round-trips through the parser.
        assert!(obs::json::parse(&v.to_json_pretty()).is_ok());
    }

    #[test]
    fn short_rows_serialise_partially() {
        let mut s = Section::new("", &["a", "b", "c"]);
        s.row(vec!["1".into()]);
        let v = s.to_json();
        let rows = v.get("rows").and_then(Value::as_array).expect("rows");
        assert!(rows[0].get("a").is_some());
        assert!(rows[0].get("b").is_none());
    }
}
