//! Fault-injection probe: a small, scriptable front-end over
//! [`simkit::fault::FaultPlan`] whose primary job is to be *safely
//! machine-parseable*. Under `--json`, stdout carries exactly one JSON
//! document; every diagnostic — including the clamp warning an
//! out-of-range `--rate` provokes — goes to stderr via
//! [`bench::output::warn`]. The `json_output` integration test pins this
//! contract by running the binary with `--rate 1.5 --json` and parsing
//! stdout.
//!
//! Usage: `fault_probe [--rate R] [--seed S] [--json]`

use bench::output::{warn, Report, Section};
use simkit::fault::FaultPlan;
use sparse::BbcMatrix;
use workloads::gen::random_uniform;

fn arg_after(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

fn main() {
    let rate = match arg_after("--rate").map(|v| v.parse::<f64>()) {
        Some(Ok(r)) => r,
        Some(Err(e)) => {
            warn(format!("unparseable --rate ({e}); using 0.001"));
            0.001
        }
        None => 0.001,
    };
    let seed = match arg_after("--seed").map(|v| v.parse::<u64>()) {
        Some(Ok(s)) => s,
        Some(Err(e)) => {
            warn(format!("unparseable --seed ({e}); using 7"));
            7
        }
        None => 7,
    };

    // An out-of-range rate makes FaultPlan::uniform clamp with a warning
    // on stderr; stdout below must stay a single clean document.
    let plan = FaultPlan::uniform(seed, rate);
    let clean = BbcMatrix::from_csr(&random_uniform(96, 0.05, seed));
    let (_, outcome) = plan.inject_into(&clean);

    let mut section = Section::new(
        "fault injection",
        &["seed", "requested rate", "applied rate", "injected", "detected", "structure corrupt"],
    );
    section.row(vec![
        seed.to_string(),
        format!("{rate}"),
        format!("{}", plan.rate_for(sparse::BbcField::Value)),
        outcome.log.injected().to_string(),
        outcome.detected.to_string(),
        outcome.structure_corrupt.to_string(),
    ]);
    section.note("random_uniform(96, 0.05) probe matrix; rates outside [0,1] are clamped");
    let mut report = Report::new("fault_probe");
    report.push(section);
    report.emit();
}
